package dynstream

// Concurrent sharded-ingest front door. Every construction in this
// package is a linear sketch, so a stream split into P shards, ingested
// by P workers into states built from the same seed, and merged yields
// a state — and therefore an output — identical to single-threaded
// ingestion (the distributed setting of the paper's introduction,
// Theorem 10's mergeability, realized as goroutines). The Parallel
// builders below are drop-in replacements for their serial
// counterparts: same configuration, same seed, same output.

import (
	"dynstream/internal/agm"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

// StreamShard is a replayable round-robin shard view of a base stream.
type StreamShard = stream.Shard

// SplitStream partitions st into p round-robin shards whose union is
// exactly st. Shards replay concurrently; feed each to its own
// same-seeded sketch state and merge.
func SplitStream(st Stream, p int) ([]Stream, error) { return stream.Split(st, p) }

// BuildSpannerParallel is BuildSpanner with both passes ingested by
// `workers` goroutines over shards of st. Output is identical to
// BuildSpanner for the same configuration.
func BuildSpannerParallel(st Stream, cfg SpannerConfig, workers int) (*SpannerResult, error) {
	return spanner.BuildTwoPassParallel(st, cfg, workers)
}

// BuildAdditiveSpannerParallel is BuildAdditiveSpanner with the single
// pass ingested by `workers` goroutines. Output is identical to
// BuildAdditiveSpanner for the same configuration.
func BuildAdditiveSpannerParallel(st Stream, cfg AdditiveConfig, workers int) (*AdditiveResult, error) {
	return spanner.BuildAdditiveParallel(st, cfg, workers)
}

// BuildSparsifierParallel is BuildSparsifier with sharded-ingest oracle
// grids and the Z×H sample constructions fanned out over a worker
// pool. Output is identical to BuildSparsifier for the same
// configuration.
func BuildSparsifierParallel(st Stream, cfg SparsifierConfig, workers int) (*SparsifierResult, error) {
	return sparsify.SparsifyParallel(st, cfg, workers)
}

// NewForestSketchParallel ingests st into an AGM connectivity sketch
// using `workers` goroutines over round-robin shards, merging the
// per-shard sketches (ForestSketch.Merge). Ingest is batched
// (ForestSketch.AddBatch); the returned sketch is identical to serial
// update-at-a-time ingestion with the same seed.
func NewForestSketchParallel(seed uint64, st Stream, cfg ForestConfig, workers int) (*ForestSketch, error) {
	return parallel.IngestBatched(st, workers, func() *agm.Sketch {
		return agm.New(seed, st.N(), cfg)
	})
}

// NewKConnectivityParallel ingests st into a k-edge-connectivity
// certificate sketch using `workers` goroutines over shards, batched.
func NewKConnectivityParallel(seed uint64, st Stream, k, workers int) (*KConnectivity, error) {
	return parallel.IngestBatched(st, workers, func() *agm.KConnectivity {
		return agm.NewKConnectivity(seed, st.N(), k)
	})
}
