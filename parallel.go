package dynstream

// Concurrent sharded-ingest front door, kept as thin deprecated
// wrappers over the unified Build driver. Every construction in this
// package is a linear sketch, so a stream split into P shards,
// ingested by P workers into states built from the same seed, and
// merged yields a state — and therefore an output — identical to
// single-threaded ingestion (the distributed setting of the paper's
// introduction, Theorem 10's mergeability, realized as goroutines).

import (
	"context"

	"dynstream/internal/stream"
)

// StreamShard is a replayable round-robin shard view of a base source.
type StreamShard = stream.Shard

// SplitStream partitions src into p round-robin shards whose union is
// exactly src. Shards replay concurrently; feed each to its own
// same-seeded sketch state and merge.
func SplitStream(src Source, p int) ([]Stream, error) { return stream.Split(src, p) }

// BuildSpannerParallel is BuildSpanner with both passes ingested by
// `workers` goroutines over shards of st.
//
// Deprecated: use Build with SpannerTarget and WithWorkers.
func BuildSpannerParallel(st Stream, cfg SpannerConfig, workers int) (*SpannerResult, error) {
	return Build(context.Background(), st, SpannerTarget{Config: cfg}, WithWorkers(workers))
}

// BuildAdditiveSpannerParallel is BuildAdditiveSpanner with the single
// pass ingested by `workers` goroutines.
//
// Deprecated: use Build with AdditiveTarget and WithWorkers.
func BuildAdditiveSpannerParallel(st Stream, cfg AdditiveConfig, workers int) (*AdditiveResult, error) {
	return Build(context.Background(), st, AdditiveTarget{Config: cfg}, WithWorkers(workers))
}

// BuildSparsifierParallel is BuildSparsifier with sharded-ingest oracle
// grids and the Z×H sample constructions fanned out over a worker
// pool.
//
// Deprecated: use Build with SparsifierTarget and WithWorkers.
func BuildSparsifierParallel(st Stream, cfg SparsifierConfig, workers int) (*SparsifierResult, error) {
	return Build(context.Background(), st, SparsifierTarget{Config: cfg}, WithWorkers(workers))
}

// NewForestSketchParallel ingests st into an AGM connectivity sketch
// using `workers` goroutines over round-robin shards, merging the
// per-shard sketches.
//
// Deprecated: use Build with ForestTarget and WithWorkers.
func NewForestSketchParallel(seed uint64, st Stream, cfg ForestConfig, workers int) (*ForestSketch, error) {
	return Build(context.Background(), st, ForestTarget{Seed: seed, Config: cfg}, WithWorkers(workers))
}

// NewKConnectivityParallel ingests st into a k-edge-connectivity
// certificate sketch using `workers` goroutines over shards.
//
// Deprecated: use Build with KConnectivityTarget and WithWorkers.
func NewKConnectivityParallel(seed uint64, st Stream, k, workers int) (*KConnectivity, error) {
	return Build(context.Background(), st, KConnectivityTarget{Seed: seed, K: k}, WithWorkers(workers))
}
