package dynstream

// Stream sharding utilities. Every construction in this package is a
// linear sketch, so a stream split into P shards, ingested by P
// workers into states built from the same seed, and merged yields a
// state — and therefore an output — identical to single-threaded
// ingestion (the distributed setting of the paper's introduction,
// Theorem 10's mergeability, realized as goroutines). Build with
// WithWorkers does this automatically; the shard views below are for
// callers that drive their own states.

import (
	"dynstream/internal/stream"
)

// StreamShard is a replayable round-robin shard view of a base source.
type StreamShard = stream.Shard

// SplitStream partitions src into p round-robin shards whose union is
// exactly src. Shards replay concurrently; feed each to its own
// same-seeded sketch state and merge.
func SplitStream(src Source, p int) ([]Stream, error) { return stream.Split(src, p) }
