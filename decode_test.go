package dynstream_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/graph"
)

// Seeded parallel-decode == serial-decode equivalence for every
// target: the decode engine fans per-component / per-center / per-cell
// work across workers but places results by index and applies them in
// the serial order, so the decoded output must be bit-identical at any
// decode worker count. The matrix runs random and churned streams at
// 1/2/4/8 decode workers; `go test -race` doubles as the data-race
// gate for the fan-out.

var decodeWorkerCounts = []int{1, 2, 4, 8}

// decodeStreams is the two stream shapes of the equivalence matrix.
func decodeStreams() map[string]*dynstream.MemoryStream {
	g := graph.ConnectedGNP(64, 0.1, 7001)
	for i := 0; i < g.N(); i++ {
		g.AddEdge(i, (i+5)%g.N(), float64(1+i%6))
	}
	return map[string]*dynstream.MemoryStream{
		"random": dynstream.StreamFromGraph(g, 7002),
		"churn":  dynstream.StreamWithChurn(g, 400, 7003),
	}
}

func TestForestDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8}}
	for name, st := range decodeStreams() {
		t.Run(name, func(t *testing.T) {
			sk, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 7100})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := sk.SpanningForest(nil)
			if err != nil {
				t.Fatal(err)
			}
			serialGrouped, err := sk.SpanningForest(groups)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range decodeWorkerCounts {
				got, err := sk.SpanningForestParallel(nil, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("decode workers=%d: forest differs from serial decode", w)
				}
				got, err = sk.SpanningForestParallel(groups, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, serialGrouped) {
					t.Fatalf("decode workers=%d: supernode forest differs from serial decode", w)
				}
			}
		})
	}
}

func TestKConnectivityDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	target := dynstream.KConnectivityTarget{Seed: 7200, K: 3}
	for name, st := range decodeStreams() {
		t.Run(name, func(t *testing.T) {
			// Certificate consumes the sketches (forest subtraction), so
			// each decode runs on a freshly ingested same-seeded state.
			build := func() *dynstream.KConnectivity {
				kc, err := dynstream.Build(ctx, st, target)
				if err != nil {
					t.Fatal(err)
				}
				return kc
			}
			serial, err := build().Certificate()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range decodeWorkerCounts {
				got, err := build().CertificateParallel(w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("decode workers=%d: certificate differs from serial decode", w)
				}
			}
		})
	}
}

func TestBipartitenessDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	even, odd := graph.Cycle(40), graph.Cycle(41)
	for name, g := range map[string]*graph.Graph{"even": even, "odd": odd} {
		t.Run(name, func(t *testing.T) {
			st := dynstream.StreamWithChurn(g, 200, 7300)
			b, err := dynstream.Build(ctx, st, dynstream.BipartitenessTarget{Seed: 7301})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := b.IsBipartite()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range decodeWorkerCounts {
				got, err := b.IsBipartiteParallel(w)
				if err != nil {
					t.Fatal(err)
				}
				if got != serial {
					t.Fatalf("decode workers=%d: verdict %v, serial %v", w, got, serial)
				}
			}
		})
	}
}

func TestMSFDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	for name, st := range decodeStreams() {
		t.Run(name, func(t *testing.T) {
			m, err := dynstream.Build(ctx, st, dynstream.MSFTarget{Seed: 7400, Gamma: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := m.Forest()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range decodeWorkerCounts {
				got, err := m.ForestParallel(w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("decode workers=%d: msf differs from serial decode", w)
				}
			}
		})
	}
}

func TestSpannerDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{
		K: 3, Seed: 7500, CollectAugmented: true,
	}}
	for name, st := range decodeStreams() {
		t.Run(name, func(t *testing.T) {
			serial, err := dynstream.Build(ctx, st, target, dynstream.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range decodeWorkerCounts {
				// Parallel ingest × parallel decode, both axes at once.
				got, err := dynstream.Build(ctx, st, target,
					dynstream.WithWorkers(2), dynstream.WithDecodeWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				edgesEqual(t, fmt.Sprintf("spanner decode=%d", w), got.Spanner, serial.Spanner)
				edgesEqual(t, fmt.Sprintf("augmented decode=%d", w), got.Augmented, serial.Augmented)
				if got.Terminals != serial.Terminals || !reflect.DeepEqual(got.Stats, serial.Stats) {
					t.Fatalf("decode workers=%d: stats differ: %+v vs %+v", w, got.Stats, serial.Stats)
				}
			}
		})
	}
}

func TestAdditiveDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	target := dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: 4, Seed: 7600}}
	for name, st := range decodeStreams() {
		t.Run(name, func(t *testing.T) {
			serial, err := dynstream.Build(ctx, st, target, dynstream.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range decodeWorkerCounts {
				got, err := dynstream.Build(ctx, st, target,
					dynstream.WithWorkers(2), dynstream.WithDecodeWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				edgesEqual(t, fmt.Sprintf("additive decode=%d", w), got.Spanner, serial.Spanner)
			}
		})
	}
}

func TestSparsifierDecodeEquivalence(t *testing.T) {
	ctx := context.Background()
	g := graph.Complete(10)
	st := dynstream.StreamFromGraph(g, 7700)
	target := dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
		K: 1, Z: 4, Seed: 7701,
		Estimate: dynstream.EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 7702},
	}}
	serial, err := dynstream.Build(ctx, st, target, dynstream.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range decodeWorkerCounts {
		got, err := dynstream.Build(ctx, st, target,
			dynstream.WithWorkers(2), dynstream.WithDecodeWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, fmt.Sprintf("sparsifier decode=%d", w), got.Sparsifier, serial.Sparsifier)
	}
}

// TestRemoteDecodeEquivalence drives the distributed coordinator path
// with parallel decode: worker blobs are tree-merged and the final
// extraction runs on 4 decode workers — the state (and every decoded
// result) must stay byte-identical to the serial local build.
func TestRemoteDecodeEquivalence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st := remoteTestStream(t)
	addrs := startWorkers(t, ctx, 3)
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	t.Run("forest", func(t *testing.T) {
		serial, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 7800})
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 7800},
			dynstream.WithRemoteCluster(cluster), dynstream.WithDecodeWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		marshalEqual(t, "forest sketch", serial, remote)
		sf, err := serial.SpanningForest(nil)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := remote.SpanningForestParallel(nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sf, rf) {
			t.Fatal("remote + parallel decode forest differs from serial")
		}
	})

	t.Run("spanner", func(t *testing.T) {
		target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 7801}}
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target,
			dynstream.WithRemoteCluster(cluster), dynstream.WithDecodeWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "remote spanner", remote.Spanner, serial.Spanner)
	})
}

func TestDecodeWorkersValidation(t *testing.T) {
	st := decodeStreams()["random"]
	_, err := dynstream.Build(context.Background(), st,
		dynstream.ForestTarget{Seed: 1}, dynstream.WithDecodeWorkers(0))
	if !errors.Is(err, dynstream.ErrBadWorkers) {
		t.Fatalf("WithDecodeWorkers(0): got %v, want ErrBadWorkers", err)
	}
}
