package dynstream

import (
	"context"
	"errors"
	"fmt"

	"dynstream/internal/agm"
	"dynstream/internal/dynnet"
	"dynstream/internal/obs"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
)

// Build is the single front door for every construction in this
// package: it runs `target` over `src` under the given options and
// context. All targets are linear sketches, so the three axes compose
// freely —
//
//	any sketch (target) × any source × any execution policy (options)
//
// and the result is bit-identical across execution policies: serial,
// sharded-merge (WithWorkers), any batch size. Cancellation via ctx is
// observed at update-batch granularity through every pass, including
// inside the sparsifier's inner spanner builds.
//
//	res, err := dynstream.Build(ctx, src,
//	    dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 7}},
//	    dynstream.WithWorkers(8))
//
// Multi-pass targets (SpannerTarget, SparsifierTarget, and MSFTarget
// without an explicit WMax) need a replayable source — a MemoryStream
// or a file-backed ReaderSource; single-pass targets ingest straight
// from pipes and channels at constant memory.
func Build[R any](ctx context.Context, src Source, target Target[R], opts ...Option) (R, error) {
	var zero R
	if src == nil {
		return zero, fmt.Errorf("%w: nil source", ErrBadConfig)
	}
	if target == nil {
		return zero, fmt.Errorf("%w: nil target", ErrBadConfig)
	}
	o := &buildOptions{}
	for _, opt := range opts {
		if opt != nil {
			opt(o)
		}
	}
	if err := o.validate(); err != nil {
		return zero, err
	}
	if target.Passes() > 1 && !CanReplay(src) {
		return zero, fmt.Errorf("dynstream: %T needs %d passes over the stream: %w",
			target, target.Passes(), ErrNotReplayable)
	}
	tr, traceDone := o.effectiveTracer()
	defer traceDone()
	res, err := buildDispatch(ctx, src, target, o, tr)
	if err != nil {
		return res, err
	}
	if werr := o.writeTraceFile(tr); werr != nil {
		return res, werr
	}
	return res, nil
}

// buildDispatch routes a validated Build between the remote and local
// execution paths. tr (possibly nil) is the resolved tracer; the
// progress callback, when any, is already registered on it, so
// policies carry only the tracer.
func buildDispatch[R any](ctx context.Context, src Source, target Target[R], o *buildOptions, tr *obs.Tracer) (R, error) {
	var zero R
	if o.remote() {
		cluster := o.cluster
		var dialErr error
		if cluster == nil {
			cluster, dialErr = DialWorkersWith(ctx, o.remoteOpts, o.remoteAddrs...)
			if dialErr == nil {
				defer cluster.Close()
			}
		}
		var res R
		var err error
		if dialErr != nil {
			res, err = zero, dialErr
		} else {
			decodeP := parallel.NewPolicy(ctx, o.resolveDecodeWorkers(src), o.batch, nil).
				WithTracer(tr)
			res, err = target.buildRemote(ctx, src, o, &remoteRun{cluster: cluster, o: o, p: decodeP})
		}
		// Opt-in degradation: when the whole cluster is gone (every
		// worker unreachable or lost mid-build) and the source can be
		// replayed, rerun the build locally — bit-identical by
		// linearity, since local and remote ingest share seeds. Typed
		// worker errors and ctx cancellation are not retried. A
		// WithProgress callback sees the local rerun's counts on top of
		// whatever the aborted remote build reported.
		clusterLost := dialErr != nil || errors.Is(err, dynnet.ErrNoWorkers)
		if err != nil && o.localFallback && ctx.Err() == nil &&
			clusterLost && CanReplay(src) {
			p := parallel.NewPolicy(ctx, o.resolveWorkers(src), o.batch, nil).
				WithDecode(o.resolveDecodeWorkers(src)).WithTracer(tr)
			return target.build(src, o, p)
		}
		return res, err
	}
	p := parallel.NewPolicy(ctx, o.resolveWorkers(src), o.batch, nil).
		WithDecode(o.resolveDecodeWorkers(src)).WithTracer(tr)
	return target.build(src, o, p)
}

// Target describes what Build constructs: each target couples a
// configuration with the recipe that drives its sketch states over a
// source under an execution policy. R is the result type. Targets are
// provided by this package (SpannerTarget, AdditiveTarget,
// SparsifierTarget, ForestTarget, KConnectivityTarget,
// BipartitenessTarget, MSFTarget); the interface is sealed by its
// unexported methods.
type Target[R any] interface {
	// Passes is the number of full stream passes the target needs (for
	// replayability validation; multi-phase targets report > 1).
	Passes() int
	// build runs the construction under the resolved options/policy.
	build(src Source, o *buildOptions, p *parallel.Policy) (R, error)
	// buildRemote runs the construction on remote worker processes
	// (WithRemoteWorkers / WithRemoteCluster), producing the same
	// result bit for bit.
	buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (R, error)
	// openLive ingests src and returns the mutable state behind a live
	// Handle (see Open).
	openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[R], error)
	// restoreLive rebuilds the live state behind a Handle from a
	// checkpoint's state section (see Restore in checkpoint.go).
	restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[R], error)
}

// noWeightClasses rejects WithWeightClasses for targets without a
// weight-class mode.
func noWeightClasses(o *buildOptions, what string) error {
	if o.classBase != 0 {
		return fmt.Errorf("%w: %s has no weight-class mode", ErrBadConfig, what)
	}
	return nil
}

// SpannerTarget builds the two-pass 2^K-spanner of Theorem 1
// (BuildSpanner's successor). With WithWeightClasses it runs the
// weight-class construction of Remark 14.
type SpannerTarget struct {
	Config SpannerConfig
}

func (t SpannerTarget) Passes() int { return 2 }

func (t SpannerTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*SpannerResult, error) {
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	if o.classBase != 0 {
		return spanner.BuildTwoPassWeightedOpts(src, cfg, o.classBase, p)
	}
	return spanner.BuildTwoPassOpts(src, cfg, p)
}

// AdditiveTarget builds the single-pass O(n/D)-additive spanner of
// Theorem 3 (BuildAdditiveSpanner's successor). Single-pass: works on
// pipes and channels.
type AdditiveTarget struct {
	Config AdditiveConfig
}

func (t AdditiveTarget) Passes() int { return 1 }

func (t AdditiveTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*AdditiveResult, error) {
	if err := noWeightClasses(o, "the additive spanner"); err != nil {
		return nil, err
	}
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	return spanner.BuildAdditiveOpts(src, cfg, p)
}

// SparsifierTarget builds the two-pass ε-spectral sparsifier of
// Corollary 2 (BuildSparsifier's successor). With WithWeightClasses it
// sparsifies per weight class and rescales.
type SparsifierTarget struct {
	Config SparsifierConfig
}

func (t SparsifierTarget) Passes() int { return 2 }

func (t SparsifierTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*SparsifierResult, error) {
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	if o.classBase != 0 {
		return sparsify.SparsifyWeightedOpts(src, cfg, o.classBase, p)
	}
	return sparsify.SparsifyOpts(src, cfg, p)
}

// ForestTarget ingests the stream into an AGM connectivity sketch
// (Theorem 10); decode with ForestSketch.SpanningForest. Single-pass.
type ForestTarget struct {
	Seed   uint64
	Config ForestConfig
}

func (t ForestTarget) Passes() int { return 1 }

func (t ForestTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*ForestSketch, error) {
	if err := noWeightClasses(o, "the forest sketch"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	return parallel.IngestBatchedOpts(p, src, func() *agm.Sketch {
		return agm.New(seed, src.N(), t.Config)
	})
}

// KConnectivityTarget ingests the stream into a k-edge-connectivity
// certificate sketch; decode with KConnectivity.Certificate[Graph].
// Single-pass.
type KConnectivityTarget struct {
	Seed uint64
	K    int
}

func (t KConnectivityTarget) Passes() int { return 1 }

func (t KConnectivityTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*KConnectivity, error) {
	if err := noWeightClasses(o, "the connectivity certificate"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	return parallel.IngestBatchedOpts(p, src, func() *agm.KConnectivity {
		return agm.NewKConnectivity(seed, src.N(), t.K)
	})
}

// BipartitenessTarget ingests the stream into the double-cover
// bipartiteness tester; decode with Bipartiteness.IsBipartite.
// Single-pass.
type BipartitenessTarget struct {
	Seed uint64
}

func (t BipartitenessTarget) Passes() int { return 1 }

func (t BipartitenessTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*Bipartiteness, error) {
	if err := noWeightClasses(o, "the bipartiteness tester"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	return parallel.IngestBatchedOpts(p, src, func() *agm.Bipartiteness {
		return agm.NewBipartiteness(seed, src.N())
	})
}

// MSFTarget ingests the stream into the (1+Gamma)-approximate
// minimum-spanning-forest sketch; decode with MSF.Forest. With an
// explicit WMax (upper bound on edge weights) it is single-pass and
// works on pipes; with WMax == 0 it first scans the stream for the
// maximum weight, which needs a replayable source.
type MSFTarget struct {
	Seed  uint64
	WMax  float64
	Gamma float64
}

func (t MSFTarget) Passes() int {
	if t.WMax > 0 {
		return 1
	}
	return 2
}

func (t MSFTarget) build(src Source, o *buildOptions, p *parallel.Policy) (*MSF, error) {
	if err := noWeightClasses(o, "the MSF sketch (weights are native)"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	wmax := t.WMax
	if wmax <= 0 {
		// Upper-bound weight scan to size the class prefixes.
		wmax = 1.0
		err := p.Replay(src, func(batch []Update) error {
			for _, u := range batch {
				if u.W > wmax {
					wmax = u.W
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return parallel.IngestBatchedOpts(p, src, func() *agm.MSF {
		return agm.NewMSF(seed, src.N(), wmax, t.Gamma)
	})
}
