package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/graph"
)

// TestTraceSmokeLarge is the CI trace-smoke body: a ~100k-update
// spanner build through the real CLI path with -trace and -trace-out,
// validating that the timeline covers the expected phases and the
// Chrome trace file parses with the expected event set. Gated behind an
// env var — it pushes 10^5 updates through a 4-worker ingest.
func TestTraceSmokeLarge(t *testing.T) {
	if os.Getenv("DYNSTREAM_TRACE_SMOKE") == "" {
		t.Skip("set DYNSTREAM_TRACE_SMOKE=1 to run the 100k-update trace smoke")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	g := graph.ConnectedGNP(1500, 0.02, 81)
	churn := (100000 - g.M()) / 2
	if churn < 0 {
		churn = 0
	}
	st := dynstream.StreamWithChurn(g, churn, 82)
	t.Logf("stream: n=%d, %d updates", st.N(), st.Len())

	dir := t.TempDir()
	streamPath := filepath.Join(dir, "stream.txt")
	f, err := os.Create(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "n %d\n", st.N())
	err = st.Replay(func(u dynstream.Update) error {
		op := "+"
		if u.Delta < 0 {
			op = "-"
		}
		_, err := fmt.Fprintf(w, "%s %d %d\n", op, u.U, u.V)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "trace.json")
	var out, errOut strings.Builder
	err = run(ctx, []string{"spanner", "-k", "2", "-seed", "83", "-workers", "4",
		"-trace", "-trace-out", tracePath, "-in", streamPath},
		strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}

	// The stderr timeline must cover ingest (with its shards), both
	// spanner phases, and the merge.
	timeline := errOut.String()
	for _, phase := range []string{"== trace:", "ingest ", "ingest/shard00", "ingest/shard03",
		"ingest/merge", "spanner/cluster/level00", "spanner/recover", "ingested updates:"} {
		if !strings.Contains(timeline, phase) {
			t.Errorf("timeline missing %q:\n%s", phase, timeline)
		}
	}

	// The trace file must parse, and its complete events must cover the
	// same phase set.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			phases[ev.Name]++
			if ev.Dur < 1 {
				t.Errorf("event %q has dur %d < 1µs", ev.Name, ev.Dur)
			}
		}
	}
	for _, want := range []string{"ingest", "ingest/shard00", "ingest/shard03", "ingest/merge",
		"spanner/cluster/level00", "spanner/recover"} {
		if phases[want] == 0 {
			t.Errorf("trace file missing phase %q; has %v", want, phases)
		}
	}
	if phases["ingest"] != 2 {
		t.Errorf("ingest spans = %d, want 2 (two passes)", phases["ingest"])
	}
	t.Logf("trace: %d events across %d phases", len(doc.TraceEvents), len(phases))
}
