package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dynstream"
)

// ckptTestLog is a deterministic 200-update log on 32 vertices: a
// dense-ish insert pattern with periodic deletions, so the replayed
// suffix exercises both signs.
func ckptTestLog() []dynstream.Update {
	var log []dynstream.Update
	var inserted []dynstream.Update
	x := uint64(0x9e3779b97f4a7c15)
	next := func(m int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(m))
	}
	for len(log) < 200 {
		u, v := next(32), next(32)
		if u == v {
			continue
		}
		if len(inserted) > 10 && len(log)%9 == 8 {
			del := inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
			del.Delta = -1
			log = append(log, del)
			continue
		}
		up := dynstream.Update{U: u, V: v, W: 1, Delta: 1}
		log = append(log, up)
		inserted = append(inserted, up)
	}
	return log
}

func updateLine(u dynstream.Update) string {
	sign := "+"
	if u.Delta < 0 {
		sign = "-"
	}
	return fmt.Sprintf("%s %d %d\n", sign, u.U, u.V)
}

// TestReplCheckpointSurvivesKill is the tentpole acceptance test for
// checkpoint/restore: a real `dynstream forest -repl -checkpoint ...`
// process is fed updates over stdin, SIGKILLed mid-stream after a few
// auto-snapshots, and the surviving checkpoint file is restored
// in-process. Replaying the update suffix past the restored offset
// must reproduce, bit for bit, the sketch a cold uninterrupted run
// over the full log produces.
func TestReplCheckpointSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real process")
	}
	dir, err := os.MkdirTemp("", "dynckpt")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	ckPath := filepath.Join(dir, "live.ckpt")

	const every = 8
	args := []string{"forest", "-repl", "-n", "32", "-seed", "4",
		"-checkpoint", ckPath, "-every", fmt.Sprint(every)}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), cliArgsEnv+"="+strings.Join(args, "\x1f"))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// Count "checkpoint saved" lines as the child emits them.
	var saves atomic.Int64
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "checkpoint saved to") {
				saves.Add(1)
			}
		}
	}()

	log := ckptTestLog()
	written := 0
	deadline := time.Now().Add(30 * time.Second)
	for _, u := range log {
		if _, err := io.WriteString(stdin, updateLine(u)); err != nil {
			t.Fatalf("feeding child after %d updates: %v", written, err)
		}
		written++
		// Once a couple of snapshots exist (and some updates past them
		// are in flight), kill the child without warning.
		if saves.Load() >= 2 && written >= 3*every+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 2nd checkpoint after %d updates", written)
		}
		time.Sleep(time.Millisecond)
	}
	if saves.Load() < 2 {
		// The child may still be draining stdin; give it a moment.
		for time.Now().Before(deadline) && saves.Load() < 2 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if saves.Load() < 2 {
		t.Fatalf("only %d checkpoints after %d updates", saves.Load(), written)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restore the checkpoint the dead process left behind.
	ctx := context.Background()
	f, err := os.Open(ckPath)
	if err != nil {
		t.Fatalf("checkpoint file after kill: %v", err)
	}
	defer f.Close()
	target := dynstream.ForestTarget{Seed: 4}
	h, err := dynstream.Restore(ctx, f, dynstream.NewMemoryStream(32), target)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	off := int(h.AppliedUpdates())
	if off <= 0 || off > written || off%every != 0 {
		t.Fatalf("restored offset %d (wrote %d, every %d)", off, written, every)
	}

	// Replay the suffix and diff against a cold, uninterrupted run.
	if err := h.Apply(log[off:]); err != nil {
		t.Fatalf("replaying suffix [%d:]: %v", off, err)
	}
	cold, err := dynstream.Open(ctx, dynstream.NewMemoryStream(32), target)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Apply(log); err != nil {
		t.Fatal(err)
	}
	got, err := h.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatalf("restored+replayed sketch differs from uninterrupted run (offset %d, %d updates)", off, len(log))
	}
}

// TestReplSaveLoadCommands drives the manual save/load repl commands
// through run(): state saved mid-session and loaded into a fresh
// session must answer queries identically to the original.
func TestReplSaveLoadCommands(t *testing.T) {
	dir, err := os.MkdirTemp("", "dynsave")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	ck := filepath.Join(dir, "s.ckpt")

	script1 := "+ 0 1\n+ 1 2\n+ 2 3\nquery\nsave " + ck + "\nquit\n"
	var out1, err1 bytes.Buffer
	if err := run(context.Background(), []string{"forest", "-repl", "-n", "8", "-seed", "4"},
		strings.NewReader(script1), &out1, &err1); err != nil {
		t.Fatalf("session 1: %v\nstderr: %s", err, err1.String())
	}
	if !strings.Contains(err1.String(), "checkpoint saved to "+ck) {
		t.Fatalf("no save confirmation on stderr: %q", err1.String())
	}

	// Session 2 loads the checkpoint and must answer the same query.
	script2 := "load " + ck + "\nquery\nquit\n"
	var out2, err2 bytes.Buffer
	if err := run(context.Background(), []string{"forest", "-repl", "-n", "8", "-seed", "4"},
		strings.NewReader(script2), &out2, &err2); err != nil {
		t.Fatalf("session 2: %v\nstderr: %s", err, err2.String())
	}
	if !strings.Contains(err2.String(), "restored "+ck+" (3 updates applied)") {
		t.Fatalf("no restore confirmation on stderr: %q", err2.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("restored session answered differently:\nsession 1: %q\nsession 2: %q", out1.String(), out2.String())
	}

	// A load of a missing path warns and keeps the session alive.
	script3 := "load " + filepath.Join(dir, "nope") + "\n+ 0 1\nquery\nquit\n"
	var out3, err3 bytes.Buffer
	if err := run(context.Background(), []string{"forest", "-repl", "-n", "8", "-seed", "4"},
		strings.NewReader(script3), &out3, &err3); err != nil {
		t.Fatalf("session 3: %v\nstderr: %s", err, err3.String())
	}
	if !strings.Contains(err3.String(), "repl: load:") {
		t.Fatalf("missing-file load did not warn: %q", err3.String())
	}
	if !strings.Contains(out3.String(), "ok ") {
		t.Fatalf("session did not survive the failed load: %q", out3.String())
	}
}

// TestCLICheckpointFlagValidation covers the new flag surfaces: the
// -checkpoint/-every pairing rules and the coord timeout flags.
func TestCLICheckpointFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"forest", "-repl", "-n", "8", "-every", "4"},           // -every without -checkpoint
		{"forest", "-repl", "-n", "8", "-checkpoint", "/tmp/x"}, // -checkpoint without -every
		{"forest", "-checkpoint", "/tmp/x", "-every", "4"},      // checkpointing without -repl
		{"forest", "-repl", "-n", "8", "-checkpoint", "x", "-every", "-1"},
		{"coord", "-remote", "a", "-handshake-timeout", "0s", "forest"},
		{"coord", "-remote", "a", "-handshake-timeout", "-1s", "forest"},
		{"coord", "-remote", "a", "-frame-timeout", "-1s", "forest"},
	} {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, strings.NewReader(testStream), &out, &errOut); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}
