package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestReplMalformedInput drives the repl with garbled lines mixed into
// valid ones: every rejection must surface as a distinguishable "err"
// line on stdout, in-band with the responses a scripted producer
// reads, and the session must keep working afterwards.
func TestReplMalformedInput(t *testing.T) {
	script := strings.Join([]string{
		"+ x 2",     // non-numeric vertex
		"+ 1",       // missing vertex
		"+ 1 2 3 4", // too many fields
		"bogus 1 2", // unknown command
		"save",      // missing path
		"+ 0 1",     // valid — the session survives
		"+ 1 2",
		"query",
		"quit",
	}, "\n") + "\n"
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"forest", "-repl", "-n", "8", "-seed", "2"},
		strings.NewReader(script), &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}

	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	var errLines, okLines int
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "err "):
			errLines++
		case strings.HasPrefix(l, "ok "):
			okLines++
		}
	}
	if errLines != 5 {
		t.Fatalf("want 5 in-band err lines, got %d:\n%s", errLines, out.String())
	}
	if okLines != 1 {
		t.Fatalf("session did not answer the query after rejections:\n%s", out.String())
	}
	// The query result reflects only the valid updates.
	if !strings.Contains(out.String(), "ok 2\n") {
		t.Fatalf("query should see 2 forest edges from the valid updates:\n%s", out.String())
	}
	// Each rejection is mirrored on stderr for the human operator.
	if got := strings.Count(errOut.String(), "repl: "); got < 5 {
		t.Fatalf("want >= 5 repl: notes on stderr, got %d:\n%s", got, errOut.String())
	}
}
