// Command dynstream runs the paper's streaming algorithms over a
// dynamic edge stream read from stdin (or a file) in the text format
//
//	n <vertices>
//	+ <u> <v> [w]     insert
//	- <u> <v> [w]     delete
//
// or the binary wire format (auto-detected), and writes the resulting
// edge set to stdout as "u v w" lines, with a summary on stderr.
//
// Subcommands:
//
//	spanner   -k K       two-pass 2^K-spanner (Theorem 1)
//	additive  -d D       one-pass n/D-additive spanner (Theorem 3)
//	sparsify  -k K -z Z  two-pass spectral sparsifier (Corollary 2)
//	forest               AGM spanning forest (Theorem 10)
//	kcert     -k K       k-edge-connectivity certificate
//	msf       [-wmax W]  (1+γ)-approximate minimum spanning forest
//	bipartite            bipartiteness test (prints verdict)
//	worker               sketch worker process (multi-process builds)
//	coord                coordinator wrapper around any subcommand
//
// The stream is never materialized: single-pass subcommands (additive,
// forest, kcert, bipartite, and msf with -wmax) ingest a pipe on stdin
// with O(sketch) heap no matter how many updates flow through, and
// multi-pass subcommands rewind seekable inputs (-in FILE, or a
// redirected file on stdin). Only a true pipe feeding a multi-pass
// subcommand falls back to materializing, with a note on stderr.
//
// All subcommands accept -workers P (concurrent same-seeded sketch
// ingest, merged by linearity — output identical to -workers 1),
// -decodeworkers Q (concurrent extraction — Borůvka rounds, cluster
// construction, table peeling; defaults to -workers, output identical
// at any count) and -batch B (ingest batch size; purely an execution
// knob).
//
// With -repl a build subcommand becomes a live serving loop (Open
// instead of Build): the base stream comes from -in FILE (or -n N for
// an empty graph), and stdin carries commands —
//
//   - <u> <v> [w]     apply an insert
//   - <u> <v> [w]     apply a delete
//     query             re-extract and print the current result
//     save <path>       write a checkpoint of the live state
//     load <path>       replace the live state from a checkpoint
//     quit              exit
//
// Applied updates fold into the live sketch state; each query is
// served incrementally from the decode caches and is bit-identical to
// a cold rebuild over the base stream plus every applied update.
//
// With -checkpoint PATH -every N the repl snapshots automatically:
// every N applied updates the pending batch is flushed and the live
// state is written to PATH (atomically, via rename), so a killed
// process can be resumed by restarting with `load PATH` — or through
// the library's Restore — and replaying the update suffix past the
// snapshot's AppliedUpdates count. Restored queries are bit-identical
// to an uninterrupted session's.
//
// Multi-process builds pair one coordinator with worker processes over
// TCP or unix sockets; the output is byte-identical to a local build:
//
//	dynstream worker -listen /tmp/w0.sock &
//	dynstream worker -listen /tmp/w1.sock &
//	dynstream coord -remote /tmp/w0.sock,/tmp/w1.sock spanner -k 2 < graph.txt
//
// SIGINT and SIGTERM cancel the build context: partial runs (including
// long-lived worker processes) shut down cleanly instead of dying
// mid-write with a stack trace.
//
// Example:
//
//	dynstream spanner -k 2 -seed 7 -workers 4 < graph.txt > spanner.txt
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynstream"
	"dynstream/internal/dynnet"
	"dynstream/internal/graph"
	"dynstream/internal/parallel"
	"dynstream/internal/serve"
)

func main() {
	// Translate SIGINT/SIGTERM into context cancellation so a build
	// interrupted mid-ingest — or a long-lived worker process — tears
	// down its connections and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "dynstream: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "dynstream:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dynstream <spanner|additive|sparsify|forest|kcert|msf|bipartite|worker|coord|client> [flags] < stream.txt")
	}
	switch args[0] {
	case "worker":
		return runWorker(ctx, args[1:], stderr)
	case "coord":
		return runCoord(ctx, args[1:], stdin, stdout, stderr)
	case "client":
		return runClient(ctx, args[1:], stdin, stdout, stderr)
	}
	return runBuild(ctx, args, nil, nil, stdin, stdout, stderr)
}

// runWorker runs a sketch worker process: it registers with a
// coordinator (or waits for one), then executes build passes shipped
// over the wire until the connection closes or the context is
// canceled.
func runWorker(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen  = fs.String("listen", "", "address to accept a coordinator on (host:port or unix socket path)")
		connect = fs.String("connect", "", "coordinator address to register with")
		shard   = fs.String("shard", "", "local shard file to ingest for -workershards builds")
		id      = fs.String("id", "", "worker id reported at registration (default the listen/connect address)")
		quiet   = fs.Bool("q", false, "suppress per-pass log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*listen == "") == (*connect == "") {
		return fmt.Errorf("worker: exactly one of -listen or -connect is required: %w", dynstream.ErrBadConfig)
	}
	if extra := fs.Args(); len(extra) > 0 {
		return fmt.Errorf("unexpected arguments after flags: %v", extra)
	}

	cfg := dynnet.WorkerConfig{ID: *id}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	if *shard != "" {
		f, err := os.Open(*shard)
		if err != nil {
			return err
		}
		defer f.Close()
		src, err := dynstream.NewReaderSource(f)
		if err != nil {
			return fmt.Errorf("worker shard %s: %w", *shard, err)
		}
		cfg.Source = src
	}

	if *connect != "" {
		if cfg.ID == "" {
			cfg.ID = *connect
		}
		network, address := dynnet.ResolveNetwork(*connect)
		var d net.Dialer
		conn, err := d.DialContext(ctx, network, address)
		if err != nil {
			return fmt.Errorf("worker: register with coordinator: %w", err)
		}
		return dynnet.ServeWorker(ctx, conn, cfg)
	}

	if cfg.ID == "" {
		cfg.ID = *listen
	}
	network, address := dynnet.ResolveNetwork(*listen)
	ln, err := net.Listen(network, address)
	if err != nil {
		return err
	}
	defer ln.Close()
	if network == "unix" {
		defer os.Remove(address)
	}
	fmt.Fprintf(stderr, "worker %s: listening on %s\n", cfg.ID, *listen)
	err = dynnet.ListenAndServeWorker(ctx, ln, cfg)
	if errors.Is(err, context.Canceled) {
		return context.Canceled
	}
	return err
}

// runCoord wraps any build subcommand in a multi-process coordinator:
// it establishes the worker cluster (dialing workers, or accepting
// their registrations), then delegates to the regular subcommand logic
// with the cluster attached to the Build call.
func runCoord(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		remote    = fs.String("remote", "", "comma-separated worker addresses to dial")
		listen    = fs.String("listen", "", "address to accept worker registrations on")
		await     = fs.Int("await", 0, "number of worker registrations to wait for (with -listen)")
		shards    = fs.Bool("workershards", false, "workers ingest their own -shard files; the stream is not sent (requires -n)")
		nFlag     = fs.Int("n", 0, "vertex count for -workershards builds (no coordinator-side stream)")
		handshake = fs.Duration("handshake-timeout", 10*time.Second, "per-worker registration timeout (> 0)")
		frame     = fs.Duration("frame-timeout", 0, "per-frame read/write deadline; a worker silent past it is declared dead (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sub := fs.Args()
	if len(sub) == 0 {
		return fmt.Errorf("coord: missing build subcommand (e.g. `coord -remote a,b spanner -k 2`)")
	}
	switch {
	case (*remote == "") == (*listen == ""):
		return fmt.Errorf("coord: exactly one of -remote or -listen is required: %w", dynstream.ErrBadConfig)
	case *listen != "" && *await < 1:
		return fmt.Errorf("coord: -listen needs -await >= 1, got %d: %w", *await, dynstream.ErrBadConfig)
	case *shards && *nFlag < 1:
		return fmt.Errorf("coord: -workershards needs -n >= 1, got %d: %w", *nFlag, dynstream.ErrBadConfig)
	case *handshake <= 0:
		return fmt.Errorf("coord: -handshake-timeout must be > 0, got %v: %w", *handshake, dynstream.ErrBadConfig)
	case *frame < 0:
		return fmt.Errorf("coord: -frame-timeout must be >= 0, got %v: %w", *frame, dynstream.ErrBadConfig)
	}
	ro := dynstream.RemoteOptions{HandshakeTimeout: *handshake, FrameTimeout: *frame}

	var cluster *dynstream.RemoteCluster
	var err error
	if *remote != "" {
		addrs := strings.Split(*remote, ",")
		cluster, err = dynstream.DialWorkersWith(ctx, ro, addrs...)
	} else {
		network, address := dynnet.ResolveNetwork(*listen)
		var ln net.Listener
		ln, err = net.Listen(network, address)
		if err != nil {
			return err
		}
		defer ln.Close()
		if network == "unix" {
			defer os.Remove(address)
		}
		fmt.Fprintf(stderr, "coordinator: awaiting %d worker registrations on %s\n", *await, *listen)
		cluster, err = dynstream.AcceptWorkersWith(ctx, ln, *await, ro)
	}
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Fprintf(stderr, "coordinator: %d workers registered: %s\n",
		cluster.Live(), strings.Join(cluster.WorkerIDs(), ", "))

	// Progress with bytes-on-wire, throttled to every 2^18 updates.
	var lastReport int64
	progress := func(updates int64) {
		if updates-lastReport < 1<<18 {
			return
		}
		lastReport = updates
		out, in := cluster.BytesOnWire()
		fmt.Fprintf(stderr, "coordinator: %d updates shipped, wire %d B out / %d B in\n", updates, out, in)
	}
	extra := []dynstream.Option{
		dynstream.WithRemoteCluster(cluster),
		dynstream.WithProgress(progress),
	}
	var srcOverride dynstream.Source
	if *shards {
		extra = append(extra, dynstream.WithWorkerShards())
		srcOverride = dynstream.NewMemoryStream(*nFlag)
	}
	err = runBuild(ctx, sub, extra, srcOverride, stdin, stdout, stderr)
	// Final wire accounting, straight from the per-frame-type counters
	// (the same source BytesOnWire and the tracer report from).
	out, in := cluster.BytesOnWire()
	fmt.Fprintf(stderr, "coordinator: wire total %d B out / %d B in across %d workers\n",
		out, in, len(cluster.WorkerIDs()))
	sent, received := cluster.FrameStats()
	for _, st := range sent {
		fmt.Fprintf(stderr, "coordinator: wire out %-7s %7d frames %12d B\n", st.Type, st.Count, st.Bytes)
	}
	for _, st := range received {
		fmt.Fprintf(stderr, "coordinator: wire in  %-7s %7d frames %12d B\n", st.Type, st.Count, st.Bytes)
	}
	return err
}

// runBuild parses and executes one build subcommand. extraOpts carries
// coordinator options; srcOverride (when non-nil) replaces the input
// stream entirely (worker-shard builds have no coordinator-side
// stream).
func runBuild(ctx context.Context, args []string, extraOpts []dynstream.Option, srcOverride dynstream.Source, stdin io.Reader, stdout, stderr io.Writer) error {
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k       = fs.Int("k", 2, "stretch/connectivity parameter (>= 1)")
		d       = fs.Int("d", 4, "additive spanner space parameter (>= 1)")
		z       = fs.Int("z", 32, "sparsifier repetitions (>= 1)")
		seed    = fs.Uint64("seed", 1, "random seed")
		workers = fs.Int("workers", 1, "concurrent ingest workers (>= 1)")
		decodeW = fs.Int("decodeworkers", 0, "concurrent decode workers (0 = follow -workers)")
		batch   = fs.Int("batch", 0, "ingest batch size (0 = default)")
		wmax    = fs.Float64("wmax", 0, "msf: weight upper bound (0 = scan the stream)")
		input   = fs.String("in", "", "input file (default stdin)")
		repl    = fs.Bool("repl", false, "serve a live handle: base stream from -in/-n, then +/-/query/save/load commands on stdin")
		nFlag   = fs.Int("n", 0, "vertex count for -repl without -in (empty base graph)")
		ckpt    = fs.String("checkpoint", "", "repl: auto-snapshot the live state to this path (atomic rename; with -every)")
		every   = fs.Int("every", 0, "repl: flush and snapshot after this many applied updates (with -checkpoint)")
		trace   = fs.Bool("trace", false, "print a per-phase timeline (and counters) to stderr when done")
		traceF  = fs.String("trace-out", "", "write the build's spans as Chrome trace_event JSON to this file (load in Perfetto)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	// Algorithm-parameter validation, typed so callers can classify
	// (execution options — workers, batch — are validated by Build).
	switch {
	case *k < 1:
		return fmt.Errorf("-k must be >= 1, got %d: %w", *k, dynstream.ErrBadConfig)
	case *d < 1:
		return fmt.Errorf("-d must be >= 1, got %d: %w", *d, dynstream.ErrBadConfig)
	case *z < 1:
		return fmt.Errorf("-z must be >= 1, got %d: %w", *z, dynstream.ErrBadConfig)
	case *wmax < 0:
		return fmt.Errorf("-wmax must be >= 0, got %v: %w", *wmax, dynstream.ErrBadConfig)
	case *decodeW < 0:
		return fmt.Errorf("-decodeworkers must be >= 0, got %d: %w", *decodeW, dynstream.ErrBadConfig)
	case *every < 0:
		return fmt.Errorf("-every must be >= 0, got %d: %w", *every, dynstream.ErrBadConfig)
	case (*ckpt == "") != (*every == 0):
		return fmt.Errorf("-checkpoint and -every go together (snapshot where, how often): %w", dynstream.ErrBadConfig)
	case *ckpt != "" && !*repl:
		return fmt.Errorf("-checkpoint/-every only apply to -repl sessions: %w", dynstream.ErrBadConfig)
	}
	// Sketch-target subcommands decode after Build returns; they run
	// their extraction at the decode worker count (same output at any
	// count, by the decode engine's determinism).
	dw := *decodeW
	if dw == 0 {
		dw = *workers
	}
	if extra := fs.Args(); len(extra) > 0 {
		return fmt.Errorf("unexpected arguments after flags: %v", extra)
	}
	// -trace/-trace-out attach one tracer to every phase of the run;
	// the timeline prints on the way out (success or failure — a
	// partial timeline is exactly what a stuck build needs).
	var tr *dynstream.Tracer
	if *trace || *traceF != "" {
		tr = dynstream.NewTracer()
		if *trace {
			defer tr.WriteTimeline(stderr)
		}
	}
	// Post-build extraction runs outside Build, so it needs its own
	// policy to land in the same timeline (agm/round, certificate, and
	// MSF phases). A nil tracer keeps it the plain parallel decode.
	dpol := parallel.Default().WithWorkers(dw).WithTracer(tr)
	if *repl {
		if *traceF != "" {
			return fmt.Errorf("-trace-out needs a bounded build; use -trace for repl sessions: %w", dynstream.ErrBadConfig)
		}
		if len(extraOpts) > 0 || srcOverride != nil {
			return fmt.Errorf("-repl is a local serving loop; it does not compose with coord: %w", dynstream.ErrBadConfig)
		}
		var base dynstream.Source
		switch {
		case *input != "":
			f, err := os.Open(*input)
			if err != nil {
				return err
			}
			defer f.Close()
			rs, err := dynstream.NewReaderSource(f)
			if err != nil {
				return err
			}
			base = rs
		case *nFlag > 0:
			base = dynstream.NewMemoryStream(*nFlag)
		default:
			return fmt.Errorf("-repl needs a base stream: -in FILE or -n N: %w", dynstream.ErrBadConfig)
		}
		opts := []dynstream.Option{
			dynstream.WithWorkers(*workers),
			dynstream.WithBatchSize(*batch),
		}
		if *decodeW > 0 {
			opts = append(opts, dynstream.WithDecodeWorkers(*decodeW))
		}
		if tr != nil {
			opts = append(opts, dynstream.WithTracer(tr))
		}
		return runRepl(ctx, cmd, base, replParams{k: *k, d: *d, z: *z, seed: *seed, wmax: *wmax, dpol: dpol},
			replCkpt{path: *ckpt, every: *every}, opts, stdin, stdout, stderr)
	}
	var src dynstream.Source
	if srcOverride != nil {
		src = srcOverride
		fmt.Fprintf(stderr, "stream: n=%d from worker-local shards\n", src.N())
	} else {
		in := stdin
		if *input != "" {
			f, err := os.Open(*input)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		rs, err := dynstream.NewReaderSource(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "stream: n=%d, %d workers\n", rs.N(), *workers)
		src = rs
	}

	opts := append([]dynstream.Option{
		dynstream.WithWorkers(*workers),
		dynstream.WithBatchSize(*batch),
	}, extraOpts...)
	if *decodeW > 0 {
		opts = append(opts, dynstream.WithDecodeWorkers(*decodeW))
	}
	if tr != nil {
		opts = append(opts, dynstream.WithTracer(tr))
	}
	if *traceF != "" {
		opts = append(opts, dynstream.WithTraceFile(*traceF))
	}

	switch cmd {
	case "spanner":
		st, err := replayableFor(src, 2, stderr)
		if err != nil {
			return err
		}
		res, err := dynstream.Build(ctx, st,
			dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: *k, Seed: *seed}}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "2^%d-spanner: %d edges, %d sketch words\n",
			*k, res.Spanner.M(), res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "additive":
		res, err := dynstream.Build(ctx, src,
			dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: *d, Seed: *seed}}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "n/%d-additive spanner: %d edges, %d centers, %d sketch words\n",
			*d, res.Spanner.M(), res.Centers, res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "sparsify":
		st, err := replayableFor(src, 2, stderr)
		if err != nil {
			return err
		}
		res, err := dynstream.Build(ctx, st,
			dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{K: *k, Z: *z, Seed: *seed}}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sparsifier: %d edges from %d samples, %d sketch words\n",
			res.Sparsifier.M(), res.Samples, res.SpaceWords)
		return writeEdges(stdout, res.Sparsifier)

	case "forest":
		sk, err := dynstream.Build(ctx, src, dynstream.ForestTarget{Seed: *seed}, opts...)
		if err != nil {
			return err
		}
		forest, err := sk.SpanningForestOpts(nil, dpol)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "spanning forest: %d edges, %d sketch words\n",
			len(forest), sk.SpaceWords())
		g := graph.New(src.N())
		for _, e := range forest {
			g.AddUnitEdge(e.U, e.V)
		}
		return writeEdges(stdout, g)

	case "kcert":
		kc, err := dynstream.Build(ctx, src,
			dynstream.KConnectivityTarget{Seed: *seed, K: *k}, opts...)
		if err != nil {
			return err
		}
		cert, err := kc.CertificateGraphOpts(dpol)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%d-connectivity certificate: %d edges, %d sketch words\n",
			*k, cert.M(), kc.SpaceWords())
		return writeEdges(stdout, cert)

	case "msf":
		target := dynstream.MSFTarget{Seed: *seed, WMax: *wmax, Gamma: 0.5}
		st, err := replayableFor(src, target.Passes(), stderr)
		if err != nil {
			return err
		}
		m, err := dynstream.Build(ctx, st, target, opts...)
		if err != nil {
			return err
		}
		forest, err := m.ForestOpts(dpol)
		if err != nil {
			return err
		}
		total := 0.0
		g := graph.New(src.N())
		for _, e := range forest {
			g.AddEdge(e.U, e.V, e.W)
			total += e.W
		}
		fmt.Fprintf(stderr, "approximate MSF: %d edges, class-weight total %g, %d sketch words\n",
			len(forest), total, m.SpaceWords())
		return writeEdges(stdout, g)

	case "bipartite":
		b, err := dynstream.Build(ctx, src, dynstream.BipartitenessTarget{Seed: *seed}, opts...)
		if err != nil {
			return err
		}
		bip, err := b.IsBipartiteOpts(dpol)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bipartite: %v\n", bip)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// replParams carries the algorithm flags into the live serving loop.
type replParams struct {
	k, d, z int
	seed    uint64
	wmax    float64
	dpol    *parallel.Policy // decode policy: worker count + tracer
}

// replCkpt is the repl's auto-snapshot schedule (-checkpoint/-every).
type replCkpt struct {
	path  string
	every int
}

// runRepl opens a live handle for the subcommand's target and serves
// the +/-/query/save/load command loop over it.
func runRepl(ctx context.Context, cmd string, base dynstream.Source, pr replParams, ck replCkpt,
	opts []dynstream.Option, stdin io.Reader, stdout, stderr io.Writer) error {
	fmt.Fprintf(stderr, "repl: n=%d, serving %s (+/-/query/save/load/quit on stdin)\n", base.N(), cmd)
	switch cmd {
	case "spanner":
		return serveLive(ctx, base,
			dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: pr.k, Seed: pr.seed}},
			ck, opts, stdin, stdout, stderr,
			func(res *dynstream.SpannerResult) (*graph.Graph, string, error) {
				return res.Spanner, fmt.Sprintf("2^%d-spanner: %d edges", pr.k, res.Spanner.M()), nil
			})

	case "additive":
		return serveLive(ctx, base,
			dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: pr.d, Seed: pr.seed}},
			ck, opts, stdin, stdout, stderr,
			func(res *dynstream.AdditiveResult) (*graph.Graph, string, error) {
				return res.Spanner, fmt.Sprintf("n/%d-additive spanner: %d edges", pr.d, res.Spanner.M()), nil
			})

	case "sparsify":
		return serveLive(ctx, base,
			dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{K: pr.k, Z: pr.z, Seed: pr.seed}},
			ck, opts, stdin, stdout, stderr,
			func(res *dynstream.SparsifierResult) (*graph.Graph, string, error) {
				return res.Sparsifier, fmt.Sprintf("sparsifier: %d edges from %d samples", res.Sparsifier.M(), res.Samples), nil
			})

	case "forest":
		return serveLive(ctx, base, dynstream.ForestTarget{Seed: pr.seed},
			ck, opts, stdin, stdout, stderr,
			func(sk *dynstream.ForestSketch) (*graph.Graph, string, error) {
				forest, err := sk.SpanningForestOpts(nil, pr.dpol)
				if err != nil {
					return nil, "", err
				}
				g := graph.New(base.N())
				for _, e := range forest {
					g.AddUnitEdge(e.U, e.V)
				}
				return g, fmt.Sprintf("spanning forest: %d edges", len(forest)), nil
			})

	case "kcert":
		return serveLive(ctx, base, dynstream.KConnectivityTarget{Seed: pr.seed, K: pr.k},
			ck, opts, stdin, stdout, stderr,
			func(kc *dynstream.KConnectivity) (*graph.Graph, string, error) {
				cert, err := kc.CertificateGraphOpts(pr.dpol)
				if err != nil {
					return nil, "", err
				}
				return cert, fmt.Sprintf("%d-connectivity certificate: %d edges", pr.k, cert.M()), nil
			})

	case "msf":
		return serveLive(ctx, base, dynstream.MSFTarget{Seed: pr.seed, WMax: pr.wmax, Gamma: 0.5},
			ck, opts, stdin, stdout, stderr,
			func(m *dynstream.MSF) (*graph.Graph, string, error) {
				forest, err := m.ForestOpts(pr.dpol)
				if err != nil {
					return nil, "", err
				}
				g := graph.New(base.N())
				for _, e := range forest {
					g.AddEdge(e.U, e.V, e.W)
				}
				return g, fmt.Sprintf("approximate MSF: %d edges", len(forest)), nil
			})

	case "bipartite":
		return serveLive(ctx, base, dynstream.BipartitenessTarget{Seed: pr.seed},
			ck, opts, stdin, stdout, stderr,
			func(b *dynstream.Bipartiteness) (*graph.Graph, string, error) {
				bip, err := b.IsBipartiteOpts(pr.dpol)
				if err != nil {
					return nil, "", err
				}
				return graph.New(0), fmt.Sprintf("bipartite: %v", bip), nil
			})

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// serveLive opens the target's handle over the base stream and serves
// the command loop, wiring `load` to the library's Restore over the
// same base/target/options.
func serveLive[R any](ctx context.Context, base dynstream.Source, target dynstream.Target[R],
	ck replCkpt, opts []dynstream.Option, stdin io.Reader, stdout, stderr io.Writer,
	render func(R) (*graph.Graph, string, error)) error {
	h, err := dynstream.Open(ctx, base, target, opts...)
	if err != nil {
		return err
	}
	restore := func(r io.Reader) (*dynstream.Handle[R], error) {
		return dynstream.Restore(ctx, r, base, target, opts...)
	}
	return serveReplErr(ctx, h, restore, ck, stdin, stdout, stderr, render)
}

// saveCheckpoint writes the handle's snapshot atomically (temp file +
// rename, via the library's CheckpointFile): a process killed mid-write
// can never leave a torn checkpoint at path.
func saveCheckpoint[R any](h *dynstream.Handle[R], path string) error {
	return dynstream.CheckpointFile(h, path)
}

// serveReplErr drives the live command loop: +/- lines accumulate into
// a pending batch, "query" flushes the batch into the handle and
// prints the freshly extracted result (edges on stdout, a summary line
// on stderr), "save"/"load" checkpoint and restore the live state, and
// "quit" exits. A malformed line is answered with a distinguishable
// "err <reason>" line on stdout (mirrored on stderr) and skipped, so a
// scripted producer reading the response stream sees every rejection
// in-band instead of a silent gap. With an auto-snapshot schedule
// (-checkpoint/-every) the pending batch is flushed and the state
// saved every `every` applied updates.
func serveReplErr[R any](ctx context.Context, h *dynstream.Handle[R],
	restore func(io.Reader) (*dynstream.Handle[R], error), ck replCkpt,
	stdin io.Reader, stdout, stderr io.Writer, render func(R) (*graph.Graph, string, error)) error {
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var pending []dynstream.Update
	queries := 0
	// reject answers a malformed line in-band: "err <reason>" on stdout
	// (where a scripted producer reads responses), a note on stderr.
	reject := func(format string, a ...any) error {
		msg := fmt.Sprintf(format, a...)
		if _, err := fmt.Fprintf(stdout, "err %s\n", msg); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "repl: %s\n", msg)
		return nil
	}
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := h.Apply(pending); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "+", "-":
			u, err := serve.ParseUpdate(fields)
			if err != nil {
				if err := reject("%v", err); err != nil {
					return err
				}
				continue
			}
			pending = append(pending, u)
			if ck.every > 0 && len(pending) >= ck.every {
				if err := flush(); err != nil {
					return err
				}
				if err := saveCheckpoint(h, ck.path); err != nil {
					return fmt.Errorf("repl: auto-checkpoint: %w", err)
				}
				fmt.Fprintf(stderr, "repl: checkpoint saved to %s (%d updates applied)\n", ck.path, h.AppliedUpdates())
			}
		case "query":
			if err := flush(); err != nil {
				return err
			}
			res, err := h.Query(ctx)
			if err != nil {
				return err
			}
			g, summary, err := render(res)
			if err != nil {
				return err
			}
			queries++
			if err := writeEdges(stdout, g); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(stdout, "ok %d\n", g.M()); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "repl query %d: %s\n", queries, summary)
		case "save":
			if len(fields) != 2 {
				if err := reject("want: save <path>"); err != nil {
					return err
				}
				continue
			}
			if err := flush(); err != nil {
				return err
			}
			if err := saveCheckpoint(h, fields[1]); err != nil {
				fmt.Fprintf(stderr, "repl: save: %v\n", err)
				continue
			}
			fmt.Fprintf(stderr, "repl: checkpoint saved to %s (%d updates applied)\n", fields[1], h.AppliedUpdates())
		case "load":
			if len(fields) != 2 {
				if err := reject("want: load <path>"); err != nil {
					return err
				}
				continue
			}
			if len(pending) > 0 {
				fmt.Fprintf(stderr, "repl: load discards %d pending updates\n", len(pending))
				pending = pending[:0]
			}
			f, err := os.Open(fields[1])
			if err != nil {
				fmt.Fprintf(stderr, "repl: load: %v\n", err)
				continue
			}
			h2, err := restore(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "repl: load: %v\n", err)
				continue
			}
			h = h2
			fmt.Fprintf(stderr, "repl: restored %s (%d updates applied)\n", fields[1], h.AppliedUpdates())
		case "quit", "exit":
			return nil
		default:
			if err := reject("unknown command %q (want: + u v [w] | - u v [w] | query | save PATH | load PATH | quit)", fields[0]); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

// replayableFor hands src through when the target's passes fit its
// replayability (seekable inputs rewind in constant memory); a true
// pipe feeding a multi-pass build is materialized, with a note.
func replayableFor(src dynstream.Source, passes int, stderr io.Writer) (dynstream.Source, error) {
	if passes <= 1 || dynstream.CanReplay(src) {
		return src, nil
	}
	fmt.Fprintln(stderr, "note: input is not seekable; materializing the stream for a multi-pass build")
	ms := dynstream.NewMemoryStream(src.N())
	if err := src.Replay(ms.Append); err != nil {
		return nil, err
	}
	return ms, nil
}

func writeEdges(w io.Writer, g *graph.Graph) error {
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}
