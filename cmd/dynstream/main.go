// Command dynstream runs the paper's streaming algorithms over a
// dynamic edge stream read from stdin (or a file) in the text format
//
//	n <vertices>
//	+ <u> <v> [w]     insert
//	- <u> <v> [w]     delete
//
// or the binary wire format (auto-detected), and writes the resulting
// edge set to stdout as "u v w" lines, with a summary on stderr.
//
// Subcommands:
//
//	spanner   -k K       two-pass 2^K-spanner (Theorem 1)
//	additive  -d D       one-pass n/D-additive spanner (Theorem 3)
//	sparsify  -k K -z Z  two-pass spectral sparsifier (Corollary 2)
//	forest               AGM spanning forest (Theorem 10)
//	kcert     -k K       k-edge-connectivity certificate
//	msf       [-wmax W]  (1+γ)-approximate minimum spanning forest
//	bipartite            bipartiteness test (prints verdict)
//
// The stream is never materialized: single-pass subcommands (additive,
// forest, kcert, bipartite, and msf with -wmax) ingest a pipe on stdin
// with O(sketch) heap no matter how many updates flow through, and
// multi-pass subcommands rewind seekable inputs (-in FILE, or a
// redirected file on stdin). Only a true pipe feeding a multi-pass
// subcommand falls back to materializing, with a note on stderr.
//
// All subcommands accept -workers P (concurrent same-seeded sketch
// ingest, merged by linearity — output identical to -workers 1) and
// -batch B (ingest batch size; purely an execution knob).
//
// Example:
//
//	dynstream spanner -k 2 -seed 7 -workers 4 < graph.txt > spanner.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dynstream:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dynstream <spanner|additive|sparsify|forest|kcert|msf|bipartite> [flags] < stream.txt")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k       = fs.Int("k", 2, "stretch/connectivity parameter (>= 1)")
		d       = fs.Int("d", 4, "additive spanner space parameter (>= 1)")
		z       = fs.Int("z", 32, "sparsifier repetitions (>= 1)")
		seed    = fs.Uint64("seed", 1, "random seed")
		workers = fs.Int("workers", 1, "concurrent ingest workers (>= 1)")
		batch   = fs.Int("batch", 0, "ingest batch size (0 = default)")
		wmax    = fs.Float64("wmax", 0, "msf: weight upper bound (0 = scan the stream)")
		input   = fs.String("in", "", "input file (default stdin)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	// Algorithm-parameter validation, typed so callers can classify
	// (execution options — workers, batch — are validated by Build).
	switch {
	case *k < 1:
		return fmt.Errorf("-k must be >= 1, got %d: %w", *k, dynstream.ErrBadConfig)
	case *d < 1:
		return fmt.Errorf("-d must be >= 1, got %d: %w", *d, dynstream.ErrBadConfig)
	case *z < 1:
		return fmt.Errorf("-z must be >= 1, got %d: %w", *z, dynstream.ErrBadConfig)
	case *wmax < 0:
		return fmt.Errorf("-wmax must be >= 0, got %v: %w", *wmax, dynstream.ErrBadConfig)
	}
	if extra := fs.Args(); len(extra) > 0 {
		return fmt.Errorf("unexpected arguments after flags: %v", extra)
	}
	in := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := dynstream.NewReaderSource(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "stream: n=%d, %d workers\n", src.N(), *workers)

	ctx := context.Background()
	opts := []dynstream.Option{
		dynstream.WithWorkers(*workers),
		dynstream.WithBatchSize(*batch),
	}

	switch cmd {
	case "spanner":
		st, err := replayableFor(src, 2, stderr)
		if err != nil {
			return err
		}
		res, err := dynstream.Build(ctx, st,
			dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: *k, Seed: *seed}}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "2^%d-spanner: %d edges, %d sketch words\n",
			*k, res.Spanner.M(), res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "additive":
		res, err := dynstream.Build(ctx, src,
			dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: *d, Seed: *seed}}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "n/%d-additive spanner: %d edges, %d centers, %d sketch words\n",
			*d, res.Spanner.M(), res.Centers, res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "sparsify":
		st, err := replayableFor(src, 2, stderr)
		if err != nil {
			return err
		}
		res, err := dynstream.Build(ctx, st,
			dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{K: *k, Z: *z, Seed: *seed}}, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sparsifier: %d edges from %d samples, %d sketch words\n",
			res.Sparsifier.M(), res.Samples, res.SpaceWords)
		return writeEdges(stdout, res.Sparsifier)

	case "forest":
		sk, err := dynstream.Build(ctx, src, dynstream.ForestTarget{Seed: *seed}, opts...)
		if err != nil {
			return err
		}
		forest, err := sk.SpanningForest(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "spanning forest: %d edges, %d sketch words\n",
			len(forest), sk.SpaceWords())
		g := graph.New(src.N())
		for _, e := range forest {
			g.AddUnitEdge(e.U, e.V)
		}
		return writeEdges(stdout, g)

	case "kcert":
		kc, err := dynstream.Build(ctx, src,
			dynstream.KConnectivityTarget{Seed: *seed, K: *k}, opts...)
		if err != nil {
			return err
		}
		cert, err := kc.CertificateGraph()
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%d-connectivity certificate: %d edges, %d sketch words\n",
			*k, cert.M(), kc.SpaceWords())
		return writeEdges(stdout, cert)

	case "msf":
		target := dynstream.MSFTarget{Seed: *seed, WMax: *wmax, Gamma: 0.5}
		st, err := replayableFor(src, target.Passes(), stderr)
		if err != nil {
			return err
		}
		m, err := dynstream.Build(ctx, st, target, opts...)
		if err != nil {
			return err
		}
		forest, err := m.Forest()
		if err != nil {
			return err
		}
		total := 0.0
		g := graph.New(src.N())
		for _, e := range forest {
			g.AddEdge(e.U, e.V, e.W)
			total += e.W
		}
		fmt.Fprintf(stderr, "approximate MSF: %d edges, class-weight total %g, %d sketch words\n",
			len(forest), total, m.SpaceWords())
		return writeEdges(stdout, g)

	case "bipartite":
		b, err := dynstream.Build(ctx, src, dynstream.BipartitenessTarget{Seed: *seed}, opts...)
		if err != nil {
			return err
		}
		bip, err := b.IsBipartite()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bipartite: %v\n", bip)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// replayableFor hands src through when the target's passes fit its
// replayability (seekable inputs rewind in constant memory); a true
// pipe feeding a multi-pass build is materialized, with a note.
func replayableFor(src dynstream.Source, passes int, stderr io.Writer) (dynstream.Source, error) {
	if passes <= 1 || dynstream.CanReplay(src) {
		return src, nil
	}
	fmt.Fprintln(stderr, "note: input is not seekable; materializing the stream for a multi-pass build")
	ms := dynstream.NewMemoryStream(src.N())
	if err := src.Replay(ms.Append); err != nil {
		return nil, err
	}
	return ms, nil
}

func writeEdges(w io.Writer, g *graph.Graph) error {
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}
