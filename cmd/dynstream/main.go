// Command dynstream runs the paper's streaming algorithms over a
// dynamic edge stream read from stdin (or a file) in the text format
//
//	n <vertices>
//	+ <u> <v> [w]     insert
//	- <u> <v> [w]     delete
//
// and writes the resulting edge set to stdout as "u v w" lines, with a
// summary on stderr.
//
// Subcommands:
//
//	spanner   -k K       two-pass 2^K-spanner (Theorem 1)
//	additive  -d D       one-pass n/D-additive spanner (Theorem 3)
//	sparsify  -k K -z Z  two-pass spectral sparsifier (Corollary 2)
//	forest               AGM spanning forest (Theorem 10)
//	kcert     -k K       k-edge-connectivity certificate
//	msf                  (1+γ)-approximate minimum spanning forest
//	bipartite            bipartiteness test (prints verdict)
//
// All subcommands accept -workers P: the stream is split into P
// round-robin shards ingested concurrently into same-seeded linear
// sketches and merged, which by linearity yields output identical to
// single-threaded ingestion.
//
// Example:
//
//	dynstream spanner -k 2 -seed 7 -workers 4 < graph.txt > spanner.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynstream/internal/agm"
	"dynstream/internal/graph"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dynstream:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dynstream <spanner|additive|sparsify|forest|kcert|msf|bipartite> [flags] < stream.txt")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k       = fs.Int("k", 2, "stretch/connectivity parameter (>= 1)")
		d       = fs.Int("d", 4, "additive spanner space parameter (>= 1)")
		z       = fs.Int("z", 32, "sparsifier repetitions (>= 1)")
		seed    = fs.Uint64("seed", 1, "random seed")
		workers = fs.Int("workers", 1, "concurrent ingest workers (>= 1)")
		input   = fs.String("in", "", "input file (default stdin)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch {
	case *k < 1:
		return fmt.Errorf("-k must be >= 1, got %d", *k)
	case *d < 1:
		return fmt.Errorf("-d must be >= 1, got %d", *d)
	case *z < 1:
		return fmt.Errorf("-z must be >= 1, got %d", *z)
	case *workers < 1:
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	if extra := fs.Args(); len(extra) > 0 {
		return fmt.Errorf("unexpected arguments after flags: %v", extra)
	}
	in := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	st, err := stream.ReadText(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "stream: n=%d, %d updates, %d workers\n", st.N(), st.Len(), *workers)

	switch cmd {
	case "spanner":
		res, err := spanner.BuildTwoPassParallel(st, spanner.Config{K: *k, Seed: *seed}, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "2^%d-spanner: %d edges, %d sketch words\n",
			*k, res.Spanner.M(), res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "additive":
		res, err := spanner.BuildAdditiveParallel(st, spanner.AdditiveConfig{D: *d, Seed: *seed}, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "n/%d-additive spanner: %d edges, %d centers, %d sketch words\n",
			*d, res.Spanner.M(), res.Centers, res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "sparsify":
		res, err := sparsify.SparsifyParallel(st, sparsify.Config{K: *k, Z: *z, Seed: *seed}, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sparsifier: %d edges from %d samples, %d sketch words\n",
			res.Sparsifier.M(), res.Samples, res.SpaceWords)
		return writeEdges(stdout, res.Sparsifier)

	case "forest":
		sk, err := parallel.IngestBatched(st, *workers, func() *agm.Sketch {
			return agm.New(*seed, st.N(), agm.Config{})
		})
		if err != nil {
			return err
		}
		forest, err := sk.SpanningForest(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "spanning forest: %d edges, %d sketch words\n",
			len(forest), sk.SpaceWords())
		g := graph.New(st.N())
		for _, e := range forest {
			g.AddUnitEdge(e.U, e.V)
		}
		return writeEdges(stdout, g)

	case "kcert":
		kc, err := parallel.IngestBatched(st, *workers, func() *agm.KConnectivity {
			return agm.NewKConnectivity(*seed, st.N(), *k)
		})
		if err != nil {
			return err
		}
		cert, err := kc.CertificateGraph()
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%d-connectivity certificate: %d edges, %d sketch words\n",
			*k, cert.M(), kc.SpaceWords())
		return writeEdges(stdout, cert)

	case "msf":
		// Upper-bound weight scan to size the class prefixes.
		wmax := 1.0
		if err := st.Replay(func(u stream.Update) error {
			if u.W > wmax {
				wmax = u.W
			}
			return nil
		}); err != nil {
			return err
		}
		m, err := parallel.IngestBatched(st, *workers, func() *agm.MSF {
			return agm.NewMSF(*seed, st.N(), wmax, 0.5)
		})
		if err != nil {
			return err
		}
		forest, err := m.Forest()
		if err != nil {
			return err
		}
		total := 0.0
		g := graph.New(st.N())
		for _, e := range forest {
			g.AddEdge(e.U, e.V, e.W)
			total += e.W
		}
		fmt.Fprintf(stderr, "approximate MSF: %d edges, class-weight total %g, %d sketch words\n",
			len(forest), total, m.SpaceWords())
		return writeEdges(stdout, g)

	case "bipartite":
		b, err := parallel.IngestBatched(st, *workers, func() *agm.Bipartiteness {
			return agm.NewBipartiteness(*seed, st.N())
		})
		if err != nil {
			return err
		}
		bip, err := b.IsBipartite()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bipartite: %v\n", bip)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func writeEdges(w io.Writer, g *graph.Graph) error {
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}
