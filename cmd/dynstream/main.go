// Command dynstream runs the paper's streaming algorithms over a
// dynamic edge stream read from stdin (or a file) in the text format
//
//	n <vertices>
//	+ <u> <v> [w]     insert
//	- <u> <v> [w]     delete
//
// and writes the resulting edge set to stdout as "u v w" lines, with a
// summary on stderr.
//
// Subcommands:
//
//	spanner   -k K       two-pass 2^K-spanner (Theorem 1)
//	additive  -d D       one-pass n/D-additive spanner (Theorem 3)
//	sparsify  -k K -z Z  two-pass spectral sparsifier (Corollary 2)
//	forest               AGM spanning forest (Theorem 10)
//	kcert     -k K       k-edge-connectivity certificate
//	msf                  (1+γ)-approximate minimum spanning forest
//	bipartite            bipartiteness test (prints verdict)
//
// Example:
//
//	dynstream spanner -k 2 -seed 7 < graph.txt > spanner.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynstream/internal/agm"
	"dynstream/internal/graph"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dynstream:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dynstream <spanner|additive|sparsify|forest|kcert|msf|bipartite> [flags] < stream.txt")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k     = fs.Int("k", 2, "stretch/connectivity parameter")
		d     = fs.Int("d", 4, "additive spanner space parameter")
		z     = fs.Int("z", 32, "sparsifier repetitions")
		seed  = fs.Uint64("seed", 1, "random seed")
		input = fs.String("in", "", "input file (default stdin)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	in := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	st, err := stream.ReadText(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "stream: n=%d, %d updates\n", st.N(), st.Len())

	switch cmd {
	case "spanner":
		res, err := spanner.BuildTwoPass(st, spanner.Config{K: *k, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "2^%d-spanner: %d edges, %d sketch words\n",
			*k, res.Spanner.M(), res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "additive":
		res, err := spanner.BuildAdditive(st, spanner.AdditiveConfig{D: *d, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "n/%d-additive spanner: %d edges, %d centers, %d sketch words\n",
			*d, res.Spanner.M(), res.Centers, res.SpaceWords)
		return writeEdges(stdout, res.Spanner)

	case "sparsify":
		res, err := sparsify.Sparsify(st, sparsify.Config{K: *k, Z: *z, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sparsifier: %d edges from %d samples, %d sketch words\n",
			res.Sparsifier.M(), res.Samples, res.SpaceWords)
		return writeEdges(stdout, res.Sparsifier)

	case "forest":
		sk := agm.New(*seed, st.N(), agm.Config{})
		if err := st.Replay(func(u stream.Update) error { sk.AddUpdate(u); return nil }); err != nil {
			return err
		}
		forest, err := sk.SpanningForest(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "spanning forest: %d edges, %d sketch words\n",
			len(forest), sk.SpaceWords())
		g := graph.New(st.N())
		for _, e := range forest {
			g.AddUnitEdge(e.U, e.V)
		}
		return writeEdges(stdout, g)

	case "kcert":
		kc := agm.NewKConnectivity(*seed, st.N(), *k)
		if err := st.Replay(func(u stream.Update) error { kc.AddUpdate(u); return nil }); err != nil {
			return err
		}
		cert, err := kc.CertificateGraph()
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%d-connectivity certificate: %d edges, %d sketch words\n",
			*k, cert.M(), kc.SpaceWords())
		return writeEdges(stdout, cert)

	case "msf":
		// Upper-bound weight scan to size the class prefixes.
		wmax := 1.0
		if err := st.Replay(func(u stream.Update) error {
			if u.W > wmax {
				wmax = u.W
			}
			return nil
		}); err != nil {
			return err
		}
		m := agm.NewMSF(*seed, st.N(), wmax, 0.5)
		if err := st.Replay(func(u stream.Update) error { m.AddUpdate(u); return nil }); err != nil {
			return err
		}
		forest, err := m.Forest()
		if err != nil {
			return err
		}
		total := 0.0
		g := graph.New(st.N())
		for _, e := range forest {
			g.AddEdge(e.U, e.V, e.W)
			total += e.W
		}
		fmt.Fprintf(stderr, "approximate MSF: %d edges, class-weight total %g, %d sketch words\n",
			len(forest), total, m.SpaceWords())
		return writeEdges(stdout, g)

	case "bipartite":
		b := agm.NewBipartiteness(*seed, st.N())
		if err := st.Replay(func(u stream.Update) error { b.AddUpdate(u); return nil }); err != nil {
			return err
		}
		bip, err := b.IsBipartite()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bipartite: %v\n", bip)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func writeEdges(w io.Writer, g *graph.Graph) error {
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}
