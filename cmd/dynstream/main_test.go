package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"dynstream"
	"dynstream/internal/stream"
)

const testStream = `n 6
+ 0 1
+ 1 2
+ 2 3
+ 3 4
+ 4 5
+ 0 5
+ 0 3
- 0 3
`

func runCLI(t *testing.T, args []string, in string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(context.Background(), args, strings.NewReader(in), &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errOut.String())
	}
	return out.String(), errOut.String()
}

func TestCLISpanner(t *testing.T) {
	out, errOut := runCLI(t, []string{"spanner", "-k", "2", "-seed", "3"}, testStream)
	if !strings.Contains(errOut, "spanner") {
		t.Errorf("stderr missing summary: %q", errOut)
	}
	if strings.Contains(out, "0 3") {
		t.Error("deleted edge appeared in output")
	}
	if len(strings.Fields(out)) == 0 {
		t.Error("no edges emitted")
	}
}

func TestCLIForest(t *testing.T) {
	out, _ := runCLI(t, []string{"forest", "-seed", "4"}, testStream)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 6-cycle: spanning tree has 5 edges
		t.Errorf("forest has %d edges, want 5:\n%s", len(lines), out)
	}
}

func TestCLIAdditive(t *testing.T) {
	out, _ := runCLI(t, []string{"additive", "-d", "2", "-seed", "5"}, testStream)
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("no output")
	}
}

func TestCLIBipartite(t *testing.T) {
	out, _ := runCLI(t, []string{"bipartite", "-seed", "6"}, testStream)
	if !strings.Contains(out, "bipartite: true") { // 6-cycle is bipartite
		t.Errorf("output %q", out)
	}
	odd := "n 3\n+ 0 1\n+ 1 2\n+ 0 2\n"
	out, _ = runCLI(t, []string{"bipartite", "-seed", "7"}, odd)
	if !strings.Contains(out, "bipartite: false") {
		t.Errorf("triangle output %q", out)
	}
}

func TestCLIKCert(t *testing.T) {
	out, _ := runCLI(t, []string{"kcert", "-k", "2", "-seed", "8"}, testStream)
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("no output")
	}
}

func TestCLIErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run(context.Background(), []string{"bogus"}, strings.NewReader(testStream), &out, &errOut); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(context.Background(), []string{"spanner"}, strings.NewReader("garbage"), &out, &errOut); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestCLIFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"spanner", "-workers", "0"},
		{"spanner", "-workers", "-3"},
		{"forest", "-workers", "0"},
		{"spanner", "-k", "0"},
		{"additive", "-d", "0"},
		{"sparsify", "-z", "0"},
		{"spanner", "-badflag"},
		{"spanner", "-k", "2", "stray-positional"},
	} {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, strings.NewReader(testStream), &out, &errOut); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

func TestCLIWorkersMatchesSerial(t *testing.T) {
	for _, sub := range [][]string{
		{"spanner", "-k", "2", "-seed", "3"},
		{"additive", "-d", "2", "-seed", "5"},
		{"sparsify", "-k", "1", "-z", "4", "-seed", "6"},
		{"forest", "-seed", "4"},
		{"kcert", "-k", "2", "-seed", "8"},
		{"msf", "-seed", "9"},
		{"bipartite", "-seed", "7"},
	} {
		serialOut, _ := runCLI(t, sub, testStream)
		parOut, errOut := runCLI(t, append(append([]string{}, sub...), "-workers", "3"), testStream)
		if parOut != serialOut {
			t.Errorf("%v -workers 3 output differs:\nserial: %q\nparallel: %q", sub, serialOut, parOut)
		}
		if !strings.Contains(errOut, "3 workers") {
			t.Errorf("%v: stderr missing worker count: %q", sub, errOut)
		}
	}
}

func TestCLIMSF(t *testing.T) {
	weighted := "n 5\n+ 0 1 1\n+ 1 2 1\n+ 2 3 1\n+ 3 4 1\n+ 0 4 50\n"
	out, errOut := runCLI(t, []string{"msf", "-seed", "9"}, weighted)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("MSF has %d edges, want 4:\n%s", len(lines), out)
	}
	if strings.Contains(out, "0 4 ") {
		t.Error("MSF used the heavy edge")
	}
	if !strings.Contains(errOut, "MSF") {
		t.Errorf("stderr: %q", errOut)
	}
}

// pipeReader hides the Seeker of the underlying string reader, so the
// CLI sees a true pipe (as it would on stdin).
type pipeReader struct{ r io.Reader }

func (p pipeReader) Read(b []byte) (int, error) { return p.r.Read(b) }

func TestCLIStreamsFromPipe(t *testing.T) {
	// Single-pass subcommands must work on a non-seekable stdin without
	// materializing; output must equal the seekable-input run.
	for _, sub := range [][]string{
		{"forest", "-seed", "4"},
		{"additive", "-d", "2", "-seed", "5"},
		{"kcert", "-k", "2", "-seed", "8"},
		{"bipartite", "-seed", "6"},
		{"msf", "-seed", "9", "-wmax", "1"},
	} {
		wantOut, _ := runCLI(t, sub, testStream)
		var out, errOut bytes.Buffer
		if err := run(context.Background(), sub, pipeReader{strings.NewReader(testStream)}, &out, &errOut); err != nil {
			t.Fatalf("%v over pipe: %v\nstderr: %s", sub, err, errOut.String())
		}
		if out.String() != wantOut {
			t.Errorf("%v: pipe output differs from seekable output", sub)
		}
		if strings.Contains(errOut.String(), "materializing") {
			t.Errorf("%v: single-pass subcommand materialized the stream", sub)
		}
	}
}

func TestCLIPipeMaterializeFallback(t *testing.T) {
	// A multi-pass subcommand over a true pipe falls back (with a note)
	// and still produces the standard output.
	want, _ := runCLI(t, []string{"spanner", "-k", "2", "-seed", "3"}, testStream)
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"spanner", "-k", "2", "-seed", "3"},
		pipeReader{strings.NewReader(testStream)}, &out, &errOut)
	if err != nil {
		t.Fatalf("spanner over pipe: %v", err)
	}
	if out.String() != want {
		t.Error("pipe spanner output differs from seekable run")
	}
	if !strings.Contains(errOut.String(), "materializing") {
		t.Errorf("expected materialize note on stderr, got %q", errOut.String())
	}
}

func TestCLIBinaryInput(t *testing.T) {
	// The binary wire format is auto-detected and yields the same output
	// as the text encoding of the same stream.
	ms, err := stream.ReadText(strings.NewReader(testStream))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := stream.WriteBinary(&bin, ms); err != nil {
		t.Fatal(err)
	}
	want, _ := runCLI(t, []string{"forest", "-seed", "4"}, testStream)
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"forest", "-seed", "4"}, bytes.NewReader(bin.Bytes()), &out, &errOut); err != nil {
		t.Fatalf("forest over binary: %v", err)
	}
	if out.String() != want {
		t.Error("binary-format output differs from text-format output")
	}
}

func TestCLITypedErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"spanner", "-workers", "0"}, strings.NewReader(testStream), &out, &errOut)
	if !errors.Is(err, dynstream.ErrBadWorkers) {
		t.Errorf("-workers 0: err = %v, want ErrBadWorkers", err)
	}
	err = run(context.Background(), []string{"spanner", "-k", "0"}, strings.NewReader(testStream), &out, &errOut)
	if !errors.Is(err, dynstream.ErrBadConfig) {
		t.Errorf("-k 0: err = %v, want ErrBadConfig", err)
	}
	err = run(context.Background(), []string{"msf", "-wmax", "-1"}, strings.NewReader(testStream), &out, &errOut)
	if !errors.Is(err, dynstream.ErrBadConfig) {
		t.Errorf("-wmax -1: err = %v, want ErrBadConfig", err)
	}
}

func TestCLIForestTraceCoversDecode(t *testing.T) {
	// -trace must cover the post-build extraction too: the decode runs
	// outside Build, on its own policy, and a regression there silently
	// drops every agm/round row from the timeline.
	out, errOut := runCLI(t, []string{"forest", "-seed", "4", "-trace"}, testStream)
	for _, phase := range []string{"== trace:", "ingest", "agm/round00", "ingested updates:"} {
		if !strings.Contains(errOut, phase) {
			t.Errorf("timeline missing %q:\n%s", phase, errOut)
		}
	}
	base, _ := runCLI(t, []string{"forest", "-seed", "4"}, testStream)
	if out != base {
		t.Error("forest output changed under -trace")
	}
}
