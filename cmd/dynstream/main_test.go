package main

import (
	"bytes"
	"strings"
	"testing"
)

const testStream = `n 6
+ 0 1
+ 1 2
+ 2 3
+ 3 4
+ 4 5
+ 0 5
+ 0 3
- 0 3
`

func runCLI(t *testing.T, args []string, in string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, strings.NewReader(in), &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errOut.String())
	}
	return out.String(), errOut.String()
}

func TestCLISpanner(t *testing.T) {
	out, errOut := runCLI(t, []string{"spanner", "-k", "2", "-seed", "3"}, testStream)
	if !strings.Contains(errOut, "spanner") {
		t.Errorf("stderr missing summary: %q", errOut)
	}
	if strings.Contains(out, "0 3") {
		t.Error("deleted edge appeared in output")
	}
	if len(strings.Fields(out)) == 0 {
		t.Error("no edges emitted")
	}
}

func TestCLIForest(t *testing.T) {
	out, _ := runCLI(t, []string{"forest", "-seed", "4"}, testStream)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 6-cycle: spanning tree has 5 edges
		t.Errorf("forest has %d edges, want 5:\n%s", len(lines), out)
	}
}

func TestCLIAdditive(t *testing.T) {
	out, _ := runCLI(t, []string{"additive", "-d", "2", "-seed", "5"}, testStream)
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("no output")
	}
}

func TestCLIBipartite(t *testing.T) {
	out, _ := runCLI(t, []string{"bipartite", "-seed", "6"}, testStream)
	if !strings.Contains(out, "bipartite: true") { // 6-cycle is bipartite
		t.Errorf("output %q", out)
	}
	odd := "n 3\n+ 0 1\n+ 1 2\n+ 0 2\n"
	out, _ = runCLI(t, []string{"bipartite", "-seed", "7"}, odd)
	if !strings.Contains(out, "bipartite: false") {
		t.Errorf("triangle output %q", out)
	}
}

func TestCLIKCert(t *testing.T) {
	out, _ := runCLI(t, []string{"kcert", "-k", "2", "-seed", "8"}, testStream)
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("no output")
	}
}

func TestCLIErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, strings.NewReader(testStream), &out, &errOut); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"spanner"}, strings.NewReader("garbage"), &out, &errOut); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestCLIFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"spanner", "-workers", "0"},
		{"spanner", "-workers", "-3"},
		{"forest", "-workers", "0"},
		{"spanner", "-k", "0"},
		{"additive", "-d", "0"},
		{"sparsify", "-z", "0"},
		{"spanner", "-badflag"},
		{"spanner", "-k", "2", "stray-positional"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, strings.NewReader(testStream), &out, &errOut); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

func TestCLIWorkersMatchesSerial(t *testing.T) {
	for _, sub := range [][]string{
		{"spanner", "-k", "2", "-seed", "3"},
		{"additive", "-d", "2", "-seed", "5"},
		{"sparsify", "-k", "1", "-z", "4", "-seed", "6"},
		{"forest", "-seed", "4"},
		{"kcert", "-k", "2", "-seed", "8"},
		{"msf", "-seed", "9"},
		{"bipartite", "-seed", "7"},
	} {
		serialOut, _ := runCLI(t, sub, testStream)
		parOut, errOut := runCLI(t, append(append([]string{}, sub...), "-workers", "3"), testStream)
		if parOut != serialOut {
			t.Errorf("%v -workers 3 output differs:\nserial: %q\nparallel: %q", sub, serialOut, parOut)
		}
		if !strings.Contains(errOut, "3 workers") {
			t.Errorf("%v: stderr missing worker count: %q", sub, errOut)
		}
	}
}

func TestCLIMSF(t *testing.T) {
	weighted := "n 5\n+ 0 1 1\n+ 1 2 1\n+ 2 3 1\n+ 3 4 1\n+ 0 4 50\n"
	out, errOut := runCLI(t, []string{"msf", "-seed", "9"}, weighted)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("MSF has %d edges, want 4:\n%s", len(lines), out)
	}
	if strings.Contains(out, "0 4 ") {
		t.Error("MSF used the heavy edge")
	}
	if !strings.Contains(errOut, "MSF") {
		t.Errorf("stderr: %q", errOut)
	}
}
