package main

// The `dynstream client` subcommand: a thin HTTP client for a running
// dynstreamd, kpod-style — it reuses the daemon's own request/response
// types from internal/serve instead of duplicating them, so the two
// sides cannot drift.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dynstream/internal/serve"
)

// runClient dispatches `dynstream client <update|query|status|checkpoint>`.
func runClient(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("client", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "daemon address (host:port)")
		target  = fs.String("target", "", "target to query (optional when the daemon serves one)")
		batch   = fs.Int("batch", 1024, "update lines per POST (>= 1)")
		timeout = fs.Duration("timeout", 60*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("usage: dynstream client [-addr HOST:PORT] <update|query|status|checkpoint>")
	}
	if *batch < 1 {
		return fmt.Errorf("client: -batch must be >= 1, got %d", *batch)
	}
	c := &client{base: "http://" + *addr, hc: &http.Client{Timeout: *timeout}, ctx: ctx}
	switch rest[0] {
	case "update":
		return c.update(stdin, stderr, *batch)
	case "query":
		return c.query(*target, stdout, stderr)
	case "status":
		return c.status(stdout)
	case "checkpoint":
		return c.checkpoint(stderr)
	default:
		return fmt.Errorf("client: unknown action %q (want update|query|status|checkpoint)", rest[0])
	}
}

type client struct {
	base string
	hc   *http.Client
	ctx  context.Context
}

// do issues one request and decodes the JSON response into out,
// surfacing the daemon's ErrorResponse on non-2xx statuses.
func (c *client) do(method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(c.ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e serve.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s: %s (%s)", path, e.Error, resp.Status)
		}
		return fmt.Errorf("client: %s: %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// update streams update lines from stdin to POST /v1/update in batches
// of `batch` lines. Lines are validated locally with the shared parser,
// so a malformed line is reported (and skipped) without burning a
// round-trip.
func (c *client) update(stdin io.Reader, stderr io.Writer, batch int) error {
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var (
		buf   bytes.Buffer
		lines int
		total int64
	)
	flush := func() error {
		if lines == 0 {
			return nil
		}
		var resp serve.UpdateResponse
		if err := c.do(http.MethodPost, "/v1/update", "text/plain", bytes.NewReader(buf.Bytes()), &resp); err != nil {
			return err
		}
		total = resp.Applied
		buf.Reset()
		lines = 0
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") || fields[0] == "n" {
			continue
		}
		if _, err := serve.ParseUpdate(fields); err != nil {
			fmt.Fprintf(stderr, "client: skipping bad line: %v\n", err)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		lines++
		if lines >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "client: daemon at %d applied updates\n", total)
	return nil
}

// query prints the result edges as "u v w" lines on stdout — the same
// format the offline subcommands write, so outputs diff directly — and
// the summary on stderr.
func (c *client) query(target string, stdout, stderr io.Writer) error {
	path := "/v1/query"
	if target != "" {
		path += "?target=" + target
	}
	var resp serve.QueryResponse
	if err := c.do(http.MethodGet, path, "", nil, &resp); err != nil {
		return err
	}
	if resp.Bipartite != nil {
		fmt.Fprintf(stdout, "bipartite: %v\n", *resp.Bipartite)
	}
	for _, e := range resp.Edges {
		if _, err := fmt.Fprintf(stdout, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "client: %s (applied %d)\n", resp.Summary, resp.Applied)
	return nil
}

// status pretty-prints GET /v1/status.
func (c *client) status(stdout io.Writer) error {
	var resp serve.StatusResponse
	if err := c.do(http.MethodGet, "/v1/status", "", nil, &resp); err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}

// checkpoint forces a snapshot now.
func (c *client) checkpoint(stderr io.Writer) error {
	var resp serve.CheckpointResponse
	if err := c.do(http.MethodPost, "/v1/checkpoint", "", nil, &resp); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "client: checkpoint saved to %s (%d updates applied)\n",
		strings.Join(resp.Paths, ", "), resp.Applied)
	return nil
}
