package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/graph"
)

// The process-level tests re-exec the test binary as real `dynstream
// worker` processes: TestMain intercepts the child invocation (marked
// by DYNSTREAM_CLI_ARGS) and routes it through the same run() the
// installed binary uses — a coordinator in the test process drives
// genuine worker processes over unix sockets.
const cliArgsEnv = "DYNSTREAM_CLI_ARGS"

func TestMain(m *testing.M) {
	if argv := os.Getenv(cliArgsEnv); argv != "" {
		main2(strings.Split(argv, "\x1f"))
		return
	}
	os.Exit(m.Run())
}

// main2 is main() for re-exec'd children (same signal translation).
func main2(args []string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, args, os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "dynstream: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "dynstream:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startWorkerProcs launches n real worker processes listening on unix
// sockets and waits for the sockets to appear.
func startWorkerProcs(t *testing.T, n int, extraArgs ...string) ([]string, []*exec.Cmd) {
	t.Helper()
	dir, err := os.MkdirTemp("", "dynproc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	addrs := make([]string, n)
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
		args := append([]string{"worker", "-listen", sock, "-q"}, extraArgs...)
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), cliArgsEnv+"="+strings.Join(args, "\x1f"))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		addrs[i] = sock
	}
	readyCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, sock := range addrs {
		if err := waitSocketReady(readyCtx, sock); err != nil {
			t.Fatalf("worker socket %s never became dialable: %v", sock, err)
		}
	}
	return addrs, procs
}

// waitSocketReady probes the socket with short ctx-bounded dials until
// the worker accepts. The probe connection is closed immediately; the
// worker's accept loop survives the dropped session and keeps
// listening for the real coordinator.
func waitSocketReady(ctx context.Context, sock string) error {
	d := net.Dialer{}
	for {
		probeCtx, cancelProbe := context.WithTimeout(ctx, 100*time.Millisecond)
		conn, err := d.DialContext(probeCtx, "unix", sock)
		cancelProbe()
		if err == nil {
			conn.Close()
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func processTestStream(t *testing.T) *dynstream.MemoryStream {
	t.Helper()
	g := graph.ConnectedGNP(40, 0.15, 71)
	for i := 0; i < g.N(); i++ {
		g.AddEdge(i, (i+7)%g.N(), float64(1+i%5))
	}
	return dynstream.StreamWithChurn(g, 300, 72)
}

// TestProcessEquivalenceAllTargets is the acceptance gate: a
// coordinator plus three real worker processes over unix sockets must
// produce byte-identical sketch state (or identical decoded output) to
// the serial Build, for every target.
func TestProcessEquivalenceAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st := processTestStream(t)
	addrs, _ := startWorkerProcs(t, 3)
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	remote := dynstream.WithRemoteCluster(cluster)

	marshalOf := func(v any) []byte {
		m, ok := v.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			return nil
		}
		enc, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	check := func(name string, serial, rem any, serialErr, remErr error) {
		t.Helper()
		if serialErr != nil || remErr != nil {
			t.Fatalf("%s: serial err %v, remote err %v", name, serialErr, remErr)
		}
		if sb := marshalOf(serial); sb != nil {
			if !bytes.Equal(sb, marshalOf(rem)) {
				t.Fatalf("%s: sketch state differs between serial and multi-process build", name)
			}
			return
		}
		if fmt.Sprintf("%+v", serial) != fmt.Sprintf("%+v", rem) {
			t.Fatalf("%s: result differs between serial and multi-process build", name)
		}
	}

	{
		s, serr := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 1})
		r, rerr := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 1}, remote)
		check("forest", s, r, serr, rerr)
	}
	{
		s, serr := dynstream.Build(ctx, st, dynstream.KConnectivityTarget{Seed: 2, K: 2})
		r, rerr := dynstream.Build(ctx, st, dynstream.KConnectivityTarget{Seed: 2, K: 2}, remote)
		check("kconnectivity", s, r, serr, rerr)
	}
	{
		s, serr := dynstream.Build(ctx, st, dynstream.BipartitenessTarget{Seed: 3})
		r, rerr := dynstream.Build(ctx, st, dynstream.BipartitenessTarget{Seed: 3}, remote)
		check("bipartiteness", s, r, serr, rerr)
	}
	{
		s, serr := dynstream.Build(ctx, st, dynstream.MSFTarget{Seed: 4, Gamma: 0.5})
		r, rerr := dynstream.Build(ctx, st, dynstream.MSFTarget{Seed: 4, Gamma: 0.5}, remote)
		check("msf", s, r, serr, rerr)
	}
	{
		tgt := dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: 3, Seed: 5}}
		s, serr := dynstream.Build(ctx, st, tgt)
		r, rerr := dynstream.Build(ctx, st, tgt, remote)
		if serr != nil || rerr != nil {
			t.Fatalf("additive: %v / %v", serr, rerr)
		}
		assertSameGraph(t, "additive", s.Spanner, r.Spanner)
	}
	{
		tgt := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 6}}
		s, serr := dynstream.Build(ctx, st, tgt)
		r, rerr := dynstream.Build(ctx, st, tgt, remote)
		if serr != nil || rerr != nil {
			t.Fatalf("spanner: %v / %v", serr, rerr)
		}
		assertSameGraph(t, "spanner", s.Spanner, r.Spanner)
	}
	{
		tgt := dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
			K: 1, Z: 1, H: 3, Seed: 7,
			Estimate: dynstream.EstimateConfig{K: 1, J: 2, T: 3, Seed: 8},
		}}
		s, serr := dynstream.Build(ctx, st, tgt)
		r, rerr := dynstream.Build(ctx, st, tgt, remote)
		if serr != nil || rerr != nil {
			t.Fatalf("sparsifier: %v / %v", serr, rerr)
		}
		assertSameGraph(t, "sparsifier", s.Sparsifier, r.Sparsifier)
	}
	out, in := cluster.BytesOnWire()
	t.Logf("3 worker processes, wire: %d B out, %d B in", out, in)
}

func assertSameGraph(t *testing.T, what string, a, b *dynstream.Graph) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: %d vs %d edges", what, len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d: %v vs %v", what, i, ae[i], be[i])
		}
	}
}

// TestProcessWorkerKillRecovery kills one worker process with SIGKILL
// mid-stream and checks the coordinator re-replays its shard to the
// survivors, still matching the serial build exactly.
func TestProcessWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	g := graph.ConnectedGNP(300, 0.05, 81)
	st := dynstream.StreamWithChurn(g, 20000, 82)
	addrs, procs := startWorkerProcs(t, 3)
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	serial, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// SIGKILL one worker the moment the stream starts flowing.
	killed := false
	remote, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 9},
		dynstream.WithRemoteCluster(cluster),
		dynstream.WithBatchSize(64),
		dynstream.WithProgress(func(updates int64) {
			if !killed && updates > int64(st.Len())/10 {
				killed = true
				procs[1].Process.Signal(syscall.SIGKILL)
			}
		}))
	if err != nil {
		t.Fatalf("build with a killed worker: %v", err)
	}
	if !killed {
		t.Fatal("kill never fired")
	}
	if live := cluster.Live(); live != 2 {
		t.Fatalf("live workers after kill: %d, want 2", live)
	}
	sb, _ := serial.MarshalBinary()
	rb, _ := remote.MarshalBinary()
	if !bytes.Equal(sb, rb) {
		t.Fatal("state after worker-kill recovery differs from serial build")
	}
}

// TestProcessSIGINT checks the signal satellite: a worker process
// interrupted with SIGINT exits cleanly (status 130, no stack trace).
func TestProcessSIGINT(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	addrs, procs := startWorkerProcs(t, 1)
	_ = addrs
	proc := procs[0]
	var stderr bytes.Buffer
	proc.Stderr = &stderr // too late for the pipe, but keep the field consistent
	time.Sleep(100 * time.Millisecond)
	if err := proc.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case <-done:
		code := proc.ProcessState.ExitCode()
		if code != 130 {
			t.Fatalf("SIGINT exit code %d, want 130 (clean ctx-cancel shutdown)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on SIGINT")
	}
}

// TestDistributedSmokeLarge is the CI smoke body: 1 coordinator + 3
// worker processes over unix sockets build a spanner from a generated
// 1M-update stream and the result is diffed against the serial build.
// Gated behind an env var — it moves ~10^6 updates through the wire.
func TestDistributedSmokeLarge(t *testing.T) {
	if os.Getenv("DYNSTREAM_DIST_SMOKE") == "" {
		t.Skip("set DYNSTREAM_DIST_SMOKE=1 to run the 1M-update smoke")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	g := graph.ConnectedGNP(2000, 0.02, 91)
	churn := (1000000 - g.M()) / 2
	st := dynstream.StreamWithChurn(g, churn, 92)
	t.Logf("stream: n=%d, %d updates", st.N(), st.Len())

	addrs, _ := startWorkerProcs(t, 3)
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	tgt := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 10}}
	t0 := time.Now()
	serial, err := dynstream.Build(ctx, st, tgt, dynstream.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	serialDur := time.Since(t0)
	t0 = time.Now()
	remote, err := dynstream.Build(ctx, st, tgt, dynstream.WithRemoteCluster(cluster))
	if err != nil {
		t.Fatal(err)
	}
	remoteDur := time.Since(t0)
	assertSameGraph(t, "1M-update spanner", serial.Spanner, remote.Spanner)
	out, in := cluster.BytesOnWire()
	ups := float64(2*st.Len()) / remoteDur.Seconds() // two passes
	t.Logf("serial %.1fs, distributed %.1fs (%.0f upd/s through the wire), wire %d B out / %d B in",
		serialDur.Seconds(), remoteDur.Seconds(), ups, out, in)
}
