package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/graph"
	"dynstream/internal/serve"
)

// The process tests re-exec the test binary as a real dynstreamd
// process: TestMain intercepts the child invocation (marked by
// DYNSTREAMD_ARGS) and routes it through the same run() the installed
// binary uses, so signals, exit codes, and stdio behave exactly as in
// production.
const daemonArgsEnv = "DYNSTREAMD_ARGS"

func TestMain(m *testing.M) {
	if argv := os.Getenv(daemonArgsEnv); argv != "" {
		os.Exit(run(strings.Split(argv, "\x1f"), os.Stdin, os.Stderr, os.LookupEnv))
	}
	os.Exit(m.Run())
}

// procTestLog builds the deterministic insert/delete stream the tests
// feed the daemon — same xorshift construction as the serve package's
// testLog, so prefixes replay identically everywhere.
func procTestLog(n, m int, seed uint64) []dynstream.Update {
	x := seed | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	var log []dynstream.Update
	type edge struct{ u, v int }
	live := map[edge]bool{}
	for len(log) < m {
		u := int(next() % uint64(n))
		v := int(next() % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if live[e] && next()%4 == 0 {
			log = append(log, dynstream.Update{U: u, V: v, W: 1, Delta: -1})
			delete(live, e)
			continue
		}
		if !live[e] {
			log = append(log, dynstream.Update{U: u, V: v, W: 1, Delta: 1})
			live[e] = true
		}
	}
	return log[:m]
}

// updLines renders updates in the text feed format.
func updLines(log []dynstream.Update) string {
	var b strings.Builder
	for _, u := range log {
		op := "+"
		if u.Delta < 0 {
			op = "-"
		}
		fmt.Fprintf(&b, "%s %d %d\n", op, u.U, u.V)
	}
	return b.String()
}

// offlineForestEdges is the ground truth: an offline Build over exactly
// log[:upto], rendered through the same graph the daemon's render uses,
// so a correct daemon response matches bit for bit.
func offlineForestEdges(t *testing.T, n int, log []dynstream.Update, upto int64, seed uint64) []serve.EdgeJSON {
	t.Helper()
	ms := dynstream.NewMemoryStream(n)
	for _, u := range log[:upto] {
		if err := ms.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	sk, err := dynstream.Build(context.Background(), ms, dynstream.ForestTarget{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := sk.SpanningForestParallel(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	for _, e := range forest {
		g.AddUnitEdge(e.U, e.V)
	}
	out := []serve.EdgeJSON{}
	for _, e := range g.Edges() {
		out = append(out, serve.EdgeJSON{U: e.U, V: e.V, W: e.W})
	}
	return out
}

// daemonProc is one live dynstreamd child process.
type daemonProc struct {
	t     *testing.T
	cmd   *exec.Cmd
	stdin io.WriteCloser
	base  string // http://HOST:PORT

	mu     sync.Mutex
	stderr bytes.Buffer
}

// startDaemon launches the daemon with -listen 127.0.0.1:0 plus the
// given flags, captures stderr, and waits for the listening line to
// learn the actual address.
func startDaemon(t *testing.T, env []string, args ...string) *daemonProc {
	t.Helper()
	args = append([]string{"-listen", "127.0.0.1:0"}, args...)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), daemonArgsEnv+"="+strings.Join(args, "\x1f"))
	cmd.Env = append(cmd.Env, env...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{t: t, cmd: cmd, stdin: stdin}
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var line strings.Builder
		sentAddr := false
		for {
			n, err := stderrPipe.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.stderr.Write(buf[:n])
				p.mu.Unlock()
				if !sentAddr {
					line.Write(buf[:n])
					if i := strings.Index(line.String(), "listening on http://"); i >= 0 {
						rest := line.String()[i+len("listening on http://"):]
						if j := strings.IndexAny(rest, " \n"); j >= 0 {
							addrCh <- rest[:j]
							sentAddr = true
						}
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not report a listen address; stderr:\n%s", p.stderrText())
	}
	return p
}

func (p *daemonProc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// waitExit waits for the process and returns its exit code.
func (p *daemonProc) waitExit() int {
	err := p.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	p.t.Fatalf("wait: %v", err)
	return -1
}

// status fetches /v1/status.
func (p *daemonProc) status() (serve.StatusResponse, error) {
	var st serve.StatusResponse
	resp, err := http.Get(p.base + "/v1/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitStatus polls /v1/status until pred holds.
func (p *daemonProc) waitStatus(what string, pred func(serve.StatusResponse) bool) {
	p.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := p.status()
		if err == nil && pred(st) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.t.Fatalf("daemon never reached %s; stderr:\n%s", what, p.stderrText())
}

// waitUpdates polls /v1/status until the daemon has admitted want
// updates.
func (p *daemonProc) waitUpdates(want uint64) {
	p.t.Helper()
	p.waitStatus(fmt.Sprintf("%d updates", want),
		func(st serve.StatusResponse) bool { return st.UpdatesTotal >= want })
}

// query fetches /v1/query.
func (p *daemonProc) query() (serve.QueryResponse, error) {
	var qr serve.QueryResponse
	resp, err := http.Get(p.base + "/v1/query")
	if err != nil {
		return qr, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return qr, err
	}
	if resp.StatusCode != http.StatusOK {
		return qr, fmt.Errorf("query status %d", resp.StatusCode)
	}
	return qr, nil
}

// TestDaemonQueryVsOffline feeds a real daemon process over stdin and
// checks the HTTP query answer is bit-identical to an offline Build
// over the same stream. -n arrives via DYNSTREAM_N to exercise the env
// path end to end.
func TestDaemonQueryVsOffline(t *testing.T) {
	const (
		n    = 64
		m    = 1200
		seed = 7
	)
	log := procTestLog(n, m, 0x5eed)
	p := startDaemon(t, []string{"DYNSTREAM_N=64"},
		"-seed", "7", "-feed-batch", "50")

	if _, err := io.WriteString(p.stdin, updLines(log)); err != nil {
		t.Fatal(err)
	}
	p.stdin.Close() // EOF flushes the final partial batch
	p.waitUpdates(m)

	qr, err := p.query()
	if err != nil {
		t.Fatal(err)
	}
	if qr.Applied != m {
		t.Fatalf("query applied = %d, want %d", qr.Applied, m)
	}
	want := offlineForestEdges(t, n, log, m, seed)
	got := qr.Edges
	if got == nil {
		got = []serve.EdgeJSON{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("daemon forest diverges from offline build:\n got %v\nwant %v", got, want)
	}

	// A clean shutdown after the feed finished still exits 0.
	p.cmd.Process.Signal(syscall.SIGTERM)
	if code := p.waitExit(); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, p.stderrText())
	}
}

// TestDaemonSIGTERMDrain is the graceful-drain contract: SIGTERM
// mid-stream must exit 0, leave a valid final checkpoint, and that
// checkpoint must restore to a state bit-identical to the applied
// prefix of the feed.
func TestDaemonSIGTERMDrain(t *testing.T) {
	const (
		n    = 64
		m    = 600
		seed = 3
	)
	log := procTestLog(n, m, 0xabcdef)
	ckpt := filepath.Join(t.TempDir(), "drain.ckpt")
	p := startDaemon(t, nil,
		"-n", "64", "-seed", "3", "-feed-batch", "25", "-checkpoint", ckpt)

	// Feed the whole prefix but keep stdin open: the daemon is
	// mid-stream when the signal lands.
	if _, err := io.WriteString(p.stdin, updLines(log)); err != nil {
		t.Fatal(err)
	}
	p.waitUpdates(m)

	p.cmd.Process.Signal(syscall.SIGTERM)
	if code := p.waitExit(); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, p.stderrText())
	}

	// The final checkpoint restores to exactly the applied prefix.
	b, restored, note, err := serve.OpenBackend(context.Background(),
		serve.Spec{Target: "forest", N: n, Seed: seed}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if note != "" || restored != m {
		t.Fatalf("restore: applied %d (note %q), want %d from the drain checkpoint", restored, note, m)
	}
	qr, err := b.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := offlineForestEdges(t, n, log, m, seed)
	got := qr.Edges
	if got == nil {
		got = []serve.EdgeJSON{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored state diverges from applied prefix:\n got %v\nwant %v", got, want)
	}
}

// TestDaemonSIGKILLRestart kills the daemon without warning and
// restarts it from its auto-checkpoint: the restored prefix plus a
// replayed suffix must reproduce the full-stream state exactly.
func TestDaemonSIGKILLRestart(t *testing.T) {
	const (
		n    = 64
		m    = 1000
		half = 500
		seed = 11
	)
	log := procTestLog(n, m, 0xfaded)
	ckpt := filepath.Join(t.TempDir(), "auto.ckpt")
	p := startDaemon(t, nil,
		"-n", "64", "-seed", "11", "-feed-batch", "50",
		"-checkpoint", ckpt, "-every", "100")

	if _, err := io.WriteString(p.stdin, updLines(log[:half])); err != nil {
		t.Fatal(err)
	}
	// UpdatesTotal advances before the auto-checkpoint in the same
	// batch finishes writing; the Checkpoints counter only advances
	// after the write is durable — wait for both before the kill, or
	// SIGKILL can land mid-write and leave only the previous snapshot.
	p.waitStatus("500 updates and 5 checkpoints", func(st serve.StatusResponse) bool {
		return st.UpdatesTotal >= half && st.Checkpoints >= half/100
	})
	p.cmd.Process.Kill()
	p.cmd.Wait()

	// Restart from the snapshot, HTTP-only.
	p2 := startDaemon(t, nil,
		"-n", "64", "-seed", "11", "-feed", "none", "-checkpoint", ckpt)
	st, err := p2.status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Targets) != 1 {
		t.Fatalf("status targets = %+v", st.Targets)
	}
	restored := st.Targets[0].Applied
	if restored != half {
		t.Fatalf("restored applied = %d, want %d (auto-checkpoint at the last -every boundary)", restored, half)
	}

	// Replay the suffix over HTTP and compare against the full stream.
	body := updLines(log[restored:])
	resp, err := http.Post(p2.base+"/v1/update", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d", resp.StatusCode)
	}
	qr, err := p2.query()
	if err != nil {
		t.Fatal(err)
	}
	if qr.Applied != m {
		t.Fatalf("after replay applied = %d, want %d", qr.Applied, m)
	}
	want := offlineForestEdges(t, n, log, m, seed)
	got := qr.Edges
	if got == nil {
		got = []serve.EdgeJSON{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored+replayed state diverges from offline build:\n got %v\nwant %v", got, want)
	}
	p2.cmd.Process.Signal(syscall.SIGTERM)
	if code := p2.waitExit(); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, p2.stderrText())
	}
}

// TestDaemonSmokeLarge is the acceptance run: a 1M-update feed with
// concurrent HTTP queries, every query bit-identical to an offline
// Build over its exact prefix. Minutes of work, so it only runs when
// DYNSTREAM_DAEMON_SMOKE=1.
func TestDaemonSmokeLarge(t *testing.T) {
	if os.Getenv("DYNSTREAM_DAEMON_SMOKE") != "1" {
		t.Skip("set DYNSTREAM_DAEMON_SMOKE=1 to run the 1M-update daemon smoke")
	}
	const (
		n     = 10000
		m     = 1000000
		batch = 1000
		seed  = 1
	)
	log := procTestLog(n, m, 0xbead5)
	p := startDaemon(t, nil,
		"-n", "10000", "-seed", "1", "-feed-batch", "1000")

	// Feed in a goroutine while queriers hammer the HTTP API.
	go func() {
		io.WriteString(p.stdin, updLines(log))
		p.stdin.Close()
	}()
	var wg sync.WaitGroup
	type snap struct {
		applied int64
		edges   []serve.EdgeJSON
	}
	var mu sync.Mutex
	var snaps []snap
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				qr, err := p.query()
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				mu.Lock()
				snaps = append(snaps, snap{qr.Applied, qr.Edges})
				mu.Unlock()
				time.Sleep(2 * time.Second)
			}
		}()
	}
	wg.Wait()
	p.waitUpdates(m)
	qr, err := p.query()
	if err != nil {
		t.Fatal(err)
	}
	snaps = append(snaps, snap{qr.Applied, qr.Edges})

	seen := map[int64]bool{}
	for _, sn := range snaps {
		if sn.applied%batch != 0 {
			t.Fatalf("query observed applied=%d, not a batch boundary", sn.applied)
		}
		if seen[sn.applied] {
			continue
		}
		seen[sn.applied] = true
		want := offlineForestEdges(t, n, log, sn.applied, seed)
		got := sn.edges
		if got == nil {
			got = []serve.EdgeJSON{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query at applied=%d diverges from offline build", sn.applied)
		}
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	if code := p.waitExit(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
}
