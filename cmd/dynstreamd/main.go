// Command dynstreamd is the resident sketch-serving daemon: it owns
// one or more live build handles (any of the seven targets, all over
// the same vertex set), ingests a continuous update feed, and serves
// online queries to many concurrent HTTP clients.
//
//	dynstreamd -n 10000 -target forest,bipartite -listen 127.0.0.1:8080 < updates.txt
//
// Endpoints:
//
//	POST /v1/update      apply a batch (JSON {"updates":[...]} or text update lines)
//	GET  /v1/query       extract the current result (?target= with several targets)
//	GET  /v1/status      applied counts, cache stats, uptime
//	POST /v1/checkpoint  force a snapshot now
//	GET  /healthz        liveness (always 200 while the process serves)
//	GET  /readyz         readiness (503 once draining)
//	GET  /metrics        Prometheus text format
//
// The feed (-feed) runs alongside the HTTP API:
//
//	stdin        update lines on standard input (default)
//	none         HTTP updates only
//	tcp:ADDR     listen on ADDR; every connection streams update lines
//	unix:PATH    same, over a unix socket
//	tail:FILE    follow FILE, ingesting lines as they are appended
//
// Every flag also reads a DYNSTREAM_* environment variable (flag wins):
// -feed-batch ⇔ DYNSTREAM_FEED_BATCH, and so on.
//
// With -checkpoint PATH -every N the daemon snapshots its live state
// atomically every N updates and restores from the latest valid
// snapshot at startup (the feed should then resume past the restored
// AppliedUpdates count, printed at startup). On SIGTERM/SIGINT the
// daemon drains gracefully: updates are rejected (503, /readyz turns
// 503), in-flight batches flush, a final checkpoint is written, open
// query connections finish, and the process exits 0.
//
// Queries under concurrent ingest are batch-boundary consistent: the
// result and its applied-update count are read under one hold of the
// handle's mutex, so an offline build over exactly that stream prefix
// reproduces the response bit for bit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux, exposed only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynstream"
	"dynstream/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr, os.LookupEnv))
}

// run is the daemon lifecycle; factored from main (and re-entered by
// the test binary) so process tests can drive it. Returns the exit
// code: 0 after a clean drain, 1 on error.
func run(args []string, stdin io.Reader, stderr io.Writer, lookupEnv func(string) (string, bool)) int {
	fs := flag.NewFlagSet("dynstreamd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		targets   = fs.String("target", "forest", "comma-separated targets to serve (forest|kcert|bipartite|msf|spanner|additive|sparsify)")
		nFlag     = fs.Int("n", 0, "vertex count (required, >= 1)")
		k         = fs.Int("k", 2, "stretch/connectivity parameter (>= 1)")
		d         = fs.Int("d", 4, "additive spanner space parameter (>= 1)")
		z         = fs.Int("z", 32, "sparsifier repetitions (>= 1)")
		seed      = fs.Uint64("seed", 1, "random seed")
		wmax      = fs.Float64("wmax", 0, "msf: weight upper bound (required for msf)")
		workers   = fs.Int("workers", 1, "concurrent ingest workers (>= 1)")
		decodeW   = fs.Int("decodeworkers", 0, "concurrent decode workers (0 = follow -workers)")
		batch     = fs.Int("batch", 0, "handle ingest batch size (0 = default)")
		feed      = fs.String("feed", "stdin", "update feed: stdin|none|tcp:ADDR|unix:PATH|tail:FILE")
		feedBatch = fs.Int("feed-batch", 256, "feed lines per applied batch (>= 1)")
		ckpt      = fs.String("checkpoint", "", "snapshot path (atomic rename; .<target> suffix per target when serving several)")
		every     = fs.Int("every", 0, "auto-snapshot after this many admitted updates (with -checkpoint)")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		slowQ     = fs.Duration("slow-query", 0, "log queries slower than this threshold (0 = disabled)")
		quiet     = fs.Bool("q", false, "suppress operational log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "dynstreamd:", err)
		return 1
	}
	if err := serve.ApplyEnv(fs, lookupEnv); err != nil {
		return fail(err)
	}
	if extra := fs.Args(); len(extra) > 0 {
		return fail(fmt.Errorf("unexpected arguments after flags: %v", extra))
	}
	names := strings.Split(*targets, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	switch {
	case *nFlag < 1:
		return fail(fmt.Errorf("-n is required (vertex count >= 1): %w", dynstream.ErrBadConfig))
	case *k < 1 || *d < 1 || *z < 1:
		return fail(fmt.Errorf("-k/-d/-z must be >= 1: %w", dynstream.ErrBadConfig))
	case *feedBatch < 1:
		return fail(fmt.Errorf("-feed-batch must be >= 1, got %d: %w", *feedBatch, dynstream.ErrBadConfig))
	case *every < 0:
		return fail(fmt.Errorf("-every must be >= 0, got %d: %w", *every, dynstream.ErrBadConfig))
	case *every > 0 && *ckpt == "":
		return fail(fmt.Errorf("-every needs -checkpoint: %w", dynstream.ErrBadConfig))
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "dynstreamd: "+format+"\n", a...) }
	if *quiet {
		logf = func(string, ...any) {}
	}

	// SIGTERM/SIGINT trigger the graceful drain (not an abort): the
	// signal context only gates startup and the feed loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One tracer observes every backend's pipeline phases (ingest
	// shards, decode, query, checkpoint) and bridges them into the
	// /metrics phase histograms. The server doesn't exist yet while
	// backends open/restore — phases fired before it does are kept in
	// the tracer's aggregates but skipped by the bridge (same
	// goroutine, so the nil check is race-free).
	tr := dynstream.NewTracer()
	var srv *serve.Server
	tr.OnSpanEnd(func(e dynstream.TraceEvent) {
		if srv != nil {
			srv.Metrics().ObservePhase(e.Phase, e.Dur)
		}
	})

	// Open (or restore) every target over an empty n-vertex base graph.
	ckptPaths := serve.CheckpointPathsFor(*ckpt, names)
	backends := make([]serve.Backend, 0, len(names))
	for _, name := range names {
		spec := serve.Spec{
			Target: name, N: *nFlag, K: *k, D: *d, Z: *z, Seed: *seed, WMax: *wmax,
			Workers: *workers, DecodeWorkers: *decodeW, Batch: *batch, Tracer: tr,
		}
		b, restored, note, err := serve.OpenBackend(ctx, spec, ckptPaths[name])
		if err != nil {
			return fail(fmt.Errorf("open %s: %w", name, err))
		}
		if note != "" {
			logf("%s: %s", name, note)
		}
		if restored >= 0 {
			logf("%s: restored from %s (%d updates applied)", name, ckptPaths[name], restored)
		}
		backends = append(backends, b)
	}
	srv, err := serve.NewServer(backends, serve.ServerConfig{
		Checkpoint: *ckpt, Every: *every, Logf: logf, SlowQuery: *slowQ,
	})
	if err != nil {
		return fail(err)
	}

	// pprof serves on its own listener so profiling never shares a port
	// (or an exposure decision) with the query API.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fail(fmt.Errorf("pprof listen: %w", err))
		}
		defer pln.Close()
		logf("pprof listening on http://%s/debug/pprof/", pln.Addr())
		go http.Serve(pln, nil) // DefaultServeMux carries net/http/pprof
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	// The actual address (for -listen :0) on stderr, where process
	// tests and scripts pick it up.
	fmt.Fprintf(stderr, "dynstreamd: listening on http://%s (targets %s, n=%d)\n",
		ln.Addr(), strings.Join(names, ","), *nFlag)

	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	// The feed runs until EOF, error, or drain. feedDone carries its
	// verdict (nil channel when no feed runs — receives then block
	// forever, which is what the select below wants); feedClose
	// unblocks blocking readers at drain time.
	var feedDone chan error
	if *feed != "none" {
		feedDone = make(chan error, 1)
	}
	feedClose, err := startFeed(ctx, srv, *feed, *feedBatch, stdin, logf, feedDone)
	if err != nil {
		return fail(err)
	}

	exit := 0
	select {
	case <-ctx.Done():
		logf("signal received, draining")
	case err := <-feedDone:
		feedDone = nil
		if err != nil && !errors.Is(err, context.Canceled) {
			logf("feed failed: %v", err)
			exit = 1
		} else {
			logf("feed finished, serving until signaled")
			select {
			case <-ctx.Done():
				logf("signal received, draining")
			case err := <-httpErr:
				return fail(err)
			}
		}
	case err := <-httpErr:
		return fail(err)
	}

	// Graceful drain: reject new updates, unblock and wait out the
	// feed, write the final checkpoint, then stop the HTTP server.
	if err := srv.Drain(); err != nil {
		logf("%v", err)
		exit = 1
	}
	if feedClose != nil {
		feedClose()
	}
	if feedDone != nil {
		select {
		case <-feedDone:
		case <-time.After(10 * time.Second):
			logf("feed did not stop within 10s")
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
		exit = 1
	}
	logf("drained, exiting")
	return exit
}

// startFeed launches the configured feed. It returns a closer that
// unblocks any blocking reads at drain time (nil when there is nothing
// to close); the feed's terminal error arrives on done.
func startFeed(ctx context.Context, srv *serve.Server, kind string, batch int,
	stdin io.Reader, logf func(string, ...any), done chan<- error) (func(), error) {
	switch {
	case kind == "none":
		// No feed: done never fires, the daemon serves HTTP only.
		return nil, nil

	case kind == "stdin":
		go func() { done <- srv.IngestFeed(ctx, stdin, batch) }()
		if c, ok := stdin.(io.Closer); ok {
			return func() { c.Close() }, nil
		}
		return nil, nil

	case strings.HasPrefix(kind, "tcp:"), strings.HasPrefix(kind, "unix:"):
		network, addr := "tcp", strings.TrimPrefix(kind, "tcp:")
		if strings.HasPrefix(kind, "unix:") {
			network, addr = "unix", strings.TrimPrefix(kind, "unix:")
		}
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, fmt.Errorf("feed %s: %w", kind, err)
		}
		logf("feed listening on %s", ln.Addr())
		go func() {
			// Connections are served sequentially: the feed is one
			// logical stream, and a single producer at a time keeps
			// its ordering. Concurrent producers should POST
			// /v1/update instead.
			for {
				conn, err := ln.Accept()
				if err != nil {
					done <- nil // listener closed at drain
					return
				}
				if err := srv.IngestFeed(ctx, conn, batch); err != nil {
					conn.Close()
					done <- err
					return
				}
				conn.Close()
				if srv.Draining() || ctx.Err() != nil {
					done <- nil
					return
				}
			}
		}()
		return func() { ln.Close() }, nil

	case strings.HasPrefix(kind, "tail:"):
		path := strings.TrimPrefix(kind, "tail:")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("feed %s: %w", kind, err)
		}
		stopped := make(chan struct{})
		go func() {
			defer f.Close()
			done <- srv.IngestFeed(ctx, &tailReader{f: f, ctx: ctx, stop: stopped}, batch)
		}()
		return func() { close(stopped) }, nil

	default:
		return nil, fmt.Errorf("unknown -feed %q (want stdin|none|tcp:ADDR|unix:PATH|tail:FILE)", kind)
	}
}

// tailReader reads a file to EOF and then polls for appended data
// instead of reporting EOF — `tail -f` as an io.Reader. It reports EOF
// once the context is canceled or stop is closed.
type tailReader struct {
	f    *os.File
	ctx  context.Context
	stop <-chan struct{}
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-t.stop:
			return 0, io.EOF
		case <-time.After(100 * time.Millisecond):
		}
	}
}
