package main

import (
	"fmt"
	"math"

	"dynstream/internal/baseline"
	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/linalg"
	"dynstream/internal/lowerbound"
	"dynstream/internal/sketch"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
	"dynstream/internal/verify"
)

// gnpWithAvgDegree returns a connected G(n, p) with average degree ~deg.
func gnpWithAvgDegree(n int, deg float64, seed uint64) *graph.Graph {
	p := deg / float64(n-1)
	if p > 1 {
		p = 1
	}
	return graph.ConnectedGNP(n, p, seed)
}

// runE1 verifies Theorem 1: stretch ≤ 2^k, subgraph, connectivity.
func runE1(p *params) error {
	ns := []int{64, 128, 256}
	if p.quick {
		ns = []int{64, 128}
	}
	fmt.Println("   n     k  m(G)   m(H)   maxStretch  bound  valid")
	for _, n := range ns {
		for _, k := range []int{1, 2, 3} {
			if k == 1 && n > 128 {
				continue // k=1 is the Õ(n²) corner; skip at larger n
			}
			g := gnpWithAvgDegree(n, 8, hashing.Mix(p.seed, uint64(n), uint64(k)))
			st := stream.WithChurn(g, 2*g.M(), hashing.Mix(p.seed, 1, uint64(n)))
			res, err := spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: hashing.Mix(p.seed, 2, uint64(n), uint64(k))})
			if err != nil {
				return err
			}
			rep := verify.Stretch(g, res.Spanner, 16)
			valid := res.Spanner.IsSubgraphOf(g) && rep.Disconnected == 0 && rep.Shortcuts == 0
			fmt.Printf("   %-5d %d  %-6d %-6d %-11.2f %-6d %v\n",
				n, k, g.M(), res.Spanner.M(), rep.MaxStretch, 1<<k, valid)
		}
	}
	return nil
}

// runE2 measures spanner size against the Lemma 12 bound.
func runE2(p *params) error {
	ns := []int{64, 128, 256, 384}
	if p.quick {
		ns = []int{64, 128}
	}
	fmt.Println("   n     k  m(H)    k·n^{1+1/k}·log2(n)   ratio")
	for _, k := range []int{2, 3} {
		for _, n := range ns {
			g := gnpWithAvgDegree(n, 10, hashing.Mix(p.seed, 3, uint64(n), uint64(k)))
			st := stream.FromGraph(g, hashing.Mix(p.seed, 4, uint64(n)))
			res, err := spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: hashing.Mix(p.seed, 5, uint64(n), uint64(k))})
			if err != nil {
				return err
			}
			bound := float64(k) * math.Pow(float64(n), 1+1/float64(k)) * math.Log2(float64(n))
			fmt.Printf("   %-5d %d  %-7d %-21.0f %.3f\n",
				n, k, res.Spanner.M(), bound, float64(res.Spanner.M())/bound)
		}
	}
	return nil
}

// runE3 measures sketch space against the Theorem 1 bound.
func runE3(p *params) error {
	ns := []int{64, 128, 256, 384}
	if p.quick {
		ns = []int{64, 128}
	}
	fmt.Println("   n     k  spaceWords  k·n^{1+1/k}·log2(n)^3  ratio")
	for _, k := range []int{2, 3} {
		for _, n := range ns {
			g := gnpWithAvgDegree(n, 10, hashing.Mix(p.seed, 6, uint64(n), uint64(k)))
			st := stream.FromGraph(g, hashing.Mix(p.seed, 7, uint64(n)))
			res, err := spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: hashing.Mix(p.seed, 8, uint64(n), uint64(k))})
			if err != nil {
				return err
			}
			l := math.Log2(float64(n))
			bound := float64(k) * math.Pow(float64(n), 1+1/float64(k)) * l * l * l
			fmt.Printf("   %-5d %d  %-11d %-22.0f %.3f\n",
				n, k, res.SpaceWords, bound, float64(res.SpaceWords)/bound)
		}
	}
	return nil
}

// runE4 verifies Theorem 3: additive error ≤ O(n/d), space Õ(nd).
func runE4(p *params) error {
	n := 256
	if p.quick {
		n = 128
	}
	fmt.Println("   n     d   m(G)   m(H)   maxAddErr  bound(n/d)  spaceWords")
	for _, d := range []int{2, 4, 8, 16} {
		g := gnpWithAvgDegree(n, 20, hashing.Mix(p.seed, 9, uint64(d)))
		st := stream.WithChurn(g, g.M(), hashing.Mix(p.seed, 10, uint64(d)))
		res, err := spanner.BuildAdditive(st, spanner.AdditiveConfig{
			D: d, DegreeFactor: 0.5, Seed: hashing.Mix(p.seed, 11, uint64(d))})
		if err != nil {
			return err
		}
		rep := verify.Additive(g, res.Spanner, 16)
		fmt.Printf("   %-5d %-3d %-6d %-6d %-10d %-11d %d\n",
			n, d, g.M(), res.Spanner.M(), rep.MaxError, n/d, res.SpaceWords)
	}
	return nil
}

// runE5 plays the Theorem 4 INDEX game across algorithm space budgets.
func runE5(p *params) error {
	blocks, blockSize, trials := 8, 16, 24
	if p.quick {
		blocks, blockSize, trials = 4, 16, 12
	}
	fmt.Printf("   game: %d blocks of G(%d, 1/2); instance entropy %d bits\n",
		blocks, blockSize, blocks*blockSize*(blockSize-1)/2)
	fmt.Println("   algD  successRate  spaceWords")
	for _, algD := range []int{1, 2, 4, 8, 16, 24} {
		res, err := lowerbound.Play(lowerbound.GameConfig{
			Blocks: blocks, BlockSize: blockSize, AlgD: algD,
			Trials: trials, Seed: hashing.Mix(p.seed, 12, uint64(algD)),
		})
		if err != nil {
			return err
		}
		fmt.Printf("   %-5d %-12.2f %d\n", algD, res.SuccessRate(), res.SpaceWords)
	}
	return nil
}

// runE6 measures the two-pass sparsifier's spectral error vs Z.
func runE6(p *params) error {
	zs := []int{16, 48, 144}
	if p.quick {
		zs = []int{16, 48}
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K16", graph.Complete(16)},
		{"barbell(8,1)", graph.Barbell(8, 1)},
		{"gnp(24,0.4)", graph.ConnectedGNP(24, 0.4, p.seed)},
	}
	fmt.Println("   graph         Z    m(G)  m(G')  spectralEps  cutEps")
	for _, c := range cases {
		st := stream.FromGraph(c.g, hashing.Mix(p.seed, 13))
		for _, z := range zs {
			res, err := sparsify.Sparsify(st, sparsify.Config{
				K: 1, Z: z, Seed: hashing.Mix(p.seed, 14, uint64(z)),
				Estimate: sparsify.EstimateConfig{
					K: 1, J: 4, T: 9, Delta: 0.3,
					Seed: hashing.Mix(p.seed, 15, uint64(z)), ExactOracles: false,
				},
			})
			if err != nil {
				return err
			}
			eps, err := linalg.SpectralEpsilon(c.g, res.Sparsifier)
			if err != nil {
				return err
			}
			cut := verify.CutEpsilon(c.g, res.Sparsifier, 64, p.seed)
			fmt.Printf("   %-13s %-4d %-5d %-6d %-12.3f %.3f\n",
				c.name, z, c.g.M(), res.Sparsifier.M(), eps, cut)
		}
	}
	return nil
}

// runE7 measures the SS08 baseline on the same instances as E6.
func runE7(p *params) error {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K16", graph.Complete(16)},
		{"barbell(8,1)", graph.Barbell(8, 1)},
		{"gnp(24,0.4)", graph.ConnectedGNP(24, 0.4, p.seed)},
		{"K64", graph.Complete(64)},
	}
	fmt.Println("   graph         eps_target  m(G)   m(H)  spectralEps")
	for _, c := range cases {
		for _, eps := range []float64{1.0, 0.5} {
			h := sparsify.SpielmanSrivastava(c.g, eps, 1.0, hashing.Mix(p.seed, 16))
			got, err := linalg.SpectralEpsilon(c.g, h)
			if err != nil {
				return err
			}
			fmt.Printf("   %-13s %-11.1f %-6d %-5d %.3f\n", c.name, eps, c.g.M(), h.M(), got)
		}
	}
	return nil
}

// runE8 measures AGM spanning-forest reliability and space under churn.
func runE8(p *params) error {
	ns := []int{64, 128, 256}
	trials := 10
	if p.quick {
		ns = []int{64, 128}
		trials = 5
	}
	fmt.Println("   n     trials  successRate  spaceWords")
	for _, n := range ns {
		g := gnpWithAvgDegree(n, 6, hashing.Mix(p.seed, 17, uint64(n)))
		ok := 0
		space := 0
		for trial := 0; trial < trials; trial++ {
			s := stream.WithChurn(g, 2*g.M(), hashing.Mix(p.seed, 18, uint64(n), uint64(trial)))
			sk := newForest(hashing.Mix(p.seed, 19, uint64(n), uint64(trial)), n)
			if err := s.Replay(func(u stream.Update) error { sk.AddUpdate(u); return nil }); err != nil {
				return err
			}
			forest, err := sk.SpanningForest(nil)
			if err != nil {
				return err
			}
			space = sk.SpaceWords()
			uf := graph.NewUnionFind(n)
			valid := true
			for _, e := range forest {
				if !g.HasEdge(e.U, e.V) {
					valid = false
				}
				uf.Union(e.U, e.V)
			}
			_, want := g.Components()
			if valid && uf.Sets() == want {
				ok++
			}
		}
		fmt.Printf("   %-5d %-7d %-12.2f %d\n", n, trials, float64(ok)/float64(trials), space)
	}
	return nil
}

// runE9 compares the two-pass spanner against the offline baselines.
func runE9(p *params) error {
	n := 128
	if p.quick {
		n = 96
	}
	g := gnpWithAvgDegree(n, 12, hashing.Mix(p.seed, 20))
	fmt.Printf("   graph: n=%d m=%d\n", n, g.M())
	fmt.Println("   algorithm        k  stretchBound  m(H)   maxStretch  model")
	for _, k := range []int{2, 3} {
		st := stream.FromGraph(g, hashing.Mix(p.seed, 21, uint64(k)))
		tw, err := spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: hashing.Mix(p.seed, 22, uint64(k))})
		if err != nil {
			return err
		}
		repT := verify.Stretch(g, tw.Spanner, 16)
		bs := baseline.BaswanaSen(g, k, hashing.Mix(p.seed, 23, uint64(k)))
		repB := verify.Stretch(g, bs, 16)
		gr := baseline.Greedy(g, k)
		repG := verify.Stretch(g, gr, 16)
		fmt.Printf("   two-pass (Thm1)  %d  2^k = %-7d %-6d %-11.2f dynamic stream, 2 passes\n",
			k, 1<<k, tw.Spanner.M(), repT.MaxStretch)
		fmt.Printf("   baswana-sen      %d  2k-1 = %-6d %-6d %-11.2f offline\n",
			k, 2*k-1, bs.M(), repB.MaxStretch)
		fmt.Printf("   greedy           %d  2k-1 = %-6d %-6d %-11.2f offline\n",
			k, 2*k-1, gr.M(), repG.MaxStretch)
	}
	return nil
}

// runA1 ablates the number of E_j subsampling levels in Algorithm 1.
func runA1(p *params) error {
	n := 128
	if p.quick {
		n = 96
	}
	g := gnpWithAvgDegree(n, 10, hashing.Mix(p.seed, 24))
	fmt.Println("   levels  m(H)   disconnectedPairs  maxStretch")
	full := 2*int(math.Ceil(math.Log2(float64(n+1)))) + 1
	for _, levels := range []int{2, 4, full / 2, full} {
		st := stream.FromGraph(g, hashing.Mix(p.seed, 25, uint64(levels)))
		res, err := spanner.BuildTwoPass(st, spanner.Config{
			K: 2, Seed: hashing.Mix(p.seed, 26, uint64(levels)), Levels: levels,
		})
		if err != nil {
			return err
		}
		rep := verify.Stretch(g, res.Spanner, 16)
		fmt.Printf("   %-7d %-6d %-18d %.2f\n",
			levels, res.Spanner.M(), rep.Disconnected, rep.MaxStretch)
	}
	return nil
}

// runA2 ablates the sparse-recovery budget: decode rate vs load.
func runA2(p *params) error {
	const capacity = 16
	fmt.Println("   load(items/B)  decodeRate  (B=16, 100 trials each)")
	for _, load := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		items := int(load * capacity)
		ok := 0
		const trials = 100
		for t := 0; t < trials; t++ {
			s := sketch.NewSketchB(hashing.Mix(p.seed, 27, uint64(t), uint64(items)), capacity)
			rng := hashing.NewSplitMix64(uint64(t)*7919 + uint64(items))
			want := map[uint64]int64{}
			for len(want) < items {
				k := rng.Next() % 1000003
				if _, dup := want[k]; !dup {
					want[k] = 1
					s.Add(k, 1)
				}
			}
			if got, decoded := s.Decode(); decoded && len(got) == items {
				ok++
			}
		}
		fmt.Printf("   %-14.1f %.2f\n", load, float64(ok)/trials)
	}
	return nil
}

// runA3 ablates the ESTIMATE oracle kind: sketch (streaming) vs exact.
func runA3(p *params) error {
	g := graph.Complete(16)
	st := stream.FromGraph(g, hashing.Mix(p.seed, 28))
	fmt.Println("   oracles  Z    spectralEps  spaceWords")
	for _, exact := range []bool{false, true} {
		name := "sketch"
		if exact {
			name = "exact"
		}
		for _, z := range []int{24, 72} {
			if p.quick && z > 24 {
				continue
			}
			res, err := sparsify.Sparsify(st, sparsify.Config{
				K: 1, Z: z, Seed: hashing.Mix(p.seed, 29, uint64(z)),
				Estimate: sparsify.EstimateConfig{
					K: 1, J: 4, T: 9, Delta: 0.3,
					Seed: hashing.Mix(p.seed, 30, uint64(z)), ExactOracles: exact,
				},
			})
			if err != nil {
				return err
			}
			eps, err := linalg.SpectralEpsilon(g, res.Sparsifier)
			if err != nil {
				return err
			}
			fmt.Printf("   %-8s %-4d %-12.3f %d\n", name, z, eps, res.SpaceWords)
		}
	}
	return nil
}

// runE10 exercises the substrate applications from [AGM12a] that the
// paper's toolbox includes: k-edge-connectivity certificates and
// bipartiteness, both from linear sketches under churn.
func runE10(p *params) error {
	n := 96
	if p.quick {
		n = 48
	}
	fmt.Println("   k-connectivity certificate (two cliques joined by c edges):")
	fmt.Println("   cutEdges  k  certCut  certEdges  m(G)  spaceWords")
	for _, cut := range []int{1, 2, 3} {
		g := graph.New(n)
		half := n / 2
		for u := 0; u < half; u++ {
			for v := u + 1; v < half; v++ {
				g.AddUnitEdge(u, v)
				g.AddUnitEdge(u+half, v+half)
			}
		}
		for c := 0; c < cut; c++ {
			g.AddUnitEdge(c, half+c)
		}
		const k = 4
		kc := newKConn(hashing.Mix(p.seed, 31, uint64(cut)), n, k)
		st := stream.WithChurn(g, g.M(), hashing.Mix(p.seed, 32, uint64(cut)))
		if err := st.Replay(func(u stream.Update) error { kc.AddUpdate(u); return nil }); err != nil {
			return err
		}
		cert, err := kc.CertificateGraph()
		if err != nil {
			return err
		}
		side := make([]bool, n)
		for v := 0; v < half; v++ {
			side[v] = true
		}
		fmt.Printf("   %-9d %d  %-8.0f %-10d %-5d %d\n",
			cut, k, cert.CutWeight(side), cert.M(), g.M(), kc.SpaceWords())
	}

	fmt.Println("   bipartiteness under churn:")
	fmt.Println("   graph          bipartite  verdict  correct")
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"even cycle", graph.Cycle(n), true},
		{"odd cycle", graph.Cycle(n - 1), false},
		{"grid", graph.Grid(8, n/8), true},
		{"grid+odd chord", gridWithChord(n), false},
	}
	for _, c := range cases {
		b := newBipartite(hashing.Mix(p.seed, 33), c.g.N())
		st := stream.WithChurn(c.g, c.g.M(), hashing.Mix(p.seed, 34))
		if err := st.Replay(func(u stream.Update) error { b.AddUpdate(u); return nil }); err != nil {
			return err
		}
		got, err := b.IsBipartite()
		if err != nil {
			return err
		}
		fmt.Printf("   %-14s %-10v %-8v %v\n", c.name, c.want, got, got == c.want)
	}
	return nil
}

// gridWithChord returns a grid plus one odd-cycle-creating chord.
func gridWithChord(n int) *graph.Graph {
	g := graph.Grid(8, n/8)
	g.AddUnitEdge(0, n/8+1) // diagonal chord creating a 3-cycle with (0,1),(1,n/8+1)
	return g
}
