// Command spannerbench regenerates every experiment table of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md): the quantitative
// content of each theorem in "Spanners and Sparsifiers in Dynamic
// Streams" (Kapralov–Woodruff, PODC 2014), measured on this
// implementation.
//
// Usage:
//
//	spannerbench [-exp all|E1|E2|...|E9|A1|A2|A3] [-quick] [-seed N]
//
// -quick shrinks instance sizes so the full suite finishes in a couple
// of minutes on one core; the default sizes match EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id    string
	title string
	run   func(p *params) error
}

type params struct {
	quick bool
	seed  uint64
}

func main() {
	expFlag := flag.String("exp", "all", "experiment id (E1..E9, A1..A3) or 'all'")
	quick := flag.Bool("quick", false, "shrink instance sizes for a fast run")
	seed := flag.Uint64("seed", 12345, "root random seed")
	flag.Parse()

	exps := []experiment{
		{"E1", "Theorem 1: two-pass 2^k-spanner — stretch and validity", runE1},
		{"E2", "Lemma 12: spanner size vs O(k·n^{1+1/k}·log n)", runE2},
		{"E3", "Lemmas 15+17: sketch space vs Õ(k·n^{1+1/k})", runE3},
		{"E4", "Theorem 3: single-pass n/d-additive spanner", runE4},
		{"E5", "Theorem 4: Ω(nd) INDEX lower-bound game", runE5},
		{"E6", "Corollary 2: two-pass spectral sparsifier", runE6},
		{"E7", "Theorem 7 baseline: Spielman–Srivastava sampling", runE7},
		{"E8", "Theorem 10 substrate: AGM spanning forest under churn", runE8},
		{"E9", "Baselines: Baswana–Sen and greedy (2k−1)-spanners", runE9},
		{"E10", "Extension: AGM substrate applications (k-connectivity, bipartiteness)", runE10},
		{"A1", "Ablation: subsampling levels in Algorithm 1", runA1},
		{"A2", "Ablation: sparse-recovery budget vs decode rate", runA2},
		{"A3", "Ablation: sketch vs exact oracles in ESTIMATE", runA3},
	}

	want := strings.ToUpper(*expFlag)
	valid := map[string]bool{"ALL": true}
	for _, e := range exps {
		valid[e.id] = true
	}
	if !valid[want] {
		ids := make([]string, 0, len(exps))
		for _, e := range exps {
			ids = append(ids, e.id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: all %s\n", *expFlag, strings.Join(ids, " "))
		os.Exit(2)
	}

	p := &params{quick: *quick, seed: *seed}
	for _, e := range exps {
		if want != "ALL" && want != e.id {
			continue
		}
		fmt.Printf("== %s — %s ==\n", e.id, e.title)
		start := time.Now()
		if err := e.run(p); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
	}
}
