package main

import "dynstream/internal/agm"

// newForest wraps agm.New with the experiment defaults.
func newForest(seed uint64, n int) *agm.Sketch {
	return agm.New(seed, n, agm.Config{})
}

// newKConn wraps agm.NewKConnectivity.
func newKConn(seed uint64, n, k int) *agm.KConnectivity {
	return agm.NewKConnectivity(seed, n, k)
}

// newBipartite wraps agm.NewBipartiteness.
func newBipartite(seed uint64, n int) *agm.Bipartiteness {
	return agm.NewBipartiteness(seed, n)
}
