package dynstream_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/graph"
)

// Seeded Apply/Query interleaving matrix for live handles: after every
// applied batch, a handle's incremental, cache-served query must be
// bit-identical to a cold Build over the base stream plus every batch
// so far — for all seven targets, at 1/2/4/8 decode workers, over
// random and churned streams. `go test -race` doubles as the data-race
// gate for the dirty-subset decode fan-out.

const handleRounds = 4

// handleStream generates a churned stream and splits it into a base
// prefix (what Open ingests) and handleRounds apply batches. The full
// stream is a valid update sequence, and splitting preserves order, so
// every prefix the matrix rebuilds is valid too.
func handleStream(t *testing.T, seed uint64) (base *dynstream.MemoryStream, batches [][]dynstream.Update) {
	t.Helper()
	g := graph.ConnectedGNP(48, 0.12, seed)
	for i := 0; i < g.N(); i++ {
		g.AddEdge(i, (i+5)%g.N(), float64(1+i%6))
	}
	full := dynstream.StreamWithChurn(g, 300, seed+1)
	var ups []dynstream.Update
	if err := full.Replay(func(u dynstream.Update) error { ups = append(ups, u); return nil }); err != nil {
		t.Fatal(err)
	}
	cut := len(ups) / 2
	base = dynstream.NewMemoryStream(full.N())
	appendAll(t, base, ups[:cut])
	rest := ups[cut:]
	per := (len(rest) + handleRounds - 1) / handleRounds
	for i := 0; i < len(rest); i += per {
		end := i + per
		if end > len(rest) {
			end = len(rest)
		}
		batches = append(batches, rest[i:end])
	}
	return base, batches
}

func appendAll(t *testing.T, st *dynstream.MemoryStream, ups []dynstream.Update) {
	t.Helper()
	for _, u := range ups {
		if err := st.Append(u); err != nil {
			t.Fatal(err)
		}
	}
}

// cloneStream copies a MemoryStream so the cold-rebuild cumulative
// stream can grow without touching the handle's base stream.
func cloneStream(t *testing.T, st *dynstream.MemoryStream) *dynstream.MemoryStream {
	t.Helper()
	out := dynstream.NewMemoryStream(st.N())
	if err := st.Replay(func(u dynstream.Update) error { return out.Append(u) }); err != nil {
		t.Fatal(err)
	}
	return out
}

// runHandleMatrix drives one target through the interleaving matrix:
// Open on the base stream, then per round Query (incremental) and diff
// against cold(cum) (a from-scratch rebuild over the cumulative
// stream), then Apply the next batch. The final round re-queries after
// Invalidate, proving a cold in-handle decode agrees too.
func runHandleMatrix[X any](
	t *testing.T, seed uint64, w int,
	open func(base *dynstream.MemoryStream) (apply func([]dynstream.Update) error, query func() (X, error), invalidate func(), err error),
	cold func(cum *dynstream.MemoryStream) (X, error),
	equal func(t *testing.T, round int, got, want X),
) {
	t.Helper()
	base, batches := handleStream(t, seed)
	apply, query, invalidate, err := open(base)
	if err != nil {
		t.Fatal(err)
	}
	cum := cloneStream(t, base)
	check := func(round int) {
		t.Helper()
		got, err := query()
		if err != nil {
			t.Fatalf("round %d: query: %v", round, err)
		}
		want, err := cold(cum)
		if err != nil {
			t.Fatalf("round %d: cold rebuild: %v", round, err)
		}
		equal(t, round, got, want)
		// Immediate re-query: the all-cache-hits path must reproduce
		// the same result.
		again, err := query()
		if err != nil {
			t.Fatalf("round %d: re-query: %v", round, err)
		}
		equal(t, round, again, want)
	}
	check(0)
	for i, b := range batches {
		if err := apply(b); err != nil {
			t.Fatalf("round %d: apply: %v", i+1, err)
		}
		appendAll(t, cum, b)
		check(i + 1)
	}
	// Dropping the caches must not change what a query returns.
	invalidate()
	check(len(batches))
}

func TestHandleForestMatrix(t *testing.T) {
	ctx := context.Background()
	target := dynstream.ForestTarget{Seed: 8101}
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			runHandleMatrix(t, 8100, w,
				func(base *dynstream.MemoryStream) (func([]dynstream.Update) error, func() ([]graph.Edge, error), func(), error) {
					h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
					if err != nil {
						return nil, nil, nil, err
					}
					query := func() ([]graph.Edge, error) {
						sk, err := h.Query(ctx)
						if err != nil {
							return nil, err
						}
						return sk.SpanningForestParallel(nil, w)
					}
					return h.Apply, query, h.Invalidate, nil
				},
				func(cum *dynstream.MemoryStream) ([]graph.Edge, error) {
					sk, err := dynstream.Build(ctx, cum, target)
					if err != nil {
						return nil, err
					}
					return sk.SpanningForest(nil)
				},
				func(t *testing.T, round int, got, want []graph.Edge) {
					t.Helper()
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d: incremental forest diverged from cold rebuild:\n got %v\nwant %v", round, got, want)
					}
				})
		})
	}
}

func TestHandleKConnectivityMatrix(t *testing.T) {
	ctx := context.Background()
	target := dynstream.KConnectivityTarget{Seed: 8201, K: 3}
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			runHandleMatrix(t, 8200, w,
				func(base *dynstream.MemoryStream) (func([]dynstream.Update) error, func() ([][]graph.Edge, error), func(), error) {
					h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
					if err != nil {
						return nil, nil, nil, err
					}
					query := func() ([][]graph.Edge, error) {
						kc, err := h.Query(ctx)
						if err != nil {
							return nil, err
						}
						return kc.CertificateParallel(w)
					}
					return h.Apply, query, h.Invalidate, nil
				},
				func(cum *dynstream.MemoryStream) ([][]graph.Edge, error) {
					kc, err := dynstream.Build(ctx, cum, target)
					if err != nil {
						return nil, err
					}
					return kc.Certificate()
				},
				func(t *testing.T, round int, got, want [][]graph.Edge) {
					t.Helper()
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d: incremental certificate diverged from cold rebuild", round)
					}
				})
		})
	}
}

func TestHandleBipartitenessMatrix(t *testing.T) {
	ctx := context.Background()
	target := dynstream.BipartitenessTarget{Seed: 8301}
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			runHandleMatrix(t, 8300, w,
				func(base *dynstream.MemoryStream) (func([]dynstream.Update) error, func() (bool, error), func(), error) {
					h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
					if err != nil {
						return nil, nil, nil, err
					}
					query := func() (bool, error) {
						b, err := h.Query(ctx)
						if err != nil {
							return false, err
						}
						return b.IsBipartiteParallel(w)
					}
					return h.Apply, query, h.Invalidate, nil
				},
				func(cum *dynstream.MemoryStream) (bool, error) {
					b, err := dynstream.Build(ctx, cum, target)
					if err != nil {
						return false, err
					}
					return b.IsBipartite()
				},
				func(t *testing.T, round int, got, want bool) {
					t.Helper()
					if got != want {
						t.Fatalf("round %d: incremental verdict %v, cold rebuild %v", round, got, want)
					}
				})
		})
	}
}

func TestHandleMSFMatrix(t *testing.T) {
	ctx := context.Background()
	// Live MSF needs an explicit WMax; handleStream weights are ≤ 6.
	target := dynstream.MSFTarget{Seed: 8401, WMax: 8, Gamma: 0.5}
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			runHandleMatrix(t, 8400, w,
				func(base *dynstream.MemoryStream) (func([]dynstream.Update) error, func() ([]graph.Edge, error), func(), error) {
					h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
					if err != nil {
						return nil, nil, nil, err
					}
					query := func() ([]graph.Edge, error) {
						m, err := h.Query(ctx)
						if err != nil {
							return nil, err
						}
						return m.ForestParallel(w)
					}
					return h.Apply, query, h.Invalidate, nil
				},
				func(cum *dynstream.MemoryStream) ([]graph.Edge, error) {
					m, err := dynstream.Build(ctx, cum, target)
					if err != nil {
						return nil, err
					}
					return m.Forest()
				},
				func(t *testing.T, round int, got, want []graph.Edge) {
					t.Helper()
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d: incremental msf diverged from cold rebuild:\n got %v\nwant %v", round, got, want)
					}
				})
		})
	}
}

func TestHandleSpannerMatrix(t *testing.T) {
	ctx := context.Background()
	target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{
		K: 3, Seed: 8501, CollectAugmented: true,
	}}
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			runHandleMatrix(t, 8500, w,
				func(base *dynstream.MemoryStream) (func([]dynstream.Update) error, func() (*dynstream.SpannerResult, error), func(), error) {
					h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
					if err != nil {
						return nil, nil, nil, err
					}
					query := func() (*dynstream.SpannerResult, error) { return h.Query(ctx) }
					return h.Apply, query, h.Invalidate, nil
				},
				func(cum *dynstream.MemoryStream) (*dynstream.SpannerResult, error) {
					return dynstream.Build(ctx, cum, target)
				},
				func(t *testing.T, round int, got, want *dynstream.SpannerResult) {
					t.Helper()
					edgesEqual(t, fmt.Sprintf("round %d spanner", round), got.Spanner, want.Spanner)
					edgesEqual(t, fmt.Sprintf("round %d augmented", round), got.Augmented, want.Augmented)
					if got.Terminals != want.Terminals || !reflect.DeepEqual(got.Stats, want.Stats) {
						t.Fatalf("round %d: stats differ: %+v vs %+v", round, got.Stats, want.Stats)
					}
				})
		})
	}
}

func TestHandleAdditiveMatrix(t *testing.T) {
	ctx := context.Background()
	target := dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: 4, Seed: 8601}}
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			runHandleMatrix(t, 8600, w,
				func(base *dynstream.MemoryStream) (func([]dynstream.Update) error, func() (*dynstream.AdditiveResult, error), func(), error) {
					h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
					if err != nil {
						return nil, nil, nil, err
					}
					query := func() (*dynstream.AdditiveResult, error) { return h.Query(ctx) }
					return h.Apply, query, h.Invalidate, nil
				},
				func(cum *dynstream.MemoryStream) (*dynstream.AdditiveResult, error) {
					return dynstream.Build(ctx, cum, target)
				},
				func(t *testing.T, round int, got, want *dynstream.AdditiveResult) {
					t.Helper()
					edgesEqual(t, fmt.Sprintf("round %d additive", round), got.Spanner, want.Spanner)
				})
		})
	}
}

func TestHandleSparsifierMatrix(t *testing.T) {
	ctx := context.Background()
	target := dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
		K: 1, Z: 4, Seed: 8701,
		Estimate: dynstream.EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 8702},
	}}
	// The sparsifier matrix grows a complete graph edge by edge: the
	// base stream is a prefix of the insertions and each batch extends
	// it, so every cold rebuild is a valid stream.
	g := graph.Complete(10)
	full := dynstream.StreamFromGraph(g, 8700)
	var ups []dynstream.Update
	if err := full.Replay(func(u dynstream.Update) error { ups = append(ups, u); return nil }); err != nil {
		t.Fatal(err)
	}
	cut := len(ups) * 3 / 5
	for _, w := range decodeWorkerCounts {
		t.Run(fmt.Sprintf("decode%d", w), func(t *testing.T) {
			base := dynstream.NewMemoryStream(full.N())
			appendAll(t, base, ups[:cut])
			h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			cum := cloneStream(t, base)
			rest := ups[cut:]
			per := (len(rest) + 2) / 3
			for round := 0; ; round++ {
				got, err := h.Query(ctx)
				if err != nil {
					t.Fatalf("round %d: query: %v", round, err)
				}
				want, err := dynstream.Build(ctx, cum, target)
				if err != nil {
					t.Fatalf("round %d: cold rebuild: %v", round, err)
				}
				edgesEqual(t, fmt.Sprintf("round %d sparsifier", round), got.Sparsifier, want.Sparsifier)
				if len(rest) == 0 {
					break
				}
				end := per
				if end > len(rest) {
					end = len(rest)
				}
				if err := h.Apply(rest[:end]); err != nil {
					t.Fatalf("round %d: apply: %v", round, err)
				}
				appendAll(t, cum, rest[:end])
				rest = rest[end:]
			}
		})
	}
}

// TestHandleMergeDirtiesExactlyTouchedComponents pins the Merge
// invalidation contract: folding a shipped SKETCH blob into a live
// handle must bump generation counters on exactly the samplers the
// blob touched — so cached decodes of untouched components survive —
// while every query stays bit-identical to a cold build over the union
// of both streams.
func TestHandleMergeDirtiesExactlyTouchedComponents(t *testing.T) {
	ctx := context.Background()
	const n = 40
	target := dynstream.ForestTarget{Seed: 8801}

	// Shard A: a path over vertices 0..19. Shard B: a path over 20..39
	// plus one bridge edge {5, 30} — B touches the low half only at 5.
	a := dynstream.NewMemoryStream(n)
	for v := 1; v < 20; v++ {
		appendAll(t, a, []dynstream.Update{{U: v - 1, V: v, Delta: 1, W: 1}})
	}
	b := dynstream.NewMemoryStream(n)
	for v := 21; v < 40; v++ {
		appendAll(t, b, []dynstream.Update{{U: v - 1, V: v, Delta: 1, W: 1}})
	}
	appendAll(t, b, []dynstream.Update{{U: 5, V: 30, Delta: 1, W: 1}})

	h, err := dynstream.Open(ctx, a, target)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := h.Query(ctx) // warm the decode cache over shard A
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.SpanningForest(nil); err != nil {
		t.Fatal(err)
	}
	untouched := make([]int, 0, 19)
	for v := 0; v < 20; v++ {
		if v != 5 {
			untouched = append(untouched, v)
		}
	}
	cleanGen := sk.GenSum(untouched...)
	touchedGen := sk.GenSum(5, 30)

	// Ship shard B the way dynnet does: build, marshal, unmarshal into
	// a fresh sketch, merge into the handle.
	bsk, err := dynstream.Build(ctx, b, target)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := bsk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := dynstream.NewForestSketch(8801, n, dynstream.ForestConfig{})
	if err := fresh.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if err := h.Merge(fresh); err != nil {
		t.Fatal(err)
	}

	if got := sk.GenSum(untouched...); got != cleanGen {
		t.Fatalf("merge dirtied untouched samplers: GenSum %d, was %d", got, cleanGen)
	}
	if got := sk.GenSum(5, 30); got == touchedGen {
		t.Fatal("merge left touched samplers clean: stale cached decodes would survive")
	}

	// The post-merge query must match a cold build over A + B.
	got, err := sk.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	union := cloneStream(t, a)
	if err := b.Replay(func(u dynstream.Update) error { return union.Append(u) }); err != nil {
		t.Fatal(err)
	}
	coldSk, err := dynstream.Build(ctx, union, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coldSk.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-merge forest diverged from cold union build:\n got %v\nwant %v", got, want)
	}

	// And an Apply after the Merge keeps the handle exact.
	extra := []dynstream.Update{{U: 0, V: 39, Delta: 1, W: 1}}
	if err := h.Apply(extra); err != nil {
		t.Fatal(err)
	}
	appendAll(t, union, extra)
	got, err = sk.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	coldSk, err = dynstream.Build(ctx, union, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err = coldSk.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-merge apply diverged from cold union build:\n got %v\nwant %v", got, want)
	}
}

// TestHandleMergeRemoteBlob drives the dynnet coordinator path into a
// live handle: one shard is built on real protocol workers (worker
// SKETCH blobs tree-merged by the coordinator), the result is merged
// into a handle holding the other shard, and queries before and after
// another Apply must match cold builds over the whole stream.
func TestHandleMergeRemoteBlob(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	target := dynstream.ForestTarget{Seed: 8901}
	full := remoteTestStream(t)
	shards, err := dynstream.SplitStream(full, 2)
	if err != nil {
		t.Fatal(err)
	}

	h, err := dynstream.Open(ctx, shards[0], target)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := h.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.SpanningForest(nil); err != nil { // warm the cache pre-merge
		t.Fatal(err)
	}

	addrs := startWorkers(t, ctx, 2)
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	remote, err := dynstream.Build(ctx, shards[1], target, dynstream.WithRemoteCluster(cluster))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Merge(remote); err != nil {
		t.Fatal(err)
	}

	got, err := sk.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	coldSk, err := dynstream.Build(ctx, full, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coldSk.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("handle + coordinator-built merge diverged from cold full build")
	}
}

func TestOpenValidation(t *testing.T) {
	ctx := context.Background()
	st := dynstream.NewMemoryStream(8)
	forest := dynstream.ForestTarget{Seed: 1}

	if _, err := dynstream.Open(ctx, st, forest, dynstream.WithRemoteWorkers("unix:/nope")); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Fatalf("remote option: got %v, want ErrBadConfig", err)
	}
	if _, err := dynstream.Open(ctx, st, dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 1}},
		dynstream.WithWeightClasses(2)); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Fatalf("weight classes: got %v, want ErrBadConfig", err)
	}
	if _, err := dynstream.Open(ctx, st, dynstream.MSFTarget{Seed: 1, Gamma: 0.5}); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Fatalf("msf without WMax: got %v, want ErrBadConfig", err)
	}
	ch := make(chan dynstream.Update)
	close(ch)
	if _, err := dynstream.Open(ctx, dynstream.NewChannelSource(8, ch),
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 1}}); !errors.Is(err, dynstream.ErrNotReplayable) {
		t.Fatalf("spanner over channel: got %v, want ErrNotReplayable", err)
	}

	h, err := dynstream.Open(ctx, st, forest)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Apply([]dynstream.Update{{U: -1, V: 2, Delta: 1}}); err == nil {
		t.Fatal("Apply accepted an out-of-range update")
	}
	if err := h.Merge("not a sketch"); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Fatalf("merge of wrong type: got %v, want ErrBadConfig", err)
	}

	sp, err := dynstream.Open(ctx, st, dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Merge(dynstream.NewTwoPassSpanner(8, dynstream.SpannerConfig{K: 2, Seed: 1})); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Fatalf("two-pass merge: got %v, want ErrBadConfig", err)
	}
}

// TestHandleCacheOff checks WithDecodeCache(false): queries re-extract
// cold every time but stay identical to the cold rebuild.
func TestHandleCacheOff(t *testing.T) {
	ctx := context.Background()
	target := dynstream.ForestTarget{Seed: 9001}
	base, batches := handleStream(t, 9000)
	h, err := dynstream.Open(ctx, base, target, dynstream.WithDecodeCache(false))
	if err != nil {
		t.Fatal(err)
	}
	cum := cloneStream(t, base)
	for i, b := range batches {
		if err := h.Apply(b); err != nil {
			t.Fatal(err)
		}
		appendAll(t, cum, b)
		sk, err := h.Query(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.SpanningForest(nil)
		if err != nil {
			t.Fatal(err)
		}
		coldSk, err := dynstream.Build(ctx, cum, target)
		if err != nil {
			t.Fatal(err)
		}
		want, err := coldSk.SpanningForest(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: cache-off handle diverged from cold rebuild", i+1)
		}
	}
}
