package dynstream

// Cross-module integration tests: whole pipelines driven through the
// public API on adversarial streams, with every output checked against
// exact ground truth. These complement the per-package unit tests by
// exercising the interactions the paper's constructions depend on
// (linearity under deletions, weight classes, shared streams).

import (
	"context"
	"math"
	"testing"

	"dynstream/internal/baseline"
	"dynstream/internal/graph"
)

// TestIntegrationFullCancellation: a stream that inserts and deletes
// every edge must leave every algorithm holding a sketch of the empty
// graph.
func TestIntegrationFullCancellation(t *testing.T) {
	const n = 30
	g := graph.Complete(n)
	st := NewMemoryStream(n)
	for _, e := range g.Edges() {
		_ = st.Append(Update{U: e.U, V: e.V, Delta: 1})
	}
	for _, e := range g.Edges() {
		_ = st.Append(Update{U: e.U, V: e.V, Delta: -1})
	}

	sp, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 1}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Spanner.M() != 0 {
		t.Errorf("spanner of cancelled stream has %d edges", sp.Spanner.M())
	}

	ad, err := Build(context.Background(), st, AdditiveTarget{Config: AdditiveConfig{D: 4, Seed: 2}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if ad.Spanner.M() != 0 {
		t.Errorf("additive spanner of cancelled stream has %d edges", ad.Spanner.M())
	}

	fs := NewForestSketch(3, n, ForestConfig{})
	_ = st.Replay(func(u Update) error { fs.AddUpdate(u); return nil })
	forest, err := fs.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 0 {
		t.Errorf("forest of cancelled stream has %d edges", len(forest))
	}
}

// TestIntegrationSharedStreamConsistency: all algorithms consume the
// same churned stream; every output must be consistent with the same
// final graph.
func TestIntegrationSharedStreamConsistency(t *testing.T) {
	g := graph.ConnectedGNP(48, 0.2, 4)
	st := StreamWithChurn(g, 300, 5)

	sp, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 6}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Build(context.Background(), st, AdditiveTarget{Config: AdditiveConfig{D: 4, Seed: 7}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	kc := NewKConnectivity(8, g.N(), 2)
	_ = st.Replay(func(u Update) error { kc.AddUpdate(u); return nil })
	cert, err := kc.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]*Graph{
		"two-pass spanner": sp.Spanner,
		"additive spanner": ad.Spanner,
		"k-cert":           cert,
	} {
		if !h.IsSubgraphOf(g) {
			t.Errorf("%s is not a subgraph of the final graph", name)
		}
		if !h.Connected() {
			t.Errorf("%s disconnected a connected graph", name)
		}
	}
}

// TestIntegrationWeightedPipeline: weighted stream through the
// weight-class spanner, verified with Dijkstra stretch.
func TestIntegrationWeightedPipeline(t *testing.T) {
	base := graph.ConnectedGNP(36, 0.2, 9)
	g := graph.RandomWeighted(base, 1, 100, 10)
	st := StreamFromGraph(g, 11)
	const classBase = 2.0
	res, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 12}},
		WithWorkers(1), WithWeightClasses(classBase))
	if err != nil {
		t.Fatal(err)
	}
	bound := classBase * 4 // classBase · 2^k
	for src := 0; src < g.N(); src += 6 {
		dg := g.Dijkstra(src)
		dh := res.Spanner.Dijkstra(src)
		for v := 0; v < g.N(); v++ {
			if v == src {
				continue
			}
			if dh[v] > bound*dg[v]+1e-9 {
				t.Fatalf("weighted stretch %v > %v at (%d,%d)", dh[v]/dg[v], bound, src, v)
			}
			if dh[v] < dg[v]-1e-9 {
				t.Fatalf("shortcut at (%d,%d)", src, v)
			}
		}
	}
}

// TestIntegrationStarvedBudgetStaysValid: failure injection — a
// deliberately tiny sparse-recovery budget forces first-pass decode
// failures; the construction must degrade to more terminal clusters,
// never to an invalid spanner.
func TestIntegrationStarvedBudgetStaysValid(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.25, 13)
	st := StreamFromGraph(g, 14)
	res, err := Build(context.Background(), st,
		SpannerTarget{Config: SpannerConfig{K: 2, Seed: 15, Budget: 2, Levels: 3}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyStretch(g, res.Spanner, 10)
	if rep.Disconnected > 0 || rep.Shortcuts > 0 {
		t.Errorf("starved-budget spanner invalid: %+v", rep)
	}
	if rep.MaxStretch > 4 {
		t.Errorf("starved-budget stretch %v > 4", rep.MaxStretch)
	}
}

// TestIntegrationMultigraphMultiplicity: multigraph multiplicities
// (repeated inserts) flow through every sketch without corruption.
func TestIntegrationMultigraphMultiplicity(t *testing.T) {
	const n = 20
	st := NewMemoryStream(n)
	// A path where every edge has multiplicity 3, then one copy of
	// each is deleted.
	for rep := 0; rep < 3; rep++ {
		for i := 0; i+1 < n; i++ {
			_ = st.Append(Update{U: i, V: i + 1, Delta: 1})
		}
	}
	for i := 0; i+1 < n; i++ {
		_ = st.Append(Update{U: i, V: i + 1, Delta: -1})
	}
	want := graph.Path(n)

	sp, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 16}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Spanner.M() != want.M() {
		t.Errorf("spanner kept %d of %d path edges", sp.Spanner.M(), want.M())
	}

	fs := NewForestSketch(17, n, ForestConfig{})
	_ = st.Replay(func(u Update) error { fs.AddUpdate(u); return nil })
	forest, err := fs.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != n-1 {
		t.Errorf("forest has %d edges, want %d", len(forest), n-1)
	}
}

// TestIntegrationInsertionOnlyBaselineContrast: the insertion-only
// 1-pass greedy baseline matches the sketch spanner on insert-only
// streams but cannot process the deletion workload at all — the gap
// the paper's sketches close.
func TestIntegrationInsertionOnlyBaselineContrast(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.2, 18)
	insertOnly := StreamFromGraph(g, 19)
	withDeletes := StreamWithChurn(g, 100, 20)

	hGreedy, err := baseline.StreamingGreedy(insertOnly, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !hGreedy.Connected() {
		t.Error("greedy baseline broke connectivity")
	}
	if _, err := baseline.StreamingGreedy(withDeletes, 2); err == nil {
		t.Error("insertion-only baseline accepted deletions")
	}
	res, err := Build(context.Background(), withDeletes, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 21}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyStretch(g, res.Spanner, 10)
	if rep.Disconnected > 0 || rep.MaxStretch > 4 {
		t.Errorf("sketch spanner failed on deletion stream: %+v", rep)
	}
}

// TestIntegrationSparsifierCutsVsSpectral: cut error is always a lower
// bound for spectral error (cuts are quadratic forms at binary
// vectors) — check the two verifiers agree on that ordering.
func TestIntegrationSparsifierCutsVsSpectral(t *testing.T) {
	g := graph.Complete(14)
	st := StreamFromGraph(g, 22)
	res, err := Build(context.Background(), st, SparsifierTarget{Config: SparsifierConfig{
		K: 1, Z: 32, Seed: 23,
		Estimate: EstimateConfig{K: 1, J: 3, T: 7, Delta: 0.34, Seed: 24, ExactOracles: true},
	}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	spectral, err := VerifySpectral(g, res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	cut := cutEps(g, res.Sparsifier, 200)
	if cut > spectral+1e-9 {
		t.Errorf("cut error %v exceeds spectral error %v — verifier inconsistency", cut, spectral)
	}
}

func cutEps(g, h *Graph, cuts int) float64 {
	worst := 0.0
	rng := uint64(12345)
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 31)
	}
	for c := 0; c < cuts; c++ {
		side := make([]bool, g.N())
		for v := range side {
			side[v] = next()&1 == 1
		}
		wg := g.CutWeight(side)
		if wg == 0 {
			continue
		}
		if d := math.Abs(h.CutWeight(side)/wg - 1); d > worst {
			worst = d
		}
	}
	return worst
}

// TestIntegrationStreamOrderInvariance: linear sketches are oblivious
// to update order — any permutation of the same multiset of updates
// yields the identical spanner.
func TestIntegrationStreamOrderInvariance(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 25)
	a := StreamFromGraph(g, 1)
	b := StreamFromGraph(g, 2) // different order, same multiset
	resA, err := Build(context.Background(), a, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 26}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Build(context.Background(), b, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 26}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Spanner.M() != resB.Spanner.M() ||
		!resA.Spanner.IsSubgraphOf(resB.Spanner) {
		t.Error("spanner depends on stream order — sketches are not linear")
	}
}
