package dynstream

import (
	"context"
	"testing"

	"dynstream/internal/graph"
)

// These tests exercise the public facade end to end: a downstream user
// should be able to do everything through package dynstream alone.

func TestFacadeSpannerPipeline(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.15, 1)
	st := StreamFromGraph(g, 2)
	res, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 3}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyStretch(g, res.Spanner, 10)
	if rep.Disconnected > 0 || rep.Shortcuts > 0 {
		t.Fatalf("invalid spanner: %+v", rep)
	}
	if rep.MaxStretch > 4 {
		t.Errorf("stretch %v > 4", rep.MaxStretch)
	}
}

func TestFacadeAdditivePipeline(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.2, 4)
	st := StreamWithChurn(g, 200, 5)
	res, err := Build(context.Background(), st, AdditiveTarget{Config: AdditiveConfig{D: 4, Seed: 6}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyAdditive(g, res.Spanner, 12)
	if rep.Disconnected > 0 || rep.Shortcuts > 0 {
		t.Fatalf("invalid additive spanner: %+v", rep)
	}
	if rep.MaxError > 2*g.N()/4 {
		t.Errorf("additive error %d", rep.MaxError)
	}
}

func TestFacadeSparsifierPipeline(t *testing.T) {
	g := graph.Complete(12)
	st := StreamFromGraph(g, 7)
	res, err := Build(context.Background(), st, SparsifierTarget{Config: SparsifierConfig{
		K: 1, Z: 24, Seed: 8,
		Estimate: EstimateConfig{K: 1, J: 3, T: 7, Delta: 0.34, Seed: 9, ExactOracles: true},
	}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	eps, err := VerifySpectral(g, res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	if eps >= 1 {
		t.Errorf("facade sparsifier ε = %v", eps)
	}
}

func TestFacadeForestSketch(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.15, 10)
	fs := NewForestSketch(11, g.N(), ForestConfig{})
	st := StreamFromGraph(g, 12)
	if err := st.Replay(func(u Update) error {
		fs.AddUpdate(u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	forest, err := fs.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	uf := newUF(g.N())
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("forest edge (%d,%d) not in graph", e.U, e.V)
		}
		uf.union(e.U, e.V)
	}
	for v := 1; v < g.N(); v++ {
		if uf.find(0) != uf.find(v) {
			t.Fatalf("forest does not span: %d separated", v)
		}
	}
}

func TestFacadeExplicitPasses(t *testing.T) {
	// Drive the two passes manually (as a distributed coordinator would).
	g := graph.ConnectedGNP(40, 0.2, 13)
	st := StreamFromGraph(g, 14)
	tp := NewTwoPassSpanner(g.N(), SpannerConfig{K: 2, Seed: 15})
	if err := st.Replay(tp.Pass1Update); err != nil {
		t.Fatal(err)
	}
	if err := tp.EndPass1(); err != nil {
		t.Fatal(err)
	}
	if err := st.Replay(tp.Pass2Update); err != nil {
		t.Fatal(err)
	}
	res, err := tp.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyStretch(g, res.Spanner, 8)
	if rep.Disconnected > 0 || rep.MaxStretch > 4 {
		t.Errorf("explicit-pass spanner: %+v", rep)
	}
}

func TestFacadeWeightedSpanner(t *testing.T) {
	base := graph.ConnectedGNP(30, 0.2, 16)
	g := graph.RandomWeighted(base, 1, 32, 17)
	st := StreamFromGraph(g, 18)
	res, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 19}},
		WithWorkers(1), WithWeightClasses(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.M() == 0 {
		t.Error("empty weighted spanner")
	}
}

func TestFacadeMaterialize(t *testing.T) {
	st := NewMemoryStream(5)
	_ = st.Append(Update{U: 0, V: 1, Delta: 1})
	_ = st.Append(Update{U: 0, V: 1, Delta: -1})
	_ = st.Append(Update{U: 2, V: 3, Delta: 1})
	g, err := Materialize(st)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || !g.HasEdge(2, 3) {
		t.Errorf("materialized %v", g.Edges())
	}
}

// minimal union-find for the forest test (avoids importing internals).
type uf struct{ p []int }

func newUF(n int) *uf {
	u := &uf{p: make([]int, n)}
	for i := range u.p {
		u.p[i] = i
	}
	return u
}

func (u *uf) find(x int) int {
	for u.p[x] != x {
		u.p[x] = u.p[u.p[x]]
		x = u.p[x]
	}
	return x
}

func (u *uf) union(a, b int) { u.p[u.find(a)] = u.find(b) }

func TestFacadeDistanceOracle(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.15, 30)
	st := StreamFromGraph(g, 31)
	res, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 32}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	o := NewDistanceOracle(res, 2)
	d := g.BFS(0)
	for v := 1; v < g.N(); v++ {
		if d[v] <= 0 {
			continue
		}
		est := o.Query(0, v)
		if est < float64(d[v]) || est > 4*float64(d[v]) {
			t.Fatalf("oracle out of band at %d: %v vs %d", v, est, d[v])
		}
	}
}

func TestFacadeMSF(t *testing.T) {
	base := graph.ConnectedGNP(24, 0.2, 33)
	g := graph.RandomWeighted(base, 1, 40, 34)
	m := NewMSF(35, g.N(), 40, 0.5)
	st := StreamFromGraph(g, 36)
	if err := st.Replay(func(u Update) error { m.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forest()
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != g.N()-1 {
		t.Errorf("MSF has %d edges, want %d", len(f), g.N()-1)
	}
	for _, e := range f {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("MSF edge (%d,%d) not in graph", e.U, e.V)
		}
	}
}
