package dynstream

import (
	"context"
	"testing"

	"dynstream/internal/graph"
)

// Front-door equivalence: Build with WithWorkers(p) must produce
// output identical to WithWorkers(1) for the same configuration (run
// under -race; the shards ingest concurrently).

func edgesEqual(t *testing.T, name string, a, b *Graph) {
	t.Helper()
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("%s: %d edges vs %d", name, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, ea[i], eb[i])
		}
	}
}

func TestBuildSpannerParallelFacade(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.15, 301)
	st := StreamWithChurn(g, 200, 302)
	serial, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 303}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 303}}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, "spanner", par.Spanner, serial.Spanner)
	rep := VerifyStretch(g, par.Spanner, 10)
	if rep.Disconnected > 0 || rep.Shortcuts > 0 {
		t.Fatalf("invalid parallel spanner: %+v", rep)
	}
}

func TestBuildAdditiveSpannerParallelFacade(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.2, 304)
	st := StreamWithChurn(g, 150, 305)
	serial, err := Build(context.Background(), st, AdditiveTarget{Config: AdditiveConfig{D: 3, Seed: 306}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(context.Background(), st, AdditiveTarget{Config: AdditiveConfig{D: 3, Seed: 306}}, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, "additive", par.Spanner, serial.Spanner)
}

func TestBuildSparsifierParallelFacade(t *testing.T) {
	g := graph.Complete(10)
	st := StreamFromGraph(g, 307)
	cfg := SparsifierConfig{
		K: 1, Z: 6, Seed: 308,
		Estimate: EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 309},
	}
	serial, err := Build(context.Background(), st, SparsifierTarget{Config: cfg}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(context.Background(), st, SparsifierTarget{Config: cfg}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, "sparsifier", par.Sparsifier, serial.Sparsifier)
}

func TestForestSketchParallelFacade(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.1, 310)
	st := StreamWithChurn(g, 300, 311)
	serial := NewForestSketch(312, st.N(), ForestConfig{})
	if err := st.Replay(func(u Update) error { serial.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	wantForest, err := serial.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(context.Background(), st, ForestTarget{Seed: 312, Config: ForestConfig{}}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	gotForest, err := par.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotForest) != len(wantForest) {
		t.Fatalf("forest: %d edges vs serial %d", len(gotForest), len(wantForest))
	}
	for i := range gotForest {
		if gotForest[i] != wantForest[i] {
			t.Fatalf("forest edge %d: %+v vs serial %+v", i, gotForest[i], wantForest[i])
		}
	}
}

func TestForestSketchMergeFacade(t *testing.T) {
	// The Merge surface the distributed example uses, through the alias.
	g := graph.ConnectedGNP(40, 0.15, 313)
	st := StreamFromGraph(g, 314)
	shards, err := SplitStream(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewForestSketch(315, st.N(), ForestConfig{})
	b := NewForestSketch(315, st.N(), ForestConfig{})
	for i, sk := range []*ForestSketch{a, b} {
		if err := shards[i].Replay(func(u Update) error { sk.AddUpdate(u); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	forest, err := a.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	uf := graph.NewUnionFind(st.N())
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("forest edge (%d,%d) not in graph", e.U, e.V)
		}
		uf.Union(e.U, e.V)
	}
	if uf.Sets() != 1 {
		t.Errorf("merged-sketch forest spans %d components, want 1", uf.Sets())
	}
}

func TestKConnectivityParallelFacade(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.25, 316)
	st := StreamWithChurn(g, 100, 317)
	serial := NewKConnectivity(318, st.N(), 2)
	if err := st.Replay(func(u Update) error { serial.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	want, err := serial.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	kc, err := Build(context.Background(), st, KConnectivityTarget{Seed: 318, K: 2}, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := kc.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, "kcert", got, want)
}

func TestParallelFacadeRejectsBadWorkers(t *testing.T) {
	st := NewMemoryStream(4)
	if _, err := SplitStream(st, 0); err == nil {
		t.Error("SplitStream accepted p=0")
	}
	if _, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 1}}, WithWorkers(0)); err == nil {
		t.Error("Build accepted workers=0")
	}
	if _, err := Build(context.Background(), st, ForestTarget{Seed: 1}, WithWorkers(-1)); err == nil {
		t.Error("Build accepted workers=-1")
	}
}
