package dynstream_test

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"dynstream"
	"dynstream/internal/dynnet"
	"dynstream/internal/graph"
)

// Example_remoteBuild builds a spanning-forest sketch on two worker
// processes and proves the result is byte-identical to a local build.
// The workers here are in-process listeners for brevity; a real
// deployment runs `dynstream worker -listen ADDR` and passes the same
// addresses to WithRemoteWorkers (see the README's Distributed builds
// section).
func Example_remoteBuild() {
	ctx := context.Background()

	// Two workers listening on unix sockets (stand-ins for
	// `dynstream worker -listen /tmp/w0.sock` processes).
	dir, err := os.MkdirTemp("", "remote-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	addrs := make([]string, 2)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
		ln, err := net.Listen("unix", addrs[i])
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		go dynnet.ListenAndServeWorker(ctx, ln, dynnet.WorkerConfig{ID: fmt.Sprintf("w%d", i)})
	}

	// A churned dynamic stream: the sketches see inserts and deletes.
	g := graph.ConnectedGNP(80, 0.1, 7)
	st := dynstream.StreamWithChurn(g, 500, 8)

	// One option turns a local build into a distributed one; linearity
	// makes the merged state identical.
	remote, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 42},
		dynstream.WithRemoteWorkers(addrs...))
	if err != nil {
		log.Fatal(err)
	}
	local, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	rb, _ := remote.MarshalBinary()
	lb, _ := local.MarshalBinary()
	forest, err := remote.SpanningForest(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed state == local state: %v\n", string(rb) == string(lb))
	fmt.Printf("spanning forest edges: %d\n", len(forest))
	// Output:
	// distributed state == local state: true
	// spanning forest edges: 79
}
