package dynstream

import (
	"context"
	"fmt"
	"sync"

	"dynstream/internal/agm"
	"dynstream/internal/dynnet"
	"dynstream/internal/obs"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

// Handle is a live build: where Build ingests a stream and decodes
// once, Open returns a handle whose sketch state stays mutable —
// further updates fold in with Apply, and repeated Query calls
// re-extract the result from the current state. Because every
// construction is a linear sketch, a query after any sequence of Apply
// batches is bit-identical to a cold Build over the concatenated
// stream, at every worker count.
//
// Queries are served incrementally: each target keeps per-region
// decode caches — per-component sampler picks for the AGM family,
// per-center cluster attachments and per-terminal recoveries for the
// spanner, per-cell grid extractions for the sparsifier — keyed by
// injective state digests over monotonic generation counters, so only
// the regions an Apply actually touched are re-decoded. The caches are
// on by default for handles; WithDecodeCache(false) disables them
// (queries then re-extract cold but remain identical).
//
// A Handle is safe for use from one goroutine at a time per method
// call (an internal mutex serializes Apply/Query/Merge/Invalidate);
// concurrent callers still need their own ordering if they care which
// updates a query observes.
type Handle[R any] struct {
	mu   sync.Mutex
	n    int
	src  Source
	o    *buildOptions
	live liveState[R]
	// applied counts the updates folded in with Apply since Open (or
	// since the checkpointed handle's own Open, for a restored handle).
	// It is written into every checkpoint, so a restorer knows exactly
	// which stream suffix to replay.
	applied int64
}

// CacheStats reports the live state's decode-cache traffic: Hits counts
// cached region decodes (component picks, cluster attachments, terminal
// recoveries, per-vertex peels) reused because their generation-counter
// digests proved the inputs unchanged; Misses counts regions that had
// to re-decode. Both are cumulative over the handle's lifetime and only
// advance while the cache is enabled (WithDecodeCache). The serving
// layer exports them as Prometheus counters.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// liveState is the per-target mutable state behind a Handle.
type liveState[R any] interface {
	apply(batch []Update) error
	query(p *parallel.Policy) (R, error)
	enableCache(on bool)
	invalidate()
	// cacheStats reports cumulative decode-cache hits and misses (see
	// CacheStats).
	cacheStats() (hits, misses uint64)
	merge(state any) error
	// snapshot returns the state's kind tag and its serialized live
	// contents for Handle.Checkpoint (see checkpoint.go).
	snapshot() (dynnet.StateKind, []byte, error)
}

// Open is the live front door: it ingests src into the target's sketch
// state — exactly as Build would — and returns a Handle serving
// Apply/Query instead of a one-shot result.
//
// Live handles run locally: the remote options (WithRemoteWorkers,
// WithRemoteCluster, WithWorkerShards) are rejected — ship marshaled
// sketch states from remote processes and fold them in with
// Handle.Merge instead. WithWeightClasses is rejected too (the class
// split is a per-build reduction, not a live state). MSFTarget needs
// an explicit WMax: a scanned bound could be exceeded by a later
// Apply batch. Multi-pass targets (spanner, sparsifier) need a
// replayable source, which the handle retains for re-extraction.
func Open[R any](ctx context.Context, src Source, target Target[R], opts ...Option) (*Handle[R], error) {
	if src == nil {
		return nil, fmt.Errorf("%w: nil source", ErrBadConfig)
	}
	if target == nil {
		return nil, fmt.Errorf("%w: nil target", ErrBadConfig)
	}
	o := &buildOptions{}
	for _, opt := range opts {
		if opt != nil {
			opt(o)
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.validateLive(); err != nil {
		return nil, err
	}
	if target.Passes() > 1 && !CanReplay(src) {
		return nil, fmt.Errorf("dynstream: %T needs %d passes over the stream: %w",
			target, target.Passes(), ErrNotReplayable)
	}
	// The tracer (and the WithProgress observer riding on it) persists
	// for the handle's lifetime: ingest here, then every QueryAt and
	// Checkpoint report into the same tracer.
	tr, _ := o.effectiveTracer()
	o.tracer = tr
	p := parallel.NewPolicy(ctx, o.resolveWorkers(src), o.batch, nil).
		WithDecode(o.resolveDecodeWorkers(src)).WithTracer(tr)
	live, err := target.openLive(src, o, p)
	if err != nil {
		return nil, err
	}
	live.enableCache(o.cacheOn())
	return &Handle[R]{n: src.N(), src: src, o: o, live: live}, nil
}

// BuildHandle is Open under Build's naming, for callers migrating from
// the one-shot front door.
func BuildHandle[R any](ctx context.Context, src Source, target Target[R], opts ...Option) (*Handle[R], error) {
	return Open(ctx, src, target, opts...)
}

// N returns the vertex count.
func (h *Handle[R]) N() int { return h.n }

// Apply folds a batch of updates into the live sketch state. Updates
// are validated and canonicalized exactly as a MemoryStream.Append
// would, so a Query afterwards matches a cold Build over the base
// stream plus every applied batch.
func (h *Handle[R]) Apply(updates []Update) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	checked := make([]Update, 0, len(updates))
	for _, u := range updates {
		cu, err := stream.CheckUpdate(u, h.n)
		if err != nil {
			return fmt.Errorf("dynstream: Apply: %w", err)
		}
		checked = append(checked, cu)
	}
	if err := h.live.apply(checked); err != nil {
		return err
	}
	h.applied += int64(len(checked))
	return nil
}

// AppliedUpdates returns the number of updates folded in with Apply
// over this handle's lifetime — for a handle from Restore, continuing
// the checkpointed handle's count. A caller replaying a stream through
// Apply can therefore checkpoint at any point, crash, Restore, and
// resume from exactly update AppliedUpdates() of its log.
func (h *Handle[R]) AppliedUpdates() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.applied
}

// Query extracts the target's result from the live state's current
// contents — bit-identical to what Build would return over the total
// stream, at any worker count. Sketch-family targets (forest,
// k-connectivity, bipartiteness, MSF) return the live sketch itself;
// its decode methods (SpanningForestOpts, CertificateOpts, ...) are
// what re-decode incrementally. Decode-family targets (spanner,
// additive spanner, sparsifier) return a freshly extracted result.
func (h *Handle[R]) Query(ctx context.Context) (R, error) {
	r, _, err := h.QueryAt(ctx)
	return r, err
}

// QueryAt is Query plus the applied-update count the result observed,
// both read under one hold of the handle's mutex. Concurrent servers
// need the pair to be atomic: a Query followed by a separate
// AppliedUpdates call can race an Apply in between, mislabeling which
// stream prefix the result corresponds to. The count always lands on a
// batch boundary (Apply is all-or-nothing), so a caller can prove the
// result against an offline Build over exactly the first `applied`
// updates of its log.
func (h *Handle[R]) QueryAt(ctx context.Context) (R, int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sp := h.o.tracer.Span("query")
	p := parallel.NewPolicy(ctx, h.o.resolveWorkers(h.src), h.o.batch, nil).
		WithDecode(h.o.resolveDecodeWorkers(h.src)).WithTracer(h.o.tracer)
	r, err := h.live.query(p)
	if err == nil {
		sp.End(obs.A("applied", h.applied))
	}
	return r, h.applied, err
}

// DecodeCacheStats reports the cumulative decode-cache hit/miss
// counters of the live state (see CacheStats).
func (h *Handle[R]) DecodeCacheStats() CacheStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	hits, misses := h.live.cacheStats()
	return CacheStats{Hits: hits, Misses: misses}
}

// Merge folds another sketch state — typically unmarshaled from a
// remote worker's SKETCH blob — into the live state. The merged-in
// state must be the target's own state type built with the same
// configuration and seed: *ForestSketch, *KConnectivity,
// *Bipartiteness, *MSF, or *AdditiveSpanner. Generation counters bump
// only on the samplers the merge actually changed, so the next Query
// re-decodes exactly the touched components. Two-pass targets
// (SpannerTarget, SparsifierTarget) reject Merge: their live log
// cannot absorb updates it never saw — Apply the remote updates, or
// merge pass-1 states before Open.
func (h *Handle[R]) Merge(state any) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live.merge(state)
}

// Invalidate drops every cached decode, so the next Query re-extracts
// from scratch. Correctness never requires it — the digest checks
// already reject stale cache entries — it only bounds memory or forces
// a cold decode for measurement.
func (h *Handle[R]) Invalidate() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live.invalidate()
}

// ---- per-target live states ----

type forestLive struct{ s *agm.Sketch }

func (l forestLive) apply(b []Update) error { l.s.AddBatch(b); return nil }
func (l forestLive) query(p *parallel.Policy) (*ForestSketch, error) {
	_ = p
	return l.s, nil
}
func (l forestLive) enableCache(on bool)          { l.s.EnableDecodeCache(on) }
func (l forestLive) invalidate()                  { l.s.InvalidateDecodeCache() }
func (l forestLive) cacheStats() (uint64, uint64) { return l.s.DecodeCacheStats() }
func (l forestLive) merge(state any) error {
	o, ok := state.(*agm.Sketch)
	if !ok {
		return fmt.Errorf("%w: a ForestTarget handle merges *ForestSketch, got %T", ErrBadConfig, state)
	}
	return l.s.Merge(o)
}

func (t ForestTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*ForestSketch], error) {
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	s, err := parallel.IngestBatchedOpts(p, src, func() *agm.Sketch {
		return agm.New(seed, src.N(), t.Config)
	})
	if err != nil {
		return nil, err
	}
	return forestLive{s}, nil
}

type kconnLive struct{ kc *agm.KConnectivity }

func (l kconnLive) apply(b []Update) error { l.kc.AddBatch(b); return nil }
func (l kconnLive) query(p *parallel.Policy) (*KConnectivity, error) {
	_ = p
	return l.kc, nil
}
func (l kconnLive) enableCache(on bool)          { l.kc.EnableDecodeCache(on) }
func (l kconnLive) invalidate()                  { l.kc.InvalidateDecodeCache() }
func (l kconnLive) cacheStats() (uint64, uint64) { return l.kc.DecodeCacheStats() }
func (l kconnLive) merge(state any) error {
	o, ok := state.(*agm.KConnectivity)
	if !ok {
		return fmt.Errorf("%w: a KConnectivityTarget handle merges *KConnectivity, got %T", ErrBadConfig, state)
	}
	return l.kc.Merge(o)
}

func (t KConnectivityTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*KConnectivity], error) {
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	kc, err := parallel.IngestBatchedOpts(p, src, func() *agm.KConnectivity {
		return agm.NewKConnectivity(seed, src.N(), t.K)
	})
	if err != nil {
		return nil, err
	}
	return kconnLive{kc}, nil
}

type bipLive struct{ b *agm.Bipartiteness }

func (l bipLive) apply(b []Update) error { l.b.AddBatch(b); return nil }
func (l bipLive) query(p *parallel.Policy) (*Bipartiteness, error) {
	_ = p
	return l.b, nil
}
func (l bipLive) enableCache(on bool)          { l.b.EnableDecodeCache(on) }
func (l bipLive) invalidate()                  { l.b.InvalidateDecodeCache() }
func (l bipLive) cacheStats() (uint64, uint64) { return l.b.DecodeCacheStats() }
func (l bipLive) merge(state any) error {
	o, ok := state.(*agm.Bipartiteness)
	if !ok {
		return fmt.Errorf("%w: a BipartitenessTarget handle merges *Bipartiteness, got %T", ErrBadConfig, state)
	}
	return l.b.Merge(o)
}

func (t BipartitenessTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*Bipartiteness], error) {
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	b, err := parallel.IngestBatchedOpts(p, src, func() *agm.Bipartiteness {
		return agm.NewBipartiteness(seed, src.N())
	})
	if err != nil {
		return nil, err
	}
	return bipLive{b}, nil
}

type msfLive struct{ m *agm.MSF }

func (l msfLive) apply(b []Update) error { l.m.AddBatch(b); return nil }
func (l msfLive) query(p *parallel.Policy) (*MSF, error) {
	_ = p
	return l.m, nil
}
func (l msfLive) enableCache(on bool)          { l.m.EnableDecodeCache(on) }
func (l msfLive) invalidate()                  { l.m.InvalidateDecodeCache() }
func (l msfLive) cacheStats() (uint64, uint64) { return l.m.DecodeCacheStats() }
func (l msfLive) merge(state any) error {
	o, ok := state.(*agm.MSF)
	if !ok {
		return fmt.Errorf("%w: an MSFTarget handle merges *MSF, got %T", ErrBadConfig, state)
	}
	return l.m.Merge(o)
}

func (t MSFTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*MSF], error) {
	if t.WMax <= 0 {
		return nil, fmt.Errorf("%w: a live MSF handle needs an explicit WMax (a scanned bound could be exceeded by a later Apply)", ErrBadConfig)
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	m, err := parallel.IngestBatchedOpts(p, src, func() *agm.MSF {
		return agm.NewMSF(seed, src.N(), t.WMax, t.Gamma)
	})
	if err != nil {
		return nil, err
	}
	return msfLive{m}, nil
}

type additiveLive struct{ a *spanner.Additive }

func (l additiveLive) apply(b []Update) error { return l.a.AddBatch(b) }
func (l additiveLive) query(p *parallel.Policy) (*AdditiveResult, error) {
	return l.a.ExtractOpts(p)
}
func (l additiveLive) enableCache(on bool)          { l.a.EnableDecodeCache(on) }
func (l additiveLive) invalidate()                  { l.a.InvalidateDecodeCache() }
func (l additiveLive) cacheStats() (uint64, uint64) { return l.a.DecodeCacheStats() }
func (l additiveLive) merge(state any) error {
	o, ok := state.(*spanner.Additive)
	if !ok {
		return fmt.Errorf("%w: an AdditiveTarget handle merges *AdditiveSpanner, got %T", ErrBadConfig, state)
	}
	return l.a.Merge(o)
}

func (t AdditiveTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*AdditiveResult], error) {
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	a, err := parallel.IngestOpts(p, src,
		func() (*spanner.Additive, error) { return spanner.NewAdditive(src.N(), cfg), nil },
		(*spanner.Additive).AddBatch, (*spanner.Additive).Merge)
	if err != nil {
		return nil, err
	}
	return additiveLive{a}, nil
}

type twoPassLive struct{ tp *spanner.TwoPass }

func (l twoPassLive) apply(b []Update) error { return l.tp.ApplyLive(b) }
func (l twoPassLive) query(p *parallel.Policy) (*SpannerResult, error) {
	return l.tp.QueryLive(p)
}
func (l twoPassLive) enableCache(on bool)          { l.tp.EnableDecodeCache(on) }
func (l twoPassLive) invalidate()                  { l.tp.InvalidateDecodeCache() }
func (l twoPassLive) cacheStats() (uint64, uint64) { return l.tp.DecodeCacheStats() }
func (l twoPassLive) merge(any) error {
	return fmt.Errorf("%w: a two-pass spanner handle cannot merge remote state (its live log never saw those updates); Apply them instead", ErrBadConfig)
}

func (t SpannerTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*SpannerResult], error) {
	_ = p // ingest is the serial replay StartLive runs; queries use the per-call policy
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	tp := spanner.NewTwoPass(src.N(), cfg)
	if err := tp.StartLive(src.(Stream)); err != nil {
		return nil, err
	}
	return twoPassLive{tp}, nil
}

type sparsifyLive struct{ ls *sparsify.Live }

func (l sparsifyLive) apply(b []Update) error { return l.ls.Apply(b) }
func (l sparsifyLive) query(p *parallel.Policy) (*SparsifierResult, error) {
	return l.ls.Query(p)
}
func (l sparsifyLive) enableCache(on bool)          { l.ls.EnableDecodeCache(on) }
func (l sparsifyLive) invalidate()                  { l.ls.InvalidateDecodeCache() }
func (l sparsifyLive) cacheStats() (uint64, uint64) { return l.ls.DecodeCacheStats() }
func (l sparsifyLive) merge(any) error {
	return fmt.Errorf("%w: a sparsifier handle cannot merge remote state (its live logs never saw those updates); Apply them instead", ErrBadConfig)
}

func (t SparsifierTarget) openLive(src Source, o *buildOptions, p *parallel.Policy) (liveState[*SparsifierResult], error) {
	_ = p
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	ls, err := sparsify.StartLive(src.(Stream), cfg)
	if err != nil {
		return nil, err
	}
	return sparsifyLive{ls}, nil
}
