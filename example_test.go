package dynstream_test

import (
	"context"
	"fmt"
	"strings"

	"dynstream"
)

// Example_build shows the unified front door: one options-driven
// Build call runs any sketch over any source under any execution
// policy. Here a text stream is parsed on the fly by a ReaderSource
// (no materialization) and ingested into the two-pass spanner by two
// workers — by linearity the result is identical to a serial run.
func Example_build() {
	input := `n 5
+ 0 1
+ 1 2
+ 2 3
+ 3 4
+ 0 4
+ 0 2
- 0 2
`
	src, err := dynstream.NewReaderSource(strings.NewReader(input))
	if err != nil {
		panic(err)
	}
	res, err := dynstream.Build(context.Background(), src,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2}},
		dynstream.WithSeed(7),
		dynstream.WithWorkers(2),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("spanner has deleted chord:", res.Spanner.HasEdge(0, 2))
	fmt.Println("spanner connected:", res.Spanner.Connected())
	// Output:
	// spanner has deleted chord: false
	// spanner connected: true
}

// ExampleWithDecodeWorkers separates the two worker knobs: WithWorkers
// governs ingest (and, by default, decode), while WithDecodeWorkers
// overrides the extraction phase — Borůvka rounds, cluster
// construction, table peeling — on its own. Decode parallelism never
// changes the output: results are placed by index and applied in the
// serial order, so the spanner below is bit-identical at any worker
// combination.
func ExampleWithDecodeWorkers() {
	g := dynstream.NewGraph(64)
	for i := 0; i < 64; i++ {
		g.AddUnitEdge(i, (i+1)%64)
		g.AddUnitEdge(i, (i+9)%64)
	}
	st := dynstream.StreamFromGraph(g, 3)

	serial, err := dynstream.Build(context.Background(), st,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 7}},
		dynstream.WithWorkers(1))
	if err != nil {
		panic(err)
	}
	parallel, err := dynstream.Build(context.Background(), st,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 7}},
		dynstream.WithWorkers(2),       // sharded ingest
		dynstream.WithDecodeWorkers(4), // concurrent extraction
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("same spanner:", parallel.Spanner.M() == serial.Spanner.M())
	fmt.Println("connected:", parallel.Spanner.Connected())
	// Output:
	// same spanner: true
	// connected: true
}

// ExampleBuild_spanner builds a 4-spanner of a small graph delivered
// as a dynamic stream with a deletion.
func ExampleBuild_spanner() {
	st := dynstream.NewMemoryStream(5)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}
	for _, e := range edges {
		_ = st.Append(dynstream.Update{U: e[0], V: e[1], Delta: 1})
	}
	// Insert then delete a chord: it must not appear in the spanner.
	_ = st.Append(dynstream.Update{U: 0, V: 2, Delta: 1})
	_ = st.Append(dynstream.Update{U: 0, V: 2, Delta: -1})

	res, err := dynstream.Build(context.Background(), st,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 7}})
	if err != nil {
		panic(err)
	}
	fmt.Println("spanner has deleted chord:", res.Spanner.HasEdge(0, 2))
	fmt.Println("spanner connected:", res.Spanner.Connected())
	// Output:
	// spanner has deleted chord: false
	// spanner connected: true
}

// ExampleNewForestSketch extracts a spanning forest from a linear
// sketch after deletions.
func ExampleNewForestSketch() {
	const n = 4
	fs := dynstream.NewForestSketch(3, n, dynstream.ForestConfig{})
	fs.AddEdge(0, 1, 1)
	fs.AddEdge(1, 2, 1)
	fs.AddEdge(2, 3, 1)
	fs.AddEdge(0, 3, 1)
	fs.AddEdge(0, 3, -1) // delete the cycle-closing edge

	forest, err := fs.SpanningForest(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("forest edges:", len(forest))
	// Output:
	// forest edges: 3
}

// ExampleNewBipartiteness decides bipartiteness from sketches alone.
func ExampleNewBipartiteness() {
	const n = 5
	b := dynstream.NewBipartiteness(11, n)
	// A 5-cycle (odd): not bipartite.
	for i := 0; i < n; i++ {
		b.AddUpdate(dynstream.Update{U: i, V: (i + 1) % n, Delta: 1})
	}
	bip, err := b.IsBipartite()
	if err != nil {
		panic(err)
	}
	fmt.Println("odd cycle bipartite:", bip)
	// Output:
	// odd cycle bipartite: false
}

// ExampleHandle_query keeps a build live: Open ingests the base
// stream, then Apply folds further updates into the sketch state and
// each Query re-extracts — served from the decode caches, re-decoding
// only the components the applied updates touched, and bit-identical
// to a cold Build over the whole stream so far.
func ExampleHandle_query() {
	ctx := context.Background()
	base := dynstream.NewMemoryStream(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := base.Append(dynstream.Update{U: e[0], V: e[1], Delta: 1, W: 1}); err != nil {
			panic(err)
		}
	}

	h, err := dynstream.Open(ctx, base, dynstream.ForestTarget{Seed: 7})
	if err != nil {
		panic(err)
	}
	sk, err := h.Query(ctx)
	if err != nil {
		panic(err)
	}
	forest, err := sk.SpanningForest(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("forest edges:", len(forest))

	// Bridge the components — and delete an original edge — live.
	err = h.Apply([]dynstream.Update{
		{U: 2, V: 3, Delta: 1, W: 1},
		{U: 4, V: 5, Delta: 1, W: 1},
		{U: 1, V: 2, Delta: -1, W: 1},
	})
	if err != nil {
		panic(err)
	}
	forest, err = sk.SpanningForest(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("after apply:", len(forest))
	// Output:
	// forest edges: 3
	// after apply: 4
}

// ExampleWithTracer attaches a tracer to a build and reads its phase
// aggregates back. Tracing is purely observational — the traced result
// is bit-identical to an untraced build — and the same tracer feeds
// the human-readable timeline (WriteTimeline) and the Perfetto-loadable
// Chrome sink (EnableEvents + WriteChromeTrace, or WithTraceFile).
func ExampleWithTracer() {
	input := `n 5
+ 0 1
+ 1 2
+ 2 3
+ 3 4
+ 0 4
`
	src, err := dynstream.NewReaderSource(strings.NewReader(input))
	if err != nil {
		panic(err)
	}
	tr := dynstream.NewTracer()
	_, err = dynstream.Build(context.Background(), src,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2}},
		dynstream.WithSeed(7),
		dynstream.WithTracer(tr),
	)
	if err != nil {
		panic(err)
	}
	for _, ph := range tr.Phases() {
		fmt.Printf("%s x%d\n", ph.Phase, ph.Count)
	}
	fmt.Println("updates ingested:", tr.IngestedTotal())
	// Output:
	// ingest x2
	// spanner/cluster/level00 x1
	// spanner/recover x1
	// updates ingested: 10
}
