package dynstream

// Benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md §4 / EXPERIMENTS.md. Each benchmark runs the same pipeline
// as the corresponding `cmd/spannerbench` table at a fixed workload and
// reports the paper-relevant quantities as custom metrics
// (stretch/size/space/ε) next to ns/op and allocations.
//
// Run: go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"dynstream/internal/baseline"
	"dynstream/internal/dynnet"
	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/linalg"
	"dynstream/internal/lowerbound"
	"dynstream/internal/parallel"
	"dynstream/internal/sketch"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
	"dynstream/internal/verify"
)

const benchSeed = 0xbe7c

// benchHostJSON renders the host-metadata object BENCH_ingest.json
// records next to every tracked block: the GOMAXPROCS/NumCPU the
// numbers were measured under, the toolchain, and the commit. Tracked
// benchmarks log it so a recording session captures the block to paste
// verbatim.
func benchHostJSON() string {
	commit := "unknown"
	if data, err := os.ReadFile(filepath.Join(".git", "HEAD")); err == nil {
		ref := string(bytes.TrimSpace(data))
		if rest, ok := bytes.CutPrefix([]byte(ref), []byte("ref: ")); ok {
			if sha, err := os.ReadFile(filepath.Join(".git", string(bytes.TrimSpace(rest)))); err == nil && len(sha) >= 7 {
				commit = string(sha[:7])
			}
		} else if len(ref) >= 7 {
			commit = ref[:7]
		}
	}
	return fmt.Sprintf(`{ "gomaxprocs": %d, "numcpu": %d, "go": %q, "commit": %q }`,
		runtime.GOMAXPROCS(0), runtime.NumCPU(), runtime.Version(), commit)
}

// reportHost logs the host-metadata block once per tracked benchmark.
func reportHost(b *testing.B) {
	b.Helper()
	b.Logf("host: %s", benchHostJSON())
}

// BenchmarkE1TwoPassSpanner measures the two-pass 2^k-spanner pipeline
// (Theorem 1) end to end on a churned dynamic stream.
func BenchmarkE1TwoPassSpanner(b *testing.B) {
	g := graph.ConnectedGNP(128, 0.07, benchSeed)
	st := stream.WithChurn(g, 2*g.M(), benchSeed+1)
	var res *spanner.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = spanner.BuildTwoPass(st, spanner.Config{K: 2, Seed: benchSeed + uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	rep := verify.Stretch(g, res.Spanner, 8)
	b.ReportMetric(rep.MaxStretch, "maxStretch")
	b.ReportMetric(float64(res.Spanner.M()), "spannerEdges")
}

// BenchmarkE2SpannerSize reports spanner size against the Lemma 12
// bound k·n^{1+1/k}·log n.
func BenchmarkE2SpannerSize(b *testing.B) {
	const n, k = 192, 2
	g := graph.ConnectedGNP(n, 0.06, benchSeed+2)
	st := stream.FromGraph(g, benchSeed+3)
	var res *spanner.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: benchSeed + 4 + uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	bound := float64(k) * math.Pow(n, 1+1.0/k) * math.Log2(n)
	b.ReportMetric(float64(res.Spanner.M()), "edges")
	b.ReportMetric(float64(res.Spanner.M())/bound, "edgesOverBound")
}

// BenchmarkE3SpannerSpace reports the sketch footprint against the
// Theorem 1 space bound.
func BenchmarkE3SpannerSpace(b *testing.B) {
	const n, k = 192, 3
	g := graph.ConnectedGNP(n, 0.06, benchSeed+5)
	st := stream.FromGraph(g, benchSeed+6)
	var res *spanner.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: benchSeed + 7 + uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	l := math.Log2(float64(n))
	b.ReportMetric(float64(res.SpaceWords), "spaceWords")
	b.ReportMetric(float64(res.SpaceWords)/(float64(k)*math.Pow(n, 1+1.0/k)*l*l*l), "spaceOverBound")
}

// BenchmarkE4AdditiveSpanner measures the single-pass additive spanner
// (Theorem 3) on a dense churned stream.
func BenchmarkE4AdditiveSpanner(b *testing.B) {
	const n, d = 128, 4
	g := graph.ConnectedGNP(n, 0.16, benchSeed+8)
	st := stream.WithChurn(g, g.M(), benchSeed+9)
	var res *spanner.AdditiveResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = spanner.BuildAdditive(st, spanner.AdditiveConfig{
			D: d, DegreeFactor: 0.5, Seed: benchSeed + 10 + uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	rep := verify.Additive(g, res.Spanner, 8)
	b.ReportMetric(float64(rep.MaxError), "maxAdditiveErr")
	b.ReportMetric(float64(n/d), "errBound")
	b.ReportMetric(float64(res.Spanner.M()), "spannerEdges")
}

// BenchmarkE5LowerBound plays the Theorem 4 INDEX game at matched
// space and reports the success rate (should be ~1).
func BenchmarkE5LowerBound(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.Play(lowerbound.GameConfig{
			Blocks: 6, BlockSize: 12, AlgD: 12, Trials: 4,
			Seed: benchSeed + 11 + uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.SuccessRate()
	}
	b.ReportMetric(rate, "successRate")
}

// BenchmarkE6Sparsifier measures the two-pass spectral sparsifier
// (Corollary 2) on K16 and reports exact spectral error.
func BenchmarkE6Sparsifier(b *testing.B) {
	g := graph.Complete(16)
	st := stream.FromGraph(g, benchSeed+12)
	var res *sparsify.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sparsify.Sparsify(st, sparsify.Config{
			K: 1, Z: 32, Seed: benchSeed + 13 + uint64(i),
			Estimate: sparsify.EstimateConfig{
				K: 1, J: 3, T: 8, Delta: 0.34, Seed: benchSeed + 14 + uint64(i),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	eps, err := linalg.SpectralEpsilon(g, res.Sparsifier)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(eps, "spectralEps")
	b.ReportMetric(float64(res.Sparsifier.M()), "edges")
}

// BenchmarkE7SSBaseline measures the offline Spielman–Srivastava
// baseline (Theorem 7) at the same instance family as E6.
func BenchmarkE7SSBaseline(b *testing.B) {
	g := graph.Complete(64)
	var h *graph.Graph
	for i := 0; i < b.N; i++ {
		h = sparsify.SpielmanSrivastava(g, 0.5, 1.0, benchSeed+15+uint64(i))
	}
	eps, err := linalg.SpectralEpsilon(g, h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(eps, "spectralEps")
	b.ReportMetric(float64(h.M()), "edges")
}

// BenchmarkE8AGMForest measures spanning-forest extraction from AGM
// sketches (Theorem 10) under heavy churn.
func BenchmarkE8AGMForest(b *testing.B) {
	g := graph.ConnectedGNP(128, 0.05, benchSeed+16)
	st := stream.WithChurn(g, 2*g.M(), benchSeed+17)
	success := 0.0
	var space int
	for i := 0; i < b.N; i++ {
		sk := NewForestSketch(benchSeed+18+uint64(i), g.N(), ForestConfig{})
		if err := st.Replay(func(u stream.Update) error { sk.AddUpdate(u); return nil }); err != nil {
			b.Fatal(err)
		}
		forest, err := sk.SpanningForest(nil)
		if err != nil {
			b.Fatal(err)
		}
		space = sk.SpaceWords()
		uf := graph.NewUnionFind(g.N())
		for _, e := range forest {
			uf.Union(e.U, e.V)
		}
		if uf.Sets() == 1 {
			success++
		}
	}
	b.ReportMetric(success/float64(b.N), "successRate")
	b.ReportMetric(float64(space), "spaceWords")
}

// BenchmarkE9Baselines measures the offline Baswana–Sen baseline at the
// E9 workload (compare with BenchmarkE1TwoPassSpanner).
func BenchmarkE9Baselines(b *testing.B) {
	g := graph.ConnectedGNP(128, 0.1, benchSeed+19)
	var h *graph.Graph
	for i := 0; i < b.N; i++ {
		h = baseline.BaswanaSen(g, 2, benchSeed+20+uint64(i))
	}
	rep := verify.Stretch(g, h, 8)
	b.ReportMetric(rep.MaxStretch, "maxStretch")
	b.ReportMetric(float64(h.M()), "edges")
}

// BenchmarkParallelIngest measures the concurrent sharded-ingest
// pipeline: the same churn stream is ingested into AGM forest sketches
// by 1/2/4/8 workers and merged, so the speedup of the worker pool is
// tracked in the perf trajectory. Output is identical across worker
// counts (linearity), which is asserted once per run. The workload is
// ingest-dominated (a long churn stream over a moderate vertex set):
// sharding pays for the per-worker state allocation and the final
// merge only when the update volume dwarfs the sketch size, which is
// exactly the heavy-traffic regime the pipeline targets.
func BenchmarkParallelIngest(b *testing.B) {
	g := graph.ConnectedGNP(64, 0.2, benchSeed+30)
	st := stream.WithChurn(g, 30000, benchSeed+31)
	serial, err := Build(context.Background(), st, ForestTarget{Seed: benchSeed + 32}, WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	wantForest, err := serial.SpanningForest(nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var sk *ForestSketch
			for i := 0; i < b.N; i++ {
				sk, err = Build(context.Background(), st, ForestTarget{Seed: benchSeed + 32}, WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			forest, err := sk.SpanningForest(nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(forest) != len(wantForest) {
				b.Fatalf("workers=%d: forest %d edges, serial %d", workers, len(forest), len(wantForest))
			}
			b.ReportMetric(float64(st.Len()*b.N)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkIngestThroughput is the ingest trajectory benchmark tracked
// in BENCH_ingest.json: updates/sec folding a churned dynamic stream
// into an AGM forest sketch, at n ∈ {1k, 10k} vertices and 1 or 4
// workers. It exercises the whole fast path of the batched ingest
// stack — fixed-base power tables, shared per-round L0 families with
// flattened cell storage, hint-routed endpoint updates, and batched
// shard replay. (The n=10k instance is construction-heavy: sketch
// allocation is part of what the trajectory tracks.)
func BenchmarkIngestThroughput(b *testing.B) {
	reportHost(b)
	for _, n := range []int{1000, 10000} {
		g := graph.ConnectedGNP(n, 4.0/float64(n), benchSeed+40)
		st := stream.WithChurn(g, 20000, benchSeed+41)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("n%d/workers%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Build(context.Background(), st, ForestTarget{Seed: benchSeed + 42}, WithWorkers(workers)); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.Len()*b.N)/b.Elapsed().Seconds(), "updates/s")
			})
		}
	}
}

// BenchmarkDecodeThroughput is the decode trajectory benchmark tracked
// in BENCH_ingest.json: the extraction phase isolated from ingest, at
// 1 vs NumCPU decode workers. Forest and k-connectivity run the
// Borůvka-round decode at n ∈ {1k, 10k} (the certificate consumes its
// sketches, so each iteration restores them from a marshaled snapshot
// with the timer stopped); the two-pass spanner times EndPass1 cluster
// construction plus Finish table peeling at n=1k; the sparsifier
// oracle grid times its per-cell extraction at n=256. Output is
// asserted identical across worker counts by the decode equivalence
// tests — here only the wall clock varies.
func BenchmarkDecodeThroughput(b *testing.B) {
	reportHost(b)
	multi := runtime.NumCPU()
	if multi < 2 {
		multi = 4 // single-core host: the point still tracks fan-out overhead
	}
	workerCounts := []int{1, multi}

	for _, n := range []int{1000, 10000} {
		g := graph.ConnectedGNP(n, 4.0/float64(n), benchSeed+60)
		st := stream.WithChurn(g, 20000, benchSeed+61)
		sk := NewForestSketch(benchSeed+62, n, ForestConfig{})
		if err := st.Replay(func(u stream.Update) error { sk.AddUpdate(u); return nil }); err != nil {
			b.Fatal(err)
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("forest/n%d/decode%d", n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sk.SpanningForestParallel(nil, w); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decodes/s")
			})
		}

		kc := NewKConnectivity(benchSeed+63, n, 2)
		if err := st.Replay(func(u stream.Update) error { kc.AddUpdate(u); return nil }); err != nil {
			b.Fatal(err)
		}
		blob, err := kc.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("kconn/n%d/decode%d", n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := &KConnectivity{}
					if err := fresh.UnmarshalBinary(blob); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := fresh.CertificateParallel(w); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decodes/s")
			})
		}
	}

	{
		const n = 1000
		g := graph.ConnectedGNP(n, 4.0/float64(n), benchSeed+64)
		st := stream.WithChurn(g, 10000, benchSeed+65)
		tp := spanner.NewTwoPass(n, spanner.Config{K: 2, Seed: benchSeed + 66})
		if err := stream.ReplayBatches(st, 0, tp.Pass1AddBatch); err != nil {
			b.Fatal(err)
		}
		blob, err := tp.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("spanner/n%d/decode%d", n, w), func(b *testing.B) {
				p := parallel.Default().WithWorkers(w)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := &spanner.TwoPass{}
					if err := fresh.UnmarshalBinary(blob); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if err := fresh.EndPass1Opts(p); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if err := stream.ReplayBatches(st, 0, fresh.Pass2AddBatch); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := fresh.FinishOpts(p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decodes/s")
			})
		}
	}

	{
		const n = 256
		g := graph.ConnectedGNP(n, 6.0/float64(n), benchSeed+67)
		st := stream.WithChurn(g, 4000, benchSeed+68)
		cfg := sparsify.EstimateConfig{K: 2, J: 3, T: 8, Delta: 0.34, Seed: benchSeed + 69}
		g0, err := sparsify.NewGrid(n, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := stream.ReplayBatches(st, 0, g0.Pass1AddBatch); err != nil {
			b.Fatal(err)
		}
		blob, err := g0.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("sparsify/n%d/decode%d", n, w), func(b *testing.B) {
				p := parallel.Default().WithWorkers(w)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := &sparsify.Grid{}
					if err := fresh.UnmarshalBinary(blob); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if err := fresh.EndPass1Opts(p); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if err := stream.ReplayBatches(st, 0, fresh.Pass2AddBatch); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := fresh.FinishOpts(p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decodes/s")
			})
		}
	}
}

// BenchmarkDistributedIngest measures the multi-process build path
// tracked in BENCH_ingest.json: updates/sec folding a churned dynamic
// stream into an AGM forest sketch across 1/2/4 protocol workers over
// unix sockets (in-process listeners speaking the full dynnet frame
// protocol — varint/CRC framing, compressed state blobs, shard
// streaming, and the coordinator merge). The result is asserted
// byte-identical to a local build once per worker count.
func BenchmarkDistributedIngest(b *testing.B) {
	reportHost(b)
	g := graph.ConnectedGNP(1000, 4.0/1000, benchSeed+50)
	st := stream.WithChurn(g, 50000, benchSeed+51)
	ctx := context.Background()
	local, err := Build(ctx, st, ForestTarget{Seed: benchSeed + 52})
	if err != nil {
		b.Fatal(err)
	}
	want, err := local.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			dir, err := os.MkdirTemp("", "dynbench")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			addrs := make([]string, workers)
			for i := range addrs {
				addrs[i] = filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
				ln, err := net.Listen("unix", addrs[i])
				if err != nil {
					b.Fatal(err)
				}
				defer ln.Close()
				go dynnet.ListenAndServeWorker(ctx, ln, dynnet.WorkerConfig{})
			}
			cluster, err := DialWorkers(ctx, addrs...)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			b.ResetTimer()
			var sk *ForestSketch
			for i := 0; i < b.N; i++ {
				sk, err = Build(ctx, st, ForestTarget{Seed: benchSeed + 52}, WithRemoteCluster(cluster))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			got, err := sk.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				b.Fatal("distributed state differs from local build")
			}
			b.ReportMetric(float64(st.Len()*b.N)/b.Elapsed().Seconds(), "updates/s")
			out, in := cluster.BytesOnWire()
			b.ReportMetric(float64(out+in)/float64(b.N), "wireB/op")
		})
	}
}

// BenchmarkParallelSpanner measures the end-to-end two-pass spanner
// with sharded concurrent passes at 1/2/4/8 workers.
func BenchmarkParallelSpanner(b *testing.B) {
	g := graph.ConnectedGNP(128, 0.07, benchSeed+33)
	st := stream.WithChurn(g, 2*g.M(), benchSeed+34)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spanner.BuildTwoPassParallel(st,
					spanner.Config{K: 2, Seed: benchSeed + 35}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA1Levels ablates the E_j level count in Algorithm 1.
func BenchmarkA1Levels(b *testing.B) {
	g := graph.ConnectedGNP(96, 0.1, benchSeed+21)
	st := stream.FromGraph(g, benchSeed+22)
	for _, levels := range []int{4, 15} {
		b.Run(map[bool]string{true: "levels4", false: "levels15"}[levels == 4], func(b *testing.B) {
			var res *spanner.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = spanner.BuildTwoPass(st, spanner.Config{
					K: 2, Levels: levels, Seed: benchSeed + 23 + uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
			}
			rep := verify.Stretch(g, res.Spanner, 8)
			b.ReportMetric(rep.MaxStretch, "maxStretch")
			b.ReportMetric(float64(rep.Disconnected), "disconnected")
		})
	}
}

// BenchmarkA2SketchBudget ablates IBLT load: decode success at exact
// capacity vs 3x overload.
func BenchmarkA2SketchBudget(b *testing.B) {
	for _, load := range []int{1, 3} {
		name := map[int]string{1: "load1x", 3: "load3x"}[load]
		b.Run(name, func(b *testing.B) {
			const capacity = 16
			ok := 0
			for i := 0; i < b.N; i++ {
				s := sketch.NewSketchB(benchSeed+24+uint64(i), capacity)
				rng := hashing.NewSplitMix64(uint64(i))
				items := load * capacity
				seen := map[uint64]bool{}
				for len(seen) < items {
					k := rng.Next() % 1000003
					if !seen[k] {
						seen[k] = true
						s.Add(k, 1)
					}
				}
				if got, decoded := s.Decode(); decoded && len(got) == items {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(b.N), "decodeRate")
		})
	}
}

// BenchmarkA3Oracles ablates ESTIMATE oracle kind: sketch vs exact.
func BenchmarkA3Oracles(b *testing.B) {
	g := graph.Complete(14)
	st := stream.FromGraph(g, benchSeed+25)
	for _, exact := range []bool{false, true} {
		name := map[bool]string{false: "sketch", true: "exact"}[exact]
		b.Run(name, func(b *testing.B) {
			var res *sparsify.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sparsify.Sparsify(st, sparsify.Config{
					K: 1, Z: 16, Seed: benchSeed + 26 + uint64(i),
					Estimate: sparsify.EstimateConfig{
						K: 1, J: 3, T: 7, Delta: 0.34,
						Seed: benchSeed + 27 + uint64(i), ExactOracles: exact,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			eps, err := linalg.SpectralEpsilon(g, res.Sparsifier)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(eps, "spectralEps")
		})
	}
}

// BenchmarkIncrementalQuery measures the live-handle query path
// tracked in the `incremental` block of BENCH_ingest.json: with the
// decode caches on, a re-query after a small churn batch re-decodes
// only the components (or cluster regions) the batch touched, vs the
// cold full decode a cache-free build pays. Churn batches insert
// fresh random edges and delete previously inserted ones, so the
// graph stays near its base shape while every batch dirties ~pct% of
// the edge set. The apply itself is untimed ingest; the metric is
// queries/sec.
func BenchmarkIncrementalQuery(b *testing.B) {
	reportHost(b)
	churn := func(rng *rand.Rand, n, k int, extra *[][2]int, apply func(u, v, delta int)) {
		del := k / 2
		if del > len(*extra) {
			del = len(*extra)
		}
		for j := 0; j < del; j++ {
			i := rng.Intn(len(*extra))
			e := (*extra)[i]
			(*extra)[i] = (*extra)[len(*extra)-1]
			*extra = (*extra)[:len(*extra)-1]
			apply(e[0], e[1], -1)
		}
		for j := 0; j < k-del; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			apply(u, v, 1)
			*extra = append(*extra, [2]int{u, v})
		}
	}

	for _, n := range []int{1000, 10000} {
		g := graph.ConnectedGNP(n, 4.0/float64(n), benchSeed+80)
		st := stream.WithChurn(g, n, benchSeed+81)
		m := g.M()

		cold := NewForestSketch(benchSeed+82, n, ForestConfig{})
		if err := st.Replay(func(u stream.Update) error { cold.AddUpdate(u); return nil }); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("forest/n%d/cold", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cold.SpanningForest(nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})

		// Churn levels in basis points of m: the speedup over a cold
		// decode scales inversely with batch size, because bit-identity
		// forces re-decoding every component the batch touched in every
		// Borůvka round.
		for _, lvl := range []struct {
			name string
			bp   int
		}{{"churn0.05pct", 5}, {"churn0.1pct", 10}, {"churn1pct", 100}, {"churn10pct", 1000}} {
			live := NewForestSketch(benchSeed+82, n, ForestConfig{})
			live.EnableDecodeCache(true)
			if err := st.Replay(func(u stream.Update) error { live.AddUpdate(u); return nil }); err != nil {
				b.Fatal(err)
			}
			if _, err := live.SpanningForest(nil); err != nil { // warm
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(benchSeed + 83)))
			var extra [][2]int
			b.Run(fmt.Sprintf("forest/n%d/%s", n, lvl.name), func(b *testing.B) {
				k := m * lvl.bp / 10000
				if k < 2 {
					k = 2
				}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					churn(rng, n, k, &extra, func(u, v, delta int) { live.AddEdge(u, v, int64(delta)) })
					b.StartTimer()
					if _, err := live.SpanningForest(nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		}
	}

	{
		const n = 1000
		g := graph.ConnectedGNP(n, 4.0/float64(n), benchSeed+84)
		st := stream.WithChurn(g, n, benchSeed+85)
		m := g.M()
		p := parallel.Default()
		{
			tp := spanner.NewTwoPass(n, spanner.Config{K: 2, Seed: benchSeed + 86})
			tp.EnableDecodeCache(true)
			if err := tp.StartLive(st); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("spanner/n%d/cold", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tp.InvalidateDecodeCache()
					b.StartTimer()
					if _, err := tp.QueryLive(p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		}
		for _, pct := range []int{1, 10} {
			tp := spanner.NewTwoPass(n, spanner.Config{K: 2, Seed: benchSeed + 86})
			tp.EnableDecodeCache(true)
			if err := tp.StartLive(st); err != nil {
				b.Fatal(err)
			}
			if _, err := tp.QueryLive(p); err != nil { // warm
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(benchSeed + 87)))
			var extra [][2]int
			b.Run(fmt.Sprintf("spanner/n%d/churn%dpct", n, pct), func(b *testing.B) {
				k := m * pct / 100
				if k < 2 {
					k = 2
				}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					var batch []stream.Update
					churn(rng, n, k, &extra, func(u, v, delta int) {
						batch = append(batch, stream.Update{U: u, V: v, Delta: delta, W: 1})
					})
					if err := tp.ApplyLive(batch); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := tp.QueryLive(p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		}
	}
}
