package dynstream_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/dynnet"
	"dynstream/internal/dynnet/chaos"
)

// The fault-injection matrix: every target × every fault kind, with a
// seeded chaos.Conn wrapped around one (or every) worker's connection.
// The contract under fire is strict — each build must end in either a
// result bit-identical to the serial build or a typed error, within a
// bounded time. Never a hang, never silent corruption.

// chaosCluster starts three in-process workers connected to an
// accepting coordinator over unix sockets, with each worker's
// connection passed through wrap (identity for clean workers). It
// returns the established cluster.
func chaosCluster(t *testing.T, ctx context.Context, ro dynstream.RemoteOptions,
	wrap func(i int, c net.Conn) net.Conn) *dynstream.RemoteCluster {
	t.Helper()
	dir, err := os.MkdirTemp("", "chaos")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	const workers = 3
	for i := 0; i < workers; i++ {
		conn, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		wc := wrap(i, conn)
		// ServeWorker closes wc when ctx is canceled, which also
		// unblocks a chaos stall at teardown.
		go dynnet.ServeWorker(ctx, wc, dynnet.WorkerConfig{ID: fmt.Sprintf("w%d", i)})
	}
	cluster, err := dynstream.AcceptWorkersWith(ctx, ln, workers, ro)
	if err != nil {
		t.Fatalf("accept workers: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	return cluster
}

// chaosBuilders runs each of the seven targets and diffs the faulted
// remote result against a serial build: decoded payloads for the
// decode-family targets, marshaled state for the sketch family.
func chaosBuilders(st *dynstream.MemoryStream) map[string]func(ctx context.Context, t *testing.T, opts ...dynstream.Option) error {
	diff := func(t *testing.T, what string, remote, serial any, err error) error {
		if err != nil {
			return err
		}
		if m, ok := remote.(interface{ MarshalBinary() ([]byte, error) }); ok {
			marshalEqual(t, what, m, serial.(interface{ MarshalBinary() ([]byte, error) }))
			return nil
		}
		if !reflect.DeepEqual(remote, serial) {
			t.Fatalf("%s: faulted build diverged from serial build", what)
		}
		return nil
	}
	run := func(what string, build func(ctx context.Context, opts ...dynstream.Option) (any, error)) func(ctx context.Context, t *testing.T, opts ...dynstream.Option) error {
		return func(ctx context.Context, t *testing.T, opts ...dynstream.Option) error {
			serial, err := build(ctx)
			if err != nil {
				t.Fatalf("%s: serial build: %v", what, err)
			}
			remote, err := build(ctx, opts...)
			return diff(t, what, remote, serial, err)
		}
	}
	return map[string]func(ctx context.Context, t *testing.T, opts ...dynstream.Option) error{
		"forest": run("forest", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			return dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 21}, opts...)
		}),
		"kconn": run("kconn", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			return dynstream.Build(ctx, st, dynstream.KConnectivityTarget{Seed: 22, K: 2}, opts...)
		}),
		"bipartite": run("bipartite", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			return dynstream.Build(ctx, st, dynstream.BipartitenessTarget{Seed: 23}, opts...)
		}),
		"msf": run("msf", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			return dynstream.Build(ctx, st, dynstream.MSFTarget{Seed: 24, WMax: 8, Gamma: 0.5}, opts...)
		}),
		"additive": run("additive", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			r, err := dynstream.Build(ctx, st, dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: 4, Seed: 25}}, opts...)
			if err != nil {
				return nil, err
			}
			return r.Spanner.Edges(), nil
		}),
		"spanner": run("spanner", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			r, err := dynstream.Build(ctx, st, dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 26}}, opts...)
			if err != nil {
				return nil, err
			}
			return r.Spanner.Edges(), nil
		}),
		"sparsifier": run("sparsifier", func(ctx context.Context, opts ...dynstream.Option) (any, error) {
			r, err := dynstream.Build(ctx, st, dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
				K: 1, Z: 3, Seed: 27,
				Estimate: dynstream.EstimateConfig{K: 1, J: 2, T: 4, Delta: 0.34, Seed: 28},
			}}, opts...)
			if err != nil {
				return nil, err
			}
			return r.Sparsifier.Edges(), nil
		}),
	}
}

// chaosFaults is the fault schedule matrix: every kind targets worker
// 1's connection with a byte budget that trips mid-stream (well past
// the ~50-byte handshake, inside the UPDATES traffic).
var chaosFaults = []chaos.Config{
	{Kind: chaos.Delay, Seed: 1, Delay: 2 * time.Millisecond},
	{Kind: chaos.ShortWrite, Seed: 2},
	{Kind: chaos.Stall, Seed: 3, ByteBudget: 2048},
	{Kind: chaos.Disconnect, Seed: 4, ByteBudget: 2048},
	{Kind: chaos.BitFlip, Seed: 5, ByteBudget: 2048},
}

// TestChaosMatrix drives every target through every fault kind. The
// lossless faults (delay, short-write) must leave the build
// bit-identical; the lossy ones (stall, disconnect, bit-flip) hit one
// worker out of three, so failover must still deliver the
// bit-identical result. Per-frame deadlines (FrameTimeout) are what
// turn a stalled worker into a dead one instead of a hung build.
func TestChaosMatrix(t *testing.T) {
	st := remoteTestStream(t)
	builders := chaosBuilders(st)
	for _, cfg := range chaosFaults {
		cfg := cfg
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			for name, build := range builders {
				build := build
				t.Run(name, func(t *testing.T) {
					ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
					defer cancel()
					// Generous relative to the stall-detection need (the
					// 1-min ctx is the ceiling): under -race a healthy
					// worker's ingest gap can exceed tight deadlines.
					ro := dynstream.RemoteOptions{FrameTimeout: 3 * time.Second}
					cluster := chaosCluster(t, ctx, ro, func(i int, c net.Conn) net.Conn {
						if i == 1 {
							return chaos.Wrap(c, cfg)
						}
						return c
					})
					err := build(ctx, t, dynstream.WithRemoteCluster(cluster))
					if err != nil {
						// Only a typed, classifiable failure is
						// acceptable — and never for lossless faults.
						if cfg.Kind == chaos.Delay || cfg.Kind == chaos.ShortWrite {
							t.Fatalf("lossless fault %v failed the build: %v", cfg.Kind, err)
						}
						if !errors.Is(err, dynstream.ErrNoWorkers) && !errors.Is(err, context.DeadlineExceeded) {
							t.Fatalf("fault %v produced an untyped error: %v", cfg.Kind, err)
						}
					}
					if ctx.Err() != nil {
						t.Fatalf("fault %v timed out the build (deadlock?)", cfg.Kind)
					}
				})
			}
		})
	}
}

// TestChaosAllWorkersLostFallsBackLocally kills every worker mid-build
// (disconnect budgets on all three connections): the pass must surface
// ErrNoWorkers without WithLocalFallback, and degrade to the
// bit-identical local build with it.
func TestChaosAllWorkersLostFallsBackLocally(t *testing.T) {
	st := remoteTestStream(t)
	target := dynstream.ForestTarget{Seed: 31}
	wrapAll := func(i int, c net.Conn) net.Conn {
		return chaos.Wrap(c, chaos.Config{Kind: chaos.Disconnect, Seed: uint64(40 + i), ByteBudget: 2048})
	}
	ro := dynstream.RemoteOptions{FrameTimeout: 500 * time.Millisecond}

	t.Run("typed error without fallback", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		cluster := chaosCluster(t, ctx, ro, wrapAll)
		_, err := dynstream.Build(ctx, st, target, dynstream.WithRemoteCluster(cluster))
		if !errors.Is(err, dynstream.ErrNoWorkers) {
			t.Fatalf("all workers lost: got %v, want ErrNoWorkers", err)
		}
	})
	t.Run("bit-identical with fallback", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		cluster := chaosCluster(t, ctx, ro, wrapAll)
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dynstream.Build(ctx, st, target,
			dynstream.WithRemoteCluster(cluster), dynstream.WithLocalFallback())
		if err != nil {
			t.Fatalf("fallback build: %v", err)
		}
		marshalEqual(t, "fallback forest", got, serial)
	})
}

// TestChaosSmoke is the CI chaos gate (DYNSTREAM_CHAOS_SMOKE=1): the
// seeded fault matrix over a 3-worker two-pass spanner build at a
// larger stream, exercising failover inside both passes.
func TestChaosSmoke(t *testing.T) {
	if os.Getenv("DYNSTREAM_CHAOS_SMOKE") == "" {
		t.Skip("set DYNSTREAM_CHAOS_SMOKE=1 to run the chaos smoke build")
	}
	st := remoteTestStream(t)
	target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 3, Seed: 51}}
	ctx0 := context.Background()
	serial, err := dynstream.Build(ctx0, st, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range chaosFaults {
		cfg := cfg
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(ctx0, 2*time.Minute)
			defer cancel()
			ro := dynstream.RemoteOptions{FrameTimeout: time.Second}
			cluster := chaosCluster(t, ctx, ro, func(i int, c net.Conn) net.Conn {
				if i == 1 {
					return chaos.Wrap(c, cfg)
				}
				return c
			})
			got, err := dynstream.Build(ctx, st, target,
				dynstream.WithRemoteCluster(cluster), dynstream.WithLocalFallback())
			if err != nil {
				t.Fatalf("fault %v: %v", cfg.Kind, err)
			}
			edgesEqual(t, "smoke spanner", got.Spanner, serial.Spanner)
		})
	}
}
