package dynstream

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"dynstream/internal/agm"
	"dynstream/internal/dynnet"
	"dynstream/internal/obs"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

// Multi-process builds. The sketches are linear, so a stream sharded
// across worker *processes*, ingested into same-seeded states, and
// merged at a coordinator is bit-identical to a single-process Build —
// the distributed protocol of the paper's introduction over real
// sockets. internal/dynnet provides the frame protocol; this file wires
// it into the Build front door:
//
//	cluster, _ := dynstream.DialWorkers(ctx, "unix:/tmp/w0.sock", "unix:/tmp/w1.sock")
//	defer cluster.Close()
//	sk, err := dynstream.Build(ctx, src, dynstream.ForestTarget{Seed: 7},
//	    dynstream.WithRemoteCluster(cluster))
//
// or one-shot, dialing and closing per call:
//
//	sk, err := dynstream.Build(ctx, src, dynstream.ForestTarget{Seed: 7},
//	    dynstream.WithRemoteWorkers("unix:/tmp/w0.sock", "unix:/tmp/w1.sock"))
//
// Worker processes run `dynstream worker -listen ADDR` (or register
// with a listening coordinator; see AcceptWorkers).

// ErrNoWorkers reports a remote build with no live workers left —
// every connection dropped (or timed out) and no worker could be
// redialed. With WithLocalFallback and a replayable source, Build
// converts this into a local rerun instead of returning it.
var ErrNoWorkers = dynnet.ErrNoWorkers

// RemoteCluster is an established set of registered worker connections,
// reusable across Build calls (every pass of every build re-ships a
// prototype state, so one cluster serves any sequence of targets).
type RemoteCluster struct {
	coord *dynnet.Coordinator
}

// RemoteOptions tunes the connection management of a worker cluster.
// The zero value gives the defaults: a 10s handshake timeout, one dial
// attempt per address, no per-frame deadlines, redialing enabled for
// dialed clusters.
type RemoteOptions struct {
	// HandshakeTimeout bounds the HELLO registration exchange per
	// worker (default 10s). Must be > 0 if set.
	HandshakeTimeout time.Duration
	// FrameTimeout, when > 0, bounds every protocol frame read/write —
	// the heartbeat that declares a silent worker dead (its shard is
	// then re-replayed) instead of hanging the build. Size it to the
	// slowest expected single-frame exchange; the worker's end-of-pass
	// marshal+SKETCH is the longest gap.
	FrameTimeout time.Duration
	// DialAttempts is the number of connection attempts per worker
	// address (default 1), with exponential backoff from DialBackoff
	// (default 100ms) up to DialMaxBackoff (default 5s) between
	// attempts, jittered deterministically from JitterSeed.
	DialAttempts   int
	DialBackoff    time.Duration
	DialMaxBackoff time.Duration
	JitterSeed     uint64
	// NoRedial disables re-dialing dropped workers during shard
	// recovery. By default a dialed cluster may re-register a
	// restarted worker mid-build and re-replay its shard to it;
	// accepted clusters (AcceptWorkers) never redial — they have no
	// address to dial.
	NoRedial bool
}

// validate rejects nonsensical settings with typed errors (negative
// durations and counts; zero means "default").
func (ro RemoteOptions) validate() error {
	if ro.HandshakeTimeout < 0 {
		return fmt.Errorf("%w: handshake timeout must be > 0, got %v", ErrBadConfig, ro.HandshakeTimeout)
	}
	if ro.FrameTimeout < 0 {
		return fmt.Errorf("%w: frame timeout must be >= 0, got %v", ErrBadConfig, ro.FrameTimeout)
	}
	if ro.DialAttempts < 0 {
		return fmt.Errorf("%w: dial attempts must be >= 1, got %d", ErrBadConfig, ro.DialAttempts)
	}
	if ro.DialBackoff < 0 || ro.DialMaxBackoff < 0 {
		return fmt.Errorf("%w: dial backoff must be >= 0", ErrBadConfig)
	}
	return nil
}

// dynnetOpts maps the exported options onto the dynnet layer's.
func (ro RemoteOptions) dynnetOpts() dynnet.Options {
	return dynnet.Options{
		HandshakeTimeout: ro.HandshakeTimeout,
		FrameTimeout:     ro.FrameTimeout,
		DialAttempts:     ro.DialAttempts,
		DialBackoff:      ro.DialBackoff,
		DialMaxBackoff:   ro.DialMaxBackoff,
		JitterSeed:       ro.JitterSeed,
		Redial:           !ro.NoRedial,
	}
}

// DialWorkers connects to worker processes listening at addrs and
// performs the registration handshake. Addresses are "host:port",
// "unix:/path/to.sock", or a bare socket path (anything containing a
// path separator dials a unix socket).
func DialWorkers(ctx context.Context, addrs ...string) (*RemoteCluster, error) {
	return DialWorkersWith(ctx, RemoteOptions{}, addrs...)
}

// DialWorkersWith is DialWorkers with explicit connection-management
// options: dial retry/backoff with deterministic jitter, handshake and
// per-frame deadlines, and mid-build redial of dropped workers.
func DialWorkersWith(ctx context.Context, ro RemoteOptions, addrs ...string) (*RemoteCluster, error) {
	if err := ro.validate(); err != nil {
		return nil, err
	}
	coord, err := dynnet.DialOpts(ctx, ro.dynnetOpts(), addrs...)
	if err != nil {
		return nil, err
	}
	return &RemoteCluster{coord: coord}, nil
}

// AcceptWorkers waits for count worker processes to connect to ln and
// register — the coordinator-listens topology (`dynstream worker
// -connect ADDR` on the worker side).
func AcceptWorkers(ctx context.Context, ln net.Listener, count int) (*RemoteCluster, error) {
	return AcceptWorkersWith(ctx, ln, count, RemoteOptions{})
}

// AcceptWorkersWith is AcceptWorkers with explicit
// connection-management options. Accepted workers carry no dialable
// address, so the redial setting does not apply; the handshake and
// frame deadlines do.
func AcceptWorkersWith(ctx context.Context, ln net.Listener, count int, ro RemoteOptions) (*RemoteCluster, error) {
	if err := ro.validate(); err != nil {
		return nil, err
	}
	coord, err := dynnet.AcceptOpts(ctx, ln, count, ro.dynnetOpts())
	if err != nil {
		return nil, err
	}
	return &RemoteCluster{coord: coord}, nil
}

// Close tears down every worker connection.
func (c *RemoteCluster) Close() error { return c.coord.Close() }

// WorkerIDs returns the registered workers' identifiers.
func (c *RemoteCluster) WorkerIDs() []string { return c.coord.WorkerIDs() }

// Live returns the number of workers still considered healthy.
func (c *RemoteCluster) Live() int { return c.coord.Live() }

// BytesOnWire returns the cumulative protocol bytes sent to and
// received from the workers — the coordinator's wire-cost figure. It
// is the sum of the FrameStats counters.
func (c *RemoteCluster) BytesOnWire() (sent, received int64) { return c.coord.Bytes() }

// FrameStats returns the coordinator's cumulative per-frame-type wire
// accounting (frames, bytes, and time in frame I/O calls), per
// direction — the single source behind BytesOnWire, the CLI's wire
// report, and the tracer's dynnet counters.
func (c *RemoteCluster) FrameStats() (sent, received []dynnet.FrameStat) {
	return c.coord.FrameStats()
}

// remoteRun threads one Build's remote execution: the cluster, the
// resolved options, the coordinator-side decode policy (worker-blob
// unmarshaling, state tree merges, and the final extraction all run
// under it), and cumulative pass/progress counters.
type remoteRun struct {
	cluster *RemoteCluster
	o       *buildOptions
	p       *parallel.Policy
	seq     int
	done    int64
}

// pass runs one remote pass: ship blob as the prototype, stream src's
// shards (or trigger local-shard ingest), and fold every worker state
// back with collect.
func (r *remoteRun) pass(ctx context.Context, kind dynnet.StateKind, n int, blob []byte,
	src Source, collect func(blobs [][]byte) error) error {
	r.seq++
	p := dynnet.Pass{
		Kind:    kind,
		Blob:    blob,
		N:       n,
		Batch:   r.o.batch,
		Seq:     r.seq,
		Local:   r.o.workerShards,
		Collect: collect,
	}
	if !p.Local {
		p.Src = src
	}
	tr := r.p.Tracer()
	if tr != nil {
		// The ingest event path: the tracer fans each cumulative total
		// out to its observers, which is where a WithProgress callback
		// was registered by Build.
		p.Progress = func(nu int) { tr.Ingested(atomic.AddInt64(&r.done, int64(nu))) }
	}
	var sp obs.Span
	outBefore, inBefore := r.cluster.coord.Bytes()
	if tr != nil {
		sp = tr.Span(fmt.Sprintf("dynnet/pass%02d", r.seq))
	}
	err := r.cluster.coord.RunPass(ctx, p)
	if tr != nil {
		r.syncFrameCounters(tr)
		if err == nil {
			out, in := r.cluster.coord.Bytes()
			sp.End(
				obs.A("bytes_out", out-outBefore),
				obs.A("bytes_in", in-inBefore),
				obs.A("workers", int64(r.cluster.Live())))
		}
	}
	return err
}

// syncFrameCounters refreshes the tracer's per-frame-type wire
// counters from the coordinator's accounting — the same counters
// Bytes() sums, so the CLI's wire report and the trace timeline can
// never disagree. CounterSet is absolute, so repeated syncs (one per
// pass) are idempotent.
func (r *remoteRun) syncFrameCounters(tr *obs.Tracer) {
	out, in := r.cluster.coord.FrameStats()
	for _, fs := range out {
		tr.CounterSet("dynnet/out/"+fs.Type.String()+"/frames", fs.Count)
		tr.CounterSet("dynnet/out/"+fs.Type.String()+"/bytes", fs.Bytes)
		tr.CounterSet("dynnet/out/"+fs.Type.String()+"/wall_us", fs.Wall.Microseconds())
	}
	for _, fs := range in {
		tr.CounterSet("dynnet/in/"+fs.Type.String()+"/frames", fs.Count)
		tr.CounterSet("dynnet/in/"+fs.Type.String()+"/bytes", fs.Bytes)
		tr.CounterSet("dynnet/in/"+fs.Type.String()+"/wall_us", fs.Wall.Microseconds())
	}
}

// remoteProto is the common surface of every coordinator-side
// prototype: it marshals proto for the ASSIGN frame and returns the
// end-of-pass collector, which decodes the worker blobs into fresh
// states on the run's decode workers, folds them with a parallel tree
// merge, and merges the result into proto — bit-identical to the
// linear shard-order fold, because every state merge is an exact
// commutative group operation.
func remoteProto[S interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}](r *remoteRun, proto S, fresh func() S, merge func(dst, src S) error) (blob []byte, collect func([][]byte) error, err error) {
	blob, err = proto.MarshalBinary()
	if err != nil {
		return nil, nil, err
	}
	collect = func(blobs [][]byte) error {
		// Decode and fold in waves of the decode worker count: peak
		// memory holds at most DecodeWorkers decoded states (one, for
		// a serial policy — the pre-engine coordinator footprint)
		// while the unmarshal and merge work still fans across the
		// pool. Wave boundaries don't change the result: proto
		// accumulates exact commutative group sums.
		k := r.p.DecodeWorkers()
		for start := 0; start < len(blobs); start += k {
			wave := blobs[start:min(start+k, len(blobs))]
			states, err := parallel.MapOpts(r.p, len(wave), func(i int) (S, error) {
				s := fresh()
				if err := s.UnmarshalBinary(wave[i]); err != nil {
					var zero S
					return zero, err
				}
				return s, nil
			})
			if err != nil {
				return err
			}
			folded, err := parallel.TreeMerge(r.p, states, merge)
			if err != nil {
				return err
			}
			if err := merge(proto, folded); err != nil {
				return err
			}
		}
		return nil
	}
	return blob, collect, nil
}

// ingestRemote runs a single-pass remote ingest of src into proto.
func ingestRemote[S interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}](ctx context.Context, r *remoteRun, kind dynnet.StateKind, src Source,
	proto S, fresh func() S, merge func(dst, src S) error) error {
	blob, collect, err := remoteProto(r, proto, fresh, merge)
	if err != nil {
		return err
	}
	return r.pass(ctx, kind, src.N(), blob, src, collect)
}

// twoPass runs the two-pass spanner remotely: pass 1 across the
// workers, the offline cluster construction (EndPass1) at the
// coordinator, pass 2 across the workers over the shipped post-pass1
// state, then the local decode. Bit-identical to the serial build —
// every per-update operation is a commutative group operation.
func (r *remoteRun) twoPass(ctx context.Context, src Source, cfg SpannerConfig) (*SpannerResult, error) {
	tp := spanner.NewTwoPass(src.N(), cfg)
	fresh := func() *spanner.TwoPass { return &spanner.TwoPass{} }
	blob1, collect1, err := remoteProto(r, tp, fresh, (*spanner.TwoPass).MergePass1)
	if err != nil {
		return nil, err
	}
	if err := r.pass(ctx, dynnet.KindTwoPass, src.N(), blob1, src, collect1); err != nil {
		return nil, fmt.Errorf("dynstream: remote pass 1: %w", err)
	}
	if err := tp.EndPass1Opts(r.p); err != nil {
		return nil, err
	}
	blob2, collect2, err := remoteProto(r, tp, fresh, (*spanner.TwoPass).MergePass2)
	if err != nil {
		return nil, err
	}
	if err := r.pass(ctx, dynnet.KindTwoPass, src.N(), blob2, src, collect2); err != nil {
		return nil, fmt.Errorf("dynstream: remote pass 2: %w", err)
	}
	return tp.FinishOpts(r.p)
}

// grid runs the sparsifier's oracle grid remotely (same two-pass shape
// as twoPass) and finishes it into the estimator.
func (r *remoteRun) grid(ctx context.Context, src Source, cfg EstimateConfig) (*sparsify.Estimator, error) {
	g, err := sparsify.NewGrid(src.N(), cfg)
	if err != nil {
		return nil, err
	}
	fresh := func() *sparsify.Grid { return &sparsify.Grid{} }
	blob1, collect1, err := remoteProto(r, g, fresh, (*sparsify.Grid).MergePass1)
	if err != nil {
		return nil, err
	}
	if err := r.pass(ctx, dynnet.KindGrid, src.N(), blob1, src, collect1); err != nil {
		return nil, fmt.Errorf("dynstream: remote grid pass 1: %w", err)
	}
	if err := g.EndPass1Opts(r.p); err != nil {
		return nil, err
	}
	blob2, collect2, err := remoteProto(r, g, fresh, (*sparsify.Grid).MergePass2)
	if err != nil {
		return nil, err
	}
	if err := r.pass(ctx, dynnet.KindGrid, src.N(), blob2, src, collect2); err != nil {
		return nil, fmt.Errorf("dynstream: remote grid pass 2: %w", err)
	}
	return g.FinishOpts(r.p)
}

// noWorkerShards rejects WithWorkerShards for builds that must observe
// the stream at the coordinator (weight-class splits, substream
// sampling, weight scans): the coordinator cannot filter data it never
// sees.
func noWorkerShards(o *buildOptions, what string) error {
	if o.workerShards {
		return fmt.Errorf("%w: %s needs the stream at the coordinator and cannot run from worker-local shards", ErrBadConfig, what)
	}
	return nil
}

// --- per-target remote builds (the buildRemote half of Target) ---

func (t SpannerTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*SpannerResult, error) {
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	if o.classBase != 0 {
		if err := noWorkerShards(o, "the weight-class spanner"); err != nil {
			return nil, err
		}
		return spanner.BuildTwoPassWeightedWith(src, cfg, o.classBase,
			func(sub stream.Source, ccfg SpannerConfig) (*SpannerResult, error) {
				return r.twoPass(ctx, sub, ccfg)
			})
	}
	return r.twoPass(ctx, src, cfg)
}

func (t AdditiveTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*AdditiveResult, error) {
	if err := noWeightClasses(o, "the additive spanner"); err != nil {
		return nil, err
	}
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	proto := spanner.NewAdditive(src.N(), cfg)
	err := ingestRemote(ctx, r, dynnet.KindAdditive, src, proto,
		func() *spanner.Additive { return &spanner.Additive{} }, (*spanner.Additive).Merge)
	if err != nil {
		return nil, err
	}
	return proto.FinishOpts(r.p)
}

func (t SparsifierTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*SparsifierResult, error) {
	if err := noWorkerShards(o, "the sparsifier"); err != nil {
		return nil, err
	}
	cfg := t.Config
	if o.seedSet {
		cfg.Seed = o.seed
	}
	one := func(sub stream.Source, ccfg SparsifierConfig) (*SparsifierResult, error) {
		return sparsify.SparsifyWith(sub, ccfg,
			func(ecfg EstimateConfig) (*sparsify.Estimator, error) { return r.grid(ctx, sub, ecfg) },
			func(ssub stream.Source, scfg SpannerConfig) (*SpannerResult, error) {
				return r.twoPass(ctx, ssub, scfg)
			})
	}
	if o.classBase != 0 {
		return sparsify.SparsifyWeightedWith(src, cfg, o.classBase, one)
	}
	return one(src, cfg)
}

func (t ForestTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*ForestSketch, error) {
	if err := noWeightClasses(o, "the forest sketch"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	proto := agm.New(seed, src.N(), t.Config)
	err := ingestRemote(ctx, r, dynnet.KindForest, src, proto,
		func() *agm.Sketch { return &agm.Sketch{} }, (*agm.Sketch).Merge)
	if err != nil {
		return nil, err
	}
	return proto, nil
}

func (t KConnectivityTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*KConnectivity, error) {
	if err := noWeightClasses(o, "the connectivity certificate"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	proto := agm.NewKConnectivity(seed, src.N(), t.K)
	err := ingestRemote(ctx, r, dynnet.KindKConn, src, proto,
		func() *agm.KConnectivity { return &agm.KConnectivity{} }, (*agm.KConnectivity).Merge)
	if err != nil {
		return nil, err
	}
	return proto, nil
}

func (t BipartitenessTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*Bipartiteness, error) {
	if err := noWeightClasses(o, "the bipartiteness tester"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	proto := agm.NewBipartiteness(seed, src.N())
	err := ingestRemote(ctx, r, dynnet.KindBip, src, proto,
		func() *agm.Bipartiteness { return &agm.Bipartiteness{} }, (*agm.Bipartiteness).Merge)
	if err != nil {
		return nil, err
	}
	return proto, nil
}

func (t MSFTarget) buildRemote(ctx context.Context, src Source, o *buildOptions, r *remoteRun) (*MSF, error) {
	if err := noWeightClasses(o, "the MSF sketch (weights are native)"); err != nil {
		return nil, err
	}
	seed := t.Seed
	if o.seedSet {
		seed = o.seed
	}
	wmax := t.WMax
	if wmax <= 0 {
		if err := noWorkerShards(o, "the MSF weight scan (set WMax explicitly)"); err != nil {
			return nil, err
		}
		// Upper-bound weight scan at the coordinator (it owns the
		// stream); the sketch pass itself then runs remotely.
		wmax = 1.0
		err := src.Replay(func(u Update) error {
			if u.W > wmax {
				wmax = u.W
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	proto := agm.NewMSF(seed, src.N(), wmax, t.Gamma)
	err := ingestRemote(ctx, r, dynnet.KindMSF, src, proto,
		func() *agm.MSF { return &agm.MSF{} }, (*agm.MSF).Merge)
	if err != nil {
		return nil, err
	}
	return proto, nil
}
