module dynstream

go 1.21
