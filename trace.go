package dynstream

import (
	"fmt"
	"os"

	"dynstream/internal/obs"
)

// Tracer collects phase spans and counters from every stage of a
// build; attach one with WithTracer and render it with WriteTimeline
// (human-readable phase table) or WriteChromeTrace (Perfetto-loadable
// JSON). It is an alias of the internal tracing type, so the full
// method set — Span, Count, OnIngest, OnSpanEnd, EnableEvents,
// Phases, Counters — is available here. A nil *Tracer is valid and
// disables tracing at ~zero cost.
type Tracer = obs.Tracer

// TraceEvent is one completed span, as delivered to OnSpanEnd
// observers and retained (after EnableEvents) for the Chrome sink.
type TraceEvent = obs.Event

// TraceAttr is one integer span attribute ({Key, Val}).
type TraceAttr = obs.Attr

// NewTracer returns an enabled tracer with aggregate collection on
// and raw event recording off; call EnableEvents before the build to
// also retain per-span events for WriteChromeTrace.
func NewTracer() *Tracer { return obs.New() }

// defaultEventCap bounds the raw event buffer WithTraceFile enables:
// far above what any single build emits (spans per build are
// O(rounds + levels + shards)), small enough that a forgotten
// long-lived tracer cannot grow without bound.
const defaultEventCap = 1 << 16

// effectiveTracer resolves the tracer of one Build/Open/Restore call:
// the WithTracer tracer when given, otherwise a private one when
// WithProgress or WithTraceFile need an event spine, otherwise nil
// (tracing off). A WithProgress callback is registered as an ingest
// observer on the tracer; the returned cleanup unregisters it, so a
// tracer reused across builds never accumulates stale callbacks.
func (o *buildOptions) effectiveTracer() (tr *obs.Tracer, cleanup func()) {
	tr = o.tracer
	if tr == nil && (o.progress != nil || o.traceFile != "") {
		tr = obs.New()
	}
	if o.traceFile != "" {
		tr.EnableEvents(defaultEventCap)
	}
	cleanup = func() {}
	if o.progress != nil {
		cleanup = tr.OnIngest(o.progress)
	}
	return tr, cleanup
}

// writeTraceFile renders tr's recorded events to the WithTraceFile
// path. Only called after a successful build.
func (o *buildOptions) writeTraceFile(tr *obs.Tracer) error {
	if o.traceFile == "" {
		return nil
	}
	f, err := os.Create(o.traceFile)
	if err != nil {
		return fmt.Errorf("dynstream: trace file: %w", err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("dynstream: trace file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dynstream: trace file: %w", err)
	}
	return nil
}
