// Package dynstream is a Go implementation of "Spanners and Sparsifiers
// in Dynamic Streams" (Kapralov & Woodruff, PODC 2014): linear graph
// sketching for streams of edge insertions and deletions.
//
// Build is the single front door; it runs a Target over a Source:
//
//   - Two-pass multiplicative spanners (Theorem 1): SpannerTarget
//     computes a 2^k-spanner in Õ(n^{1+1/k}) sketch space with exactly
//     two passes over the stream.
//   - Single-pass additive spanners (Theorem 3): AdditiveTarget
//     computes an O(n/d)-additive spanner in Õ(nd) space; Theorem 4
//     shows this tradeoff is optimal (see internal/lowerbound).
//   - Two-pass spectral sparsifiers (Corollary 2): SparsifierTarget
//     combines the spanner with the KP12 sampling reduction.
//   - The AGM connectivity substrate (Theorem 10): ForestTarget,
//     KConnectivityTarget, BipartitenessTarget, MSFTarget ingest into
//     linear sketches decoded on demand.
//
// Open is the live front door: same targets, but the returned Handle
// keeps the sketch state mutable — Apply folds in further updates and
// Query re-extracts incrementally from per-region decode caches,
// bit-identical to a cold Build over the total stream.
//
// All constructions are linear sketches: states built from disjoint
// shards of a stream can be merged, which is what makes them usable in
// the distributed setting the paper's introduction motivates (see
// examples/distributed).
//
// The identifiers below are type aliases into the implementation
// packages so that the full method sets (Graph.BFS, MemoryStream.Append,
// ...) are available through this package's front door.
package dynstream

import (
	"dynstream/internal/agm"
	"dynstream/internal/graph"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
	"dynstream/internal/verify"
)

// Graph is an undirected weighted graph on vertices 0..N-1 with exact
// BFS/Dijkstra distances — the ground-truth object spanners are
// verified against.
type Graph = graph.Graph

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// Update is one dynamic-stream element: insert (Delta=+1) or delete
// (Delta=-1) an edge {U, V} of weight W.
type Update = stream.Update

// Stream is a replayable sequence of updates (multi-pass model).
type Stream = stream.Stream

// MemoryStream is an in-memory Stream with Append.
type MemoryStream = stream.MemoryStream

// SpannerConfig configures the two-pass 2^k-spanner (Theorem 1).
type SpannerConfig = spanner.Config

// SpannerResult is the output of the two-pass construction.
type SpannerResult = spanner.Result

// TwoPassSpanner is the explicit-passes streaming state, for callers
// that drive the stream themselves (e.g. distributed shards).
type TwoPassSpanner = spanner.TwoPass

// AdditiveConfig configures the single-pass additive spanner (Theorem 3).
type AdditiveConfig = spanner.AdditiveConfig

// AdditiveResult is the output of the additive construction.
type AdditiveResult = spanner.AdditiveResult

// AdditiveSpanner is the explicit single-pass streaming state.
type AdditiveSpanner = spanner.Additive

// SparsifierConfig configures the two-pass spectral sparsifier
// (Corollary 2).
type SparsifierConfig = sparsify.Config

// SparsifierResult is the output of the sparsifier.
type SparsifierResult = sparsify.Result

// EstimateConfig configures the robust-connectivity oracle grid
// (Algorithm 4) inside SparsifierConfig.
type EstimateConfig = sparsify.EstimateConfig

// ForestSketch is the AGM connectivity sketch (Theorem 10).
type ForestSketch = agm.Sketch

// ForestConfig tunes the AGM sketch.
type ForestConfig = agm.Config

// StretchReport / AdditiveReport are verification summaries.
type (
	StretchReport  = verify.StretchReport
	AdditiveReport = verify.AdditiveReport
)

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewMemoryStream returns an empty in-memory stream over n vertices.
func NewMemoryStream(n int) *MemoryStream { return stream.NewMemoryStream(n) }

// StreamFromGraph emits g's edges as insertions in pseudorandom order.
func StreamFromGraph(g *Graph, seed uint64) *MemoryStream {
	return stream.FromGraph(g, seed)
}

// StreamWithChurn emits a stream whose final graph is g but which also
// inserts and later deletes `extra` random non-edges.
func StreamWithChurn(g *Graph, extra int, seed uint64) *MemoryStream {
	return stream.WithChurn(g, extra, seed)
}

// Materialize replays a stream into the final graph (testing/ground
// truth; a streaming algorithm never does this).
func Materialize(s Stream) (*Graph, error) { return stream.Materialize(s) }

// NewTwoPassSpanner creates the explicit two-pass streaming state.
func NewTwoPassSpanner(n int, cfg SpannerConfig) *TwoPassSpanner {
	return spanner.NewTwoPass(n, cfg)
}

// NewAdditiveSpanner creates the explicit single-pass streaming state.
func NewAdditiveSpanner(n int, cfg AdditiveConfig) *AdditiveSpanner {
	return spanner.NewAdditive(n, cfg)
}

// NewForestSketch creates an AGM connectivity sketch for a graph on n
// vertices (Theorem 10).
func NewForestSketch(seed uint64, n int, cfg ForestConfig) *ForestSketch {
	return agm.New(seed, n, cfg)
}

// KConnectivity is the k-edge-connectivity certificate sketch built
// from k independent AGM sketches ([AGM12a], the substrate family the
// paper builds on).
type KConnectivity = agm.KConnectivity

// NewKConnectivity creates the certificate sketch for parameter k.
func NewKConnectivity(seed uint64, n, k int) *KConnectivity {
	return agm.NewKConnectivity(seed, n, k)
}

// Bipartiteness is the sketch-based bipartiteness tester (double-cover
// reduction over AGM sketches).
type Bipartiteness = agm.Bipartiteness

// NewBipartiteness creates the tester for a graph on n vertices.
func NewBipartiteness(seed uint64, n int) *Bipartiteness {
	return agm.NewBipartiteness(seed, n)
}

// MSF is the (1+γ)-approximate minimum-spanning-forest sketch (the
// remaining [AGM12a] application in the paper's toolbox).
type MSF = agm.MSF

// NewMSF creates the MSF sketch for weights in [1, wmax] with class
// ratio 1+gamma.
func NewMSF(seed uint64, n int, wmax, gamma float64) *MSF {
	return agm.NewMSF(seed, n, wmax, gamma)
}

// DistanceOracle answers approximate distance queries from a spanner
// with a known stretch bound.
type DistanceOracle = spanner.DistanceOracle

// NewDistanceOracle wraps an unweighted spanner result (stretch 2^k).
func NewDistanceOracle(res *SpannerResult, k int) *DistanceOracle {
	return spanner.NewDistanceOracle(res, k)
}

// NewWeightedDistanceOracle wraps a weighted spanner result (stretch
// classBase·2^k).
func NewWeightedDistanceOracle(res *SpannerResult, k int, classBase float64) *DistanceOracle {
	return spanner.NewWeightedDistanceOracle(res, k, classBase)
}

// VerifyStretch measures multiplicative stretch of h against g over
// BFS trees from up to `sources` source vertices (all if <= 0).
func VerifyStretch(g, h *Graph, sources int) StretchReport {
	return verify.Stretch(g, h, sources)
}

// VerifyAdditive measures additive distortion of h against g.
func VerifyAdditive(g, h *Graph, sources int) AdditiveReport {
	return verify.Additive(g, h, sources)
}

// VerifySpectral returns the exact spectral approximation error ε such
// that (1−ε)L_G ⪯ L_H ⪯ (1+ε)L_G on range(L_G).
func VerifySpectral(g, h *Graph) (float64, error) {
	return verify.SpectralEpsilon(g, h)
}
