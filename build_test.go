package dynstream

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynstream/internal/graph"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
)

// ---------------------------------------------------------------------
// Old-vs-new equivalence: the legacy entry points are wrappers over
// Build, and Build must be bit-identical to the pre-redesign internal
// code paths — serial and parallel, for every target.

func buildTestStream(n int, p float64, churn int, seed uint64) (*Graph, *MemoryStream) {
	g := graph.ConnectedGNP(n, p, seed)
	return g, StreamWithChurn(g, churn, seed+1)
}

func TestBuildSpannerEquivalence(t *testing.T) {
	_, st := buildTestStream(48, 0.15, 150, 901)
	cfg := SpannerConfig{K: 2, Seed: 902}
	want, err := spanner.BuildTwoPass(st, cfg) // pre-redesign serial path
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := Build(context.Background(), st, SpannerTarget{Config: cfg}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "spanner", got.Spanner, want.Spanner)
		if got.SpaceWords != want.SpaceWords || got.Terminals != want.Terminals {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, got, want)
		}
	}
}

func TestBuildSpannerWeightedEquivalence(t *testing.T) {
	base := graph.ConnectedGNP(40, 0.15, 903)
	g := graph.RandomWeighted(base, 1, 60, 904)
	st := StreamFromGraph(g, 905)
	cfg := SpannerConfig{K: 2, Seed: 906}
	want, err := spanner.BuildTwoPassWeighted(st, cfg, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := Build(context.Background(), st, SpannerTarget{Config: cfg},
			WithWorkers(workers), WithWeightClasses(2.0))
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "weighted spanner", got.Spanner, want.Spanner)
	}
}

func TestBuildAdditiveEquivalence(t *testing.T) {
	_, st := buildTestStream(44, 0.2, 120, 907)
	cfg := AdditiveConfig{D: 3, Seed: 908}
	want, err := spanner.BuildAdditive(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := Build(context.Background(), st, AdditiveTarget{Config: cfg}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "additive", got.Spanner, want.Spanner)
	}
}

func TestBuildSparsifierEquivalence(t *testing.T) {
	g := graph.Complete(10)
	st := StreamFromGraph(g, 909)
	cfg := SparsifierConfig{
		K: 1, Z: 4, Seed: 910,
		Estimate: EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 911},
	}
	want, err := sparsify.Sparsify(st, cfg) // pre-redesign serial path
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := Build(context.Background(), st, SparsifierTarget{Config: cfg}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "sparsifier", got.Sparsifier, want.Sparsifier)
	}
}

func TestBuildForestEquivalence(t *testing.T) {
	_, st := buildTestStream(50, 0.12, 200, 912)
	want := NewForestSketch(913, st.N(), ForestConfig{})
	if err := st.Replay(func(u Update) error { want.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := Build(context.Background(), st, ForestTarget{Seed: 913}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("workers=%d: sketch state differs from serial ingest (bit-level)", workers)
		}
	}
}

func TestBuildKConnectivityEquivalence(t *testing.T) {
	_, st := buildTestStream(28, 0.25, 80, 914)
	want := NewKConnectivity(915, st.N(), 2)
	if err := st.Replay(func(u Update) error { want.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(context.Background(), st, KConnectivityTarget{Seed: 915, K: 2}, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("parallel k-connectivity state differs from serial ingest (bit-level)")
	}
}

func TestBuildMSFAndBipartiteness(t *testing.T) {
	// MSF: auto-scan (2 passes) vs explicit WMax (1 pass) must agree.
	// n odd, so the closing edge makes an odd (non-bipartite) cycle.
	n := 13
	ms := NewMemoryStream(n)
	for i := 0; i < n-1; i++ {
		if err := ms.Append(Update{U: i, V: i + 1, Delta: 1, W: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.Append(Update{U: 0, V: n - 1, Delta: 1, W: 30}); err != nil {
		t.Fatal(err)
	}
	scan, err := Build(context.Background(), ms, MSFTarget{Seed: 916, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	expl, err := Build(context.Background(), ms, MSFTarget{Seed: 916, WMax: 30, Gamma: 0.5}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	fa, err := scan.Forest()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := expl.Forest()
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != len(fb) {
		t.Fatalf("msf forests differ: %d vs %d edges", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("msf forest edge %d: %+v vs %+v", i, fa[i], fb[i])
		}
	}

	// Bipartiteness through the driver.
	b, err := Build(context.Background(), ms, BipartitenessTarget{Seed: 917}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	bip, err := b.IsBipartite()
	if err != nil {
		t.Fatal(err)
	}
	if bip {
		t.Fatal("odd cycle reported bipartite")
	}
}

// ---------------------------------------------------------------------
// Options validation: one typed gate.

func TestBuildOptionValidation(t *testing.T) {
	_, st := buildTestStream(10, 0.4, 0, 918)
	if _, err := Build(context.Background(), st, SpannerTarget{}, WithWorkers(0)); !errors.Is(err, ErrBadWorkers) {
		t.Errorf("workers=0: err = %v, want ErrBadWorkers", err)
	}
	if _, err := Build(context.Background(), st, SpannerTarget{}, WithWorkers(-2)); !errors.Is(err, ErrBadWorkers) {
		t.Errorf("workers=-2: err = %v, want ErrBadWorkers", err)
	}
	if _, err := Build(context.Background(), st, SpannerTarget{}, WithBatchSize(-1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("batch=-1: err = %v, want ErrBadConfig", err)
	}
	if _, err := Build(context.Background(), st, SpannerTarget{}, WithWeightClasses(1.0)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("classBase=1: err = %v, want ErrBadConfig", err)
	}
	if _, err := Build(context.Background(), st, ForestTarget{}, WithWeightClasses(2.0)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("forest+classes: err = %v, want ErrBadConfig", err)
	}
	if _, err := Build[*ForestSketch](context.Background(), st, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil target: err = %v, want ErrBadConfig", err)
	}
	if _, err := Build(context.Background(), nil, ForestTarget{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil source: err = %v, want ErrBadConfig", err)
	}

	// Multi-pass target over a single-shot source: typed refusal.
	ch := make(chan Update)
	close(ch)
	if _, err := Build(context.Background(), NewChannelSource(4, ch), SpannerTarget{}); !errors.Is(err, ErrNotReplayable) {
		t.Errorf("spanner over channel: err = %v, want ErrNotReplayable", err)
	}
}

// TestBuildBatchSizeInvariance: batching is an execution knob only.
func TestBuildBatchSizeInvariance(t *testing.T) {
	_, st := buildTestStream(40, 0.15, 100, 919)
	var ref []byte
	for _, b := range []int{0, 1, 7, 1024} {
		sk, err := Build(context.Background(), st, ForestTarget{Seed: 920},
			WithWorkers(2), WithBatchSize(b))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := sk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = enc
		} else if !bytes.Equal(ref, enc) {
			t.Fatalf("batch=%d changed the sketch state", b)
		}
	}
}

// ---------------------------------------------------------------------
// Context cancellation: a mid-ingest cancel returns ctx.Err() promptly
// on every execution path, with no goroutine leak (run under -race).

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d now vs baseline %d", runtime.NumGoroutine(), baseline)
}

func TestBuildCancellationSerialAndSharded(t *testing.T) {
	_, st := buildTestStream(60, 0.15, 4000, 921)
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var calls int64
		_, err := Build(ctx, st, ForestTarget{Seed: 922},
			WithWorkers(workers), WithBatchSize(16),
			WithProgress(func(int64) {
				if atomic.AddInt64(&calls, 1) == 2 {
					cancel() // cancel mid-ingest, from inside the pipeline
				}
			}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		waitGoroutines(t, baseline)
	}
}

func TestBuildCancellationFanout(t *testing.T) {
	// A channel source forces the read-once fan-out path.
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Update, 4096)
	for i := 0; i < 4000; i++ {
		ch <- Update{U: i % 50, V: (i + 1 + i%7) % 50, Delta: 1}
	}
	close(ch)
	var calls int64
	_, err := Build(ctx, NewChannelSource(50, ch), AdditiveTarget{Config: AdditiveConfig{D: 2, Seed: 923}},
		WithWorkers(3), WithBatchSize(16),
		WithProgress(func(int64) {
			if atomic.AddInt64(&calls, 1) == 2 {
				cancel()
			}
		}))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("fanout cancel: err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

func TestBuildCancellationSparsifier(t *testing.T) {
	// Cancellation must propagate into the sparsifier's inner builds.
	g := graph.Complete(10)
	st := StreamFromGraph(g, 924)
	cfg := SparsifierConfig{
		K: 1, Z: 4, Seed: 925,
		Estimate: EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 926},
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the build starts: must fail fast
	if _, err := Build(ctx, st, SparsifierTarget{Config: cfg}, WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("sparsifier cancel: err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

// ---------------------------------------------------------------------
// ReaderSource parity: the same bytes produce bit-identical sketch
// state whether they are streamed (text or binary, even through the
// fan-out path) or first materialized.

func TestReaderSourceSketchParity(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.15, 927)
	ms := StreamWithChurn(g, 300, 928)

	var text, bin bytes.Buffer
	if err := WriteTextStream(&text, ms); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryStream(&bin, ms); err != nil {
		t.Fatal(err)
	}

	want, err := Build(context.Background(), ms, ForestTarget{Seed: 929}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		r    io.Reader
		w    int
	}{
		{"text/seekable/serial", strings.NewReader(text.String()), 1},
		{"binary/seekable/serial", bytes.NewReader(bin.Bytes()), 1},
		{"text/pipe/serial", io.MultiReader(strings.NewReader(text.String())), 1},
		{"binary/pipe/fanout", io.MultiReader(bytes.NewReader(bin.Bytes())), 3},
	}
	for _, tc := range cases {
		src, err := NewReaderSource(tc.r)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := Build(context.Background(), src, ForestTarget{Seed: 929}, WithWorkers(tc.w))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		gotBytes, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("%s: sketch state differs from materialized ingest", tc.name)
		}
	}
}

// ---------------------------------------------------------------------
// Constant-memory pipe ingest: a long synthetic pipe must not grow the
// heap anywhere near the materialized stream's size.

// syntheticPipe generates the binary wire format on the fly: header
// plus `count` pseudo-random updates, never holding more than one
// record in memory. It is deliberately NOT a Seeker.
type syntheticPipe struct {
	n     int
	count int
	pos   int // updates emitted
	buf   []byte
	off   int
	state uint64
}

func newSyntheticPipe(n, count int) *syntheticPipe {
	p := &syntheticPipe{n: n, count: count, state: 0x9e3779b97f4a7c15}
	var hdr [16]byte
	copy(hdr[:8], "DSTRMv1\n")
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	p.buf = hdr[:]
	return p
}

func (p *syntheticPipe) next() uint64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return p.state
}

func (p *syntheticPipe) Read(b []byte) (int, error) {
	total := 0
	for total < len(b) {
		if p.off == len(p.buf) {
			if p.pos == p.count {
				if total == 0 {
					return 0, io.EOF
				}
				return total, nil
			}
			u := int(p.next() % uint64(p.n))
			v := int(p.next() % uint64(p.n))
			if u == v {
				v = (v + 1) % p.n
			}
			var rec [20]byte
			binary.LittleEndian.PutUint32(rec[0:4], uint32(u))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(v))
			binary.LittleEndian.PutUint32(rec[8:12], 1)
			binary.LittleEndian.PutUint64(rec[12:20], math.Float64bits(1))
			p.buf, p.off = rec[:], 0
			p.pos++
		}
		c := copy(b[total:], p.buf[p.off:])
		p.off += c
		total += c
	}
	return total, nil
}

func TestPipeIngestConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profile test skipped in -short mode")
	}
	const n = 64
	count := 400_000 // materialized: ~12.8 MB of updates; sketch: ~1 MB

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	src, err := NewReaderSource(newSyntheticPipe(n, count))
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Build(context.Background(), src, ForestTarget{Seed: 930})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grown := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// O(sketch) bound: generous 8 MB ceiling, far below the ~12.8 MB a
	// materialized []Update alone would pin (32 bytes x 400k).
	if grown > 8<<20 {
		t.Fatalf("heap grew by %d bytes ingesting a %d-update pipe (want O(sketch))", grown, count)
	}
	if sk.SpaceWords() == 0 {
		t.Fatal("sketch is empty")
	}
}
