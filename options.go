package dynstream

import (
	"errors"
	"fmt"
	"runtime"

	"dynstream/internal/obs"
	"dynstream/internal/stream"
)

// Typed configuration errors, so callers (and the CLI) can classify
// failures with errors.Is instead of string matching.
var (
	// ErrBadWorkers reports an invalid worker count (must be >= 1).
	ErrBadWorkers = errors.New("dynstream: workers must be >= 1")
	// ErrBadConfig reports an invalid build configuration.
	ErrBadConfig = errors.New("dynstream: invalid configuration")
	// ErrNotReplayable reports that a multi-pass build was asked to run
	// over a source that can only be consumed once (a pipe, a channel).
	ErrNotReplayable = stream.ErrNotReplayable
)

// Option configures a Build call.
type Option func(*buildOptions)

// buildOptions is the resolved option set of one Build call.
type buildOptions struct {
	workers        int
	workersSet     bool
	decodeWorkers  int
	decodeSet      bool
	batch          int
	classBase      float64
	seed           uint64
	seedSet        bool
	progress       func(int64)
	tracer         *obs.Tracer
	traceFile      string
	remoteAddrs    []string
	remoteSet      bool
	cluster        *RemoteCluster
	workerShards   bool
	decodeCache    bool
	decodeCacheSet bool
	localFallback  bool
	remoteOpts     RemoteOptions
}

// cacheOn resolves the live-handle decode-cache setting: an explicit
// WithDecodeCache wins; handles default to caching on.
func (o *buildOptions) cacheOn() bool {
	if o.decodeCacheSet {
		return o.decodeCache
	}
	return true
}

// remote reports whether this build runs on remote worker processes.
func (o *buildOptions) remote() bool { return o.remoteSet || o.cluster != nil }

// WithWorkers fixes the number of concurrent ingest workers. Without
// it, Build picks serial or sharded-merge execution automatically; by
// linearity the result is identical either way.
func WithWorkers(n int) Option {
	return func(o *buildOptions) { o.workers = n; o.workersSet = true }
}

// WithDecodeWorkers overrides the worker count of the decode /
// extraction phase — the Borůvka rounds of the spanning forest,
// EndPass1's cluster construction, table peeling in Finish, the
// sparsifier grid's per-cell extraction, and (for remote builds) the
// coordinator's worker-state decode and tree merge. Without it decode
// runs at the ingest worker count (WithWorkers, or the automatic
// choice). Decode parallelism never changes the output: results are
// placed by index and applied in the serial order, so every decoded
// object is bit-identical to a serial decode.
func WithDecodeWorkers(n int) Option {
	return func(o *buildOptions) { o.decodeWorkers = n; o.decodeSet = true }
}

// WithBatchSize sets the update-batch granularity of the ingest
// pipeline (default stream.DefaultBatchSize). Batching is purely an
// execution knob: any batch size yields bit-identical results.
func WithBatchSize(b int) Option {
	return func(o *buildOptions) { o.batch = b }
}

// WithWeightClasses switches weight-aware targets (spanner,
// sparsifier) to the geometric weight-class construction of Remark 14
// with the given class base (> 1).
func WithWeightClasses(base float64) Option {
	return func(o *buildOptions) { o.classBase = base }
}

// WithSeed overrides the target's random seed — every sketch drawn by
// the build derives its randomness from it.
func WithSeed(s uint64) Option {
	return func(o *buildOptions) { o.seed = s; o.seedSet = true }
}

// WithDecodeCache turns a live handle's per-region decode caches on or
// off (default on for Open). Off, every Query re-extracts cold; on,
// only regions whose sketch state changed since the last Query are
// re-decoded. Cached and uncached queries are bit-identical — the
// caches are keyed by injective state digests, never hashes. Build
// ignores this option (a one-shot build decodes exactly once).
func WithDecodeCache(on bool) Option {
	return func(o *buildOptions) { o.decodeCache = on; o.decodeCacheSet = true }
}

// WithProgress installs a progress callback invoked with the
// cumulative number of updates processed (across all passes and
// workers). fn must be safe for concurrent use.
//
// WithProgress is implemented as an adapter over the tracer's ingest
// events (see WithTracer): the build registers fn as an ingest
// observer on its tracer — the user's, or a private one when tracing
// was not requested — so progress and tracing share one event path.
// The observer is removed when the call that installed it returns.
func WithProgress(fn func(updates int64)) Option {
	return func(o *buildOptions) { o.progress = fn }
}

// WithTracer attaches a Tracer to the build: every phase of the
// pipeline — sharded ingest, each Borůvka round, cluster construction
// and recovery peeling, grid extraction, dynnet frame traffic,
// checkpoint I/O — emits spans and counters into it. Tracing is
// observational only: a traced build's output is bit-identical to an
// untraced one, and a nil tracer costs nothing. The same tracer may
// be reused across builds and queries; aggregates accumulate.
func WithTracer(t *Tracer) Option {
	return func(o *buildOptions) { o.tracer = t }
}

// WithTraceFile makes Build write a Chrome trace_event JSON file
// (loadable in chrome://tracing or Perfetto) to path when the build
// finishes. It enables raw event recording on the build's tracer —
// the WithTracer one, or a private tracer when none was given. A
// failure to write the file is reported only if the build itself
// succeeded.
func WithTraceFile(path string) Option {
	return func(o *buildOptions) { o.traceFile = path }
}

// WithRemoteWorkers runs the build on remote worker processes: Build
// dials the given addresses ("host:port", "unix:/path", or a bare
// socket path), registers the workers, shards every pass's stream
// across them, and merges the returned sketch states — bit-identical
// to a local build by linearity. The connections are closed when Build
// returns; to amortize the handshake across several builds, dial once
// with DialWorkers and pass WithRemoteCluster instead. WithWorkers is
// ignored for remote builds (the worker count is the cluster size).
func WithRemoteWorkers(addrs ...string) Option {
	return func(o *buildOptions) { o.remoteAddrs = addrs; o.remoteSet = true }
}

// WithRemoteCluster runs the build on an already-established worker
// cluster (DialWorkers / AcceptWorkers). The cluster stays open after
// Build returns.
func WithRemoteCluster(c *RemoteCluster) Option {
	return func(o *buildOptions) { o.cluster = c }
}

// WithLocalFallback makes a remote build degrade to a local build when
// the cluster is lost — it cannot be established at dial time, or
// every worker drops mid-build (ErrNoWorkers) — and the source is
// replayable. The fallback reruns the build in-process with the same
// seeds, so its result is bit-identical to what the cluster would have
// produced. Typed worker errors (a bad update, a non-replayable local
// shard) are not retried: they would recur locally.
func WithLocalFallback() Option {
	return func(o *buildOptions) { o.localFallback = true }
}

// WithRemoteOptions tunes the connection management of a remote build
// that dials its own workers (WithRemoteWorkers): handshake and
// per-frame timeouts, dial retry/backoff, and redialing. Builds on an
// established cluster (WithRemoteCluster) carry the options the
// cluster was dialed with instead.
func WithRemoteOptions(ro RemoteOptions) Option {
	return func(o *buildOptions) { o.remoteOpts = ro }
}

// WithWorkerShards makes a remote build ingest each worker's own local
// shard source (`dynstream worker -shard FILE`) instead of streaming
// the coordinator's source: src then only supplies the vertex count.
// Only targets that never need the stream at the coordinator support
// this (no weight classes, no sparsifier, MSF only with an explicit
// WMax). A worker whose shard turns out non-replayable when a second
// pass is requested reports ErrNotReplayable over the wire.
func WithWorkerShards() Option {
	return func(o *buildOptions) { o.workerShards = true }
}

// validate is the single options gate every Build runs: it returns
// typed errors (ErrBadWorkers, ErrBadConfig) so callers never
// duplicate flag checks.
func (o *buildOptions) validate() error {
	if o.workersSet && o.workers < 1 {
		return fmt.Errorf("%w, got %d", ErrBadWorkers, o.workers)
	}
	if o.decodeSet && o.decodeWorkers < 1 {
		return fmt.Errorf("%w, got %d decode workers", ErrBadWorkers, o.decodeWorkers)
	}
	if o.batch < 0 {
		return fmt.Errorf("%w: batch size must be >= 0, got %d", ErrBadConfig, o.batch)
	}
	if o.classBase != 0 && o.classBase <= 1 {
		return fmt.Errorf("%w: weight class base must be > 1, got %v", ErrBadConfig, o.classBase)
	}
	if o.remoteSet && len(o.remoteAddrs) == 0 {
		return fmt.Errorf("%w: WithRemoteWorkers needs at least one address", ErrBadConfig)
	}
	if o.remoteSet && o.cluster != nil {
		return fmt.Errorf("%w: WithRemoteWorkers and WithRemoteCluster are mutually exclusive", ErrBadConfig)
	}
	if o.workerShards && !o.remote() {
		return fmt.Errorf("%w: WithWorkerShards requires remote workers", ErrBadConfig)
	}
	if o.localFallback && !o.remote() {
		return fmt.Errorf("%w: WithLocalFallback requires remote workers (a local build has nothing to fall back from)", ErrBadConfig)
	}
	if err := o.remoteOpts.validate(); err != nil {
		return err
	}
	return nil
}

// validateLive is the extra options gate of the live front doors (Open,
// Restore, and the serving layer built on them): live handles run
// locally — remote state arrives through Handle.Merge — and have no
// weight-class mode (the class split is a per-build reduction, not a
// live state).
func (o *buildOptions) validateLive() error {
	if o.remote() {
		return fmt.Errorf("%w: live handles run locally; ship sketch states and Handle.Merge them", ErrBadConfig)
	}
	if o.classBase != 0 {
		return fmt.Errorf("%w: live handles have no weight-class mode", ErrBadConfig)
	}
	return nil
}

// autoParallelThreshold is the stream length above which Build picks
// sharded-merge execution when no explicit worker count is given.
const autoParallelThreshold = 1 << 15

// resolveWorkers picks the execution mode: an explicit WithWorkers
// wins; otherwise long in-memory streams get a sharded merge and
// everything else (short streams, pipes, channels) runs serially —
// the memory-optimal choice for single-cursor sources.
func (o *buildOptions) resolveWorkers(src Source) int {
	if o.workersSet {
		return o.workers
	}
	return o.autoWorkers(src)
}

// resolveDecodeWorkers picks the decode-phase worker count: an
// explicit WithDecodeWorkers wins; otherwise decode follows the ingest
// resolution — an explicit WithWorkers, or the automatic
// serial/sharded choice. Remote builds (where WithWorkers does not
// govern ingest) resolve the same way, so one knob scales the whole
// coordinator side.
func (o *buildOptions) resolveDecodeWorkers(src Source) int {
	if o.decodeSet {
		return o.decodeWorkers
	}
	return o.resolveWorkers(src)
}

// autoWorkers is the automatic serial-vs-sharded choice of
// resolveWorkers for builds without an explicit WithWorkers.
func (o *buildOptions) autoWorkers(src Source) int {
	type lengther interface{ Len() int }
	if l, ok := src.(lengther); ok &&
		stream.ConcurrentReplayable(src) && l.Len() >= autoParallelThreshold {
		w := runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	return 1
}
