package dynstream

import (
	"errors"
	"fmt"
	"runtime"

	"dynstream/internal/stream"
)

// Typed configuration errors, so callers (and the CLI) can classify
// failures with errors.Is instead of string matching.
var (
	// ErrBadWorkers reports an invalid worker count (must be >= 1).
	ErrBadWorkers = errors.New("dynstream: workers must be >= 1")
	// ErrBadConfig reports an invalid build configuration.
	ErrBadConfig = errors.New("dynstream: invalid configuration")
	// ErrNotReplayable reports that a multi-pass build was asked to run
	// over a source that can only be consumed once (a pipe, a channel).
	ErrNotReplayable = stream.ErrNotReplayable
)

// Option configures a Build call.
type Option func(*buildOptions)

// buildOptions is the resolved option set of one Build call.
type buildOptions struct {
	workers    int
	workersSet bool
	batch      int
	classBase  float64
	seed       uint64
	seedSet    bool
	progress   func(int64)
}

// WithWorkers fixes the number of concurrent ingest workers. Without
// it, Build picks serial or sharded-merge execution automatically; by
// linearity the result is identical either way.
func WithWorkers(n int) Option {
	return func(o *buildOptions) { o.workers = n; o.workersSet = true }
}

// WithBatchSize sets the update-batch granularity of the ingest
// pipeline (default stream.DefaultBatchSize). Batching is purely an
// execution knob: any batch size yields bit-identical results.
func WithBatchSize(b int) Option {
	return func(o *buildOptions) { o.batch = b }
}

// WithWeightClasses switches weight-aware targets (spanner,
// sparsifier) to the geometric weight-class construction of Remark 14
// with the given class base (> 1).
func WithWeightClasses(base float64) Option {
	return func(o *buildOptions) { o.classBase = base }
}

// WithSeed overrides the target's random seed — every sketch drawn by
// the build derives its randomness from it.
func WithSeed(s uint64) Option {
	return func(o *buildOptions) { o.seed = s; o.seedSet = true }
}

// WithProgress installs a progress callback invoked with the
// cumulative number of updates processed (across all passes and
// workers). fn must be safe for concurrent use.
func WithProgress(fn func(updates int64)) Option {
	return func(o *buildOptions) { o.progress = fn }
}

// validate is the single options gate every Build runs: it returns
// typed errors (ErrBadWorkers, ErrBadConfig) so callers never
// duplicate flag checks.
func (o *buildOptions) validate() error {
	if o.workersSet && o.workers < 1 {
		return fmt.Errorf("%w, got %d", ErrBadWorkers, o.workers)
	}
	if o.batch < 0 {
		return fmt.Errorf("%w: batch size must be >= 0, got %d", ErrBadConfig, o.batch)
	}
	if o.classBase != 0 && o.classBase <= 1 {
		return fmt.Errorf("%w: weight class base must be > 1, got %v", ErrBadConfig, o.classBase)
	}
	return nil
}

// autoParallelThreshold is the stream length above which Build picks
// sharded-merge execution when no explicit worker count is given.
const autoParallelThreshold = 1 << 15

// resolveWorkers picks the execution mode: an explicit WithWorkers
// wins; otherwise long in-memory streams get a sharded merge and
// everything else (short streams, pipes, channels) runs serially —
// the memory-optimal choice for single-cursor sources.
func (o *buildOptions) resolveWorkers(src Source) int {
	if o.workersSet {
		return o.workers
	}
	type lengther interface{ Len() int }
	if l, ok := src.(lengther); ok &&
		stream.ConcurrentReplayable(src) && l.Len() >= autoParallelThreshold {
		w := runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	return 1
}
