package dynstream

import (
	"io"

	"dynstream/internal/stream"
)

// Streaming sources — the input half of the Build front door. A Source
// delivers a dynamic graph as a sequence of updates; Streams
// (replayable sources) additionally support the multi-pass model the
// two-pass algorithms need. Constant-memory implementations:
//
//   - ReaderSource: text or binary bytes from any io.Reader, parsed on
//     the fly (a pipe on stdin ingests with O(sketch) heap; a file
//     rewinds for multi-pass builds).
//   - ChannelSource: live updates from a Go channel.
//   - MemoryStream: the fully materialized in-memory stream.

// Source is a sequence of updates over a graph on N() vertices,
// consumable at least once. See CanReplay for the multi-pass contract.
type Source = stream.Source

// ReaderSource streams updates out of an io.Reader without
// materializing them (text or binary format, auto-detected).
type ReaderSource = stream.ReaderSource

// ChannelSource adapts a channel of updates into a single-shot Source.
type ChannelSource = stream.ChannelSource

// NewReaderSource wraps r (text or binary stream format) as a
// constant-memory Source. The header is read immediately; records are
// parsed during Replay. If r is seekable the source is replayable.
func NewReaderSource(r io.Reader) (*ReaderSource, error) {
	return stream.NewReaderSource(r)
}

// NewChannelSource wraps ch as a Source over a graph on n vertices;
// the stream ends when ch is closed.
func NewChannelSource(n int, ch <-chan Update) *ChannelSource {
	return stream.NewChannelSource(n, ch)
}

// CanReplay reports whether src supports multiple Replay passes —
// required by multi-pass targets (SpannerTarget, SparsifierTarget).
func CanReplay(src Source) bool { return stream.CanReplay(src) }

// WriteTextStream serializes src in the text stream format.
func WriteTextStream(w io.Writer, src Source) error { return stream.WriteText(w, src) }

// WriteBinaryStream serializes src in the binary wire format — the
// compact encoding ReaderSource ingests at constant memory.
func WriteBinaryStream(w io.Writer, src Source) error { return stream.WriteBinary(w, src) }
