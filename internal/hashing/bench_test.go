package hashing

import "testing"

func BenchmarkSplitMix64(b *testing.B) {
	rng := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = rng.Next()
	}
	_ = sink
}

func BenchmarkPolyHashDegree6(b *testing.B) {
	h := NewPoly(2, 6)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkPolyLevel(b *testing.B) {
	h := NewPoly(3, 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Level(uint64(i))
	}
	_ = sink
}

func BenchmarkMix(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mix(4, uint64(i), 7)
	}
	_ = sink
}

func BenchmarkPolyBankHash9(b *testing.B) {
	// 9 degree-6 lanes — the 3-level × 3-row prefix a typical AGM
	// update consumes; compare against 9× BenchmarkPolyHashDegree6.
	polys := make([]*Poly, 9)
	for i := range polys {
		polys[i] = NewPoly(Mix(0xbeef, uint64(i)), 6)
	}
	bank := NewPolyBank(polys...)
	dst := make([]uint64, len(polys))
	for i := 0; i < b.N; i++ {
		bank.HashPrefix(uint64(i)*0x9e3779b97f4a7c15, dst)
	}
}
