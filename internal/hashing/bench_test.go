package hashing

import "testing"

func BenchmarkSplitMix64(b *testing.B) {
	rng := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = rng.Next()
	}
	_ = sink
}

func BenchmarkPolyHashDegree6(b *testing.B) {
	h := NewPoly(2, 6)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkPolyLevel(b *testing.B) {
	h := NewPoly(3, 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = h.Level(uint64(i))
	}
	_ = sink
}

func BenchmarkMix(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mix(4, uint64(i), 7)
	}
	_ = sink
}
