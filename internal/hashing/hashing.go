// Package hashing provides the seeded pseudorandomness used by every
// sketch in this repository: a splitmix64 PRNG, k-wise independent
// polynomial hash families over GF(2^61-1), and Bernoulli / geometric-
// level samplers derived from them.
//
// The paper (Section 3.2) notes that O(log n)-wise independence suffices
// for the sampled vertex sets C_i and edge sets E_j; the polynomial
// family below gives exactly d-wise independence for a degree-(d-1)
// polynomial with random coefficients. Section 6.3 replaces truly random
// bits with Nisan's generator purely to keep the random seed small; we
// obtain the same effect by deriving every random object from a single
// 64-bit seed through splitmix64 streams, so the "seed" stored by an
// algorithm is O(1) words.
package hashing

import (
	"math/bits"

	"dynstream/internal/field"
)

// SplitMix64 is a tiny, fast, seedable PRNG with a 64-bit state. It is
// used to derive independent sub-seeds for the many hash functions an
// algorithm instantiates, so that the entire random tape of a run is a
// function of one root seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a PRNG seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudorandom 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a pseudorandom float64 in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / float64(1<<53)
}

// Intn returns a pseudorandom int in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn with non-positive bound")
	}
	return int(s.Next() % uint64(n))
}

// Perm returns a pseudorandom permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Mix deterministically combines a seed with a stream index, yielding an
// independent-looking sub-seed. It is used to derive per-(r,j) hash
// seeds as in the paper's SKETCH^{r,j} superscript notation.
func Mix(seed uint64, index ...uint64) uint64 {
	s := SplitMix64{state: seed}
	out := s.Next()
	for _, ix := range index {
		s.state ^= ix * 0xff51afd7ed558ccd
		out ^= s.Next()
	}
	return out
}

// Poly is a k-wise independent hash function h(x) = sum c_i x^i over
// GF(2^61-1). A polynomial of degree d-1 with uniformly random
// coefficients is exactly d-wise independent on field inputs.
type Poly struct {
	coeffs []uint64 // coeffs[i] multiplies x^i
}

// NewPoly returns a hash function with the given independence degree
// (>= 2) derived deterministically from seed.
func NewPoly(seed uint64, independence int) *Poly {
	if independence < 2 {
		independence = 2
	}
	rng := NewSplitMix64(seed)
	coeffs := make([]uint64, independence)
	for i := range coeffs {
		coeffs[i] = field.Reduce(rng.Next())
	}
	// The leading coefficient must be nonzero for full independence.
	if coeffs[len(coeffs)-1] == 0 {
		coeffs[len(coeffs)-1] = 1
	}
	return &Poly{coeffs: coeffs}
}

// Hash evaluates the polynomial at x via Horner's rule, returning a
// value in [0, P).
func (p *Poly) Hash(x uint64) uint64 {
	x = field.Reduce(x)
	acc := uint64(0)
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = field.Add(field.Mul(acc, x), p.coeffs[i])
	}
	return acc
}

// Bucket maps x to one of m buckets.
func (p *Poly) Bucket(x uint64, m int) int {
	return int(p.Hash(x) % uint64(m))
}

// PolyBank evaluates a fixed ordered set of equal-degree Polys at one
// point in a single interleaved Horner sweep: coefficients are stored
// coefficient-major (one contiguous row per coefficient index across
// all lanes), and each Horner step advances every lane through
// field.HornerStepVec. Sketches that hash one key with several row
// functions per update — every structure in internal/sketch — evaluate
// the whole bank at once instead of re-walking Horner per row. Lane i
// returns exactly polys[i].Hash(x), bit for bit.
type PolyBank struct {
	lanes int
	deg   int
	coef  []uint64 // deg rows × lanes: coef[c*lanes+i] = polys[i].coeffs[c]
}

// NewPolyBank builds a bank over the given polynomials. It returns nil
// if the set is empty or the degrees differ (callers fall back to
// per-Poly Hash).
func NewPolyBank(polys ...*Poly) *PolyBank {
	if len(polys) == 0 {
		return nil
	}
	deg := len(polys[0].coeffs)
	for _, p := range polys {
		if len(p.coeffs) != deg {
			return nil
		}
	}
	b := &PolyBank{lanes: len(polys), deg: deg, coef: make([]uint64, deg*len(polys))}
	for i, p := range polys {
		for c, v := range p.coeffs {
			b.coef[c*b.lanes+i] = v
		}
	}
	return b
}

// Lanes returns the number of polynomials in the bank.
func (b *PolyBank) Lanes() int { return b.lanes }

// HashPrefix fills dst[i] with the hash of x under lane i, for the
// first len(dst) lanes (len(dst) must be at most Lanes). Evaluating a
// prefix is what level-sampled sketches need: an update surviving to
// level j only consumes the first (j+1)×rows lane hashes.
func (b *PolyBank) HashPrefix(x uint64, dst []uint64) {
	x = field.Reduce(x)
	for i := range dst {
		dst[i] = 0
	}
	for c := b.deg - 1; c >= 0; c-- {
		row := b.coef[c*b.lanes : c*b.lanes+len(dst)]
		field.HornerStepVec(dst, x, row)
	}
}

// Bernoulli reports whether x is sampled at probability rate in [0, 1].
// The decision is a deterministic function of (hash, x), so replaying a
// stream yields identical sample sets — the property Section 6.3 needs.
func (p *Poly) Bernoulli(x uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	threshold := uint64(rate * float64(field.P))
	return p.Hash(x) < threshold
}

// Level returns the geometric level of x: the number of leading zero
// bits of a uniform hash of x, so P(Level >= j) = 2^-j. An item x
// belongs to the nested sample set E_j iff Level(x) >= j. The paper
// samples each E_j independently; nested geometric sampling is the
// standard space-saving variant (as in [AGM12a]) and preserves the only
// property the analysis uses — that E[|S ∩ E_j|] = |S| 2^-j at each j.
func (p *Poly) Level(x uint64) int {
	// Use the low 60 bits of the field element as the uniform string and
	// count its leading zeros in O(1); an all-zero string is level 60.
	h := p.Hash(x) & (1<<60 - 1)
	if h == 0 {
		return 60
	}
	return bits.LeadingZeros64(h) - 4
}
