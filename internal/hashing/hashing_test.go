package hashing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynstream/internal/field"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitMix64DifferentSeeds(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewSplitMix64(7)
	for i := 0; i < 1000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	rng := NewSplitMix64(8)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewSplitMix64(9)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMixDistinctStreams(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix(123, i)
		if seen[v] {
			t.Fatalf("Mix collision at index %d", i)
		}
		seen[v] = true
	}
}

func TestMixMultiIndex(t *testing.T) {
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Error("Mix should depend on index order")
	}
	if Mix(1, 2) == Mix(2, 2) {
		t.Error("Mix should depend on seed")
	}
}

func TestPolyDeterministic(t *testing.T) {
	h1 := NewPoly(5, 4)
	h2 := NewPoly(5, 4)
	for x := uint64(0); x < 100; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatal("same-seed hash functions disagree")
		}
	}
}

func TestPolyRange(t *testing.T) {
	h := NewPoly(6, 4)
	for x := uint64(0); x < 1000; x++ {
		if h.Hash(x) >= field.P {
			t.Fatalf("hash out of field range at x=%d", x)
		}
	}
}

func TestBucketRange(t *testing.T) {
	h := NewPoly(10, 4)
	for x := uint64(0); x < 1000; x++ {
		b := h.Bucket(x, 7)
		if b < 0 || b >= 7 {
			t.Fatalf("bucket out of range: %d", b)
		}
	}
}

func TestBucketRoughlyUniform(t *testing.T) {
	h := NewPoly(11, 6)
	const m, trials = 10, 20000
	counts := make([]int, m)
	for x := uint64(0); x < trials; x++ {
		counts[h.Bucket(x, m)]++
	}
	want := float64(trials) / m
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Errorf("bucket %d has %d items, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		h := NewPoly(Mix(12, uint64(rate*100)), 6)
		const trials = 20000
		hit := 0
		for x := uint64(0); x < trials; x++ {
			if h.Bernoulli(x, rate) {
				hit++
			}
		}
		got := float64(hit) / trials
		if math.Abs(got-rate) > 0.03 {
			t.Errorf("Bernoulli(rate=%v) empirical %v", rate, got)
		}
	}
}

func TestBernoulliEdgeRates(t *testing.T) {
	h := NewPoly(13, 4)
	if !h.Bernoulli(5, 1.0) {
		t.Error("rate 1 must always sample")
	}
	if h.Bernoulli(5, 0.0) {
		t.Error("rate 0 must never sample")
	}
}

func TestLevelDistribution(t *testing.T) {
	h := NewPoly(14, 8)
	const trials = 40000
	counts := make([]int, 16)
	for x := uint64(0); x < trials; x++ {
		l := h.Level(x)
		if l < len(counts) {
			counts[l]++
		}
	}
	// P(level >= j) = 2^-j, so P(level == j) = 2^-(j+1) for small j.
	for j := 0; j <= 4; j++ {
		want := float64(trials) / math.Pow(2, float64(j+1))
		got := float64(counts[j])
		if math.Abs(got-want) > 0.2*want+20 {
			t.Errorf("level %d: got %v want ~%v", j, got, want)
		}
	}
}

func TestLevelNonNegative(t *testing.T) {
	f := func(seed, x uint64) bool {
		h := NewPoly(seed, 4)
		l := h.Level(x)
		return l >= 0 && l <= 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Error(err)
	}
}

func TestPolyIndependenceFloor(t *testing.T) {
	// Degree is clamped to >= 2 (pairwise).
	h := NewPoly(15, 0)
	if len(h.coeffs) != 2 {
		t.Errorf("independence floor not applied: %d coeffs", len(h.coeffs))
	}
}

func TestPolyBankMatchesPerPolyHash(t *testing.T) {
	polys := make([]*Poly, 9)
	for i := range polys {
		polys[i] = NewPoly(Mix(0xbeef, uint64(i)), 6)
	}
	bank := NewPolyBank(polys...)
	if bank == nil || bank.Lanes() != len(polys) {
		t.Fatal("bank construction failed for uniform degrees")
	}
	dst := make([]uint64, len(polys))
	rng := NewSplitMix64(0x1234)
	for trial := 0; trial < 500; trial++ {
		x := rng.Next()
		// Full bank and a strict prefix (the level-sampled path).
		for _, k := range []int{len(polys), 1 + trial%len(polys)} {
			bank.HashPrefix(x, dst[:k])
			for i := 0; i < k; i++ {
				if want := polys[i].Hash(x); dst[i] != want {
					t.Fatalf("trial %d lane %d: bank %d, Hash %d", trial, i, dst[i], want)
				}
			}
		}
	}
}

func TestPolyBankRejectsMixedDegrees(t *testing.T) {
	if NewPolyBank() != nil {
		t.Fatal("empty bank should be nil")
	}
	if NewPolyBank(NewPoly(1, 6), NewPoly(2, 8)) != nil {
		t.Fatal("mixed-degree bank should be nil")
	}
}
