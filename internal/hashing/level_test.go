package hashing

import "testing"

// levelReference is the original bit-scan implementation of Poly.Level,
// kept as the specification the O(1) math/bits version must match.
func levelReference(p *Poly, x uint64) int {
	h := p.Hash(x)
	level := 0
	for bit := uint(60); bit > 0; bit-- {
		if h&(1<<(bit-1)) != 0 {
			break
		}
		level++
	}
	return level
}

func TestLevelMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p := NewPoly(Mix(seed, 0x1ab), 8)
		for x := uint64(0); x < 20000; x++ {
			if got, want := p.Level(x), levelReference(p, x); got != want {
				t.Fatalf("seed %d: Level(%d) = %d, want %d", seed, x, got, want)
			}
		}
	}
}
