package graph

import "testing"

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(4, 5)
	if g.N() != 20 {
		t.Errorf("N = %d", g.N())
	}
	// 4 cliques of C(5,2)=10 edges + 4 ring edges.
	if g.M() != 44 {
		t.Errorf("M = %d, want 44", g.M())
	}
	if !g.Connected() {
		t.Error("disconnected")
	}
	// Clique interior edge and ring edge both present.
	if !g.HasEdge(0, 4) || !g.HasEdge(4, 5) {
		t.Error("expected edges missing")
	}
}

func TestRingOfCliquesSingle(t *testing.T) {
	g := RingOfCliques(1, 4)
	if g.M() != 6 { // one K4, no ring edge to itself
		t.Errorf("M = %d, want 6", g.M())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(100, 4, 0.1, 1)
	if g.N() != 100 {
		t.Errorf("N = %d", g.N())
	}
	// ~n·k/2 edges.
	if g.M() < 150 || g.M() > 220 {
		t.Errorf("M = %d, want ~200", g.M())
	}
	if !g.Connected() {
		t.Error("small-world graph disconnected at beta=0.1")
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	g := WattsStrogatz(20, 4, 0, 2)
	// Pure ring lattice: every vertex has degree 4.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	g := RandomRegular(60, 6, 3)
	if g.N() != 60 {
		t.Errorf("N = %d", g.N())
	}
	total := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > 6 {
			t.Fatalf("vertex %d degree %d > 6", v, d)
		}
		total += d
	}
	// Pairing drops a few collisions; demand ≥ 90% of stubs survive.
	if total < 60*6*90/100 {
		t.Errorf("total degree %d, want >= %d", total, 60*6*90/100)
	}
}

func TestGenerators2Deterministic(t *testing.T) {
	a := WattsStrogatz(50, 4, 0.2, 7)
	b := WattsStrogatz(50, 4, 0.2, 7)
	if a.M() != b.M() || !a.IsSubgraphOf(b) {
		t.Error("WattsStrogatz not deterministic")
	}
	c := RandomRegular(30, 4, 8)
	d := RandomRegular(30, 4, 8)
	if c.M() != d.M() || !c.IsSubgraphOf(d) {
		t.Error("RandomRegular not deterministic")
	}
}
