package graph

import "testing"

func BenchmarkBFS(b *testing.B) {
	g := ConnectedGNP(512, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := RandomWeighted(ConnectedGNP(512, 0.02, 2), 1, 100, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % g.N())
	}
}

func BenchmarkComponents(b *testing.B) {
	g := GNP(512, 0.01, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components()
	}
}

func BenchmarkUnionFind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		uf := NewUnionFind(1024)
		for v := 1; v < 1024; v++ {
			uf.Union(v-1, v)
		}
		if uf.Sets() != 1 {
			b.Fatal("union-find broken")
		}
	}
}

func BenchmarkGNPGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GNP(256, 0.05, uint64(i))
	}
}
