package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(5)
	g.AddUnitEdge(0, 1)
	g.AddEdge(3, 2, 2.5) // reversed order canonicalizes
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("edges missing")
	}
	if w, ok := g.Weight(3, 2); !ok || w != 2.5 {
		t.Errorf("weight = %v,%v", w, ok)
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	g.RemoveEdge(1, 0)
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Error("remove failed")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop did not panic")
		}
	}()
	New(3).AddUnitEdge(1, 1)
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddUnitEdge(2, 3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(0, 3)
	es := g.Edges()
	if len(es) != 3 || es[0] != (Edge{0, 1, 1}) || es[1] != (Edge{0, 3, 1}) || es[2] != (Edge{2, 3, 1}) {
		t.Errorf("edges = %v", es)
	}
}

func TestNeighborsDegree(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Errorf("center degree = %d", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Errorf("leaf degree = %d", g.Degree(3))
	}
	nb := g.Neighbors(0)
	if len(nb) != 4 || nb[0] != 1 || nb[3] != 4 {
		t.Errorf("neighbors = %v", nb)
	}
}

func TestNeighborsAfterMutation(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	_ = g.Neighbors(0)  // triggers adjacency build
	g.AddUnitEdge(0, 2) // mutation must invalidate cache
	if got := len(g.Neighbors(0)); got != 2 {
		t.Errorf("neighbors after mutation = %d, want 2", got)
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(6)
	d := g.BFS(0)
	for i := 0; i < 6; i++ {
		if d[i] != i {
			t.Errorf("d[%d] = %d", i, d[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddUnitEdge(0, 1)
	d := g.BFS(0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable distances = %v", d)
	}
}

func TestDijkstraAgreesWithBFSOnUnitWeights(t *testing.T) {
	g := ConnectedGNP(40, 0.1, 7)
	for src := 0; src < 5; src++ {
		bfs := g.BFS(src)
		dij := g.Dijkstra(src)
		for v := 0; v < g.N(); v++ {
			if bfs[v] == -1 {
				if dij[v] < 1e307 {
					t.Fatalf("v=%d: BFS unreachable, Dijkstra %v", v, dij[v])
				}
				continue
			}
			if math.Abs(float64(bfs[v])-dij[v]) > 1e-9 {
				t.Fatalf("v=%d: BFS %d vs Dijkstra %v", v, bfs[v], dij[v])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(0, 2, 5)
	d := g.Dijkstra(0)
	if d[2] != 5 || d[1] != 10 {
		t.Errorf("d = %v", d)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	g.AddUnitEdge(4, 5)
	ids, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if ids[0] != ids[2] || ids[4] != ids[5] || ids[0] == ids[4] || ids[3] == ids[0] {
		t.Errorf("ids = %v", ids)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if !Path(5).Connected() {
		t.Error("path reported disconnected")
	}
}

func TestIsSubgraphOf(t *testing.T) {
	g := Path(4)
	h := Cycle(4)
	if !g.IsSubgraphOf(h) {
		t.Error("path should be subgraph of cycle")
	}
	if h.IsSubgraphOf(g) {
		t.Error("cycle is not subgraph of path")
	}
}

func TestCutWeight(t *testing.T) {
	g := Complete(4)
	side := []bool{true, true, false, false}
	if got := g.CutWeight(side); got != 4 {
		t.Errorf("cut = %v, want 4", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(3)
	c := g.Clone()
	c.AddUnitEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("clone mutation leaked")
	}
}

func TestGNPEdgeCount(t *testing.T) {
	g := GNP(100, 0.1, 3)
	want := 0.1 * 100 * 99 / 2
	if float64(g.M()) < 0.7*want || float64(g.M()) > 1.3*want {
		t.Errorf("M = %d, want ~%v", g.M(), want)
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(50, 0.2, 9)
	b := GNP(50, 0.2, 9)
	if a.M() != b.M() || !a.IsSubgraphOf(b) {
		t.Error("same seed produced different graphs")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Errorf("N = %d", g.N())
	}
	// 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Errorf("M = %d, want 17", g.M())
	}
	d := g.BFS(0)
	if d[11] != 5 { // (2,3): 2+3 hops
		t.Errorf("corner distance = %d, want 5", d[11])
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 3)
	if g.N() != 13 {
		t.Errorf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Error("barbell disconnected")
	}
	// Distance across: through 3 bridge vertices = 4 bridge edges plus
	// within-clique hops.
	d := g.BFS(0)
	if d[12] < 4 {
		t.Errorf("cross-barbell distance = %d", d[12])
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
	d := g.BFS(0)
	if d[15] != 4 {
		t.Errorf("antipodal distance = %d, want 4", d[15])
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(200, 2, 11)
	if !g.Connected() {
		t.Error("PA graph disconnected")
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > maxDeg {
			maxDeg = g.Degree(v)
		}
	}
	if maxDeg < 10 {
		t.Errorf("max degree = %d; PA should produce hubs", maxDeg)
	}
}

func TestRandomWeighted(t *testing.T) {
	g := RandomWeighted(Path(50), 1, 100, 13)
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 100 {
			t.Errorf("weight %v out of range", e.W)
		}
	}
	if g.M() != 49 {
		t.Errorf("M = %d", g.M())
	}
}

func TestConnectedGNPAlwaysConnected(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := ConnectedGNP(60, 0.02, seed)
		if !g.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
	}
}

func TestCompleteCount(t *testing.T) {
	g := Complete(7)
	if g.M() != 21 {
		t.Errorf("M = %d, want 21", g.M())
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("union returned false on distinct sets")
	}
	if uf.Union(1, 0) {
		t.Fatal("union returned true on same set")
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Fatal("Same is wrong")
	}
	if uf.Sets() != 3 {
		t.Errorf("sets = %d, want 3", uf.Sets())
	}
}

func TestUnionFindInvariants(t *testing.T) {
	// Property: after any union sequence, Same is an equivalence
	// relation consistent with the union history (checked against a
	// naive labeling).
	f := func(ops []uint8) bool {
		const n = 12
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for _, op := range ops {
			a, b := int(op)%n, int(op/16)%n
			uf.Union(a, b)
			relabel(label[a], label[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(102))}); err != nil {
		t.Error(err)
	}
}

func TestEdgeCanon(t *testing.T) {
	e := Edge{U: 5, V: 2, W: 1}.Canon()
	if e.U != 2 || e.V != 5 {
		t.Errorf("canon = %v", e)
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	if g.TotalWeight() != 5 {
		t.Errorf("total = %v", g.TotalWeight())
	}
}
