// Package graph provides the static weighted-graph substrate: the graph
// type itself, workload generators, exact shortest-path computation
// (ground truth for spanner verification), connectivity utilities and a
// union-find structure used by the Borůvka-style spanning forest.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected weighted edge with endpoints U < V.
type Edge struct {
	U, V int
	W    float64
}

// Canon returns the edge with endpoints in canonical (U < V) order.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Graph is a simple undirected weighted graph on vertices 0..N-1,
// stored as a sorted edge set plus adjacency lists.
type Graph struct {
	n     int
	edges map[[2]int]float64
	adj   [][]halfEdge
	stale bool
}

type halfEdge struct {
	to int
	w  float64
}

// New creates an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{n: n, edges: make(map[[2]int]float64)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts (or overwrites) the undirected edge {u, v} with
// weight w. Self-loops are rejected, matching the paper's model.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	g.edges[[2]int{u, v}] = w
	g.stale = true
}

// AddUnitEdge inserts {u, v} with weight 1.
func (g *Graph) AddUnitEdge(u, v int) { g.AddEdge(u, v, 1) }

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	delete(g.edges, [2]int{u, v})
	g.stale = true
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := g.edges[[2]int{u, v}]
	return ok
}

// Weight returns the weight of {u, v} and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	if u > v {
		u, v = v, u
	}
	w, ok := g.edges[[2]int{u, v}]
	return w, ok
}

// Edges returns all edges in canonical sorted order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for k, w := range g.edges {
		out = append(out, Edge{U: k[0], V: k[1], W: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for k, w := range g.edges {
		c.edges[k] = w
	}
	return c
}

func (g *Graph) rebuild() {
	if !g.stale && g.adj != nil {
		return
	}
	g.adj = make([][]halfEdge, g.n)
	for k, w := range g.edges {
		g.adj[k[0]] = append(g.adj[k[0]], halfEdge{to: k[1], w: w})
		g.adj[k[1]] = append(g.adj[k[1]], halfEdge{to: k[0], w: w})
	}
	for _, a := range g.adj {
		sort.Slice(a, func(i, j int) bool { return a[i].to < a[j].to })
	}
	g.stale = false
}

// Neighbors returns the sorted neighbor ids of u.
func (g *Graph) Neighbors(u int) []int {
	g.rebuild()
	out := make([]int, len(g.adj[u]))
	for i, he := range g.adj[u] {
		out[i] = he.to
	}
	return out
}

// Degree returns the number of distinct neighbors of u.
func (g *Graph) Degree(u int) int {
	g.rebuild()
	return len(g.adj[u])
}

// BFS returns hop distances from src; unreachable vertices get -1.
func (g *Graph) BFS(src int) []int {
	g.rebuild()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[u] {
			if dist[he.to] == -1 {
				dist[he.to] = dist[u] + 1
				queue = append(queue, he.to)
			}
		}
	}
	return dist
}

// Dijkstra returns weighted shortest-path distances from src;
// unreachable vertices get +Inf.
func (g *Graph) Dijkstra(src int) []float64 {
	g.rebuild()
	const inf = 1e308
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	h := &distHeap{items: []distItem{{v: src, d: 0}}}
	for h.Len() > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue
		}
		for _, he := range g.adj[it.v] {
			nd := it.d + he.w
			if nd < dist[he.to] {
				dist[he.to] = nd
				h.push(distItem{v: he.to, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < len(h.items) && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// Components returns the component id of each vertex and the count.
func (g *Graph) Components() (ids []int, count int) {
	g.rebuild()
	ids = make([]int, g.n)
	for i := range ids {
		ids[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if ids[s] != -1 {
			continue
		}
		ids[s] = count
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, he := range g.adj[u] {
				if ids[he.to] == -1 {
					ids[he.to] = count
					stack = append(stack, he.to)
				}
			}
		}
		count++
	}
	return ids, count
}

// Connected reports whether the graph has a single component (true for
// the empty graph on one vertex; false on zero-edge multi-vertex graphs).
func (g *Graph) Connected() bool {
	_, c := g.Components()
	return c <= 1
}

// IsSubgraphOf reports whether every edge of g appears in h.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	for k := range g.edges {
		if !h.HasEdge(k[0], k[1]) {
			return false
		}
	}
	return true
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	t := 0.0
	for _, w := range g.edges {
		t += w
	}
	return t
}

// CutWeight returns the total weight of edges crossing the cut defined
// by side[v] (true = one side, false = the other).
func (g *Graph) CutWeight(side []bool) float64 {
	t := 0.0
	for k, w := range g.edges {
		if side[k[0]] != side[k[1]] {
			t += w
		}
	}
	return t
}
