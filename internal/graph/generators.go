package graph

import (
	"math"

	"dynstream/internal/hashing"
)

// The generators below produce the synthetic workloads used by the
// experiments: the paper is a theory paper with no datasets, so the
// inputs are the standard families its claims quantify over — random
// graphs G(n, p), structured graphs stressing distances (paths, grids,
// barbells) and a heavy-tailed family (preferential attachment)
// matching the "massive social graph" motivation of the introduction.

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, seed uint64) *Graph {
	g := New(n)
	rng := hashing.NewSplitMix64(seed)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddUnitEdge(u, v)
			}
		}
	}
	return g
}

// Path returns the path 0-1-…-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddUnitEdge(i, i+1)
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.AddUnitEdge(0, n-1)
	}
	return g
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddUnitEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddUnitEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddUnitEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddUnitEdge(u, v)
		}
	}
	return g
}

// Barbell returns two cliques of size half joined by a path of length
// bridge — the canonical hard instance for cut/spectral sparsification
// (the bridge edges have high effective resistance and must survive).
func Barbell(half, bridge int) *Graph {
	n := 2*half + bridge
	g := New(n)
	for u := 0; u < half; u++ {
		for v := u + 1; v < half; v++ {
			g.AddUnitEdge(u, v)
		}
	}
	off := half + bridge
	for u := 0; u < half; u++ {
		for v := u + 1; v < half; v++ {
			g.AddUnitEdge(off+u, off+v)
		}
	}
	prev := half - 1
	for i := 0; i < bridge; i++ {
		g.AddUnitEdge(prev, half+i)
		prev = half + i
	}
	g.AddUnitEdge(prev, off)
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.AddUnitEdge(u, v)
			}
		}
	}
	return g
}

// PreferentialAttachment returns a Barabási–Albert style graph where
// each new vertex attaches to m existing vertices chosen proportionally
// to degree — the heavy-tailed "social network" workload.
func PreferentialAttachment(n, m int, seed uint64) *Graph {
	if m < 1 {
		m = 1
	}
	g := New(n)
	rng := hashing.NewSplitMix64(seed)
	// Repeated-endpoint list: sampling an index uniformly samples a
	// vertex proportionally to degree.
	var endpoints []int
	start := m + 1
	if start > n {
		start = n
	}
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			g.AddUnitEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	for u := start; u < n; u++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != u {
				chosen[t] = true
			}
		}
		for v := range chosen {
			g.AddUnitEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

// RandomWeighted assigns each edge of g an independent weight in
// [wmin, wmax] sampled log-uniformly (weights span several scales, as
// the weight-class reduction of Remark 14 expects).
func RandomWeighted(g *Graph, wmin, wmax float64, seed uint64) *Graph {
	rng := hashing.NewSplitMix64(seed)
	out := New(g.N())
	lmin, lmax := math.Log(wmin), math.Log(wmax)
	for _, e := range g.Edges() {
		w := math.Exp(lmin + rng.Float64()*(lmax-lmin))
		out.AddEdge(e.U, e.V, w)
	}
	return out
}

// ConnectedGNP returns a G(n, p) graph patched to be connected by
// linking consecutive components with single edges (workloads for
// distance experiments need one component to make stretch well-defined).
func ConnectedGNP(n int, p float64, seed uint64) *Graph {
	g := GNP(n, p, seed)
	ids, count := g.Components()
	if count <= 1 {
		return g
	}
	rep := make([]int, count)
	for i := range rep {
		rep[i] = -1
	}
	for v, id := range ids {
		if rep[id] == -1 {
			rep[id] = v
		}
	}
	for i := 1; i < count; i++ {
		g.AddUnitEdge(rep[i-1], rep[i])
	}
	return g
}
