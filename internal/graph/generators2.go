package graph

import (
	"dynstream/internal/hashing"
)

// Additional workload families used by the extended experiments: a
// locally-dense family where spanner compression is visible per weight
// class, a small-world family, and random regular graphs.

// RingOfCliques returns `count` cliques of size `size` arranged in a
// ring, consecutive cliques joined by a single edge. Locally dense,
// globally sparse: spanners compress the cliques but must keep every
// ring edge.
func RingOfCliques(count, size int) *Graph {
	n := count * size
	g := New(n)
	for c := 0; c < count; c++ {
		base := c * size
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				g.AddUnitEdge(base+u, base+v)
			}
		}
	}
	for c := 0; c < count; c++ {
		from := c*size + size - 1
		to := ((c + 1) % count) * size
		if from != to && !g.HasEdge(from, to) {
			g.AddUnitEdge(from, to)
		}
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors, with each edge rewired
// to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	if k < 2 {
		k = 2
	}
	if k >= n {
		k = n - 1
	}
	g := New(n)
	rng := hashing.NewSplitMix64(seed)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire to a random non-neighbor.
				for tries := 0; tries < 20; tries++ {
					w := rng.Intn(n)
					if w != u && !g.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			if u != v && !g.HasEdge(u, v) {
				g.AddUnitEdge(u, v)
			}
		}
	}
	return g
}

// RandomRegular returns an approximately d-regular graph via the
// pairing model (retrying collisions; the result may be slightly
// irregular if d·n is odd or retries exhaust).
func RandomRegular(n, d int, seed uint64) *Graph {
	g := New(n)
	rng := hashing.NewSplitMix64(seed)
	// Stub list: d copies of every vertex, randomly paired.
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	// Shuffle and pair; skip self-loops and duplicates.
	for i := len(stubs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u != v && !g.HasEdge(u, v) {
			g.AddUnitEdge(u, v)
		}
	}
	return g
}
