package dynnet

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"dynstream/internal/dynnet/chaos"
)

// TestFrameCorruptTyped is the hostile-peer corruption table: every
// mid-frame damage pattern must surface ErrFrameCorrupt (which also
// matches ErrBadFrame, so older checks keep working); protocol-level
// surprises that are NOT corruption must stay plain ErrBadFrame.
func TestFrameCorruptTyped(t *testing.T) {
	enc := AppendFrame(nil, FrameUpdates, []byte("some payload bytes"))
	read := func(b []byte) error {
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(b)))
		return err
	}
	corrupt := []struct {
		name string
		data []byte
	}{
		{"flipped crc", func() []byte {
			b := append([]byte(nil), enc...)
			b[len(b)-1] ^= 0x01
			return b
		}()},
		{"flipped payload byte", func() []byte {
			b := append([]byte(nil), enc...)
			b[len(b)-8] ^= 0x80
			return b
		}()},
		{"truncated mid-payload", enc[:len(enc)-6]},
		{"truncated checksum", enc[:len(enc)-2]},
		{"truncated after version", enc[:1]},
		{"unterminated length varint", []byte{ProtocolVersion, byte(FrameUpdates), 0xff, 0xff}},
		{"oversized length", []byte{ProtocolVersion, byte(FrameUpdates), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			err := read(tc.data)
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("got %v, want ErrFrameCorrupt", err)
			}
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%v does not match ErrBadFrame; corruption must stay a bad frame", err)
			}
		})
	}
	// Not corruption: unknown frame type (well-formed, unexpected) and
	// wrong version keep their own identities.
	unknown := AppendFrame(nil, FrameType(250), []byte("x"))
	if err := read(unknown); !errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("unknown type: got %v, want plain ErrBadFrame", err)
	}
	wrongVer := append([]byte(nil), enc...)
	wrongVer[0] = ProtocolVersion + 1
	if err := read(wrongVer); !errors.Is(err, ErrWrongVersion) || errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("wrong version: got %v, want ErrWrongVersion", err)
	}
	if err := read(nil); err != io.EOF {
		t.Fatalf("clean boundary: got %v, want io.EOF", err)
	}
}

// silentWorker registers like a real worker, then never reads or
// writes again — the canonical hung peer.
func silentWorker(t *testing.T, ctx context.Context) net.Conn {
	t.Helper()
	cc, wc := net.Pipe()
	go func() {
		defer wc.Close()
		bw := bufio.NewWriter(wc)
		if _, err := WriteFrame(bw, FrameHello, EncodeHello(Hello{ID: "silent"})); err != nil {
			return
		}
		br := bufio.NewReader(wc)
		if _, _, err := ReadFrame(br); err != nil {
			return // ack
		}
		<-ctx.Done() // now go silent; close at test teardown
	}()
	return cc
}

// TestFrameTimeoutDeclaresSilentWorkerDead: without per-frame
// deadlines a silent worker hangs the pass forever (net.Pipe has no
// buffering, so the coordinator's first unread frame blocks). With
// FrameTimeout the worker is declared dead within the deadline and the
// pass fails over — here to nobody, so ErrNoWorkers, within a bound.
func TestFrameTimeoutDeclaresSilentWorkerDead(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 30, 100, 71)
	c, err := NewCoordinatorOpts(ctx, []net.Conn{silentWorker(t, ctx)},
		Options{FrameTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, _ := forestPass(t, st, 6)
	p.Batch = 8
	start := time.Now()
	if err := c.RunPass(ctx, p); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("silent worker held the pass for %v", d)
	}
}

// TestFrameTimeoutFailsOver pairs the silent worker with a healthy
// one: the pass must complete bit-identically on the survivor.
func TestFrameTimeoutFailsOver(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 40, 200, 73)
	conns := []net.Conn{
		pipeWorker(t, ctx, WorkerConfig{ID: "ok"}),
		silentWorker(t, ctx),
	}
	c, err := NewCoordinatorOpts(ctx, conns, Options{FrameTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, proto := forestPass(t, st, 8)
	p.Batch = 8
	if err := c.RunPass(ctx, p); err != nil {
		t.Fatalf("pass with a silent worker failed: %v", err)
	}
	if c.Live() != 1 {
		t.Fatalf("live workers: %d, want 1", c.Live())
	}
	got, err := proto.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialForest(t, st, 8)) {
		t.Fatal("failover state differs from serial ingest")
	}
}

// TestDialRetryBackoff pins the dial loop: a worker whose socket only
// appears after a delay is reached by later attempts, and a worker
// that never appears consumes exactly DialAttempts tries.
func TestDialRetryBackoff(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir := t.TempDir()

	t.Run("late listener is reached", func(t *testing.T) {
		sock := filepath.Join(dir, "late.sock")
		go func() {
			time.Sleep(150 * time.Millisecond)
			ln, err := net.Listen("unix", sock)
			if err != nil {
				return
			}
			ListenAndServeWorker(ctx, ln, WorkerConfig{ID: "late"})
		}()
		c, err := DialOpts(ctx, Options{
			DialAttempts: 20,
			DialBackoff:  50 * time.Millisecond,
		}, "unix:"+sock)
		if err != nil {
			t.Fatalf("dial with retries failed: %v", err)
		}
		defer c.Close()
		if c.Live() != 1 {
			t.Fatalf("live: %d", c.Live())
		}
	})
	t.Run("dead address exhausts attempts", func(t *testing.T) {
		start := time.Now()
		_, err := DialOpts(ctx, Options{
			DialAttempts: 3,
			DialBackoff:  40 * time.Millisecond,
		}, "unix:"+filepath.Join(dir, "never.sock"))
		if err == nil {
			t.Fatal("dialing a nonexistent worker succeeded")
		}
		if want := "after 3 attempts"; !contains(err.Error(), want) {
			t.Fatalf("error %q does not name the attempts", err)
		}
		// Two backoff sleeps, each jittered into [delay/2, delay].
		if d := time.Since(start); d < 40*time.Millisecond {
			t.Fatalf("retries returned after %v, backoff never slept", d)
		}
	})
	t.Run("ctx cancels the backoff sleep", func(t *testing.T) {
		cctx, ccancel := context.WithTimeout(ctx, 60*time.Millisecond)
		defer ccancel()
		start := time.Now()
		_, err := DialOpts(cctx, Options{
			DialAttempts: 1000,
			DialBackoff:  10 * time.Second,
		}, "unix:"+filepath.Join(dir, "never2.sock"))
		if err == nil {
			t.Fatal("canceled dial succeeded")
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cancellation took %v", d)
		}
	})
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestJitterDeterministicAndBounded pins the backoff jitter: pure in
// (seed, addr, attempt), always within [delay/2, delay].
func TestJitterDeterministicAndBounded(t *testing.T) {
	const delay = 100 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		a := jitter(delay, 7, "unix:/tmp/w.sock", attempt)
		b := jitter(delay, 7, "unix:/tmp/w.sock", attempt)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", attempt, a, b)
		}
		if a < delay/2 || a > delay {
			t.Fatalf("attempt %d: jitter %v outside [%v, %v]", attempt, a, delay/2, delay)
		}
	}
	if jitter(delay, 7, "unix:/tmp/w.sock", 1) == jitter(delay, 7, "unix:/tmp/other.sock", 1) &&
		jitter(delay, 7, "unix:/tmp/w.sock", 2) == jitter(delay, 7, "unix:/tmp/other.sock", 2) {
		t.Fatal("distinct addresses share the whole jitter schedule")
	}
}

// TestRedialRecoversRestartedWorker: a dialed worker whose first
// session drops mid-stream is redialed by shard recovery (Redial
// option), re-registered, and its shard re-replayed — the pass
// completes bit-identically with the worker alive again, even with no
// survivor to fail over to.
func TestRedialRecoversRestartedWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 40, 200, 91)
	dir := t.TempDir()
	sock := filepath.Join(dir, "w.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// First session dies after 2KB (mid-UPDATES); every later session
	// is clean — a worker process that crashed and was restarted.
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wc := conn
			if first {
				first = false
				wc = chaos.Wrap(conn, chaos.Config{Kind: chaos.Disconnect, Seed: 1, ByteBudget: 2048})
			}
			go ServeWorker(ctx, wc, WorkerConfig{ID: "restarting"})
		}
	}()
	c, err := DialOpts(ctx, Options{
		FrameTimeout: 500 * time.Millisecond,
		Redial:       true,
	}, "unix:"+sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, proto := forestPass(t, st, 12)
	p.Batch = 16
	if err := c.RunPass(ctx, p); err != nil {
		t.Fatalf("pass with a restarting worker failed: %v", err)
	}
	if c.Live() != 1 {
		t.Fatalf("live workers after redial: %d, want 1", c.Live())
	}
	got, err := proto.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialForest(t, st, 12)) {
		t.Fatal("redial state differs from serial ingest")
	}
	// The redialed session keeps serving subsequent passes.
	p2, proto2 := forestPass(t, st, 13)
	if err := c.RunPass(ctx, p2); err != nil {
		t.Fatal(err)
	}
	enc2, _ := proto2.MarshalBinary()
	if !bytes.Equal(enc2, serialForest(t, st, 13)) {
		t.Fatal("post-redial pass differs from serial ingest")
	}
}

// TestNoRedialWithoutOptIn: the same restarting worker without Redial
// must surface ErrNoWorkers — recovery never dials on its own unless
// asked.
func TestNoRedialWithoutOptIn(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 30, 150, 93)
	dir := t.TempDir()
	sock := filepath.Join(dir, "w.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go ServeWorker(ctx, chaos.Wrap(conn, chaos.Config{Kind: chaos.Disconnect, Seed: 2, ByteBudget: 2048}),
				WorkerConfig{ID: "doomed"})
		}
	}()
	c, err := DialOpts(ctx, Options{FrameTimeout: 500 * time.Millisecond}, "unix:"+sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, _ := forestPass(t, st, 14)
	p.Batch = 16
	if err := c.RunPass(ctx, p); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers without Redial", err)
	}
}

// TestHandshakeTimeoutConfigurable: a peer that connects but never
// sends HELLO must be rejected within the configured handshake
// timeout, not the 10s default.
func TestHandshakeTimeoutConfigurable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cc, wc := net.Pipe()
	defer wc.Close() // never speaks
	start := time.Now()
	_, err := NewCoordinatorOpts(ctx, []net.Conn{cc}, Options{HandshakeTimeout: 150 * time.Millisecond})
	if err == nil {
		t.Fatal("mute peer registered")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("mute peer held registration for %v", d)
	}
}
