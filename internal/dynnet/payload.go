package dynnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dynstream/internal/stream"
)

// Payload encodings for each frame type. All integers are varints; the
// only fixed-width payload fields are float64 weights.

// ErrBadPayload reports a payload that does not decode under its
// frame's schema.
var ErrBadPayload = errors.New("dynnet: malformed payload")

// ErrorCode classifies an ERROR frame so the receiving side can map it
// back to a typed error.
type ErrorCode uint8

// The ERROR frame codes.
const (
	// CodeInternal is any worker/coordinator-side failure without a
	// more specific classification.
	CodeInternal ErrorCode = 1
	// CodeNotReplayable reports that a worker's local shard source
	// cannot deliver the requested (repeat) pass — the wire form of
	// stream.ErrNotReplayable.
	CodeNotReplayable ErrorCode = 2
	// CodeBadAssign reports an ASSIGN the worker cannot satisfy
	// (unknown state kind, undecodable prototype, no local source).
	CodeBadAssign ErrorCode = 3
	// CodeBadUpdate reports an UPDATES batch that failed validation.
	CodeBadUpdate ErrorCode = 4
	// CodeWrongVersion reports a protocol-version mismatch detected at
	// registration.
	CodeWrongVersion ErrorCode = 5
)

// reader is a varint cursor over a payload.
type reader struct{ b []byte }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrBadPayload
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrBadPayload
	}
	b := r.b[0]
	r.b = r.b[1:]
	return b, nil
}

func (r *reader) bytes(n uint64) ([]byte, error) {
	if uint64(len(r.b)) < n {
		return nil, ErrBadPayload
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b, nil
}

func (r *reader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(r.b))
	}
	return nil
}

// Hello is the registration payload a worker sends when it connects
// (and the coordinator echoes back to acknowledge).
type Hello struct {
	ID string
}

// EncodeHello encodes a HELLO payload.
func EncodeHello(h Hello) []byte {
	out := binary.AppendUvarint(nil, uint64(len(h.ID)))
	return append(out, h.ID...)
}

// DecodeHello decodes a HELLO payload.
func DecodeHello(payload []byte) (Hello, error) {
	r := &reader{b: payload}
	ln, err := r.uvarint()
	if err != nil {
		return Hello{}, err
	}
	if ln > 1<<16 {
		return Hello{}, fmt.Errorf("%w: worker id of %d bytes", ErrBadPayload, ln)
	}
	id, err := r.bytes(ln)
	if err != nil {
		return Hello{}, err
	}
	if err := r.done(); err != nil {
		return Hello{}, err
	}
	return Hello{ID: string(id)}, nil
}

// Assign tells a worker to begin one build pass.
type Assign struct {
	// Kind selects the sketch state the worker instantiates.
	Kind StateKind
	// Local, when set, tells the worker to ingest its own local shard
	// source instead of waiting for streamed UPDATES.
	Local bool
	// Seq is the pass sequence number within the build (diagnostics,
	// and the worker's replay counter for local sources).
	Seq int
	// N is the vertex count the state must be built over.
	N int
	// Blob is the coordinator's marshaled prototype state; the worker
	// decodes it to obtain a same-randomness state to ingest into.
	Blob []byte
}

const assignFlagLocal = 1

// EncodeAssign encodes an ASSIGN payload.
func EncodeAssign(a Assign) []byte {
	flags := byte(0)
	if a.Local {
		flags |= assignFlagLocal
	}
	out := []byte{byte(a.Kind), flags}
	out = binary.AppendUvarint(out, uint64(a.Seq))
	out = binary.AppendUvarint(out, uint64(a.N))
	out = binary.AppendUvarint(out, uint64(len(a.Blob)))
	return append(out, a.Blob...)
}

// DecodeAssign decodes an ASSIGN payload.
func DecodeAssign(payload []byte) (Assign, error) {
	r := &reader{b: payload}
	var a Assign
	kind, err := r.byte()
	if err != nil {
		return a, err
	}
	a.Kind = StateKind(kind)
	flags, err := r.byte()
	if err != nil {
		return a, err
	}
	if flags&^byte(assignFlagLocal) != 0 {
		return a, fmt.Errorf("%w: unknown assign flags %02x", ErrBadPayload, flags)
	}
	a.Local = flags&assignFlagLocal != 0
	seq, err := r.uvarint()
	if err != nil {
		return a, err
	}
	n, err := r.uvarint()
	if err != nil {
		return a, err
	}
	if seq > 1<<20 || n == 0 || n > 1<<32 {
		return a, fmt.Errorf("%w: assign seq=%d n=%d out of range", ErrBadPayload, seq, n)
	}
	a.Seq, a.N = int(seq), int(n)
	ln, err := r.uvarint()
	if err != nil {
		return a, err
	}
	blob, err := r.bytes(ln)
	if err != nil {
		return a, err
	}
	a.Blob = blob
	if err := r.done(); err != nil {
		return a, err
	}
	return a, nil
}

// Update-record flag bits inside an UPDATES payload.
const (
	updFlagInsert     = 1 // Delta = +1 (clear: -1)
	updFlagUnitWeight = 2 // W = 1, no explicit weight field follows
)

// AppendUpdates appends the UPDATES payload for batch to dst: a varint
// count followed by records
//
//	u(uvarint) v(uvarint) flags(1) [w(f64 LE) when not unit-weight]
//
// Endpoints and the near-universal unit weight varint-compress to a
// fraction of the fixed 20-byte binary stream record.
func AppendUpdates(dst []byte, batch []stream.Update) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for _, u := range batch {
		dst = binary.AppendUvarint(dst, uint64(u.U))
		dst = binary.AppendUvarint(dst, uint64(u.V))
		flags := byte(0)
		if u.Delta > 0 {
			flags |= updFlagInsert
		}
		if u.W == 1 {
			flags |= updFlagUnitWeight
		}
		dst = append(dst, flags)
		if u.W != 1 {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(u.W))
			dst = append(dst, tmp[:]...)
		}
	}
	return dst
}

// DecodeUpdates decodes an UPDATES payload into buf (reused when large
// enough). Records are validated against the vertex count n with the
// same gate every Source uses, so a worker ingests exactly the updates
// a local replay would deliver.
func DecodeUpdates(payload []byte, n int, buf []stream.Update) ([]stream.Update, error) {
	r := &reader{b: payload}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(payload)) { // every record is >= 3 bytes
		return nil, fmt.Errorf("%w: update count %d exceeds payload", ErrBadPayload, count)
	}
	if uint64(cap(buf)) < count {
		buf = make([]stream.Update, 0, count)
	}
	buf = buf[:0]
	for i := uint64(0); i < count; i++ {
		uu, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		vv, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		if flags&^byte(updFlagInsert|updFlagUnitWeight) != 0 {
			return nil, fmt.Errorf("%w: unknown update flags %02x", ErrBadPayload, flags)
		}
		u := stream.Update{U: int(uu), V: int(vv), Delta: -1, W: 1}
		if flags&updFlagInsert != 0 {
			u.Delta = 1
		}
		if flags&updFlagUnitWeight == 0 {
			wb, err := r.bytes(8)
			if err != nil {
				return nil, err
			}
			u.W = math.Float64frombits(binary.LittleEndian.Uint64(wb))
		}
		if uu > 1<<32 || vv > 1<<32 {
			return nil, fmt.Errorf("%w: endpoint out of range", ErrBadPayload)
		}
		cu, err := stream.CheckUpdate(u, n)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		buf = append(buf, cu)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return buf, nil
}

// SketchMsg is a worker's end-of-pass result.
type SketchMsg struct {
	// Updates is the number of updates the worker ingested this pass.
	Updates int64
	// Blob is the worker's marshaled state.
	Blob []byte
}

// EncodeSketch encodes a SKETCH payload.
func EncodeSketch(m SketchMsg) []byte {
	out := binary.AppendUvarint(nil, uint64(m.Updates))
	out = binary.AppendUvarint(out, uint64(len(m.Blob)))
	return append(out, m.Blob...)
}

// DecodeSketch decodes a SKETCH payload.
func DecodeSketch(payload []byte) (SketchMsg, error) {
	r := &reader{b: payload}
	var m SketchMsg
	upd, err := r.uvarint()
	if err != nil {
		return m, err
	}
	m.Updates = int64(upd)
	ln, err := r.uvarint()
	if err != nil {
		return m, err
	}
	m.Blob, err = r.bytes(ln)
	if err != nil {
		return m, err
	}
	if err := r.done(); err != nil {
		return m, err
	}
	return m, nil
}

// ErrorMsg is a typed protocol failure.
type ErrorMsg struct {
	Code ErrorCode
	Msg  string
}

// EncodeError encodes an ERROR payload.
func EncodeError(e ErrorMsg) []byte {
	out := []byte{byte(e.Code)}
	out = binary.AppendUvarint(out, uint64(len(e.Msg)))
	return append(out, e.Msg...)
}

// DecodeError decodes an ERROR payload.
func DecodeError(payload []byte) (ErrorMsg, error) {
	r := &reader{b: payload}
	var e ErrorMsg
	code, err := r.byte()
	if err != nil {
		return e, err
	}
	e.Code = ErrorCode(code)
	ln, err := r.uvarint()
	if err != nil {
		return e, err
	}
	if ln > 1<<16 {
		return e, fmt.Errorf("%w: error message of %d bytes", ErrBadPayload, ln)
	}
	msg, err := r.bytes(ln)
	if err != nil {
		return e, err
	}
	e.Msg = string(msg)
	if err := r.done(); err != nil {
		return e, err
	}
	return e, nil
}

// Err converts a received ERROR frame into the matching typed Go error.
func (e ErrorMsg) Err() error {
	switch e.Code {
	case CodeNotReplayable:
		return fmt.Errorf("dynnet: remote: %s: %w", e.Msg, stream.ErrNotReplayable)
	default:
		return fmt.Errorf("dynnet: remote error (code %d): %s", e.Code, e.Msg)
	}
}
