package dynnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"

	"dynstream/internal/stream"
)

// WorkerConfig configures one worker connection.
type WorkerConfig struct {
	// ID identifies the worker in the HELLO registration (diagnostics).
	ID string
	// Source, when non-nil, is the worker's local shard: ASSIGN frames
	// with the Local flag replay it instead of waiting for streamed
	// UPDATES. Repeat passes require it to be replayable; if it turns
	// out not to be, the worker reports CodeNotReplayable over an ERROR
	// frame rather than failing silently.
	Source stream.Source
	// Logf, when non-nil, receives diagnostic lines.
	Logf func(format string, args ...any)
}

func (cfg WorkerConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// ServeWorker speaks the worker side of the protocol on conn until the
// coordinator closes it or ctx is canceled: register with HELLO, then
// loop executing ASSIGN…FLUSH passes, answering each with SKETCH (or a
// typed ERROR). The same connection serves any number of passes, so one
// registration carries a whole multi-pass build — and several builds.
//
// Cancelling ctx closes the connection, which unblocks any pending
// read; ServeWorker then returns ctx.Err().
func ServeWorker(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	wrapCtx := func(err error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	if _, err := WriteFrame(bw, FrameHello, EncodeHello(Hello{ID: cfg.ID})); err != nil {
		return wrapCtx(fmt.Errorf("dynnet: worker hello: %w", err))
	}
	ack, _, err := ReadFrame(br)
	if err != nil {
		return wrapCtx(fmt.Errorf("dynnet: worker hello ack: %w", err))
	}
	switch ack.Type {
	case FrameHello:
		// Registered.
	case FrameError:
		if e, derr := DecodeError(ack.Payload); derr == nil {
			return fmt.Errorf("dynnet: coordinator rejected registration: %w", e.Err())
		}
		return fmt.Errorf("dynnet: coordinator rejected registration")
	default:
		return fmt.Errorf("%w: expected HELLO ack, got %v", ErrBadFrame, ack.Type)
	}
	cfg.logf("worker %s: registered", cfg.ID)

	localPasses := 0
	for {
		f, _, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) || ctx.Err() != nil {
				return wrapCtx(nil) // coordinator done with us
			}
			return fmt.Errorf("dynnet: worker read: %w", err)
		}
		if f.Type != FrameAssign {
			return fmt.Errorf("%w: expected ASSIGN, got %v", ErrBadFrame, f.Type)
		}
		a, err := DecodeAssign(f.Payload)
		if err != nil {
			return err
		}
		if err := runWorkerPass(br, bw, cfg, a, &localPasses); err != nil {
			return wrapCtx(err)
		}
	}
}

// sendWorkerError ships a typed ERROR frame; the pass continues to
// drain frames so the connection stays frame-aligned for the
// coordinator's teardown.
func sendWorkerError(bw *bufio.Writer, code ErrorCode, msg string) error {
	_, err := WriteFrame(bw, FrameError, EncodeError(ErrorMsg{Code: code, Msg: msg}))
	return err
}

// runWorkerPass executes one ASSIGN…FLUSH cycle.
func runWorkerPass(br *bufio.Reader, bw *bufio.Writer, cfg WorkerConfig, a Assign, localPasses *int) error {
	st, err := newWorkerState(a.Kind, a.N, a.Blob)
	failed := err != nil
	if failed {
		cfg.logf("worker %s: bad assign (kind %v): %v", cfg.ID, a.Kind, err)
		if err := sendWorkerError(bw, CodeBadAssign, err.Error()); err != nil {
			return err
		}
	}
	cfg.logf("worker %s: pass %d assign kind=%v local=%v n=%d blob=%dB",
		cfg.ID, a.Seq, a.Kind, a.Local, a.N, len(a.Blob))

	// Local-shard mode sanity, checked before ingest so the coordinator
	// gets a typed error instead of a hung pass. The replayability probe
	// mirrors the probeSeek check in ReaderSource: trusting the static
	// type is not enough, the source must *currently* support another
	// pass.
	var local stream.Source
	if a.Local && !failed {
		switch {
		case cfg.Source == nil:
			failed = true
			err = sendWorkerError(bw, CodeBadAssign, "worker has no local shard source")
		case cfg.Source.N() != a.N:
			failed = true
			err = sendWorkerError(bw, CodeBadAssign,
				fmt.Sprintf("local shard has n=%d, assign wants n=%d", cfg.Source.N(), a.N))
		case *localPasses > 0 && !stream.CanReplay(cfg.Source):
			failed = true
			err = sendWorkerError(bw, CodeNotReplayable,
				fmt.Sprintf("local shard source cannot deliver pass %d again", *localPasses+1))
		default:
			local = cfg.Source
		}
		if err != nil {
			return err
		}
	}

	var ingested int64
	var batch []stream.Update
	for {
		f, _, err := ReadFrame(br)
		if err != nil {
			return fmt.Errorf("dynnet: worker pass read: %w", err)
		}
		switch f.Type {
		case FrameUpdates:
			if failed || a.Local {
				if !failed && a.Local {
					// Streaming into a local-shard pass is a protocol error.
					failed = true
					if err := sendWorkerError(bw, CodeBadAssign, "UPDATES frame during a local-shard pass"); err != nil {
						return err
					}
				}
				continue // drain to stay frame-aligned
			}
			batch, err = DecodeUpdates(f.Payload, a.N, batch)
			if err != nil {
				failed = true
				if err := sendWorkerError(bw, CodeBadUpdate, err.Error()); err != nil {
					return err
				}
				continue
			}
			if err := st.AddBatch(batch); err != nil {
				failed = true
				if err := sendWorkerError(bw, CodeInternal, err.Error()); err != nil {
					return err
				}
				continue
			}
			ingested += int64(len(batch))
		case FrameFlush:
			if failed {
				return nil // ERROR already sent; coordinator decides
			}
			if local != nil {
				*localPasses++
				err := stream.ReplayBatches(local, 0, func(b []stream.Update) error {
					ingested += int64(len(b))
					return st.AddBatch(b)
				})
				if err != nil {
					if errors.Is(err, stream.ErrNotReplayable) {
						return sendWorkerError(bw, CodeNotReplayable, err.Error())
					}
					return sendWorkerError(bw, CodeInternal, err.Error())
				}
			}
			blob, err := st.MarshalBinary()
			if err != nil {
				return sendWorkerError(bw, CodeInternal, err.Error())
			}
			cfg.logf("worker %s: pass %d done, %d updates, %dB state",
				cfg.ID, a.Seq, ingested, len(blob))
			_, err = WriteFrame(bw, FrameSketch, EncodeSketch(SketchMsg{Updates: ingested, Blob: blob}))
			return err
		case FrameError:
			// Coordinator aborted the pass; back to the assign loop.
			return nil
		default:
			return fmt.Errorf("%w: unexpected %v mid-pass", ErrBadFrame, f.Type)
		}
	}
}

// ListenAndServeWorker accepts coordinator connections on ln and serves
// each sequentially until ctx is canceled. A worker process serves one
// coordinator at a time: builds are coordinator-driven, and a second
// coordinator connecting mid-build would interleave passes.
func ListenAndServeWorker(ctx context.Context, ln net.Listener, cfg WorkerConfig) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := ServeWorker(ctx, conn, cfg); err != nil && ctx.Err() == nil {
			cfg.logf("worker %s: session ended: %v", cfg.ID, err)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}
