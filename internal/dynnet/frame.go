// Package dynnet is the multi-process build subsystem: a coordinator
// that ships a dynamic graph stream to sketch workers over TCP or unix
// sockets and merges their marshaled states. Because every construction
// in this repository is a linear sketch, a stream sharded across
// processes, ingested into same-seeded states, and merged at the
// coordinator is bit-identical to a single-process pass — the
// distributed protocol of the paper's introduction, realized over real
// sockets instead of goroutines.
//
// The protocol is a small length-prefixed frame format:
//
//	frame := version(1) type(1) len(uvarint) payload crc32(4, LE)
//
// The CRC covers everything before it (version, type, length bytes,
// payload). All multi-byte integers inside payloads are varint-encoded;
// the only fixed-width fields are float64 weights and the trailing CRC.
//
// One build pass is the exchange
//
//	coordinator                         worker
//	    ASSIGN(kind, proto state) ──▶
//	    UPDATES* ─────────────────▶      (AddBatch into state)
//	    FLUSH ────────────────────▶
//	            ◀───────────────── SKETCH(marshaled state)
//
// repeated per pass for multi-pass targets. Workers register first
// with a HELLO exchange; either side may send ERROR with a typed code.
package dynnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ProtocolVersion is the version byte carried by every frame. A
// coordinator and worker with different versions refuse each other at
// the HELLO exchange.
const ProtocolVersion = 1

// FrameType identifies a protocol frame.
type FrameType uint8

// The protocol frame types.
const (
	FrameHello   FrameType = 1 // worker registration / coordinator ack
	FrameAssign  FrameType = 2 // coordinator → worker: begin a pass
	FrameUpdates FrameType = 3 // coordinator → worker: a batch of updates
	FrameFlush   FrameType = 4 // coordinator → worker: end of pass, send state
	FrameSketch  FrameType = 5 // worker → coordinator: marshaled state
	FrameError   FrameType = 6 // either direction: typed failure

	// maxFrameType bounds the per-frame-type accounting arrays.
	maxFrameType = FrameError
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameAssign:
		return "ASSIGN"
	case FrameUpdates:
		return "UPDATES"
	case FrameFlush:
		return "FLUSH"
	case FrameSketch:
		return "SKETCH"
	case FrameError:
		return "ERROR"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Typed frame-level errors.
var (
	// ErrBadFrame reports a malformed frame: truncated header, oversized
	// payload, CRC mismatch, or an unknown frame type.
	ErrBadFrame = errors.New("dynnet: malformed frame")
	// ErrFrameCorrupt reports wire-level corruption of a frame: a CRC
	// mismatch, a hostile or truncated length, or a frame cut off
	// mid-payload. It wraps ErrBadFrame, so existing ErrBadFrame checks
	// still match; callers that need to distinguish "the bytes were
	// damaged in transit" from a clean EOF or a protocol-state error
	// (an unexpected frame type) match this error specifically.
	ErrFrameCorrupt = fmt.Errorf("%w: corrupt frame", ErrBadFrame)
	// ErrWrongVersion reports a frame carrying a different protocol
	// version byte — the connection cannot be used.
	ErrWrongVersion = errors.New("dynnet: protocol version mismatch")
)

// MaxFramePayload bounds the payload of a single frame. Sketch blobs
// are the largest frames; 1 GiB is far above any state this repository
// produces and small enough to reject hostile length prefixes outright.
const MaxFramePayload = 1 << 30

// Frame is one decoded protocol frame.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// AppendFrame appends the encoded frame (header, payload, CRC) to dst.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, ProtocolVersion, byte(t))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// framePool recycles encode buffers: the streaming hot path writes one
// UPDATES frame per batch, and a per-frame allocation of payload size
// would churn the GC for nothing.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// WriteFrame encodes and writes one frame, returning the number of
// bytes put on the wire.
func WriteFrame(w io.Writer, t FrameType, payload []byte) (int, error) {
	bufp := framePool.Get().(*[]byte)
	enc := AppendFrame((*bufp)[:0], t, payload)
	*bufp = enc
	n, err := w.Write(enc)
	framePool.Put(bufp)
	if err != nil {
		return n, err
	}
	if bw, ok := w.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadFrame reads and validates one frame. It returns the frame, the
// number of bytes consumed, and an error: ErrWrongVersion for a version
// mismatch, ErrFrameCorrupt (which wraps ErrBadFrame) for wire-level
// damage — a truncated or hostile length, a frame cut off mid-payload,
// a CRC mismatch — ErrBadFrame alone for an unknown frame type, and
// io.EOF only at a clean frame boundary.
func ReadFrame(br *bufio.Reader) (Frame, int, error) {
	var f Frame
	read := 0
	ver, err := br.ReadByte()
	if err != nil {
		return f, read, err // io.EOF here is a clean end of stream
	}
	read++
	crc := crc32.NewIEEE()
	crc.Write([]byte{ver})
	if ver != ProtocolVersion {
		return f, read, fmt.Errorf("%w: got %d, want %d", ErrWrongVersion, ver, ProtocolVersion)
	}
	typ, err := br.ReadByte()
	if err != nil {
		return f, read, fmt.Errorf("%w: truncated after version byte", ErrFrameCorrupt)
	}
	read++
	crc.Write([]byte{typ})
	f.Type = FrameType(typ)
	if f.Type < FrameHello || f.Type > FrameError {
		return f, read, fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, typ)
	}
	// Payload length, varint, bounded.
	var ln uint64
	var lnBuf []byte
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return f, read, fmt.Errorf("%w: unterminated length varint", ErrFrameCorrupt)
		}
		b, err := br.ReadByte()
		if err != nil {
			return f, read, fmt.Errorf("%w: truncated length", ErrFrameCorrupt)
		}
		read++
		lnBuf = append(lnBuf, b)
		ln |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	crc.Write(lnBuf)
	if ln > MaxFramePayload {
		return f, read, fmt.Errorf("%w: payload of %d bytes exceeds limit", ErrFrameCorrupt, ln)
	}
	f.Payload = make([]byte, ln)
	if _, err := io.ReadFull(br, f.Payload); err != nil {
		return f, read, fmt.Errorf("%w: truncated payload: %v", ErrFrameCorrupt, err)
	}
	read += int(ln)
	crc.Write(f.Payload)
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return f, read, fmt.Errorf("%w: truncated checksum", ErrFrameCorrupt)
	}
	read += 4
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return f, read, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrFrameCorrupt, got, want)
	}
	return f, read, nil
}
