package dynnet

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dynstream/internal/agm"
	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// pipeWorker starts an in-process worker over a net.Pipe and returns
// the coordinator's end.
func pipeWorker(t *testing.T, ctx context.Context, cfg WorkerConfig) net.Conn {
	t.Helper()
	cc, wc := net.Pipe()
	go ServeWorker(ctx, wc, cfg)
	return cc
}

func testStream(t *testing.T, n, churn int, seed uint64) *stream.MemoryStream {
	t.Helper()
	g := graph.ConnectedGNP(n, 0.1, seed)
	return stream.WithChurn(g, churn, seed+1)
}

// forestPass builds a coordinator-side forest pass over st and returns
// the proto that accumulates the merged worker states.
func forestPass(t *testing.T, st stream.Source, seed uint64) (Pass, *agm.Sketch) {
	t.Helper()
	proto := agm.New(seed, st.N(), agm.Config{})
	blob, err := proto.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return Pass{
		Kind: KindForest,
		Blob: blob,
		Src:  st,
		N:    st.N(),
		Merge: func(_ int, b []byte) error {
			s := &agm.Sketch{}
			if err := s.UnmarshalBinary(b); err != nil {
				return err
			}
			return proto.Merge(s)
		},
	}, proto
}

func serialForest(t *testing.T, st stream.Source, seed uint64) []byte {
	t.Helper()
	want := agm.New(seed, st.N(), agm.Config{})
	if err := st.Replay(func(u stream.Update) error { want.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	enc, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestCoordinatorPassMatchesSerial(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 60, 300, 7)
	conns := []net.Conn{
		pipeWorker(t, ctx, WorkerConfig{ID: "a"}),
		pipeWorker(t, ctx, WorkerConfig{ID: "b"}),
		pipeWorker(t, ctx, WorkerConfig{ID: "c"}),
	}
	c, err := NewCoordinator(ctx, conns)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.WorkerIDs(); fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("worker ids: %v", got)
	}

	p, proto := forestPass(t, st, 99)
	var updates atomic.Int64
	p.Progress = func(n int) { updates.Add(int64(n)) }
	if err := c.RunPass(ctx, p); err != nil {
		t.Fatal(err)
	}
	got, err := proto.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialForest(t, st, 99)) {
		t.Fatal("remote pass state differs from serial ingest")
	}
	if updates.Load() != int64(st.Len()) {
		t.Fatalf("progress saw %d updates, stream has %d", updates.Load(), st.Len())
	}
	out, in := c.Bytes()
	if out == 0 || in == 0 {
		t.Fatalf("byte accounting: %d out, %d in", out, in)
	}
}

// dropConn fails all reads/writes after `after` writes have gone
// through — a deterministic stand-in for a worker process killed
// mid-stream.
type dropConn struct {
	net.Conn
	writes int32
	after  int32
}

func (d *dropConn) Write(b []byte) (int, error) {
	if atomic.AddInt32(&d.writes, 1) > d.after {
		d.Conn.Close()
		return 0, errors.New("worker dropped")
	}
	return d.Conn.Write(b)
}

// TestWorkerDropFailover kills one worker's connection mid-stream and
// checks that the coordinator re-replays its shard to a survivor,
// producing the exact serial state.
func TestWorkerDropFailover(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 60, 400, 13)

	healthy1 := pipeWorker(t, ctx, WorkerConfig{ID: "ok1"})
	healthy2 := pipeWorker(t, ctx, WorkerConfig{ID: "ok2"})
	// The flaky worker's conn dies after a handful of coordinator
	// frames (HELLO ack, ASSIGN, then mid-UPDATES).
	cc, wc := net.Pipe()
	go ServeWorker(ctx, wc, WorkerConfig{ID: "flaky"})
	flaky := &dropConn{Conn: cc, after: 4}

	c, err := NewCoordinator(ctx, []net.Conn{healthy1, flaky, healthy2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p, proto := forestPass(t, st, 42)
	p.Batch = 16 // many frames, so the drop lands mid-stream
	if err := c.RunPass(ctx, p); err != nil {
		t.Fatalf("pass with a dropped worker failed: %v", err)
	}
	if c.Live() != 2 {
		t.Fatalf("live workers after drop: %d, want 2", c.Live())
	}
	got, err := proto.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialForest(t, st, 42)) {
		t.Fatal("failover state differs from serial ingest")
	}

	// The same coordinator keeps working for subsequent passes on the
	// survivors.
	p2, proto2 := forestPass(t, st, 43)
	if err := c.RunPass(ctx, p2); err != nil {
		t.Fatal(err)
	}
	enc2, _ := proto2.MarshalBinary()
	if !bytes.Equal(enc2, serialForest(t, st, 43)) {
		t.Fatal("post-failover pass differs from serial ingest")
	}
}

// TestAllWorkersDead pins the failure mode when no survivor remains.
func TestAllWorkersDead(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st := testStream(t, 30, 100, 17)
	cc, wc := net.Pipe()
	go ServeWorker(ctx, wc, WorkerConfig{ID: "only"})
	flaky := &dropConn{Conn: cc, after: 3}
	c, err := NewCoordinator(ctx, []net.Conn{flaky})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, _ := forestPass(t, st, 5)
	p.Batch = 8
	if err := c.RunPass(ctx, p); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
}

// TestAssignVertexCountMismatch pins the registry's n cross-check:
// every state kind must refuse a prototype whose vertex count differs
// from the ASSIGN's, instead of letting later in-range-for-n updates
// index out of the smaller state (a worker-process panic).
func TestAssignVertexCountMismatch(t *testing.T) {
	proto := agm.New(3, 16, agm.Config{})
	blob, err := proto.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newWorkerState(KindForest, 16, blob); err != nil {
		t.Fatalf("matching n rejected: %v", err)
	}
	if _, err := newWorkerState(KindForest, 1000, blob); err == nil {
		t.Fatal("mismatched n accepted")
	}
	if _, err := newWorkerState(StateKind(200), 16, blob); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestHostileRegistration is the malformed-HELLO / wrong-version table:
// the coordinator must reject each hostile peer with an error, never
// deadlock (every case runs under the test timeout guard).
func TestHostileRegistration(t *testing.T) {
	cases := []struct {
		name  string
		bytes []byte
	}{
		{"empty close", nil},
		{"wrong version", AppendFrame(nil, FrameHello, EncodeHello(Hello{ID: "w"}))},
		{"not hello", AppendFrame(nil, FrameSketch, EncodeSketch(SketchMsg{}))},
		{"garbage", []byte("GET / HTTP/1.1\r\n\r\n")},
		{"truncated hello", AppendFrame(nil, FrameHello, EncodeHello(Hello{ID: "w"}))[:5]},
		{"malformed hello payload", AppendFrame(nil, FrameHello, []byte{0xff, 0xff, 0xff})},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			cc, hostile := net.Pipe()
			go func() {
				data := tc.bytes
				if tc.name == "wrong version" {
					data = append([]byte(nil), data...)
					data[0] = ProtocolVersion + 1
				}
				hostile.Write(data)
				// Drain whatever the coordinator answers, then hang up.
				buf := make([]byte, 1024)
				hostile.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
				hostile.Read(buf)
				hostile.Close()
			}()
			done := make(chan error, 1)
			go func() {
				_, err := NewCoordinator(ctx, []net.Conn{cc})
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("case %d (%s): hostile registration accepted", i, tc.name)
				}
			case <-time.After(15 * time.Second):
				t.Fatalf("case %d (%s): coordinator deadlocked", i, tc.name)
			}
		})
	}
}

// TestMidStreamDisconnectNoDeadlock covers the worker side of the
// hostile table: a coordinator that vanishes mid-pass (after ASSIGN,
// mid-UPDATES) must unblock the worker loop promptly.
func TestMidStreamDisconnectNoDeadlock(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	cc, wc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeWorker(ctx, wc, WorkerConfig{ID: "w"}) }()

	bw := bufio.NewWriter(cc)
	br := bufio.NewReader(cc)
	// Register: the worker speaks first (net.Pipe is synchronous, so
	// read its HELLO before answering).
	if f, _, err := ReadFrame(br); err != nil || f.Type != FrameHello {
		t.Fatalf("hello exchange: %v %v", f.Type, err)
	}
	if _, err := WriteFrame(bw, FrameHello, EncodeHello(Hello{ID: "coord"})); err != nil {
		t.Fatal(err)
	}
	// Begin a pass, stream one batch, then vanish without FLUSH.
	proto := agm.New(1, 8, agm.Config{})
	blob, _ := proto.MarshalBinary()
	if _, err := WriteFrame(bw, FrameAssign, EncodeAssign(Assign{Kind: KindForest, Seq: 1, N: 8, Blob: blob})); err != nil {
		t.Fatal(err)
	}
	upd := AppendUpdates(nil, []stream.Update{{U: 0, V: 1, Delta: 1, W: 1}})
	if _, err := WriteFrame(bw, FrameUpdates, upd); err != nil {
		t.Fatal(err)
	}
	cc.Close()

	select {
	case <-done:
		// Returned — no deadlock; any error is acceptable on a torn
		// connection.
	case <-time.After(15 * time.Second):
		t.Fatal("worker deadlocked after mid-stream disconnect")
	}
}

// TestWorkerCtxCancelTearsDown: canceling the worker context closes the
// connection even while the worker is blocked reading.
func TestWorkerCtxCancelTearsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cc, wc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeWorker(ctx, wc, WorkerConfig{ID: "w"}) }()
	// Complete registration so the worker blocks in its assign loop
	// (worker speaks first on the synchronous pipe).
	bw := bufio.NewWriter(cc)
	br := bufio.NewReader(cc)
	if f, _, err := ReadFrame(br); err != nil || f.Type != FrameHello {
		t.Fatalf("hello: %v %v", f.Type, err)
	}
	WriteFrame(bw, FrameHello, EncodeHello(Hello{ID: "coord"}))
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not observe cancellation")
	}
}
