package dynnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynstream/internal/stream"
)

// ErrNoWorkers reports a pass with no live workers left.
var ErrNoWorkers = errors.New("dynnet: no live workers")

// defaultHandshakeTimeout bounds the HELLO exchange so a silent peer
// cannot hang coordinator setup (Options.HandshakeTimeout overrides).
const defaultHandshakeTimeout = 10 * time.Second

// Options tunes the coordinator's connection management. The zero
// value gives the historical behavior: a 10s handshake timeout, one
// dial attempt per address, no per-frame deadlines, no redialing.
type Options struct {
	// HandshakeTimeout bounds the HELLO exchange per worker
	// (default 10s).
	HandshakeTimeout time.Duration
	// FrameTimeout, when > 0, bounds every frame read and write on a
	// worker connection — the heartbeat that declares a silent worker
	// dead (and recovers its shard) instead of hanging the pass. Size
	// it to the slowest expected single-frame exchange: the worker's
	// end-of-pass marshal+SKETCH is the longest gap.
	FrameTimeout time.Duration
	// DialAttempts is the number of connection attempts per address
	// (default 1). Attempts after the first back off exponentially.
	DialAttempts int
	// DialBackoff is the delay before the second attempt (default
	// 100ms), doubling per attempt up to DialMaxBackoff (default 5s),
	// each sleep jittered deterministically from JitterSeed.
	DialBackoff    time.Duration
	DialMaxBackoff time.Duration
	// JitterSeed seeds the deterministic backoff jitter, so tests (and
	// reruns) sleep the same schedule.
	JitterSeed uint64
	// Redial lets shard recovery re-dial dropped workers that were
	// registered by address (DialOpts): the restarted worker re-enters
	// the build and its shard is re-replayed to it. Without it (or for
	// accepted connections, which have no address) shards only move to
	// surviving workers.
	Redial bool
}

// withDefaults resolves unset fields; negative durations are treated
// as unset.
func (o Options) withDefaults() Options {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = defaultHandshakeTimeout
	}
	if o.FrameTimeout < 0 {
		o.FrameTimeout = 0
	}
	if o.DialAttempts < 1 {
		o.DialAttempts = 1
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 100 * time.Millisecond
	}
	if o.DialMaxBackoff <= 0 {
		o.DialMaxBackoff = 5 * time.Second
	}
	return o
}

// workerConn is one registered worker connection.
type workerConn struct {
	id string
	// addr is the dialable address this worker was registered from;
	// empty for accepted connections. A non-empty addr is what makes a
	// dead worker redialable.
	addr string
	// mu guards conn (replaced on redial) against the ctx-cancel
	// watchdogs, which close connections from their own goroutine.
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// alive is cleared when the connection is torn down; atomic
	// because the ctx-cancel watchdog closes connections from its own
	// goroutine while RunPass reads the flag.
	alive atomic.Bool
}

// netConn returns the current connection under the swap lock.
func (w *workerConn) netConn() net.Conn {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn
}

// closeConn closes the current connection (nil-safe for a worker whose
// redial never completed).
func (w *workerConn) closeConn() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		return nil
	}
	return w.conn.Close()
}

// adopt installs a freshly handshaken connection on this worker slot.
func (w *workerConn) adopt(nw *workerConn) {
	w.mu.Lock()
	w.conn, w.br, w.bw, w.id = nw.conn, nw.br, nw.bw, nw.id
	w.mu.Unlock()
	w.alive.Store(true)
}

// Coordinator drives multi-process builds over a set of registered
// worker connections. It is the data-plane side of Build's
// WithRemoteWorkers option: each build pass ships a prototype state,
// streams shard updates, and merges the returned sketch blobs.
//
// A Coordinator serves one RunPass at a time (passes of one build are
// sequential by nature); it is not safe for concurrent RunPass calls.
type Coordinator struct {
	opts    Options
	workers []*workerConn
	out     frameCounters
	in      frameCounters
}

// frameCounters is per-frame-type wire accounting for one direction:
// frames, bytes, and wall time spent in the frame read or write call.
// Index 0 collects frames whose type could not be decoded (a torn or
// corrupt read). This is the single accounting source for everything
// wire-related: Bytes(), the CLI's progress output, and the tracer's
// dynnet counters all derive from it.
type frameCounters struct {
	count [maxFrameType + 1]atomic.Int64
	bytes [maxFrameType + 1]atomic.Int64
	wall  [maxFrameType + 1]atomic.Int64 // nanoseconds
}

func (fc *frameCounters) add(t FrameType, n int, d time.Duration) {
	if t > maxFrameType {
		t = 0
	}
	fc.count[t].Add(1)
	fc.bytes[t].Add(int64(n))
	fc.wall[t].Add(int64(d))
}

func (fc *frameCounters) total() int64 {
	var sum int64
	for i := range fc.bytes {
		sum += fc.bytes[i].Load()
	}
	return sum
}

func (fc *frameCounters) stats() []FrameStat {
	var out []FrameStat
	for i := range fc.count {
		if c := fc.count[i].Load(); c > 0 {
			out = append(out, FrameStat{
				Type:  FrameType(i),
				Count: c,
				Bytes: fc.bytes[i].Load(),
				Wall:  time.Duration(fc.wall[i].Load()),
			})
		}
	}
	return out
}

// FrameStat is the cumulative wire accounting of one frame type in one
// direction.
type FrameStat struct {
	Type  FrameType
	Count int64
	Bytes int64
	Wall  time.Duration
}

// FrameStats returns the per-frame-type accounting of both directions,
// in frame-type order, omitting types never seen.
func (c *Coordinator) FrameStats() (out, in []FrameStat) {
	return c.out.stats(), c.in.stats()
}

// ResolveNetwork maps a worker address to its network: "unix" for
// addresses with a unix: prefix or a path separator, "tcp" otherwise.
func ResolveNetwork(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return "tcp", rest
	}
	if strings.ContainsAny(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects to worker processes listening at addrs ("host:port",
// "unix:/path", or a bare socket path) and registers each one.
func Dial(ctx context.Context, addrs ...string) (*Coordinator, error) {
	return DialOpts(ctx, Options{}, addrs...)
}

// DialOpts is Dial with explicit connection-management options:
// per-address exponential backoff with deterministic jitter
// (DialAttempts/DialBackoff), handshake and per-frame deadlines, and
// redial-on-recovery. Workers registered by address are redialable.
func DialOpts(ctx context.Context, opts Options, addrs ...string) (*Coordinator, error) {
	opts = opts.withDefaults()
	conns := make([]net.Conn, 0, len(addrs))
	for _, a := range addrs {
		conn, err := dialRetry(ctx, a, opts)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, conn)
	}
	c, err := NewCoordinatorOpts(ctx, conns, opts)
	if err != nil {
		return nil, err
	}
	for i, a := range addrs {
		c.workers[i].addr = a
	}
	return c, nil
}

// dialRetry dials one worker address under ctx, backing off
// exponentially between attempts with deterministic jitter.
func dialRetry(ctx context.Context, addr string, opts Options) (net.Conn, error) {
	network, address := ResolveNetwork(addr)
	var d net.Dialer
	delay := opts.DialBackoff
	var lastErr error
	for attempt := 0; attempt < opts.DialAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, jitter(delay, opts.JitterSeed, addr, attempt)); err != nil {
				return nil, fmt.Errorf("dynnet: dial worker %s: %w (last attempt: %v)", addr, err, lastErr)
			}
			delay *= 2
			if delay > opts.DialMaxBackoff {
				delay = opts.DialMaxBackoff
			}
		}
		conn, err := d.DialContext(ctx, network, address)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("dynnet: dial worker %s: %w", addr, err)
		}
	}
	return nil, fmt.Errorf("dynnet: dial worker %s after %d attempts: %w", addr, opts.DialAttempts, lastErr)
}

// jitter spreads one backoff sleep over [delay/2, delay], picked
// deterministically from (seed, address, attempt) — reruns of the same
// configuration sleep the same schedule, and distinct addresses
// desynchronize.
func jitter(delay time.Duration, seed uint64, addr string, attempt int) time.Duration {
	h := fnv.New64a()
	h.Write([]byte(addr))
	x := seed ^ h.Sum64() ^ uint64(attempt)
	// splitmix64 finalizer: a full-avalanche mix of the inputs.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	half := delay / 2
	if half <= 0 {
		return delay
	}
	return half + time.Duration(x%uint64(half+1))
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Accept waits for count workers to connect to ln and register — the
// coordinator-listens topology, where workers dial in with HELLO.
func Accept(ctx context.Context, ln net.Listener, count int) (*Coordinator, error) {
	return AcceptOpts(ctx, ln, count, Options{})
}

// AcceptOpts is Accept with explicit connection-management options.
// Accepted workers have no dialable address, so Options.Redial does
// not apply to them; the handshake and frame deadlines do.
func AcceptOpts(ctx context.Context, ln net.Listener, count int, opts Options) (*Coordinator, error) {
	if count < 1 {
		return nil, fmt.Errorf("dynnet: accept: need at least 1 worker, got %d", count)
	}
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	conns := make([]net.Conn, 0, count)
	for len(conns) < count {
		conn, err := ln.Accept()
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("dynnet: accept worker: %w", err)
		}
		conns = append(conns, conn)
	}
	return NewCoordinatorOpts(ctx, conns, opts)
}

// NewCoordinator performs the HELLO registration exchange on each
// established connection and returns a coordinator over the registered
// workers. Connections with a wrong protocol version (or a malformed
// HELLO) are refused with an ERROR frame and the whole setup fails —
// version skew is a deployment bug, not a runtime condition to paper
// over.
func NewCoordinator(ctx context.Context, conns []net.Conn) (*Coordinator, error) {
	return NewCoordinatorOpts(ctx, conns, Options{})
}

// NewCoordinatorOpts is NewCoordinator with explicit
// connection-management options.
func NewCoordinatorOpts(ctx context.Context, conns []net.Conn, opts Options) (*Coordinator, error) {
	if len(conns) == 0 {
		return nil, ErrNoWorkers
	}
	c := &Coordinator{opts: opts.withDefaults()}
	closeAll := func() {
		for _, conn := range conns {
			conn.Close()
		}
	}
	stop := context.AfterFunc(ctx, closeAll)
	defer stop()
	for i, conn := range conns {
		w, err := c.handshake(conn, fmt.Sprintf("worker-%d", i))
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dynnet: worker %d registration: %w", i, err)
		}
		c.workers = append(c.workers, w)
	}
	if ctx.Err() != nil {
		closeAll()
		return nil, ctx.Err()
	}
	return c, nil
}

// handshake runs the coordinator side of the HELLO exchange on one
// established connection: read the worker's HELLO under the handshake
// deadline, ack it, and return the registered connection.
func (c *Coordinator) handshake(conn net.Conn, fallbackID string) (*workerConn, error) {
	w := &workerConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	conn.SetDeadline(time.Now().Add(c.opts.HandshakeTimeout))
	start := time.Now()
	f, nr, err := ReadFrame(w.br)
	c.in.add(f.Type, nr, time.Since(start))
	if err != nil {
		if errors.Is(err, ErrWrongVersion) {
			c.write(w, FrameError, EncodeError(ErrorMsg{
				Code: CodeWrongVersion,
				Msg:  fmt.Sprintf("coordinator speaks protocol version %d", ProtocolVersion),
			}))
		}
		return nil, err
	}
	if f.Type != FrameHello {
		return nil, fmt.Errorf("%w: sent %v instead of HELLO", ErrBadFrame, f.Type)
	}
	h, err := DecodeHello(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	w.id = h.ID
	if w.id == "" {
		w.id = fallbackID
	}
	if err := c.write(w, FrameHello, EncodeHello(Hello{ID: "coordinator"})); err != nil {
		return nil, fmt.Errorf("hello ack: %w", err)
	}
	conn.SetDeadline(time.Time{})
	w.alive.Store(true)
	return w, nil
}

// Close tears down every worker connection.
func (c *Coordinator) Close() error {
	var first error
	for _, w := range c.workers {
		if err := w.closeConn(); err != nil && first == nil {
			first = err
		}
		w.alive.Store(false)
	}
	return first
}

// Live returns the number of workers still considered healthy.
func (c *Coordinator) Live() int {
	n := 0
	for _, w := range c.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// WorkerIDs returns the registered worker identifiers, in order.
func (c *Coordinator) WorkerIDs() []string {
	ids := make([]string, len(c.workers))
	for i, w := range c.workers {
		ids[i] = w.id
	}
	return ids
}

// Bytes returns the cumulative bytes put on and read off the wire —
// the bytes-on-wire figure the coordinator's progress output reports.
// It is the sum of the per-frame-type counters (FrameStats).
func (c *Coordinator) Bytes() (out, in int64) {
	return c.out.total(), c.in.total()
}

// write ships one frame to a worker, under the per-frame write
// deadline when Options.FrameTimeout is set.
func (c *Coordinator) write(w *workerConn, t FrameType, payload []byte) error {
	if d := c.opts.FrameTimeout; d > 0 {
		w.netConn().SetWriteDeadline(time.Now().Add(d))
		defer w.netConn().SetWriteDeadline(time.Time{})
	}
	start := time.Now()
	n, err := WriteFrame(w.bw, t, payload)
	c.out.add(t, n, time.Since(start))
	return err
}

// read collects one frame from a worker, under the per-frame read
// deadline when Options.FrameTimeout is set: a worker that goes silent
// mid-pass times out and is declared dead instead of hanging the pass.
func (c *Coordinator) read(w *workerConn) (Frame, error) {
	if d := c.opts.FrameTimeout; d > 0 {
		w.netConn().SetReadDeadline(time.Now().Add(d))
		defer w.netConn().SetReadDeadline(time.Time{})
	}
	start := time.Now()
	f, n, err := ReadFrame(w.br)
	c.in.add(f.Type, n, time.Since(start))
	return f, err
}

func (c *Coordinator) markDead(w *workerConn) {
	w.alive.Store(false)
	w.closeConn()
}

// redial re-establishes a dropped worker that was registered by
// address: one dial attempt (a dead process refuses instantly; a
// restarted one answers), then the normal HELLO exchange. On success
// the worker slot is live again and ready for re-replay.
func (c *Coordinator) redial(ctx context.Context, w *workerConn) error {
	network, address := ResolveNetwork(w.addr)
	dctx, cancel := context.WithTimeout(ctx, c.opts.HandshakeTimeout)
	var d net.Dialer
	conn, err := d.DialContext(dctx, network, address)
	cancel()
	if err != nil {
		return err
	}
	nw, err := c.handshake(conn, w.id)
	if err != nil {
		conn.Close()
		return err
	}
	w.adopt(nw)
	return nil
}

// Pass describes one build pass to run across the workers.
type Pass struct {
	// Kind selects the worker-side state type.
	Kind StateKind
	// Blob is the coordinator's marshaled prototype state; every worker
	// decodes it into an identical-randomness state.
	Blob []byte
	// Src is the stream to shard across workers. Ignored in Local mode.
	Src stream.Source
	// Local makes every worker ingest its own local shard source
	// instead of streamed updates.
	Local bool
	// N is the vertex count.
	N int
	// Batch is the updates-per-frame granularity (default
	// stream.DefaultBatchSize).
	Batch int
	// Seq is the pass sequence number within the build.
	Seq int
	// Progress, when non-nil, receives the size of every dispatched (or
	// remotely ingested) update batch. When a dropped worker's shard is
	// re-replayed, a negative correction for the batches already
	// reported to the dead worker is emitted first, so the cumulative
	// sum stays exactly the number of updates in the pass.
	Progress func(updates int)
	// Merge folds one worker's returned state blob into the
	// coordinator's state; called once per shard, in shard order.
	Merge func(shard int, blob []byte) error
	// Collect, when non-nil, replaces Merge: once every shard's SKETCH
	// blob has been collected it is called exactly once with the blobs
	// in shard order, letting the caller decode and fold them with a
	// parallel tree merge instead of the linear per-shard fold. Because
	// every state merge is an exact commutative group operation, any
	// fold shape produces the same state bit for bit.
	Collect func(blobs [][]byte) error
}

// RunPass executes one pass: ASSIGN the prototype to every live
// worker, stream the shard updates (round-robin, matching
// stream.Shard's assignment), FLUSH, collect the SKETCH blobs, and
// merge them in shard order.
//
// Failure handling: a worker whose connection drops — or, with a frame
// timeout set, goes silent — mid-pass is marked dead and its shard is
// re-replayed in full: first to the dropped worker itself if it came
// back and Options.Redial is set, otherwise to a surviving worker.
// Either is legal because the source is replayable and the sketches
// are linear (the dead worker's partial state is simply discarded). A
// worker that *reports* a typed ERROR (bad update, non-replayable
// local source) fails the pass instead: the same error would recur on
// any worker.
//
// Cancelling ctx tears down every connection, unblocking all reads and
// writes; RunPass then returns ctx.Err().
func (c *Coordinator) RunPass(ctx context.Context, p Pass) error {
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	wrapCtx := func(err error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if p.Batch <= 0 {
		p.Batch = stream.DefaultBatchSize
	}

	live := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		if w.alive.Load() {
			live = append(live, w)
		}
	}
	W := len(live)
	if W == 0 {
		return ErrNoWorkers
	}

	assign := EncodeAssign(Assign{Kind: p.Kind, Local: p.Local, Seq: p.Seq, N: p.N, Blob: p.Blob})
	counted := make([]int64, W) // updates reported per shard (progress exactness on failover)
	var failed []int            // shard indexes needing re-replay
	for i, w := range live {
		if err := c.write(w, FrameAssign, assign); err != nil {
			c.markDead(w)
			failed = append(failed, i)
		}
	}

	// Stream the shards: one replay of the source, update i going to
	// shard i mod W — exactly stream.Shard's round-robin split, so a
	// failed shard can later be re-replayed from a Shard view.
	if !p.Local {
		if p.Src == nil {
			return fmt.Errorf("dynnet: streamed pass without a source")
		}
		bufs := make([][]stream.Update, W)
		for i := range bufs {
			bufs[i] = make([]stream.Update, 0, p.Batch)
		}
		var payload []byte
		send := func(s int) error {
			w := live[s]
			payload = AppendUpdates(payload[:0], bufs[s])
			nu := len(bufs[s])
			bufs[s] = bufs[s][:0]
			if err := c.write(w, FrameUpdates, payload); err != nil {
				c.markDead(w)
				failed = append(failed, s)
				return nil // shard recovered later by re-replay
			}
			counted[s] += int64(nu)
			if p.Progress != nil {
				p.Progress(nu)
			}
			return nil
		}
		pos := 0
		err := p.Src.Replay(func(u stream.Update) error {
			s := pos % W
			pos++
			if !live[s].alive.Load() {
				return nil
			}
			bufs[s] = append(bufs[s], u)
			if len(bufs[s]) >= p.Batch {
				if err := ctx.Err(); err != nil {
					return err
				}
				return send(s)
			}
			return nil
		})
		if err != nil {
			return wrapCtx(fmt.Errorf("dynnet: pass %d replay: %w", p.Seq, err))
		}
		for s := range bufs {
			if len(bufs[s]) > 0 && live[s].alive.Load() {
				if err := send(s); err != nil {
					return wrapCtx(err)
				}
			}
		}
	}

	// FLUSH and collect, in shard order.
	blobs := make([][]byte, W)
	for i, w := range live {
		if !w.alive.Load() {
			continue
		}
		if err := c.write(w, FrameFlush, nil); err != nil {
			c.markDead(w)
			failed = append(failed, i)
		}
	}
	for i, w := range live {
		if !w.alive.Load() {
			continue
		}
		blob, err := c.collectSketch(w, p)
		switch {
		case err == nil:
			blobs[i] = blob
		case errors.As(err, new(*remoteError)):
			return wrapCtx(fmt.Errorf("dynnet: worker %s, shard %d/%d: %w", w.id, i, W, err))
		default:
			c.markDead(w)
			failed = append(failed, i)
		}
	}

	// Re-replay dropped shards: to their redialed owner when possible,
	// otherwise to survivors.
	for _, s := range failed {
		if blobs[s] != nil {
			continue
		}
		blob, err := c.recoverShard(ctx, p, s, W, counted[s], live[s])
		if err != nil {
			return wrapCtx(fmt.Errorf("dynnet: shard %d/%d lost: %w", s, W, err))
		}
		blobs[s] = blob
	}

	for s, blob := range blobs {
		if blob == nil {
			return fmt.Errorf("dynnet: shard %d/%d produced no state", s, W)
		}
	}
	if p.Collect != nil {
		if err := p.Collect(blobs); err != nil {
			return wrapCtx(fmt.Errorf("dynnet: merge %d shards: %w", W, err))
		}
		return wrapCtx(ctx.Err())
	}
	for s, blob := range blobs {
		if err := p.Merge(s, blob); err != nil {
			return fmt.Errorf("dynnet: merge shard %d/%d: %w", s, W, err)
		}
	}
	return wrapCtx(ctx.Err())
}

// remoteError wraps an ERROR frame from a worker: a deliberate, typed
// report, not a connection failure — re-replaying elsewhere would hit
// the same condition, so it fails the pass.
type remoteError struct{ err error }

func (e *remoteError) Error() string { return e.err.Error() }
func (e *remoteError) Unwrap() error { return e.err }

// collectSketch reads one worker's end-of-pass response.
func (c *Coordinator) collectSketch(w *workerConn, p Pass) ([]byte, error) {
	f, err := c.read(w)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FrameSketch:
		m, err := DecodeSketch(f.Payload)
		if err != nil {
			return nil, &remoteError{err}
		}
		if p.Local && p.Progress != nil && m.Updates > 0 {
			p.Progress(int(m.Updates))
		}
		return m.Blob, nil
	case FrameError:
		e, derr := DecodeError(f.Payload)
		if derr != nil {
			return nil, &remoteError{derr}
		}
		return nil, &remoteError{e.Err()}
	default:
		return nil, &remoteError{fmt.Errorf("%w: expected SKETCH, got %v", ErrBadFrame, f.Type)}
	}
}

// recoverShard re-replays shard s (of the round-robin split into W).
// The candidate order per attempt: the shard's own dropped worker if
// it can be redialed (Options.Redial and a dialable address — a
// restarted worker process re-registers mid-build and takes its shard
// back), then any surviving worker, then any other redialable dead
// worker. The shard view replays the base source, so this requires a
// replayable source; local-shard passes cannot be recovered (the data
// lived with the dead worker).
func (c *Coordinator) recoverShard(ctx context.Context, p Pass, s, W int, already int64, owner *workerConn) ([]byte, error) {
	if p.Local {
		return nil, fmt.Errorf("dynnet: worker with a local shard died; its data is unreachable")
	}
	if !stream.CanReplay(p.Src) {
		return nil, fmt.Errorf("dynnet: cannot re-replay shard: %w", stream.ErrNotReplayable)
	}
	shard := &stream.Shard{Base: p.Src, Index: s, Count: W}
	assign := EncodeAssign(Assign{Kind: p.Kind, Local: false, Seq: p.Seq, N: p.N, Blob: p.Blob})
	redialed := make(map[*workerConn]bool)
	pick := func() *workerConn {
		if owner != nil && c.opts.Redial && owner.addr != "" &&
			!owner.alive.Load() && !redialed[owner] {
			redialed[owner] = true
			if c.redial(ctx, owner) == nil {
				return owner
			}
		}
		for _, cand := range c.workers {
			if cand.alive.Load() {
				return cand
			}
		}
		if c.opts.Redial {
			for _, cand := range c.workers {
				if cand.addr != "" && !redialed[cand] {
					redialed[cand] = true
					if c.redial(ctx, cand) == nil {
						return cand
					}
				}
			}
		}
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := pick()
		if w == nil {
			return nil, ErrNoWorkers
		}
		// Cancel out updates already reported for this shard (the
		// partial stream to the dead worker, or an earlier failed
		// recovery attempt), so the full re-replay leaves the
		// cumulative progress count exact.
		if p.Progress != nil && already != 0 {
			p.Progress(int(-already))
		}
		already = 0
		blob, err := c.replayShardTo(ctx, w, shard, assign, p, &already)
		if err == nil {
			return blob, nil
		}
		var re *remoteError
		if errors.As(err, &re) {
			return nil, err
		}
		c.markDead(w) // this worker died too; try the next one
	}
}

// replayShardTo runs one complete ASSIGN/UPDATES/FLUSH/SKETCH exchange
// of a single shard with a single worker.
func (c *Coordinator) replayShardTo(ctx context.Context, w *workerConn, shard stream.Source, assign []byte, p Pass, counted *int64) ([]byte, error) {
	if err := c.write(w, FrameAssign, assign); err != nil {
		return nil, err
	}
	var payload []byte
	err := stream.ReplayBatches(shard, p.Batch, func(b []stream.Update) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload = AppendUpdates(payload[:0], b)
		if err := c.write(w, FrameUpdates, payload); err != nil {
			return err
		}
		*counted += int64(len(b))
		if p.Progress != nil {
			p.Progress(len(b))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.write(w, FrameFlush, nil); err != nil {
		return nil, err
	}
	return c.collectSketch(w, p)
}
