package dynnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"dynstream/internal/stream"
)

// ErrNoWorkers reports a pass with no live workers left.
var ErrNoWorkers = errors.New("dynnet: no live workers")

// handshakeTimeout bounds the HELLO exchange so a silent peer cannot
// hang coordinator setup.
const handshakeTimeout = 10 * time.Second

// workerConn is one registered worker connection.
type workerConn struct {
	id   string
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// alive is cleared when the connection is torn down; atomic
	// because the ctx-cancel watchdog closes connections from its own
	// goroutine while RunPass reads the flag.
	alive atomic.Bool
}

// Coordinator drives multi-process builds over a set of registered
// worker connections. It is the data-plane side of Build's
// WithRemoteWorkers option: each build pass ships a prototype state,
// streams shard updates, and merges the returned sketch blobs.
//
// A Coordinator serves one RunPass at a time (passes of one build are
// sequential by nature); it is not safe for concurrent RunPass calls.
type Coordinator struct {
	workers  []*workerConn
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

// ResolveNetwork maps a worker address to its network: "unix" for
// addresses with a unix: prefix or a path separator, "tcp" otherwise.
func ResolveNetwork(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return "tcp", rest
	}
	if strings.ContainsAny(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects to worker processes listening at addrs ("host:port",
// "unix:/path", or a bare socket path) and registers each one.
func Dial(ctx context.Context, addrs ...string) (*Coordinator, error) {
	var d net.Dialer
	conns := make([]net.Conn, 0, len(addrs))
	for _, a := range addrs {
		network, address := ResolveNetwork(a)
		conn, err := d.DialContext(ctx, network, address)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("dynnet: dial worker %s: %w", a, err)
		}
		conns = append(conns, conn)
	}
	return NewCoordinator(ctx, conns)
}

// Accept waits for count workers to connect to ln and register — the
// coordinator-listens topology, where workers dial in with HELLO.
func Accept(ctx context.Context, ln net.Listener, count int) (*Coordinator, error) {
	if count < 1 {
		return nil, fmt.Errorf("dynnet: accept: need at least 1 worker, got %d", count)
	}
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	conns := make([]net.Conn, 0, count)
	for len(conns) < count {
		conn, err := ln.Accept()
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("dynnet: accept worker: %w", err)
		}
		conns = append(conns, conn)
	}
	return NewCoordinator(ctx, conns)
}

// NewCoordinator performs the HELLO registration exchange on each
// established connection and returns a coordinator over the registered
// workers. Connections with a wrong protocol version (or a malformed
// HELLO) are refused with an ERROR frame and the whole setup fails —
// version skew is a deployment bug, not a runtime condition to paper
// over.
func NewCoordinator(ctx context.Context, conns []net.Conn) (*Coordinator, error) {
	if len(conns) == 0 {
		return nil, ErrNoWorkers
	}
	c := &Coordinator{}
	closeAll := func() {
		for _, conn := range conns {
			conn.Close()
		}
	}
	stop := context.AfterFunc(ctx, closeAll)
	defer stop()
	for i, conn := range conns {
		w := &workerConn{
			conn: conn,
			br:   bufio.NewReaderSize(conn, 1<<16),
			bw:   bufio.NewWriterSize(conn, 1<<16),
		}
		conn.SetDeadline(time.Now().Add(handshakeTimeout))
		f, nr, err := ReadFrame(w.br)
		c.bytesIn.Add(int64(nr))
		if err != nil {
			if errors.Is(err, ErrWrongVersion) {
				c.write(w, FrameError, EncodeError(ErrorMsg{
					Code: CodeWrongVersion,
					Msg:  fmt.Sprintf("coordinator speaks protocol version %d", ProtocolVersion),
				}))
			}
			closeAll()
			return nil, fmt.Errorf("dynnet: worker %d registration: %w", i, err)
		}
		if f.Type != FrameHello {
			closeAll()
			return nil, fmt.Errorf("%w: worker %d sent %v instead of HELLO", ErrBadFrame, i, f.Type)
		}
		h, err := DecodeHello(f.Payload)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dynnet: worker %d hello: %w", i, err)
		}
		w.id = h.ID
		if w.id == "" {
			w.id = fmt.Sprintf("worker-%d", i)
		}
		if err := c.write(w, FrameHello, EncodeHello(Hello{ID: "coordinator"})); err != nil {
			closeAll()
			return nil, fmt.Errorf("dynnet: worker %s hello ack: %w", w.id, err)
		}
		conn.SetDeadline(time.Time{})
		w.alive.Store(true)
		c.workers = append(c.workers, w)
	}
	if ctx.Err() != nil {
		closeAll()
		return nil, ctx.Err()
	}
	return c, nil
}

// Close tears down every worker connection.
func (c *Coordinator) Close() error {
	var first error
	for _, w := range c.workers {
		if err := w.conn.Close(); err != nil && first == nil {
			first = err
		}
		w.alive.Store(false)
	}
	return first
}

// Live returns the number of workers still considered healthy.
func (c *Coordinator) Live() int {
	n := 0
	for _, w := range c.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// WorkerIDs returns the registered worker identifiers, in order.
func (c *Coordinator) WorkerIDs() []string {
	ids := make([]string, len(c.workers))
	for i, w := range c.workers {
		ids[i] = w.id
	}
	return ids
}

// Bytes returns the cumulative bytes put on and read off the wire —
// the bytes-on-wire figure the coordinator's progress output reports.
func (c *Coordinator) Bytes() (out, in int64) {
	return c.bytesOut.Load(), c.bytesIn.Load()
}

func (c *Coordinator) write(w *workerConn, t FrameType, payload []byte) error {
	n, err := WriteFrame(w.bw, t, payload)
	c.bytesOut.Add(int64(n))
	return err
}

func (c *Coordinator) read(w *workerConn) (Frame, error) {
	f, n, err := ReadFrame(w.br)
	c.bytesIn.Add(int64(n))
	return f, err
}

func (c *Coordinator) markDead(w *workerConn) {
	w.alive.Store(false)
	w.conn.Close()
}

// Pass describes one build pass to run across the workers.
type Pass struct {
	// Kind selects the worker-side state type.
	Kind StateKind
	// Blob is the coordinator's marshaled prototype state; every worker
	// decodes it into an identical-randomness state.
	Blob []byte
	// Src is the stream to shard across workers. Ignored in Local mode.
	Src stream.Source
	// Local makes every worker ingest its own local shard source
	// instead of streamed updates.
	Local bool
	// N is the vertex count.
	N int
	// Batch is the updates-per-frame granularity (default
	// stream.DefaultBatchSize).
	Batch int
	// Seq is the pass sequence number within the build.
	Seq int
	// Progress, when non-nil, receives the size of every dispatched (or
	// remotely ingested) update batch. When a dropped worker's shard is
	// re-replayed, a negative correction for the batches already
	// reported to the dead worker is emitted first, so the cumulative
	// sum stays exactly the number of updates in the pass.
	Progress func(updates int)
	// Merge folds one worker's returned state blob into the
	// coordinator's state; called once per shard, in shard order.
	Merge func(shard int, blob []byte) error
	// Collect, when non-nil, replaces Merge: once every shard's SKETCH
	// blob has been collected it is called exactly once with the blobs
	// in shard order, letting the caller decode and fold them with a
	// parallel tree merge instead of the linear per-shard fold. Because
	// every state merge is an exact commutative group operation, any
	// fold shape produces the same state bit for bit.
	Collect func(blobs [][]byte) error
}

// RunPass executes one pass: ASSIGN the prototype to every live
// worker, stream the shard updates (round-robin, matching
// stream.Shard's assignment), FLUSH, collect the SKETCH blobs, and
// merge them in shard order.
//
// Failure handling: a worker whose connection drops mid-pass is marked
// dead and its shard is re-replayed in full to a surviving worker —
// legal because the source is replayable and the sketches are linear
// (the dead worker's partial state is simply discarded). A worker that
// *reports* a typed ERROR (bad update, non-replayable local source)
// fails the pass instead: the same error would recur on any worker.
//
// Cancelling ctx tears down every connection, unblocking all reads and
// writes; RunPass then returns ctx.Err().
func (c *Coordinator) RunPass(ctx context.Context, p Pass) error {
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	wrapCtx := func(err error) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if p.Batch <= 0 {
		p.Batch = stream.DefaultBatchSize
	}

	live := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		if w.alive.Load() {
			live = append(live, w)
		}
	}
	W := len(live)
	if W == 0 {
		return ErrNoWorkers
	}

	assign := EncodeAssign(Assign{Kind: p.Kind, Local: p.Local, Seq: p.Seq, N: p.N, Blob: p.Blob})
	counted := make([]int64, W) // updates reported per shard (progress exactness on failover)
	var failed []int            // shard indexes needing re-replay
	for i, w := range live {
		if err := c.write(w, FrameAssign, assign); err != nil {
			c.markDead(w)
			failed = append(failed, i)
		}
	}

	// Stream the shards: one replay of the source, update i going to
	// shard i mod W — exactly stream.Shard's round-robin split, so a
	// failed shard can later be re-replayed from a Shard view.
	if !p.Local {
		if p.Src == nil {
			return fmt.Errorf("dynnet: streamed pass without a source")
		}
		bufs := make([][]stream.Update, W)
		for i := range bufs {
			bufs[i] = make([]stream.Update, 0, p.Batch)
		}
		var payload []byte
		send := func(s int) error {
			w := live[s]
			payload = AppendUpdates(payload[:0], bufs[s])
			nu := len(bufs[s])
			bufs[s] = bufs[s][:0]
			if err := c.write(w, FrameUpdates, payload); err != nil {
				c.markDead(w)
				failed = append(failed, s)
				return nil // shard recovered later by re-replay
			}
			counted[s] += int64(nu)
			if p.Progress != nil {
				p.Progress(nu)
			}
			return nil
		}
		pos := 0
		err := p.Src.Replay(func(u stream.Update) error {
			s := pos % W
			pos++
			if !live[s].alive.Load() {
				return nil
			}
			bufs[s] = append(bufs[s], u)
			if len(bufs[s]) >= p.Batch {
				if err := ctx.Err(); err != nil {
					return err
				}
				return send(s)
			}
			return nil
		})
		if err != nil {
			return wrapCtx(fmt.Errorf("dynnet: pass %d replay: %w", p.Seq, err))
		}
		for s := range bufs {
			if len(bufs[s]) > 0 && live[s].alive.Load() {
				if err := send(s); err != nil {
					return wrapCtx(err)
				}
			}
		}
	}

	// FLUSH and collect, in shard order.
	blobs := make([][]byte, W)
	for i, w := range live {
		if !w.alive.Load() {
			continue
		}
		if err := c.write(w, FrameFlush, nil); err != nil {
			c.markDead(w)
			failed = append(failed, i)
		}
	}
	for i, w := range live {
		if !w.alive.Load() {
			continue
		}
		blob, err := c.collectSketch(w, p)
		switch {
		case err == nil:
			blobs[i] = blob
		case errors.As(err, new(*remoteError)):
			return wrapCtx(fmt.Errorf("dynnet: worker %s, shard %d/%d: %w", w.id, i, W, err))
		default:
			c.markDead(w)
			failed = append(failed, i)
		}
	}

	// Re-replay dropped shards to survivors.
	for _, s := range failed {
		if blobs[s] != nil {
			continue
		}
		blob, err := c.recoverShard(ctx, p, s, W, counted[s])
		if err != nil {
			return wrapCtx(fmt.Errorf("dynnet: shard %d/%d lost: %w", s, W, err))
		}
		blobs[s] = blob
	}

	for s, blob := range blobs {
		if blob == nil {
			return fmt.Errorf("dynnet: shard %d/%d produced no state", s, W)
		}
	}
	if p.Collect != nil {
		if err := p.Collect(blobs); err != nil {
			return wrapCtx(fmt.Errorf("dynnet: merge %d shards: %w", W, err))
		}
		return wrapCtx(ctx.Err())
	}
	for s, blob := range blobs {
		if err := p.Merge(s, blob); err != nil {
			return fmt.Errorf("dynnet: merge shard %d/%d: %w", s, W, err)
		}
	}
	return wrapCtx(ctx.Err())
}

// remoteError wraps an ERROR frame from a worker: a deliberate, typed
// report, not a connection failure — re-replaying elsewhere would hit
// the same condition, so it fails the pass.
type remoteError struct{ err error }

func (e *remoteError) Error() string { return e.err.Error() }
func (e *remoteError) Unwrap() error { return e.err }

// collectSketch reads one worker's end-of-pass response.
func (c *Coordinator) collectSketch(w *workerConn, p Pass) ([]byte, error) {
	f, err := c.read(w)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FrameSketch:
		m, err := DecodeSketch(f.Payload)
		if err != nil {
			return nil, &remoteError{err}
		}
		if p.Local && p.Progress != nil && m.Updates > 0 {
			p.Progress(int(m.Updates))
		}
		return m.Blob, nil
	case FrameError:
		e, derr := DecodeError(f.Payload)
		if derr != nil {
			return nil, &remoteError{derr}
		}
		return nil, &remoteError{e.Err()}
	default:
		return nil, &remoteError{fmt.Errorf("%w: expected SKETCH, got %v", ErrBadFrame, f.Type)}
	}
}

// recoverShard re-replays shard s (of the round-robin split into W) to
// a surviving worker. The shard view replays the base source, so this
// requires a replayable source; local-shard passes cannot be recovered
// (the data lived with the dead worker).
func (c *Coordinator) recoverShard(ctx context.Context, p Pass, s, W int, already int64) ([]byte, error) {
	if p.Local {
		return nil, fmt.Errorf("dynnet: worker with a local shard died; its data is unreachable")
	}
	if !stream.CanReplay(p.Src) {
		return nil, fmt.Errorf("dynnet: cannot re-replay shard: %w", stream.ErrNotReplayable)
	}
	shard := &stream.Shard{Base: p.Src, Index: s, Count: W}
	assign := EncodeAssign(Assign{Kind: p.Kind, Local: false, Seq: p.Seq, N: p.N, Blob: p.Blob})
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var w *workerConn
		for _, cand := range c.workers {
			if cand.alive.Load() {
				w = cand
				break
			}
		}
		if w == nil {
			return nil, ErrNoWorkers
		}
		// Cancel out updates already reported for this shard (the
		// partial stream to the dead worker, or an earlier failed
		// recovery attempt), so the full re-replay leaves the
		// cumulative progress count exact.
		if p.Progress != nil && already != 0 {
			p.Progress(int(-already))
		}
		already = 0
		blob, err := c.replayShardTo(ctx, w, shard, assign, p, &already)
		if err == nil {
			return blob, nil
		}
		var re *remoteError
		if errors.As(err, &re) {
			return nil, err
		}
		c.markDead(w) // this survivor died too; try the next one
	}
}

// replayShardTo runs one complete ASSIGN/UPDATES/FLUSH/SKETCH exchange
// of a single shard with a single worker.
func (c *Coordinator) replayShardTo(ctx context.Context, w *workerConn, shard stream.Source, assign []byte, p Pass, counted *int64) ([]byte, error) {
	if err := c.write(w, FrameAssign, assign); err != nil {
		return nil, err
	}
	var payload []byte
	err := stream.ReplayBatches(shard, p.Batch, func(b []stream.Update) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload = AppendUpdates(payload[:0], b)
		if err := c.write(w, FrameUpdates, payload); err != nil {
			return err
		}
		*counted += int64(len(b))
		if p.Progress != nil {
			p.Progress(len(b))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.write(w, FrameFlush, nil); err != nil {
		return nil, err
	}
	return c.collectSketch(w, p)
}
