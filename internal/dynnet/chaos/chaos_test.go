package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestPassthroughAndShortWrite(t *testing.T) {
	for _, cfg := range []Config{
		{Kind: None},
		{Kind: ShortWrite, Seed: 42},
		{Kind: Delay, Delay: time.Millisecond},
	} {
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			a, b := pipePair()
			defer a.Close()
			defer b.Close()
			w := Wrap(a, cfg)
			msg := bytes.Repeat([]byte("fault-injection"), 20)
			go func() {
				w.Write(msg)
				w.Close()
			}()
			got, err := io.ReadAll(b)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("%v corrupted a lossless fault: got %d bytes, want %d", cfg.Kind, len(got), len(msg))
			}
		})
	}
}

func TestDisconnectCutsAtBudget(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	w := Wrap(a, Config{Kind: Disconnect, ByteBudget: 10})
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	n, err := w.Write(bytes.Repeat([]byte{0xab}, 64))
	if err == nil {
		t.Fatal("write past the budget did not fail")
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before disconnect, want exactly the 10-byte budget", n)
	}
	<-done
	if len(got) != 10 {
		t.Fatalf("peer saw %d bytes, want 10", len(got))
	}
	// The fault is sticky: the connection stays dead.
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write on a disconnected chaos conn succeeded")
	}
}

func TestBitFlipCorruptsAfterBudget(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	w := Wrap(a, Config{Kind: BitFlip, Seed: 7, ByteBudget: 8})
	msg := make([]byte, 32)
	go func() {
		w.Write(msg)
		w.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(msg) {
		t.Fatalf("got %d bytes, want %d", len(got), len(msg))
	}
	if !bytes.Equal(got[:8], msg[:8]) {
		t.Fatal("bytes before the budget were corrupted")
	}
	if bytes.Equal(got[8:], msg[8:]) {
		t.Fatal("no bit was flipped after the budget")
	}
}

func TestBitFlipIsDeterministic(t *testing.T) {
	run := func() []byte {
		a, b := pipePair()
		defer b.Close()
		w := Wrap(a, Config{Kind: BitFlip, Seed: 99, ByteBudget: 4})
		go func() {
			w.Write(make([]byte, 24))
			w.Close()
		}()
		got, _ := io.ReadAll(b)
		return got
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical seeds produced different corruption")
	}
}

func TestStallHonorsDeadline(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, Config{Kind: Stall, ByteBudget: 0}) // stalled from byte zero
	if err := w.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatalf("set deadline: %v", err)
	}
	start := time.Now()
	_, err := w.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read returned %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("stalled read blocked %v despite the deadline", d)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stall error %v is not a net.Error timeout", err)
	}
}

func TestStallUnblocksOnClose(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	w := Wrap(a, Config{Kind: Stall, ByteBudget: 0})
	errc := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("stalled read returned %v after close, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read did not unblock on close")
	}
}
