// Package chaos is a deterministic fault injector for net.Conn. It
// wraps a connection and perturbs its reads and writes according to a
// seeded schedule — added latency, indefinite stalls, short writes,
// mid-frame disconnects, bit flips — so the dynnet failure paths can
// be driven repeatably from tests: the same Config produces the same
// fault at the same byte offset on every run.
//
// The faults map onto the failure modes the protocol must survive:
//
//   - Delay: fixed per-operation latency (slow network; exercises
//     nothing but patience — results must stay bit-identical).
//   - Stall: after ByteBudget bytes the connection goes silent without
//     closing (hung peer; the coordinator's per-frame deadlines must
//     declare it dead rather than hang the pass).
//   - ShortWrite: every write is split into small chunks (fragmented
//     TCP; semantically lossless, must stay bit-identical).
//   - Disconnect: after ByteBudget bytes the connection drops, cutting
//     the current frame mid-payload (crashed peer; the reader sees a
//     truncated frame, the coordinator fails the worker over).
//   - BitFlip: after ByteBudget bytes one bit of each written chunk is
//     flipped (corrupted link; the frame CRC must catch every flip —
//     never silent corruption).
//
// A stalled operation honors the deadlines set through the wrapper
// (SetDeadline and friends are tracked before being forwarded), so a
// read deadline converts a stall into os.ErrDeadlineExceeded exactly
// as a real hung socket would.
package chaos

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Kind selects the injected fault.
type Kind int

const (
	// None passes everything through unchanged.
	None Kind = iota
	// Delay sleeps Config.Delay before every read and write.
	Delay
	// Stall blocks reads and writes forever once ByteBudget total bytes
	// have passed, honoring deadlines set via the wrapper.
	Stall
	// ShortWrite fragments every write into chunks of 1-8 bytes.
	ShortWrite
	// Disconnect closes the connection once ByteBudget total bytes have
	// passed, truncating any write in flight.
	Disconnect
	// BitFlip flips one seeded-random bit per written chunk once
	// ByteBudget total bytes have passed.
	BitFlip
)

// String names the fault kind (test matrix labels).
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case ShortWrite:
		return "short-write"
	case Disconnect:
		return "disconnect"
	case BitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", int(k))
	}
}

// Config is a deterministic fault schedule.
type Config struct {
	// Kind selects the fault.
	Kind Kind
	// Seed drives every random choice (bit positions, chunk sizes);
	// identical seeds replay identical faults.
	Seed uint64
	// Delay is the per-operation latency of Kind Delay.
	Delay time.Duration
	// ByteBudget is the total traffic (reads + writes through the
	// wrapper) after which Stall, Disconnect, or BitFlip triggers.
	// Choosing a budget inside a frame cuts that frame mid-payload.
	ByteBudget int64
}

// Conn is a net.Conn with the configured fault injected. All methods
// are safe for the usual one-reader/one-writer connection use.
type Conn struct {
	inner net.Conn
	cfg   Config

	mu     sync.Mutex
	rng    uint64
	total  int64 // bytes passed through, both directions
	rd, wd time.Time
	closed chan struct{}
	once   sync.Once
}

// Wrap returns conn with the fault schedule of cfg injected.
func Wrap(conn net.Conn, cfg Config) *Conn {
	return &Conn{inner: conn, cfg: cfg, rng: cfg.Seed, closed: make(chan struct{})}
}

// next steps the seeded generator (splitmix64). Callers hold c.mu.
func (c *Conn) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// injectedError marks errors produced by the injector itself (as
// opposed to errors of the underlying connection).
type injectedError struct{ msg string }

func (e *injectedError) Error() string { return "chaos: " + e.msg }

// Timeout makes an injected stall satisfy net.Error's timeout check
// like a real deadline miss would.
func (e *injectedError) Timeout() bool   { return e.msg == "stall timed out" }
func (e *injectedError) Temporary() bool { return false }

// tripped reports whether the byte budget has been consumed. Callers
// hold c.mu.
func (c *Conn) tripped() bool { return c.total >= c.cfg.ByteBudget }

// stall blocks until the given deadline (zero: forever) or until the
// connection is closed.
func (c *Conn) stall(deadline time.Time) error {
	var timer <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-timer:
		return fmt.Errorf("%w: %v", os.ErrDeadlineExceeded, &injectedError{"stall timed out"})
	case <-c.closed:
		return net.ErrClosed
	}
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	kind := c.cfg.Kind
	stalled := kind == Stall && c.tripped()
	dropped := kind == Disconnect && c.tripped()
	rd := c.rd
	c.mu.Unlock()
	switch {
	case kind == Delay:
		time.Sleep(c.cfg.Delay)
	case stalled:
		return 0, c.stall(rd)
	case dropped:
		c.Close()
		return 0, &injectedError{"injected disconnect"}
	}
	n, err := c.inner.Read(b)
	c.mu.Lock()
	c.total += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		c.mu.Lock()
		kind := c.cfg.Kind
		stalled := kind == Stall && c.tripped()
		dropped := kind == Disconnect && c.tripped()
		wd := c.wd
		// Chunk the remaining bytes: short writes use tiny seeded
		// chunks; a pending disconnect or bit flip cuts at the budget
		// boundary so the fault lands at a deterministic byte offset.
		chunk := len(b) - written
		switch {
		case kind == ShortWrite:
			if m := int(c.next()%8) + 1; m < chunk {
				chunk = m
			}
		case (kind == Disconnect || kind == BitFlip) && !c.tripped():
			if left := int(c.cfg.ByteBudget - c.total); left < chunk {
				chunk = left
			}
		case kind == BitFlip:
			// Flip one bit of this chunk on a copy; the original
			// buffer belongs to the caller.
			bit := c.next() % uint64(chunk*8)
			mut := append([]byte(nil), b[written:written+chunk]...)
			mut[bit/8] ^= 1 << (bit % 8)
			c.mu.Unlock()
			n, err := c.inner.Write(mut)
			c.mu.Lock()
			c.total += int64(n)
			c.mu.Unlock()
			written += n
			if err != nil {
				return written, err
			}
			continue
		}
		c.mu.Unlock()
		switch {
		case kind == Delay && written == 0:
			time.Sleep(c.cfg.Delay)
		case stalled:
			return written, c.stall(wd)
		case dropped:
			c.Close()
			return written, &injectedError{"injected disconnect"}
		}
		n, err := c.inner.Write(b[written : written+chunk])
		c.mu.Lock()
		c.total += int64(n)
		c.mu.Unlock()
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn, tracking the deadline so injected
// stalls honor it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd, c.wd = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wd = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
