package dynnet

import (
	"fmt"

	"dynstream/internal/agm"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

// StateKind selects which sketch state a worker instantiates for a
// pass. The prototype blob in the ASSIGN frame carries the full
// configuration (seed, geometry, and — for two-pass states — the
// cluster structure and phase), so the kind only has to name the
// concrete type.
type StateKind uint8

// The wire-shippable sketch states (every Build target's ingest state).
const (
	KindForest   StateKind = 1 // agm.Sketch (spanning forest)
	KindKConn    StateKind = 2 // agm.KConnectivity
	KindBip      StateKind = 3 // agm.Bipartiteness
	KindMSF      StateKind = 4 // agm.MSF
	KindAdditive StateKind = 5 // spanner.Additive
	KindTwoPass  StateKind = 6 // spanner.TwoPass (pass routed by phase)
	KindGrid     StateKind = 7 // sparsify.Grid (pass routed by phase)
)

func (k StateKind) String() string {
	switch k {
	case KindForest:
		return "forest"
	case KindKConn:
		return "kconn"
	case KindBip:
		return "bipartiteness"
	case KindMSF:
		return "msf"
	case KindAdditive:
		return "additive"
	case KindTwoPass:
		return "twopass"
	case KindGrid:
		return "grid"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// workerState is what a worker drives during one pass: batched ingest
// plus marshaling the final state for the SKETCH frame.
type workerState interface {
	AddBatch(batch []stream.Update) error
	MarshalBinary() ([]byte, error)
}

// aggState adapts the AGM-family states whose AddBatch cannot fail.
type aggState[S interface {
	AddBatch([]stream.Update)
	MarshalBinary() ([]byte, error)
}] struct{ s S }

func (a aggState[S]) AddBatch(b []stream.Update) error { a.s.AddBatch(b); return nil }
func (a aggState[S]) MarshalBinary() ([]byte, error)   { return a.s.MarshalBinary() }

// twoPassState routes AddBatch by the decoded state's phase, so one
// kind covers both passes: the coordinator ships a phase-0 prototype
// for pass 1 and the post-EndPass1 (phase-1) state for pass 2.
type twoPassState struct{ tp *spanner.TwoPass }

func (s twoPassState) AddBatch(b []stream.Update) error {
	if s.tp.Phase() == 0 {
		return s.tp.Pass1AddBatch(b)
	}
	return s.tp.Pass2AddBatch(b)
}
func (s twoPassState) MarshalBinary() ([]byte, error) { return s.tp.MarshalBinary() }

// gridState is twoPassState for the sparsifier's oracle grid.
type gridState struct{ g *sparsify.Grid }

func (s gridState) AddBatch(b []stream.Update) error {
	if s.g.Phase() == 0 {
		return s.g.Pass1AddBatch(b)
	}
	return s.g.Pass2AddBatch(b)
}
func (s gridState) MarshalBinary() ([]byte, error) { return s.g.MarshalBinary() }

// newWorkerState decodes the coordinator's prototype blob into a fresh
// state of the given kind, ready to ingest this worker's shard. The
// decoded state carries the same randomness as the coordinator's, so
// the shipped-back state merges exactly. The ASSIGN vertex count is
// cross-checked against the prototype for every kind: UPDATES records
// are validated against the assigned n, so a mismatch would otherwise
// let an out-of-range endpoint panic the long-lived worker process
// instead of drawing a typed ERROR.
func newWorkerState(kind StateKind, n int, blob []byte) (workerState, error) {
	var st workerState
	var protoN int
	switch kind {
	case KindForest:
		s := &agm.Sketch{}
		if err := s.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = aggState[*agm.Sketch]{s}, s.N()
	case KindKConn:
		s := &agm.KConnectivity{}
		if err := s.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = aggState[*agm.KConnectivity]{s}, s.N()
	case KindBip:
		s := &agm.Bipartiteness{}
		if err := s.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = aggState[*agm.Bipartiteness]{s}, s.N()
	case KindMSF:
		s := &agm.MSF{}
		if err := s.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = aggState[*agm.MSF]{s}, s.N()
	case KindAdditive:
		s := &spanner.Additive{}
		if err := s.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = s, s.N()
	case KindTwoPass:
		tp := &spanner.TwoPass{}
		if err := tp.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = twoPassState{tp}, tp.N()
	case KindGrid:
		g := &sparsify.Grid{}
		if err := g.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		st, protoN = gridState{g}, g.N()
	default:
		return nil, fmt.Errorf("dynnet: unknown state kind %d", kind)
	}
	if protoN != n {
		return nil, fmt.Errorf("dynnet: prototype has n=%d, assign says n=%d", protoN, n)
	}
	return st, nil
}
