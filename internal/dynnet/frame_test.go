package dynnet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"dynstream/internal/stream"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1<<16)}
	for _, p := range payloads {
		for ft := FrameHello; ft <= FrameError; ft++ {
			enc := AppendFrame(nil, ft, p)
			f, n, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)))
			if err != nil {
				t.Fatalf("type %v payload %d bytes: %v", ft, len(p), err)
			}
			if n != len(enc) {
				t.Fatalf("consumed %d of %d bytes", n, len(enc))
			}
			if f.Type != ft || !bytes.Equal(f.Payload, p) {
				t.Fatalf("round trip mangled frame: %v/%d bytes", f.Type, len(f.Payload))
			}
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	enc := AppendFrame(nil, FrameUpdates, []byte("payload bytes"))

	// Any single flipped byte must be caught (CRC, version, or type).
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Fatalf("flipped byte %d went undetected", i)
		}
	}
	// Truncation at every boundary.
	for i := 1; i < len(enc); i++ {
		if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc[:i]))); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", i)
		}
	}
	// Wrong version is its own typed error.
	bad := append([]byte(nil), enc...)
	bad[0] = ProtocolVersion + 1
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, ErrWrongVersion) {
		t.Fatalf("wrong version: got %v, want ErrWrongVersion", err)
	}
	// Oversized declared length must be rejected without allocating.
	huge := []byte{ProtocolVersion, byte(FrameUpdates), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized length: got %v, want ErrBadFrame", err)
	}
	// Clean EOF at a frame boundary is io.EOF, not corruption.
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatalf("empty input: got %v, want io.EOF", err)
	}
}

func TestUpdatesPayloadRoundTrip(t *testing.T) {
	batch := []stream.Update{
		{U: 0, V: 1, Delta: 1, W: 1},
		{U: 3, V: 2, Delta: -1, W: 1},
		{U: 100000, V: 7, Delta: 1, W: 2.5},
		{U: 5, V: 6, Delta: -1, W: 0.125},
	}
	n := 1 << 20
	enc := AppendUpdates(nil, batch)
	dec, err := DecodeUpdates(enc, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(batch) {
		t.Fatalf("decoded %d of %d updates", len(dec), len(batch))
	}
	for i, u := range batch {
		if dec[i] != u.Canon() {
			t.Errorf("update %d: got %+v, want %+v", i, dec[i], u.Canon())
		}
	}
	// Validation runs on decode: out-of-range endpoints are refused.
	if _, err := DecodeUpdates(enc, 4, nil); err == nil {
		t.Error("accepted updates beyond the vertex count")
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	a := Assign{Kind: KindTwoPass, Local: true, Seq: 3, N: 42, Blob: []byte("proto")}
	got, err := DecodeAssign(EncodeAssign(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != a.Kind || got.Local != a.Local || got.Seq != a.Seq || got.N != a.N || !bytes.Equal(got.Blob, a.Blob) {
		t.Fatalf("assign round trip: %+v vs %+v", got, a)
	}
	h, err := DecodeHello(EncodeHello(Hello{ID: "w7"}))
	if err != nil || h.ID != "w7" {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}
	s, err := DecodeSketch(EncodeSketch(SketchMsg{Updates: 99, Blob: []byte{1, 2}}))
	if err != nil || s.Updates != 99 || !bytes.Equal(s.Blob, []byte{1, 2}) {
		t.Fatalf("sketch round trip: %+v, %v", s, err)
	}
	e, err := DecodeError(EncodeError(ErrorMsg{Code: CodeNotReplayable, Msg: "no rewind"}))
	if err != nil || e.Code != CodeNotReplayable || e.Msg != "no rewind" {
		t.Fatalf("error round trip: %+v, %v", e, err)
	}
	if !errors.Is(e.Err(), stream.ErrNotReplayable) {
		t.Fatalf("CodeNotReplayable did not map to stream.ErrNotReplayable: %v", e.Err())
	}
}

// FuzzFrameDecode feeds hostile bytes to the frame decoder: it must
// never panic, never allocate an oversized payload, and on success the
// re-encoded frame must round-trip.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, FrameHello, EncodeHello(Hello{ID: "w"})))
	f.Add(AppendFrame(nil, FrameUpdates, AppendUpdates(nil, []stream.Update{{U: 0, V: 1, Delta: 1, W: 1}})))
	f.Add(AppendFrame(nil, FrameAssign, EncodeAssign(Assign{Kind: KindForest, Seq: 1, N: 8})))
	f.Add(AppendFrame(nil, FrameError, EncodeError(ErrorMsg{Code: CodeInternal, Msg: "x"})))
	f.Add([]byte{ProtocolVersion, byte(FrameFlush), 0})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		enc := AppendFrame(nil, fr.Type, fr.Payload)
		back, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if back.Type != fr.Type || !bytes.Equal(back.Payload, fr.Payload) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}

// FuzzUpdatesDecode feeds hostile bytes to the UPDATES payload decoder.
func FuzzUpdatesDecode(f *testing.F) {
	f.Add(AppendUpdates(nil, []stream.Update{{U: 0, V: 1, Delta: 1, W: 1}, {U: 2, V: 3, Delta: -1, W: 7}}), 16)
	f.Add([]byte{0}, 4)
	f.Add([]byte{0xff, 0xff, 0xff}, 4)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 1 || n > 1<<20 {
			return
		}
		batch, err := DecodeUpdates(data, n, nil)
		if err != nil {
			return
		}
		// Whatever decodes must survive the shared validation gate.
		for _, u := range batch {
			if _, err := stream.CheckUpdate(u, n); err != nil {
				t.Fatalf("decoder passed an invalid update %+v: %v", u, err)
			}
		}
		// And re-encode losslessly.
		enc := AppendUpdates(nil, batch)
		back, err := DecodeUpdates(enc, n, nil)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		for i := range batch {
			if back[i] != batch[i] {
				t.Fatal("re-encode round trip mismatch")
			}
		}
	})
}
