package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestMapOptsOrdering(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := Default().WithWorkers(workers)
		out, err := MapOpts(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapOptsFirstErrorByIndex(t *testing.T) {
	p := Default().WithWorkers(4)
	_, err := MapOpts(p, 50, func(i int) (int, error) {
		if i == 7 || i == 31 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail 7" {
		t.Fatalf("got %v, want the first error by index", err)
	}
}

func TestForEachWorkerOptsSlots(t *testing.T) {
	const workers = 4
	p := Default().WithWorkers(workers)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := ForEachWorkerOpts(p, 64, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker slot %d out of range", w)
		}
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 64 {
		t.Fatalf("ran %d indices, want 64", len(seen))
	}
}

func TestForEachWorkerOptsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPolicy(ctx, 1, 0, nil)
	err := ForEachWorkerOpts(p, 10, func(_, _ int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestTreeMergeEqualsLinearFold: for commutative group merges (the
// only kind in this repository) the tree fold must equal the serial
// left fold exactly.
func TestTreeMergeEqualsLinearFold(t *testing.T) {
	for n := 1; n <= 33; n++ {
		items := make([]*[]int, n)
		var want []int
		for i := range items {
			v := []int{i, 10 * i}
			items[i] = &v
			want = append(want, v...)
		}
		merge := func(dst, src *[]int) error { *dst = append(*dst, *src...); return nil }
		got, err := TreeMerge(Default().WithWorkers(4), items, merge)
		if err != nil {
			t.Fatal(err)
		}
		// Multiset equality is what linearity guarantees; for the
		// adjacent-pair schedule the concatenation order is exactly the
		// left fold's as well.
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("n=%d: tree fold %v, linear fold %v", n, *got, want)
		}
	}
}

func TestTreeMergeEmptyAndError(t *testing.T) {
	got, err := TreeMerge(Default(), nil, func(dst, src *int) error { return nil })
	if err != nil || got != nil {
		t.Fatalf("empty: got (%v, %v), want (nil, nil)", got, err)
	}
	items := []*int{new(int), new(int), new(int)}
	wantErr := errors.New("boom")
	_, err = TreeMerge(Default().WithWorkers(2), items, func(dst, src *int) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestDecodePolicy(t *testing.T) {
	p := NewPolicy(nil, 4, 0, nil)
	if got := p.DecodeWorkers(); got != 4 {
		t.Fatalf("default decode workers = %d, want 4 (follow ingest)", got)
	}
	d := p.WithDecode(2)
	if got := d.DecodeWorkers(); got != 2 {
		t.Fatalf("decode workers = %d, want 2", got)
	}
	if got := d.DecodePolicy().Workers(); got != 2 {
		t.Fatalf("decode policy workers = %d, want 2", got)
	}
	if got := d.Workers(); got != 4 {
		t.Fatalf("ingest workers = %d, want 4", got)
	}
}
