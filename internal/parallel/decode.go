package parallel

import "sync"

// The decode engine: deterministic fan-out/fold primitives for the
// extraction phase of every sketch in this repository. Ingest made the
// states linear functions of the stream; decode (Borůvka rounds,
// cluster construction, table peeling, coordinator state merges) is a
// pure function of those states, built from many independent
// per-component / per-cell / per-copy sub-decodes. The primitives here
// fan that work across a Policy's workers while keeping the output
// bit-identical to the serial pass:
//
//   - results are placed by index (MapOpts), never by completion
//     order, so callers can apply them in the serial iteration order;
//   - per-worker scratch state is addressed by a stable worker slot
//     (ForEachWorkerOpts), so decode loops can reuse sketch buffers
//     instead of cloning per sub-decode;
//   - state folds pair adjacent items (TreeMerge); every Merge in this
//     repository is an exact commutative group operation (int64 and
//     GF(2^61−1) addition), so the tree fold equals the linear fold
//     bit for bit while running its levels concurrently.

// MapOpts runs fn(0..n-1) on up to the policy's workers and collects
// the results indexed by i. Placement is deterministic (slot i holds
// fn(i)'s result regardless of scheduling); the first error by index
// is returned, matching a serial loop's failure.
func MapOpts[T any](p *Policy, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachWorkerOpts(p, n, func(_, i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachWorkerOpts is ForEachOpts with the worker slot exposed: fn is
// invoked as fn(worker, i) where worker ∈ [0, Workers()) identifies
// the goroutine running the call. Callers use the slot to address
// per-worker scratch state (a reusable sketch buffer) without locking.
// With one worker the indices run inline, in order, with no goroutine
// machinery — but with the same contract as the concurrent path: every
// index runs even after a failure (only cancellation skips fn), and
// the first error by index is returned, so side-effecting callbacks
// leave identical state behind at any worker count.
func ForEachWorkerOpts(p *Policy, n int, fn func(worker, i int) error) error {
	if err := p.validate(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			err := p.ctx.Err()
			if err == nil {
				err = fn(0, i)
			}
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				if err := p.ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// ForEachWorkerSubset is ForEachWorkerOpts restricted to an explicit
// index subset: fn(worker, idxs[j]) runs for every j, fanned across
// the policy's workers. It is the dirty-subset primitive of
// incremental decode — a cache-aware extraction first partitions its
// index space into hits and misses serially (cheap generation-counter
// comparisons), then fans only the misses out here, so a re-query
// after a small churn touches a handful of components instead of all
// of them. The contract matches ForEachWorkerOpts: every listed index
// runs even after a failure, and the first error in idxs order wins.
func ForEachWorkerSubset(p *Policy, idxs []int, fn func(worker, i int) error) error {
	return ForEachWorkerOpts(p, len(idxs), func(w, j int) error {
		return fn(w, idxs[j])
	})
}

// TreeMerge folds items into items[0] with a parallel binary tree:
// each level merges items[i] ← items[i+stride] for stride-aligned i on
// the policy's workers, doubling the stride until one state remains.
// The pairing is a fixed function of len(items), and every merge in
// this repository is an exact commutative group operation, so the
// result is bit-identical to the serial left fold — in ⌈log2 n⌉
// concurrent levels instead of n−1 sequential merges. Items must not
// be aliased; merged-away entries are left in place but must not be
// reused.
func TreeMerge[S any](p *Policy, items []S, merge func(dst, src S) error) (S, error) {
	var zero S
	if err := p.validate(); err != nil {
		return zero, err
	}
	if len(items) == 0 {
		return zero, nil
	}
	for stride := 1; stride < len(items); stride *= 2 {
		var pairs []int
		for i := 0; i+stride < len(items); i += 2 * stride {
			pairs = append(pairs, i)
		}
		err := ForEachWorkerOpts(p, len(pairs), func(_, k int) error {
			i := pairs[k]
			return merge(items[i], items[i+stride])
		})
		if err != nil {
			return zero, err
		}
	}
	return items[0], nil
}
