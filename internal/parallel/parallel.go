// Package parallel provides the concurrent sharded-ingest machinery
// that turns the repository's linear sketches into multi-core
// pipelines. Every construction here is a linear function of the update
// stream, so a stream split into P shards, ingested into P independent
// states built from the same seed, and merged yields a state identical
// to single-threaded ingestion — the distributed-servers setting of the
// paper's introduction, realized as goroutines.
package parallel

import (
	"fmt"
	"sync"

	"dynstream/internal/stream"
)

// State is a linear sketch state that can ingest stream updates and be
// merged with another state built from the same randomness.
type State[S any] interface {
	AddUpdate(stream.Update)
	Merge(S) error
}

// BatchState is a linear sketch state that can ingest whole update
// batches — the fast path: one virtual dispatch and one shard-replay
// round trip per batch instead of per update.
type BatchState[S any] interface {
	AddBatch([]stream.Update)
	Merge(S) error
}

// Ingest splits st into `workers` round-robin shards, feeds each shard
// into its own fresh state on its own goroutine, and merges the
// per-shard states into one. newState must return states built from
// identical randomness (same seed and parameters) or the merge will
// fail. The merged state is identical to single-threaded ingestion of
// the whole stream, because every State implementation is a linear
// sketch whose update operations are commutative group operations.
func Ingest[S State[S]](st stream.Stream, workers int, newState func() S) (S, error) {
	return IngestFunc(st, workers,
		func() (S, error) { return newState(), nil },
		func(s S, u stream.Update) error { s.AddUpdate(u); return nil },
		func(dst, src S) error { return dst.Merge(src) })
}

// IngestBatched is Ingest over the batched update API: each worker
// buffers its shard into stream.DefaultBatchSize slices and hands them
// to AddBatch. Because every AddBatch in this repository is defined as
// the per-update fold, the result is bit-identical to Ingest (and to
// single-threaded ingestion) — only faster.
func IngestBatched[S BatchState[S]](st stream.Stream, workers int, newState func() S) (S, error) {
	return IngestBatchedFunc(st, workers,
		func() (S, error) { return newState(), nil },
		func(s S, batch []stream.Update) error { s.AddBatch(batch); return nil },
		func(dst, src S) error { return dst.Merge(src) })
}

// IngestBatchedFunc is IngestFunc with batched delivery: update
// receives slices of at most stream.DefaultBatchSize updates in shard
// order. The batch slice is reused between calls.
func IngestBatchedFunc[S any](
	st stream.Stream,
	workers int,
	newState func() (S, error),
	update func(S, []stream.Update) error,
	merge func(dst, src S) error,
) (S, error) {
	return ingest(st, workers, newState, merge, func(s S, shard stream.Stream) error {
		return stream.ReplayBatches(shard, 0, func(batch []stream.Update) error {
			return update(s, batch)
		})
	})
}

// IngestFunc is the generalized sharded-ingest pipeline for states
// whose construction or update can fail (e.g. the phase-checked pass
// methods of spanner.TwoPass): split st into `workers` shards, build a
// state per shard with newState, feed each shard through update on its
// own goroutine, then fold the per-shard states into the first one
// with merge. Merging happens in shard order so runs are reproducible.
func IngestFunc[S any](
	st stream.Stream,
	workers int,
	newState func() (S, error),
	update func(S, stream.Update) error,
	merge func(dst, src S) error,
) (S, error) {
	return ingest(st, workers, newState, merge, func(s S, shard stream.Stream) error {
		return shard.Replay(func(u stream.Update) error { return update(s, u) })
	})
}

// ingest is the shared sharded-ingest skeleton: shard validation and
// splitting, the per-shard goroutines, deterministic error selection,
// and the shard-order merge. run feeds one shard into one state —
// update-at-a-time or batched, the only point where the two pipelines
// differ.
func ingest[S any](
	st stream.Stream,
	workers int,
	newState func() (S, error),
	merge func(dst, src S) error,
	run func(S, stream.Stream) error,
) (S, error) {
	var zero S
	if workers < 1 {
		return zero, fmt.Errorf("parallel: workers must be >= 1, got %d", workers)
	}
	if workers == 1 {
		s, err := newState()
		if err != nil {
			return zero, err
		}
		if err := run(s, st); err != nil {
			return zero, err
		}
		return s, nil
	}
	shards, err := stream.Split(st, workers)
	if err != nil {
		return zero, err
	}
	states := make([]S, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := newState()
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = run(s, shards[i])
			states[i] = s
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return zero, fmt.Errorf("parallel: shard %d: %w", i, e)
		}
	}
	for i := 1; i < workers; i++ {
		if err := merge(states[0], states[i]); err != nil {
			return zero, err
		}
	}
	return states[0], nil
}

// ForEach runs fn(0..n-1) on up to `workers` goroutines and waits for
// all of them. All indices run even if some fail; the first error (by
// index) is returned, which keeps the failure deterministic.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers < 1 {
		return fmt.Errorf("parallel: workers must be >= 1, got %d", workers)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
