// Package parallel provides the concurrent sharded-ingest machinery
// that turns the repository's linear sketches into multi-core
// pipelines. Every construction here is a linear function of the update
// stream, so a stream split into P shards, ingested into P independent
// states built from the same seed, and merged yields a state identical
// to single-threaded ingestion — the distributed-servers setting of the
// paper's introduction, realized as goroutines.
//
// Execution is governed by a Policy: context (cancellation), worker
// count, batch size, and an optional progress callback. Replayable
// in-memory sources are sharded (each worker replays its own
// round-robin view); single-cursor sources (a pipe on stdin, a live
// channel) are read once by a dispatcher that fans batches out to the
// workers — by linearity both strategies produce states identical to a
// serial pass.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dynstream/internal/obs"
	"dynstream/internal/stream"
)

// Policy bundles the execution parameters of one build: cancellation
// context, worker count, update-batch size, an optional progress
// callback, and an optional tracer. A single Policy is threaded
// through every pass of a build so cancellation, progress, and trace
// spans are cumulative across passes.
type Policy struct {
	ctx      context.Context
	workers  int
	batch    int
	decode   int // decode-phase worker count; 0 follows workers
	progress func(int64)
	tracer   *obs.Tracer // nil disables tracing
	done     *int64      // cumulative updates processed, shared across passes
}

// NewPolicy creates an execution policy. ctx may be nil (no
// cancellation); workers must be >= 1; batch <= 0 selects
// stream.DefaultBatchSize; progress, when non-nil, receives the
// cumulative number of updates processed (across all passes and
// shards) and must be safe for concurrent use.
func NewPolicy(ctx context.Context, workers, batch int, progress func(int64)) *Policy {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Policy{ctx: ctx, workers: workers, batch: batch, progress: progress, done: new(int64)}
}

// Default is the serial no-frills policy legacy entry points run under.
func Default() *Policy { return NewPolicy(nil, 1, 0, nil) }

// WithWorkers returns a policy like p but with the given worker count,
// sharing p's context, batch size, progress sink, and counter. Used by
// multi-stage pipelines whose inner builds run serially.
func (p *Policy) WithWorkers(workers int) *Policy {
	cp := *p
	cp.workers = workers
	return &cp
}

// WithDecode returns a policy like p but with the given decode-phase
// worker count (0 makes decode follow the ingest worker count).
func (p *Policy) WithDecode(workers int) *Policy {
	cp := *p
	cp.decode = workers
	return &cp
}

// WithTracer returns a policy like p but with the given tracer (nil
// disables tracing), sharing p's context, batch size, progress sink,
// and counter. Every pass run under the policy emits its phase spans
// and ingest totals to the tracer; instrumentation is observational
// only, so a traced build's output is bit-identical to an untraced
// one.
func (p *Policy) WithTracer(t *obs.Tracer) *Policy {
	cp := *p
	cp.tracer = t
	return &cp
}

// Tracer returns the policy's tracer; nil means tracing is off. The
// returned value is safe to call methods on either way — a nil
// *obs.Tracer is the disabled tracer.
func (p *Policy) Tracer() *obs.Tracer { return p.tracer }

// Context returns the policy's context (never nil).
func (p *Policy) Context() context.Context { return p.ctx }

// Workers returns the policy's worker count.
func (p *Policy) Workers() int { return p.workers }

// DecodeWorkers returns the worker count decode stages run at: the
// explicit WithDecode override when set, otherwise the ingest worker
// count.
func (p *Policy) DecodeWorkers() int {
	if p.decode > 0 {
		return p.decode
	}
	return p.workers
}

// DecodePolicy returns the policy decode stages run under: same
// context, batch size, and progress sink, with Workers() set to
// DecodeWorkers(). Extraction code takes a plain Policy, so ingest
// drivers call this once at the ingest/decode boundary.
func (p *Policy) DecodePolicy() *Policy {
	cp := *p
	cp.workers = p.DecodeWorkers()
	cp.decode = 0
	return &cp
}

// tick is the per-batch bookkeeping hook: it observes cancellation and
// publishes progress. n is the number of updates in the batch. The
// cumulative total is computed once and fanned to both sinks: the
// legacy direct callback and the tracer's ingest event (which carries
// its own observers — the public WithProgress option rides there).
func (p *Policy) tick(n int) error {
	if err := p.ctx.Err(); err != nil {
		return err
	}
	if n > 0 && (p.progress != nil || p.tracer != nil) {
		total := atomic.AddInt64(p.done, int64(n))
		if p.progress != nil {
			p.progress(total)
		}
		p.tracer.Ingested(total)
	}
	return nil
}

// validate checks the worker count.
func (p *Policy) validate() error {
	if p.workers < 1 {
		return fmt.Errorf("parallel: workers must be >= 1, got %d", p.workers)
	}
	return nil
}

// Validate reports whether the policy is executable (workers >= 1).
// Decode entry points call it before sizing per-worker scratch state.
func (p *Policy) Validate() error { return p.validate() }

// Replay drives one serial batched pass over src under the policy:
// updates are delivered to fn in slices of at most the policy's batch
// size, with a cancellation check and progress tick per batch. The
// batch slice is reused between calls.
func (p *Policy) Replay(src stream.Source, fn func([]stream.Update) error) error {
	return stream.ReplayBatches(src, p.batch, func(b []stream.Update) error {
		if err := p.tick(len(b)); err != nil {
			return err
		}
		return fn(b)
	})
}

// errAbort signals the dispatcher to stop because a worker already
// failed; the worker's error takes precedence in the result.
var errAbort = errors.New("parallel: aborted after worker failure")

// IngestOpts is the policy-driven sharded-ingest pipeline for batched
// states: split (or fan out) src across the policy's workers, build a
// state per worker with newState, feed batches through update, then
// fold the per-worker states into the first one with merge. States
// must be built from identical randomness (same seed and parameters).
// The merged state is identical to a serial pass, because every update
// operation is a commutative group operation.
func IngestOpts[S any](
	p *Policy,
	src stream.Source,
	newState func() (S, error),
	update func(S, []stream.Update) error,
	merge func(dst, src S) error,
) (S, error) {
	var zero S
	if err := p.validate(); err != nil {
		return zero, err
	}
	sp := p.tracer.Span("ingest")
	before := atomic.LoadInt64(p.done)
	s, err := ingestDispatch(p, src, newState, update, merge)
	if err != nil {
		return zero, err
	}
	sp.End(
		obs.A("updates", atomic.LoadInt64(p.done)-before),
		obs.A("workers", int64(p.workers)))
	return s, nil
}

// ingestDispatch picks the ingest strategy: serial, sharded replay, or
// single-cursor fan-out.
func ingestDispatch[S any](
	p *Policy,
	src stream.Source,
	newState func() (S, error),
	update func(S, []stream.Update) error,
	merge func(dst, src S) error,
) (S, error) {
	var zero S
	if p.workers == 1 {
		s, err := newState()
		if err != nil {
			return zero, err
		}
		if err := p.Replay(src, func(b []stream.Update) error { return update(s, b) }); err != nil {
			return zero, err
		}
		return s, nil
	}
	if stream.ConcurrentReplayable(src) {
		return shardIngest(p, src, newState, update, merge)
	}
	return fanoutIngest(p, src, newState, update, merge)
}

// shardSpan opens the per-shard ingest span; the Sprintf only runs
// when tracing is on.
func (p *Policy) shardSpan(i int) obs.Span {
	if p.tracer == nil {
		return obs.Span{}
	}
	return p.tracer.Span(fmt.Sprintf("ingest/shard%02d", i))
}

// shardIngest runs one worker per round-robin shard, each replaying
// its own view of src concurrently (src must be safe for concurrent
// Replay). Merging happens in shard order so runs are reproducible.
func shardIngest[S any](
	p *Policy,
	src stream.Source,
	newState func() (S, error),
	update func(S, []stream.Update) error,
	merge func(dst, src S) error,
) (S, error) {
	var zero S
	shards, err := stream.Split(src, p.workers)
	if err != nil {
		return zero, err
	}
	states := make([]S, p.workers)
	errs := make([]error, p.workers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := p.shardSpan(i)
			s, err := newState()
			if err != nil {
				errs[i] = err
				return
			}
			var n int64
			errs[i] = stream.ReplayBatches(shards[i], p.batch, func(b []stream.Update) error {
				if err := p.tick(len(b)); err != nil {
					return err
				}
				n += int64(len(b))
				return update(s, b)
			})
			states[i] = s
			sp.End(obs.A("updates", n))
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return zero, fmt.Errorf("parallel: shard %d: %w", i, e)
		}
	}
	msp := p.tracer.Span("ingest/merge")
	for i := 1; i < p.workers; i++ {
		if err := merge(states[0], states[i]); err != nil {
			return zero, err
		}
	}
	msp.End(obs.A("states", int64(p.workers)))
	return states[0], nil
}

// fanoutIngest reads src once on the calling goroutine and distributes
// copied batches to the workers over a channel — the strategy for
// single-cursor sources (pipes, channels) that cannot be replayed
// concurrently. Batch-to-worker assignment is scheduling-dependent,
// but by linearity the merged state is identical regardless of which
// worker ingests which batch.
func fanoutIngest[S any](
	p *Policy,
	src stream.Source,
	newState func() (S, error),
	update func(S, []stream.Update) error,
	merge func(dst, src S) error,
) (S, error) {
	var zero S
	states := make([]S, p.workers)
	errs := make([]error, p.workers)
	ch := make(chan []stream.Update, 2*p.workers)
	var failed int32
	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := p.shardSpan(i)
			s, err := newState()
			if err != nil {
				errs[i] = err
				atomic.StoreInt32(&failed, 1)
			}
			// Keep draining even after a failure so the dispatcher's
			// sends never block; batches are simply discarded.
			var n int64
			for b := range ch {
				if errs[i] != nil {
					continue
				}
				n += int64(len(b))
				if err := update(s, b); err != nil {
					errs[i] = err
					atomic.StoreInt32(&failed, 1)
				}
			}
			if errs[i] == nil {
				states[i] = s
				sp.End(obs.A("updates", n))
			}
		}(i)
	}
	derr := stream.ReplayBatches(src, p.batch, func(b []stream.Update) error {
		if err := p.tick(len(b)); err != nil {
			return err
		}
		if atomic.LoadInt32(&failed) != 0 {
			return errAbort
		}
		cp := make([]stream.Update, len(b))
		copy(cp, b)
		ch <- cp
		return nil
	})
	close(ch)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return zero, fmt.Errorf("parallel: worker %d: %w", i, e)
		}
	}
	if derr != nil {
		return zero, derr
	}
	msp := p.tracer.Span("ingest/merge")
	for i := 1; i < p.workers; i++ {
		if err := merge(states[0], states[i]); err != nil {
			return zero, err
		}
	}
	msp.End(obs.A("states", int64(p.workers)))
	return states[0], nil
}

// State is a linear sketch state that can ingest stream updates and be
// merged with another state built from the same randomness.
type State[S any] interface {
	AddUpdate(stream.Update)
	Merge(S) error
}

// BatchState is a linear sketch state that can ingest whole update
// batches — the fast path: one virtual dispatch and one shard-replay
// round trip per batch instead of per update.
type BatchState[S any] interface {
	AddBatch([]stream.Update)
	Merge(S) error
}

// Ingest splits st into `workers` round-robin shards, feeds each shard
// into its own fresh state on its own goroutine, and merges the
// per-shard states into one. newState must return states built from
// identical randomness (same seed and parameters) or the merge will
// fail.
func Ingest[S State[S]](st stream.Source, workers int, newState func() S) (S, error) {
	return IngestOpts(Default().WithWorkers(workers), st,
		func() (S, error) { return newState(), nil },
		func(s S, batch []stream.Update) error {
			for _, u := range batch {
				s.AddUpdate(u)
			}
			return nil
		},
		func(dst, src S) error { return dst.Merge(src) })
}

// IngestBatchedOpts is IngestOpts over the batched update API of a
// BatchState. Because every AddBatch in this repository is defined as
// the per-update fold, the result is bit-identical to update-at-a-time
// ingestion — only faster.
func IngestBatchedOpts[S BatchState[S]](p *Policy, st stream.Source, newState func() S) (S, error) {
	return IngestOpts(p, st,
		func() (S, error) { return newState(), nil },
		func(s S, batch []stream.Update) error { s.AddBatch(batch); return nil },
		func(dst, src S) error { return dst.Merge(src) })
}

// ForEachOpts runs fn(0..n-1) on up to the policy's workers and waits
// for all of them. Dispatch stops at the first cancellation; already
// dispatched tasks run to completion. The first error (by index) is
// returned, which keeps the failure deterministic.
func ForEachOpts(p *Policy, n int, fn func(i int) error) error {
	return ForEachWorkerOpts(p, n, func(_, i int) error { return fn(i) })
}

// ForEach runs fn(0..n-1) on up to `workers` goroutines and waits for
// all of them. All indices run even if some fail; the first error (by
// index) is returned.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachOpts(Default().WithWorkers(workers), n, fn)
}
