package parallel

import (
	"errors"
	"sync/atomic"
	"testing"

	"dynstream/internal/stream"
)

// counter is a trivial linear "sketch": the sum of deltas and the sum
// of endpoint products, both commutative — so sharded ingest + merge
// must equal serial ingest exactly.
type counter struct {
	updates int64
	sum     int64
}

func (c *counter) AddUpdate(u stream.Update) {
	c.updates++
	c.sum += int64(u.Delta) * int64(u.U+u.V)
}

func (c *counter) Merge(o *counter) error {
	c.updates += o.updates
	c.sum += o.sum
	return nil
}

func testStream(t *testing.T, n, m int) *stream.MemoryStream {
	t.Helper()
	st := stream.NewMemoryStream(n)
	for i := 0; i < m; i++ {
		u, v := i%n, (i*7+1)%n
		if u == v {
			v = (v + 1) % n
		}
		if err := st.Append(stream.Update{U: u, V: v, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestIngestMatchesSerial(t *testing.T) {
	st := testStream(t, 20, 500)
	serial, err := Ingest(st, 1, func() *counter { return &counter{} })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 100} {
		par, err := Ingest(st, workers, func() *counter { return &counter{} })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *par != *serial {
			t.Errorf("workers=%d: %+v vs serial %+v", workers, *par, *serial)
		}
	}
	if _, err := Ingest(st, 0, func() *counter { return &counter{} }); err == nil {
		t.Error("Ingest accepted workers=0")
	}
}

type failing struct{ counter }

func (f *failing) Merge(o *failing) error { return errors.New("merge refused") }

func TestIngestPropagatesMergeError(t *testing.T) {
	st := testStream(t, 10, 40)
	if _, err := Ingest(st, 2, func() *failing { return &failing{} }); err == nil {
		t.Error("merge error not propagated")
	}
}

func TestForEach(t *testing.T) {
	var ran int64
	if err := ForEach(4, 100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Errorf("ran %d tasks, want 100", ran)
	}
	// First error by index is returned; all tasks still run.
	ran = 0
	err := ForEach(3, 50, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 7 || i == 31 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Error("error not propagated")
	}
	if ran != 50 {
		t.Errorf("ran %d tasks, want all 50 despite errors", ran)
	}
	if err := ForEach(2, 0, func(int) error { return nil }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := ForEach(0, 3, func(int) error { return nil }); err == nil {
		t.Error("ForEach accepted workers=0")
	}
}
