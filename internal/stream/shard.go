package stream

import "fmt"

// Shard is a replayable view of every Count-th update of Base starting
// at offset Index — shard i of a round-robin split into Count parts.
// The shards of a split partition the base stream exactly: every update
// appears in precisely one shard, and each shard preserves the base
// stream's relative order. Because every construction in this
// repository is a linear sketch, states built from the shards of a
// stream and then merged are identical to a state built from the whole
// stream (the distributed setting of the paper's introduction).
type Shard struct {
	Base  Source
	Index int
	Count int
}

// N returns the vertex count of the base source.
func (s *Shard) N() int { return s.Base.N() }

// CanReplay forwards the base source's replayability: a shard view can
// be replayed exactly when its base can.
func (s *Shard) CanReplay() bool { return CanReplay(s.Base) }

// ConcurrentReplay forwards the base source's concurrency capability.
func (s *Shard) ConcurrentReplay() bool { return ConcurrentReplayable(s.Base) }

// Replay visits the shard's updates in base-stream order. The position
// counter is local to each call, so a Shard may be replayed from
// multiple goroutines concurrently (the base source must itself be
// safe for concurrent replay — see ConcurrentReplayable; MemoryStream
// and the filtered views in this package are).
func (s *Shard) Replay(fn func(Update) error) error {
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("stream: invalid shard %d of %d", s.Index, s.Count)
	}
	pos := 0
	return s.Base.Replay(func(u Update) error {
		mine := pos%s.Count == s.Index
		pos++
		if !mine {
			return nil
		}
		return fn(u)
	})
}

// Split partitions s into p round-robin shards. The concatenation of
// the shards' update multisets equals the base stream's, which is the
// property sharded linear-sketch ingestion relies on. Any replayable
// source can be split; a source that has already been consumed cannot.
func Split(s Source, p int) ([]Stream, error) {
	if p < 1 {
		return nil, fmt.Errorf("stream: split into %d shards", p)
	}
	if !CanReplay(s) {
		return nil, fmt.Errorf("stream: split: %w", ErrNotReplayable)
	}
	out := make([]Stream, p)
	for i := 0; i < p; i++ {
		out[i] = &Shard{Base: s, Index: i, Count: p}
	}
	return out, nil
}
