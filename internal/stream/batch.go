package stream

// DefaultBatchSize is the update-batch granularity of the batched
// ingest pipeline. Large enough to amortize replay dispatch and keep
// the per-batch slice hot in cache, small enough that worker skew on
// short streams stays negligible.
const DefaultBatchSize = 256

// ReplayBatches replays s in order, delivering updates in slices of at
// most size elements (DefaultBatchSize if size <= 0). The slice is
// reused between calls — consumers must not retain it. Ingesting
// batches through the AddBatch entry points of the sketch stack is
// bit-identical to update-at-a-time Replay.
func ReplayBatches(s Stream, size int, fn func([]Update) error) error {
	if size <= 0 {
		size = DefaultBatchSize
	}
	buf := make([]Update, 0, size)
	err := s.Replay(func(u Update) error {
		buf = append(buf, u)
		if len(buf) == size {
			err := fn(buf)
			buf = buf[:0]
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}
