package stream

import (
	"errors"
	"math"
	"testing"

	"dynstream/internal/graph"
)

func TestAppendValidation(t *testing.T) {
	s := NewMemoryStream(5)
	if err := s.Append(Update{U: 1, V: 1, Delta: 1}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := s.Append(Update{U: 0, V: 9, Delta: 1}); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := s.Append(Update{U: 0, V: 1, Delta: 2}); err == nil {
		t.Error("delta=2 accepted")
	}
	if err := s.Append(Update{U: 0, V: 1, Delta: 1}); err != nil {
		t.Errorf("valid update rejected: %v", err)
	}
}

func TestReplayOrderAndRepeatability(t *testing.T) {
	s := NewMemoryStream(4)
	for i := 0; i < 3; i++ {
		_ = s.Append(Update{U: 0, V: i + 1, Delta: 1})
	}
	var first, second []int
	_ = s.Replay(func(u Update) error { first = append(first, u.V); return nil })
	_ = s.Replay(func(u Update) error { second = append(second, u.V); return nil })
	if len(first) != 3 || len(second) != 3 {
		t.Fatal("replay lost updates")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("replays differ — multi-pass broken")
		}
	}
}

func TestReplayPropagatesError(t *testing.T) {
	s := NewMemoryStream(3)
	_ = s.Append(Update{U: 0, V: 1, Delta: 1})
	sentinel := errors.New("stop")
	if err := s.Replay(func(Update) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Error("replay swallowed error")
	}
}

func TestMaterializeInsertDelete(t *testing.T) {
	s := NewMemoryStream(4)
	_ = s.Append(Update{U: 0, V: 1, Delta: 1})
	_ = s.Append(Update{U: 1, V: 2, Delta: 1})
	_ = s.Append(Update{U: 0, V: 1, Delta: -1})
	g, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.M() != 1 {
		t.Errorf("materialized graph wrong: %v", g.Edges())
	}
}

func TestMaterializeRejectsNegativeMultiplicity(t *testing.T) {
	s := NewMemoryStream(3)
	_ = s.Append(Update{U: 0, V: 1, Delta: -1})
	if _, err := Materialize(s); err == nil {
		t.Error("negative multiplicity accepted")
	}
}

func TestMaterializeMultigraph(t *testing.T) {
	s := NewMemoryStream(3)
	_ = s.Append(Update{U: 0, V: 1, Delta: 1})
	_ = s.Append(Update{U: 0, V: 1, Delta: 1})
	_ = s.Append(Update{U: 0, V: 1, Delta: -1})
	g, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("multiplicity 1 edge missing")
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	const n = 1000
	for _, c := range [][2]int{{0, 1}, {5, 3}, {998, 999}, {0, 999}} {
		k := PairKey(c[0], c[1], n)
		u, v := DecodePairKey(k, n)
		wantU, wantV := c[0], c[1]
		if wantU > wantV {
			wantU, wantV = wantV, wantU
		}
		if u != wantU || v != wantV {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c[0], c[1], u, v)
		}
	}
}

func TestPairKeySymmetric(t *testing.T) {
	if PairKey(3, 7, 100) != PairKey(7, 3, 100) {
		t.Error("PairKey not symmetric")
	}
}

func TestFromGraphMaterializesBack(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 5)
	s := FromGraph(g, 99)
	got, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != g.M() || !g.IsSubgraphOf(got) {
		t.Error("FromGraph stream does not reproduce graph")
	}
}

func TestWithChurnFinalGraph(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.15, 6)
	s := WithChurn(g, 100, 7)
	if s.Len() <= g.M() {
		t.Fatalf("churn stream too short: %d updates for %d edges", s.Len(), g.M())
	}
	got, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != g.M() || !g.IsSubgraphOf(got) {
		t.Errorf("churn stream final graph wrong: %d vs %d edges", got.M(), g.M())
	}
}

func TestWithChurnDeleteAfterInsert(t *testing.T) {
	g := graph.Path(10)
	s := WithChurn(g, 50, 8)
	mult := map[[2]int]int{}
	err := s.Replay(func(u Update) error {
		k := [2]int{u.U, u.V}
		mult[k] += u.Delta
		if mult[k] < 0 {
			return errors.New("deletion before insertion")
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestFilteredStream(t *testing.T) {
	g := graph.Complete(10)
	s := FromGraph(g, 1)
	f := &Filtered{Base: s, Keep: func(u Update) bool { return u.U == 0 }}
	count := 0
	_ = f.Replay(func(u Update) error { count++; return nil })
	if count != 9 {
		t.Errorf("filtered count = %d, want 9", count)
	}
	if f.N() != 10 {
		t.Errorf("N = %d", f.N())
	}
}

func TestSampledSubstreamNestedAndConsistent(t *testing.T) {
	g := graph.Complete(40) // 780 edges
	s := FromGraph(g, 2)
	var counts []int
	for j := 0; j <= 4; j++ {
		sub := SampledSubstream(s, 42, j)
		c := 0
		_ = sub.Replay(func(Update) error { c++; return nil })
		counts = append(counts, c)
	}
	if counts[0] != 780 {
		t.Errorf("level 0 should keep everything, got %d", counts[0])
	}
	for j := 1; j < len(counts); j++ {
		if counts[j] > counts[j-1] {
			t.Errorf("substreams not nested: level %d has %d > %d", j, counts[j], counts[j-1])
		}
	}
	// Level 2 keeps ~1/4: allow wide slack.
	if counts[2] < 780/16 || counts[2] > 780/2 {
		t.Errorf("level 2 kept %d of 780", counts[2])
	}
	// Replaying the same substream twice gives identical selections.
	sub := SampledSubstream(s, 42, 2)
	var a, b []uint64
	_ = sub.Replay(func(u Update) error { a = append(a, PairKey(u.U, u.V, 40)); return nil })
	_ = sub.Replay(func(u Update) error { b = append(b, PairKey(u.U, u.V, 40)); return nil })
	if len(a) != len(b) {
		t.Fatal("substream changed between passes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("substream edge selection changed between passes")
		}
	}
}

func TestWeightClassOf(t *testing.T) {
	cases := []struct {
		w, base float64
		want    int
	}{
		{0.5, 2, 0},
		{1, 2, 0},
		{1.9, 2, 0},
		{2, 2, 1},
		{4, 2, 2},
		{1000, 10, 3},
	}
	for _, c := range cases {
		if got := WeightClassOf(c.w, c.base); got != c.want {
			t.Errorf("WeightClassOf(%v, %v) = %d, want %d", c.w, c.base, got, c.want)
		}
	}
}

func TestWeightClassesPartition(t *testing.T) {
	g := graph.RandomWeighted(graph.Complete(12), 1, 1000, 3)
	s := FromGraph(g, 4)
	classes, sub := WeightClasses(s, 2)
	if len(classes) == 0 {
		t.Fatal("no classes found")
	}
	total := 0
	for _, c := range classes {
		cnt := 0
		_ = sub[c].Replay(func(u Update) error {
			if WeightClassOf(u.W, 2) != c {
				t.Errorf("class %d substream leaked weight %v", c, u.W)
			}
			cnt++
			return nil
		})
		total += cnt
	}
	if total != g.M() {
		t.Errorf("classes cover %d updates, want %d", total, g.M())
	}
	// Classes sorted ascending.
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Error("classes not sorted")
		}
	}
	// Max class consistent with wmax=1000, base 2: class ~ log2(1000) ≈ 9.
	if classes[len(classes)-1] > int(math.Log2(1000))+1 {
		t.Errorf("unexpected max class %d", classes[len(classes)-1])
	}
}
