package stream

import (
	"bytes"
	"math"
	"testing"

	"dynstream/internal/graph"
)

// FuzzReadBinary drives the binary wire-format parser (the format
// ReaderSource consumes from pipes) with arbitrary input. The parser
// must never panic; whenever it accepts an input, every delivered
// update must satisfy the stream invariants, and a
// WriteBinary → Replay round trip must be byte-stable.
func FuzzReadBinary(f *testing.F) {
	// Corpus seeded from real FromGraph / WithChurn streams.
	for i, g := range []*graph.Graph{
		graph.ConnectedGNP(12, 0.3, 801),
		graph.Complete(5),
		graph.Barbell(4, 1),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, FromGraph(g, uint64(810+i))); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		buf.Reset()
		if err := WriteBinary(&buf, WithChurn(g, 10, uint64(820+i))); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Degenerate seeds: truncated header, bad magic, truncated record.
	f.Add([]byte{})
	f.Add(binMagic[:])
	f.Add(append(append([]byte{}, binMagic[:]...), 0, 0, 0, 0, 0, 0, 0, 0))
	{
		var buf bytes.Buffer
		_ = WriteBinary(&buf, NewMemoryStream(3))
		f.Add(buf.Bytes()[:len(buf.Bytes())-1]) // header truncated by a byte? (no records: header-1)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewReaderSource(bytes.NewReader(data))
		if err != nil {
			return // rejected header: only panics are failures
		}
		n := src.N()
		if n < 1 {
			t.Fatalf("accepted source with n = %d", n)
		}
		var ups []Update
		err = src.Replay(func(u Update) error {
			if u.U < 0 || u.V >= n || u.U >= u.V {
				t.Fatalf("delivered out-of-range or non-canonical update %+v", u)
			}
			if u.Delta != 1 && u.Delta != -1 {
				t.Fatalf("delivered delta %d", u.Delta)
			}
			if !(u.W > 0) || math.IsInf(u.W, 0) || math.IsNaN(u.W) {
				t.Fatalf("delivered bad weight %v", u.W)
			}
			if len(ups) < 1<<16 {
				ups = append(ups, u)
			}
			return nil
		})
		if err != nil {
			return // rejected mid-stream: fine
		}
		if len(ups) >= 1<<16 {
			return // too large to round-trip cheaply
		}
		// Round trip through the writer: the accepted updates must
		// re-serialize and re-parse to the same sequence.
		ms := NewMemoryStream(n)
		for _, u := range ups {
			if err := ms.Append(u); err != nil {
				t.Fatalf("accepted update fails Append: %+v: %v", u, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, ms); err != nil {
			t.Fatal(err)
		}
		back, err := NewReaderSource(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of serialized stream: %v", err)
		}
		i := 0
		err = back.Replay(func(u Update) error {
			if u != ups[i] {
				t.Fatalf("round trip changed update %d: %+v -> %+v", i, ups[i], u)
			}
			i++
			return nil
		})
		if err != nil || i != len(ups) {
			t.Fatalf("round trip: err=%v, %d/%d updates", err, i, len(ups))
		}
	})
}
