package stream

import (
	"errors"
	"fmt"
	"math"
)

// Source is the minimal update-sequence contract: a dynamic graph on
// N() vertices delivered as a sequence of updates via Replay. A Source
// is consumable at least once; whether it can be consumed again is
// reported by CanReplay. Every Stream (multi-pass, replayable) is a
// Source; single-shot sources — a pipe on stdin, a live channel — are
// Sources that are not Streams, which is exactly the single-pass
// streaming model of the paper. Single-pass constructions (the additive
// spanner, the AGM sketch family) accept any Source; multi-pass ones
// (the two-pass spanner, the sparsifier) need a replayable one.
type Source interface {
	N() int
	Replay(fn func(Update) error) error
}

// ErrNotReplayable is returned when a second pass is requested over a
// source that can only be consumed once (e.g. a non-seekable
// ReaderSource, or a ChannelSource whose channel has been drained).
var ErrNotReplayable = errors.New("stream: source cannot be replayed")

// replayability is the optional marker interface a Source implements to
// advertise that it may not support multiple Replay passes. Sources
// without the marker (MemoryStream, Shard, Filtered, any Stream) are
// assumed replayable.
type replayability interface {
	CanReplay() bool
}

// CanReplay reports whether src currently supports another full Replay
// pass. Sources that do not implement the CanReplay marker are
// replayable by convention (the Stream contract).
func CanReplay(src Source) bool {
	if r, ok := src.(replayability); ok {
		return r.CanReplay()
	}
	return true
}

// ConcurrentReplayable reports whether src supports Replay calls from
// multiple goroutines at once — the property sharded ingest needs.
// Sources with a single read cursor (ReaderSource) report false via
// the ConcurrentReplay marker; pure in-memory views default to their
// replayability.
func ConcurrentReplayable(src Source) bool {
	if c, ok := src.(interface{ ConcurrentReplay() bool }); ok {
		return c.ConcurrentReplay()
	}
	return CanReplay(src)
}

// CheckUpdate validates and canonicalizes one update against a graph on
// n vertices — the exported gate for sources implemented outside this
// package (the dynnet wire decoder), identical to what every local
// Source applies.
func CheckUpdate(u Update, n int) (Update, error) { return checkUpdate(u, n) }

// checkUpdate validates and canonicalizes one update against a graph on
// n vertices: endpoints distinct and in range, delta ±1, weight finite
// and non-negative with 0 coerced to 1. This is the single validation
// gate shared by MemoryStream.Append and the streaming sources, so a
// constant-memory source delivers exactly the updates a materialized
// stream would.
func checkUpdate(u Update, n int) (Update, error) {
	if u.U == u.V {
		return u, fmt.Errorf("stream: self-loop update (%d,%d)", u.U, u.V)
	}
	if u.U < 0 || u.U >= n || u.V < 0 || u.V >= n {
		return u, fmt.Errorf("stream: endpoint out of range in (%d,%d), n=%d", u.U, u.V, n)
	}
	if u.Delta != 1 && u.Delta != -1 {
		return u, fmt.Errorf("stream: delta must be ±1, got %d", u.Delta)
	}
	if u.W < 0 || math.IsNaN(u.W) || math.IsInf(u.W, 0) {
		return u, fmt.Errorf("stream: weight must be finite and non-negative, got %v", u.W)
	}
	if u.W == 0 {
		u.W = 1
	}
	return u.Canon(), nil
}

// ChannelSource adapts a Go channel of updates into a single-shot
// Source: Replay drains the channel, validating and canonicalizing
// every update exactly as MemoryStream.Append would. It is the bridge
// between live producers (socket readers, event buses, per-server
// feeds) and the sketch pipeline; because it cannot be rewound, it only
// feeds single-pass constructions.
type ChannelSource struct {
	n        int
	ch       <-chan Update
	consumed bool
}

// NewChannelSource wraps ch as a Source over a graph on n vertices.
// The stream ends when ch is closed.
func NewChannelSource(n int, ch <-chan Update) *ChannelSource {
	return &ChannelSource{n: n, ch: ch}
}

// N returns the vertex count.
func (s *ChannelSource) N() int { return s.n }

// CanReplay reports false once the channel has been consumed (and
// false before: a channel delivers its elements once).
func (s *ChannelSource) CanReplay() bool { return false }

// Replay drains the channel, delivering each validated update in
// arrival order. A second call returns ErrNotReplayable.
func (s *ChannelSource) Replay(fn func(Update) error) error {
	if s.consumed {
		return ErrNotReplayable
	}
	s.consumed = true
	for u := range s.ch {
		cu, err := checkUpdate(u, s.n)
		if err != nil {
			return err
		}
		if err := fn(cu); err != nil {
			return err
		}
	}
	return nil
}
