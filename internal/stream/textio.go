package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format for dynamic streams, used by the command-line tool:
//
//	n <vertices>          header (required, first non-comment line)
//	+ <u> <v> [w]         insert edge {u, v} with optional weight
//	- <u> <v> [w]         delete edge {u, v}
//	# ...                 comment
//
// Lines are whitespace-separated; weights default to 1.

// WriteText serializes a stream in the text format.
func WriteText(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", s.N()); err != nil {
		return err
	}
	err := s.Replay(func(u Update) error {
		op := "+"
		if u.Delta < 0 {
			op = "-"
		}
		if u.W != 1 {
			_, err := fmt.Fprintf(bw, "%s %d %d %g\n", op, u.U, u.V, u.W)
			return err
		}
		_, err := fmt.Fprintf(bw, "%s %d %d\n", op, u.U, u.V)
		return err
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// parseTextHeader parses the "n <vertices>" header line (already
// trimmed, known non-blank and non-comment).
func parseTextHeader(line string, lineNo int) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "n" {
		return 0, fmt.Errorf("stream: line %d: expected header \"n <vertices>\", got %q", lineNo, line)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("stream: line %d: bad vertex count %q", lineNo, fields[1])
	}
	return n, nil
}

// parseTextUpdate parses one "± u v [w]" line (already trimmed, known
// non-blank and non-comment). Endpoint-range and self-loop validation
// is the caller's job (MemoryStream.Append or checkUpdate).
func parseTextUpdate(line string, lineNo int) (Update, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || len(fields) > 4 {
		return Update{}, fmt.Errorf("stream: line %d: expected \"± u v [w]\", got %q", lineNo, line)
	}
	var delta int
	switch fields[0] {
	case "+":
		delta = 1
	case "-":
		delta = -1
	default:
		return Update{}, fmt.Errorf("stream: line %d: op must be + or -, got %q", lineNo, fields[0])
	}
	u, err := strconv.Atoi(fields[1])
	if err != nil {
		return Update{}, fmt.Errorf("stream: line %d: bad endpoint %q", lineNo, fields[1])
	}
	v, err := strconv.Atoi(fields[2])
	if err != nil {
		return Update{}, fmt.Errorf("stream: line %d: bad endpoint %q", lineNo, fields[2])
	}
	w := 1.0
	if len(fields) == 4 {
		w, err = strconv.ParseFloat(fields[3], 64)
		// NaN must be rejected explicitly (NaN <= 0 is false), and
		// infinite weights would loop forever in WeightClassOf.
		if err != nil || w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Update{}, fmt.Errorf("stream: line %d: bad weight %q", lineNo, fields[3])
		}
	}
	return Update{U: u, V: v, Delta: delta, W: w}, nil
}

// ReadText parses a stream in the text format, materializing it into a
// MemoryStream. For constant-memory ingest of the same bytes use
// NewReaderSource, which shares this parser line for line.
func ReadText(r io.Reader) (*MemoryStream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var ms *MemoryStream
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ms == nil {
			n, err := parseTextHeader(line, lineNo)
			if err != nil {
				return nil, err
			}
			ms = NewMemoryStream(n)
			continue
		}
		u, err := parseTextUpdate(line, lineNo)
		if err != nil {
			return nil, err
		}
		if err := ms.Append(u); err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ms == nil {
		return nil, fmt.Errorf("stream: empty input (missing \"n <vertices>\" header)")
	}
	return ms, nil
}
