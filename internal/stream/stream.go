// Package stream defines the dynamic streaming model of the paper: a
// multigraph on n vertices presented as a sequence of edge insertions
// and deletions, with multi-pass replay (the two-pass spanner and
// sparsifier algorithms read the stream twice). It also provides the
// workload generators (insert/delete churn), the weight-class
// partitioning of Remark 14, and the hash-filtered substreams E_j used
// by the sparsification algorithms of Section 6.
package stream

import (
	"fmt"
	"sort"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
)

// Update is one stream element a_k ∈ [n]×[n]×{-1,+1}: Delta=+1 inserts
// a copy of edge {U, V}, Delta=-1 deletes one. W is the weight of the
// edge; per the model (Section 1), weighted streams either add a
// weighted edge or remove it entirely, so W is known at update time.
type Update struct {
	U, V  int
	Delta int
	W     float64
}

// Canon returns the update with U < V.
func (u Update) Canon() Update {
	if u.U > u.V {
		u.U, u.V = u.V, u.U
	}
	return u
}

// Stream is a replayable sequence of updates over a graph on N
// vertices. Replay may be called multiple times (multi-pass model);
// each call visits the same updates in the same order.
type Stream interface {
	N() int
	Replay(fn func(Update) error) error
}

// MemoryStream is an in-memory Stream.
type MemoryStream struct {
	n       int
	updates []Update
}

// NewMemoryStream creates an empty stream over n vertices.
func NewMemoryStream(n int) *MemoryStream {
	return &MemoryStream{n: n}
}

// N returns the number of vertices.
func (s *MemoryStream) N() int { return s.n }

// Len returns the number of updates.
func (s *MemoryStream) Len() int { return len(s.updates) }

// Append adds an update, validating endpoints. The validation (and
// canonicalization) is the shared checkUpdate gate, so a MemoryStream
// holds exactly the updates a streaming source would deliver.
func (s *MemoryStream) Append(u Update) error {
	cu, err := checkUpdate(u, s.n)
	if err != nil {
		return err
	}
	s.updates = append(s.updates, cu)
	return nil
}

// Replay visits every update in order.
func (s *MemoryStream) Replay(fn func(Update) error) error {
	for _, u := range s.updates {
		if err := fn(u); err != nil {
			return err
		}
	}
	return nil
}

// Materialize replays the stream and returns the final graph (net
// multiplicity > 0 means present; the model requires multiplicities to
// stay non-negative, which is validated here).
func Materialize(s Stream) (*graph.Graph, error) {
	mult := map[[2]int]int{}
	weight := map[[2]int]float64{}
	err := s.Replay(func(u Update) error {
		k := [2]int{u.U, u.V}
		mult[k] += u.Delta
		if mult[k] < 0 {
			return fmt.Errorf("stream: negative multiplicity for edge %v", k)
		}
		weight[k] = u.W
		return nil
	})
	if err != nil {
		return nil, err
	}
	g := graph.New(s.N())
	for k, m := range mult {
		if m > 0 {
			g.AddEdge(k[0], k[1], weight[k])
		}
	}
	return g, nil
}

// PairKey encodes the unordered pair {u, v} over n vertices as a uint64
// (canonical u < v order). This is the coordinate index of the edge in
// the (n choose 2)-dimensional vector the paper sketches.
func PairKey(u, v, n int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// DecodePairKey inverts PairKey.
func DecodePairKey(key uint64, n int) (u, v int) {
	return int(key / uint64(n)), int(key % uint64(n))
}

// FromGraph emits the edges of g as insertions in a pseudorandom order.
func FromGraph(g *graph.Graph, seed uint64) *MemoryStream {
	s := NewMemoryStream(g.N())
	edges := g.Edges()
	rng := hashing.NewSplitMix64(seed)
	for _, i := range rng.Perm(len(edges)) {
		e := edges[i]
		// Appending canonical in-range edges cannot fail.
		_ = s.Append(Update{U: e.U, V: e.V, Delta: 1, W: e.W})
	}
	return s
}

// WithChurn emits a stream whose final graph is g, but which also
// inserts and later deletes `extra` additional random non-edges — the
// adversarial insert/delete workload that distinguishes dynamic
// streaming from insertion-only. The deletions are interleaved randomly
// after their matching insertions.
func WithChurn(g *graph.Graph, extra int, seed uint64) *MemoryStream {
	n := g.N()
	rng := hashing.NewSplitMix64(seed)
	type op struct {
		upd Update
		pos uint64
	}
	var ops []op
	for _, e := range g.Edges() {
		ops = append(ops, op{Update{U: e.U, V: e.V, Delta: 1, W: e.W}, rng.Next()})
	}
	tried := 0
	for added := 0; added < extra && tried < 20*extra+100; tried++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		p1, p2 := rng.Next(), rng.Next()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if p1 == p2 {
			p2++
		}
		ops = append(ops,
			op{Update{U: u, V: v, Delta: 1, W: 1}, p1},
			op{Update{U: u, V: v, Delta: -1, W: 1}, p2})
		added++
	}
	// Stable sort by position: identical output to the insertion sort
	// this replaced, but O(m log m) — million-update churn workloads
	// (the distributed smoke test) generate in milliseconds instead of
	// hours.
	sort.SliceStable(ops, func(a, b int) bool { return ops[a].pos < ops[b].pos })
	s := NewMemoryStream(n)
	for _, o := range ops {
		_ = s.Append(o.upd)
	}
	return s
}

// Filtered wraps a stream, keeping only updates that pass keep. Used
// for the weight classes of Remark 14 and the subsampled edge sets E_j
// of Section 6 (keep is a deterministic function of the edge, so both
// passes see the same substream).
type Filtered struct {
	Base Source
	Keep func(Update) bool
}

// N returns the vertex count of the base stream.
func (f *Filtered) N() int { return f.Base.N() }

// CanReplay forwards the base source's replayability.
func (f *Filtered) CanReplay() bool { return CanReplay(f.Base) }

// ConcurrentReplay forwards the base source's concurrency capability.
func (f *Filtered) ConcurrentReplay() bool { return ConcurrentReplayable(f.Base) }

// Replay visits the updates of the base stream that pass the filter.
func (f *Filtered) Replay(fn func(Update) error) error {
	return f.Base.Replay(func(u Update) error {
		if !f.Keep(u) {
			return nil
		}
		return fn(u)
	})
}

// SampledSubstream returns the substream E_j of edges whose geometric
// hash level is at least j — each edge survives with probability 2^-j,
// deterministically across passes. seed selects the hash function.
func SampledSubstream(base Stream, seed uint64, j int) Stream {
	h := hashing.NewPoly(hashing.Mix(seed, 0xe1), 8)
	n := base.N()
	return &Filtered{
		Base: base,
		Keep: func(u Update) bool {
			return h.Level(PairKey(u.U, u.V, n)) >= j
		},
	}
}

// WeightClassOf returns the weight class index of w for class base
// (1+gamma): class c contains weights in [base^c, base^(c+1)).
// Weights below 1 are clamped into class 0 together with [1, base).
func WeightClassOf(w, base float64) int {
	if w < base {
		return 0
	}
	c := 0
	for x := w; x >= base; x /= base {
		c++
	}
	return c
}

// WeightClasses partitions a weighted stream into per-class unweighted
// substreams (Remark 14: round weights to powers of 1+gamma and run the
// unweighted construction per class). It returns the class indices
// present and a substream for each.
func WeightClasses(base Stream, classBase float64) (classes []int, sub map[int]Stream) {
	present := map[int]bool{}
	// One scan to find the classes actually present.
	_ = base.Replay(func(u Update) error {
		present[WeightClassOf(u.W, classBase)] = true
		return nil
	})
	sub = make(map[int]Stream, len(present))
	for c := range present {
		c := c
		sub[c] = &Filtered{
			Base: base,
			Keep: func(u Update) bool { return WeightClassOf(u.W, classBase) == c },
		}
		classes = append(classes, c)
	}
	// Sorted ascending for deterministic iteration.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	return classes, sub
}
