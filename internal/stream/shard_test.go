package stream

import (
	"sync"
	"testing"

	"dynstream/internal/graph"
)

func collect(t *testing.T, s Stream) []Update {
	t.Helper()
	var out []Update
	if err := s.Replay(func(u Update) error {
		out = append(out, u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSplitPartitionsExactly(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.2, 11)
	base := WithChurn(g, 100, 12)
	all := collect(t, base)

	for _, p := range []int{1, 2, 3, 7, len(all) + 5} {
		shards, err := Split(base, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != p {
			t.Fatalf("Split returned %d shards, want %d", len(shards), p)
		}
		// Round-robin: shard i holds updates at positions ≡ i (mod p),
		// in base order. Reassembling by position must equal the base.
		rebuilt := make([]Update, len(all))
		total := 0
		for i, sh := range shards {
			if sh.N() != base.N() {
				t.Fatalf("shard N = %d, want %d", sh.N(), base.N())
			}
			for pos, u := range collect(t, sh) {
				rebuilt[pos*p+i] = u
				total++
			}
		}
		if total != len(all) {
			t.Fatalf("p=%d: shards hold %d updates, want %d", p, total, len(all))
		}
		for i := range all {
			if rebuilt[i] != all[i] {
				t.Fatalf("p=%d: update %d = %+v, want %+v", p, i, rebuilt[i], all[i])
			}
		}
	}
}

func TestSplitRejectsBadCount(t *testing.T) {
	base := NewMemoryStream(4)
	for _, p := range []int{0, -1} {
		if _, err := Split(base, p); err == nil {
			t.Errorf("Split(%d) accepted", p)
		}
	}
	bad := &Shard{Base: base, Index: 3, Count: 2}
	if err := bad.Replay(func(Update) error { return nil }); err == nil {
		t.Error("out-of-range shard replayed")
	}
}

func TestShardConcurrentReplay(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.3, 13)
	base := WithChurn(g, 50, 14)
	shards, err := Split(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent replays of all shards (run with -race) must see the
	// whole stream exactly once.
	counts := make([]int, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = shards[i].Replay(func(Update) error {
				counts[i]++
				return nil
			})
		}(i)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != base.Len() {
		t.Fatalf("concurrent shard replay saw %d updates, want %d", total, base.Len())
	}
}
