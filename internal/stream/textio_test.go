package stream

import (
	"bytes"
	"strings"
	"testing"

	"dynstream/internal/graph"
)

func TestTextRoundTrip(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.2, 1)
	orig := WithChurn(g, 30, 2)
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.Len() != orig.Len() {
		t.Fatalf("shape mismatch: n %d/%d len %d/%d", back.N(), orig.N(), back.Len(), orig.Len())
	}
	gOrig, err := Materialize(orig)
	if err != nil {
		t.Fatal(err)
	}
	gBack, err := Materialize(back)
	if err != nil {
		t.Fatal(err)
	}
	if gOrig.M() != gBack.M() || !gOrig.IsSubgraphOf(gBack) {
		t.Error("materialized graphs differ after round trip")
	}
}

func TestTextRoundTripWeighted(t *testing.T) {
	g := graph.RandomWeighted(graph.Path(10), 1, 100, 3)
	orig := FromGraph(g, 4)
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gBack, err := Materialize(back)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		w, ok := gBack.Weight(e.U, e.V)
		if !ok || w != e.W {
			t.Errorf("edge (%d,%d): weight %v vs %v", e.U, e.V, w, e.W)
		}
	}
}

func TestReadTextComments(t *testing.T) {
	in := `# a comment
n 4

+ 0 1
# another
- 0 1
+ 2 3 2.5
`
	ms, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ms.N() != 4 || ms.Len() != 3 {
		t.Errorf("n=%d len=%d", ms.N(), ms.Len())
	}
	g, err := Materialize(ms)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || !g.HasEdge(2, 3) {
		t.Errorf("graph %v", g.Edges())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"+ 0 1\n",            // missing header
		"n x\n",              // bad count
		"n 4\n* 0 1\n",       // bad op
		"n 4\n+ 0\n",         // too few fields
		"n 4\n+ 0 1 2 3 4\n", // too many fields
		"n 4\n+ a 1\n",       // bad endpoint
		"n 4\n+ 0 1 -2\n",    // bad weight
		"n 4\n+ 0 9\n",       // out of range
		"n 4\n+ 1 1\n",       // self-loop
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
