package stream

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText drives the text-format parser with arbitrary input. The
// parser must never panic; whenever it accepts an input, the parsed
// stream must be internally consistent and must survive a
// WriteText → ReadText round trip unchanged.
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"n 5\n+ 0 1\n+ 1 2\n- 0 1\n",
		"n 3\n# comment\n+ 0 1 2.5\n",
		"n 1\n",
		"",
		"n 2\n+ 0 1\n+ 0 1\n- 0 1\n- 0 1\n",
		"n 10\n+ 9 0 0.125\n- 9 0 0.125\n",
		"garbage\n",
		"n 2\n* 0 1\n",
		"n 2\n+ 0 0\n",
		"n 2\n+ 0 5\n",
		"n 2\n+ 0 1 -3\n",
		"n 0\n",
		"n 2\n+ 0 1 1e308\n",
		"n 2\n\t + \t1  0 \n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ms, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejected input: only panics are failures
		}
		if ms.N() < 1 {
			t.Fatalf("accepted stream with n = %d", ms.N())
		}
		// Every accepted update is canonical and in range.
		if err := ms.Replay(func(u Update) error {
			if u.U < 0 || u.V >= ms.N() || u.U >= u.V {
				t.Fatalf("accepted out-of-range or non-canonical update %+v", u)
			}
			if u.Delta != 1 && u.Delta != -1 {
				t.Fatalf("accepted delta %d", u.Delta)
			}
			if !(u.W > 0) {
				t.Fatalf("accepted non-positive weight %v", u.W)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Round trip: serialize and reparse; the streams must match.
		var buf bytes.Buffer
		if err := WriteText(&buf, ms); err != nil {
			t.Fatalf("WriteText of accepted stream: %v", err)
		}
		back, err := ReadText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of serialized stream: %v\ninput: %q", err, buf.String())
		}
		if back.N() != ms.N() || back.Len() != ms.Len() {
			t.Fatalf("round trip changed shape: n %d→%d, len %d→%d",
				ms.N(), back.N(), ms.Len(), back.Len())
		}
		a, b := ms.updates, back.updates
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed update %d: %+v → %+v", i, a[i], b[i])
			}
		}
	})
}
