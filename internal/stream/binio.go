package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format for dynamic streams — the compact pipe/wire
// counterpart of the text format, built for constant-memory ingest
// (ReaderSource) and for shipping update shards between processes.
//
// Layout (all little-endian):
//
//	header:  8-byte magic "DSTRMv1\n", then u64 vertex count n
//	record:  u32 u, u32 v, i32 delta (±1), f64 weight — 20 bytes
//
// The stream ends at EOF; a truncated record is an error.

// binMagic identifies the binary stream format, version 1.
var binMagic = [8]byte{'D', 'S', 'T', 'R', 'M', 'v', '1', '\n'}

// binRecordSize is the encoded size of one update record.
const binRecordSize = 20

// appendBinUpdate encodes one update record.
func appendBinUpdate(dst []byte, u Update) []byte {
	var rec [binRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(u.U))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(u.V))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(int32(u.Delta)))
	binary.LittleEndian.PutUint64(rec[12:20], math.Float64bits(u.W))
	return append(dst, rec[:]...)
}

// decodeBinUpdate decodes one update record.
func decodeBinUpdate(rec []byte) Update {
	return Update{
		U:     int(binary.LittleEndian.Uint32(rec[0:4])),
		V:     int(binary.LittleEndian.Uint32(rec[4:8])),
		Delta: int(int32(binary.LittleEndian.Uint32(rec[8:12]))),
		W:     math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
	}
}

// binMaxVertices bounds the vertex count of the binary format: record
// endpoints are 32-bit, so larger graphs must use the text format.
const binMaxVertices = 1 << 32

// WriteBinary serializes a source in the binary wire format. The
// source is consumed once; pair with a replayable source to keep it
// reusable.
func WriteBinary(w io.Writer, s Source) error {
	if s.N() > binMaxVertices {
		return fmt.Errorf("stream: binary format holds 32-bit endpoints; n=%d exceeds %d", s.N(), binMaxVertices)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(s.N()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec []byte
	err := s.Replay(func(u Update) error {
		rec = appendBinUpdate(rec[:0], u)
		_, err := bw.Write(rec)
		return err
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// readBinHeader consumes and validates the binary header (magic
// already peeked by the caller) and returns the vertex count.
func readBinHeader(br *bufio.Reader) (int, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("stream: short binary header: %w", err)
	}
	for i := range binMagic {
		if hdr[i] != binMagic[i] {
			return 0, fmt.Errorf("stream: bad binary magic %q", hdr[:8])
		}
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n < 1 || n > binMaxVertices {
		return 0, fmt.Errorf("stream: bad vertex count %d in binary header", n)
	}
	return int(n), nil
}
