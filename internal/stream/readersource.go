package stream

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReaderSource streams updates straight out of an io.Reader in either
// the text or the binary wire format, without ever materializing the
// stream: memory use is one buffered-reader window regardless of how
// many updates flow through. This is the constant-memory ingest path of
// the streaming model — `gen | dynstream forest` keeps O(sketch) heap
// for an arbitrarily long pipe.
//
// The format is auto-detected from the first bytes (the binary magic
// "DSTRMv1\n" versus a text header). Validation is identical to
// MemoryStream.Append: the same bytes produce bit-identical sketch
// states whether they are streamed through a ReaderSource or first
// materialized with ReadText.
//
// If the underlying reader is an io.Seeker (a file, not a pipe), the
// source is replayable: each Replay rewinds to the start, so two-pass
// algorithms run over files in constant memory too. A ReaderSource is
// never safe for concurrent Replay calls — the sharded-ingest layer
// detects this and falls back to a read-once fan-out instead.
type ReaderSource struct {
	r      io.Reader
	seeker io.Seeker // non-nil when rewinding is possible
	br     *bufio.Reader
	n      int
	binary bool
	lineNo int  // text mode: current line (header already consumed)
	fresh  bool // reader is positioned at the first record
}

// NewReaderSource wraps r, reads the stream header, and returns a
// source ready to Replay. The vertex count is known immediately; the
// records are consumed lazily during Replay.
func NewReaderSource(r io.Reader) (*ReaderSource, error) {
	s := &ReaderSource{r: r}
	// Rewind needs a working Seek, not just the interface: os.Stdin is
	// an *os.File (statically a Seeker) even when it is a pipe, where
	// Seek fails at runtime — so probe with a no-op seek.
	if sk, ok := r.(io.Seeker); ok {
		if _, err := sk.Seek(0, io.SeekCurrent); err == nil {
			s.seeker = sk
		}
	}
	s.br = bufio.NewReaderSize(r, 1<<16)
	// n is written exactly once, here: concurrent N() calls during a
	// later rewind (whose header is only verified) stay race-free.
	n, err := s.readHeader()
	if err != nil {
		return nil, err
	}
	s.n = n
	s.fresh = true
	return s, nil
}

// readHeader detects the format, consumes the header, and returns the
// declared vertex count. It sets the format flag but never touches n.
func (s *ReaderSource) readHeader() (int, error) {
	peek, err := s.br.Peek(len(binMagic))
	if err == nil && string(peek) == string(binMagic[:]) {
		s.binary = true
		return readBinHeader(s.br)
	}
	// Text mode: the header is the first non-blank, non-comment line.
	s.binary = false
	for {
		line, err := s.br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("stream: empty input (missing \"n <vertices>\" header)")
			}
			return 0, err
		}
		s.lineNo++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			if err == io.EOF {
				return 0, fmt.Errorf("stream: empty input (missing \"n <vertices>\" header)")
			}
			continue
		}
		return parseTextHeader(trimmed, s.lineNo)
	}
}

// N returns the vertex count.
func (s *ReaderSource) N() int { return s.n }

// CanReplay reports whether multiple passes are possible: true only
// for seekable readers (files), which rewind before every pass. A pipe
// still supports exactly one Replay call — single-pass constructions
// never consult CanReplay.
func (s *ReaderSource) CanReplay() bool { return s.seeker != nil }

// ConcurrentReplay reports false: a ReaderSource owns a single read
// cursor and must not be replayed from multiple goroutines.
func (s *ReaderSource) ConcurrentReplay() bool { return false }

// rewind repositions the source at the first record for a new pass.
func (s *ReaderSource) rewind() error {
	if s.fresh {
		return nil
	}
	if s.seeker == nil {
		return ErrNotReplayable
	}
	if _, err := s.seeker.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("stream: rewind: %w", err)
	}
	s.br.Reset(s.r)
	s.lineNo = 0
	n, err := s.readHeader()
	if err != nil {
		return fmt.Errorf("stream: rewind: %w", err)
	}
	if n != s.n {
		return fmt.Errorf("stream: rewind: vertex count changed %d -> %d", s.n, n)
	}
	return nil
}

// Replay streams every update through fn in input order, validating
// and canonicalizing exactly as MemoryStream.Append does. On seekable
// readers Replay may be called repeatedly (each call rewinds); on
// pipes only the first call succeeds.
func (s *ReaderSource) Replay(fn func(Update) error) error {
	if err := s.rewind(); err != nil {
		return err
	}
	s.fresh = false
	if s.binary {
		return s.replayBinary(fn)
	}
	return s.replayText(fn)
}

func (s *ReaderSource) replayBinary(fn func(Update) error) error {
	var rec [binRecordSize]byte
	for {
		if _, err := io.ReadFull(s.br, rec[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("stream: truncated binary record: %w", err)
		}
		u, err := checkUpdate(decodeBinUpdate(rec[:]), s.n)
		if err != nil {
			return err
		}
		if err := fn(u); err != nil {
			return err
		}
	}
}

func (s *ReaderSource) replayText(fn func(Update) error) error {
	for {
		line, rerr := s.br.ReadString('\n')
		if line == "" && rerr != nil {
			if rerr == io.EOF {
				return nil
			}
			return rerr
		}
		s.lineNo++
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "#") {
			u, err := parseTextUpdate(trimmed, s.lineNo)
			if err != nil {
				return err
			}
			if u, err = checkUpdate(u, s.n); err != nil {
				return fmt.Errorf("stream: line %d: %w", s.lineNo, err)
			}
			if err := fn(u); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			return nil
		}
	}
}
