package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"dynstream/internal/graph"
)

func collectSrc(t *testing.T, src Source) []Update {
	t.Helper()
	var out []Update
	if err := src.Replay(func(u Update) error { out = append(out, u); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameUpdates(t *testing.T, name string, got, want []Update) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d updates vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: update %d differs: %+v vs %+v", name, i, got[i], want[i])
		}
	}
}

// TestReaderSourceTextParity: the same text bytes deliver identical
// update sequences through ReaderSource and through ReadText.
func TestReaderSourceTextParity(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 701)
	ms := WithChurn(g, 100, 702)
	var buf bytes.Buffer
	if err := WriteText(&buf, ms); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	ref, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewReaderSource(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if src.N() != ref.N() {
		t.Fatalf("n = %d, want %d", src.N(), ref.N())
	}
	sameUpdates(t, "text", collectSrc(t, src), collectSrc(t, ref))
}

// TestReaderSourceBinaryParity: WriteBinary bytes replay identically
// to the in-memory stream, and the written-back bytes are stable.
func TestReaderSourceBinaryParity(t *testing.T) {
	g := graph.ConnectedGNP(25, 0.25, 703)
	ms := WithChurn(g, 60, 704)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ms); err != nil {
		t.Fatal(err)
	}
	src, err := NewReaderSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.N() != ms.N() {
		t.Fatalf("n = %d, want %d", src.N(), ms.N())
	}
	sameUpdates(t, "binary", collectSrc(t, src), collectSrc(t, ms))

	// Round trip: re-serialize from the (seekable) reader source.
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("binary round trip changed the encoding")
	}
}

// TestReaderSourceRewind: a seekable reader supports multiple passes
// with identical content; a pipe does not.
func TestReaderSourceRewind(t *testing.T) {
	text := "n 4\n+ 0 1\n+ 1 2\n- 0 1\n+ 2 3 2.5\n"
	src, err := NewReaderSource(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !CanReplay(src) {
		t.Fatal("seekable source reported non-replayable")
	}
	if ConcurrentReplayable(src) {
		t.Fatal("reader source reported concurrent-replayable")
	}
	first := collectSrc(t, src)
	second := collectSrc(t, src)
	sameUpdates(t, "rewind", second, first)
	if len(first) != 4 {
		t.Fatalf("got %d updates, want 4", len(first))
	}

	// A pipe (no Seek): one pass only.
	pipe, err := NewReaderSource(io.MultiReader(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if CanReplay(pipe) {
		t.Fatal("pipe reported replayable")
	}
	_ = collectSrc(t, pipe)
	if err := pipe.Replay(func(Update) error { return nil }); !errors.Is(err, ErrNotReplayable) {
		t.Fatalf("second pipe pass: err = %v, want ErrNotReplayable", err)
	}
}

// TestReaderSourceValidation: the streaming parser applies exactly the
// MemoryStream.Append gate.
func TestReaderSourceValidation(t *testing.T) {
	for _, bad := range []string{
		"n 4\n+ 0 0\n",     // self-loop
		"n 4\n+ 0 9\n",     // out of range
		"n 4\n* 0 1\n",     // bad op
		"n 4\n+ 0 1 -2\n",  // negative weight
		"n 4\n+ 0 1 inf\n", // infinite weight
		"bogus header\n",
		"",
	} {
		src, err := NewReaderSource(strings.NewReader(bad))
		if err != nil {
			continue // rejected at header time: fine
		}
		if err := src.Replay(func(Update) error { return nil }); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
	// Canonicalization: reversed endpoints arrive canonical.
	src, err := NewReaderSource(strings.NewReader("n 4\n+ 3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	ups := collectSrc(t, src)
	if len(ups) != 1 || ups[0].U != 1 || ups[0].V != 3 || ups[0].W != 1 {
		t.Fatalf("canonicalization: got %+v", ups)
	}
}

// TestChannelSource: validated single-shot delivery.
func TestChannelSource(t *testing.T) {
	ch := make(chan Update, 4)
	ch <- Update{U: 2, V: 0, Delta: 1}
	ch <- Update{U: 1, V: 3, Delta: 1, W: 2}
	close(ch)
	src := NewChannelSource(4, ch)
	if CanReplay(src) {
		t.Fatal("channel source reported replayable")
	}
	ups := collectSrc(t, src)
	if len(ups) != 2 || ups[0] != (Update{U: 0, V: 2, Delta: 1, W: 1}) {
		t.Fatalf("channel delivery: %+v", ups)
	}
	if err := src.Replay(func(Update) error { return nil }); !errors.Is(err, ErrNotReplayable) {
		t.Fatalf("second channel pass: err = %v, want ErrNotReplayable", err)
	}

	bad := make(chan Update, 1)
	bad <- Update{U: 0, V: 0, Delta: 1}
	close(bad)
	if err := NewChannelSource(4, bad).Replay(func(Update) error { return nil }); err == nil {
		t.Fatal("self-loop accepted from channel")
	}
}

// TestSplitRejectsConsumedSource: a drained single-shot source cannot
// be split.
func TestSplitRejectsConsumedSource(t *testing.T) {
	ch := make(chan Update)
	close(ch)
	if _, err := Split(NewChannelSource(3, ch), 2); !errors.Is(err, ErrNotReplayable) {
		t.Fatalf("Split on channel source: err = %v, want ErrNotReplayable", err)
	}
}

// TestShardForwardsMarkers: shards and filters inherit the base
// source's replayability markers.
func TestShardForwardsMarkers(t *testing.T) {
	text := "n 4\n+ 0 1\n"
	rs, err := NewReaderSource(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sh := &Shard{Base: rs, Index: 0, Count: 1}
	if ConcurrentReplayable(sh) {
		t.Error("shard over reader source reported concurrent-replayable")
	}
	f := &Filtered{Base: rs, Keep: func(Update) bool { return true }}
	if ConcurrentReplayable(f) {
		t.Error("filter over reader source reported concurrent-replayable")
	}
	ms := NewMemoryStream(4)
	if !ConcurrentReplayable(&Shard{Base: ms, Index: 0, Count: 1}) {
		t.Error("shard over memory stream lost concurrent-replayability")
	}
}
