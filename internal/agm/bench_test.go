package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func BenchmarkSketchUpdate(b *testing.B) {
	s := New(1, 256, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddEdge(i%255, (i+1)%255+1, 1)
	}
}

func BenchmarkSpanningForest(b *testing.B) {
	g := graph.ConnectedGNP(128, 0.05, 2)
	s := New(3, g.N(), Config{})
	_ = stream.FromGraph(g, 4).Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SpanningForest(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBipartiteness(b *testing.B) {
	g := graph.Cycle(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bip := NewBipartiteness(uint64(i), g.N())
		_ = stream.FromGraph(g, 5).Replay(func(u stream.Update) error {
			bip.AddUpdate(u)
			return nil
		})
		if _, err := bip.IsBipartite(); err != nil {
			b.Fatal(err)
		}
	}
}
