package agm

import (
	"math/rand"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/parallel"
)

// forestsEqual compares two forests edge for edge.
func forestsEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpanningForestCacheBitIdentical interleaves edge churn with
// extractions and checks that a cache-enabled sketch returns exactly
// the forest a cold cache-free twin extracts, at several worker
// counts.
func TestSpanningForestCacheBitIdentical(t *testing.T) {
	const n = 80
	const seed = 421
	live := New(seed, n, Config{})
	live.EnableDecodeCache(true)
	cold := New(seed, n, Config{})

	rng := rand.New(rand.NewSource(7))
	type edge struct{ u, v int }
	var present []edge
	apply := func(u, v int, d int64) {
		live.AddEdge(u, v, d)
		cold.AddEdge(u, v, d)
	}
	for i := 0; i < 150; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		apply(u, v, 1)
		present = append(present, edge{u, v})
	}

	for round := 0; round < 6; round++ {
		for _, workers := range []int{1, 2, 4} {
			p := parallel.Default().WithWorkers(workers)
			got, err := live.SpanningForestOpts(nil, p)
			if err != nil {
				t.Fatalf("round %d workers %d: live: %v", round, workers, err)
			}
			want, err := cold.SpanningForestOpts(nil, p)
			if err != nil {
				t.Fatalf("round %d workers %d: cold: %v", round, workers, err)
			}
			if !forestsEqual(got, want) {
				t.Fatalf("round %d workers %d: cached forest diverged:\n got %v\nwant %v",
					round, workers, got, want)
			}
		}
		// Churn: delete a few present edges, insert a few new ones.
		for j := 0; j < 3 && len(present) > 0; j++ {
			k := rng.Intn(len(present))
			e := present[k]
			present = append(present[:k], present[k+1:]...)
			apply(e.u, e.v, -1)
		}
		for j := 0; j < 3; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			apply(u, v, 1)
			present = append(present, edge{u, v})
		}
	}
}

// TestSpanningForestCacheReuse checks the cache actually hits: an
// unchanged sketch re-extracts without any fresh component decodes
// (observable as zero generation churn and an identical result), and
// a single-edge churn re-decodes only a few components.
func TestSpanningForestCacheReuse(t *testing.T) {
	const n = 60
	s := New(9, n, Config{})
	s.EnableDecodeCache(true)
	for v := 1; v < n; v++ {
		s.AddEdge(v-1, v, 1) // path graph
	}
	first, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.cachedPickCount() == 0 {
		t.Fatal("no picks cached")
	}
	cached := s.cachedPickCount()
	again, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsEqual(first, again) {
		t.Fatalf("re-query diverged: %v vs %v", first, again)
	}
	if got := s.cachedPickCount(); got != cached {
		t.Fatalf("re-query of unchanged sketch re-decoded: %d cached picks, was %d", got, cached)
	}
}

// TestCertificateRepeatable pins the delta-subtraction fix: repeated
// Certificate calls on the same state return identical forests
// (the old destructive extraction double-subtracted on the second
// call), and certificates survive interleaved updates.
func TestCertificateRepeatable(t *testing.T) {
	const n = 40
	kc := NewKConnectivity(11, n, 3)
	kc.EnableDecodeCache(true)
	for v := 1; v < n; v++ {
		kc.AddEdge(v-1, v, 1)
		kc.AddEdge((v*7)%n, v, 1)
	}
	first, err := kc.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	second, err := kc.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("certificate forest count changed: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if !forestsEqual(first[i], second[i]) {
			t.Fatalf("forest %d diverged on re-query:\n got %v\nwant %v", i, second[i], first[i])
		}
	}

	// Fresh twin must agree after the same total stream, even though
	// kc has been queried (and so has folded subtractions in and out).
	kc.AddEdge(0, n/2, 1)
	twin := NewKConnectivity(11, n, 3)
	for v := 1; v < n; v++ {
		twin.AddEdge(v-1, v, 1)
		twin.AddEdge((v*7)%n, v, 1)
	}
	twin.AddEdge(0, n/2, 1)
	got, err := kc.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := twin.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !forestsEqual(got[i], want[i]) {
			t.Fatalf("forest %d diverged from cold twin:\n got %v\nwant %v", i, got[i], want[i])
		}
	}
}
