package agm

import (
	"fmt"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/stream"
)

// This file implements the two classical applications of the AGM
// connectivity sketch beyond a single spanning forest — both from
// [AGM12a], which the paper cites as the foundation of dynamic graph
// streaming ("properties such as bipartiteness, connectivity,
// k-connectivity ... with near linear space"):
//
//   - KConnectivity: a k-edge-connectivity certificate from k
//     independent sketches, peeling one spanning forest at a time and
//     subtracting it (linearity) from the next sketch.
//   - Bipartiteness: via the bipartite double cover — G is bipartite
//     iff its double cover has exactly twice as many connected
//     components as G.

// KConnectivity maintains k independent AGM sketches of the same
// stream and extracts k edge-disjoint spanning forests F_1..F_k; their
// union is a k-edge-connectivity certificate: every cut of value < k
// in G has exactly its G-value in the certificate.
type KConnectivity struct {
	k        int
	n        int
	sketches []*Sketch

	// subtracted[i] is the edge multiset currently folded OUT of
	// sketch i (the prior forests of the last Certificate call).
	// Extraction reconciles it against the forests it actually needs
	// subtracted, applying only the difference — so a re-query whose
	// upstream forests are unchanged leaves every sampler generation
	// untouched and the decode caches hot, and repeated Certificate
	// calls are idempotent instead of double-subtracting.
	subtracted [][]graph.Edge
}

// NewKConnectivity creates the certificate sketch for a graph on n
// vertices with connectivity parameter k >= 1.
func NewKConnectivity(seed uint64, n, k int) *KConnectivity {
	if k < 1 {
		k = 1
	}
	kc := &KConnectivity{k: k, n: n, sketches: make([]*Sketch, k), subtracted: make([][]graph.Edge, k)}
	for i := 0; i < k; i++ {
		kc.sketches[i] = New(hashing.Mix(seed, 0x6c, uint64(i)), n, Config{})
	}
	return kc
}

// EnableDecodeCache turns the per-component pick cache on or off for
// every constituent sketch (see Sketch.EnableDecodeCache).
func (kc *KConnectivity) EnableDecodeCache(on bool) {
	for _, s := range kc.sketches {
		s.EnableDecodeCache(on)
	}
}

// InvalidateDecodeCache drops every constituent sketch's cached
// component decodes; the next Certificate runs cold.
func (kc *KConnectivity) InvalidateDecodeCache() {
	for _, s := range kc.sketches {
		s.InvalidateDecodeCache()
	}
}

// DecodeCacheStats sums the decode-cache hit/miss counters of the k
// constituent forest sketches.
func (kc *KConnectivity) DecodeCacheStats() (hits, misses uint64) {
	for _, s := range kc.sketches {
		h, m := s.DecodeCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// reconcile adjusts sketch i so that exactly `want` is folded out of
// it, applying only the multiset difference against what is currently
// subtracted. An unchanged `want` is a no-op that touches no sampler.
func (kc *KConnectivity) reconcile(i int, want []graph.Edge) {
	have := kc.subtracted[i]
	if len(have) == len(want) {
		same := true
		for j := range have {
			if have[j] != want[j] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	counts := map[[2]int]int64{}
	for _, e := range want {
		e = e.Canon()
		counts[[2]int{e.U, e.V}]++
	}
	for _, e := range have {
		e = e.Canon()
		counts[[2]int{e.U, e.V}]--
	}
	for key, d := range counts {
		if d != 0 {
			kc.sketches[i].AddEdge(key[0], key[1], -d)
		}
	}
	kc.subtracted[i] = append([]graph.Edge(nil), want...)
}

// restoreStream folds every subtracted forest back in, returning all
// sketches to pure functions of the update stream — the state the
// wire format and Merge are defined over.
func (kc *KConnectivity) restoreStream() {
	for i := range kc.sketches {
		kc.reconcile(i, nil)
	}
}

// N returns the vertex count.
func (kc *KConnectivity) N() int { return kc.n }

// AddUpdate folds a stream update into all k sketches.
func (kc *KConnectivity) AddUpdate(u stream.Update) {
	for _, s := range kc.sketches {
		s.AddUpdate(u)
	}
}

// AddEdge folds an explicit edge with multiplicity delta.
func (kc *KConnectivity) AddEdge(u, v int, delta int64) {
	for _, s := range kc.sketches {
		s.AddEdge(u, v, delta)
	}
}

// AddBatch folds a batch of stream updates into all k sketches;
// bit-identical to calling AddUpdate per element.
func (kc *KConnectivity) AddBatch(batch []stream.Update) {
	for _, s := range kc.sketches {
		s.AddBatch(batch)
	}
}

// Merge adds another certificate sketch built with the same seed and
// parameters; the result sketches the union of the two streams.
func (kc *KConnectivity) Merge(o *KConnectivity) error {
	if kc.k != o.k || kc.n != o.n {
		return fmt.Errorf("agm: merging incompatible k-connectivity sketches (k %d/%d, n %d/%d)",
			kc.k, o.k, kc.n, o.n)
	}
	// Merge is defined over pure stream states: fold any extraction-era
	// subtractions back in on both sides first.
	kc.restoreStream()
	o.restoreStream()
	for i := range kc.sketches {
		if err := kc.sketches[i].Merge(o.sketches[i]); err != nil {
			return fmt.Errorf("agm: k-connectivity merge sketch %d: %w", i, err)
		}
	}
	return nil
}

// Certificate extracts k edge-disjoint spanning forests. Forest F_i is
// computed from sketch i after subtracting F_1..F_{i-1} — each sketch's
// randomness is consumed exactly once, so the whp guarantee of
// Theorem 10 applies per forest.
func (kc *KConnectivity) Certificate() ([][]graph.Edge, error) {
	return kc.CertificateOpts(parallel.Default())
}

// CertificateParallel is Certificate with each forest's Borůvka rounds
// decoded by `workers` goroutines (see Sketch.SpanningForestParallel).
// The k forests themselves stay sequential — forest i is defined over
// the sketch minus forests 1..i-1 — and the output is bit-identical to
// Certificate.
func (kc *KConnectivity) CertificateParallel(workers int) ([][]graph.Edge, error) {
	return kc.CertificateOpts(parallel.Default().WithWorkers(workers))
}

// CertificateOpts is the policy-driven certificate extraction behind
// Certificate / CertificateParallel.
func (kc *KConnectivity) CertificateOpts(p *parallel.Policy) ([][]graph.Edge, error) {
	var prior []graph.Edge
	out := make([][]graph.Edge, 0, kc.k)
	for i, s := range kc.sketches {
		kc.reconcile(i, prior)
		f, err := s.SpanningForestOpts(nil, p)
		if err != nil {
			return nil, fmt.Errorf("agm: certificate forest %d: %w", i, err)
		}
		out = append(out, f)
		prior = append(prior, f...)
	}
	return out, nil
}

// CertificateGraph returns the union of the certificate forests as a
// graph — the sparse subgraph preserving all cuts up to value k.
func (kc *KConnectivity) CertificateGraph() (*graph.Graph, error) {
	return kc.CertificateGraphOpts(parallel.Default())
}

// CertificateGraphParallel is CertificateGraph with the per-forest
// decode fanned across `workers` goroutines; output identical to
// CertificateGraph.
func (kc *KConnectivity) CertificateGraphParallel(workers int) (*graph.Graph, error) {
	return kc.CertificateGraphOpts(parallel.Default().WithWorkers(workers))
}

// CertificateGraphOpts is the policy-driven form of CertificateGraph.
func (kc *KConnectivity) CertificateGraphOpts(p *parallel.Policy) (*graph.Graph, error) {
	forests, err := kc.CertificateOpts(p)
	if err != nil {
		return nil, err
	}
	g := graph.New(kc.n)
	for _, f := range forests {
		for _, e := range f {
			g.AddUnitEdge(e.U, e.V)
		}
	}
	return g, nil
}

// SpaceWords returns the memory footprint in 64-bit words.
func (kc *KConnectivity) SpaceWords() int {
	w := 0
	for _, s := range kc.sketches {
		w += s.SpaceWords()
	}
	return w
}

// Bipartiteness tests whether the streamed graph is bipartite using
// the double-cover reduction: the cover has vertices (v, 0), (v, 1)
// and, for every edge {u, v}, edges {(u,0),(v,1)} and {(u,1),(v,0)}.
// A connected non-bipartite component's cover is connected (one
// component), a bipartite one's cover splits in two — so G is
// bipartite iff components(cover) = 2·components(G).
type Bipartiteness struct {
	n     int
	base  *Sketch // sketch of G on n vertices
	cover *Sketch // sketch of the double cover on 2n vertices
}

// NewBipartiteness creates the tester for a graph on n vertices.
func NewBipartiteness(seed uint64, n int) *Bipartiteness {
	return &Bipartiteness{
		n:     n,
		base:  New(hashing.Mix(seed, 0xb1), n, Config{}),
		cover: New(hashing.Mix(seed, 0xb2), 2*n, Config{}),
	}
}

// N returns the vertex count.
func (b *Bipartiteness) N() int { return b.n }

// EnableDecodeCache turns the per-component pick cache on or off for
// both the base and double-cover sketches.
func (b *Bipartiteness) EnableDecodeCache(on bool) {
	b.base.EnableDecodeCache(on)
	b.cover.EnableDecodeCache(on)
}

// InvalidateDecodeCache drops both sketches' cached component decodes;
// the next IsBipartite runs cold.
func (b *Bipartiteness) InvalidateDecodeCache() {
	b.base.InvalidateDecodeCache()
	b.cover.InvalidateDecodeCache()
}

// DecodeCacheStats sums the decode-cache hit/miss counters of the base
// and double-cover sketches.
func (b *Bipartiteness) DecodeCacheStats() (hits, misses uint64) {
	h1, m1 := b.base.DecodeCacheStats()
	h2, m2 := b.cover.DecodeCacheStats()
	return h1 + h2, m1 + m2
}

// AddUpdate folds a stream update into both sketches.
func (b *Bipartiteness) AddUpdate(u stream.Update) {
	b.base.AddUpdate(u)
	d := int64(u.Delta)
	// Double cover: (u,0)=u, (u,1)=u+n.
	b.cover.AddEdge(u.U, u.V+b.n, d)
	b.cover.AddEdge(u.U+b.n, u.V, d)
}

// AddBatch folds a batch of stream updates; bit-identical to calling
// AddUpdate per element.
func (b *Bipartiteness) AddBatch(batch []stream.Update) {
	for _, u := range batch {
		b.AddUpdate(u)
	}
}

// Merge adds another tester built with the same seed; the result tests
// the union of the two streams.
func (b *Bipartiteness) Merge(o *Bipartiteness) error {
	if b.n != o.n {
		return fmt.Errorf("agm: merging incompatible bipartiteness testers (n %d/%d)", b.n, o.n)
	}
	if err := b.base.Merge(o.base); err != nil {
		return fmt.Errorf("agm: bipartiteness merge base: %w", err)
	}
	if err := b.cover.Merge(o.cover); err != nil {
		return fmt.Errorf("agm: bipartiteness merge cover: %w", err)
	}
	return nil
}

// IsBipartite decides bipartiteness whp from the sketches alone.
func (b *Bipartiteness) IsBipartite() (bool, error) {
	return b.IsBipartiteOpts(parallel.Default())
}

// IsBipartiteParallel is IsBipartite with the two forest extractions
// (G and its double cover) each decoded by `workers` goroutines;
// verdict identical to IsBipartite.
func (b *Bipartiteness) IsBipartiteParallel(workers int) (bool, error) {
	return b.IsBipartiteOpts(parallel.Default().WithWorkers(workers))
}

// IsBipartiteOpts is the policy-driven form of IsBipartite.
func (b *Bipartiteness) IsBipartiteOpts(p *parallel.Policy) (bool, error) {
	fBase, err := b.base.SpanningForestOpts(nil, p)
	if err != nil {
		return false, err
	}
	fCover, err := b.cover.SpanningForestOpts(nil, p)
	if err != nil {
		return false, err
	}
	compG := b.n - len(fBase)
	compCover := 2*b.n - len(fCover)
	return compCover == 2*compG, nil
}

// SpaceWords returns the memory footprint in 64-bit words.
func (b *Bipartiteness) SpaceWords() int {
	return b.base.SpaceWords() + b.cover.SpaceWords()
}
