package agm

import (
	"bytes"
	"fmt"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// AddBatch must be bit-for-bit identical to update-at-a-time ingestion:
// same marshaled sketch bytes, same extracted forest. Exercised on a
// random insert-only stream and on a churn (insert-then-delete) stream,
// and (via -race in CI) under the concurrent sharded pipeline.

func batchStreams(t *testing.T, n int) map[string]*stream.MemoryStream {
	t.Helper()
	g := graph.ConnectedGNP(n, 0.1, 0xabba)
	return map[string]*stream.MemoryStream{
		"random": stream.FromGraph(g, 0xcafe),
		"churn":  stream.WithChurn(g, 4*g.M(), 0xdead),
	}
}

func TestSketchAddBatchEquivalence(t *testing.T) {
	for name, st := range batchStreams(t, 64) {
		t.Run(name, func(t *testing.T) {
			one := New(0x71, st.N(), Config{})
			if err := st.Replay(func(u stream.Update) error { one.AddUpdate(u); return nil }); err != nil {
				t.Fatal(err)
			}
			batched := New(0x71, st.N(), Config{})
			if err := stream.ReplayBatches(st, 100, func(b []stream.Update) error {
				batched.AddBatch(b)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			b1, err := one.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := batched.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("AddBatch sketch bytes differ from AddUpdate")
			}
			f1, err := one.SpanningForest(nil)
			if err != nil {
				t.Fatal(err)
			}
			f2, err := batched.SpanningForest(nil)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(f1) != fmt.Sprint(f2) {
				t.Fatalf("forests differ: %v vs %v", f1, f2)
			}
		})
	}
}

func TestKConnectivityAddBatchEquivalence(t *testing.T) {
	for name, st := range batchStreams(t, 48) {
		t.Run(name, func(t *testing.T) {
			one := NewKConnectivity(0x72, st.N(), 3)
			if err := st.Replay(func(u stream.Update) error { one.AddUpdate(u); return nil }); err != nil {
				t.Fatal(err)
			}
			batched := NewKConnectivity(0x72, st.N(), 3)
			if err := stream.ReplayBatches(st, 0, func(b []stream.Update) error {
				batched.AddBatch(b)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range one.sketches {
				b1, err := one.sketches[i].MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				b2, err := batched.sketches[i].MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b1, b2) {
					t.Fatalf("k-connectivity sketch %d differs after AddBatch", i)
				}
			}
		})
	}
}
