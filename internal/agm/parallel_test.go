package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/parallel"
	"dynstream/internal/stream"
)

// Sharded-ingest equivalence for the AGM application sketches: states
// built over round-robin shards and merged must extract exactly what a
// single-threaded state extracts, because the sketches are linear.

func churned(n int, p float64, extra int, seed uint64) (*graph.Graph, *stream.MemoryStream) {
	g := graph.ConnectedGNP(n, p, seed)
	return g, stream.WithChurn(g, extra, seed+1)
}

func sameEdges(t *testing.T, name string, got, want []graph.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges vs serial %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d = %+v vs serial %+v", name, i, got[i], want[i])
		}
	}
}

func TestForestShardedMatchesSerial(t *testing.T) {
	_, st := churned(80, 0.08, 400, 201)
	serial := New(7, st.N(), Config{})
	if err := st.Replay(func(u stream.Update) error { serial.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	want, err := serial.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		sk, err := parallel.Ingest(st, workers, func() *Sketch { return New(7, st.N(), Config{}) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := sk.SpanningForest(nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameEdges(t, "forest", got, want)
	}
}

func TestKConnectivityShardedMatchesSerial(t *testing.T) {
	_, st := churned(40, 0.2, 150, 203)
	serial := NewKConnectivity(9, st.N(), 3)
	if err := st.Replay(func(u stream.Update) error { serial.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	want, err := serial.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	kc, err := parallel.Ingest(st, 4, func() *KConnectivity { return NewKConnectivity(9, st.N(), 3) })
	if err != nil {
		t.Fatal(err)
	}
	got, err := kc.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, "kcert", got.Edges(), want.Edges())
}

func TestBipartitenessShardedMatchesSerial(t *testing.T) {
	// Even cycle (bipartite) and odd cycle (not), both with churn.
	for _, tc := range []struct {
		n    int
		want bool
	}{{20, true}, {21, false}} {
		st := stream.NewMemoryStream(tc.n)
		for v := 0; v < tc.n; v++ {
			if err := st.Append(stream.Update{U: v, V: (v + 1) % tc.n, Delta: 1}); err != nil {
				t.Fatal(err)
			}
		}
		b, err := parallel.Ingest(st, 3, func() *Bipartiteness { return NewBipartiteness(11, tc.n) })
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.IsBipartite()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("n=%d: bipartite=%v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestMSFShardedMatchesSerial(t *testing.T) {
	n := 30
	g := graph.ConnectedGNP(n, 0.15, 205)
	// Weighted stream: deterministic per-edge weights.
	st := stream.NewMemoryStream(n)
	wmax := 1.0
	for _, e := range g.Edges() {
		w := float64(1 + (e.U*7+e.V*3)%16)
		if w > wmax {
			wmax = w
		}
		if err := st.Append(stream.Update{U: e.U, V: e.V, Delta: 1, W: w}); err != nil {
			t.Fatal(err)
		}
	}
	serial := NewMSF(13, n, wmax, 0.5)
	if err := st.Replay(func(u stream.Update) error { serial.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	want, err := serial.Forest()
	if err != nil {
		t.Fatal(err)
	}
	m, err := parallel.Ingest(st, 4, func() *MSF { return NewMSF(13, n, wmax, 0.5) })
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Forest()
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, "msf", got, want)
}

func TestApplicationMergeIncompatible(t *testing.T) {
	if err := NewKConnectivity(1, 10, 2).Merge(NewKConnectivity(1, 10, 3)); err == nil {
		t.Error("KConnectivity.Merge accepted mismatched k")
	}
	if err := NewKConnectivity(1, 10, 2).Merge(NewKConnectivity(2, 10, 2)); err == nil {
		t.Error("KConnectivity.Merge accepted mismatched seeds")
	}
	if err := NewBipartiteness(1, 10).Merge(NewBipartiteness(1, 12)); err == nil {
		t.Error("Bipartiteness.Merge accepted mismatched n")
	}
	if err := NewMSF(1, 10, 8, 0.5).Merge(NewMSF(1, 10, 8, 0.25)); err == nil {
		t.Error("MSF.Merge accepted mismatched gamma")
	}
}
