package agm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dynstream/internal/graph"
)

const (
	tagAGM uint64 = 0xd15c_0003 // v1: dense u64 sampler lengths
	// tagAGMv2 is the compressed sketch encoding: varint sampler
	// lengths, with an untouched (zero) vertex sampler suppressed to a
	// single 0 byte. Together with the samplers' own zero-level
	// suppression, a sparse-stream AGM state shrinks by orders of
	// magnitude on the wire. v1 blobs still decode; encoding always
	// emits v2.
	tagAGMv2 uint64 = 0xd15c_0103
)

var errCorrupt = errors.New("agm: corrupt serialized data")

// MarshalBinary encodes the sketch so that a remote party can
// reconstruct and merge it — the wire format for the distributed
// protocol of the paper's introduction (servers send Sx^i, the
// coordinator sums them). The encoding is content-canonical: states
// with equal linear content encode identically, however their lazily
// materialized levels differ.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var out []byte
	u64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	u64(tagAGMv2)
	u64(s.seed)
	out = binary.AppendUvarint(out, uint64(s.n))
	out = binary.AppendUvarint(out, uint64(s.rounds))
	out = binary.AppendUvarint(out, uint64(s.perLvl))
	for r := 0; r < s.rounds; r++ {
		for v := 0; v < s.n; v++ {
			if s.samp[r][v].IsZero() {
				out = binary.AppendUvarint(out, 0)
				continue
			}
			enc, err := s.samp[r][v].MarshalBinary()
			if err != nil {
				return nil, err
			}
			out = binary.AppendUvarint(out, uint64(len(enc)))
			out = append(out, enc...)
		}
	}
	return out, nil
}

// UnmarshalBinary reconstructs a sketch encoded with MarshalBinary
// (the current v2 layout, or the dense v1 layout of older blobs).
func (s *Sketch) UnmarshalBinary(data []byte) error {
	pos := 0
	u64 := func() (uint64, error) {
		if len(data)-pos < 8 {
			return 0, errCorrupt
		}
		v := binary.LittleEndian.Uint64(data[pos : pos+8])
		pos += 8
		return v, nil
	}
	uvar := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, errCorrupt
		}
		pos += n
		return v, nil
	}
	tag, err := u64()
	if err != nil || (tag != tagAGM && tag != tagAGMv2) {
		return fmt.Errorf("agm: not an AGM sketch encoding: %w", errCorrupt)
	}
	v2 := tag == tagAGMv2
	num := u64
	if v2 {
		num = uvar
	}
	seed, err := u64()
	if err != nil {
		return err
	}
	n, err := num()
	if err != nil {
		return err
	}
	rounds, err := num()
	if err != nil {
		return err
	}
	perLvl, err := num()
	if err != nil {
		return err
	}
	if n == 0 || n > 1<<24 || rounds == 0 || rounds > 256 {
		return errCorrupt
	}
	rebuilt := New(seed, int(n), Config{Rounds: int(rounds), PerLevel: int(perLvl)})
	for r := 0; r < rebuilt.rounds; r++ {
		for v := 0; v < rebuilt.n; v++ {
			ln, err := num()
			if err != nil {
				return err
			}
			if ln == 0 && v2 {
				continue // suppressed zero sampler stays fresh
			}
			if uint64(len(data)-pos) < ln {
				return errCorrupt
			}
			if err := rebuilt.samp[r][v].UnmarshalBinary(data[pos : pos+int(ln)]); err != nil {
				return err
			}
			pos += int(ln)
		}
	}
	if pos != len(data) {
		return errCorrupt
	}
	// Whole-state replacement: keep the caching preference but drop the
	// cached picks — the rebuilt samplers carry fresh generations, so
	// old entries must not be consulted against them.
	rebuilt.caching = s.caching
	*s = *rebuilt
	return nil
}

// Merge adds another sketch built with the same seed and geometry; the
// result sketches the union (sum) of both update streams — the
// coordinator-side operation of the distributed protocol.
func (s *Sketch) Merge(o *Sketch) error {
	if s.seed != o.seed || s.n != o.n || s.rounds != o.rounds || s.perLvl != o.perLvl {
		return fmt.Errorf("agm: merging incompatible sketches (seed %d/%d n %d/%d rounds %d/%d perLevel %d/%d)",
			s.seed, o.seed, s.n, o.n, s.rounds, o.rounds, s.perLvl, o.perLvl)
	}
	// A merge mutates samplers without passing through the update log:
	// advance the epoch so cached merged samplers stop folding and fall
	// back to full re-merges (the pick cache itself stays valid for
	// components the merge didn't touch — their generations are
	// unchanged).
	s.epoch++
	for r := 0; r < s.rounds; r++ {
		for v := 0; v < s.n; v++ {
			if err := s.samp[r][v].Merge(o.samp[r][v]); err != nil {
				return fmt.Errorf("agm: merge round %d vertex %d: %w", r, v, err)
			}
		}
	}
	return nil
}

// Tags for the application sketches built on top of the base sketch.
const (
	tagKConn uint64 = 0xd15c_0008
	tagBip   uint64 = 0xd15c_0009
	tagMSF   uint64 = 0xd15c_000a
)

// appendBlock writes a length-prefixed byte block.
func appendBlock(out []byte, block []byte) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(block)))
	return append(append(out, tmp[:]...), block...)
}

// blockReader cursors over length-prefixed blocks.
type blockReader struct {
	data []byte
	pos  int
}

func (r *blockReader) u64() (uint64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, errCorrupt
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos : r.pos+8])
	r.pos += 8
	return v, nil
}

func (r *blockReader) block() ([]byte, error) {
	ln, err := r.u64()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.data)-r.pos) < ln {
		return nil, errCorrupt
	}
	b := r.data[r.pos : r.pos+int(ln)]
	r.pos += int(ln)
	return b, nil
}

func (r *blockReader) done() error {
	if r.pos != len(r.data) {
		return errCorrupt
	}
	return nil
}

// MarshalBinary encodes the k-connectivity certificate sketch as its k
// constituent AGM sketches (each carries its own seed and geometry).
func (kc *KConnectivity) MarshalBinary() ([]byte, error) {
	// The wire format carries pure stream states: fold any
	// extraction-era subtractions back in first.
	kc.restoreStream()
	var out []byte
	var tmp [8]byte
	for _, v := range []uint64{tagKConn, uint64(kc.k), uint64(kc.n)} {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	for _, s := range kc.sketches {
		enc, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = appendBlock(out, enc)
	}
	return out, nil
}

// UnmarshalBinary reconstructs a certificate sketch encoded with
// MarshalBinary.
func (kc *KConnectivity) UnmarshalBinary(data []byte) error {
	r := &blockReader{data: data}
	tag, err := r.u64()
	if err != nil || tag != tagKConn {
		return fmt.Errorf("agm: not a KConnectivity encoding: %w", errCorrupt)
	}
	k, err := r.u64()
	if err != nil {
		return err
	}
	n, err := r.u64()
	if err != nil {
		return err
	}
	if k == 0 || k > 1<<16 || n == 0 || n > 1<<24 {
		return errCorrupt
	}
	rebuilt := &KConnectivity{k: int(k), n: int(n), sketches: make([]*Sketch, k), subtracted: make([][]graph.Edge, k)}
	for i := range rebuilt.sketches {
		enc, err := r.block()
		if err != nil {
			return err
		}
		rebuilt.sketches[i] = &Sketch{}
		if err := rebuilt.sketches[i].UnmarshalBinary(enc); err != nil {
			return err
		}
	}
	if err := r.done(); err != nil {
		return err
	}
	*kc = *rebuilt
	return nil
}

// MarshalBinary encodes the bipartiteness tester as its base and
// double-cover sketches.
func (b *Bipartiteness) MarshalBinary() ([]byte, error) {
	var out []byte
	var tmp [8]byte
	for _, v := range []uint64{tagBip, uint64(b.n)} {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	for _, s := range []*Sketch{b.base, b.cover} {
		enc, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = appendBlock(out, enc)
	}
	return out, nil
}

// UnmarshalBinary reconstructs a tester encoded with MarshalBinary.
func (b *Bipartiteness) UnmarshalBinary(data []byte) error {
	r := &blockReader{data: data}
	tag, err := r.u64()
	if err != nil || tag != tagBip {
		return fmt.Errorf("agm: not a Bipartiteness encoding: %w", errCorrupt)
	}
	n, err := r.u64()
	if err != nil {
		return err
	}
	if n == 0 || n > 1<<24 {
		return errCorrupt
	}
	rebuilt := &Bipartiteness{n: int(n), base: &Sketch{}, cover: &Sketch{}}
	for _, s := range []*Sketch{rebuilt.base, rebuilt.cover} {
		enc, err := r.block()
		if err != nil {
			return err
		}
		if err := s.UnmarshalBinary(enc); err != nil {
			return err
		}
	}
	if rebuilt.base.n != rebuilt.n || rebuilt.cover.n != 2*rebuilt.n {
		return errCorrupt
	}
	if err := r.done(); err != nil {
		return err
	}
	*b = *rebuilt
	return nil
}

// MarshalBinary encodes the approximate-MSF sketch as its per-class
// prefix sketches plus the class geometry.
func (m *MSF) MarshalBinary() ([]byte, error) {
	var out []byte
	var tmp [8]byte
	for _, v := range []uint64{tagMSF, uint64(m.n), math.Float64bits(m.gamma), uint64(m.maxClass)} {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	for _, s := range m.prefixes {
		enc, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = appendBlock(out, enc)
	}
	return out, nil
}

// UnmarshalBinary reconstructs an MSF sketch encoded with
// MarshalBinary.
func (m *MSF) UnmarshalBinary(data []byte) error {
	r := &blockReader{data: data}
	tag, err := r.u64()
	if err != nil || tag != tagMSF {
		return fmt.Errorf("agm: not an MSF encoding: %w", errCorrupt)
	}
	n, err := r.u64()
	if err != nil {
		return err
	}
	gbits, err := r.u64()
	if err != nil {
		return err
	}
	maxClass, err := r.u64()
	if err != nil {
		return err
	}
	gamma := math.Float64frombits(gbits)
	if n == 0 || n > 1<<24 || maxClass > 1<<16 || !(gamma > 0) {
		return errCorrupt
	}
	rebuilt := &MSF{
		n:        int(n),
		gamma:    gamma,
		maxClass: int(maxClass),
		prefixes: make([]*Sketch, maxClass+1),
	}
	for c := range rebuilt.prefixes {
		enc, err := r.block()
		if err != nil {
			return err
		}
		rebuilt.prefixes[c] = &Sketch{}
		if err := rebuilt.prefixes[c].UnmarshalBinary(enc); err != nil {
			return err
		}
	}
	if err := r.done(); err != nil {
		return err
	}
	*m = *rebuilt
	return nil
}
