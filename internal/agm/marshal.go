package agm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const tagAGM uint64 = 0xd15c_0003

var errCorrupt = errors.New("agm: corrupt serialized data")

// MarshalBinary encodes the sketch so that a remote party can
// reconstruct and merge it — the wire format for the distributed
// protocol of the paper's introduction (servers send Sx^i, the
// coordinator sums them).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var out []byte
	u64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	u64(tagAGM)
	u64(s.seed)
	u64(uint64(s.n))
	u64(uint64(s.rounds))
	u64(uint64(s.perLvl))
	for r := 0; r < s.rounds; r++ {
		for v := 0; v < s.n; v++ {
			enc, err := s.samp[r][v].MarshalBinary()
			if err != nil {
				return nil, err
			}
			u64(uint64(len(enc)))
			out = append(out, enc...)
		}
	}
	return out, nil
}

// UnmarshalBinary reconstructs a sketch encoded with MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	pos := 0
	u64 := func() (uint64, error) {
		if len(data)-pos < 8 {
			return 0, errCorrupt
		}
		v := binary.LittleEndian.Uint64(data[pos : pos+8])
		pos += 8
		return v, nil
	}
	tag, err := u64()
	if err != nil || tag != tagAGM {
		return fmt.Errorf("agm: not an AGM sketch encoding: %w", errCorrupt)
	}
	seed, err := u64()
	if err != nil {
		return err
	}
	n, err := u64()
	if err != nil {
		return err
	}
	rounds, err := u64()
	if err != nil {
		return err
	}
	perLvl, err := u64()
	if err != nil {
		return err
	}
	if n == 0 || n > 1<<24 || rounds == 0 || rounds > 256 {
		return errCorrupt
	}
	rebuilt := New(seed, int(n), Config{Rounds: int(rounds), PerLevel: int(perLvl)})
	for r := 0; r < rebuilt.rounds; r++ {
		for v := 0; v < rebuilt.n; v++ {
			ln, err := u64()
			if err != nil {
				return err
			}
			if uint64(len(data)-pos) < ln {
				return errCorrupt
			}
			if err := rebuilt.samp[r][v].UnmarshalBinary(data[pos : pos+int(ln)]); err != nil {
				return err
			}
			pos += int(ln)
		}
	}
	if pos != len(data) {
		return errCorrupt
	}
	*s = *rebuilt
	return nil
}

// Merge adds another sketch built with the same seed and geometry; the
// result sketches the union (sum) of both update streams — the
// coordinator-side operation of the distributed protocol.
func (s *Sketch) Merge(o *Sketch) error {
	if s.seed != o.seed || s.n != o.n || s.rounds != o.rounds || s.perLvl != o.perLvl {
		return fmt.Errorf("agm: merging incompatible sketches (seed %d/%d n %d/%d rounds %d/%d perLevel %d/%d)",
			s.seed, o.seed, s.n, o.n, s.rounds, o.rounds, s.perLvl, o.perLvl)
	}
	for r := 0; r < s.rounds; r++ {
		for v := 0; v < s.n; v++ {
			if err := s.samp[r][v].Merge(o.samp[r][v]); err != nil {
				return fmt.Errorf("agm: merge round %d vertex %d: %w", r, v, err)
			}
		}
	}
	return nil
}
