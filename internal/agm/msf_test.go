package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// exactMSFWeight computes the exact MSF weight by Kruskal.
func exactMSFWeight(g *graph.Graph) float64 {
	edges := g.Edges()
	// Insertion sort by weight (test helper; sizes are small).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].W < edges[j-1].W; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	uf := graph.NewUnionFind(g.N())
	total := 0.0
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			total += e.W
		}
	}
	return total
}

func buildMSF(t *testing.T, g *graph.Graph, wmax, gamma float64, seed uint64) []graph.Edge {
	t.Helper()
	m := NewMSF(seed, g.N(), wmax, gamma)
	if err := stream.FromGraph(g, seed+1).Replay(func(u stream.Update) error {
		m.AddUpdate(u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forest()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMSFSpansAndUsesRealEdges(t *testing.T) {
	base := graph.ConnectedGNP(30, 0.15, 1)
	g := graph.RandomWeighted(base, 1, 50, 2)
	f := buildMSF(t, g, 50, 0.5, 3)
	uf := graph.NewUnionFind(g.N())
	for _, e := range f {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("MSF edge (%d,%d) not in graph", e.U, e.V)
		}
		if !uf.Union(e.U, e.V) {
			t.Fatalf("MSF has a cycle at (%d,%d)", e.U, e.V)
		}
	}
	if uf.Sets() != 1 {
		t.Errorf("MSF leaves %d components", uf.Sets())
	}
	if len(f) != g.N()-1 {
		t.Errorf("MSF has %d edges, want %d", len(f), g.N()-1)
	}
}

func TestMSFWeightApproximation(t *testing.T) {
	// The sketch-MSF's true weight (actual edge weights of the chosen
	// edges) must be within (1+gamma) of the exact MSF weight — class
	// rounding is the only error source.
	base := graph.ConnectedGNP(24, 0.25, 4)
	g := graph.RandomWeighted(base, 1, 100, 5)
	const gamma = 0.5
	f := buildMSF(t, g, 100, gamma, 6)
	got := 0.0
	for _, e := range f {
		w, _ := g.Weight(e.U, e.V)
		got += w
	}
	exact := exactMSFWeight(g)
	if got < exact-1e-9 {
		t.Fatalf("MSF weight %v below exact optimum %v — impossible", got, exact)
	}
	if got > (1+gamma)*exact+1e-9 {
		t.Errorf("MSF weight %v exceeds (1+γ)·opt = %v", got, (1+gamma)*exact)
	}
}

func TestMSFPrefersLightEdges(t *testing.T) {
	// Two vertices joined by a light path and a heavy direct edge: the
	// MSF must use the light path and skip the heavy edge.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 100)
	f := buildMSF(t, g, 100, 0.5, 7)
	for _, e := range f {
		if e.U == 0 && e.V == 3 {
			t.Error("MSF used the heavy edge despite a light path")
		}
	}
	if len(f) != 3 {
		t.Errorf("forest size %d, want 3", len(f))
	}
}

func TestMSFUnderChurn(t *testing.T) {
	base := graph.ConnectedGNP(20, 0.2, 8)
	g := graph.RandomWeighted(base, 1, 30, 9)
	m := NewMSF(10, g.N(), 30, 1)
	st := stream.WithChurn(g, 150, 11)
	if err := st.Replay(func(u stream.Update) error { m.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forest()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range f {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("churn leaked edge (%d,%d) into MSF", e.U, e.V)
		}
	}
	uf := graph.NewUnionFind(g.N())
	for _, e := range f {
		uf.Union(e.U, e.V)
	}
	if uf.Sets() != 1 {
		t.Error("MSF under churn lost connectivity")
	}
}

func TestMSFDisconnected(t *testing.T) {
	g := graph.New(10)
	g.AddEdge(0, 1, 2)
	g.AddEdge(2, 3, 5)
	m := NewMSF(12, g.N(), 10, 1)
	_ = stream.FromGraph(g, 13).Replay(func(u stream.Update) error {
		m.AddUpdate(u)
		return nil
	})
	f, err := m.Forest()
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Errorf("forest has %d edges, want 2", len(f))
	}
}

func TestMSFSpaceWords(t *testing.T) {
	m := NewMSF(14, 16, 100, 0.5)
	if m.SpaceWords() <= 0 {
		t.Error("space accounting")
	}
}
