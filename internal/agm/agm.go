// Package agm implements the graph-connectivity sketch of Ahn, Guha and
// McGregor [AGM12a] — the paper's Theorem 10 substrate: a single-pass
// linear sketch from which a spanning forest of the streamed graph can
// be extracted with high probability.
//
// Each vertex v keeps L0-samplers of its signed edge-incidence vector:
// edge {a, b} with a < b contributes +1 at coordinate enc(a,b) of a's
// vector and −1 of b's. Summing the vectors of a vertex set S cancels
// internal edges exactly, leaving the edge boundary ∂S — so Borůvka
// rounds can repeatedly sample outgoing edges of current components and
// merge. The two linearity properties the paper exploits are explicit
// here: SubtractEdges (used by Algorithm 3 to remove E_low before
// computing the forest) and the ability to run the forest on supernode
// groups (collapsing clusters T_u).
package agm

import (
	"fmt"
	"sort"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/sketch"
	"dynstream/internal/stream"
)

// Sketch is the per-graph AGM connectivity sketch: `rounds` independent
// L0-samplers per vertex, one consumed per Borůvka round. All samplers
// of a round share one L0Family (hash functions, fingerprint power
// tables, geometry) and their cell state is flattened into contiguous
// per-round arrays, so New allocates O(rounds) objects instead of
// n×rounds×levels.
type Sketch struct {
	seed   uint64
	n      int
	rounds int
	fam    []*sketch.L0Family    // fam[r]: shared randomness of round r
	samp   [][]*sketch.L0Sampler // samp[r][v]
	perLvl int

	hint sketch.L0Hint // scratch routing buffer reused across updates
}

// Config tunes the sketch.
type Config struct {
	// Rounds is the number of Borůvka rounds (default ceil(log2 n)+2).
	Rounds int
	// PerLevel is the sparse-recovery budget per L0 level (default 4).
	PerLevel int
}

// New creates an AGM sketch for a graph on n vertices.
func New(seed uint64, n int, cfg Config) *Sketch {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 2
		for x := 1; x < n; x *= 2 {
			rounds++
		}
	}
	perLvl := cfg.PerLevel
	if perLvl == 0 {
		perLvl = 4
	}
	s := &Sketch{seed: seed, n: n, rounds: rounds, perLvl: perLvl}
	universe := uint64(n) * uint64(n)
	s.fam = make([]*sketch.L0Family, rounds)
	s.samp = make([][]*sketch.L0Sampler, rounds)
	for r := 0; r < rounds; r++ {
		// All vertices share one projection per round: summing vertex
		// sketches must equal sketching the summed incidence vectors,
		// so the hash functions are a function of the round only — one
		// family per round, cell state in one backing allocation.
		roundSeed := hashing.Mix(seed, uint64(r))
		s.fam[r] = sketch.NewL0Family(roundSeed, universe, perLvl)
		s.samp[r] = s.fam[r].NewSamplers(n)
	}
	return s
}

// N returns the vertex count.
func (s *Sketch) N() int { return s.n }

// AddEdge folds an update for edge {u, v} with multiplicity delta into
// both endpoint sketches with opposite signs. The two endpoint samplers
// of a round share their family, so the update's routing (geometric
// level, fingerprint powers, cell indices) is computed once per round
// and replayed into both.
func (s *Sketch) AddEdge(u, v int, delta int64) {
	if u == v || delta == 0 {
		return
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	key := stream.PairKey(a, b, s.n)
	for r := 0; r < s.rounds; r++ {
		s.fam[r].Hint(key, &s.hint)
		s.samp[r][a].AddHint(key, delta, &s.hint)
		s.samp[r][b].AddHint(key, -delta, &s.hint)
	}
}

// AddUpdate folds a stream update.
func (s *Sketch) AddUpdate(u stream.Update) {
	s.AddEdge(u.U, u.V, int64(u.Delta))
}

// AddBatch folds a batch of stream updates; bit-identical to calling
// AddUpdate per element. Batching lets callers amortize the replay
// machinery (shard dispatch, bounds checks) over many updates.
func (s *Sketch) AddBatch(batch []stream.Update) {
	for _, u := range batch {
		s.AddEdge(u.U, u.V, int64(u.Delta))
	}
}

// SubtractEdges removes an explicit edge set from the sketch — the
// linear operation Algorithm 3 uses to form G' = G − E_low after the
// stream has ended.
func (s *Sketch) SubtractEdges(edges []graph.Edge) {
	for _, e := range edges {
		s.AddEdge(e.U, e.V, -1)
	}
}

// SpanningForest extracts a spanning forest of the sketched graph. If
// groups is non-nil, each group of vertices is first collapsed into a
// supernode (clusters T_u of Algorithm 3); vertices absent from every
// group stay singletons. The returned edges are original graph edges
// whose endpoints lie in different (super)components, forming a forest
// over the contraction.
func (s *Sketch) SpanningForest(groups [][]int) ([]graph.Edge, error) {
	return s.SpanningForestOpts(groups, parallel.Default())
}

// SpanningForestParallel is SpanningForest with each Borůvka round's
// per-component sampler merges and L0 decodes fanned across `workers`
// goroutines. The extracted forest is bit-identical to SpanningForest:
// component results are placed by sorted root index and the unions are
// applied serially in that order, exactly the serial schedule.
func (s *Sketch) SpanningForestParallel(groups [][]int, workers int) ([]graph.Edge, error) {
	return s.SpanningForestOpts(groups, parallel.Default().WithWorkers(workers))
}

// SpanningForestOpts is the policy-driven forest extraction behind
// SpanningForest / SpanningForestParallel. Within each round the
// per-component work (merge the component's samplers, draw one
// boundary edge) touches disjoint state, so it fans across the
// policy's workers with one reusable scratch sampler per worker;
// everything order-sensitive — the round barrier, the union
// application, membership maintenance — stays serial.
func (s *Sketch) SpanningForestOpts(groups [][]int, p *parallel.Policy) ([]graph.Edge, error) {
	uf := graph.NewUnionFind(s.n)
	for gi, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		for _, v := range grp {
			if v < 0 || v >= s.n {
				return nil, fmt.Errorf("agm: group %d contains out-of-range vertex %d", gi, v)
			}
			uf.Union(grp[0], v)
		}
	}

	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("agm: %w", err)
	}

	// Component membership, maintained incrementally: built once from
	// the union-find (each component's members ascending), then merged
	// pairwise as unions happen — instead of a fresh O(n) map rebuild
	// per round. Sorted-merge keeps every list ascending, matching the
	// 0..n-1 scan the per-round rebuild used to produce.
	members := map[int][]int{}
	for v := 0; v < s.n; v++ {
		root := uf.Find(v)
		members[root] = append(members[root], v)
	}

	scratch := make([]*sketch.L0Sampler, p.Workers())
	var forest []graph.Edge
	for r := 0; r < s.rounds; r++ {
		if uf.Sets() == 1 {
			break
		}
		// Visit components in sorted root order: map iteration order
		// would otherwise make the union order — and therefore the
		// extracted forest — nondeterministic across runs on identical
		// sketch states.
		roots := make([]int, 0, len(members))
		for root := range members {
			roots = append(roots, root)
		}
		sort.Ints(roots)
		// Per-component picks, indexed by sorted-root position so the
		// serial union order below is independent of scheduling. The
		// workers only read samplers and the frozen membership lists;
		// lazy power tables are materialized up front (Warm) because
		// decoding shares them across the whole round.
		s.fam[r].Warm()
		type found struct {
			a, b int
			ok   bool
		}
		picks := make([]found, len(roots))
		err := parallel.ForEachWorkerOpts(p, len(roots), func(w, i int) error {
			m := members[roots[i]]
			sc := scratch[w]
			if sc == nil {
				sc = &sketch.L0Sampler{}
				scratch[w] = sc
			}
			sc.SetTo(s.samp[r][m[0]])
			for _, v := range m[1:] {
				if err := sc.Merge(s.samp[r][v]); err != nil {
					return fmt.Errorf("agm: merge: %w", err)
				}
			}
			key, _, ok := sc.Sample()
			if !ok {
				return nil // isolated component (or decode failure)
			}
			a, b := stream.DecodePairKey(key, s.n)
			picks[i] = found{a: a, b: b, ok: true}
			return nil
		})
		if err != nil {
			return nil, err
		}
		progress := false
		for _, pk := range picks {
			if !pk.ok {
				continue
			}
			ra, rb := uf.Find(pk.a), uf.Find(pk.b)
			if ra == rb {
				continue
			}
			uf.Union(pk.a, pk.b)
			root := uf.Find(pk.a)
			merged := mergeSortedInts(members[ra], members[rb])
			delete(members, ra)
			delete(members, rb)
			members[root] = merged
			forest = append(forest, graph.Edge{U: pk.a, V: pk.b, W: 1}.Canon())
			progress = true
		}
		if !progress {
			break
		}
	}
	return forest, nil
}

// mergeSortedInts merges two ascending duplicate-free lists into one.
func mergeSortedInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// SpaceWords returns the memory footprint in 64-bit words.
func (s *Sketch) SpaceWords() int {
	w := 2
	for _, row := range s.samp {
		for _, sp := range row {
			w += sp.SpaceWords()
		}
	}
	return w
}
