// Package agm implements the graph-connectivity sketch of Ahn, Guha and
// McGregor [AGM12a] — the paper's Theorem 10 substrate: a single-pass
// linear sketch from which a spanning forest of the streamed graph can
// be extracted with high probability.
//
// Each vertex v keeps L0-samplers of its signed edge-incidence vector:
// edge {a, b} with a < b contributes +1 at coordinate enc(a,b) of a's
// vector and −1 of b's. Summing the vectors of a vertex set S cancels
// internal edges exactly, leaving the edge boundary ∂S — so Borůvka
// rounds can repeatedly sample outgoing edges of current components and
// merge. The two linearity properties the paper exploits are explicit
// here: SubtractEdges (used by Algorithm 3 to remove E_low before
// computing the forest) and the ability to run the forest on supernode
// groups (collapsing clusters T_u).
package agm

import (
	"fmt"
	"sort"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/sketch"
	"dynstream/internal/stream"
)

// Sketch is the per-graph AGM connectivity sketch: `rounds` independent
// L0-samplers per vertex, one consumed per Borůvka round. All samplers
// of a round share one L0Family (hash functions, fingerprint power
// tables, geometry) and their cell state is flattened into contiguous
// per-round arrays, so New allocates O(rounds) objects instead of
// n×rounds×levels.
type Sketch struct {
	seed   uint64
	n      int
	rounds int
	fam    []*sketch.L0Family    // fam[r]: shared randomness of round r
	samp   [][]*sketch.L0Sampler // samp[r][v]
	perLvl int

	hint sketch.L0Hint // scratch routing buffer reused across updates
}

// Config tunes the sketch.
type Config struct {
	// Rounds is the number of Borůvka rounds (default ceil(log2 n)+2).
	Rounds int
	// PerLevel is the sparse-recovery budget per L0 level (default 4).
	PerLevel int
}

// New creates an AGM sketch for a graph on n vertices.
func New(seed uint64, n int, cfg Config) *Sketch {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 2
		for x := 1; x < n; x *= 2 {
			rounds++
		}
	}
	perLvl := cfg.PerLevel
	if perLvl == 0 {
		perLvl = 4
	}
	s := &Sketch{seed: seed, n: n, rounds: rounds, perLvl: perLvl}
	universe := uint64(n) * uint64(n)
	s.fam = make([]*sketch.L0Family, rounds)
	s.samp = make([][]*sketch.L0Sampler, rounds)
	for r := 0; r < rounds; r++ {
		// All vertices share one projection per round: summing vertex
		// sketches must equal sketching the summed incidence vectors,
		// so the hash functions are a function of the round only — one
		// family per round, cell state in one backing allocation.
		roundSeed := hashing.Mix(seed, uint64(r))
		s.fam[r] = sketch.NewL0Family(roundSeed, universe, perLvl)
		s.samp[r] = s.fam[r].NewSamplers(n)
	}
	return s
}

// N returns the vertex count.
func (s *Sketch) N() int { return s.n }

// AddEdge folds an update for edge {u, v} with multiplicity delta into
// both endpoint sketches with opposite signs. The two endpoint samplers
// of a round share their family, so the update's routing (geometric
// level, fingerprint powers, cell indices) is computed once per round
// and replayed into both.
func (s *Sketch) AddEdge(u, v int, delta int64) {
	if u == v || delta == 0 {
		return
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	key := stream.PairKey(a, b, s.n)
	for r := 0; r < s.rounds; r++ {
		s.fam[r].Hint(key, &s.hint)
		s.samp[r][a].AddHint(key, delta, &s.hint)
		s.samp[r][b].AddHint(key, -delta, &s.hint)
	}
}

// AddUpdate folds a stream update.
func (s *Sketch) AddUpdate(u stream.Update) {
	s.AddEdge(u.U, u.V, int64(u.Delta))
}

// AddBatch folds a batch of stream updates; bit-identical to calling
// AddUpdate per element. Batching lets callers amortize the replay
// machinery (shard dispatch, bounds checks) over many updates.
func (s *Sketch) AddBatch(batch []stream.Update) {
	for _, u := range batch {
		s.AddEdge(u.U, u.V, int64(u.Delta))
	}
}

// SubtractEdges removes an explicit edge set from the sketch — the
// linear operation Algorithm 3 uses to form G' = G − E_low after the
// stream has ended.
func (s *Sketch) SubtractEdges(edges []graph.Edge) {
	for _, e := range edges {
		s.AddEdge(e.U, e.V, -1)
	}
}

// SpanningForest extracts a spanning forest of the sketched graph. If
// groups is non-nil, each group of vertices is first collapsed into a
// supernode (clusters T_u of Algorithm 3); vertices absent from every
// group stay singletons. The returned edges are original graph edges
// whose endpoints lie in different (super)components, forming a forest
// over the contraction.
func (s *Sketch) SpanningForest(groups [][]int) ([]graph.Edge, error) {
	uf := graph.NewUnionFind(s.n)
	for gi, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		for _, v := range grp {
			if v < 0 || v >= s.n {
				return nil, fmt.Errorf("agm: group %d contains out-of-range vertex %d", gi, v)
			}
			uf.Union(grp[0], v)
		}
	}

	var forest []graph.Edge
	for r := 0; r < s.rounds; r++ {
		if uf.Sets() == 1 {
			break
		}
		// Gather members per current component, visited in sorted root
		// order: map iteration order would otherwise make the union
		// order — and therefore the extracted forest — nondeterministic
		// across runs on identical sketch states.
		members := map[int][]int{}
		for v := 0; v < s.n; v++ {
			root := uf.Find(v)
			members[root] = append(members[root], v)
		}
		roots := make([]int, 0, len(members))
		for root := range members {
			roots = append(roots, root)
		}
		sort.Ints(roots)
		type found struct{ a, b int }
		var picks []found
		for _, root := range roots {
			m := members[root]
			merged := s.samp[r][m[0]].Clone()
			for _, v := range m[1:] {
				if err := merged.Merge(s.samp[r][v]); err != nil {
					return nil, fmt.Errorf("agm: merge: %w", err)
				}
			}
			key, _, ok := merged.Sample()
			if !ok {
				continue // isolated component (or decode failure)
			}
			a, b := stream.DecodePairKey(key, s.n)
			picks = append(picks, found{a, b})
		}
		progress := false
		for _, p := range picks {
			if uf.Union(p.a, p.b) {
				forest = append(forest, graph.Edge{U: p.a, V: p.b, W: 1}.Canon())
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return forest, nil
}

// SpaceWords returns the memory footprint in 64-bit words.
func (s *Sketch) SpaceWords() int {
	w := 2
	for _, row := range s.samp {
		for _, sp := range row {
			w += sp.SpaceWords()
		}
	}
	return w
}
