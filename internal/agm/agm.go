// Package agm implements the graph-connectivity sketch of Ahn, Guha and
// McGregor [AGM12a] — the paper's Theorem 10 substrate: a single-pass
// linear sketch from which a spanning forest of the streamed graph can
// be extracted with high probability.
//
// Each vertex v keeps L0-samplers of its signed edge-incidence vector:
// edge {a, b} with a < b contributes +1 at coordinate enc(a,b) of a's
// vector and −1 of b's. Summing the vectors of a vertex set S cancels
// internal edges exactly, leaving the edge boundary ∂S — so Borůvka
// rounds can repeatedly sample outgoing edges of current components and
// merge. The two linearity properties the paper exploits are explicit
// here: SubtractEdges (used by Algorithm 3 to remove E_low before
// computing the forest) and the ability to run the forest on supernode
// groups (collapsing clusters T_u).
package agm

import (
	"fmt"
	"sort"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/obs"
	"dynstream/internal/parallel"
	"dynstream/internal/sketch"
	"dynstream/internal/stream"
)

// Sketch is the per-graph AGM connectivity sketch: `rounds` independent
// L0-samplers per vertex, one consumed per Borůvka round. All samplers
// of a round share one L0Family (hash functions, fingerprint power
// tables, geometry) and their cell state is flattened into contiguous
// per-round arrays, so New allocates O(rounds) objects instead of
// n×rounds×levels.
type Sketch struct {
	seed   uint64
	n      int
	rounds int
	fam    []*sketch.L0Family    // fam[r]: shared randomness of round r
	samp   [][]*sketch.L0Sampler // samp[r][v]
	perLvl int

	hint sketch.L0Hint // scratch routing buffer reused across updates

	// Decode cache (EnableDecodeCache): per-(round, component) Borůvka
	// picks from the previous extraction, reused when the component's
	// member list and the generation sum of its samplers are unchanged.
	// Flat per-round arrays indexed by the component's union-find root —
	// a map would put ~n lookups per round on the serial re-query path.
	caching bool
	picks   [][]pickEntry // picks[r][root]

	// Merged-sampler cache: each decoded component's summed sampler,
	// indexed by round and minimum member (stable across queries, unlike
	// the union-find root). A dirty component refreshes its cached sum
	// instead of re-merging every member sampler: fold the logged
	// updates since its last sync, then reconcile the membership delta
	// by merging gained members and subtracting lost ones — every step
	// an exact linear cell operation. log records every AddEdge while
	// caching is on; logGen invalidates fold windows when the log
	// resets; epoch invalidates them on non-logged mutations (Merge).
	merges [][]*mergeEntry // merges[r][minMember]
	log    []logUpd
	logGen uint64
	epoch  uint64

	// Cumulative cache-pass outcomes while caching is on: a hit is a
	// component whose cached pick was served without re-decoding, a miss
	// is a dirty component that fanned out to the workers. Read by
	// DecodeCacheStats for operational visibility (daemon /metrics).
	cacheHits   uint64
	cacheMisses uint64
}

// DecodeCacheStats reports the cumulative decode-cache hit and miss
// counts of this sketch's extraction cache pass. Both are zero until a
// cached extraction runs (EnableDecodeCache). Counters are cumulative
// across queries and survive cache invalidation.
func (s *Sketch) DecodeCacheStats() (hits, misses uint64) {
	return s.cacheHits, s.cacheMisses
}

// mergeCacheMinMembers is the component size from which extraction
// keeps the component's merged sampler between queries. Singletons
// never need an entry — their "sum" is the vertex sampler itself,
// sampled in place.
const mergeCacheMinMembers = 2

// logUpd is one logged stream update in canonical (a < b) form.
type logUpd struct {
	key   uint64
	a, b  int32
	delta int64
}

// mergeEntry caches one component's merged sampler. samp equals the
// sum of members' samplers as of (logGen, logPos): provided no
// non-logged mutation happened (epoch) and the log window survives
// (logGen), folding log[logPos:] restricted to members reproduces the
// current sum bit for bit, because cell updates are commutative and
// associative field additions. genSum lets a clean re-query re-stamp
// the entry without any folding.
type mergeEntry struct {
	members []int
	genSum  uint64
	epoch   uint64
	logGen  uint64
	logPos  int
	samp    *sketch.L0Sampler

	// Cached Sample() result drawn from samp in its current state.
	// Valid while pickKnown and samp untouched: a refresh that applies
	// zero log hints and no membership delta leaves the sum — and so
	// the deterministic Sample — bit-identical, letting the decode be
	// skipped outright.
	pa, pb    int
	pok       bool
	pickKnown bool
}

// pickEntry is a cached component decode. members is the exact member
// list the pick was drawn over (nil marks an empty slot); genSum is
// the sum of those members' sampler generations at decode time.
// Generations are monotonic and bump on every mutation, so an equal
// member list with an equal generation sum implies every member
// sampler is bit-identical to the cached decode's input — and Sample
// is a deterministic function of that state, so the cached pick IS the
// pick a fresh decode would draw.
type pickEntry struct {
	members []int
	genSum  uint64
	a, b    int
	ok      bool
}

// EnableDecodeCache turns on (or off) the per-component pick cache
// used by SpanningForestOpts. Off (the default) keeps one-shot builds
// allocation-lean; live handles turn it on so that re-queries after
// small update batches re-decode only components whose samplers
// changed (the Liu–Tarjan-style restart from the previous labeling).
// Turning it off releases the cache.
func (s *Sketch) EnableDecodeCache(on bool) {
	s.caching = on
	if !on {
		s.picks = nil
		s.merges = nil
		s.log = nil
		s.logGen++
	}
}

// InvalidateDecodeCache drops every cached component decode; the next
// extraction runs cold. Correctness never requires calling this — the
// generation checks already reject stale entries — it only bounds
// memory or forces a cold decode for measurement.
func (s *Sketch) InvalidateDecodeCache() {
	s.picks = nil
	s.merges = nil
	s.log = s.log[:0]
	s.logGen++
}

// cachedPickCount reports how many component decodes the pick cache
// currently holds (test hook).
func (s *Sketch) cachedPickCount() int {
	count := 0
	for _, row := range s.picks {
		for i := range row {
			if row[i].members != nil {
				count++
			}
		}
	}
	return count
}

// GenSum reports the total sampler generation over the given vertices
// across all rounds — the monotonic dirtiness signal the decode cache
// keys on. An unchanged GenSum over a vertex set means no mutation
// (AddUpdate, Merge, Unmarshal) touched any of those samplers, so a
// cached component decode over them is still exact. Tests use it to
// pin down which components a Merge actually dirtied.
func (s *Sketch) GenSum(vertices ...int) uint64 {
	var sum uint64
	for r := 0; r < s.rounds; r++ {
		sum += s.genSumOf(r, vertices)
	}
	return sum
}

// genSumOf sums the generation counters of the given members' samplers
// in round r.
func (s *Sketch) genSumOf(r int, members []int) uint64 {
	var sum uint64
	for _, v := range members {
		sum += s.samp[r][v].Gen()
	}
	return sum
}

// intsEqual reports whether two int slices are element-wise equal.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Config tunes the sketch.
type Config struct {
	// Rounds is the number of Borůvka rounds (default ceil(log2 n)+2).
	Rounds int
	// PerLevel is the sparse-recovery budget per L0 level (default 4).
	PerLevel int
}

// New creates an AGM sketch for a graph on n vertices.
func New(seed uint64, n int, cfg Config) *Sketch {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 2
		for x := 1; x < n; x *= 2 {
			rounds++
		}
	}
	perLvl := cfg.PerLevel
	if perLvl == 0 {
		perLvl = 4
	}
	s := &Sketch{seed: seed, n: n, rounds: rounds, perLvl: perLvl}
	universe := uint64(n) * uint64(n)
	s.fam = make([]*sketch.L0Family, rounds)
	for r := 0; r < rounds; r++ {
		// All vertices share one projection per round: summing vertex
		// sketches must equal sketching the summed incidence vectors,
		// so the hash functions are a function of the round only — one
		// family per round.
		roundSeed := hashing.Mix(seed, uint64(r))
		s.fam[r] = sketch.NewL0Family(roundSeed, universe, perLvl)
	}
	// One grid-wide arena, vertex-major: every edge update touches all
	// rounds of its two endpoints, so the level-0 cells of one vertex
	// are laid out consecutively across rounds (a strided sweep) rather
	// than scattered over per-round allocations.
	s.samp = sketch.NewSamplerGrid(s.fam, n)
	return s
}

// N returns the vertex count.
func (s *Sketch) N() int { return s.n }

// AddEdge folds an update for edge {u, v} with multiplicity delta into
// both endpoint sketches with opposite signs. The two endpoint samplers
// of a round share their family, so the update's routing (geometric
// level, fingerprint powers, cell indices) is computed once per round
// and replayed into both.
func (s *Sketch) AddEdge(u, v int, delta int64) {
	if u == v || delta == 0 {
		return
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	key := stream.PairKey(a, b, s.n)
	if s.caching {
		s.logUpdate(key, a, b, delta)
	}
	for r := 0; r < s.rounds; r++ {
		s.fam[r].Hint(key, &s.hint)
		s.samp[r][a].AddHint(key, delta, &s.hint)
		s.samp[r][b].AddHint(key, -delta, &s.hint)
	}
}

// logUpdate appends one update to the fold window. If the window
// outgrows its budget the log resets and logGen advances: cached
// merged samplers fall back to a full re-merge at their next dirty
// query instead of folding an unbounded backlog.
func (s *Sketch) logUpdate(key uint64, a, b int, delta int64) {
	if len(s.log) >= 4*s.n+1024 {
		s.log = s.log[:0]
		s.logGen++
	}
	s.log = append(s.log, logUpd{key: key, a: int32(a), b: int32(b), delta: delta})
}

// AddUpdate folds a stream update.
func (s *Sketch) AddUpdate(u stream.Update) {
	s.AddEdge(u.U, u.V, int64(u.Delta))
}

// AddBatch folds a batch of stream updates; bit-identical to calling
// AddUpdate per element. Batching lets callers amortize the replay
// machinery (shard dispatch, bounds checks) over many updates.
func (s *Sketch) AddBatch(batch []stream.Update) {
	for _, u := range batch {
		s.AddEdge(u.U, u.V, int64(u.Delta))
	}
}

// SubtractEdges removes an explicit edge set from the sketch — the
// linear operation Algorithm 3 uses to form G' = G − E_low after the
// stream has ended.
func (s *Sketch) SubtractEdges(edges []graph.Edge) {
	for _, e := range edges {
		s.AddEdge(e.U, e.V, -1)
	}
}

// SpanningForest extracts a spanning forest of the sketched graph. If
// groups is non-nil, each group of vertices is first collapsed into a
// supernode (clusters T_u of Algorithm 3); vertices absent from every
// group stay singletons. The returned edges are original graph edges
// whose endpoints lie in different (super)components, forming a forest
// over the contraction.
func (s *Sketch) SpanningForest(groups [][]int) ([]graph.Edge, error) {
	return s.SpanningForestOpts(groups, parallel.Default())
}

// SpanningForestParallel is SpanningForest with each Borůvka round's
// per-component sampler merges and L0 decodes fanned across `workers`
// goroutines. The extracted forest is bit-identical to SpanningForest:
// component results are placed by sorted root index and the unions are
// applied serially in that order, exactly the serial schedule.
func (s *Sketch) SpanningForestParallel(groups [][]int, workers int) ([]graph.Edge, error) {
	return s.SpanningForestOpts(groups, parallel.Default().WithWorkers(workers))
}

// SpanningForestOpts is the policy-driven forest extraction behind
// SpanningForest / SpanningForestParallel. Within each round the
// per-component work (merge the component's samplers, draw one
// boundary edge) touches disjoint state, so it fans across the
// policy's workers with one reusable scratch sampler per worker;
// everything order-sensitive — the round barrier, the union
// application, membership maintenance — stays serial.
func (s *Sketch) SpanningForestOpts(groups [][]int, p *parallel.Policy) ([]graph.Edge, error) {
	uf := graph.NewUnionFind(s.n)
	for gi, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		for _, v := range grp {
			if v < 0 || v >= s.n {
				return nil, fmt.Errorf("agm: group %d contains out-of-range vertex %d", gi, v)
			}
			uf.Union(grp[0], v)
		}
	}

	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("agm: %w", err)
	}

	// Component membership, maintained incrementally: built once from
	// the union-find (each component's members ascending), then merged
	// pairwise as unions happen — instead of a fresh O(n) map rebuild
	// per round. Sorted-merge keeps every list ascending, matching the
	// 0..n-1 scan the per-round rebuild used to produce.
	members := map[int][]int{}
	for v := 0; v < s.n; v++ {
		root := uf.Find(v)
		members[root] = append(members[root], v)
	}

	// Roots in ascending order (map iteration order would make the
	// union order — and so the forest — nondeterministic), sorted once:
	// a union's surviving root is one of the two merged roots, so the
	// root set only shrinks and each round filters the previous list in
	// place instead of re-collecting and re-sorting.
	roots := make([]int, 0, len(members))
	for root := range members {
		roots = append(roots, root)
	}
	sort.Ints(roots)

	scratch := make([]*sketch.L0Sampler, p.Workers())
	hints := make([]sketch.L0Hint, p.Workers())
	// Per-component pick of the current round, indexed by sorted-root
	// position so the serial union order below is independent of
	// scheduling.
	type found struct {
		a, b int
		ok   bool
	}
	// Per-round scratch, sized once to the initial component count and
	// resliced as components merge away.
	picks := make([]found, len(roots))
	genSums := make([]uint64, len(roots))
	dirty := make([]int, 0, len(roots))
	var created []*mergeEntry
	if s.caching {
		created = make([]*mergeEntry, len(roots))
		if s.picks == nil {
			s.picks = make([][]pickEntry, s.rounds)
			s.merges = make([][]*mergeEntry, s.rounds)
		}
	}

	var forest []graph.Edge
	for r := 0; r < s.rounds; r++ {
		if uf.Sets() == 1 {
			break
		}
		if r > 0 {
			// Drop roots merged away last round; survivors keep order.
			k := 0
			for _, root := range roots {
				if _, ok := members[root]; ok {
					roots[k] = root
					k++
				}
			}
			roots = roots[:k]
		}
		var sp obs.Span
		if tr := p.Tracer(); tr != nil {
			sp = tr.Span(fmt.Sprintf("agm/round%02d", r))
		}
		hits0, misses0 := s.cacheHits, s.cacheMisses
		picks = picks[:len(roots)]
		genSums = genSums[:len(roots)]
		dirty = dirty[:0]
		// The workers only read samplers and the frozen membership
		// lists; lazy power tables are materialized up front (Warm)
		// because decoding shares them across the whole round.
		s.fam[r].Warm()
		// Cache pass (serial, cheap): a component whose member list and
		// sampler generation sum match the previous extraction decodes
		// to the same pick; only the dirty subset fans out to workers.
		if s.caching {
			if s.picks[r] == nil {
				s.picks[r] = make([]pickEntry, s.n)
				s.merges[r] = make([]*mergeEntry, s.n)
			}
			for i, root := range roots {
				m := members[root]
				genSums[i] = s.genSumOf(r, m)
				if e := &s.picks[r][root]; e.members != nil && e.genSum == genSums[i] && intsEqual(e.members, m) {
					s.cacheHits++
					picks[i] = found{a: e.a, b: e.b, ok: e.ok}
					// The generation match proves the member samplers —
					// and so their cached sum — are untouched since the
					// last sync: re-stamp the merged sampler to the
					// current fold window so it stays foldable.
					if me := s.merges[r][m[0]]; me != nil &&
						me.genSum == genSums[i] && intsEqual(me.members, m) {
						me.epoch = s.epoch
						me.logGen = s.logGen
						me.logPos = len(s.log)
					}
					continue
				}
				s.cacheMisses++
				dirty = append(dirty, i)
			}
		} else {
			for i := range roots {
				dirty = append(dirty, i)
			}
		}
		// New merged-sampler entries are collected per dirty index and
		// inserted serially after the fan-out: workers only read the
		// merges table (and mutate entries of their own slot, which no
		// other worker shares — dirty indices are disjoint components).
		err := parallel.ForEachWorkerSubset(p, dirty, func(w, i int) error {
			picks[i] = found{}
			if s.caching {
				created[i] = nil
			}
			m := members[roots[i]]
			if len(m) == 1 {
				// A singleton's merged sampler IS its vertex sampler:
				// decode it in place (Sample is read-only).
				if key, _, ok := s.samp[r][m[0]].Sample(); ok {
					a, b := stream.DecodePairKey(key, s.n)
					picks[i] = found{a: a, b: b, ok: true}
				}
				return nil
			}
			if s.caching {
				// Fold path: refresh the cached merged sampler from the
				// update log and the membership delta instead of
				// re-merging every member sampler.
				if me := s.refreshCached(r, m, genSums[i], &hints[w]); me != nil {
					if me.pickKnown {
						picks[i] = found{a: me.pa, b: me.pb, ok: me.pok}
						return nil
					}
					if key, _, ok := me.samp.Sample(); ok {
						a, b := stream.DecodePairKey(key, s.n)
						picks[i] = found{a: a, b: b, ok: true}
					}
					me.pa, me.pb, me.pok = picks[i].a, picks[i].b, picks[i].ok
					me.pickKnown = true
					return nil
				}
			}
			sc := scratch[w]
			if sc == nil {
				sc = &sketch.L0Sampler{}
				scratch[w] = sc
			}
			if !(s.caching && s.composeCover(r, m, &hints[w], sc)) {
				sc.SetTo(s.samp[r][m[0]])
				for _, v := range m[1:] {
					// A member that never absorbed an update folds to a
					// no-op; the early-exit zero scan is far cheaper than
					// a three-lane merge sweep over its level-0 arena.
					if o := s.samp[r][v]; !o.IsZero() {
						if err := sc.Merge(o); err != nil {
							return fmt.Errorf("agm: merge: %w", err)
						}
					}
				}
			}
			if key, _, ok := sc.Sample(); ok {
				a, b := stream.DecodePairKey(key, s.n)
				picks[i] = found{a: a, b: b, ok: true}
			}
			if s.caching && len(m) >= mergeCacheMinMembers {
				pk := picks[i]
				if me := s.merges[r][m[0]]; me != nil {
					me.samp.SetTo(sc)
					me.members = m
					me.genSum = genSums[i]
					me.epoch = s.epoch
					me.logGen = s.logGen
					me.logPos = len(s.log)
					me.pa, me.pb, me.pok, me.pickKnown = pk.a, pk.b, pk.ok, true
				} else {
					fresh := &sketch.L0Sampler{}
					fresh.SetTo(sc)
					created[i] = &mergeEntry{
						members: m, genSum: genSums[i],
						epoch: s.epoch, logGen: s.logGen, logPos: len(s.log),
						samp: fresh,
						pa:   pk.a, pb: pk.b, pok: pk.ok, pickKnown: true,
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if s.caching {
			for _, i := range dirty {
				if e := created[i]; e != nil {
					s.merges[r][e.members[0]] = e
				}
				root := roots[i]
				s.picks[r][root] = pickEntry{
					members: members[root],
					genSum:  genSums[i],
					a:       picks[i].a,
					b:       picks[i].b,
					ok:      picks[i].ok,
				}
			}
		}
		progress := false
		var sampled, unions int64
		for _, pk := range picks {
			if !pk.ok {
				continue
			}
			sampled++
			ra, rb := uf.Find(pk.a), uf.Find(pk.b)
			if ra == rb {
				continue
			}
			uf.Union(pk.a, pk.b)
			root := uf.Find(pk.a)
			merged := mergeSortedInts(members[ra], members[rb])
			delete(members, ra)
			delete(members, rb)
			members[root] = merged
			forest = append(forest, graph.Edge{U: pk.a, V: pk.b, W: 1}.Canon())
			progress = true
			unions++
		}
		sp.End(
			obs.A("components", int64(len(roots))),
			obs.A("dirty", int64(len(dirty))),
			obs.A("sampled", sampled),
			obs.A("sample_empty", int64(len(roots))-sampled),
			obs.A("merges", unions),
			obs.A("cache_hit", int64(s.cacheHits-hits0)),
			obs.A("cache_miss", int64(s.cacheMisses-misses0)))
		if !progress {
			break
		}
	}
	if s.caching {
		s.completeQueryWindow()
	}
	return forest, nil
}

// refreshCached serves a dirty component's merged sampler from the
// cache. Entries are keyed by the component's minimum member (stable
// when the component gains or loses a branch across queries, unlike
// the union-find root). The refresh folds the logged updates since the
// entry's sync into the cached sum, then reconciles the membership
// delta by merging gained members' current samplers and subtracting
// lost ones — every step an exact linear cell operation, so the result
// is bit-identical to re-merging the current member samplers from
// scratch. Returns nil when no entry is usable or the delta is big
// enough that the full re-merge is cheaper.
func (s *Sketch) refreshCached(r int, m []int, genSum uint64, h *sketch.L0Hint) *mergeEntry {
	me := s.merges[r][m[0]]
	if me == nil {
		return nil
	}
	if me.epoch != s.epoch || me.logGen != s.logGen {
		return nil
	}
	gained, lost := sortedDiff(m, me.members)
	if len(gained)+len(lost)+4 >= len(m) {
		return nil
	}
	applied := s.foldInto(me, r, me.members, h)
	if applied > 0 {
		me.pickKnown = false
	}
	bad := false
	for _, v := range gained {
		if me.samp.Merge(s.samp[r][v]) != nil {
			bad = true
		}
	}
	for _, v := range lost {
		if me.samp.Sub(s.samp[r][v]) != nil {
			bad = true
		}
	}
	if bad {
		// Unreachable with same-family samplers; invalidate the entry
		// rather than trusting a half-applied refresh.
		me.logGen = s.logGen - 1
		return nil
	}
	if len(gained)+len(lost) > 0 {
		me.pickKnown = false
	}
	me.members = m
	me.genSum = genSum
	me.logPos = len(s.log)
	return me
}

// composeCover assembles a dirty component's merged sampler from
// cached sub-component entries when no single entry is close enough
// for a delta refresh. After churn, Borůvka's merge cascade often
// reshuffles which components join in a round; the new component is
// then a union of previously cached components plus a few stragglers.
// Valid entries whose member lists lie wholly inside m (and don't
// overlap an already claimed chunk) cover disjoint chunks: refresh
// each chunk by folding the update log, merge the chunk sums, and top
// up the uncovered members from their vertex samplers — exact linear
// steps, bit-identical to the full re-merge. Returns false (sc
// untouched or safely overwritable) when too little of m is covered
// to beat the plain re-merge.
func (s *Sketch) composeCover(r int, m []int, h *sketch.L0Hint, sc *sketch.L0Sampler) bool {
	if len(m) < 2*mergeCacheMinMembers {
		return false
	}
	claimed := make([]bool, len(m))
	var covers []*mergeEntry
	covered := 0
	for idx, v := range m {
		if claimed[idx] {
			continue
		}
		me := s.merges[r][v]
		if me == nil || me.epoch != s.epoch || me.logGen != s.logGen {
			continue
		}
		// me.members[0] == v; verify the rest lie in m unclaimed.
		t := idx
		usable := true
		for _, x := range me.members {
			for t < len(m) && m[t] < x {
				t++
			}
			if t >= len(m) || m[t] != x || claimed[t] {
				usable = false
				break
			}
			t++
		}
		if !usable {
			continue
		}
		t = idx
		for _, x := range me.members {
			for m[t] < x {
				t++
			}
			claimed[t] = true
			t++
		}
		covers = append(covers, me)
		covered += len(me.members)
	}
	if covered-len(covers) < len(m)/4 {
		return false // the chunks save fewer merges than they cost to stitch
	}
	for _, me := range covers {
		if s.foldInto(me, r, me.members, h) > 0 {
			me.pickKnown = false
		}
		me.logPos = len(s.log)
		me.genSum = s.genSumOf(r, me.members)
	}
	sc.SetTo(covers[0].samp)
	for _, me := range covers[1:] {
		if sc.Merge(me.samp) != nil {
			return false
		}
	}
	for idx, v := range m {
		if !claimed[idx] {
			o := s.samp[r][v]
			if o.IsZero() {
				continue // no-op fold, same skip as the direct merge loop
			}
			if sc.Merge(o) != nil {
				return false
			}
		}
	}
	return true
}

// sortedDiff returns the elements of cur absent from old (gained) and
// of old absent from cur (lost); both inputs ascending.
func sortedDiff(cur, old []int) (gained, lost []int) {
	i, j := 0, 0
	for i < len(cur) && j < len(old) {
		switch {
		case cur[i] == old[j]:
			i++
			j++
		case cur[i] < old[j]:
			gained = append(gained, cur[i])
			i++
		default:
			lost = append(lost, old[j])
			j++
		}
	}
	gained = append(gained, cur[i:]...)
	lost = append(lost, old[j:]...)
	return gained, lost
}

// foldInto replays the logged update suffix since the entry's last
// sync into its merged sampler. An update on edge {a, b} (a < b)
// contributed +delta at the pair key to a's sampler and -delta to b's
// — so its contribution to the members' sum is +delta if a is a
// member, -delta if b is. Both or neither member means exact
// cancellation: skip. Cell updates are commutative, associative,
// exact field additions, so the folded sampler is bit-identical to a
// full re-merge of the current member samplers.
func (s *Sketch) foldInto(me *mergeEntry, r int, m []int, h *sketch.L0Hint) int {
	applied := 0
	for _, lu := range s.log[me.logPos:] {
		inA := containsSorted(m, int(lu.a))
		inB := containsSorted(m, int(lu.b))
		if inA == inB {
			continue
		}
		s.fam[r].Hint(lu.key, h)
		if inA {
			me.samp.AddHint(lu.key, lu.delta, h)
		} else {
			me.samp.AddHint(lu.key, -lu.delta, h)
		}
		applied++
	}
	return applied
}

// containsSorted reports whether ascending list m contains v.
func containsSorted(m []int, v int) bool {
	i := sort.SearchInts(m, v)
	return i < len(m) && m[i] == v
}

// completeQueryWindow runs after each cached extraction: entries
// synced to the current end of the log are re-stamped to position 0
// of the next window, then the log is cleared — so the fold backlog
// never spans more than one update batch for live handles that query
// after every Apply. Entries that missed two consecutive windows
// (their component vanished or shrank below the threshold) are swept
// periodically.
func (s *Sketch) completeQueryWindow() {
	cur := len(s.log)
	for _, row := range s.merges {
		for _, me := range row {
			if me != nil && me.logGen == s.logGen && me.logPos == cur {
				me.logGen = s.logGen + 1
				me.logPos = 0
			}
		}
	}
	s.logGen++
	s.log = s.log[:0]
	if s.logGen%32 == 0 {
		for _, row := range s.merges {
			for v, me := range row {
				if me != nil && me.logGen+2 < s.logGen {
					row[v] = nil
				}
			}
		}
	}
}

// mergeSortedInts merges two ascending duplicate-free lists into one.
func mergeSortedInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// SpaceWords returns the memory footprint in 64-bit words.
func (s *Sketch) SpaceWords() int {
	w := 2
	for _, row := range s.samp {
		for _, sp := range row {
			w += sp.SpaceWords()
		}
	}
	return w
}
