package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func streamInto(t *testing.T, g *graph.Graph, add func(stream.Update)) {
	t.Helper()
	if err := stream.FromGraph(g, 99).Replay(func(u stream.Update) error {
		add(u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestKConnectivityForestsAreEdgeDisjoint(t *testing.T) {
	g := graph.Complete(12)
	kc := NewKConnectivity(1, g.N(), 3)
	streamInto(t, g, kc.AddUpdate)
	forests, err := kc.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if len(forests) != 3 {
		t.Fatalf("got %d forests", len(forests))
	}
	seen := map[[2]int]bool{}
	for fi, f := range forests {
		uf := graph.NewUnionFind(g.N())
		for _, e := range f {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("forest %d contains phantom edge (%d,%d)", fi, e.U, e.V)
			}
			key := [2]int{e.U, e.V}
			if seen[key] {
				t.Fatalf("edge (%d,%d) appears in two forests", e.U, e.V)
			}
			seen[key] = true
			if !uf.Union(e.U, e.V) {
				t.Fatalf("forest %d has a cycle", fi)
			}
		}
	}
	// K12 is 11-connected, so all three forests must be spanning trees.
	for fi, f := range forests {
		if len(f) != g.N()-1 {
			t.Errorf("forest %d has %d edges, want %d", fi, len(f), g.N()-1)
		}
	}
}

func TestKConnectivityCertificatePreservesSmallCuts(t *testing.T) {
	// Two K6's joined by exactly 2 edges: the 2-cut must survive in a
	// k=3 certificate with its exact value.
	g := graph.New(12)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddUnitEdge(u, v)
			g.AddUnitEdge(u+6, v+6)
		}
	}
	g.AddUnitEdge(0, 6)
	g.AddUnitEdge(5, 11)
	kc := NewKConnectivity(2, g.N(), 3)
	streamInto(t, g, kc.AddUpdate)
	cert, err := kc.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	side := make([]bool, 12)
	for v := 0; v < 6; v++ {
		side[v] = true
	}
	if got := cert.CutWeight(side); got != 2 {
		t.Errorf("certificate cut = %v, want 2 (the full small cut)", got)
	}
	if cert.M() >= g.M() {
		t.Errorf("certificate kept %d of %d edges — no compression", cert.M(), g.M())
	}
}

func TestKConnectivityUnderDeletions(t *testing.T) {
	g := graph.ConnectedGNP(16, 0.4, 3)
	st := stream.WithChurn(g, 200, 4)
	kc := NewKConnectivity(5, g.N(), 2)
	if err := st.Replay(func(u stream.Update) error { kc.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	cert, err := kc.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !cert.IsSubgraphOf(g) {
		t.Error("certificate leaked deleted edges")
	}
	if !cert.Connected() {
		t.Error("certificate of a connected graph must stay connected")
	}
}

func TestBipartiteDetectsBipartite(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"even cycle", graph.Cycle(10), true},
		{"odd cycle", graph.Cycle(9), false},
		{"path", graph.Path(12), true},
		{"star", graph.Star(8), true},
		{"triangle in big graph", triangleGraph(), false},
		{"grid", graph.Grid(4, 5), true},
		{"complete K5", graph.Complete(5), false},
	}
	for _, c := range cases {
		b := NewBipartiteness(7, c.g.N())
		streamInto(t, c.g, b.AddUpdate)
		got, err := b.IsBipartite()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: IsBipartite = %v, want %v", c.name, got, c.want)
		}
	}
}

func triangleGraph() *graph.Graph {
	g := graph.Path(10)
	g.AddUnitEdge(0, 2) // creates triangle 0-1-2
	return g
}

func TestBipartiteAfterDeletionFlip(t *testing.T) {
	// Odd cycle is non-bipartite; deleting one edge makes it a path —
	// bipartite. The sketch must track the flip through the deletion.
	n := 9
	b := NewBipartiteness(8, n)
	for i := 0; i < n; i++ {
		b.AddUpdate(stream.Update{U: i, V: (i + 1) % n, Delta: 1})
	}
	b2 := NewBipartiteness(8, n)
	for i := 0; i < n; i++ {
		b2.AddUpdate(stream.Update{U: i, V: (i + 1) % n, Delta: 1})
	}
	b2.AddUpdate(stream.Update{U: 0, V: 1, Delta: -1})
	got1, err := b.IsBipartite()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := b2.IsBipartite()
	if err != nil {
		t.Fatal(err)
	}
	if got1 || !got2 {
		t.Errorf("odd cycle: %v (want false); after deletion: %v (want true)", got1, got2)
	}
}

func TestBipartiteDisconnectedMixed(t *testing.T) {
	// One bipartite component + one odd cycle: not bipartite.
	g := graph.New(14)
	for i := 0; i < 5; i++ {
		g.AddUnitEdge(i, i+1)
	}
	for i := 7; i < 13; i++ {
		g.AddUnitEdge(i, i+1)
	}
	g.AddUnitEdge(13, 7) // 7-cycle (odd)
	b := NewBipartiteness(9, g.N())
	streamInto(t, g, b.AddUpdate)
	got, err := b.IsBipartite()
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("graph with an odd cycle reported bipartite")
	}
}

func TestApplicationsSpaceWords(t *testing.T) {
	kc := NewKConnectivity(10, 20, 3)
	if kc.SpaceWords() <= 0 {
		t.Error("kconnectivity space")
	}
	b := NewBipartiteness(11, 20)
	if b.SpaceWords() <= 0 {
		t.Error("bipartiteness space")
	}
}
