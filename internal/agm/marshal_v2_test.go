package agm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// encodeAGMV1 reproduces the legacy dense v1 sketch layout (all-u64
// header, u64 sampler lengths, no zero suppression) to pin the
// decoder's back-compat path.
func encodeAGMV1(t *testing.T, s *Sketch) []byte {
	t.Helper()
	var out []byte
	u64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	u64(tagAGM)
	u64(s.seed)
	u64(uint64(s.n))
	u64(uint64(s.rounds))
	u64(uint64(s.perLvl))
	for r := 0; r < s.rounds; r++ {
		for v := 0; v < s.n; v++ {
			enc, err := s.samp[r][v].MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			u64(uint64(len(enc)))
			out = append(out, enc...)
		}
	}
	return out
}

func TestAGMMarshalV1BackCompat(t *testing.T) {
	g := graph.ConnectedGNP(24, 0.15, 5)
	st := stream.WithChurn(g, 120, 6)
	s := New(9, g.N(), Config{})
	if err := st.Replay(func(u stream.Update) error { s.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}

	v2, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodeAGMV1(t, s)
	if len(v2) >= len(v1) {
		t.Fatalf("v2 encoding %d bytes not smaller than v1 %d bytes", len(v2), len(v1))
	}

	var fromV1 Sketch
	if err := fromV1.UnmarshalBinary(v1); err != nil {
		t.Fatalf("v1 blob no longer decodes: %v", err)
	}
	re, err := fromV1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, v2) {
		t.Fatal("v1-decoded sketch re-encodes differently from the live sketch")
	}

	// Decoded-from-v1 state is fully functional: it merges and decodes
	// a forest like the original.
	fresh := New(9, g.N(), Config{})
	if err := fresh.Merge(&fromV1); err != nil {
		t.Fatal(err)
	}
	forestA, errA := s.SpanningForest(nil)
	forestB, errB := fresh.SpanningForest(nil)
	if errA != nil || errB != nil {
		t.Fatalf("forest decode: %v / %v", errA, errB)
	}
	if len(forestA) != len(forestB) {
		t.Fatalf("forest from v1-decoded state has %d edges, want %d", len(forestB), len(forestA))
	}
}
