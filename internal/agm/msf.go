package agm

import (
	"fmt"
	"math"
	"sort"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/stream"
)

// MSF computes a (1+gamma)-approximate minimum spanning forest from
// linear sketches — the remaining [AGM12a] application the paper lists
// ("minimum spanning trees"). Edge weights are rounded into geometric
// classes; one connectivity sketch is kept per class *prefix* (edges of
// weight at most the class bound), and the forest is assembled
// Kruskal-style: the lightest prefix contributes its spanning forest,
// each heavier prefix then extends it on the contraction of what is
// already connected. Within a class, weights differ by at most a
// (1+gamma) factor, so the result is a (1+gamma)-approximate MSF.
type MSF struct {
	n         int
	gamma     float64
	maxClass  int
	prefixes  []*Sketch // prefixes[c] sketches edges with class <= c
	classSeen []bool
}

// NewMSF creates the sketch for a graph on n vertices whose edge
// weights lie in [1, wmax], with class ratio 1+gamma.
func NewMSF(seed uint64, n int, wmax, gamma float64) *MSF {
	if gamma <= 0 {
		gamma = 1
	}
	base := 1 + gamma
	maxClass := stream.WeightClassOf(wmax, base) + 1
	m := &MSF{
		n:        n,
		gamma:    gamma,
		maxClass: maxClass,
		prefixes: make([]*Sketch, maxClass+1),
	}
	for c := 0; c <= maxClass; c++ {
		m.prefixes[c] = New(hashing.Mix(seed, 0x3f, uint64(c)), n, Config{})
	}
	return m
}

// N returns the vertex count.
func (m *MSF) N() int { return m.n }

// EnableDecodeCache turns the per-component pick cache on or off for
// every class-prefix sketch (see Sketch.EnableDecodeCache).
func (m *MSF) EnableDecodeCache(on bool) {
	for _, s := range m.prefixes {
		s.EnableDecodeCache(on)
	}
}

// InvalidateDecodeCache drops every prefix sketch's cached component
// decodes; the next Forest runs cold.
func (m *MSF) InvalidateDecodeCache() {
	for _, s := range m.prefixes {
		s.InvalidateDecodeCache()
	}
}

// DecodeCacheStats sums the decode-cache hit/miss counters of every
// prefix sketch.
func (m *MSF) DecodeCacheStats() (hits, misses uint64) {
	for _, s := range m.prefixes {
		h, ms := s.DecodeCacheStats()
		hits += h
		misses += ms
	}
	return hits, misses
}

// AddUpdate folds a weighted update into every prefix sketch whose
// class bound covers the edge's weight class.
func (m *MSF) AddUpdate(u stream.Update) {
	c := stream.WeightClassOf(u.W, 1+m.gamma)
	if c > m.maxClass {
		c = m.maxClass
	}
	for p := c; p <= m.maxClass; p++ {
		m.prefixes[p].AddEdge(u.U, u.V, int64(u.Delta))
	}
}

// AddBatch folds a batch of weighted updates; bit-identical to calling
// AddUpdate per element.
func (m *MSF) AddBatch(batch []stream.Update) {
	for _, u := range batch {
		m.AddUpdate(u)
	}
}

// Merge adds another MSF sketch built with the same seed and
// parameters; the result sketches the union of the two streams.
func (m *MSF) Merge(o *MSF) error {
	if m.n != o.n || m.gamma != o.gamma || m.maxClass != o.maxClass {
		return fmt.Errorf("agm: merging incompatible MSF sketches (n %d/%d, gamma %g/%g, classes %d/%d)",
			m.n, o.n, m.gamma, o.gamma, m.maxClass, o.maxClass)
	}
	for c := range m.prefixes {
		if err := m.prefixes[c].Merge(o.prefixes[c]); err != nil {
			return fmt.Errorf("agm: msf merge class %d: %w", c, err)
		}
	}
	return nil
}

// Forest extracts the approximate MSF: edges tagged with the upper
// bound of their weight class (so the returned total weight is within
// (1+gamma) of exact, assuming the per-class forests succeed whp).
func (m *MSF) Forest() ([]graph.Edge, error) {
	return m.ForestOpts(parallel.Default())
}

// ForestParallel is Forest with each class prefix's Borůvka rounds
// decoded by `workers` goroutines (see Sketch.SpanningForestParallel);
// the classes themselves stay sequential (each contracts the previous)
// and the forest is bit-identical to Forest.
func (m *MSF) ForestParallel(workers int) ([]graph.Edge, error) {
	return m.ForestOpts(parallel.Default().WithWorkers(workers))
}

// ForestOpts is the policy-driven form of Forest.
func (m *MSF) ForestOpts(p *parallel.Policy) ([]graph.Edge, error) {
	uf := graph.NewUnionFind(m.n)
	var out []graph.Edge
	base := 1 + m.gamma
	for c := 0; c <= m.maxClass; c++ {
		if uf.Sets() == 1 {
			break
		}
		// Current groups: components connected by lighter classes.
		groups := map[int][]int{}
		for v := 0; v < m.n; v++ {
			r := uf.Find(v)
			groups[r] = append(groups[r], v)
		}
		groupList := make([][]int, 0, len(groups))
		// Deterministic order for reproducibility.
		roots := make([]int, 0, len(groups))
		for r := range groups {
			roots = append(roots, r)
		}
		sort.Ints(roots)
		for _, r := range roots {
			groupList = append(groupList, groups[r])
		}
		f, err := m.prefixes[c].SpanningForestOpts(groupList, p)
		if err != nil {
			return nil, fmt.Errorf("agm: msf class %d: %w", c, err)
		}
		w := math.Pow(base, float64(c+1))
		for _, e := range f {
			if uf.Union(e.U, e.V) {
				out = append(out, graph.Edge{U: e.U, V: e.V, W: w})
			}
		}
	}
	return out, nil
}

// SpaceWords returns the memory footprint in 64-bit words.
func (m *MSF) SpaceWords() int {
	w := 0
	for _, s := range m.prefixes {
		w += s.SpaceWords()
	}
	return w
}
