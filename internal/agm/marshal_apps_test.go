package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// Round trips for the application sketches: ship one shard's state as
// bytes, merge at a coordinator, and check the decoded output matches
// the single-process reference.

func appsStream(t *testing.T, n int, seed uint64) *stream.MemoryStream {
	t.Helper()
	g := graph.ConnectedGNP(n, 0.2, seed)
	return stream.WithChurn(g, 80, seed+1)
}

func TestKConnectivityMarshalRoundTrip(t *testing.T) {
	st := appsStream(t, 24, 501)
	ref := NewKConnectivity(502, st.N(), 2)
	if err := st.Replay(func(u stream.Update) error { ref.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	want, err := ref.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}

	shards, err := stream.Split(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewKConnectivity(502, st.N(), 2), NewKConnectivity(502, st.N(), 2)
	for i, kc := range []*KConnectivity{a, b} {
		if err := shards[i].Replay(func(u stream.Update) error { kc.AddUpdate(u); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped KConnectivity
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(&shipped); err != nil {
		t.Fatal(err)
	}
	got, err := a.CertificateGraph()
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != want.M() {
		t.Fatalf("certificate: %d edges vs %d", got.M(), want.M())
	}
	for _, e := range want.Edges() {
		if !got.HasEdge(e.U, e.V) {
			t.Fatalf("certificate missing edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestBipartitenessMarshalRoundTrip(t *testing.T) {
	// Odd cycle: not bipartite; shipped state must preserve the verdict.
	n := 7
	ms := stream.NewMemoryStream(n)
	for i := 0; i < n; i++ {
		if err := ms.Append(stream.Update{U: i, V: (i + 1) % n, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	shards, err := stream.Split(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewBipartiteness(503, n), NewBipartiteness(503, n)
	for i, bp := range []*Bipartiteness{a, b} {
		if err := shards[i].Replay(func(u stream.Update) error { bp.AddUpdate(u); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped Bipartiteness
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(&shipped); err != nil {
		t.Fatal(err)
	}
	bip, err := a.IsBipartite()
	if err != nil {
		t.Fatal(err)
	}
	if bip {
		t.Fatal("odd cycle reported bipartite after wire round trip")
	}
}

func TestMSFMarshalRoundTrip(t *testing.T) {
	n := 12
	ms := stream.NewMemoryStream(n)
	for i := 0; i < n-1; i++ {
		if err := ms.Append(stream.Update{U: i, V: i + 1, Delta: 1, W: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// A heavy chord that must not displace light path edges.
	if err := ms.Append(stream.Update{U: 0, V: n - 1, Delta: 1, W: 40}); err != nil {
		t.Fatal(err)
	}

	ref := NewMSF(504, n, 64, 0.5)
	if err := ms.Replay(func(u stream.Update) error { ref.AddUpdate(u); return nil }); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Forest()
	if err != nil {
		t.Fatal(err)
	}

	shards, err := stream.Split(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewMSF(504, n, 64, 0.5), NewMSF(504, n, 64, 0.5)
	for i, m := range []*MSF{a, b} {
		if err := shards[i].Replay(func(u stream.Update) error { m.AddUpdate(u); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped MSF
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(&shipped); err != nil {
		t.Fatal(err)
	}
	got, err := a.Forest()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("forest: %d edges vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("forest edge %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestApplicationMarshalRejectsGarbage(t *testing.T) {
	var kc KConnectivity
	if err := kc.UnmarshalBinary([]byte("nope")); err == nil {
		t.Error("KConnectivity accepted garbage")
	}
	var bp Bipartiteness
	if err := bp.UnmarshalBinary(nil); err == nil {
		t.Error("Bipartiteness accepted empty input")
	}
	var m MSF
	if err := m.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("MSF accepted short input")
	}
}
