package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// forestFromGraph streams g into a fresh sketch and extracts a forest.
func forestFromGraph(t *testing.T, g *graph.Graph, seed uint64, groups [][]int) []graph.Edge {
	t.Helper()
	s := New(seed, g.N(), Config{})
	st := stream.FromGraph(g, seed+1)
	if err := st.Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	forest, err := s.SpanningForest(groups)
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

// checkSpanningForest verifies forest ⊆ g, acyclicity, and that it
// connects exactly the components of g.
func checkSpanningForest(t *testing.T, g *graph.Graph, forest []graph.Edge) {
	t.Helper()
	uf := graph.NewUnionFind(g.N())
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("forest edge (%d,%d) not in graph", e.U, e.V)
		}
		if !uf.Union(e.U, e.V) {
			t.Errorf("forest has a cycle at (%d,%d)", e.U, e.V)
		}
	}
	_, wantComponents := g.Components()
	if uf.Sets() != wantComponents {
		t.Errorf("forest leaves %d components, graph has %d", uf.Sets(), wantComponents)
	}
}

func TestForestPath(t *testing.T) {
	g := graph.Path(20)
	checkSpanningForest(t, g, forestFromGraph(t, g, 1, nil))
}

func TestForestGNP(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.08, 2)
	checkSpanningForest(t, g, forestFromGraph(t, g, 3, nil))
}

func TestForestDisconnected(t *testing.T) {
	g := graph.New(30)
	// Three components: 0-9, 10-19, 20-29 (paths).
	for b := 0; b < 3; b++ {
		for i := 0; i < 9; i++ {
			g.AddUnitEdge(b*10+i, b*10+i+1)
		}
	}
	forest := forestFromGraph(t, g, 4, nil)
	checkSpanningForest(t, g, forest)
	if len(forest) != 27 {
		t.Errorf("forest has %d edges, want 27", len(forest))
	}
}

func TestForestWithDeletions(t *testing.T) {
	// Stream a complete graph, then delete everything except a path.
	n := 16
	s := New(5, n, Config{})
	full := graph.Complete(n)
	_ = stream.FromGraph(full, 6).Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	})
	keep := graph.Path(n)
	for _, e := range full.Edges() {
		if !keep.HasEdge(e.U, e.V) {
			s.AddEdge(e.U, e.V, -1)
		}
	}
	forest, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSpanningForest(t, keep, forest)
}

func TestForestChurnStream(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.1, 7)
	st := stream.WithChurn(g, 300, 8)
	s := New(9, g.N(), Config{})
	_ = st.Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	})
	forest, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSpanningForest(t, g, forest)
}

func TestSubtractEdges(t *testing.T) {
	// G = cycle; subtract one edge; forest of the remaining path.
	n := 12
	g := graph.Cycle(n)
	s := New(10, n, Config{})
	_ = stream.FromGraph(g, 11).Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	})
	s.SubtractEdges([]graph.Edge{{U: 0, V: 1, W: 1}})
	remaining := g.Clone()
	remaining.RemoveEdge(0, 1)
	forest, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSpanningForest(t, remaining, forest)
}

func TestSupernodeGroups(t *testing.T) {
	// Two cliques {0..4}, {5..9} joined by edge (4,5). Collapse each
	// clique: the contracted graph has 2 supernodes and the forest must
	// be exactly one edge crossing between them.
	g := graph.New(10)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddUnitEdge(u, v)
			g.AddUnitEdge(u+5, v+5)
		}
	}
	g.AddUnitEdge(4, 5)
	s := New(12, 10, Config{})
	_ = stream.FromGraph(g, 13).Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	})
	forest, err := s.SpanningForest([][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 1 {
		t.Fatalf("contracted forest has %d edges, want 1: %v", len(forest), forest)
	}
	e := forest[0]
	if !(e.U == 4 && e.V == 5) {
		t.Errorf("crossing edge = (%d,%d), want (4,5)", e.U, e.V)
	}
}

func TestSupernodeGroupValidation(t *testing.T) {
	s := New(14, 5, Config{})
	if _, err := s.SpanningForest([][]int{{0, 99}}); err == nil {
		t.Error("out-of-range group vertex accepted")
	}
}

func TestForestEmptyGraph(t *testing.T) {
	s := New(15, 10, Config{})
	forest, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 0 {
		t.Errorf("empty graph produced %d forest edges", len(forest))
	}
}

func TestForestSingleEdge(t *testing.T) {
	s := New(16, 4, Config{})
	s.AddEdge(2, 3, 1)
	forest, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 1 || forest[0].U != 2 || forest[0].V != 3 {
		t.Errorf("forest = %v", forest)
	}
}

func TestForestMultigraphMultiplicities(t *testing.T) {
	// Multiplicities > 1 should not confuse the samplers.
	s := New(17, 6, Config{})
	for i := 0; i < 5; i++ {
		s.AddEdge(0, 1, 1) // multiplicity 5
	}
	s.AddEdge(1, 2, 3)
	s.AddEdge(3, 4, 2)
	forest, err := s.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	uf := graph.NewUnionFind(6)
	for _, e := range forest {
		uf.Union(e.U, e.V)
	}
	if !uf.Same(0, 2) || !uf.Same(3, 4) || uf.Same(0, 3) {
		t.Errorf("forest misses connectivity: %v", forest)
	}
}

func TestReliabilityAcrossSeeds(t *testing.T) {
	// Theorem 10 is a whp guarantee; measure it across seeds.
	g := graph.ConnectedGNP(30, 0.15, 20)
	failures := 0
	for seed := uint64(0); seed < 20; seed++ {
		s := New(seed*31+1, g.N(), Config{})
		_ = stream.FromGraph(g, seed).Replay(func(u stream.Update) error {
			s.AddUpdate(u)
			return nil
		})
		forest, err := s.SpanningForest(nil)
		if err != nil {
			t.Fatal(err)
		}
		uf := graph.NewUnionFind(g.N())
		for _, e := range forest {
			uf.Union(e.U, e.V)
		}
		if uf.Sets() != 1 {
			failures++
		}
	}
	if failures > 1 {
		t.Errorf("spanning forest failed on %d/20 seeds", failures)
	}
}

func TestSpaceWordsScales(t *testing.T) {
	small := New(18, 10, Config{})
	large := New(18, 100, Config{})
	if small.SpaceWords() <= 0 || large.SpaceWords() <= small.SpaceWords() {
		t.Error("space accounting wrong")
	}
}
