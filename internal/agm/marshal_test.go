package agm

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func TestAGMMarshalRoundTrip(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.2, 1)
	s := New(2, g.N(), Config{})
	_ = stream.FromGraph(g, 3).Replay(func(u stream.Update) error {
		s.AddUpdate(u)
		return nil
	})
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	forest, err := back.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	uf := graph.NewUnionFind(g.N())
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("forest edge (%d,%d) not in graph", e.U, e.V)
		}
		uf.Union(e.U, e.V)
	}
	if uf.Sets() != 1 {
		t.Error("round-tripped sketch lost connectivity")
	}
}

func TestAGMMergeAcrossShards(t *testing.T) {
	// Two shards, cross-shard deletion, coordinator merge — the
	// introduction's distributed protocol, with one shard shipped as
	// bytes.
	const n = 12
	g := graph.Cycle(n)
	a := New(5, n, Config{})
	b := New(5, n, Config{})
	// Shard A gets even-indexed edges plus an edge later deleted in B.
	for i, e := range g.Edges() {
		if i%2 == 0 {
			a.AddEdge(e.U, e.V, 1)
		} else {
			b.AddEdge(e.U, e.V, 1)
		}
	}
	a.AddEdge(0, 5, 1)  // noise edge inserted on A
	b.AddEdge(0, 5, -1) // ... deleted on B
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var remote Sketch
	if err := remote.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(&remote); err != nil {
		t.Fatal(err)
	}
	forest, err := a.SpanningForest(nil)
	if err != nil {
		t.Fatal(err)
	}
	uf := graph.NewUnionFind(n)
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("merged forest contains phantom edge (%d,%d)", e.U, e.V)
		}
		uf.Union(e.U, e.V)
	}
	if uf.Sets() != 1 {
		t.Error("merged sketch lost connectivity")
	}
}

func TestAGMMergeIncompatible(t *testing.T) {
	a := New(1, 10, Config{})
	b := New(2, 10, Config{})
	if err := a.Merge(b); err == nil {
		t.Error("different seeds merged")
	}
	c := New(1, 11, Config{})
	if err := a.Merge(c); err == nil {
		t.Error("different sizes merged")
	}
}

func TestAGMUnmarshalCorrupt(t *testing.T) {
	var s Sketch
	if err := s.UnmarshalBinary([]byte{0}); err == nil {
		t.Error("garbage accepted")
	}
	good := New(3, 6, Config{})
	enc, _ := good.MarshalBinary()
	if err := s.UnmarshalBinary(enc[:len(enc)/2]); err == nil {
		t.Error("truncated accepted")
	}
}
