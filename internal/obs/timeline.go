package obs

import (
	"fmt"
	"io"
	"time"
)

// WriteTimeline renders the human-readable phase summary the CLI's
// -trace flag prints after a build: one row per phase in first-seen
// order (count, summed wall time, summed attributes), followed by the
// counters, the ingested-update total, and a dropped-event note when
// the raw buffer overflowed. Nil tracers write a single line saying
// tracing was off.
func (t *Tracer) WriteTimeline(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "trace: disabled (nil tracer)")
		return
	}
	phases := t.Phases()
	counters := t.Counters()
	var total time.Duration
	nameW := len("PHASE")
	for _, ps := range phases {
		total += ps.Wall
		if len(ps.Phase) > nameW {
			nameW = len(ps.Phase)
		}
	}
	fmt.Fprintf(w, "== trace: %d phases, %s summed wall ==\n", len(phases), fmtDur(total))
	fmt.Fprintf(w, "%-*s  %6s  %10s  %s\n", nameW, "PHASE", "COUNT", "WALL", "ATTRS")
	for _, ps := range phases {
		fmt.Fprintf(w, "%-*s  %6d  %10s ", nameW, ps.Phase, ps.Count, fmtDur(ps.Wall))
		for _, a := range ps.Attrs {
			fmt.Fprintf(w, " %s=%d", a.Key, a.Val)
		}
		fmt.Fprintln(w)
	}
	if len(counters) > 0 {
		keyW := len("COUNTER")
		for _, c := range counters {
			if len(c.Key) > keyW {
				keyW = len(c.Key)
			}
		}
		fmt.Fprintf(w, "%-*s  %12s\n", keyW, "COUNTER", "VALUE")
		for _, c := range counters {
			fmt.Fprintf(w, "%-*s  %12d\n", keyW, c.Key, c.Val)
		}
	}
	if n := t.IngestedTotal(); n > 0 {
		fmt.Fprintf(w, "ingested updates: %d\n", n)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "dropped events: %d (raise the event cap for a complete Chrome trace)\n", d)
	}
}

// fmtDur rounds durations to a stable display precision so timelines
// stay narrow.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
