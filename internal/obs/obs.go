// Package obs is the pipeline's tracing layer: a Tracer collects
// phase spans (wall time plus integer attributes) and named counters
// from every stage of a build — sharded ingest, Borůvka rounds,
// cluster construction, grid extraction, dynnet frames, checkpoint
// I/O — and renders them as a human-readable phase timeline or a
// Chrome trace_event JSON file.
//
// The package has no dependencies outside the standard library and is
// designed to be free when unused: a nil *Tracer is a valid tracer on
// which every method is a no-op, and the Span/End pair performs zero
// heap allocations on the nil path, so instrumentation can stay
// compiled into hot loops unconditionally. Spans observe; they never
// influence the computation, so traced and untraced builds are
// bit-identical.
//
// Aggregates (per-phase count/wall/attr sums and counters) are always
// maintained and are bounded by the number of distinct phase names,
// so a resident daemon can keep one Tracer alive indefinitely. Raw
// per-span events — needed only for the Chrome trace sink — are
// recorded only after EnableEvents and are capped, with a dropped
// count past the cap.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one integer-valued span attribute, e.g. {"components", 42}.
// Attributes are summed into the per-phase aggregate and carried
// verbatim on raw events.
type Attr struct {
	Key string
	Val int64
}

// A is shorthand for constructing an Attr at a span's End site.
func A(key string, val int64) Attr { return Attr{Key: key, Val: val} }

// Counter is one named running total, e.g. dynnet bytes per frame type.
type Counter struct {
	Key string
	Val int64
}

// PhaseStat is the aggregate over every completed span of one phase:
// how many spans ended, their summed wall time, and their summed
// attributes in first-seen key order.
type PhaseStat struct {
	Phase string
	Count int64
	Wall  time.Duration
	Attrs []Attr
}

// Event is one completed span, recorded only when EnableEvents is on.
// Start is the offset from the tracer's creation.
type Event struct {
	Phase string
	Start time.Duration
	Dur   time.Duration
	Attrs []Attr
}

type ingestObserver struct {
	id int
	fn func(total int64)
}

type spanObserver struct {
	id int
	fn func(Event)
}

// Tracer collects spans and counters. The zero value is not usable;
// construct with New. A nil *Tracer disables all tracing: every
// method is a nil-safe no-op.
//
// All methods are safe for concurrent use; spans routinely end on
// worker goroutines.
type Tracer struct {
	start    time.Time
	ingested atomic.Int64

	mu        sync.Mutex
	phases    map[string]*PhaseStat
	order     []string
	counters  map[string]int64
	countOrd  []string
	events    []Event
	eventCap  int
	dropped   int64
	nextObs   int
	ingestObs []ingestObserver
	spanObs   []spanObserver
}

// New returns an enabled Tracer with aggregate collection on and raw
// event recording off (see EnableEvents).
func New() *Tracer {
	return &Tracer{
		start:    time.Now(),
		phases:   make(map[string]*PhaseStat),
		counters: make(map[string]int64),
	}
}

// Span opens a span for the named phase. The returned Span is a value;
// pass it along or End it on any goroutine. On a nil Tracer the
// returned Span is inert and End is free.
func (t *Tracer) Span(phase string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, phase: phase, start: time.Now()}
}

// Span is an open interval of one phase. End completes it; a Span
// whose tracer is nil ignores End entirely.
type Span struct {
	t     *Tracer
	phase string
	start time.Time
}

// End completes the span, folding its wall time and attributes into
// the phase aggregate, recording a raw event when enabled, and
// notifying OnSpanEnd observers. attrs does not escape: callers may
// build it inline without heap allocation on the nil-tracer path.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	s.t.endSpan(s.phase, s.start, attrs)
}

func (t *Tracer) endSpan(phase string, start time.Time, attrs []Attr) {
	dur := time.Since(start)
	t.mu.Lock()
	ps := t.phases[phase]
	if ps == nil {
		ps = &PhaseStat{Phase: phase}
		t.phases[phase] = ps
		t.order = append(t.order, phase)
	}
	ps.Count++
	ps.Wall += dur
	for _, a := range attrs {
		ps.addAttr(a)
	}
	needEvent := t.eventCap > 0 || len(t.spanObs) > 0
	var ev Event
	if needEvent {
		ev = Event{
			Phase: phase,
			Start: start.Sub(t.start),
			Dur:   dur,
			Attrs: append([]Attr(nil), attrs...),
		}
	}
	if t.eventCap > 0 {
		if len(t.events) < t.eventCap {
			t.events = append(t.events, ev)
		} else {
			t.dropped++
		}
	}
	var obs []spanObserver
	if len(t.spanObs) > 0 {
		obs = append(obs, t.spanObs...)
	}
	t.mu.Unlock()
	for _, o := range obs {
		o.fn(ev)
	}
}

func (ps *PhaseStat) addAttr(a Attr) {
	for i := range ps.Attrs {
		if ps.Attrs[i].Key == a.Key {
			ps.Attrs[i].Val += a.Val
			return
		}
	}
	ps.Attrs = append(ps.Attrs, a)
}

// Count adds delta to the named counter, creating it at zero on first
// use. Counters keep first-seen order in Counters and the timeline.
func (t *Tracer) Count(key string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.counters[key]; !ok {
		t.countOrd = append(t.countOrd, key)
	}
	t.counters[key] += delta
	t.mu.Unlock()
}

// CounterSet overwrites the named counter with an absolute value. Used
// by sources that maintain their own running totals (dynnet frame
// stats) and refresh the tracer's view idempotently.
func (t *Tracer) CounterSet(key string, val int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.counters[key]; !ok {
		t.countOrd = append(t.countOrd, key)
	}
	t.counters[key] = val
	t.mu.Unlock()
}

// CounterValue returns the named counter's current value (0 if unset
// or the tracer is nil).
func (t *Tracer) CounterValue(key string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[key]
}

// Counters returns a copy of all counters in first-seen order.
func (t *Tracer) Counters() []Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Counter, 0, len(t.countOrd))
	for _, k := range t.countOrd {
		out = append(out, Counter{Key: k, Val: t.counters[k]})
	}
	return out
}

// Ingested reports the running update total of the stream pass. The
// pipeline calls it with monotonically increasing totals from sharded
// ingest workers; the tracer keeps the maximum seen and forwards
// every report to OnIngest observers in registration order (reports
// from concurrent shards may be forwarded out of order, exactly as
// the progress callbacks they replace were invoked).
func (t *Tracer) Ingested(total int64) {
	if t == nil {
		return
	}
	for {
		cur := t.ingested.Load()
		if total <= cur || t.ingested.CompareAndSwap(cur, total) {
			break
		}
	}
	t.mu.Lock()
	var obs []ingestObserver
	if len(t.ingestObs) > 0 {
		obs = append(obs, t.ingestObs...)
	}
	t.mu.Unlock()
	for _, o := range obs {
		o.fn(total)
	}
}

// IngestedTotal returns the highest update total reported so far.
func (t *Tracer) IngestedTotal() int64 {
	if t == nil {
		return 0
	}
	return t.ingested.Load()
}

// OnIngest registers fn to receive every Ingested report and returns
// a function that unregisters it. WithProgress is implemented as one
// of these observers.
func (t *Tracer) OnIngest(fn func(total int64)) (remove func()) {
	if t == nil || fn == nil {
		return func() {}
	}
	t.mu.Lock()
	id := t.nextObs
	t.nextObs++
	t.ingestObs = append(t.ingestObs, ingestObserver{id: id, fn: fn})
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		for i := range t.ingestObs {
			if t.ingestObs[i].id == id {
				t.ingestObs = append(t.ingestObs[:i], t.ingestObs[i+1:]...)
				break
			}
		}
		t.mu.Unlock()
	}
}

// OnSpanEnd registers fn to receive every completed span and returns
// a function that unregisters it. The daemon's Prometheus bridge is
// one of these observers. fn runs outside the tracer's lock, on the
// goroutine that ended the span.
func (t *Tracer) OnSpanEnd(fn func(Event)) (remove func()) {
	if t == nil || fn == nil {
		return func() {}
	}
	t.mu.Lock()
	id := t.nextObs
	t.nextObs++
	t.spanObs = append(t.spanObs, spanObserver{id: id, fn: fn})
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		for i := range t.spanObs {
			if t.spanObs[i].id == id {
				t.spanObs = append(t.spanObs[:i], t.spanObs[i+1:]...)
				break
			}
		}
		t.mu.Unlock()
	}
}

// EnableEvents turns on raw per-span event recording (required by the
// Chrome trace sink) with a hard cap on retained events; spans past
// the cap still aggregate but are counted in Dropped instead of
// stored. A cap <= 0 leaves recording off.
func (t *Tracer) EnableEvents(cap int) {
	if t == nil || cap <= 0 {
		return
	}
	t.mu.Lock()
	t.eventCap = cap
	t.mu.Unlock()
}

// Events returns a copy of the recorded raw events in end order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Dropped returns how many spans were discarded past the event cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Phases returns a deep copy of the per-phase aggregates in
// first-seen order.
func (t *Tracer) Phases() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseStat, 0, len(t.order))
	for _, name := range t.order {
		ps := *t.phases[name]
		ps.Attrs = append([]Attr(nil), ps.Attrs...)
		out = append(out, ps)
	}
	return out
}
