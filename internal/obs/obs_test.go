package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAggregates(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		sp := tr.Span("agm/round00")
		sp.End(A("components", 10), A("merges", 2))
	}
	tr.Span("ingest").End(A("updates", 500))
	phases := tr.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].Phase != "agm/round00" || phases[0].Count != 3 {
		t.Fatalf("phase[0] = %+v, want agm/round00 count 3", phases[0])
	}
	if got := phases[0].Attrs; len(got) != 2 || got[0] != (Attr{"components", 30}) || got[1] != (Attr{"merges", 6}) {
		t.Fatalf("summed attrs = %+v", got)
	}
	if phases[1].Phase != "ingest" || phases[1].Attrs[0].Val != 500 {
		t.Fatalf("phase[1] = %+v", phases[1])
	}
}

func TestCounters(t *testing.T) {
	tr := New()
	tr.Count("dynnet/UPDATES/bytes_out", 100)
	tr.Count("dynnet/SKETCH/bytes_in", 7)
	tr.Count("dynnet/UPDATES/bytes_out", 23)
	tr.CounterSet("dynnet/SKETCH/bytes_in", 99)
	cs := tr.Counters()
	if len(cs) != 2 || cs[0] != (Counter{"dynnet/UPDATES/bytes_out", 123}) || cs[1] != (Counter{"dynnet/SKETCH/bytes_in", 99}) {
		t.Fatalf("counters = %+v", cs)
	}
	if v := tr.CounterValue("dynnet/UPDATES/bytes_out"); v != 123 {
		t.Fatalf("CounterValue = %d", v)
	}
}

func TestEventCapAndDropped(t *testing.T) {
	tr := New()
	tr.EnableEvents(2)
	for i := 0; i < 5; i++ {
		tr.Span("p").End()
	}
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("retained %d events, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// Aggregates still see every span.
	if ps := tr.Phases(); ps[0].Count != 5 {
		t.Fatalf("aggregate count = %d, want 5", ps[0].Count)
	}
}

func TestIngestObservers(t *testing.T) {
	tr := New()
	var got []int64
	remove := tr.OnIngest(func(total int64) { got = append(got, total) })
	tr.Ingested(10)
	tr.Ingested(25)
	remove()
	tr.Ingested(99)
	if len(got) != 2 || got[0] != 10 || got[1] != 25 {
		t.Fatalf("observer saw %v, want [10 25]", got)
	}
	if tr.IngestedTotal() != 99 {
		t.Fatalf("IngestedTotal = %d", tr.IngestedTotal())
	}
	// Out-of-order reports keep the maximum.
	tr.Ingested(50)
	if tr.IngestedTotal() != 99 {
		t.Fatalf("IngestedTotal after stale report = %d", tr.IngestedTotal())
	}
}

func TestSpanObservers(t *testing.T) {
	tr := New()
	var mu sync.Mutex
	var seen []string
	remove := tr.OnSpanEnd(func(ev Event) {
		mu.Lock()
		seen = append(seen, ev.Phase)
		mu.Unlock()
	})
	tr.Span("a").End(A("x", 1))
	remove()
	tr.Span("b").End()
	if len(seen) != 1 || seen[0] != "a" {
		t.Fatalf("observer saw %v, want [a]", seen)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Span("anything")
	sp.End(A("k", 1))
	tr.Count("c", 1)
	tr.Ingested(5)
	tr.EnableEvents(10)
	if tr.Phases() != nil || tr.Counters() != nil || tr.Events() != nil {
		t.Fatal("nil tracer leaked state")
	}
	var buf bytes.Buffer
	tr.WriteTimeline(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil timeline = %q", buf.String())
	}
	if err := tr.WriteChromeTrace(&buf); err == nil {
		t.Fatal("nil WriteChromeTrace should error")
	}
}

// TestNilTracerZeroAlloc is the CI-asserted half of the zero-overhead
// claim: the Span/End pair on a nil tracer, attributes included, must
// not touch the heap.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	n := int64(7)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span("agm/round00")
		sp.End(A("components", n), A("merges", n))
		tr.Count("bytes", n)
		tr.Ingested(n)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer path allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	tr.EnableEvents(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("shard").End(A("updates", 1))
				tr.Count("n", 1)
				tr.Ingested(int64(i))
			}
		}()
	}
	wg.Wait()
	if ps := tr.Phases(); ps[0].Count != 800 || ps[0].Attrs[0].Val != 800 {
		t.Fatalf("aggregate = %+v", ps[0])
	}
	if v := tr.CounterValue("n"); v != 800 {
		t.Fatalf("counter = %d", v)
	}
}

func TestChromeTrace(t *testing.T) {
	tr := New()
	tr.EnableEvents(100)
	sp := tr.Span("ingest")
	time.Sleep(time.Millisecond)
	sp.End(A("updates", 42))
	tr.Span("agm/round00").End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			for _, k := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("X event missing %q: %v", k, ev)
				}
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected ph %v", ev["ph"])
		}
	}
	if complete != 2 || meta != 2 {
		t.Fatalf("got %d X + %d M events, want 2 + 2", complete, meta)
	}

	// No events enabled -> explicit error, not an empty file.
	if err := New().WriteChromeTrace(&buf); err == nil {
		t.Fatal("want error when no events were recorded")
	}
}

func TestTimeline(t *testing.T) {
	tr := New()
	tr.Span("ingest").End(A("updates", 1000))
	tr.Span("agm/round00").End(A("components", 8))
	tr.Count("dynnet/UPDATES/bytes_out", 555)
	tr.Ingested(1000)
	var buf bytes.Buffer
	tr.WriteTimeline(&buf)
	out := buf.String()
	for _, want := range []string{
		"2 phases", "ingest", "updates=1000", "agm/round00", "components=8",
		"dynnet/UPDATES/bytes_out", "555", "ingested updates: 1000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkNilSpan is the other half of the zero-overhead claim: a
// Span/End pair against a nil tracer should cost a couple of branch
// instructions, no clock reads, no allocation.
func BenchmarkNilSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("phase")
		sp.End(A("k", int64(i)))
	}
}

func BenchmarkLiveSpan(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span("phase")
		sp.End(A("k", int64(i)))
	}
}
