package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome trace_event format: a JSON object with a traceEvents
// array of "X" (complete) events whose ts/dur are microseconds.
// Loadable in chrome://tracing and Perfetto. Each distinct phase name
// gets its own tid (with a thread_name metadata record), so phases
// render as labeled rows instead of one interleaved stack.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the recorded raw events (EnableEvents must
// have been on during the build) as a Chrome trace_event JSON
// document. An error is returned if no events were recorded — the
// usual cause is a tracer that never had events enabled.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer has no events")
	}
	events := t.Events()
	if len(events) == 0 {
		return fmt.Errorf("obs: no events recorded (EnableEvents before the build)")
	}
	tids := map[string]int{}
	var doc chromeTrace
	for _, ev := range events {
		tid, ok := tids[ev.Phase]
		if !ok {
			tid = len(tids) + 1
			tids[ev.Phase] = tid
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  1,
				Tid:  tid,
				Args: map[string]any{"name": ev.Phase},
			})
		}
		ce := chromeEvent{
			Name: ev.Phase,
			Ph:   "X",
			Ts:   ev.Start.Microseconds(),
			Dur:  ev.Dur.Microseconds(),
			Pid:  1,
			Tid:  tid,
		}
		if ce.Dur == 0 {
			ce.Dur = 1 // zero-width events vanish in viewers
		}
		if len(ev.Attrs) > 0 {
			ce.Args = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ce.Args[a.Key] = a.Val
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
