package sparsify

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// TestGridMarshalRoundTrip ships one shard's oracle-grid state as
// bytes mid-pass, merges it at a coordinator, and checks the finished
// estimator agrees with the single-process reference on every
// robust-connectivity query.
func TestGridMarshalRoundTrip(t *testing.T) {
	g := graph.Barbell(5, 1)
	st := stream.FromGraph(g, 601)
	cfg := EstimateConfig{K: 1, J: 2, T: 4, Delta: 0.34, Seed: 602}

	ref, err := NewEstimator(st, cfg)
	if err != nil {
		t.Fatal(err)
	}

	shards, err := stream.Split(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGrid(st.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGrid(st.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, gr := range []*Grid{a, b} {
		if err := shards[i].Replay(gr.Pass1Update); err != nil {
			t.Fatal(err)
		}
	}
	// Ship b's pass-1 state over the wire and merge.
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped Grid
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.MergePass1(&shipped); err != nil {
		t.Fatal(err)
	}
	if err := a.EndPass1(); err != nil {
		t.Fatal(err)
	}
	if err := st.Replay(a.Pass2Update); err != nil {
		t.Fatal(err)
	}
	est, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < st.N(); u++ {
		for v := u + 1; v < st.N(); v++ {
			if got, want := est.QExp(u, v), ref.QExp(u, v); got != want {
				t.Fatalf("QExp(%d,%d) = %d, reference %d", u, v, got, want)
			}
		}
	}
}

func TestGridMarshalRejectsGarbage(t *testing.T) {
	var g Grid
	if err := g.UnmarshalBinary(nil); err == nil {
		t.Error("accepted empty input")
	}
	if err := g.UnmarshalBinary([]byte("not a grid at all, sorry")); err == nil {
		t.Error("accepted garbage")
	}
}
