package sparsify

import (
	"fmt"
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/stream"
)

// Live is the mutable sparsifier state behind a live build handle: the
// T×J oracle-grid cells and the Z×H sample spanners are each held as a
// live two-pass spanner state (pass 1 permanently open, see
// spanner.TwoPass.StartLive). Apply routes every update to exactly the
// states whose subsampled edge set contains it — an untouched state
// sees zero generation churn, so its next QueryLive is answered
// entirely from its attachment and recovery caches. Query reassembles
// the Estimator and the weighted samples from the per-state extractions
// in the serial pipeline's order, so the output is bit-identical to a
// cold Sparsify over the base stream plus every applied batch.
type Live struct {
	cfg  Config
	n    int
	grid *Grid // cells held live; the grid's own pass protocol is unused
	// repHash[s] is the level hash of invocation s's nested sample
	// streams: E_j keeps the edges with level >= j. Must match
	// sampleSubstream (stream.SampledSubstream mixes 0xe1 onto the seed).
	repHash []*hashing.Poly
	reps    [][]*spanner.TwoPass // reps[s][j-1] over E_j of invocation s
}

// StartLive builds the live sparsifier state over the replayable base
// stream src: every grid cell and sample spanner ingests its filtered
// view of src through pass 1 and retains it for the pass-2 replays its
// first query needs. The ExactOracles ablation materializes substreams
// instead of sketching them and has no live state.
func StartLive(src stream.Stream, cfg Config) (*Live, error) {
	n := src.N()
	cfg = cfg.withDefaults(n)
	if cfg.Estimate.ExactOracles {
		return nil, fmt.Errorf("sparsify: exact oracles have no live state")
	}
	g, err := NewGrid(n, cfg.Estimate)
	if err != nil {
		return nil, err
	}
	ls := &Live{cfg: cfg, n: n, grid: g}
	ecfg := g.cfg
	for t := 1; t <= ecfg.T; t++ {
		for j := 0; j < ecfg.J; j++ {
			sub := stream.SampledSubstream(src, hashing.Mix(ecfg.Seed, 0xe5, uint64(j)), t-1)
			if err := g.cells[t-1][j].StartLive(sub); err != nil {
				return nil, fmt.Errorf("sparsify: live grid cell (t=%d, j=%d): %w", t, j, err)
			}
		}
	}
	ls.repHash = make([]*hashing.Poly, cfg.Z)
	ls.reps = make([][]*spanner.TwoPass, cfg.Z)
	for s := 0; s < cfg.Z; s++ {
		ls.repHash[s] = hashing.NewPoly(
			hashing.Mix(hashing.Mix(cfg.Seed, 0x5a, uint64(s)), 0xe1), 8)
		row := make([]*spanner.TwoPass, cfg.H)
		for j := 1; j <= cfg.H; j++ {
			row[j-1] = spanner.NewTwoPass(n, sampleSpannerConfig(cfg, s, j))
			if err := row[j-1].StartLive(sampleSubstream(src, cfg, s, j)); err != nil {
				return nil, fmt.Errorf("sparsify: live sample rep=%d j=%d: %w", s, j, err)
			}
		}
		ls.reps[s] = row
	}
	return ls, nil
}

// N returns the vertex count.
func (ls *Live) N() int { return ls.n }

// EnableDecodeCache turns the per-center attachment and per-terminal
// recovery caches of every underlying live spanner state on or off.
func (ls *Live) EnableDecodeCache(on bool) {
	for _, row := range ls.grid.cells {
		for _, c := range row {
			c.EnableDecodeCache(on)
		}
	}
	for _, row := range ls.reps {
		for _, tp := range row {
			tp.EnableDecodeCache(on)
		}
	}
}

// InvalidateDecodeCache drops every underlying live spanner state's
// caches and cluster digests; the next Query re-extracts from scratch.
func (ls *Live) InvalidateDecodeCache() {
	for _, row := range ls.grid.cells {
		for _, c := range row {
			c.InvalidateDecodeCache()
		}
	}
	for _, row := range ls.reps {
		for _, tp := range row {
			tp.InvalidateDecodeCache()
		}
	}
}

// DecodeCacheStats sums the decode-cache hit/miss counters of every
// underlying live spanner state (grid cells and sample spanners).
func (ls *Live) DecodeCacheStats() (hits, misses uint64) {
	for _, row := range ls.grid.cells {
		for _, c := range row {
			h, m := c.DecodeCacheStats()
			hits += h
			misses += m
		}
	}
	for _, row := range ls.reps {
		for _, tp := range row {
			h, m := tp.DecodeCacheStats()
			hits += h
			misses += m
		}
	}
	return hits, misses
}

// Apply folds a batch of updates into the live state. Each update
// reaches exactly the grid cells and sample spanners whose subsampled
// edge set contains it — the same membership the cold pipeline's
// SampledSubstream filters enforce — so every state's pass-1 sketches
// and live log stay identical to a from-scratch build over the total
// stream, and untouched states keep their caches warm.
func (ls *Live) Apply(batch []stream.Update) error {
	if len(batch) == 0 {
		return nil
	}
	ecfg := ls.grid.cfg
	levels := make([]int, len(batch))
	// Pair keys are loop-invariant across the J columns and Z sample
	// invocations below; hoist them out of the per-column level sweeps.
	keys := make([]uint64, len(batch))
	for i, u := range batch {
		keys[i] = stream.PairKey(u.U, u.V, ls.n)
	}
	for j := 0; j < ecfg.J; j++ {
		for i := range batch {
			levels[i] = ls.grid.colHash[j].Level(keys[i])
		}
		for t := 1; t <= ecfg.T; t++ {
			// Cell (t, j) sketches E^j_t: edges with column-j level >= t-1.
			var sub []stream.Update
			for i, u := range batch {
				if levels[i] >= t-1 {
					sub = append(sub, u)
				}
			}
			if len(sub) == 0 {
				continue
			}
			if err := ls.grid.cells[t-1][j].ApplyLive(sub); err != nil {
				return fmt.Errorf("sparsify: live grid cell (t=%d, j=%d): %w", t, j, err)
			}
		}
	}
	for s := 0; s < ls.cfg.Z; s++ {
		for i := range batch {
			levels[i] = ls.repHash[s].Level(keys[i])
		}
		for j := 1; j <= ls.cfg.H; j++ {
			// Sample stream E_j keeps the edges with invocation-s level >= j.
			var sub []stream.Update
			for i, u := range batch {
				if levels[i] >= j {
					sub = append(sub, u)
				}
			}
			if len(sub) == 0 {
				continue
			}
			if err := ls.reps[s][j-1].ApplyLive(sub); err != nil {
				return fmt.Errorf("sparsify: live sample rep=%d j=%d: %w", s, j, err)
			}
		}
	}
	return nil
}

// Query extracts the sparsifier from the live state's current contents
// — bit-identical to a cold Sparsify/SparsifyOpts over the base stream
// plus every applied batch, at any worker count. Only dirty regions
// re-decode: each cell and sample re-clusters through its attachment
// cache, reuses its pass-2 tables when its cluster structure digest is
// unchanged (folding just the unsynced log suffix), and recovers
// neighborhoods through its per-terminal cache.
func (ls *Live) Query(p *parallel.Policy) (*Result, error) {
	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sparsify: %w", err)
	}
	ecfg := ls.grid.cfg
	e := &Estimator{cfg: ecfg}
	e.threshold = ecfg.Threshold
	if e.threshold == 0 {
		e.threshold = math.Pow(2, float64(ecfg.K))
	}
	alpha := math.Pow(2, float64(ecfg.K))
	e.oracles = make([][]Oracle, ecfg.T)
	for t := 1; t <= ecfg.T; t++ {
		row := make([]Oracle, ecfg.J)
		for j := 0; j < ecfg.J; j++ {
			res, err := ls.grid.cells[t-1][j].QueryLive(p)
			if err != nil {
				return nil, fmt.Errorf("sparsify: live grid cell (t=%d, j=%d): %w", t, j, err)
			}
			row[j] = &spannerOracle{
				h: res.Spanner, alpha: alpha, space: res.SpaceWords, memo: map[int][]int{},
			}
			e.space += res.SpaceWords
		}
		e.oracles[t-1] = row
	}
	space := e.SpaceWords()
	samples := make([]*graph.Graph, 0, ls.cfg.Z)
	results := make([]*spanner.Result, ls.cfg.H)
	for s := 0; s < ls.cfg.Z; s++ {
		for j := 1; j <= ls.cfg.H; j++ {
			res, err := ls.reps[s][j-1].QueryLive(p)
			if err != nil {
				return nil, fmt.Errorf("sparsify: live sample rep=%d j=%d: %w", s, j, err)
			}
			results[j-1] = res
		}
		x, w := assembleSample(ls.n, e, results)
		space += w
		samples = append(samples, x)
	}
	return &Result{
		Sparsifier: averageSamples(ls.n, ls.cfg.Z, samples),
		SpaceWords: space,
		Samples:    ls.cfg.Z,
	}, nil
}
