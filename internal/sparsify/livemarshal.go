package sparsify

import (
	"encoding/binary"
	"fmt"
	"math"

	"dynstream/internal/hashing"
	"dynstream/internal/spanner"
	"dynstream/internal/stream"
)

// Serialization of the live sparsifier state, the checkpoint substrate
// of dynstream's Handle.Checkpoint. The durable content is the
// resolved configuration plus every grid cell's and sample spanner's
// live two-pass encoding (spanner.MarshalLive); the substream wiring —
// which filtered view of the base stream each state ingests — is a
// pure function of the configuration, so RestoreLive rebuilds it
// exactly as StartLive did, without replaying pass 1.

// tagLive frames a live sparsifier encoding.
const tagLive uint64 = 0xd15c_020b

// MarshalLive encodes the live state for checkpointing. The base
// stream is not part of the encoding — RestoreLive re-attaches it.
func (ls *Live) MarshalLive() ([]byte, error) {
	var out []byte
	u64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	block := func(b []byte) {
		u64(uint64(len(b)))
		out = append(out, b...)
	}
	u64(tagLive)
	u64(uint64(ls.n))
	u64(uint64(ls.cfg.K))
	u64(uint64(ls.cfg.Z))
	u64(uint64(ls.cfg.H))
	u64(ls.cfg.Seed)
	ecfg := ls.grid.cfg
	u64(uint64(ecfg.K))
	u64(uint64(ecfg.J))
	u64(uint64(ecfg.T))
	u64(math.Float64bits(ecfg.Delta))
	u64(math.Float64bits(ecfg.Threshold))
	u64(ecfg.Seed)
	for t := 1; t <= ecfg.T; t++ {
		for j := 0; j < ecfg.J; j++ {
			enc, err := ls.grid.cells[t-1][j].MarshalLive()
			if err != nil {
				return nil, fmt.Errorf("sparsify: marshal grid cell (t=%d, j=%d): %w", t, j, err)
			}
			block(enc)
		}
	}
	for s := 0; s < ls.cfg.Z; s++ {
		for j := 1; j <= ls.cfg.H; j++ {
			enc, err := ls.reps[s][j-1].MarshalLive()
			if err != nil {
				return nil, fmt.Errorf("sparsify: marshal sample rep=%d j=%d: %w", s, j, err)
			}
			block(enc)
		}
	}
	return out, nil
}

// RestoreLive reconstructs a live sparsifier state from a MarshalLive
// encoding over the replayable base stream src: the same grid and
// substream wiring StartLive builds, with every cell and sample
// restored from its live encoding instead of replaying pass 1. The
// first Query re-derives the per-state tables, which by linearity
// reproduces the saved state's output bit for bit.
func RestoreLive(src stream.Stream, data []byte) (*Live, error) {
	pos := 0
	u64 := func() (uint64, error) {
		if len(data)-pos < 8 {
			return 0, errCorrupt
		}
		v := binary.LittleEndian.Uint64(data[pos : pos+8])
		pos += 8
		return v, nil
	}
	block := func() ([]byte, error) {
		ln, err := u64()
		if err != nil {
			return nil, err
		}
		if uint64(len(data)-pos) < ln {
			return nil, errCorrupt
		}
		b := data[pos : pos+int(ln)]
		pos += int(ln)
		return b, nil
	}
	tag, err := u64()
	if err != nil || tag != tagLive {
		return nil, fmt.Errorf("sparsify: not a live sparsifier encoding: %w", errCorrupt)
	}
	var n, k, z, h, seed, ek, ej, et, deltaBits, thrBits, eseed uint64
	for _, dst := range []*uint64{&n, &k, &z, &h, &seed, &ek, &ej, &et, &deltaBits, &thrBits, &eseed} {
		if *dst, err = u64(); err != nil {
			return nil, err
		}
	}
	if n == 0 || n > 1<<24 || k == 0 || k > 64 || z == 0 || z > 1<<12 || h == 0 || h > 1<<12 {
		return nil, errCorrupt
	}
	if int(n) != src.N() {
		return nil, fmt.Errorf("sparsify: live state has n=%d, stream has n=%d: %w", n, src.N(), errCorrupt)
	}
	cfg := Config{
		K: int(k), Z: int(z), H: int(h), Seed: seed,
		Estimate: EstimateConfig{
			K: int(ek), J: int(ej), T: int(et),
			Delta:     math.Float64frombits(deltaBits),
			Threshold: math.Float64frombits(thrBits),
			Seed:      eseed,
		},
	}
	g, err := NewGrid(int(n), cfg.Estimate)
	if err != nil {
		return nil, err
	}
	if g.cfg != cfg.Estimate {
		// NewGrid must accept the stored configuration verbatim — a
		// re-defaulted field would re-seed the substream wiring.
		return nil, fmt.Errorf("sparsify: stored grid configuration is not resolved: %w", errCorrupt)
	}
	ls := &Live{cfg: cfg, n: int(n), grid: g}
	ecfg := g.cfg
	for t := 1; t <= ecfg.T; t++ {
		for j := 0; j < ecfg.J; j++ {
			enc, err := block()
			if err != nil {
				return nil, err
			}
			sub := stream.SampledSubstream(src, hashing.Mix(ecfg.Seed, 0xe5, uint64(j)), t-1)
			if err := g.cells[t-1][j].RestoreLive(sub, enc); err != nil {
				return nil, fmt.Errorf("sparsify: restore grid cell (t=%d, j=%d): %w", t, j, err)
			}
		}
	}
	ls.repHash = make([]*hashing.Poly, cfg.Z)
	ls.reps = make([][]*spanner.TwoPass, cfg.Z)
	for s := 0; s < cfg.Z; s++ {
		ls.repHash[s] = hashing.NewPoly(
			hashing.Mix(hashing.Mix(cfg.Seed, 0x5a, uint64(s)), 0xe1), 8)
		row := make([]*spanner.TwoPass, cfg.H)
		for j := 1; j <= cfg.H; j++ {
			enc, err := block()
			if err != nil {
				return nil, err
			}
			row[j-1] = &spanner.TwoPass{} // RestoreLive rebuilds from the blob's own config
			if err := row[j-1].RestoreLive(sampleSubstream(src, cfg, s, j), enc); err != nil {
				return nil, fmt.Errorf("sparsify: restore sample rep=%d j=%d: %w", s, j, err)
			}
		}
		ls.reps[s] = row
	}
	if pos != len(data) {
		return nil, fmt.Errorf("sparsify: %d trailing bytes in live encoding: %w", len(data)-pos, errCorrupt)
	}
	return ls, nil
}
