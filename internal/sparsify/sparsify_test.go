package sparsify

import (
	"math"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/linalg"
	"dynstream/internal/stream"
)

// testEstimateCfg keeps oracle grids small enough for unit tests.
func testEstimateCfg(seed uint64, exact bool) EstimateConfig {
	return EstimateConfig{K: 2, J: 3, T: 8, Delta: 0.34, Seed: seed, ExactOracles: exact}
}

func TestSpannerOracleStretch(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.15, 1)
	st := stream.FromGraph(g, 2)
	o, err := NewSpannerOracle(st, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Alpha() != 4 {
		t.Errorf("alpha = %v", o.Alpha())
	}
	d := g.BFS(0)
	for v := 1; v < g.N(); v++ {
		est := o.Dist(0, v)
		if d[v] == -1 {
			continue
		}
		if est < float64(d[v])-1e-9 {
			t.Fatalf("oracle underestimates: %v < %d", est, d[v])
		}
		if est > 4*float64(d[v])+1e-9 {
			t.Fatalf("oracle exceeds stretch: %v > 4·%d", est, d[v])
		}
	}
}

func TestExactOracle(t *testing.T) {
	g := graph.Path(10)
	st := stream.FromGraph(g, 4)
	o, err := NewExactOracle(st)
	if err != nil {
		t.Fatal(err)
	}
	if o.Alpha() != 1 {
		t.Errorf("alpha = %v", o.Alpha())
	}
	if o.Dist(0, 9) != 9 {
		t.Errorf("dist = %v, want 9", o.Dist(0, 9))
	}
}

func TestOracleDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddUnitEdge(0, 1)
	st := stream.FromGraph(g, 5)
	o, err := NewExactOracle(st)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(o.Dist(0, 5), 1) {
		t.Errorf("disconnected dist = %v, want +Inf", o.Dist(0, 5))
	}
}

func TestEstimatorBridgeVsCliqueEdge(t *testing.T) {
	// The defining property of robust connectivity: a bridge
	// disconnects at mild subsampling (small t*, large q̂), a clique
	// edge survives deep subsampling (large t*, small q̂).
	g := graph.Barbell(8, 1) // cliques of 8 joined through one vertex
	st := stream.FromGraph(g, 6)
	est, err := NewEstimator(st, testEstimateCfg(7, true))
	if err != nil {
		t.Fatal(err)
	}
	// Bridge endpoints: vertex 7 (clique A) — 8 (bridge) — 9..16.
	bridgeT := est.QExp(7, 8)
	cliqueT := est.QExp(0, 1)
	if bridgeT >= cliqueT {
		t.Errorf("bridge t*=%d should be smaller than clique-edge t*=%d", bridgeT, cliqueT)
	}
	if q := est.QHat(7, 8); q != math.Pow(2, -float64(bridgeT)) {
		t.Errorf("QHat inconsistent with QExp: %v vs 2^-%d", q, bridgeT)
	}
}

func TestEstimatorSketchOraclesAgreeDirectionally(t *testing.T) {
	// With sketch-based (stretch-4) oracles the exact ordering should
	// still hold on the barbell.
	g := graph.Barbell(6, 1)
	st := stream.FromGraph(g, 8)
	est, err := NewEstimator(st, testEstimateCfg(9, false))
	if err != nil {
		t.Fatal(err)
	}
	// Stretch-α oracles declare disconnection early, which can shrink
	// the clique edge's t* by up to log2(α²) = 2K — the α² slop of the
	// KP12 sampling lemma. Allow that slack.
	if b, c := est.QExp(5, 6), est.QExp(0, 1); b > c+2 {
		t.Errorf("sketch-oracle bridge t*=%d > clique t*=%d + slack", b, c)
	}
}

func TestSampleOnceOnlyGraphEdges(t *testing.T) {
	g := graph.ConnectedGNP(24, 0.25, 10)
	st := stream.FromGraph(g, 11)
	cfg := Config{K: 2, Z: 1, Seed: 12, Estimate: testEstimateCfg(13, true)}
	est, err := NewEstimator(st, cfg.Estimate)
	if err != nil {
		t.Fatal(err)
	}
	x, space, err := SampleOnce(st, est, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if space <= 0 {
		t.Error("sample space accounting must be positive")
	}
	for _, e := range x.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("sample invented edge (%d,%d)", e.U, e.V)
		}
		if e.W <= 0 {
			t.Errorf("non-positive weight %v", e.W)
		}
	}
}

func TestSparsifySupportAndWeights(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.3, 14)
	st := stream.FromGraph(g, 15)
	res, err := Sparsify(st, Config{K: 2, Z: 4, Seed: 16, Estimate: testEstimateCfg(17, true)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 4 {
		t.Errorf("samples = %d", res.Samples)
	}
	for _, e := range res.Sparsifier.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("sparsifier invented edge (%d,%d)", e.U, e.V)
		}
		if e.W <= 0 {
			t.Fatalf("weight %v", e.W)
		}
	}
}

func TestSparsifyPreservesBridge(t *testing.T) {
	// A barbell's bridge carries all cross-cut quadratic form; any
	// useful sparsifier must keep it (its q̂ is large, so it is sampled
	// at a dense rate).
	// The bridge's q̂ is ~2^-3, so each sample captures it with
	// probability ~1/8; Z must be large enough that missing it across
	// all samples is a <1% event (Z=40: (7/8)^40 ≈ 0.5%).
	g := graph.Barbell(6, 1)
	st := stream.FromGraph(g, 18)
	res, err := Sparsify(st, Config{K: 2, Z: 40, Seed: 19, Estimate: testEstimateCfg(20, true)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.HasEdge(5, 6) || !res.Sparsifier.HasEdge(6, 7) {
		t.Error("sparsifier dropped a bridge edge")
	}
}

func TestSparsifyQualityOnSmallDenseGraph(t *testing.T) {
	// A loose end-to-end quality bound at test scale: ε < 1 means the
	// quadratic form is preserved within a factor 2 everywhere — far
	// from trivial (dropping any bridge would give ε = 1).
	g := graph.Complete(16)
	st := stream.FromGraph(g, 21)
	cfg := Config{K: 1, Z: 48, Seed: 22,
		Estimate: EstimateConfig{K: 1, J: 3, T: 8, Delta: 0.34, Seed: 23, ExactOracles: true}}
	res, err := Sparsify(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := linalg.SpectralEpsilon(g, res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	if eps >= 0.8 {
		t.Errorf("spectral ε = %v on K16 with Z=48", eps)
	}
}

func TestSparsifyWeightedClasses(t *testing.T) {
	base := graph.ConnectedGNP(16, 0.3, 24)
	g := graph.RandomWeighted(base, 1, 16, 25)
	st := stream.FromGraph(g, 26)
	res, err := SparsifyWeighted(st, Config{K: 2, Z: 3, Seed: 27, Estimate: testEstimateCfg(28, true)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Sparsifier.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("weighted sparsifier invented edge (%d,%d)", e.U, e.V)
		}
	}
	if res.SpaceWords <= 0 {
		t.Error("space accounting")
	}
}

func TestSparsifyWeightedBadBase(t *testing.T) {
	st := stream.NewMemoryStream(4)
	if _, err := SparsifyWeighted(st, Config{}, 1); err == nil {
		t.Error("classBase=1 accepted")
	}
}

func TestSpielmanSrivastavaQuality(t *testing.T) {
	g := graph.Complete(40)
	h := SpielmanSrivastava(g, 0.5, 1.5, 29)
	eps, err := linalg.SpectralEpsilon(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 0.9 {
		t.Errorf("SS08 ε = %v", eps)
	}
	if h.M() == 0 {
		t.Error("SS08 returned empty graph")
	}
}

func TestSpielmanSrivastavaKeepsTreesExactly(t *testing.T) {
	// On a tree every edge has p_e = 1 (w·R = 1), so H = G exactly.
	g := graph.Star(20)
	h := SpielmanSrivastava(g, 0.5, 2, 30)
	if h.M() != g.M() {
		t.Errorf("tree: kept %d of %d edges", h.M(), g.M())
	}
	for _, e := range h.Edges() {
		if math.Abs(e.W-1) > 1e-9 {
			t.Errorf("tree edge reweighted to %v", e.W)
		}
	}
}

func TestSpielmanSrivastavaCompresses(t *testing.T) {
	g := graph.Complete(60)
	h := SpielmanSrivastava(g, 1.0, 0.5, 31)
	if h.M() >= g.M() {
		t.Errorf("no compression: %d of %d", h.M(), g.M())
	}
}

func TestSpielmanSrivastavaEmpty(t *testing.T) {
	h := SpielmanSrivastava(graph.New(5), 0.5, 1, 32)
	if h.M() != 0 {
		t.Error("empty input gave nonempty output")
	}
}
