package sparsify

import (
	"math/rand"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/parallel"
	"dynstream/internal/stream"
)

func liveMemStream(t *testing.T, n int, ups []stream.Update) *stream.MemoryStream {
	t.Helper()
	ms := stream.NewMemoryStream(n)
	for _, u := range ups {
		if err := ms.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	return ms
}

func sparsifiersEqual(a, b *graph.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// TestLiveSparsifyBitIdentical interleaves churn with live queries and
// checks every query against a cold from-scratch Sparsify over the
// same total stream, at several worker counts.
func TestLiveSparsifyBitIdentical(t *testing.T) {
	const n = 48
	cfg := Config{
		K: 2, Z: 2, H: 4, Seed: 7,
		Estimate: EstimateConfig{J: 2, T: 4},
	}
	rng := rand.New(rand.NewSource(41))

	var base []stream.Update
	for i := 0; i < 220; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		base = append(base, stream.Update{U: u, V: v, Delta: 1})
	}
	live, err := StartLive(liveMemStream(t, n, base), cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.EnableDecodeCache(true)

	total := append([]stream.Update(nil), base...)
	for round := 0; round < 3; round++ {
		for _, workers := range []int{1, 2, 4} {
			p := parallel.Default().WithWorkers(workers)
			got, err := live.Query(p)
			if err != nil {
				t.Fatalf("round %d workers %d: live: %v", round, workers, err)
			}
			want, err := SparsifyOpts(liveMemStream(t, n, total), cfg, parallel.Default())
			if err != nil {
				t.Fatalf("round %d workers %d: cold: %v", round, workers, err)
			}
			if !sparsifiersEqual(got.Sparsifier, want.Sparsifier) {
				t.Fatalf("round %d workers %d: live sparsifier diverged from cold build", round, workers)
			}
			if got.Samples != want.Samples || got.SpaceWords != want.SpaceWords {
				t.Fatalf("round %d workers %d: diagnostics diverged: %d/%d vs %d/%d",
					round, workers, got.Samples, got.SpaceWords, want.Samples, want.SpaceWords)
			}
		}
		// Churn: delete a few base edges, insert a few fresh ones.
		var batch []stream.Update
		for j := 0; j < 3; j++ {
			e := base[rng.Intn(len(base))]
			batch = append(batch, stream.Update{U: e.U, V: e.V, Delta: -e.Delta})
		}
		for j := 0; j < 3; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			batch = append(batch, stream.Update{U: u, V: v, Delta: 1})
		}
		if err := live.Apply(batch); err != nil {
			t.Fatal(err)
		}
		total = append(total, batch...)
	}
}

// TestLiveSparsifyRoutesDirtyOnly checks that Apply touches only the
// states whose subsampled edge sets contain the updates: re-querying
// after an empty apply re-decodes nothing, and the output is stable.
func TestLiveSparsifyRoutesDirtyOnly(t *testing.T) {
	const n = 32
	cfg := Config{
		K: 2, Z: 2, H: 3, Seed: 19,
		Estimate: EstimateConfig{J: 2, T: 3},
	}
	var ups []stream.Update
	for v := 1; v < n; v++ {
		ups = append(ups, stream.Update{U: v - 1, V: v, Delta: 1})
		if (v*7)%n != v {
			ups = append(ups, stream.Update{U: (v * 7) % n, V: v, Delta: 1})
		}
	}
	live, err := StartLive(liveMemStream(t, n, ups), cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.EnableDecodeCache(true)
	p := parallel.Default()
	first, err := live.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Apply(nil); err != nil {
		t.Fatal(err)
	}
	again, err := live.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sparsifiersEqual(first.Sparsifier, again.Sparsifier) {
		t.Fatal("re-query of unchanged live sparsifier diverged")
	}
}
