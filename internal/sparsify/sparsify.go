package sparsify

import (
	"fmt"
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/stream"
)

// Config parameterizes the full sparsification pipeline (Algorithm 6).
type Config struct {
	// K is the spanner stretch exponent (α = 2^K). The paper chooses
	// K = sqrt(log n) for the n^{1+o(1)} bound; experiments sweep it.
	K int
	// Z is the number of independent SAMPLE invocations averaged
	// together; the paper sets Z = Θ(α² log n / ((1−δ)ε³)).
	Z int
	// H is the number of geometric sampling rates per invocation
	// (default 2·log2 n, the paper's log n²).
	H int
	// Seed selects all randomness.
	Seed uint64
	// Estimate configures the robust-connectivity oracle grid
	// (Algorithm 4); its K defaults to this Config's K.
	Estimate EstimateConfig
}

func (c Config) withDefaults(n int) Config {
	if c.K < 1 {
		c.K = 2
	}
	if c.Z == 0 {
		c.Z = 8
	}
	log2n := int(math.Ceil(math.Log2(float64(n + 1))))
	if log2n < 1 {
		log2n = 1
	}
	if c.H == 0 {
		c.H = 2 * log2n
	}
	if c.Estimate.K == 0 {
		c.Estimate.K = c.K
	}
	if c.Estimate.Seed == 0 {
		c.Estimate.Seed = hashing.Mix(c.Seed, 0xe57)
	}
	if c.Estimate.T == 0 {
		c.Estimate.T = c.H // sample rates and estimate rates aligned
	}
	return c
}

// Result is the output of Sparsify.
type Result struct {
	// Sparsifier is the weighted graph G' with L_{G'} ≈ (1±O(ε)) L_G.
	Sparsifier *graph.Graph
	// SpaceWords is the total sketch footprint (oracle grid plus all
	// Z·H spanner instances).
	SpaceWords int
	// Samples is the number of SAMPLE invocations used (= Z).
	Samples int
}

// sampleSubstream is the subsampled edge stream E_j of invocation rep,
// and sampleSpannerConfig the matching augmented-spanner configuration.
// The parallel pipeline prebuilds the same (rep, j) spanners from the
// same substreams, so both derivations live here, once.
func sampleSubstream(st stream.Stream, cfg Config, rep, j int) stream.Stream {
	return stream.SampledSubstream(st, hashing.Mix(cfg.Seed, 0x5a, uint64(rep)), j)
}

func sampleSpannerConfig(cfg Config, rep, j int) spanner.Config {
	return spanner.Config{
		K:                cfg.K,
		Seed:             hashing.Mix(cfg.Seed, 0x5b, uint64(rep), uint64(j)),
		CollectAugmented: true,
	}
}

// assembleSample is the decision half of Algorithm 5: given the H
// augmented spanners of one invocation (results[j-1] built over E_j),
// keep the edges whose robust connectivity matches the rate, with
// weight 2^j. Returns the weighted sample and the sketch space used.
func assembleSample(n int, est *Estimator, results []*spanner.Result) (*graph.Graph, int) {
	out := graph.New(n)
	space := 0
	for j := 1; j <= len(results); j++ {
		res := results[j-1]
		space += res.SpaceWords
		for _, e := range res.Augmented.Edges() {
			if est.QExp(e.U, e.V) == j {
				out.AddEdge(e.U, e.V, math.Pow(2, float64(j)))
			}
		}
	}
	return out, space
}

// averageSamples averages the Z weighted samples edge-wise — the
// output assembly of Algorithm 6, shared by the serial and parallel
// pipelines so the accumulation order (and hence every floating-point
// result) is identical in both.
func averageSamples(n, z int, samples []*graph.Graph) *graph.Graph {
	acc := map[[2]int]float64{}
	for _, x := range samples {
		for _, e := range x.Edges() {
			acc[[2]int{e.U, e.V}] += e.W
		}
	}
	out := graph.New(n)
	for k, w := range acc {
		out.AddEdge(k[0], k[1], w/float64(z))
	}
	return out
}

// SampleOnce is Algorithm 5 (SAMPLE-AUGMENTED-SPANNER): for each rate
// 2^{-j} it builds an augmented spanner of the subsampled stream E_j and
// keeps the edges whose robust connectivity matches the rate, with
// weight 2^j. rep indexes the invocation's independent randomness.
func SampleOnce(st stream.Stream, est *Estimator, cfg Config, rep int) (*graph.Graph, int, error) {
	cfg = cfg.withDefaults(st.N())
	results := make([]*spanner.Result, cfg.H)
	for j := 1; j <= cfg.H; j++ {
		res, err := spanner.BuildTwoPass(sampleSubstream(st, cfg, rep, j), sampleSpannerConfig(cfg, rep, j))
		if err != nil {
			return nil, 0, fmt.Errorf("sparsify: sample rep=%d j=%d: %w", rep, j, err)
		}
		results[j-1] = res
	}
	out, space := assembleSample(st.N(), est, results)
	return out, space, nil
}

// Sparsify is Algorithm 6 (AUGMENTED-SPANNER-SPARSIFY): it estimates
// robust connectivities, draws Z independent weighted samples, and
// returns their average — a (1±O(ε))-spectral sparsifier whp for
// appropriately scaled Z (Lemma 22).
func Sparsify(st stream.Stream, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(st.N())
	est, err := NewEstimator(st, cfg.Estimate)
	if err != nil {
		return nil, err
	}
	space := est.SpaceWords()
	samples := make([]*graph.Graph, 0, cfg.Z)
	for s := 0; s < cfg.Z; s++ {
		x, w, err := SampleOnce(st, est, cfg, s)
		if err != nil {
			return nil, err
		}
		space += w
		samples = append(samples, x)
	}
	return &Result{
		Sparsifier: averageSamples(st.N(), cfg.Z, samples),
		SpaceWords: space,
		Samples:    cfg.Z,
	}, nil
}

// SparsifyWeighted extends Sparsify to weighted streams via the
// weight-class reduction (Remark 14 / Section 6 preamble): each class
// is sparsified as an unweighted graph and rescaled by its class upper
// bound, contributing the paper's log(wmax/wmin) factor.
func SparsifyWeighted(st stream.Stream, cfg Config, classBase float64) (*Result, error) {
	return SparsifyWeightedOpts(st, cfg, classBase, parallel.Default())
}
