package sparsify

import (
	"fmt"
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/obs"
	"dynstream/internal/parallel"
	"dynstream/internal/spanner"
	"dynstream/internal/stream"
)

// This file makes the sparsification pipeline concurrent. Two layers:
//
//   - Grid is the mergeable sketch state of Algorithm 4's J×T oracle
//     grid: every cell is a two-pass spanner state over a nested
//     subsampled edge set, and the whole grid is a linear function of
//     the update stream — so per-shard grids merge into exactly the
//     single-threaded grid (the "oracle-grid state" merge).
//   - SparsifyParallel / NewEstimatorParallel drive the grid's two
//     passes over round-robin stream shards with a worker per shard,
//     and fan the Z×H augmented-spanner builds of Algorithms 5–6 out
//     over a bounded worker pool. Every decode happens on the merged
//     state, so the output is identical to the serial pipeline.

// Grid is the linear sketch state underlying an Estimator: cell
// (t, j) holds the two-pass spanner state of oracle j at subsampling
// rate 2^{-(t-1)}. It supports the same pass protocol as
// spanner.TwoPass, plus cell-wise merging, and finishes into an
// Estimator identical to NewEstimator's.
type Grid struct {
	cfg     EstimateConfig
	n       int
	colHash []*hashing.Poly      // per column j: the E^j_t level hash
	cells   [][]*spanner.TwoPass // cells[t-1][j]
	phase   int
}

// NewGrid creates the oracle-grid sketch state for a graph on n
// vertices. Grids built from the same (n, cfg) are mergeable.
// ExactOracles is not a sketch and has no grid state; use
// NewEstimatorParallel, which task-parallelizes that ablation instead.
func NewGrid(n int, cfg EstimateConfig) (*Grid, error) {
	cfg = cfg.withDefaults(n)
	if cfg.ExactOracles {
		return nil, fmt.Errorf("sparsify: exact oracles have no mergeable grid state")
	}
	g := &Grid{cfg: cfg, n: n}
	g.colHash = make([]*hashing.Poly, cfg.J)
	for j := 0; j < cfg.J; j++ {
		// Must match stream.SampledSubstream(st, Mix(seed, 0xe5, j), t-1)
		// so that cell (t, j) sees exactly the substream E^j_t the serial
		// estimator feeds oracle (t, j).
		g.colHash[j] = hashing.NewPoly(
			hashing.Mix(hashing.Mix(cfg.Seed, 0xe5, uint64(j)), 0xe1), 8)
	}
	g.cells = make([][]*spanner.TwoPass, cfg.T)
	for t := 1; t <= cfg.T; t++ {
		row := make([]*spanner.TwoPass, cfg.J)
		for j := 0; j < cfg.J; j++ {
			row[j] = spanner.NewTwoPass(n, spanner.Config{
				K: cfg.K, Seed: hashing.Mix(cfg.Seed, 0x0a, uint64(t), uint64(j))})
		}
		g.cells[t-1] = row
	}
	return g, nil
}

// N returns the vertex count.
func (g *Grid) N() int { return g.n }

// Phase reports the build phase: 0 while pass 1 is open, 1 after
// EndPass1 (pass 2 open), 2 after Finish. Remote workers use it to
// route ingest on a grid decoded from the wire.
func (g *Grid) Phase() int { return g.phase }

// forEachCell visits the cells an update reaches: cell (t, j) sketches
// E^j_t, the edges whose column-j level is at least t−1.
func (g *Grid) forEachCell(u stream.Update, visit func(cell *spanner.TwoPass) error) error {
	key := stream.PairKey(u.U, u.V, g.n)
	for j := 0; j < g.cfg.J; j++ {
		tMax := g.colHash[j].Level(key) + 1
		if tMax > g.cfg.T {
			tMax = g.cfg.T
		}
		for t := 1; t <= tMax; t++ {
			if err := visit(g.cells[t-1][j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Pass1Update ingests one update into every cell whose substream
// contains the edge (first spanner pass).
func (g *Grid) Pass1Update(u stream.Update) error {
	if g.phase != 0 {
		return fmt.Errorf("sparsify: grid Pass1Update in phase %d", g.phase)
	}
	return g.forEachCell(u, func(c *spanner.TwoPass) error { return c.Pass1Update(u) })
}

// Pass1AddBatch ingests a batch of first-pass updates; bit-identical
// to calling Pass1Update per element.
func (g *Grid) Pass1AddBatch(batch []stream.Update) error {
	for _, u := range batch {
		if err := g.Pass1Update(u); err != nil {
			return err
		}
	}
	return nil
}

// MergePass1 adds another grid's first-pass state, cell-wise.
func (g *Grid) MergePass1(o *Grid) error {
	if err := g.compatible(o); err != nil {
		return err
	}
	for t := range g.cells {
		for j := range g.cells[t] {
			if err := g.cells[t][j].MergePass1(o.cells[t][j]); err != nil {
				return fmt.Errorf("sparsify: grid merge cell (t=%d, j=%d): %w", t+1, j, err)
			}
		}
	}
	return nil
}

// EndPass1 runs the offline cluster construction in every cell.
func (g *Grid) EndPass1() error {
	return g.EndPass1Opts(parallel.Default())
}

// EndPass1Opts fans the per-cell cluster constructions — each cell is
// an independent two-pass spanner state — across the policy's decode
// workers. Cells are addressed by (t, j) index, so the grid that
// emerges is identical to the serial cell-by-cell construction; each
// cell's own construction runs serially (the cell fan-out already
// saturates the pool).
func (g *Grid) EndPass1Opts(p *parallel.Policy) error {
	if g.phase != 0 {
		return fmt.Errorf("sparsify: grid EndPass1 in phase %d", g.phase)
	}
	sp := p.Tracer().Span("sparsify/grid/endpass1")
	J := g.cfg.J
	err := parallel.ForEachOpts(p.DecodePolicy(), len(g.cells)*J, func(i int) error {
		t, j := i/J, i%J
		if err := g.cells[t][j].EndPass1(); err != nil {
			return fmt.Errorf("sparsify: grid cell (t=%d, j=%d): %w", t+1, j, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	g.phase = 1
	sp.End(obs.A("cells", int64(len(g.cells)*J)))
	return nil
}

// ForkPass2 returns a second-pass worker grid sharing this grid's
// cluster structures, with freshly zeroed tables (see
// spanner.TwoPass.ForkPass2).
func (g *Grid) ForkPass2() (*Grid, error) {
	if g.phase != 1 {
		return nil, fmt.Errorf("sparsify: grid ForkPass2 in phase %d", g.phase)
	}
	w := &Grid{cfg: g.cfg, n: g.n, colHash: g.colHash, phase: 1}
	w.cells = make([][]*spanner.TwoPass, len(g.cells))
	for t := range g.cells {
		w.cells[t] = make([]*spanner.TwoPass, len(g.cells[t]))
		for j := range g.cells[t] {
			f, err := g.cells[t][j].ForkPass2()
			if err != nil {
				return nil, err
			}
			w.cells[t][j] = f
		}
	}
	return w, nil
}

// Pass2Update ingests one update into every cell whose substream
// contains the edge (second spanner pass).
func (g *Grid) Pass2Update(u stream.Update) error {
	if g.phase != 1 {
		return fmt.Errorf("sparsify: grid Pass2Update in phase %d", g.phase)
	}
	return g.forEachCell(u, func(c *spanner.TwoPass) error { return c.Pass2Update(u) })
}

// Pass2AddBatch ingests a batch of second-pass updates; bit-identical
// to calling Pass2Update per element.
func (g *Grid) Pass2AddBatch(batch []stream.Update) error {
	for _, u := range batch {
		if err := g.Pass2Update(u); err != nil {
			return err
		}
	}
	return nil
}

// MergePass2 adds another grid's second-pass table state, cell-wise.
func (g *Grid) MergePass2(o *Grid) error {
	if err := g.compatible(o); err != nil {
		return err
	}
	for t := range g.cells {
		for j := range g.cells[t] {
			if err := g.cells[t][j].MergePass2(o.cells[t][j]); err != nil {
				return fmt.Errorf("sparsify: grid merge cell (t=%d, j=%d): %w", t+1, j, err)
			}
		}
	}
	return nil
}

func (g *Grid) compatible(o *Grid) error {
	if g.n != o.n || g.cfg != o.cfg {
		return fmt.Errorf("sparsify: merging incompatible grids (n %d/%d)", g.n, o.n)
	}
	return nil
}

// Finish decodes every cell into its distance oracle and assembles the
// Estimator — identical to NewEstimator over the same whole stream.
func (g *Grid) Finish() (*Estimator, error) {
	return g.FinishOpts(parallel.Default())
}

// FinishOpts fans the per-cell spanner extraction (table peeling and
// neighborhood recovery of every cell's Finish) across the policy's
// decode workers, assembling the oracle grid by (t, j) index — the
// Estimator is identical to Finish's.
func (g *Grid) FinishOpts(p *parallel.Policy) (*Estimator, error) {
	if g.phase != 1 {
		return nil, fmt.Errorf("sparsify: grid Finish in phase %d", g.phase)
	}
	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sparsify: %w", err)
	}
	g.phase = 2
	sp := p.Tracer().Span("sparsify/grid/extract")
	e := &Estimator{cfg: g.cfg}
	e.threshold = g.cfg.Threshold
	if e.threshold == 0 {
		e.threshold = math.Pow(2, float64(g.cfg.K))
	}
	alpha := math.Pow(2, float64(g.cfg.K))
	J := g.cfg.J
	oracles, err := parallel.MapOpts(p, len(g.cells)*J, func(i int) (Oracle, error) {
		t, j := i/J, i%J
		res, err := g.cells[t][j].Finish()
		if err != nil {
			return nil, fmt.Errorf("sparsify: grid finish cell (t=%d, j=%d): %w", t+1, j, err)
		}
		return &spannerOracle{
			h: res.Spanner, alpha: alpha, space: res.SpaceWords, memo: map[int][]int{},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	e.oracles = make([][]Oracle, g.cfg.T)
	for t := range g.cells {
		e.oracles[t] = oracles[t*J : (t+1)*J]
		for _, o := range e.oracles[t] {
			e.space += o.SpaceWords()
		}
	}
	sp.End(obs.A("cells", int64(len(g.cells)*J)))
	return e, nil
}

// NewEstimatorOpts is the policy-driven estimator build: the oracle
// grid's two passes run under p's context, workers, batch size, and
// progress sink, producing an Estimator identical to NewEstimator's
// for any policy. The source must be replayable. The ExactOracles
// ablation (which materializes substreams rather than sketching them)
// is built cell-by-cell on the policy's worker pool instead.
func NewEstimatorOpts(src stream.Source, cfg EstimateConfig, p *parallel.Policy) (*Estimator, error) {
	if !stream.CanReplay(src) {
		return nil, fmt.Errorf("sparsify: estimator: %w", stream.ErrNotReplayable)
	}
	cfg = cfg.withDefaults(src.N())
	if cfg.ExactOracles {
		return newExactEstimatorOpts(src, cfg, p)
	}
	// At one worker the ingest dispatcher degenerates to a serial replay
	// of a single grid — one code path (and one set of trace spans) for
	// all widths.
	main, err := parallel.IngestOpts(p, src,
		func() (*Grid, error) { return NewGrid(src.N(), cfg) },
		(*Grid).Pass1AddBatch, (*Grid).MergePass1)
	if err != nil {
		return nil, fmt.Errorf("sparsify: estimator pass 1: %w", err)
	}
	if err := main.EndPass1Opts(p); err != nil {
		return nil, err
	}
	tables, err := parallel.IngestOpts(p, src,
		main.ForkPass2, (*Grid).Pass2AddBatch, (*Grid).MergePass2)
	if err != nil {
		return nil, fmt.Errorf("sparsify: estimator pass 2: %w", err)
	}
	if err := main.MergePass2(tables); err != nil {
		return nil, err
	}
	return main.FinishOpts(p)
}

// NewEstimatorParallel is NewEstimator with concurrent ingestion: the
// stream is split into `workers` round-robin shards, each worker runs
// both grid passes over its own shard state, and the merged grid is
// decoded once — producing an Estimator identical to the serial one.
func NewEstimatorParallel(st stream.Stream, cfg EstimateConfig, workers int) (*Estimator, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sparsify: workers must be >= 1, got %d", workers)
	}
	if workers == 1 {
		return NewEstimator(st, cfg)
	}
	return NewEstimatorOpts(st, cfg, parallel.Default().WithWorkers(workers))
}

// newExactEstimatorOpts builds the A3 ablation grid (materialized
// exact oracles) cell-by-cell on the policy's worker pool. Each cell
// replays the source, so a single-cursor source degrades the pool to
// one worker.
func newExactEstimatorOpts(st stream.Source, cfg EstimateConfig, p *parallel.Policy) (*Estimator, error) {
	if !stream.ConcurrentReplayable(st) {
		p = p.WithWorkers(1)
	}
	e := &Estimator{cfg: cfg}
	e.threshold = cfg.Threshold
	if e.threshold == 0 {
		e.threshold = math.Pow(2, float64(cfg.K))
	}
	e.oracles = make([][]Oracle, cfg.T)
	for t := range e.oracles {
		e.oracles[t] = make([]Oracle, cfg.J)
	}
	err := parallel.ForEachOpts(p, cfg.T*cfg.J, func(i int) error {
		t, j := i/cfg.J+1, i%cfg.J
		sub := stream.SampledSubstream(st, hashing.Mix(cfg.Seed, 0xe5, uint64(j)), t-1)
		o, err := NewExactOracle(sub)
		if err != nil {
			return fmt.Errorf("sparsify: estimator oracle (t=%d, j=%d): %w", t, j, err)
		}
		e.oracles[t-1][j] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	for t := range e.oracles {
		for j := range e.oracles[t] {
			e.space += e.oracles[t][j].SpaceWords()
		}
	}
	return e, nil
}

// SparsifyOpts is the policy-driven sparsifier build: the oracle grid
// runs its two passes under p, and the Z×H augmented-spanner builds of
// Algorithms 5–6 fan out over p's worker pool (each inner build runs
// serially under the same context, so cancellation is observed at
// batch granularity everywhere). All filtering and averaging happens
// on the merged states in the serial order, so the output sparsifier
// is identical to Sparsify's for the same configuration under any
// policy.
func SparsifyOpts(src stream.Source, cfg Config, p *parallel.Policy) (*Result, error) {
	if !stream.CanReplay(src) {
		return nil, fmt.Errorf("sparsify: %w", stream.ErrNotReplayable)
	}
	cfg = cfg.withDefaults(src.N())
	est, err := NewEstimatorOpts(src, cfg.Estimate, p)
	if err != nil {
		return nil, err
	}

	// Fan the Z×H augmented-spanner builds out over the pool. Each
	// build is self-contained (its own sketch state over a filtered
	// replay of src), so tasks share nothing but the read-only stream —
	// which must therefore support concurrent replay; a single-cursor
	// source (file-backed ReaderSource) degrades to a sequential loop.
	// Substream and spanner configuration come from the same helpers
	// SampleOnce uses, so the serial and parallel samples cannot drift.
	// While the fan-out is actually parallel the inner builds run fully
	// serial — ingest and decode — since the task fan already saturates
	// the pool; a sequential fan (single-cursor source, or one worker)
	// keeps the policy's decode parallelism inside each build instead.
	inner := p.WithWorkers(1)
	fan := p
	if !stream.ConcurrentReplayable(src) {
		fan = inner
	}
	if fan.Workers() > 1 {
		inner = inner.WithDecode(1)
	}
	aug := make([][]*spanner.Result, cfg.Z)
	for s := range aug {
		aug[s] = make([]*spanner.Result, cfg.H)
	}
	err = parallel.ForEachOpts(fan, cfg.Z*cfg.H, func(i int) error {
		s, j := i/cfg.H, i%cfg.H+1
		res, err := spanner.BuildTwoPassOpts(sampleSubstream(src, cfg, s, j), sampleSpannerConfig(cfg, s, j), inner)
		if err != nil {
			return fmt.Errorf("sparsify: sample rep=%d j=%d: %w", s, j, err)
		}
		aug[s][j-1] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Filter against the robust-connectivity estimates and average, in
	// exactly the serial iteration order (QExp memoizes BFS trees, so
	// this stays single-threaded).
	space := est.SpaceWords()
	samples := make([]*graph.Graph, 0, cfg.Z)
	for s := 0; s < cfg.Z; s++ {
		x, w := assembleSample(src.N(), est, aug[s])
		space += w
		samples = append(samples, x)
	}
	return &Result{
		Sparsifier: averageSamples(src.N(), cfg.Z, samples),
		SpaceWords: space,
		Samples:    cfg.Z,
	}, nil
}

// SparsifyWith is the sparsification pipeline with injected pass
// engines: buildEstimator constructs the robust-connectivity estimator
// (the oracle grid's two passes), and buildSpanner constructs one
// augmented spanner over a subsampled substream. The substream/config
// derivations, the filtering against the estimates, and the averaging
// are shared with the serial pipeline, so any engine that ingests the
// same updates into the same-seeded states — a policy worker pool or
// dynnet's remote workers — produces an identical sparsifier. The Z×H
// sample builds run sequentially; concurrent fan-out stays in
// SparsifyOpts.
func SparsifyWith(src stream.Source, cfg Config,
	buildEstimator func(cfg EstimateConfig) (*Estimator, error),
	buildSpanner func(sub stream.Source, scfg spanner.Config) (*spanner.Result, error),
) (*Result, error) {
	if !stream.CanReplay(src) {
		return nil, fmt.Errorf("sparsify: %w", stream.ErrNotReplayable)
	}
	cfg = cfg.withDefaults(src.N())
	est, err := buildEstimator(cfg.Estimate)
	if err != nil {
		return nil, err
	}
	space := est.SpaceWords()
	samples := make([]*graph.Graph, 0, cfg.Z)
	for s := 0; s < cfg.Z; s++ {
		results := make([]*spanner.Result, cfg.H)
		for j := 1; j <= cfg.H; j++ {
			res, err := buildSpanner(sampleSubstream(src, cfg, s, j), sampleSpannerConfig(cfg, s, j))
			if err != nil {
				return nil, fmt.Errorf("sparsify: sample rep=%d j=%d: %w", s, j, err)
			}
			results[j-1] = res
		}
		x, w := assembleSample(src.N(), est, results)
		space += w
		samples = append(samples, x)
	}
	return &Result{
		Sparsifier: averageSamples(src.N(), cfg.Z, samples),
		SpaceWords: space,
		Samples:    cfg.Z,
	}, nil
}

// SparsifyWeightedOpts is the policy-driven weight-class sparsifier
// (see SparsifyWeighted): each class is sparsified with SparsifyOpts
// under the same policy and rescaled by its class upper bound.
func SparsifyWeightedOpts(src stream.Source, cfg Config, classBase float64, p *parallel.Policy) (*Result, error) {
	return SparsifyWeightedWith(src, cfg, classBase, func(sub stream.Source, ccfg Config) (*Result, error) {
		return SparsifyOpts(sub, ccfg, p)
	})
}

// SparsifyWeightedWith is the weight-class sparsifier with an injected
// per-class builder (see BuildTwoPassWeightedWith for the pattern).
func SparsifyWeightedWith(src stream.Source, cfg Config, classBase float64, build func(stream.Source, Config) (*Result, error)) (*Result, error) {
	if classBase <= 1 {
		return nil, fmt.Errorf("sparsify: classBase must be > 1, got %v", classBase)
	}
	if !stream.CanReplay(src) {
		return nil, fmt.Errorf("sparsify: %w", stream.ErrNotReplayable)
	}
	classes, sub := stream.WeightClasses(src, classBase)
	out := graph.New(src.N())
	total := &Result{Sparsifier: out}
	for _, c := range classes {
		ccfg := cfg
		ccfg.Seed = hashing.Mix(cfg.Seed, 0x3d, uint64(c))
		ccfg.Estimate.Seed = hashing.Mix(cfg.Seed, 0x3e, uint64(c))
		res, err := build(sub[c], ccfg)
		if err != nil {
			return nil, fmt.Errorf("sparsify: weight class %d: %w", c, err)
		}
		scale := math.Pow(classBase, float64(c+1))
		for _, e := range res.Sparsifier.Edges() {
			if w, ok := out.Weight(e.U, e.V); ok {
				out.AddEdge(e.U, e.V, w+scale*e.W)
			} else {
				out.AddEdge(e.U, e.V, scale*e.W)
			}
		}
		total.SpaceWords += res.SpaceWords
		total.Samples += res.Samples
	}
	return total, nil
}

// SparsifyParallel is Sparsify with concurrent ingestion: the oracle
// grid is built from sharded stream ingest, and the Z×H augmented
// spanner constructions run on a bounded worker pool. The output is
// identical to Sparsify's for the same configuration.
func SparsifyParallel(st stream.Stream, cfg Config, workers int) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sparsify: workers must be >= 1, got %d", workers)
	}
	if workers == 1 {
		return Sparsify(st, cfg)
	}
	return SparsifyOpts(st, cfg, parallel.Default().WithWorkers(workers))
}
