package sparsify

import (
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/linalg"
)

// SpielmanSrivastava is the offline effective-resistance sampling
// sparsifier of Theorem 7 [SS08]: each edge e is kept independently
// with probability p_e = min(1, C·w_e·R_e·log n / ε²) and weight
// w_e / p_e, giving (1−ε)G ⪯ H ⪯ (1+ε)G whp. It requires random access
// to G (it is the baseline the streaming construction is measured
// against in experiment E7, not a streaming algorithm).
func SpielmanSrivastava(g *graph.Graph, eps, c float64, seed uint64) *graph.Graph {
	n := g.N()
	h := graph.New(n)
	if g.M() == 0 {
		return h
	}
	if c <= 0 {
		c = 1
	}
	logn := math.Log(float64(n) + 1)
	rs := linalg.EffectiveResistances(g)
	rng := hashing.NewSplitMix64(seed)
	for i, e := range g.Edges() {
		p := c * e.W * rs[i] * logn / (eps * eps)
		if p > 1 {
			p = 1
		}
		if rng.Float64() < p {
			h.AddEdge(e.U, e.V, e.W/p)
		}
	}
	return h
}
