package sparsify

import (
	"fmt"
	"math"

	"dynstream/internal/hashing"
	"dynstream/internal/stream"
)

// EstimateConfig parameterizes Algorithm 4 (ESTIMATE). The paper sets
// J = O(log n / δ²) and T = log n⁴; both are exposed so experiments can
// trade accuracy for the (J·T)-fold spanner-construction cost.
type EstimateConfig struct {
	// K is the stretch exponent of the underlying spanner oracles
	// (α = 2^K).
	K int
	// J is the number of independent subsample repetitions per rate.
	J int
	// T is the number of nested subsampling rates (E^j_1 = E, rate
	// halves per step).
	T int
	// Delta is the robustness parameter δ: q̂ = 2^{-t} for the smallest
	// t at which ≥ (1−δ)J oracles report disconnection-at-scale.
	Delta float64
	// Threshold is the oracle-distance cutoff for ρ_j(t) = 1; zero
	// means "use the oracle's stretch α".
	Threshold float64
	// Seed selects all randomness.
	Seed uint64
	// ExactOracles switches to materialized exact-distance oracles —
	// the A3 ablation (violates streaming space, preserves semantics).
	ExactOracles bool
}

func (c EstimateConfig) withDefaults(n int) EstimateConfig {
	if c.K < 1 {
		c.K = 2
	}
	log2n := int(math.Ceil(math.Log2(float64(n + 1))))
	if log2n < 1 {
		log2n = 1
	}
	if c.J == 0 {
		c.J = 4
	}
	if c.T == 0 {
		c.T = 2*log2n + 1
	}
	if c.Delta == 0 {
		c.Delta = 0.25
	}
	return c
}

// Estimator is the preprocessed state of Algorithm 4: a J×T grid of
// stretch-α distance oracles over nested subsampled edge sets, queried
// on demand for robust-connectivity estimates q̂_{α,δ}(u, v).
type Estimator struct {
	cfg       EstimateConfig
	threshold float64
	oracles   [][]Oracle // oracles[t-1][j], E^j_t at rate 2^{-(t-1)}
	space     int
}

// NewEstimator builds the oracle grid over the stream (each oracle is a
// two-pass spanner over a filtered substream, so this replays st
// 2·J·T times — the paper's preprocessing loop).
func NewEstimator(st stream.Stream, cfg EstimateConfig) (*Estimator, error) {
	cfg = cfg.withDefaults(st.N())
	build := spannerOracleBuilder(cfg.K)
	if cfg.ExactOracles {
		build = exactOracleBuilder()
	}
	e := &Estimator{cfg: cfg}
	e.threshold = cfg.Threshold
	if e.threshold == 0 {
		e.threshold = math.Pow(2, float64(cfg.K))
	}
	e.oracles = make([][]Oracle, cfg.T)
	for t := 1; t <= cfg.T; t++ {
		row := make([]Oracle, cfg.J)
		for j := 0; j < cfg.J; j++ {
			sub := stream.SampledSubstream(st, hashing.Mix(cfg.Seed, 0xe5, uint64(j)), t-1)
			o, err := build(sub, hashing.Mix(cfg.Seed, 0x0a, uint64(t), uint64(j)))
			if err != nil {
				return nil, fmt.Errorf("sparsify: estimator oracle (t=%d, j=%d): %w", t, j, err)
			}
			row[j] = o
			e.space += o.SpaceWords()
		}
		e.oracles[t-1] = row
	}
	return e, nil
}

// QExp returns the exponent t* of the robust-connectivity estimate
// q̂(u,v) = 2^{-t*}: the smallest t at which at least (1−δ)J of the
// rate-2^{-(t-1)} oracles report distance above the threshold. If no t
// qualifies, T is returned (the edge is maximally well-connected at
// every probed rate).
func (e *Estimator) QExp(u, v int) int {
	need := (1 - e.cfg.Delta) * float64(e.cfg.J)
	for t := 1; t <= e.cfg.T; t++ {
		far := 0
		for _, o := range e.oracles[t-1] {
			if o.Dist(u, v) > e.threshold {
				far++
			}
		}
		if float64(far) >= need {
			return t
		}
	}
	return e.cfg.T
}

// QHat returns q̂_{α,δ}(u, v) = 2^{-QExp(u,v)}.
func (e *Estimator) QHat(u, v int) float64 {
	return math.Pow(2, -float64(e.QExp(u, v)))
}

// SpaceWords reports the total sketch footprint of the oracle grid.
func (e *Estimator) SpaceWords() int { return e.space }
