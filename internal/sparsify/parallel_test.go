package sparsify

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func TestEstimatorParallelMatchesSerial(t *testing.T) {
	g := graph.Complete(12)
	st := stream.FromGraph(g, 101)
	cfg := EstimateConfig{K: 1, J: 3, T: 6, Delta: 0.34, Seed: 102}

	serial, err := NewEstimator(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := NewEstimatorParallel(st, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.SpaceWords() != serial.SpaceWords() {
			t.Errorf("workers=%d: space %d vs serial %d", workers, par.SpaceWords(), serial.SpaceWords())
		}
		// The robust-connectivity estimate is the estimator's entire
		// query surface; it must agree on every pair.
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if pe, se := par.QExp(u, v), serial.QExp(u, v); pe != se {
					t.Fatalf("workers=%d: QExp(%d,%d) = %d vs serial %d", workers, u, v, pe, se)
				}
			}
		}
	}
}

func TestEstimatorParallelExactOracles(t *testing.T) {
	g := graph.Complete(10)
	st := stream.FromGraph(g, 103)
	cfg := EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 104, ExactOracles: true}
	serial, err := NewEstimator(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEstimatorParallel(st, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if pe, se := par.QExp(u, v), serial.QExp(u, v); pe != se {
				t.Fatalf("QExp(%d,%d) = %d vs serial %d", u, v, pe, se)
			}
		}
	}
	if _, err := NewGrid(g.N(), cfg); err == nil {
		t.Error("NewGrid accepted ExactOracles config")
	}
}

func TestSparsifyParallelMatchesSerial(t *testing.T) {
	g := graph.Complete(12)
	st := stream.FromGraph(g, 105)
	cfg := Config{
		K: 1, Z: 8, Seed: 106,
		Estimate: EstimateConfig{K: 1, J: 2, T: 6, Delta: 0.34, Seed: 107},
	}
	serial, err := Sparsify(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := SparsifyParallel(st, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Samples != serial.Samples || par.SpaceWords != serial.SpaceWords {
			t.Errorf("workers=%d: samples/space %d/%d vs serial %d/%d",
				workers, par.Samples, par.SpaceWords, serial.Samples, serial.SpaceWords)
		}
		pe, se := par.Sparsifier.Edges(), serial.Sparsifier.Edges()
		if len(pe) != len(se) {
			t.Fatalf("workers=%d: %d edges vs serial %d", workers, len(pe), len(se))
		}
		for i := range pe {
			// Bit-identical weights: the parallel path averages in the
			// serial iteration order.
			if pe[i] != se[i] {
				t.Fatalf("workers=%d: edge %d = %+v vs serial %+v", workers, i, pe[i], se[i])
			}
		}
	}
}

func TestSparsifyParallelRejectsBadWorkers(t *testing.T) {
	st := stream.FromGraph(graph.Complete(6), 108)
	if _, err := SparsifyParallel(st, Config{K: 1, Z: 2, Seed: 1}, 0); err == nil {
		t.Error("SparsifyParallel accepted workers=0")
	}
	if _, err := NewEstimatorParallel(st, EstimateConfig{K: 1, Seed: 1}, -2); err == nil {
		t.Error("NewEstimatorParallel accepted workers=-2")
	}
}

func TestGridMergeMisuse(t *testing.T) {
	cfgA := EstimateConfig{K: 1, J: 2, T: 3, Delta: 0.34, Seed: 109}
	cfgB := EstimateConfig{K: 1, J: 2, T: 3, Delta: 0.34, Seed: 110}
	a, err := NewGrid(8, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGrid(8, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergePass1(b); err == nil {
		t.Error("grid MergePass1 accepted mismatched seeds")
	}
	if _, err := a.ForkPass2(); err == nil {
		t.Error("grid ForkPass2 accepted phase-0 receiver")
	}
	if err := a.EndPass1(); err != nil {
		t.Fatal(err)
	}
	w, err := a.ForkPass2()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergePass2(w); err != nil {
		t.Errorf("grid MergePass2 of forked worker: %v", err)
	}
	if _, err := a.Finish(); err != nil {
		t.Errorf("grid Finish: %v", err)
	}
	if _, err := a.Finish(); err == nil {
		t.Error("grid Finish accepted twice")
	}
}
