package sparsify

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary serialization for the oracle-grid sketch state, so per-shard
// grids can be shipped between processes and merged at a coordinator
// (MergePass1/MergePass2) exactly like the spanner states they are
// made of.

const tagGrid uint64 = 0xd15c_000b

var errCorrupt = errors.New("sparsify: corrupt serialized data")

// MarshalBinary encodes the grid: configuration plus every cell's
// two-pass spanner state. A finished grid (after Finish) cannot be
// marshaled.
func (g *Grid) MarshalBinary() ([]byte, error) {
	if g.phase > 1 {
		return nil, fmt.Errorf("sparsify: cannot marshal a finished grid")
	}
	var out []byte
	u64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	u64(tagGrid)
	u64(uint64(g.n))
	u64(uint64(g.phase))
	u64(uint64(g.cfg.K))
	u64(uint64(g.cfg.J))
	u64(uint64(g.cfg.T))
	u64(math.Float64bits(g.cfg.Delta))
	u64(math.Float64bits(g.cfg.Threshold))
	u64(g.cfg.Seed)
	for t := range g.cells {
		for j := range g.cells[t] {
			enc, err := g.cells[t][j].MarshalBinary()
			if err != nil {
				return nil, err
			}
			u64(uint64(len(enc)))
			out = append(out, enc...)
		}
	}
	return out, nil
}

// UnmarshalBinary reconstructs a grid encoded with MarshalBinary.
func (g *Grid) UnmarshalBinary(data []byte) error {
	pos := 0
	u64 := func() (uint64, error) {
		if len(data)-pos < 8 {
			return 0, errCorrupt
		}
		v := binary.LittleEndian.Uint64(data[pos : pos+8])
		pos += 8
		return v, nil
	}
	tag, err := u64()
	if err != nil || tag != tagGrid {
		return fmt.Errorf("sparsify: not a Grid encoding: %w", errCorrupt)
	}
	var n, phase, k, j, t, deltaBits, thrBits, seed uint64
	for _, dst := range []*uint64{&n, &phase, &k, &j, &t, &deltaBits, &thrBits, &seed} {
		if *dst, err = u64(); err != nil {
			return err
		}
	}
	if n == 0 || n > 1<<24 || phase > 1 || k == 0 || k > 64 || j == 0 || j > 1<<12 || t == 0 || t > 1<<12 {
		return errCorrupt
	}
	cfg := EstimateConfig{
		K: int(k), J: int(j), T: int(t),
		Delta:     math.Float64frombits(deltaBits),
		Threshold: math.Float64frombits(thrBits),
		Seed:      seed,
	}
	rebuilt, err := NewGrid(int(n), cfg)
	if err != nil {
		return err
	}
	if rebuilt.cfg != cfg.withDefaults(int(n)) {
		return errCorrupt
	}
	for ti := range rebuilt.cells {
		for ji := range rebuilt.cells[ti] {
			ln, err := u64()
			if err != nil {
				return err
			}
			if uint64(len(data)-pos) < ln {
				return errCorrupt
			}
			if err := rebuilt.cells[ti][ji].UnmarshalBinary(data[pos : pos+int(ln)]); err != nil {
				return err
			}
			pos += int(ln)
		}
	}
	rebuilt.phase = int(phase)
	if pos != len(data) {
		return errCorrupt
	}
	*g = *rebuilt
	return nil
}
