// Package sparsify implements Section 6 of the paper: the two-pass
// ε-spectral sparsifier of Corollary 2, obtained by plugging the
// two-pass 2^k-spanner into the KP12 reduction. Its pieces map onto
// the paper's pseudocode:
//
//   - Estimator (Algorithm 4, ESTIMATE): robust-connectivity estimates
//     q̂_{α,δ}(e) from J×T spanner-based distance oracles over nested
//     subsampled edge sets E^j_t.
//   - SampleOnce (Algorithm 5, SAMPLE-AUGMENTED-SPANNER): one weighted
//     sample X_s built from H augmented spanners over E_j.
//   - Sparsify (Algorithm 6, AUGMENTED-SPANNER-SPARSIFY): the average
//     of Z independent samples.
//   - SpielmanSrivastava (Theorem 7): the offline effective-resistance
//     sampling baseline used for quality comparison (experiment E7).
package sparsify

import (
	"fmt"
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/spanner"
	"dynstream/internal/stream"
)

// Oracle estimates hop distances with a known stretch: the true
// distance d satisfies d <= Dist(u,v) <= Alpha()·d (up to the whp
// failure of the underlying spanner).
type Oracle interface {
	// Dist returns the estimated distance between u and v in hops;
	// +Inf if they are disconnected in the oracle's subgraph.
	Dist(u, v int) float64
	// Alpha returns the stretch bound of the estimate.
	Alpha() float64
	// SpaceWords reports the sketch footprint used to build the oracle.
	SpaceWords() int
}

// spannerOracle answers distance queries by BFS on a two-pass spanner,
// memoizing BFS trees per source. This is exactly the paper's oracle:
// "our multiplicative spanner construction provides such an estimate
// with α <= 2^k".
type spannerOracle struct {
	h     *graph.Graph
	alpha float64
	space int
	memo  map[int][]int
}

// NewSpannerOracle builds a stretch-2^k distance oracle over a dynamic
// stream using the two-pass spanner of Theorem 1.
func NewSpannerOracle(st stream.Stream, k int, seed uint64) (Oracle, error) {
	res, err := spanner.BuildTwoPass(st, spanner.Config{K: k, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("sparsify: oracle spanner: %w", err)
	}
	return &spannerOracle{
		h:     res.Spanner,
		alpha: math.Pow(2, float64(k)),
		space: res.SpaceWords,
		memo:  map[int][]int{},
	}, nil
}

func (o *spannerOracle) Dist(u, v int) float64 {
	d, ok := o.memo[u]
	if !ok {
		d = o.h.BFS(u)
		o.memo[u] = d
	}
	if d[v] < 0 {
		return math.Inf(1)
	}
	return float64(d[v])
}

func (o *spannerOracle) Alpha() float64  { return o.alpha }
func (o *spannerOracle) SpaceWords() int { return o.space }

// exactOracle materializes the substream and answers exactly (stretch
// 1). It violates the streaming space budget and exists only for the
// ablation experiment A3 (sketch oracles vs exact oracles).
type exactOracle struct {
	g    *graph.Graph
	memo map[int][]int
}

// NewExactOracle materializes st and answers by BFS (ablation only).
func NewExactOracle(st stream.Stream) (Oracle, error) {
	g, err := stream.Materialize(st)
	if err != nil {
		return nil, fmt.Errorf("sparsify: exact oracle: %w", err)
	}
	return &exactOracle{g: g, memo: map[int][]int{}}, nil
}

func (o *exactOracle) Dist(u, v int) float64 {
	d, ok := o.memo[u]
	if !ok {
		d = o.g.BFS(u)
		o.memo[u] = d
	}
	if d[v] < 0 {
		return math.Inf(1)
	}
	return float64(d[v])
}

func (o *exactOracle) Alpha() float64  { return 1 }
func (o *exactOracle) SpaceWords() int { return 2 * o.g.M() }

// oracleBuilder abstracts which oracle kind the Estimator constructs.
type oracleBuilder func(st stream.Stream, seed uint64) (Oracle, error)

func spannerOracleBuilder(k int) oracleBuilder {
	return func(st stream.Stream, seed uint64) (Oracle, error) {
		return NewSpannerOracle(st, k, seed)
	}
}

func exactOracleBuilder() oracleBuilder {
	return func(st stream.Stream, seed uint64) (Oracle, error) {
		_ = seed
		return NewExactOracle(st)
	}
}

var _ = hashing.Mix // used by sibling files
