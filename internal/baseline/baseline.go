// Package baseline implements the offline comparators the paper is
// positioned against: the Baswana–Sen randomized (2k−1)-spanner [BS07]
// (whose stretch/space point the paper's Theorem 1 trades passes for)
// and the greedy (2k−1)-spanner of Althöfer et al. (the classical
// quality ceiling). Both assume random access to the graph — exactly
// the capability dynamic streaming removes — so they serve as quality
// baselines in experiment E9, not as competitors in the model.
package baseline

import (
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
)

// Greedy returns the greedy (2k−1)-spanner: scan edges, keep an edge
// iff the current spanner has no path of length ≤ 2k−1 between its
// endpoints. For unweighted graphs this yields a (2k−1)-spanner of
// size O(n^{1+1/k}).
func Greedy(g *graph.Graph, k int) *graph.Graph {
	if k < 1 {
		k = 1
	}
	t := 2*k - 1
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		if !withinHops(h, e.U, e.V, t) {
			h.AddEdge(e.U, e.V, e.W)
		}
	}
	return h
}

// withinHops reports whether v is reachable from u in at most t hops in
// h, via a depth-limited BFS.
func withinHops(h *graph.Graph, u, v, t int) bool {
	if u == v {
		return true
	}
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] >= t {
			continue
		}
		for _, y := range h.Neighbors(x) {
			if _, seen := dist[y]; seen {
				continue
			}
			if y == v {
				return true
			}
			dist[y] = dist[x] + 1
			queue = append(queue, y)
		}
	}
	return false
}

// BaswanaSen returns a (2k−1)-spanner of an unweighted graph via the
// randomized clustering algorithm of Baswana and Sen [BS07]. Expected
// size O(k·n^{1+1/k}).
func BaswanaSen(g *graph.Graph, k int, seed uint64) *graph.Graph {
	n := g.N()
	if k < 1 {
		k = 1
	}
	h := graph.New(n)
	rng := hashing.NewSplitMix64(seed)
	sampleRate := math.Pow(float64(n), -1.0/float64(k))

	// cluster[v] = center id of v's cluster, or -1 once v has been
	// discarded from clustering (its inter-cluster edges were added).
	cluster := make([]int, n)
	for v := range cluster {
		cluster[v] = v
	}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	// Remaining edges considered by the algorithm.
	type edge struct{ u, v int }
	edges := map[edge]bool{}
	for _, e := range g.Edges() {
		edges[edge{e.U, e.V}] = true
	}
	for phase := 0; phase < k-1; phase++ {
		// Sample surviving cluster centers.
		centers := map[int]bool{}
		for v := 0; v < n; v++ {
			if active[v] && cluster[v] == v {
				if rng.Float64() < sampleRate {
					centers[v] = true
				}
			}
		}
		newCluster := make([]int, n)
		for v := range newCluster {
			newCluster[v] = -1
		}
		// Vertices already in a sampled cluster stay.
		for v := 0; v < n; v++ {
			if active[v] && centers[cluster[v]] {
				newCluster[v] = cluster[v]
			}
		}
		for v := 0; v < n; v++ {
			if !active[v] || newCluster[v] != -1 {
				continue
			}
			// Group v's remaining edges by neighbor cluster.
			type best struct{ to int }
			byCluster := map[int]best{}
			for _, u := range g.Neighbors(v) {
				if !active[u] {
					continue
				}
				e := edge{min(u, v), max(u, v)}
				if !edges[e] {
					continue
				}
				c := cluster[u]
				if _, ok := byCluster[c]; !ok {
					byCluster[c] = best{to: u}
				}
			}
			// Adjacent to a sampled cluster? Join the first one found
			// (deterministic order over cluster ids for reproducibility).
			joined := -1
			for c := range byCluster {
				if centers[c] && (joined == -1 || c < joined) {
					joined = c
				}
			}
			if joined != -1 {
				u := byCluster[joined].to
				h.AddUnitEdge(v, u)
				newCluster[v] = joined
				// Remove edges from v to the joined cluster.
				for _, u2 := range g.Neighbors(v) {
					if active[u2] && cluster[u2] == joined {
						delete(edges, edge{min(u2, v), max(u2, v)})
					}
				}
				continue
			}
			// No sampled neighbor cluster: add one edge per adjacent
			// cluster and retire v.
			for c, b := range byCluster {
				h.AddUnitEdge(v, b.to)
				for _, u2 := range g.Neighbors(v) {
					if active[u2] && cluster[u2] == c {
						delete(edges, edge{min(u2, v), max(u2, v)})
					}
				}
			}
			active[v] = false
		}
		for v := 0; v < n; v++ {
			if active[v] {
				cluster[v] = newCluster[v]
				if cluster[v] == -1 {
					active[v] = false
				}
			}
		}
	}

	// Phase 2: vertex-cluster joining — every surviving vertex adds one
	// edge to each adjacent surviving cluster.
	for v := 0; v < n; v++ {
		byCluster := map[int]int{}
		for _, u := range g.Neighbors(v) {
			if !active[u] {
				continue
			}
			e := edge{min(u, v), max(u, v)}
			if !edges[e] {
				continue
			}
			c := cluster[u]
			if _, ok := byCluster[c]; !ok {
				byCluster[c] = u
			}
		}
		for _, u := range byCluster {
			h.AddUnitEdge(v, u)
		}
	}
	return h
}
