package baseline

import (
	"fmt"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// StreamingGreedy is the classical single-pass insertion-only spanner
// baseline (the model of [Bas08] and the Ω(nd) lower bound's setting):
// each arriving edge is kept iff the spanner built so far has no path
// of length ≤ 2k−1 between its endpoints. The result is a
// (2k−1)-spanner with girth > 2k, hence O(n^{1+1/k}) edges.
//
// It refuses deletion updates: that inability is precisely the gap the
// paper's linear sketches close, and the integration tests use it to
// document the contrast.
func StreamingGreedy(st stream.Stream, k int) (*graph.Graph, error) {
	if k < 1 {
		k = 1
	}
	t := 2*k - 1
	h := graph.New(st.N())
	err := st.Replay(func(u stream.Update) error {
		if u.Delta < 0 {
			return fmt.Errorf("baseline: StreamingGreedy is insertion-only; saw deletion of (%d,%d)", u.U, u.V)
		}
		if h.HasEdge(u.U, u.V) {
			return nil // multigraph duplicate
		}
		if !withinHops(h, u.U, u.V, t) {
			h.AddEdge(u.U, u.V, u.W)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}
