package baseline

import (
	"math"
	"testing"

	"dynstream/internal/graph"
)

func checkStretch(t *testing.T, g, h *graph.Graph, bound float64, sources int) {
	t.Helper()
	n := g.N()
	step := 1
	if sources > 0 && n > sources {
		step = n / sources
	}
	for src := 0; src < n; src += step {
		dg := g.BFS(src)
		dh := h.BFS(src)
		for v := 0; v < n; v++ {
			if dg[v] <= 0 {
				continue
			}
			if dh[v] == -1 || float64(dh[v]) > bound*float64(dg[v]) {
				t.Fatalf("stretch violated at (%d,%d): d_H=%d d_G=%d bound=%v",
					src, v, dh[v], dg[v], bound)
			}
		}
	}
}

func TestGreedySubgraphAndStretch(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.2, 1)
	for _, k := range []int{1, 2, 3} {
		h := Greedy(g, k)
		if !h.IsSubgraphOf(g) {
			t.Fatalf("k=%d: not a subgraph", k)
		}
		checkStretch(t, g, h, float64(2*k-1), 15)
	}
}

func TestGreedyK1IsWholeGraphOnTriangleFree(t *testing.T) {
	// With k=1 (stretch 1), every edge must be kept.
	g := graph.Grid(5, 5)
	h := Greedy(g, 1)
	if h.M() != g.M() {
		t.Errorf("1-spanner dropped edges: %d of %d", h.M(), g.M())
	}
}

func TestGreedySizeBound(t *testing.T) {
	// Greedy (2k-1)-spanner has girth > 2k, so size O(n^{1+1/k}).
	n := 80
	g := graph.GNP(n, 0.4, 2)
	h := Greedy(g, 2)
	bound := 3 * math.Pow(float64(n), 1.5)
	if float64(h.M()) > bound {
		t.Errorf("greedy size %d above bound %v", h.M(), bound)
	}
}

func TestGreedyCompressesComplete(t *testing.T) {
	g := graph.Complete(40)
	h := Greedy(g, 2)
	if h.M() >= g.M()/2 {
		t.Errorf("no compression: %d of %d", h.M(), g.M())
	}
}

func TestBaswanaSenSubgraphAndStretch(t *testing.T) {
	g := graph.ConnectedGNP(70, 0.15, 3)
	for _, k := range []int{2, 3} {
		worstViolations := 0
		for seed := uint64(0); seed < 5; seed++ {
			h := BaswanaSen(g, k, seed)
			if !h.IsSubgraphOf(g) {
				t.Fatalf("k=%d seed=%d: not a subgraph", k, seed)
			}
			bound := float64(2*k - 1)
			violated := false
			for src := 0; src < g.N(); src += 10 {
				dg := g.BFS(src)
				dh := h.BFS(src)
				for v := 0; v < g.N(); v++ {
					if dg[v] <= 0 {
						continue
					}
					if dh[v] == -1 || float64(dh[v]) > bound*float64(dg[v]) {
						violated = true
					}
				}
			}
			if violated {
				worstViolations++
			}
		}
		// Randomized construction: allow a rare stretch miss but not a
		// systematic one.
		if worstViolations > 1 {
			t.Errorf("k=%d: stretch bound violated on %d/5 seeds", k, worstViolations)
		}
	}
}

func TestBaswanaSenK1KeepsEverything(t *testing.T) {
	// k=1: no clustering phases; every vertex joins every adjacent
	// cluster (= neighbor), i.e. the whole graph survives.
	g := graph.ConnectedGNP(30, 0.2, 4)
	h := BaswanaSen(g, 1, 5)
	if h.M() != g.M() {
		t.Errorf("k=1 kept %d of %d edges", h.M(), g.M())
	}
}

func TestBaswanaSenCompresses(t *testing.T) {
	g := graph.Complete(60)
	h := BaswanaSen(g, 2, 6)
	if h.M() >= g.M()/2 {
		t.Errorf("no compression: %d of %d", h.M(), g.M())
	}
}

func TestBaswanaSenConnectivityPreserved(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.1, 7)
	h := BaswanaSen(g, 3, 8)
	_, cG := g.Components()
	_, cH := h.Components()
	if cG != cH {
		t.Errorf("components %d vs %d", cH, cG)
	}
}

func TestBaswanaSenDisconnected(t *testing.T) {
	g := graph.New(20)
	for i := 0; i < 9; i++ {
		g.AddUnitEdge(i, i+1)
		g.AddUnitEdge(10+i, 11+i)
	}
	h := BaswanaSen(g, 2, 9)
	if !h.IsSubgraphOf(g) {
		t.Fatal("not a subgraph")
	}
	_, c := h.Components()
	if c != 2 {
		t.Errorf("components = %d, want 2", c)
	}
}

func TestGreedyBeatsOrMatchesBaswanaSenSize(t *testing.T) {
	// Greedy is the quality ceiling: its spanner should not be larger
	// than Baswana-Sen's by more than a small factor (sanity of both).
	g := graph.GNP(60, 0.3, 10)
	greedy := Greedy(g, 2)
	bs := BaswanaSen(g, 2, 11)
	if greedy.M() > 2*bs.M()+20 {
		t.Errorf("greedy %d vs baswana-sen %d — greedy should be competitive",
			greedy.M(), bs.M())
	}
}
