package baseline

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func TestStreamingGreedyStretch(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.2, 1)
	st := stream.FromGraph(g, 2)
	h, err := StreamingGreedy(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsSubgraphOf(g) {
		t.Fatal("not a subgraph")
	}
	for src := 0; src < g.N(); src += 10 {
		dg := g.BFS(src)
		dh := h.BFS(src)
		for v := 0; v < g.N(); v++ {
			if dg[v] <= 0 {
				continue
			}
			if dh[v] == -1 || dh[v] > 3*dg[v] {
				t.Fatalf("stretch violated at (%d,%d): %d vs %d", src, v, dh[v], dg[v])
			}
		}
	}
}

func TestStreamingGreedyRejectsDeletions(t *testing.T) {
	st := stream.NewMemoryStream(4)
	_ = st.Append(stream.Update{U: 0, V: 1, Delta: 1})
	_ = st.Append(stream.Update{U: 0, V: 1, Delta: -1})
	if _, err := StreamingGreedy(st, 2); err == nil {
		t.Error("deletion accepted by insertion-only baseline")
	}
}

func TestStreamingGreedyOrderIndependentValidity(t *testing.T) {
	// Different stream orders give different spanners, but all valid.
	g := graph.Complete(24)
	sizes := map[int]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		st := stream.FromGraph(g, seed)
		h, err := StreamingGreedy(st, 2)
		if err != nil {
			t.Fatal(err)
		}
		sizes[h.M()] = true
		if !h.Connected() {
			t.Fatalf("seed %d: spanner disconnected", seed)
		}
		if h.M() >= g.M()/2 {
			t.Fatalf("seed %d: no compression (%d of %d)", seed, h.M(), g.M())
		}
	}
}

func TestStreamingGreedyMultigraphDuplicates(t *testing.T) {
	st := stream.NewMemoryStream(3)
	_ = st.Append(stream.Update{U: 0, V: 1, Delta: 1})
	_ = st.Append(stream.Update{U: 0, V: 1, Delta: 1}) // duplicate insert
	h, err := StreamingGreedy(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 1 {
		t.Errorf("M = %d, want 1", h.M())
	}
}
