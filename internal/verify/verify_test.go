package verify

import (
	"math"
	"testing"

	"dynstream/internal/graph"
)

func TestStretchIdentical(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 1)
	rep := Stretch(g, g, 0)
	if rep.MaxStretch != 1 || rep.Disconnected != 0 || rep.Shortcuts != 0 {
		t.Errorf("identical graphs: %+v", rep)
	}
	if rep.Pairs == 0 {
		t.Error("no pairs checked")
	}
}

func TestStretchDetectsDistortion(t *testing.T) {
	g := graph.Cycle(10)
	h := graph.Path(10) // cycle minus edge (0,9): stretch 9 for that pair
	rep := Stretch(g, h, 0)
	if rep.MaxStretch != 9 {
		t.Errorf("max stretch = %v, want 9", rep.MaxStretch)
	}
}

func TestStretchDetectsDisconnection(t *testing.T) {
	g := graph.Path(6)
	h := g.Clone()
	h.RemoveEdge(2, 3)
	rep := Stretch(g, h, 0)
	if rep.Disconnected == 0 {
		t.Error("disconnection not detected")
	}
}

func TestStretchDetectsShortcut(t *testing.T) {
	g := graph.Path(5)
	h := g.Clone()
	h.AddUnitEdge(0, 4) // not a subgraph: creates shortcut
	rep := Stretch(g, h, 0)
	if rep.Shortcuts == 0 {
		t.Error("shortcut not detected")
	}
}

func TestStretchWeighted(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1.5)
	h := g.Clone()
	h.RemoveEdge(0, 2) // d(0,2) goes 1.5 -> 2: stretch 4/3
	rep := StretchWeighted(g, h, 0)
	if math.Abs(rep.MaxStretch-4.0/3) > 1e-9 {
		t.Errorf("weighted max stretch = %v, want 4/3", rep.MaxStretch)
	}
}

func TestAdditiveIdentical(t *testing.T) {
	g := graph.Grid(5, 5)
	rep := Additive(g, g, 0)
	if rep.MaxError != 0 || rep.MeanError != 0 {
		t.Errorf("identical: %+v", rep)
	}
}

func TestAdditiveMeasuresError(t *testing.T) {
	g := graph.Cycle(12)
	h := graph.Path(12)
	rep := Additive(g, h, 0)
	// Pair (0,11): d_G=1, d_H=11 → error 10.
	if rep.MaxError != 10 {
		t.Errorf("max error = %d, want 10", rep.MaxError)
	}
	if rep.MeanError <= 0 {
		t.Error("mean error should be positive")
	}
}

func TestSpectralEpsilonDelegates(t *testing.T) {
	g := graph.Complete(6)
	eps, err := SpectralEpsilon(g, g)
	if err != nil || eps > 1e-9 {
		t.Errorf("eps=%v err=%v", eps, err)
	}
}

func TestCutEpsilonIdentical(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.3, 2)
	if eps := CutEpsilon(g, g, 50, 3); eps != 0 {
		t.Errorf("identical cut eps = %v", eps)
	}
}

func TestCutEpsilonScaled(t *testing.T) {
	g := graph.Complete(10)
	h := graph.New(10)
	for _, e := range g.Edges() {
		h.AddEdge(e.U, e.V, 2)
	}
	if eps := CutEpsilon(g, h, 50, 4); math.Abs(eps-1) > 1e-9 {
		t.Errorf("doubled-weight cut eps = %v, want 1", eps)
	}
}

func TestCutEpsilonEmptyGraphSafe(t *testing.T) {
	g := graph.New(5)
	if eps := CutEpsilon(g, g, 10, 5); eps != 0 {
		t.Errorf("empty cut eps = %v", eps)
	}
}

func TestStretchSampledSources(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.1, 6)
	full := Stretch(g, g, 0)
	sampled := Stretch(g, g, 10)
	if sampled.Pairs >= full.Pairs {
		t.Error("sampling did not reduce pairs checked")
	}
	if sampled.Pairs == 0 {
		t.Error("sampled zero pairs")
	}
}
