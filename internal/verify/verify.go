// Package verify provides the ground-truth checkers used by the
// experiment harness and examples: multiplicative stretch, additive
// distortion, spectral ε, and cut preservation. These are the
// quantities the paper's theorems bound; the benchmark tables report
// the measured values next to the theoretical guarantees.
package verify

import (
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/linalg"
)

// StretchReport summarizes a multiplicative-spanner verification.
type StretchReport struct {
	// MaxStretch is max over checked pairs of d_H / d_G.
	MaxStretch float64
	// MeanStretch is the average over checked pairs.
	MeanStretch float64
	// Pairs is the number of (connected) pairs checked.
	Pairs int
	// Disconnected counts pairs connected in G but not in H — any
	// nonzero value means the spanner is invalid.
	Disconnected int
	// Shortcuts counts pairs with d_H < d_G — nonzero means H is not a
	// subgraph metric (invalid).
	Shortcuts int
}

// Stretch verifies H against G over BFS trees from up to `sources`
// evenly spaced source vertices (all sources if sources <= 0). For
// weighted graphs use StretchWeighted.
func Stretch(g, h *graph.Graph, sources int) StretchReport {
	var rep StretchReport
	n := g.N()
	step := 1
	if sources > 0 && n > sources {
		step = n / sources
	}
	sum := 0.0
	for src := 0; src < n; src += step {
		dg := g.BFS(src)
		dh := h.BFS(src)
		for v := 0; v < n; v++ {
			if dg[v] <= 0 {
				continue
			}
			if dh[v] == -1 {
				rep.Disconnected++
				continue
			}
			if dh[v] < dg[v] {
				rep.Shortcuts++
			}
			s := float64(dh[v]) / float64(dg[v])
			sum += s
			rep.Pairs++
			if s > rep.MaxStretch {
				rep.MaxStretch = s
			}
		}
	}
	if rep.Pairs > 0 {
		rep.MeanStretch = sum / float64(rep.Pairs)
	}
	return rep
}

// StretchWeighted verifies weighted distances (Dijkstra) with the same
// semantics as Stretch.
func StretchWeighted(g, h *graph.Graph, sources int) StretchReport {
	var rep StretchReport
	n := g.N()
	step := 1
	if sources > 0 && n > sources {
		step = n / sources
	}
	sum := 0.0
	for src := 0; src < n; src += step {
		dg := g.Dijkstra(src)
		dh := h.Dijkstra(src)
		for v := 0; v < n; v++ {
			if v == src || dg[v] >= 1e307 {
				continue
			}
			if dh[v] >= 1e307 {
				rep.Disconnected++
				continue
			}
			if dh[v] < dg[v]-1e-9 {
				rep.Shortcuts++
			}
			s := dh[v] / dg[v]
			sum += s
			rep.Pairs++
			if s > rep.MaxStretch {
				rep.MaxStretch = s
			}
		}
	}
	if rep.Pairs > 0 {
		rep.MeanStretch = sum / float64(rep.Pairs)
	}
	return rep
}

// AdditiveReport summarizes an additive-spanner verification.
type AdditiveReport struct {
	// MaxError is max over checked pairs of d_H − d_G.
	MaxError int
	// MeanError is the average over checked pairs.
	MeanError float64
	// Pairs, Disconnected, Shortcuts as in StretchReport.
	Pairs        int
	Disconnected int
	Shortcuts    int
}

// Additive verifies the additive distortion of H against G.
func Additive(g, h *graph.Graph, sources int) AdditiveReport {
	var rep AdditiveReport
	n := g.N()
	step := 1
	if sources > 0 && n > sources {
		step = n / sources
	}
	sum := 0
	for src := 0; src < n; src += step {
		dg := g.BFS(src)
		dh := h.BFS(src)
		for v := 0; v < n; v++ {
			if dg[v] < 0 || v == src {
				continue
			}
			if dh[v] == -1 {
				rep.Disconnected++
				continue
			}
			if dh[v] < dg[v] {
				rep.Shortcuts++
			}
			e := dh[v] - dg[v]
			sum += e
			rep.Pairs++
			if e > rep.MaxError {
				rep.MaxError = e
			}
		}
	}
	if rep.Pairs > 0 {
		rep.MeanError = float64(sum) / float64(rep.Pairs)
	}
	return rep
}

// SpectralEpsilon is the exact spectral-approximation measure, see
// linalg.SpectralEpsilon. Exposed here so harness code imports one
// verification package.
func SpectralEpsilon(g, h *graph.Graph) (float64, error) {
	return linalg.SpectralEpsilon(g, h)
}

// CutEpsilon measures max over `cuts` random cuts of
// |w_H(cut)/w_G(cut) − 1| — the combinatorial shadow of spectral
// approximation (restrict x to binary vectors). Cuts with zero G-weight
// are skipped.
func CutEpsilon(g, h *graph.Graph, cuts int, seed uint64) float64 {
	rng := hashing.NewSplitMix64(seed)
	n := g.N()
	worst := 0.0
	for c := 0; c < cuts; c++ {
		side := make([]bool, n)
		for v := range side {
			side[v] = rng.Next()&1 == 1
		}
		wg := g.CutWeight(side)
		if wg == 0 {
			continue
		}
		wh := h.CutWeight(side)
		if d := math.Abs(wh/wg - 1); d > worst {
			worst = d
		}
	}
	return worst
}
