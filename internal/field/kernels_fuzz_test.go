package field

import (
	"encoding/binary"
	"testing"
)

// Differential fuzzers: arbitrary byte strings become field-element
// vectors (of arbitrary length, including empty and odd tails) and are
// pushed through the batch kernels and the scalar operations side by
// side. Any divergence — on either build tag — is a kernel bug. The
// CI fuzz-smoke job replays the seed corpus on every push.

// fuzzVecs decodes data into two equal-length element vectors, mapping
// the raw words into [0, P) and steering some values onto the P
// boundary so the carry/select paths are exercised.
func fuzzVecs(data []byte) (a, b []uint64) {
	n := len(data) / 16
	a = make([]uint64, n)
	b = make([]uint64, n)
	for i := 0; i < n; i++ {
		x := binary.LittleEndian.Uint64(data[16*i:])
		y := binary.LittleEndian.Uint64(data[16*i+8:])
		// Low byte 0xff pins the value near the modulus boundary.
		if x&0xff == 0xff {
			x = P - (x>>8)%3
		}
		if y&0xff == 0xff {
			y = P - (y>>8)%3
		}
		a[i] = Reduce(x)
		b[i] = Reduce(y)
	}
	return a, b
}

func fuzzSeed(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Add(make([]byte, 161)) // odd tail
	boundary := make([]byte, 64)
	for i := range boundary {
		boundary[i] = 0xff
	}
	f.Add(boundary)
	mixed := make([]byte, 160)
	for i := range mixed {
		mixed[i] = byte(i*37 + 11)
	}
	f.Add(mixed)
}

func FuzzMulVec(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := fuzzVecs(data)
		n := len(a)
		dst := make([]uint64, n)
		MulVec(dst, a, b)
		for i := 0; i < n; i++ {
			if want := Mul(a[i], b[i]); dst[i] != want {
				t.Fatalf("MulVec[%d](%d,%d) = %d, scalar %d", i, a[i], b[i], dst[i], want)
			}
		}
		if n == 0 {
			return
		}
		c := a[0]
		axpy := append([]uint64(nil), b...)
		AxpyVec(axpy, c, a)
		horner := append([]uint64(nil), b...)
		HornerStepVec(horner, c, a)
		for i := 0; i < n; i++ {
			if want := Add(b[i], Mul(c, a[i])); axpy[i] != want {
				t.Fatalf("AxpyVec[%d] = %d, scalar %d", i, axpy[i], want)
			}
			if want := Add(Mul(b[i], c), a[i]); horner[i] != want {
				t.Fatalf("HornerStepVec[%d] = %d, scalar %d", i, horner[i], want)
			}
		}
	})
}

func FuzzAddSubVec(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := fuzzVecs(data)
		n := len(a)
		add := make([]uint64, n)
		sub := make([]uint64, n)
		neg := make([]uint64, n)
		AddVec(add, a, b)
		SubVec(sub, a, b)
		NegVec(neg, a)
		for i := 0; i < n; i++ {
			if add[i] != Add(a[i], b[i]) || sub[i] != Sub(a[i], b[i]) || neg[i] != Neg(a[i]) {
				t.Fatalf("add/sub/neg kernel diverges at %d (a=%d b=%d)", i, a[i], b[i])
			}
		}
		// Cell-block forms over the same lanes, with a derived count lane.
		dc := make([]int64, n)
		sc := make([]int64, n)
		for i := 0; i < n; i++ {
			dc[i] = int64(a[i] % 1024)
			sc[i] = -int64(b[i] % 1024)
		}
		dk := append([]uint64(nil), a...)
		df := append([]uint64(nil), b...)
		wc := append([]int64(nil), dc...)
		MergeCells(dc, dk, df, sc, a, b)
		for i := 0; i < n; i++ {
			if dc[i] != wc[i]+sc[i] || dk[i] != Add(a[i], a[i]) || df[i] != Add(b[i], b[i]) {
				t.Fatalf("MergeCells diverges at %d", i)
			}
		}
		SubCells(dc, dk, df, sc, a, b)
		for i := 0; i < n; i++ {
			if dc[i] != wc[i] || dk[i] != a[i] || df[i] != b[i] {
				t.Fatalf("SubCells does not invert MergeCells at %d", i)
			}
		}
		if AllZero(a) != func() bool {
			for _, v := range a {
				if v != 0 {
					return false
				}
			}
			return true
		}() {
			t.Fatal("AllZero diverges from scalar scan")
		}
	})
}

func FuzzFingerprintVec(f *testing.F) {
	fuzzSeed(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		base := binary.LittleEndian.Uint64(data[:8])
		exps, alt := fuzzVecs(data[8:])
		tab := NewPowTable(base)
		dst := make([]uint64, len(exps))
		tab.FingerprintVec(dst, exps)
		for i, e := range exps {
			if want := tab.Pow(e); dst[i] != want {
				t.Fatalf("FingerprintVec[%d] = %d, Pow(%d) = %d", i, dst[i], e, want)
			}
		}
		if len(exps) > 0 {
			tb := NewPowTable(base ^ 0x5555555555555555)
			ga, gb := PowPair(tab, tb, exps[0], alt[0])
			if ga != tab.Pow(exps[0]) || gb != tb.Pow(alt[0]) {
				t.Fatalf("PowPair diverges from Pow")
			}
		}
	})
}
