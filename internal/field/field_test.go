package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceRange(t *testing.T) {
	cases := []uint64{0, 1, P - 1, P, P + 1, 1 << 62, ^uint64(0)}
	for _, c := range cases {
		if got := Reduce(c); got >= P {
			t.Errorf("Reduce(%d) = %d, want < P", c, got)
		}
	}
}

func TestReduceIdentityOnSmall(t *testing.T) {
	for _, c := range []uint64{0, 1, 2, 12345, P - 1} {
		if got := Reduce(c); got != c {
			t.Errorf("Reduce(%d) = %d, want %d", c, got, c)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		if got := Sub(Add(a, b), b); got != a {
			t.Fatalf("Sub(Add(%d,%d),%d) = %d, want %d", a, b, b, got, a)
		}
	}
}

func TestNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := Reduce(rng.Uint64())
		if got := Add(a, Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d, want 0 (a=%d)", got, a)
		}
	}
	if Neg(0) != 0 {
		t.Errorf("Neg(0) = %d, want 0", Neg(0))
	}
}

func TestMulAgainstBigIntStyle(t *testing.T) {
	// Verify Mul against the naive schoolbook computation on 32-bit
	// halves, which cannot overflow.
	mulNaive := func(a, b uint64) uint64 {
		// Decompose a = a1*2^32 + a0.
		a1, a0 := a>>32, a&0xffffffff
		// a*b mod P = (a1*2^32 mod P)*b + a0*b, each term reduced.
		t1 := Reduce(a1)
		for i := 0; i < 32; i++ {
			t1 = Add(t1, t1)
		}
		// t1 = a1*2^32 mod P; now multiply by b via doubling over bits of b.
		res := uint64(0)
		base := Add(t1, Reduce(a0))
		for i := 63; i >= 0; i-- {
			res = Add(res, res)
			if b&(1<<uint(i)) != 0 {
				res = Add(res, base)
			}
		}
		return res
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		if got, want := Mul(a, b), mulNaive(a, b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a := Reduce(rng.Uint64())
		if Mul(a, 1) != a {
			t.Fatalf("Mul(%d, 1) != %d", a, a)
		}
		if Mul(a, 0) != 0 {
			t.Fatalf("Mul(%d, 0) != 0", a)
		}
	}
}

func TestPow(t *testing.T) {
	if got := Pow(2, 61); got != 1 {
		// 2^61 = P + 1 ≡ 1.
		t.Errorf("Pow(2, 61) = %d, want 1", got)
	}
	if got := Pow(3, 0); got != 1 {
		t.Errorf("Pow(3, 0) = %d, want 1", got)
	}
	// Fermat's little theorem: a^(P-1) = 1 for a != 0.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if got := Pow(a, P-1); got != 1 {
			t.Fatalf("Pow(%d, P-1) = %d, want 1", a, got)
		}
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("a * a^-1 = %d, want 1 (a=%d)", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestFromInt64(t *testing.T) {
	cases := []struct {
		in   int64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{-1, P - 1},
		{42, 42},
		{-42, P - 42},
	}
	for _, c := range cases {
		if got := FromInt64(c.in); got != c.want {
			t.Errorf("FromInt64(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFromInt64RoundTripAddition(t *testing.T) {
	// Property: FromInt64(a) + FromInt64(b) == FromInt64(a+b) for small
	// values where a+b does not overflow.
	f := func(a, b int32) bool {
		lhs := Add(FromInt64(int64(a)), FromInt64(int64(b)))
		rhs := FromInt64(int64(a) + int64(b))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(102))}); err != nil {
		t.Error(err)
	}
}

func TestMulDistributes(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a, b, c = Reduce(a), Reduce(b), Reduce(c)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Error(err)
	}
}
