//go:build !purego

package field

import "math/bits"

// Fast kernel implementations: 4-lane-unrolled loops over reduced
// operands, with bounds checks eliminated by reslicing every operand to
// the destination length up front. The per-lane primitives below are
// branch-free — modular carries are folded in with sign-mask selects
// instead of compares — because the carry branch in the scalar
// field.Add/Sub is taken with probability ~1/2 on random sketch state,
// which is the worst case for a branch predictor inside an unrolled
// loop. They return the same canonical representatives as the scalar
// functions for all inputs in [0, P); kernels_test.go proves the
// equivalence exhaustively at the boundaries and by fuzzing.

// addP returns Add(a, b) branch-free: compute a+b-P, then add P back
// iff the subtraction underflowed (sign mask of the wrapped result;
// a+b < 2^62 keeps the wrapped value's top bit unambiguous).
func addP(a, b uint64) uint64 {
	t := a + b - P
	t += P & uint64(int64(t)>>63)
	return t
}

// subP returns Sub(a, b) branch-free.
func subP(a, b uint64) uint64 {
	t := a - b
	t += P & uint64(int64(t)>>63)
	return t
}

// negP returns Neg(a) branch-free: P-a masked to zero when a == 0.
func negP(a uint64) uint64 {
	return (P - a) & uint64(int64(-int64(a))>>63)
}

// mulP returns Mul(a, b) with the final Mersenne reduction branch-free.
func mulP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	r := (hi<<3 | lo>>61) + (lo & P)
	r = (r >> 61) + (r & P)
	r -= P
	r += P & uint64(int64(r)>>63)
	return r
}

func addVec(dst, a, b []uint64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := addP(a[i], b[i])
		v1 := addP(a[i+1], b[i+1])
		v2 := addP(a[i+2], b[i+2])
		v3 := addP(a[i+3], b[i+3])
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = addP(a[i], b[i])
	}
}

func subVec(dst, a, b []uint64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := subP(a[i], b[i])
		v1 := subP(a[i+1], b[i+1])
		v2 := subP(a[i+2], b[i+2])
		v3 := subP(a[i+3], b[i+3])
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = subP(a[i], b[i])
	}
}

func negVec(dst, a []uint64) {
	n := len(dst)
	a = a[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := negP(a[i])
		v1 := negP(a[i+1])
		v2 := negP(a[i+2])
		v3 := negP(a[i+3])
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = negP(a[i])
	}
}

func mulVec(dst, a, b []uint64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := mulP(a[i], b[i])
		v1 := mulP(a[i+1], b[i+1])
		v2 := mulP(a[i+2], b[i+2])
		v3 := mulP(a[i+3], b[i+3])
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = mulP(a[i], b[i])
	}
}

func axpyVec(dst []uint64, c uint64, a []uint64) {
	n := len(dst)
	a = a[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := addP(dst[i], mulP(c, a[i]))
		v1 := addP(dst[i+1], mulP(c, a[i+1]))
		v2 := addP(dst[i+2], mulP(c, a[i+2]))
		v3 := addP(dst[i+3], mulP(c, a[i+3]))
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = addP(dst[i], mulP(c, a[i]))
	}
}

func hornerStepVec(acc []uint64, x uint64, c []uint64) {
	n := len(acc)
	c = c[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := addP(mulP(acc[i], x), c[i])
		v1 := addP(mulP(acc[i+1], x), c[i+1])
		v2 := addP(mulP(acc[i+2], x), c[i+2])
		v3 := addP(mulP(acc[i+3], x), c[i+3])
		acc[i], acc[i+1], acc[i+2], acc[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		acc[i] = addP(mulP(acc[i], x), c[i])
	}
}

func mergeCells(dc []int64, dk, df []uint64, sc []int64, sk, sf []uint64) {
	n := len(dc)
	dk = dk[:n]
	df = df[:n]
	sc = sc[:n]
	sk = sk[:n]
	sf = sf[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dc[i] += sc[i]
		dc[i+1] += sc[i+1]
		dc[i+2] += sc[i+2]
		dc[i+3] += sc[i+3]
		k0 := addP(dk[i], sk[i])
		k1 := addP(dk[i+1], sk[i+1])
		k2 := addP(dk[i+2], sk[i+2])
		k3 := addP(dk[i+3], sk[i+3])
		dk[i], dk[i+1], dk[i+2], dk[i+3] = k0, k1, k2, k3
		f0 := addP(df[i], sf[i])
		f1 := addP(df[i+1], sf[i+1])
		f2 := addP(df[i+2], sf[i+2])
		f3 := addP(df[i+3], sf[i+3])
		df[i], df[i+1], df[i+2], df[i+3] = f0, f1, f2, f3
	}
	for ; i < n; i++ {
		dc[i] += sc[i]
		dk[i] = addP(dk[i], sk[i])
		df[i] = addP(df[i], sf[i])
	}
}

func subCells(dc []int64, dk, df []uint64, sc []int64, sk, sf []uint64) {
	n := len(dc)
	dk = dk[:n]
	df = df[:n]
	sc = sc[:n]
	sk = sk[:n]
	sf = sf[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dc[i] -= sc[i]
		dc[i+1] -= sc[i+1]
		dc[i+2] -= sc[i+2]
		dc[i+3] -= sc[i+3]
		k0 := subP(dk[i], sk[i])
		k1 := subP(dk[i+1], sk[i+1])
		k2 := subP(dk[i+2], sk[i+2])
		k3 := subP(dk[i+3], sk[i+3])
		dk[i], dk[i+1], dk[i+2], dk[i+3] = k0, k1, k2, k3
		f0 := subP(df[i], sf[i])
		f1 := subP(df[i+1], sf[i+1])
		f2 := subP(df[i+2], sf[i+2])
		f3 := subP(df[i+3], sf[i+3])
		df[i], df[i+1], df[i+2], df[i+3] = f0, f1, f2, f3
	}
	for ; i < n; i++ {
		dc[i] -= sc[i]
		dk[i] = subP(dk[i], sk[i])
		df[i] = subP(df[i], sf[i])
	}
}

func scatterAdd3(counts []int64, keys, fings []uint64, delta int64, ks, fg uint64, idx []int32) {
	for _, i := range idx {
		counts[i] += delta
		keys[i] = addP(keys[i], ks)
		fings[i] = addP(fings[i], fg)
	}
}

func addI64Vec(dst, a []int64) {
	n := len(dst)
	a = a[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a[i]
		dst[i+1] += a[i+1]
		dst[i+2] += a[i+2]
		dst[i+3] += a[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a[i]
	}
}

func subI64Vec(dst, a []int64) {
	n := len(dst)
	a = a[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] -= a[i]
		dst[i+1] -= a[i+1]
		dst[i+2] -= a[i+2]
		dst[i+3] -= a[i+3]
	}
	for ; i < n; i++ {
		dst[i] -= a[i]
	}
}

func allZero(a []uint64) bool {
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		if a[i]|a[i+1]|a[i+2]|a[i+3] != 0 {
			return false
		}
	}
	for ; i < n; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

func allZeroI64(a []int64) bool {
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		if a[i]|a[i+1]|a[i+2]|a[i+3] != 0 {
			return false
		}
	}
	for ; i < n; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// fingerprintVec walks the window table once, outermost, applying each
// window's digit to every exponent before advancing — the hoisted form
// of the per-call window loop in PowTable.Pow. The `any` accumulator
// (OR of all remaining exponent suffixes) terminates the walk exactly
// when every per-element Pow would have terminated, and zero digits
// multiply by nothing, so each dst[i] sees precisely the Mul sequence
// of t.Pow(exps[i]).
func fingerprintVec(t *PowTable, dst, exps []uint64) {
	n := len(exps)
	dst = dst[:n]
	var any uint64
	for i := range dst {
		dst[i] = 1
		any |= exps[i]
	}
	for w := 0; any != 0; w++ {
		row := &t.tab[w]
		sh := uint(w) * powWindowBits
		for i, e := range exps {
			if d := (e >> sh) & powWindowMask; d != 0 {
				dst[i] = Mul(dst[i], row[d])
			}
		}
		any >>= powWindowBits
	}
}

func powPair(ta, tb *PowTable, ea, eb uint64) (uint64, uint64) {
	ra, rb := uint64(1), uint64(1)
	for w := 0; ea|eb != 0; w++ {
		if d := ea & powWindowMask; d != 0 {
			ra = Mul(ra, ta.tab[w][d])
		}
		if d := eb & powWindowMask; d != 0 {
			rb = Mul(rb, tb.tab[w][d])
		}
		ea >>= powWindowBits
		eb >>= powWindowBits
	}
	return ra, rb
}
