// Package field implements arithmetic over the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime). All sketch fingerprints in this
// repository are computed over this field: it is large enough that the
// polynomial-identity fingerprint tests used by the sparse-recovery
// sketches fail with probability at most poly(n)/p, and Mersenne
// reduction keeps multiplication branch-free and fast.
//
// Alongside the scalar operations, kernels.go provides batch kernels
// (AddVec, MulVec, MergeCells, FingerprintVec, ...) that apply one
// field operation across whole structure-of-arrays cell slices. The
// kernels are the hot loops of every sketch; their contract — exact
// canonical representatives, aliasing rules, tail handling — is
// documented in kernels.go, and the `purego` build tag swaps in plain
// scalar reference loops.
package field

import "math/bits"

// P is the field modulus 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) uint64 {
	// x = hi*2^61 + lo with 2^61 ≡ 1 (mod P).
	x = (x >> 61) + (x & P)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns (a + b) mod P. Inputs must already be in [0, P).
func Add(a, b uint64) uint64 {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns (a - b) mod P. Inputs must already be in [0, P).
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns (-a) mod P. Input must be in [0, P).
func Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns (a * b) mod P using a 128-bit product followed by
// Mersenne reduction. Inputs must be in [0, P).
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod P),
	// split lo into its top 3 bits and low 61 bits.
	r := (hi << 3) | (lo >> 61)
	return Reduce(r + (lo & P))
}

// Pow returns a^e mod P by binary exponentiation.
func Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := Reduce(a)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Fixed-base windowed exponentiation. Every sketch fingerprint in this
// repository is a power of a per-sketch random base r, evaluated once
// per stream update — the single hottest field operation in ingest. A
// PowTable precomputes r^(d·16^w) for every 4-bit window value d and
// window position w, so r^e costs at most one multiplication per
// nonzero window (≤ 15 Muls for a 61-bit exponent) instead of the ~120
// Muls of square-and-multiply.
const (
	powWindowBits = 4
	powWindowSize = 1 << powWindowBits        // 16 digit values per window
	powWindows    = 64 / powWindowBits        // 16 windows cover any uint64
	powWindowMask = uint64(powWindowSize - 1) // low-window digit mask
)

// PowTable holds the precomputed window powers of a fixed base.
// Construction costs ~256 multiplications; afterwards Pow is ~8× faster
// than the generic square-and-multiply and returns bit-identical
// values (both compute the canonical representative of base^e mod P).
type PowTable struct {
	base uint64
	tab  [powWindows][powWindowSize]uint64
}

// NewPowTable precomputes the window powers of base (reduced mod P).
func NewPowTable(base uint64) *PowTable {
	t := &PowTable{base: Reduce(base)}
	step := t.base // base^(16^w), advanced per window
	for w := 0; w < powWindows; w++ {
		t.tab[w][0] = 1
		for d := 1; d < powWindowSize; d++ {
			t.tab[w][d] = Mul(t.tab[w][d-1], step)
		}
		step = Mul(t.tab[w][powWindowSize-1], step)
	}
	return t
}

// Base returns the (reduced) base the table was built for.
func (t *PowTable) Base() uint64 { return t.base }

// Pow returns base^e mod P, identical to Pow(base, e).
func (t *PowTable) Pow(e uint64) uint64 {
	result := uint64(1)
	for w := 0; e != 0; w++ {
		if d := e & powWindowMask; d != 0 {
			result = Mul(result, t.tab[w][d])
		}
		e >>= powWindowBits
	}
	return result
}

// Inv returns the multiplicative inverse of a mod P. It panics on a == 0
// after reduction, which indicates a programming error in the caller:
// inverses are only requested for provably nonzero counts.
func Inv(a uint64) uint64 {
	a = Reduce(a)
	switch a {
	case 0:
		panic("field: inverse of zero")
	case 1:
		// Fast paths for the self-inverse elements ±1, which dominate
		// decode: a pure sketch cell of a ±1-count item inverts its
		// count on every peel test, and Fermat below costs ~120 Muls.
		// Bit-identical: Pow(1, P-2) = 1 and, P-2 being odd,
		// Pow(P-1, P-2) = P-1.
		return 1
	case P - 1:
		return P - 1
	}
	// Fermat: a^(P-2) = a^{-1}.
	return Pow(a, P-2)
}

// FromInt64 maps a signed integer into the field.
func FromInt64(v int64) uint64 {
	if v >= 0 {
		return Reduce(uint64(v))
	}
	return Neg(Reduce(uint64(-v)))
}
