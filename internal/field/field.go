// Package field implements arithmetic over the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime). All sketch fingerprints in this
// repository are computed over this field: it is large enough that the
// polynomial-identity fingerprint tests used by the sparse-recovery
// sketches fail with probability at most poly(n)/p, and Mersenne
// reduction keeps multiplication branch-free and fast.
package field

import "math/bits"

// P is the field modulus 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) uint64 {
	// x = hi*2^61 + lo with 2^61 ≡ 1 (mod P).
	x = (x >> 61) + (x & P)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns (a + b) mod P. Inputs must already be in [0, P).
func Add(a, b uint64) uint64 {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns (a - b) mod P. Inputs must already be in [0, P).
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns (-a) mod P. Input must be in [0, P).
func Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns (a * b) mod P using a 128-bit product followed by
// Mersenne reduction. Inputs must be in [0, P).
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod P),
	// split lo into its top 3 bits and low 61 bits.
	r := (hi << 3) | (lo >> 61)
	return Reduce(r + (lo & P))
}

// Pow returns a^e mod P by binary exponentiation.
func Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := Reduce(a)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod P. It panics on a == 0
// after reduction, which indicates a programming error in the caller:
// inverses are only requested for provably nonzero counts.
func Inv(a uint64) uint64 {
	a = Reduce(a)
	if a == 0 {
		panic("field: inverse of zero")
	}
	// Fermat: a^(P-2) = a^{-1}.
	return Pow(a, P-2)
}

// FromInt64 maps a signed integer into the field.
func FromInt64(v int64) uint64 {
	if v >= 0 {
		return Reduce(uint64(v))
	}
	return Neg(Reduce(uint64(-v)))
}
