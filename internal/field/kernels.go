package field

// Batch kernels. Every sketch in this repository stores its cell state
// in flat structure-of-arrays slices, and every hot loop — ingest,
// merge, subtract, zero-scan, peeling — is an elementwise field
// operation over those slices. The kernels below are the single place
// those loops live: bounds-check-eliminated, 4-lane-unrolled pure Go
// under the default build, with a `purego` build tag selecting the
// plain scalar reference loops (and reserving the seam for GOARCH-gated
// assembly where it later pays).
//
// Kernel contract, which both implementations satisfy and the
// differential tests in kernels_test.go enforce:
//
//   - Canonical representatives. Field-element inputs must be in
//     [0, P); outputs are the exact canonical representatives the
//     scalar field.Add/Sub/Neg/Mul functions return — bit-identical,
//     not merely congruent. The branch-free reductions used by the
//     fast path are an implementation detail that never leaks.
//   - Lengths. dst fixes the element count n; every other slice
//     operand must have length at least n (extra tail elements are
//     ignored). Kernels with no dst use the first operand's length.
//   - Aliasing. dst may be exactly one of the source slices (same base
//     pointer, as in the in-place dst = dst op src forms every caller
//     uses). Partially overlapping slices are undefined.
//   - Tails. n is arbitrary; lengths 0 and 1 and odd tails are handled
//     by a scalar remainder loop after the unrolled body.
//
// The kernels are deliberately allocation-free and never retain their
// arguments.

// AddVec sets dst[i] = Add(a[i], b[i]) for i in [0, len(dst)).
func AddVec(dst, a, b []uint64) { addVec(dst, a, b) }

// SubVec sets dst[i] = Sub(a[i], b[i]) for i in [0, len(dst)).
func SubVec(dst, a, b []uint64) { subVec(dst, a, b) }

// NegVec sets dst[i] = Neg(a[i]) for i in [0, len(dst)).
func NegVec(dst, a []uint64) { negVec(dst, a) }

// MulVec sets dst[i] = Mul(a[i], b[i]) for i in [0, len(dst)).
func MulVec(dst, a, b []uint64) { mulVec(dst, a, b) }

// AxpyVec sets dst[i] = Add(dst[i], Mul(c, a[i])) for i in
// [0, len(dst)) — the field form of dst += c·a.
func AxpyVec(dst []uint64, c uint64, a []uint64) { axpyVec(dst, c, a) }

// HornerStepVec advances a bank of interleaved Horner evaluations one
// coefficient: acc[i] = Add(Mul(acc[i], x), c[i]) for i in
// [0, len(acc)). hashing.PolyBank uses it to evaluate many same-degree
// polynomial hashes of one key in a single sweep.
func HornerStepVec(acc []uint64, x uint64, c []uint64) { hornerStepVec(acc, x, c) }

// MergeCells folds one SoA cell block into another in a single pass:
// dcounts[i] += scounts[i] (plain integer counts), dkeys[i] =
// Add(dkeys[i], skeys[i]), dfings[i] = Add(dfings[i], sfings[i]).
// dcounts fixes the cell count.
func MergeCells(dcounts []int64, dkeys, dfings []uint64, scounts []int64, skeys, sfings []uint64) {
	mergeCells(dcounts, dkeys, dfings, scounts, skeys, sfings)
}

// SubCells subtracts one SoA cell block from another in a single pass:
// dcounts[i] -= scounts[i], dkeys[i] = Sub(dkeys[i], skeys[i]),
// dfings[i] = Sub(dfings[i], sfings[i]). dcounts fixes the cell count.
func SubCells(dcounts []int64, dkeys, dfings []uint64, scounts []int64, skeys, sfings []uint64) {
	subCells(dcounts, dkeys, dfings, scounts, skeys, sfings)
}

// ScatterAdd3 applies one routed update to a set of SoA cells: for
// every cell index i in idx, counts[i] += delta, keys[i] =
// Add(keys[i], ks), fings[i] = Add(fings[i], fg). This is the
// ingest-side scatter of SketchB.addRouted — the single hottest loop
// of stream ingest — where the ~50% taken carry branch of the scalar
// Add is the dominant mispredict source. Indices must be in bounds for
// all three lanes.
func ScatterAdd3(counts []int64, keys, fings []uint64, delta int64, ks, fg uint64, idx []int32) {
	scatterAdd3(counts, keys, fings, delta, ks, fg, idx)
}

// AddI64Vec sets dst[i] += a[i] for i in [0, len(dst)) — the plain
// integer count lane (CountSketch counters, cell counts).
func AddI64Vec(dst, a []int64) { addI64Vec(dst, a) }

// SubI64Vec sets dst[i] -= a[i] for i in [0, len(dst)).
func SubI64Vec(dst, a []int64) { subI64Vec(dst, a) }

// AllZero reports whether every element of a is zero, scanning with an
// early-exit word loop (4-way OR per step).
func AllZero(a []uint64) bool { return allZero(a) }

// AllZeroI64 reports whether every element of a is zero.
func AllZeroI64(a []int64) bool { return allZeroI64(a) }

// FingerprintVec evaluates dst[i] = base^exps[i] for every exponent in
// one traversal of the table's 4-bit windows, hoisting the per-call
// window loop of Pow out across the whole slice: windows are walked
// once, outermost, and every exponent consumes its digit for that
// window before the walk advances. The per-element multiplication
// sequence — and therefore the result — is bit-identical to calling
// t.Pow(exps[i]) per element. dst must not alias exps.
func (t *PowTable) FingerprintVec(dst, exps []uint64) { fingerprintVec(t, dst, exps) }

// PowPair evaluates ta.Pow(ea) and tb.Pow(eb) in one shared window
// traversal — the two-endpoint form of FingerprintVec used when one
// stream update lands in two same-family sketches (the AGM edge
// update's (u,v) endpoints, the spanner's directed key pair). Results
// are bit-identical to the two separate Pow calls. ta and tb may be
// the same table.
func PowPair(ta, tb *PowTable, ea, eb uint64) (uint64, uint64) {
	return powPair(ta, tb, ea, eb)
}
