package field

import "testing"

func BenchmarkMul(b *testing.B) {
	x, y := uint64(0x123456789abcdef), uint64(0xfedcba987654321)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mul(x, sink^y)
	}
	_ = sink
}

func BenchmarkPow(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Pow(31337, uint64(i)&0xfffff)
	}
	_ = sink
}

func BenchmarkPowTable(b *testing.B) {
	tab := NewPowTable(31337)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = tab.Pow(uint64(i) & 0xfffff)
	}
	_ = sink
}

func BenchmarkPowTableWide(b *testing.B) {
	// Full 61-bit exponents: the worst case (all 16 windows populated).
	tab := NewPowTable(31337)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = tab.Pow(P - 2 - uint64(i))
	}
	_ = sink
}

func BenchmarkNewPowTable(b *testing.B) {
	var sink *PowTable
	for i := 0; i < b.N; i++ {
		sink = NewPowTable(uint64(i) + 2)
	}
	_ = sink
}

func BenchmarkInv(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Inv(uint64(i) + 1)
	}
	_ = sink
}
