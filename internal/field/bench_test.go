package field

import "testing"

func BenchmarkMul(b *testing.B) {
	x, y := uint64(0x123456789abcdef), uint64(0xfedcba987654321)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mul(x, sink^y)
	}
	_ = sink
}

func BenchmarkPow(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Pow(31337, uint64(i)&0xfffff)
	}
	_ = sink
}

func BenchmarkInv(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Inv(uint64(i) + 1)
	}
	_ = sink
}
