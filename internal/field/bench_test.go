package field

import "testing"

func BenchmarkMul(b *testing.B) {
	x, y := uint64(0x123456789abcdef), uint64(0xfedcba987654321)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mul(x, sink^y)
	}
	_ = sink
}

func BenchmarkPow(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Pow(31337, uint64(i)&0xfffff)
	}
	_ = sink
}

func BenchmarkPowTable(b *testing.B) {
	tab := NewPowTable(31337)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = tab.Pow(uint64(i) & 0xfffff)
	}
	_ = sink
}

func BenchmarkPowTableWide(b *testing.B) {
	// Full 61-bit exponents: the worst case (all 16 windows populated).
	tab := NewPowTable(31337)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = tab.Pow(P - 2 - uint64(i))
	}
	_ = sink
}

func BenchmarkNewPowTable(b *testing.B) {
	var sink *PowTable
	for i := 0; i < b.N; i++ {
		sink = NewPowTable(uint64(i) + 2)
	}
	_ = sink
}

func BenchmarkInv(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Inv(uint64(i) + 1)
	}
	_ = sink
}

// BenchmarkFingerprintVec measures the shared-window batch power
// evaluation against per-element table Pow (BenchmarkPowTableWide is
// the per-element baseline at the same exponent width).
func BenchmarkFingerprintVec(b *testing.B) {
	tab := NewPowTable(31337)
	const n = 64
	exps := make([]uint64, n)
	dst := make([]uint64, n)
	for i := range exps {
		exps[i] = P - 2 - uint64(i)*0x9e3779b9
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.FingerprintVec(dst, exps)
	}
}

func BenchmarkPowPair(b *testing.B) {
	ta := NewPowTable(31337)
	tb := NewPowTable(271828)
	var sa, sb uint64
	for i := 0; i < b.N; i++ {
		sa, sb = PowPair(ta, tb, P-2-uint64(i), uint64(i)*0x9e3779b9)
	}
	_, _ = sa, sb
}

func BenchmarkMergeCells(b *testing.B) {
	const n = 1024
	dc := make([]int64, n)
	sc := make([]int64, n)
	dk := make([]uint64, n)
	sk := make([]uint64, n)
	df := make([]uint64, n)
	sf := make([]uint64, n)
	for i := 0; i < n; i++ {
		sc[i] = int64(i) - 512
		sk[i] = Reduce(uint64(i) * 0x9e3779b97f4a7c15)
		sf[i] = Reduce(uint64(i) * 0xbf58476d1ce4e5b9)
	}
	b.SetBytes(n * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeCells(dc, dk, df, sc, sk, sf)
	}
}

func BenchmarkMulVec(b *testing.B) {
	const n = 1024
	x := make([]uint64, n)
	y := make([]uint64, n)
	dst := make([]uint64, n)
	for i := 0; i < n; i++ {
		x[i] = Reduce(uint64(i) * 0x9e3779b97f4a7c15)
		y[i] = Reduce(uint64(i) * 0xbf58476d1ce4e5b9)
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVec(dst, x, y)
	}
}
