//go:build purego

package field

// Pure-Go reference kernels: plain scalar loops over the exported
// field operations, with none of the unrolling or branch-free carry
// tricks of the default build. This is the semantic definition of
// every kernel — the fast path must match it bit for bit — and the
// escape hatch (`go build -tags purego`) if a platform ever miscompiles
// the tuned loops.

func addVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = Add(a[i], b[i])
	}
}

func subVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = Sub(a[i], b[i])
	}
}

func negVec(dst, a []uint64) {
	for i := range dst {
		dst[i] = Neg(a[i])
	}
}

func mulVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = Mul(a[i], b[i])
	}
}

func axpyVec(dst []uint64, c uint64, a []uint64) {
	for i := range dst {
		dst[i] = Add(dst[i], Mul(c, a[i]))
	}
}

func hornerStepVec(acc []uint64, x uint64, c []uint64) {
	for i := range acc {
		acc[i] = Add(Mul(acc[i], x), c[i])
	}
}

func mergeCells(dc []int64, dk, df []uint64, sc []int64, sk, sf []uint64) {
	for i := range dc {
		dc[i] += sc[i]
		dk[i] = Add(dk[i], sk[i])
		df[i] = Add(df[i], sf[i])
	}
}

func subCells(dc []int64, dk, df []uint64, sc []int64, sk, sf []uint64) {
	for i := range dc {
		dc[i] -= sc[i]
		dk[i] = Sub(dk[i], sk[i])
		df[i] = Sub(df[i], sf[i])
	}
}

func scatterAdd3(counts []int64, keys, fings []uint64, delta int64, ks, fg uint64, idx []int32) {
	for _, i := range idx {
		counts[i] += delta
		keys[i] = Add(keys[i], ks)
		fings[i] = Add(fings[i], fg)
	}
}

func addI64Vec(dst, a []int64) {
	for i := range dst {
		dst[i] += a[i]
	}
}

func subI64Vec(dst, a []int64) {
	for i := range dst {
		dst[i] -= a[i]
	}
}

func allZero(a []uint64) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

func allZeroI64(a []int64) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

func fingerprintVec(t *PowTable, dst, exps []uint64) {
	for i, e := range exps {
		dst[i] = t.Pow(e)
	}
}

func powPair(ta, tb *PowTable, ea, eb uint64) (uint64, uint64) {
	return ta.Pow(ea), tb.Pow(eb)
}
