package field

import (
	"testing"
)

// Kernel-vs-scalar differential tests. The kernels must return exactly
// the canonical representatives the scalar operations return — on both
// builds: under the default tags this checks the unrolled branch-free
// path, under -tags purego it checks the reference loops against the
// same scalar calls (a tautology that still guards the dispatch seam).

// kernelLens covers empty, single, sub-unroll, unroll-boundary, and
// odd-tail lengths.
var kernelLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 17, 31, 64, 101}

// edgeVals are the canonical-representative boundary values every
// elementwise test mixes into its random inputs.
var edgeVals = []uint64{0, 1, 2, 3, P - 3, P - 2, P - 1}

// testVec returns n field elements: boundary values first, then a
// seeded pseudorandom fill.
func testVec(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	state := seed
	for i := range out {
		if i < len(edgeVals) {
			out[i] = edgeVals[i]
			continue
		}
		// splitmix64 step, reduced into the field.
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = Reduce(z ^ (z >> 31))
	}
	return out
}

func cloneU64(a []uint64) []uint64 { return append([]uint64(nil), a...) }

func TestKernelsMatchScalar(t *testing.T) {
	for _, n := range kernelLens {
		a := testVec(uint64(n)*3+1, n)
		b := testVec(uint64(n)*7+2, n)
		c := Reduce(uint64(n)*0x9e3779b97f4a7c15 + 5)

		wantAdd := make([]uint64, n)
		wantSub := make([]uint64, n)
		wantNeg := make([]uint64, n)
		wantMul := make([]uint64, n)
		for i := 0; i < n; i++ {
			wantAdd[i] = Add(a[i], b[i])
			wantSub[i] = Sub(a[i], b[i])
			wantNeg[i] = Neg(a[i])
			wantMul[i] = Mul(a[i], b[i])
		}

		dst := make([]uint64, n)
		AddVec(dst, a, b)
		for i := range dst {
			if dst[i] != wantAdd[i] {
				t.Fatalf("n=%d AddVec[%d] = %d, scalar %d", n, i, dst[i], wantAdd[i])
			}
		}
		SubVec(dst, a, b)
		for i := range dst {
			if dst[i] != wantSub[i] {
				t.Fatalf("n=%d SubVec[%d] = %d, scalar %d", n, i, dst[i], wantSub[i])
			}
		}
		NegVec(dst, a)
		for i := range dst {
			if dst[i] != wantNeg[i] {
				t.Fatalf("n=%d NegVec[%d] = %d, scalar %d", n, i, dst[i], wantNeg[i])
			}
		}
		MulVec(dst, a, b)
		for i := range dst {
			if dst[i] != wantMul[i] {
				t.Fatalf("n=%d MulVec[%d] = %d, scalar %d", n, i, dst[i], wantMul[i])
			}
		}

		axpy := cloneU64(b)
		AxpyVec(axpy, c, a)
		for i := range axpy {
			want := Add(b[i], Mul(c, a[i]))
			if axpy[i] != want {
				t.Fatalf("n=%d AxpyVec[%d] = %d, scalar %d", n, i, axpy[i], want)
			}
		}

		horner := cloneU64(b)
		HornerStepVec(horner, c, a)
		for i := range horner {
			want := Add(Mul(b[i], c), a[i])
			if horner[i] != want {
				t.Fatalf("n=%d HornerStepVec[%d] = %d, scalar %d", n, i, horner[i], want)
			}
		}
	}
}

func TestKernelsAliasing(t *testing.T) {
	// dst may be exactly a or exactly b; results must match the
	// out-of-place computation.
	for _, n := range kernelLens {
		a := testVec(uint64(n)+11, n)
		b := testVec(uint64(n)+23, n)
		want := make([]uint64, n)
		AddVec(want, a, b)

		inA := cloneU64(a)
		AddVec(inA, inA, b)
		inB := cloneU64(b)
		AddVec(inB, a, inB)
		for i := 0; i < n; i++ {
			if inA[i] != want[i] || inB[i] != want[i] {
				t.Fatalf("n=%d aliased AddVec diverges at %d", n, i)
			}
		}

		wantMul := make([]uint64, n)
		MulVec(wantMul, a, b)
		mulA := cloneU64(a)
		MulVec(mulA, mulA, b)
		for i := 0; i < n; i++ {
			if mulA[i] != wantMul[i] {
				t.Fatalf("n=%d aliased MulVec diverges at %d", n, i)
			}
		}
	}
}

func TestKernelsBoundaryPairsExhaustive(t *testing.T) {
	// Every pair of boundary values through the length-1 kernels.
	for _, x := range edgeVals {
		for _, y := range edgeVals {
			var dst [1]uint64
			AddVec(dst[:], []uint64{x}, []uint64{y})
			if dst[0] != Add(x, y) {
				t.Fatalf("AddVec(%d,%d) = %d, scalar %d", x, y, dst[0], Add(x, y))
			}
			SubVec(dst[:], []uint64{x}, []uint64{y})
			if dst[0] != Sub(x, y) {
				t.Fatalf("SubVec(%d,%d) = %d, scalar %d", x, y, dst[0], Sub(x, y))
			}
			MulVec(dst[:], []uint64{x}, []uint64{y})
			if dst[0] != Mul(x, y) {
				t.Fatalf("MulVec(%d,%d) = %d, scalar %d", x, y, dst[0], Mul(x, y))
			}
			NegVec(dst[:], []uint64{x})
			if dst[0] != Neg(x) {
				t.Fatalf("NegVec(%d) = %d, scalar %d", x, dst[0], Neg(x))
			}
		}
	}
}

func TestMergeSubCellsMatchScalar(t *testing.T) {
	for _, n := range kernelLens {
		dk := testVec(uint64(n)+1, n)
		df := testVec(uint64(n)+2, n)
		sk := testVec(uint64(n)+3, n)
		sf := testVec(uint64(n)+4, n)
		dc := make([]int64, n)
		sc := make([]int64, n)
		for i := range dc {
			dc[i] = int64(i) - int64(n)/2
			sc[i] = int64(n) - 3*int64(i)
		}

		wc := append([]int64(nil), dc...)
		wk := cloneU64(dk)
		wf := cloneU64(df)
		for i := 0; i < n; i++ {
			wc[i] += sc[i]
			wk[i] = Add(wk[i], sk[i])
			wf[i] = Add(wf[i], sf[i])
		}
		MergeCells(dc, dk, df, sc, sk, sf)
		for i := 0; i < n; i++ {
			if dc[i] != wc[i] || dk[i] != wk[i] || df[i] != wf[i] {
				t.Fatalf("n=%d MergeCells diverges at %d", n, i)
			}
		}

		for i := 0; i < n; i++ {
			wc[i] -= sc[i]
			wk[i] = Sub(wk[i], sk[i])
			wf[i] = Sub(wf[i], sf[i])
		}
		SubCells(dc, dk, df, sc, sk, sf)
		for i := 0; i < n; i++ {
			if dc[i] != wc[i] || dk[i] != wk[i] || df[i] != wf[i] {
				t.Fatalf("n=%d SubCells diverges at %d", n, i)
			}
		}
	}
}

func TestI64VecAndZeroScans(t *testing.T) {
	for _, n := range kernelLens {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(i*i) - 17
			b[i] = 5 - int64(i)
		}
		want := make([]int64, n)
		for i := range want {
			want[i] = a[i] + b[i]
		}
		got := append([]int64(nil), a...)
		AddI64Vec(got, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d AddI64Vec diverges at %d", n, i)
			}
		}
		SubI64Vec(got, b)
		for i := range got {
			if got[i] != a[i] {
				t.Fatalf("n=%d SubI64Vec diverges at %d", n, i)
			}
		}

		zeros := make([]uint64, n)
		if !AllZero(zeros) {
			t.Fatalf("n=%d AllZero(zeros) = false", n)
		}
		zi := make([]int64, n)
		if !AllZeroI64(zi) {
			t.Fatalf("n=%d AllZeroI64(zeros) = false", n)
		}
		// A single nonzero at every position must be detected.
		for i := 0; i < n; i++ {
			zeros[i] = 1
			if AllZero(zeros) {
				t.Fatalf("n=%d AllZero misses nonzero at %d", n, i)
			}
			zeros[i] = 0
			zi[i] = -1
			if AllZeroI64(zi) {
				t.Fatalf("n=%d AllZeroI64 misses nonzero at %d", n, i)
			}
			zi[i] = 0
		}
	}
}

func TestScatterAdd3MatchesScalar(t *testing.T) {
	for _, n := range kernelLens {
		if n == 0 {
			continue
		}
		keys := testVec(0x5ca1, n)
		fings := testVec(0x5ca2, n)
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64(i) - int64(n)/2
		}
		wantK := append([]uint64(nil), keys...)
		wantF := append([]uint64(nil), fings...)
		wantC := append([]int64(nil), counts...)
		// Repeated indices in idx must accumulate, like the routed
		// ingest scatter does when rows collide.
		idx := []int32{0, int32(n - 1), int32(n / 2), 0}
		for _, kfg := range [][2]uint64{{0, 0}, {1, P - 1}, {P - 1, P - 2}, {12345, 678910}} {
			ks, fg := kfg[0], kfg[1]
			const delta = int64(-3)
			ScatterAdd3(counts, keys, fings, delta, ks, fg, idx)
			for _, i := range idx {
				wantC[i] += delta
				wantK[i] = Add(wantK[i], ks)
				wantF[i] = Add(wantF[i], fg)
			}
			for i := 0; i < n; i++ {
				if counts[i] != wantC[i] || keys[i] != wantK[i] || fings[i] != wantF[i] {
					t.Fatalf("n=%d ks=%d fg=%d: cell %d = (%d,%d,%d), want (%d,%d,%d)",
						n, ks, fg, i, counts[i], keys[i], fings[i], wantC[i], wantK[i], wantF[i])
				}
			}
		}
	}
}

func TestFingerprintVecMatchesPow(t *testing.T) {
	tab := NewPowTable(0x9e3779b97f4a7c15)
	for _, n := range kernelLens {
		exps := make([]uint64, n)
		state := uint64(n) * 0xbf58476d1ce4e5b9
		for i := range exps {
			switch i {
			case 0:
				exps[i] = 0
			case 1:
				exps[i] = 1
			case 2:
				exps[i] = P - 1 // full-width exponent: all 16 windows
			case 3:
				exps[i] = P - 2
			default:
				state += 0x9e3779b97f4a7c15
				exps[i] = Reduce(state ^ state>>29)
			}
		}
		dst := make([]uint64, n)
		tab.FingerprintVec(dst, exps)
		for i, e := range exps {
			if want := tab.Pow(e); dst[i] != want {
				t.Fatalf("n=%d FingerprintVec[%d] = %d, Pow(%d) = %d", n, i, dst[i], e, want)
			}
		}
	}
}

func TestPowPairMatchesPow(t *testing.T) {
	ta := NewPowTable(12345)
	tb := NewPowTable(98765)
	exps := []uint64{0, 1, 2, 15, 16, 255, P - 2, P - 1, 0x123456789abcdef}
	for _, ea := range exps {
		for _, eb := range exps {
			ga, gb := PowPair(ta, tb, ea, eb)
			if ga != ta.Pow(ea) || gb != tb.Pow(eb) {
				t.Fatalf("PowPair(%d,%d) = (%d,%d), want (%d,%d)",
					ea, eb, ga, gb, ta.Pow(ea), tb.Pow(eb))
			}
			// Same-table form (the spanner's directed key pair).
			sa, sb := PowPair(ta, ta, ea, eb)
			if sa != ta.Pow(ea) || sb != ta.Pow(eb) {
				t.Fatalf("same-table PowPair(%d,%d) diverges", ea, eb)
			}
		}
	}
}

func TestInvFastPathsMatchFermat(t *testing.T) {
	// The ±1 fast paths in Inv must equal the Fermat computation they
	// short-circuit.
	if got, want := Inv(1), Pow(1, P-2); got != want {
		t.Fatalf("Inv(1) = %d, Fermat %d", got, want)
	}
	if got, want := Inv(P-1), Pow(P-1, P-2); got != want {
		t.Fatalf("Inv(P-1) = %d, Fermat %d", got, want)
	}
	// And still round-trip: a * Inv(a) == 1.
	for _, a := range []uint64{1, P - 1, 2, 7, P - 2} {
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("Inv(%d) is not an inverse", a)
		}
	}
}
