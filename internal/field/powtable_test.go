package field

import "testing"

// splitmix64 clone, local to avoid an import cycle with hashing.
type tRng struct{ s uint64 }

func (r *tRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestPowTableMatchesPow(t *testing.T) {
	rng := tRng{s: 0x9d9d}
	bases := []uint64{0, 1, 2, 3, P - 1, P, P + 5, rng.next(), rng.next()}
	exps := []uint64{0, 1, 2, 15, 16, 17, 255, 256, P - 2, P - 1, P, ^uint64(0)}
	for _, b := range bases {
		tab := NewPowTable(b)
		if tab.Base() != Reduce(b) {
			t.Fatalf("Base() = %d, want %d", tab.Base(), Reduce(b))
		}
		for _, e := range exps {
			if got, want := tab.Pow(e), Pow(b, e); got != want {
				t.Fatalf("PowTable(%d).Pow(%d) = %d, want %d", b, e, got, want)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		b, e := rng.next(), rng.next()
		tab := NewPowTable(b)
		if got, want := tab.Pow(e), Pow(b, e); got != want {
			t.Fatalf("PowTable(%d).Pow(%d) = %d, want %d", b, e, got, want)
		}
	}
}

func TestPowTableInverseConsistency(t *testing.T) {
	// tab.Pow(P-2) must invert the base, same as Inv.
	rng := tRng{s: 0x1111}
	for i := 0; i < 100; i++ {
		b := Reduce(rng.next())
		if b == 0 {
			continue
		}
		tab := NewPowTable(b)
		if got, want := tab.Pow(P-2), Inv(b); got != want {
			t.Fatalf("table inverse of %d = %d, want %d", b, got, want)
		}
	}
}
