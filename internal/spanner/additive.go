package spanner

import (
	"fmt"
	"math"
	"sort"

	"dynstream/internal/agm"
	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/sketch"
	"dynstream/internal/stream"
)

// AdditiveConfig parameterizes the single-pass O(n/d)-additive spanner
// of Theorem 3 (Algorithm 3).
type AdditiveConfig struct {
	// D is the space/accuracy knob: Õ(nd) space, n/d additive error.
	D int
	// Seed selects all randomness.
	Seed uint64
	// DegreeFactor scales the low-degree cutoff C·d·log n; default 1.
	DegreeFactor float64
	// CenterFactor scales the center sampling rate C/d; default 2.
	CenterFactor float64
	// UseF0Degree switches the degree test from an exact counter to the
	// paper's Theorem 9 distinct-elements sketch. The counter equals the
	// distinct degree whenever the stream describes a simple graph (any
	// multigraph multiplicities are counted with multiplicity); the F0
	// sketch is the faithful-but-larger choice for true multigraphs.
	UseF0Degree bool
}

func (c AdditiveConfig) withDefaults() AdditiveConfig {
	if c.D < 1 {
		c.D = 1
	}
	if c.DegreeFactor == 0 {
		c.DegreeFactor = 1
	}
	if c.CenterFactor == 0 {
		c.CenterFactor = 2
	}
	return c
}

// AdditiveResult is the output of the additive spanner construction.
type AdditiveResult struct {
	// Spanner is the output subgraph E_low ∪ F ∪ F'.
	Spanner *graph.Graph
	// SpaceWords is the sketch footprint in 64-bit words.
	SpaceWords int
	// Centers is the number of sampled cluster centers |C| (diagnostics).
	Centers int
	// LowDegree is the number of vertices classified low-degree.
	LowDegree int
}

// Additive is the single-pass streaming state of Algorithm 3.
type Additive struct {
	cfg    AdditiveConfig
	n      int
	log2n  int
	cutoff float64 // low-degree threshold C·d·log n

	inC    []bool // center sample at rate Θ(1/d)
	zLevel *hashing.Poly

	nbr     []*sketch.SketchB   // S(u) = SKETCH_{Õ(d)}(N(u))
	centerS [][]*sketch.SketchB // A^r(u) = SKETCH_{O(log n)}(N(u) ∩ C ∩ Z_r)
	degree  []int64             // exact net degree counter
	degF0   []*sketch.F0        // optional Theorem 9 degree sketch
	forest  *agm.Sketch         // AGM sketches (Theorem 10)
	done    bool

	// subtracted is the E_low multiset currently folded OUT of the
	// forest sketch (canonical edge -> multiplicity). Extraction
	// reconciles it against the E_low it actually needs subtracted,
	// applying only the difference — so a re-query whose low-degree
	// edge set is unchanged leaves every forest sampler generation
	// untouched, and repeated extractions never double-subtract.
	subtracted map[[2]int]int64

	// Decode caches (EnableDecodeCache), keyed by monotonic generation
	// counters: a hit provably reproduces the cold decode.
	caching  bool
	lowCache map[int]lowEntry // per-vertex neighborhood decode
	parCache map[int]parEntry // per-vertex center attachment

	// Cumulative decode-cache outcomes across both consult sites
	// (low-degree neighborhoods, center attachments) while caching is on.
	cacheHits   uint64
	cacheMisses uint64
}

// DecodeCacheStats reports the cumulative decode-cache hit and miss
// counts across the neighborhood/attachment caches and the embedded
// forest sketch's component cache. Counters are cumulative across
// queries and survive cache invalidation.
func (a *Additive) DecodeCacheStats() (hits, misses uint64) {
	fh, fm := a.forest.DecodeCacheStats()
	return a.cacheHits + fh, a.cacheMisses + fm
}

// lowEntry caches one vertex's low-degree classification and decoded
// neighborhood under the generation of nbr[u] and the exact degree
// counter it was classified with.
type lowEntry struct {
	gen  uint64
	deg  int64
	low  bool
	nbrs []nbrItem // valid decoded neighbors, ascending
}

type nbrItem struct {
	v    int
	mult int64
}

// parEntry caches one vertex's star-forest attachment under the summed
// generation of its centerS row.
type parEntry struct {
	gens   uint64
	parent int // -1 if unattached
}

// NewAdditive creates the streaming state for a graph on n vertices.
func NewAdditive(n int, cfg AdditiveConfig) *Additive {
	cfg = cfg.withDefaults()
	log2n := int(math.Ceil(math.Log2(float64(n + 1))))
	if log2n < 1 {
		log2n = 1
	}
	a := &Additive{
		cfg:    cfg,
		n:      n,
		log2n:  log2n,
		cutoff: cfg.DegreeFactor * float64(cfg.D) * float64(log2n),
		inC:    make([]bool, n),
		zLevel: hashing.NewPoly(hashing.Mix(cfg.Seed, 0x22), 8),
		nbr:    make([]*sketch.SketchB, n),
		degree: make([]int64, n),
		forest: agm.New(hashing.Mix(cfg.Seed, 0x33), n, agm.Config{}),
	}
	rate := cfg.CenterFactor / float64(cfg.D)
	hC := hashing.NewPoly(hashing.Mix(cfg.Seed, 0x44), 8)
	for u := 0; u < n; u++ {
		a.inC[u] = hC.Bernoulli(uint64(u), rate)
	}
	// Neighborhood sketches sized to recover all edges of a low-degree
	// vertex: budget 2× the cutoff.
	nbrBudget := int(2*a.cutoff) + 4
	a.centerS = make([][]*sketch.SketchB, n)
	for u := 0; u < n; u++ {
		a.nbr[u] = sketch.NewSketchB(hashing.Mix(cfg.Seed, 0x55, uint64(u)), nbrBudget)
		row := make([]*sketch.SketchB, log2n+1)
		for r := 0; r <= log2n; r++ {
			row[r] = sketch.NewSketchB(hashing.Mix(cfg.Seed, 0x66, uint64(u), uint64(r)), 8)
		}
		a.centerS[u] = row
	}
	if cfg.UseF0Degree {
		a.degF0 = make([]*sketch.F0, n)
		for u := 0; u < n; u++ {
			a.degF0[u] = sketch.NewF0(hashing.Mix(cfg.Seed, 0x77, uint64(u)), uint64(n))
		}
	}
	return a
}

// N returns the vertex count.
func (a *Additive) N() int { return a.n }

// EnableDecodeCache turns the per-vertex decode caches — neighborhood
// peels, center attachments, and the forest sketch's component pick
// cache — on or off. Off releases the caches. Cached and uncached
// extraction are bit-identical.
func (a *Additive) EnableDecodeCache(on bool) {
	a.caching = on
	a.forest.EnableDecodeCache(on)
	if !on {
		a.lowCache = nil
		a.parCache = nil
	}
}

// InvalidateDecodeCache drops every cached per-vertex decode and the
// forest sketch's pick cache; the next ExtractOpts runs cold.
func (a *Additive) InvalidateDecodeCache() {
	a.lowCache = nil
	a.parCache = nil
	a.forest.InvalidateDecodeCache()
}

// reconcileElow adjusts the forest sketch so that exactly `want` is
// folded out of it, applying only the multiset difference against what
// is currently subtracted. An unchanged E_low is a no-op that touches
// no sampler.
func (a *Additive) reconcileElow(want map[[2]int]int64) {
	for key, m := range want {
		if d := m - a.subtracted[key]; d != 0 {
			a.forest.AddEdge(key[0], key[1], -d)
		}
	}
	for key, m := range a.subtracted {
		if _, ok := want[key]; !ok && m != 0 {
			a.forest.AddEdge(key[0], key[1], m)
		}
	}
	a.subtracted = make(map[[2]int]int64, len(want))
	for key, m := range want {
		a.subtracted[key] = m
	}
}

// restoreStream folds the subtracted E_low back in, returning the
// forest sketch to a pure function of the update stream — the state
// the wire format and Merge are defined over.
func (a *Additive) restoreStream() {
	a.reconcileElow(nil)
}

// Update ingests one stream update.
func (a *Additive) Update(u stream.Update) error {
	if a.done {
		return fmt.Errorf("spanner: additive Update after Finish")
	}
	d := int64(u.Delta)
	a.ingestHalf(u.U, u.V, d)
	a.ingestHalf(u.V, u.U, d)
	a.forest.AddUpdate(u)
	return nil
}

// AddBatch ingests a batch of updates; bit-identical to calling Update
// per element.
func (a *Additive) AddBatch(batch []stream.Update) error {
	for _, u := range batch {
		if err := a.Update(u); err != nil {
			return err
		}
	}
	return nil
}

// ingestHalf folds neighbor v into u's per-vertex sketches.
func (a *Additive) ingestHalf(u, v int, d int64) {
	a.nbr[u].Add(uint64(v), d)
	a.degree[u] += d
	if a.degF0 != nil {
		a.degF0[u].Add(uint64(v), d)
	}
	if a.inC[v] {
		lvl := a.zLevel.Level(uint64(v))
		if lvl > a.log2n {
			lvl = a.log2n
		}
		for r := 0; r <= lvl; r++ {
			a.centerS[u][r].Add(uint64(v), d)
		}
	}
}

func (a *Additive) isLowDegree(u int) bool {
	if a.degF0 != nil {
		return !a.degF0[u].ExceedsThreshold(int(a.cutoff))
	}
	return float64(a.degree[u]) <= a.cutoff
}

// Finish runs the post-processing of Algorithm 3: recover E_low, build
// the star forest F around centers, subtract E_low from the AGM
// sketches, contract clusters, and extract the spanning forest F'.
func (a *Additive) Finish() (*AdditiveResult, error) {
	return a.FinishOpts(parallel.Default())
}

// FinishOpts is the policy-driven decode: the closing spanning-forest
// extraction over G' = G − E_low runs its Borůvka rounds on the
// policy's decode workers (see agm.SpanningForestOpts); the per-vertex
// neighborhood peels stay serial. Output identical to Finish.
func (a *Additive) FinishOpts(p *parallel.Policy) (*AdditiveResult, error) {
	if a.done {
		return nil, fmt.Errorf("spanner: additive Finish called twice")
	}
	res, err := a.ExtractOpts(p)
	if err != nil {
		return nil, err
	}
	a.done = true
	return res, nil
}

// ExtractOpts is the repeatable form of FinishOpts: it leaves the
// state open for further updates (live handles interleave Update and
// ExtractOpts), keeping the forest sketch consistent across queries by
// delta-subtracting E_low (see reconcileElow) instead of destructively
// folding it out. With the decode cache enabled, a vertex whose
// sketches are unchanged since the previous query reuses its cached
// neighborhood peel and center attachment.
func (a *Additive) ExtractOpts(p *parallel.Policy) (*AdditiveResult, error) {
	if a.done {
		return nil, fmt.Errorf("spanner: additive extract after Finish")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("spanner: %w", err)
	}
	n := a.n
	out := graph.New(n)
	res := &AdditiveResult{}

	// (1) Low-degree vertices: recover all incident edges. The decode
	// and classification are cacheable per vertex: both depend only on
	// nbr[u] (generation-tracked) and the degree counter.
	elowSeen := map[[2]int]int64{} // canonical edge -> multiplicity
	lowDeg := make([]bool, n)
	for u := 0; u < n; u++ {
		var items []nbrItem
		low := false
		gen := a.nbr[u].Gen()
		deg := a.degree[u]
		// The F0 degree sketch has no generation counter; skip the
		// cache for that (rarely used) configuration.
		cacheable := a.caching && a.degF0 == nil
		if ent, ok := a.lowCache[u]; cacheable && ok && ent.gen == gen && ent.deg == deg {
			a.cacheHits++
			low, items = ent.low, ent.nbrs
		} else {
			if cacheable {
				a.cacheMisses++
			}
			if a.isLowDegree(u) {
				raw, ok := a.nbr[u].Decode()
				if ok {
					// Deterministic order: ascending neighbor id.
					low = true
					for key, mult := range raw {
						v := int(key)
						if v < 0 || v >= n || v == u || mult <= 0 {
							continue
						}
						items = append(items, nbrItem{v: v, mult: mult})
					}
					sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
				}
				// Decode failure (1/poly probability, or a multigraph
				// whose multiplicities exceed the counter-based
				// estimate): treat the vertex as high-degree rather
				// than emit garbage.
			}
			if cacheable {
				if a.lowCache == nil {
					a.lowCache = map[int]lowEntry{}
				}
				a.lowCache[u] = lowEntry{gen: gen, deg: deg, low: low, nbrs: items}
			}
		}
		if !low {
			continue
		}
		lowDeg[u] = true
		res.LowDegree++
		for _, it := range items {
			out.AddUnitEdge(u, it.v)
			c := [2]int{u, it.v}
			if c[0] > c[1] {
				c[0], c[1] = c[1], c[0]
			}
			if _, dup := elowSeen[c]; !dup {
				elowSeen[c] = it.mult
			}
		}
	}

	// (2) High-degree vertices: attach to a center neighbor, forming
	// the star forest F. The attachment depends only on the centerS
	// row, so it caches under the row's summed generation.
	parent := make([]int, n)
	for u := range parent {
		parent[u] = -1
	}
	for u := 0; u < n; u++ {
		if lowDeg[u] || a.inC[u] {
			continue // centers root their own clusters
		}
		var gens uint64
		for _, s := range a.centerS[u] {
			gens += s.Gen()
		}
		if ent, ok := a.parCache[u]; a.caching && ok && ent.gens == gens {
			a.cacheHits++
			parent[u] = ent.parent
		} else {
			if a.caching {
				a.cacheMisses++
			}
			for r := a.log2n; r >= 0 && parent[u] == -1; r-- {
				items, ok := a.centerS[u][r].Decode()
				if !ok || len(items) == 0 {
					continue
				}
				// Deterministic choice: smallest valid center id.
				keys := make([]uint64, 0, len(items))
				for key := range items {
					keys = append(keys, key)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, key := range keys {
					w := int(key)
					if w < 0 || w >= n || w == u || items[key] <= 0 || !a.inC[w] {
						continue
					}
					parent[u] = w
					break
				}
			}
			if a.caching {
				if a.parCache == nil {
					a.parCache = map[int]parEntry{}
				}
				a.parCache[u] = parEntry{gens: gens, parent: parent[u]}
			}
		}
		if parent[u] != -1 {
			out.AddUnitEdge(u, parent[u])
		}
	}

	// (3) G' = G − E_low; contract clusters T_c = {c} ∪ followers.
	// Delta-subtraction: only the E_low difference against the previous
	// query touches the forest samplers, so unchanged components keep
	// their pick caches hot.
	a.reconcileElow(elowSeen)
	groups := map[int][]int{}
	for u := 0; u < n; u++ {
		if a.inC[u] {
			groups[u] = append(groups[u], u)
			res.Centers++
		}
	}
	for u := 0; u < n; u++ {
		if p := parent[u]; p != -1 {
			groups[p] = append(groups[p], u)
		}
	}
	// Deterministic group order: ascending center id (groups exist only
	// for centers).
	groupList := make([][]int, 0, len(groups))
	for u := 0; u < n; u++ {
		if g, ok := groups[u]; ok {
			groupList = append(groupList, g)
		}
	}
	fprime, err := a.forest.SpanningForestOpts(groupList, p)
	if err != nil {
		return nil, fmt.Errorf("spanner: additive forest: %w", err)
	}
	for _, e := range fprime {
		out.AddUnitEdge(e.U, e.V)
	}

	res.Spanner = out
	res.SpaceWords = a.SpaceWords()
	return res, nil
}

// SpaceWords returns the sketch footprint in 64-bit words.
func (a *Additive) SpaceWords() int {
	w := len(a.degree)
	for u := 0; u < a.n; u++ {
		w += a.nbr[u].SpaceWords()
		for _, s := range a.centerS[u] {
			w += s.SpaceWords()
		}
		if a.degF0 != nil {
			w += a.degF0[u].SpaceWords()
		}
	}
	w += a.forest.SpaceWords()
	return w
}

// BuildAdditive runs the single-pass additive spanner over a stream
// (Theorem 3): the output H satisfies, for every pair u, v,
// d_G(u,v) <= d_H(u,v) <= d_G(u,v) + O(n/d), using Õ(nd) space.
func BuildAdditive(st stream.Stream, cfg AdditiveConfig) (*AdditiveResult, error) {
	a := NewAdditive(st.N(), cfg)
	if err := stream.ReplayBatches(st, 0, a.AddBatch); err != nil {
		return nil, fmt.Errorf("spanner: additive pass: %w", err)
	}
	return a.Finish()
}
