package spanner

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func buildAdditiveFromGraph(t *testing.T, g *graph.Graph, cfg AdditiveConfig) *AdditiveResult {
	t.Helper()
	st := stream.FromGraph(g, cfg.Seed+500)
	res, err := BuildAdditive(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// maxAdditiveError returns max over sampled pairs of d_H - d_G.
func maxAdditiveError(t *testing.T, g, h *graph.Graph, sources int) int {
	t.Helper()
	worst := 0
	n := g.N()
	step := 1
	if sources > 0 && n > sources {
		step = n / sources
	}
	for src := 0; src < n; src += step {
		dg := g.BFS(src)
		dh := h.BFS(src)
		for v := 0; v < n; v++ {
			if dg[v] < 0 {
				continue
			}
			if dh[v] == -1 {
				t.Fatalf("additive spanner disconnects %d-%d", src, v)
			}
			if dh[v] < dg[v] {
				t.Fatalf("additive spanner shortcut at (%d,%d)", src, v)
			}
			if dh[v]-dg[v] > worst {
				worst = dh[v] - dg[v]
			}
		}
	}
	return worst
}

func TestAdditiveSubgraph(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.2, 1)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 4, Seed: 2})
	if !res.Spanner.IsSubgraphOf(g) {
		t.Error("additive spanner contains non-graph edges")
	}
}

func TestAdditiveErrorBound(t *testing.T) {
	// Theorem 3: additive error O(n/d). Check with constant 2 on a
	// moderately dense random graph.
	g := graph.ConnectedGNP(80, 0.2, 3)
	d := 4
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: d, Seed: 4})
	bound := 2 * g.N() / d
	if err := maxAdditiveError(t, g, res.Spanner, 20); err > bound {
		t.Errorf("additive error %d exceeds bound %d", err, bound)
	}
}

func TestAdditiveDenseGraphCompresses(t *testing.T) {
	g := graph.Complete(60)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 4, Seed: 5})
	if res.Spanner.M() >= g.M() {
		t.Errorf("no compression: %d of %d edges", res.Spanner.M(), g.M())
	}
	if err := maxAdditiveError(t, g, res.Spanner, 30); err > 2*60/4 {
		t.Errorf("additive error %d", err)
	}
}

func TestAdditiveSparseGraphKeptExactly(t *testing.T) {
	// On a path, all vertices are low-degree, so E_low = E and the
	// spanner is the whole graph: additive error 0.
	g := graph.Path(60)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 4, Seed: 6})
	if res.Spanner.M() != g.M() {
		t.Errorf("path: %d of %d edges kept", res.Spanner.M(), g.M())
	}
	if err := maxAdditiveError(t, g, res.Spanner, 0); err != 0 {
		t.Errorf("path additive error %d, want 0", err)
	}
}

func TestAdditiveChurnStream(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.25, 7)
	st := stream.WithChurn(g, 500, 8)
	res, err := BuildAdditive(st, AdditiveConfig{D: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spanner.IsSubgraphOf(g) {
		t.Fatal("churn leaked deleted edges")
	}
	if e := maxAdditiveError(t, g, res.Spanner, 10); e > 2*g.N()/4 {
		t.Errorf("additive error %d under churn", e)
	}
}

func TestAdditiveDisconnected(t *testing.T) {
	g := graph.New(40)
	for i := 0; i < 19; i++ {
		g.AddUnitEdge(i, i+1)
		g.AddUnitEdge(20+i, 21+i)
	}
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 2, Seed: 10})
	_, cG := g.Components()
	_, cH := res.Spanner.Components()
	if cG != cH {
		t.Errorf("components: %d vs %d", cH, cG)
	}
}

func TestAdditiveEmpty(t *testing.T) {
	st := stream.NewMemoryStream(10)
	res, err := BuildAdditive(st, AdditiveConfig{D: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.M() != 0 {
		t.Errorf("empty graph gave %d edges", res.Spanner.M())
	}
}

func TestAdditiveHubAndSpokes(t *testing.T) {
	// Star: center is high-degree, leaves are low-degree; all edges
	// must survive (every edge is a bridge).
	g := graph.Star(50)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 4, Seed: 12})
	if res.Spanner.M() != g.M() {
		t.Errorf("star spanner has %d of %d edges", res.Spanner.M(), g.M())
	}
}

func TestAdditivePreferentialAttachment(t *testing.T) {
	g := graph.PreferentialAttachment(100, 3, 13)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 4, Seed: 14})
	if !res.Spanner.IsSubgraphOf(g) {
		t.Fatal("non-subgraph")
	}
	if e := maxAdditiveError(t, g, res.Spanner, 20); e > 2*g.N()/4 {
		t.Errorf("PA additive error %d", e)
	}
}

func TestAdditiveSpaceGrowsWithD(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.2, 15)
	small := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 2, Seed: 16})
	large := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 8, Seed: 16})
	if large.SpaceWords <= small.SpaceWords {
		t.Errorf("space: d=8 (%d words) should exceed d=2 (%d words)",
			large.SpaceWords, small.SpaceWords)
	}
}

func TestAdditiveF0DegreeMode(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.3, 17)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 4, Seed: 18, UseF0Degree: true})
	if !res.Spanner.IsSubgraphOf(g) {
		t.Fatal("non-subgraph in F0 mode")
	}
	if e := maxAdditiveError(t, g, res.Spanner, 10); e > 2*g.N()/4 {
		t.Errorf("F0-mode additive error %d", e)
	}
}

func TestAdditiveUpdateAfterFinish(t *testing.T) {
	a := NewAdditive(10, AdditiveConfig{D: 2, Seed: 19})
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(stream.Update{U: 0, V: 1, Delta: 1}); err == nil {
		t.Error("Update after Finish accepted")
	}
	if _, err := a.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestAdditiveDiagnostics(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.3, 20)
	res := buildAdditiveFromGraph(t, g, AdditiveConfig{D: 3, Seed: 21})
	if res.Centers <= 0 {
		t.Error("no centers sampled")
	}
	if res.LowDegree < 0 || res.LowDegree > g.N() {
		t.Errorf("low-degree count %d out of range", res.LowDegree)
	}
}
