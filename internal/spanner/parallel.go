package spanner

import (
	"fmt"
	"math"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/parallel"
	"dynstream/internal/stream"
)

// This file lifts the mergeability of the underlying linear sketches to
// the spanner constructions, and builds the concurrent sharded-ingest
// pipeline on top of it: a stream is split into P round-robin shards,
// each shard is ingested into an independent state created from the
// same configuration (same seed, hence the paper's "agree upon a
// sketching matrix S"), and the states are merged. Every per-update
// operation is a commutative group operation (int64 addition and
// GF(2^61−1) addition), so the merged state is identical — not merely
// equivalent — to single-threaded ingestion, and everything decoded
// from it (clusters, tables, the final spanner) matches exactly.

// MergePass1 adds the first-pass sketch state of another TwoPass built
// with the same configuration. Both states must still be in pass 1; the
// receiver afterwards holds the sketch of the union of the two ingested
// shard streams.
func (tp *TwoPass) MergePass1(o *TwoPass) error {
	if tp.phase != 0 || o.phase != 0 {
		return fmt.Errorf("spanner: MergePass1 in phase %d/%d", tp.phase, o.phase)
	}
	if tp.n != o.n || tp.cfg != o.cfg {
		return fmt.Errorf("spanner: merging incompatible two-pass states (n %d/%d)", tp.n, o.n)
	}
	for u := range tp.vertexSk {
		for r := range tp.vertexSk[u] {
			for j := range tp.vertexSk[u][r] {
				if err := tp.vertexSk[u][r][j].Merge(o.vertexSk[u][r][j]); err != nil {
					return fmt.Errorf("spanner: pass-1 merge (u=%d, r=%d, j=%d): %w", u, r+1, j, err)
				}
			}
		}
	}
	return nil
}

// ForkPass2 returns a pass-2 worker state: it shares tp's immutable
// cluster structure (computed by EndPass1) and owns freshly zeroed
// second-pass tables with the same seeds, so the worker can ingest a
// stream shard independently and be folded back with MergePass2. The
// receiver must have finished pass 1.
func (tp *TwoPass) ForkPass2() (*TwoPass, error) {
	if tp.phase != 1 {
		return nil, fmt.Errorf("spanner: ForkPass2 in phase %d", tp.phase)
	}
	w := &TwoPass{
		cfg:         tp.cfg,
		n:           tp.n,
		k:           tp.k,
		jMax:        tp.jMax,
		yMax:        tp.yMax,
		log2n:       tp.log2n,
		inC:         tp.inC,         // read-only after NewTwoPass
		edgeLevel:   tp.edgeLevel,   // immutable
		yLevel:      tp.yLevel,      // immutable
		copies:      tp.copies,      // read-only after EndPass1
		terminalsOf: tp.terminalsOf, // read-only after EndPass1
		augmented:   map[[2]int]bool{},
		phase:       1,
	}
	w.tables = w.allocTables()
	return w, nil
}

// MergePass2 adds the second-pass table state of a worker created by
// ForkPass2 (or any TwoPass sharing the same configuration and cluster
// structure). Both states must be in pass 2.
func (tp *TwoPass) MergePass2(o *TwoPass) error {
	if tp.phase != 1 || o.phase != 1 {
		return fmt.Errorf("spanner: MergePass2 in phase %d/%d", tp.phase, o.phase)
	}
	if tp.n != o.n || tp.cfg != o.cfg {
		return fmt.Errorf("spanner: merging incompatible two-pass states (n %d/%d)", tp.n, o.n)
	}
	if len(tp.tables) != len(o.tables) {
		return fmt.Errorf("spanner: merging pass-2 states with different cluster structures (%d vs %d tables)",
			len(tp.tables), len(o.tables))
	}
	for ci, row := range tp.tables {
		orow, ok := o.tables[ci]
		if !ok {
			return fmt.Errorf("spanner: pass-2 merge: other state lacks table for copy %d", ci)
		}
		for j := range row {
			if err := row[j].Merge(orow[j]); err != nil {
				return fmt.Errorf("spanner: pass-2 merge (copy=%d, j=%d): %w", ci, j, err)
			}
		}
	}
	for e := range o.augmented {
		tp.augmented[e] = true
	}
	return nil
}

// BuildTwoPassOpts is the policy-driven two-pass build: both passes
// run under p's context (cancellation observed at batch granularity),
// worker count, batch size, and progress sink. The source must be
// replayable (two passes); output is identical to BuildTwoPass for the
// same configuration regardless of the policy.
func BuildTwoPassOpts(src stream.Source, cfg Config, p *parallel.Policy) (*Result, error) {
	if !stream.CanReplay(src) {
		return nil, fmt.Errorf("spanner: two-pass build: %w", stream.ErrNotReplayable)
	}
	// Pass 1: independent states, one per shard, batched ingest. At one
	// worker the dispatcher degenerates to a serial replay of the same
	// state — one code path (and one set of trace spans) for all widths.
	main, err := parallel.IngestOpts(p, src,
		func() (*TwoPass, error) { return NewTwoPass(src.N(), cfg), nil },
		(*TwoPass).Pass1AddBatch, (*TwoPass).MergePass1)
	if err != nil {
		return nil, fmt.Errorf("spanner: parallel pass 1: %w", err)
	}
	if err := main.EndPass1Opts(p); err != nil {
		return nil, err
	}
	// Pass 2: fork table-only workers over the shared cluster structure.
	tables, err := parallel.IngestOpts(p, src,
		main.ForkPass2, (*TwoPass).Pass2AddBatch, (*TwoPass).MergePass2)
	if err != nil {
		return nil, fmt.Errorf("spanner: parallel pass 2: %w", err)
	}
	if err := main.MergePass2(tables); err != nil {
		return nil, err
	}
	return main.FinishOpts(p)
}

// BuildTwoPassWeightedOpts is the policy-driven weight-class build of
// Remark 14 (see BuildTwoPassWeighted): each geometric weight class is
// built with BuildTwoPassOpts under the same policy.
func BuildTwoPassWeightedOpts(src stream.Source, cfg Config, classBase float64, p *parallel.Policy) (*Result, error) {
	return BuildTwoPassWeightedWith(src, cfg, classBase, func(sub stream.Source, ccfg Config) (*Result, error) {
		return BuildTwoPassOpts(sub, ccfg, p)
	})
}

// BuildTwoPassWeightedWith is the weight-class construction with an
// injected per-class builder: the class split, per-class seed mixing,
// and weight-rescaled assembly live here once, while build runs each
// class's unweighted two-pass construction — locally under a policy
// (BuildTwoPassWeightedOpts) or on remote workers (the dynnet path).
func BuildTwoPassWeightedWith(src stream.Source, cfg Config, classBase float64, build func(stream.Source, Config) (*Result, error)) (*Result, error) {
	if classBase <= 1 {
		return nil, fmt.Errorf("spanner: classBase must be > 1, got %v", classBase)
	}
	if !stream.CanReplay(src) {
		return nil, fmt.Errorf("spanner: weighted two-pass build: %w", stream.ErrNotReplayable)
	}
	classes, sub := stream.WeightClasses(src, classBase)
	out := &Result{Spanner: graph.New(src.N())}
	if cfg.CollectAugmented {
		out.Augmented = graph.New(src.N())
	}
	for _, c := range classes {
		ccfg := cfg
		ccfg.Seed = hashing.Mix(cfg.Seed, 0x3c, uint64(c))
		res, err := build(sub[c], ccfg)
		if err != nil {
			return nil, fmt.Errorf("spanner: weight class %d: %w", c, err)
		}
		wUpper := math.Pow(classBase, float64(c+1))
		for _, e := range res.Spanner.Edges() {
			out.Spanner.AddEdge(e.U, e.V, wUpper)
		}
		if cfg.CollectAugmented && res.Augmented != nil {
			for _, e := range res.Augmented.Edges() {
				out.Augmented.AddEdge(e.U, e.V, wUpper)
			}
		}
		out.SpaceWords += res.SpaceWords
		out.Terminals += res.Terminals
	}
	return out, nil
}

// BuildTwoPassParallel is BuildTwoPass with both stream passes ingested
// by `workers` goroutines over round-robin shards of st. The output is
// identical to BuildTwoPass with the same configuration: the merged
// sketch states equal the single-threaded states exactly, and every
// downstream decode is deterministic.
func BuildTwoPassParallel(st stream.Stream, cfg Config, workers int) (*Result, error) {
	if workers == 1 {
		return BuildTwoPass(st, cfg)
	}
	return BuildTwoPassOpts(st, cfg, parallel.Default().WithWorkers(workers))
}

// Merge adds the sketch state of another Additive built with the same
// configuration; the receiver afterwards sketches the union of the two
// ingested streams. Neither state may be finished.
func (a *Additive) Merge(o *Additive) error {
	if a.done || o.done {
		return fmt.Errorf("spanner: additive Merge after Finish")
	}
	if a.n != o.n || a.cfg != o.cfg {
		return fmt.Errorf("spanner: merging incompatible additive states (n %d/%d)", a.n, o.n)
	}
	// Merge is defined over pure stream states: fold any extraction-era
	// E_low subtractions back in on both sides first.
	a.restoreStream()
	o.restoreStream()
	for u := 0; u < a.n; u++ {
		if err := a.nbr[u].Merge(o.nbr[u]); err != nil {
			return fmt.Errorf("spanner: additive merge nbr[%d]: %w", u, err)
		}
		for r := range a.centerS[u] {
			if err := a.centerS[u][r].Merge(o.centerS[u][r]); err != nil {
				return fmt.Errorf("spanner: additive merge centerS[%d][%d]: %w", u, r, err)
			}
		}
		a.degree[u] += o.degree[u]
		if a.degF0 != nil {
			a.degF0[u].Merge(o.degF0[u])
		}
	}
	return a.forest.Merge(o.forest)
}

// BuildAdditiveOpts is the policy-driven single-pass additive build:
// ingestion runs under p's context, workers, batch size, and progress
// sink. Because it is single-pass, any Source works — including pipes
// and channels that cannot be replayed.
func BuildAdditiveOpts(src stream.Source, cfg AdditiveConfig, p *parallel.Policy) (*AdditiveResult, error) {
	main, err := parallel.IngestOpts(p, src,
		func() (*Additive, error) { return NewAdditive(src.N(), cfg), nil },
		(*Additive).AddBatch, (*Additive).Merge)
	if err != nil {
		return nil, fmt.Errorf("spanner: additive pass: %w", err)
	}
	return main.FinishOpts(p)
}

// BuildAdditiveParallel is BuildAdditive with the single pass ingested
// by `workers` goroutines over round-robin shards of st; the merged
// state — and therefore the output — is identical to BuildAdditive.
func BuildAdditiveParallel(st stream.Stream, cfg AdditiveConfig, workers int) (*AdditiveResult, error) {
	if workers == 1 {
		return BuildAdditive(st, cfg)
	}
	return BuildAdditiveOpts(st, cfg, parallel.Default().WithWorkers(workers))
}
