package spanner

import (
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// The parallel builders promise output *identical* to serial ingestion
// — not just equivalent — because every sketch operation is a
// commutative group operation. These tests pin that guarantee on
// seeded random graphs and churn streams, across worker counts, and
// are meant to run under -race (the shards replay concurrently).

func sameGraph(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("%s: %d edges vs %d serial", name, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d differs: %+v vs serial %+v", name, i, ea[i], eb[i])
		}
	}
}

func TestTwoPassParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   stream.Stream
		k    int
	}{
		{"gnp-k2", stream.FromGraph(graph.ConnectedGNP(64, 0.1, 21), 22), 2},
		{"churn-k2", stream.WithChurn(graph.ConnectedGNP(48, 0.12, 23), 300, 24), 2},
		{"churn-k1", stream.WithChurn(graph.ConnectedGNP(40, 0.15, 25), 200, 26), 1},
		{"churn-k3", stream.WithChurn(graph.ConnectedGNP(56, 0.1, 27), 150, 28), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{K: tc.k, Seed: 77}
			serial, err := BuildTwoPass(tc.st, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 4, 8} {
				par, err := BuildTwoPassParallel(tc.st, cfg, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				sameGraph(t, tc.name, par.Spanner, serial.Spanner)
				if par.SpaceWords != serial.SpaceWords {
					t.Errorf("workers=%d: space %d vs serial %d", workers, par.SpaceWords, serial.SpaceWords)
				}
				if par.Terminals != serial.Terminals {
					t.Errorf("workers=%d: terminals %d vs serial %d", workers, par.Terminals, serial.Terminals)
				}
			}
		})
	}
}

func TestTwoPassParallelAugmented(t *testing.T) {
	st := stream.WithChurn(graph.ConnectedGNP(40, 0.12, 31), 120, 32)
	cfg := Config{K: 2, Seed: 33, CollectAugmented: true}
	serial, err := BuildTwoPass(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildTwoPassParallel(st, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, "augmented", par.Augmented, serial.Augmented)
}

func TestAdditiveParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   stream.Stream
		cfg  AdditiveConfig
	}{
		{"gnp-d3", stream.FromGraph(graph.ConnectedGNP(60, 0.15, 41), 42), AdditiveConfig{D: 3, Seed: 43}},
		{"churn-d4", stream.WithChurn(graph.ConnectedGNP(50, 0.2, 44), 250, 45), AdditiveConfig{D: 4, Seed: 46}},
		{"churn-f0", stream.WithChurn(graph.ConnectedGNP(40, 0.2, 47), 150, 48),
			AdditiveConfig{D: 3, Seed: 49, UseF0Degree: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := BuildAdditive(tc.st, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par, err := BuildAdditiveParallel(tc.st, tc.cfg, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				sameGraph(t, tc.name, par.Spanner, serial.Spanner)
				if par.Centers != serial.Centers || par.LowDegree != serial.LowDegree {
					t.Errorf("workers=%d: centers/lowdeg %d/%d vs serial %d/%d",
						workers, par.Centers, par.LowDegree, serial.Centers, serial.LowDegree)
				}
			}
		})
	}
}

func TestParallelRejectsBadWorkers(t *testing.T) {
	st := stream.FromGraph(graph.ConnectedGNP(10, 0.4, 51), 52)
	if _, err := BuildTwoPassParallel(st, Config{K: 2, Seed: 1}, 0); err == nil {
		t.Error("BuildTwoPassParallel accepted workers=0")
	}
	if _, err := BuildAdditiveParallel(st, AdditiveConfig{D: 2, Seed: 1}, -1); err == nil {
		t.Error("BuildAdditiveParallel accepted workers=-1")
	}
}

func TestMergeMisuse(t *testing.T) {
	n := 16
	a := NewTwoPass(n, Config{K: 2, Seed: 61})
	b := NewTwoPass(n, Config{K: 2, Seed: 62}) // different seed
	if err := a.MergePass1(b); err == nil {
		t.Error("MergePass1 accepted mismatched seeds")
	}
	c := NewTwoPass(n, Config{K: 2, Seed: 61})
	if err := a.EndPass1(); err != nil {
		t.Fatal(err)
	}
	if err := a.MergePass1(c); err == nil {
		t.Error("MergePass1 accepted phase-1 receiver")
	}
	if err := a.MergePass2(c); err == nil {
		t.Error("MergePass2 accepted phase-0 argument")
	}
	if _, err := c.ForkPass2(); err == nil {
		t.Error("ForkPass2 accepted phase-0 receiver")
	}
	w, err := a.ForkPass2()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergePass2(w); err != nil {
		t.Errorf("MergePass2 of forked worker: %v", err)
	}

	x := NewAdditive(n, AdditiveConfig{D: 2, Seed: 63})
	y := NewAdditive(n, AdditiveConfig{D: 2, Seed: 64})
	if err := x.Merge(y); err == nil {
		t.Error("Additive.Merge accepted mismatched seeds")
	}
	z := NewAdditive(n, AdditiveConfig{D: 2, Seed: 63})
	if _, err := x.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := x.Merge(z); err == nil {
		t.Error("Additive.Merge accepted finished receiver")
	}
}
