package spanner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// Property-based tests: spanner invariants over random small graphs
// and random update sequences.

// randomGraphFromBytes builds a graph on n vertices whose edges are
// selected by the byte string (two bytes per candidate edge).
func randomGraphFromBytes(n int, data []byte) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < len(data); i += 2 {
		u := int(data[i]) % n
		v := int(data[i+1]) % n
		if u != v {
			g.AddUnitEdge(u, v)
		}
	}
	return g
}

func TestPropertyTwoPassAlwaysValid(t *testing.T) {
	// For any graph: subgraph, no disconnection, stretch ≤ 2^k.
	f := func(data []byte, seed uint64) bool {
		const n, k = 24, 2
		g := randomGraphFromBytes(n, data)
		st := stream.FromGraph(g, seed)
		res, err := BuildTwoPass(st, Config{K: k, Seed: seed ^ 0xabc})
		if err != nil {
			return false
		}
		if !res.Spanner.IsSubgraphOf(g) {
			return false
		}
		for src := 0; src < n; src += 4 {
			dg := g.BFS(src)
			dh := res.Spanner.BFS(src)
			for v := 0; v < n; v++ {
				if dg[v] <= 0 {
					continue
				}
				if dh[v] == -1 || dh[v] < dg[v] || dh[v] > (1<<k)*dg[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(104))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAdditiveAlwaysValid(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		const n, d = 24, 3
		g := randomGraphFromBytes(n, data)
		st := stream.FromGraph(g, seed)
		res, err := BuildAdditive(st, AdditiveConfig{D: d, Seed: seed ^ 0xdef})
		if err != nil {
			return false
		}
		if !res.Spanner.IsSubgraphOf(g) {
			return false
		}
		for src := 0; src < n; src += 4 {
			dg := g.BFS(src)
			dh := res.Spanner.BFS(src)
			for v := 0; v < n; v++ {
				if dg[v] < 0 || v == src {
					continue
				}
				// Validity: connected, no shortcut, error within the
				// generous 2n/d envelope.
				if dh[v] == -1 || dh[v] < dg[v] || dh[v]-dg[v] > 2*n/d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(105))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyChurnEquivalence(t *testing.T) {
	// A churned stream with the same final graph yields a spanner with
	// the same validity guarantees — deleted edges never appear.
	f := func(data []byte, churnSeed uint64) bool {
		const n = 20
		g := randomGraphFromBytes(n, data)
		st := stream.WithChurn(g, 50, churnSeed)
		res, err := BuildTwoPass(st, Config{K: 2, Seed: churnSeed ^ 0x123})
		if err != nil {
			return false
		}
		return res.Spanner.IsSubgraphOf(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(106))}); err != nil {
		t.Error(err)
	}
}

func TestPropertySpannerIdempotentPerSeed(t *testing.T) {
	// Same stream + same seed => identical spanner (determinism).
	f := func(data []byte) bool {
		const n = 20
		g := randomGraphFromBytes(n, data)
		st := stream.FromGraph(g, 5)
		r1, err1 := BuildTwoPass(st, Config{K: 2, Seed: 99})
		r2, err2 := BuildTwoPass(st, Config{K: 2, Seed: 99})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Spanner.M() == r2.Spanner.M() &&
			r1.Spanner.IsSubgraphOf(r2.Spanner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(107))}); err != nil {
		t.Error(err)
	}
}
