package spanner

import (
	"math/rand"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/parallel"
	"dynstream/internal/stream"
)

func memStream(t *testing.T, n int, ups []stream.Update) *stream.MemoryStream {
	t.Helper()
	ms := stream.NewMemoryStream(n)
	for _, u := range ups {
		if err := ms.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	return ms
}

func graphsEqual(a, b *graph.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// TestTwoPassLiveBitIdentical interleaves churn with live queries and
// checks every query against a cold from-scratch two-pass build over
// the same total stream, at several worker counts.
func TestTwoPassLiveBitIdentical(t *testing.T) {
	const n = 120
	cfg := Config{K: 2, Seed: 99, CollectAugmented: true}
	rng := rand.New(rand.NewSource(3))

	var base []stream.Update
	for i := 0; i < 400; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		base = append(base, stream.Update{U: u, V: v, Delta: 1})
	}
	live := NewTwoPass(n, cfg)
	live.EnableDecodeCache(true)
	if err := live.StartLive(memStream(t, n, base)); err != nil {
		t.Fatal(err)
	}

	total := append([]stream.Update(nil), base...)
	for round := 0; round < 5; round++ {
		for _, workers := range []int{1, 2, 4} {
			p := parallel.Default().WithWorkers(workers)
			got, err := live.QueryLive(p)
			if err != nil {
				t.Fatalf("round %d workers %d: live: %v", round, workers, err)
			}
			want, err := BuildTwoPassOpts(memStream(t, n, total), cfg, p)
			if err != nil {
				t.Fatalf("round %d workers %d: cold: %v", round, workers, err)
			}
			if !graphsEqual(got.Spanner, want.Spanner) {
				t.Fatalf("round %d workers %d: live spanner diverged from cold build", round, workers)
			}
			if !graphsEqual(got.Augmented, want.Augmented) {
				t.Fatalf("round %d workers %d: live augmented set diverged", round, workers)
			}
			if got.Terminals != want.Terminals || got.Stats.RecoveredEdges != want.Stats.RecoveredEdges {
				t.Fatalf("round %d workers %d: live stats diverged: %+v vs %+v",
					round, workers, got.Stats, want.Stats)
			}
		}
		// Churn: delete a few inserted edges, insert a few new ones.
		var batch []stream.Update
		for j := 0; j < 4 && len(total) > 0; j++ {
			e := total[rng.Intn(len(base))]
			batch = append(batch, stream.Update{U: e.U, V: e.V, Delta: -e.Delta})
		}
		for j := 0; j < 4; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			batch = append(batch, stream.Update{U: u, V: v, Delta: 1})
		}
		if err := live.ApplyLive(batch); err != nil {
			t.Fatal(err)
		}
		total = append(total, batch...)
	}
}

// TestTwoPassLiveCacheReuse checks that re-querying an unchanged live
// state hits the attachment and recovery caches (no growth, same
// output), and that pass-1 stays open after queries.
func TestTwoPassLiveCacheReuse(t *testing.T) {
	const n = 80
	cfg := Config{K: 2, Seed: 5}
	var ups []stream.Update
	for v := 1; v < n; v++ {
		ups = append(ups, stream.Update{U: v - 1, V: v, Delta: 1})
		ups = append(ups, stream.Update{U: (v * 13) % n, V: v, Delta: 1})
	}
	ups = filterSelfLoops(ups)
	tp := NewTwoPass(n, cfg)
	tp.EnableDecodeCache(true)
	if err := tp.StartLive(memStream(t, n, ups)); err != nil {
		t.Fatal(err)
	}
	p := parallel.Default()
	first, err := tp.QueryLive(p)
	if err != nil {
		t.Fatal(err)
	}
	attached, recs := len(tp.attach), len(tp.recCache)
	if attached == 0 || recs == 0 {
		t.Fatalf("caches empty after first query: attach=%d rec=%d", attached, recs)
	}
	again, err := tp.QueryLive(p)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(first.Spanner, again.Spanner) {
		t.Fatal("re-query of unchanged live state diverged")
	}
	if len(tp.attach) != attached || len(tp.recCache) != recs {
		t.Fatalf("re-query of unchanged state re-decoded: attach %d->%d rec %d->%d",
			attached, len(tp.attach), recs, len(tp.recCache))
	}
	if tp.Phase() != 0 {
		t.Fatalf("live state left phase 0: %d", tp.Phase())
	}
}

func filterSelfLoops(ups []stream.Update) []stream.Update {
	out := ups[:0]
	for _, u := range ups {
		if u.U != u.V {
			out = append(out, u)
		}
	}
	return out
}

// TestAdditiveLiveBitIdentical interleaves updates with repeatable
// extractions and checks each against a cold single-pass build over
// the same total stream.
func TestAdditiveLiveBitIdentical(t *testing.T) {
	const n = 100
	cfg := AdditiveConfig{D: 3, Seed: 17}
	rng := rand.New(rand.NewSource(11))

	live := NewAdditive(n, cfg)
	live.EnableDecodeCache(true)
	var total []stream.Update
	add := func(count int) {
		var batch []stream.Update
		for j := 0; j < count; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			batch = append(batch, stream.Update{U: u, V: v, Delta: 1})
		}
		if err := live.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
		total = append(total, batch...)
	}
	add(300)
	for round := 0; round < 5; round++ {
		for _, workers := range []int{1, 2, 4} {
			p := parallel.Default().WithWorkers(workers)
			got, err := live.ExtractOpts(p)
			if err != nil {
				t.Fatalf("round %d workers %d: live: %v", round, workers, err)
			}
			cold := NewAdditive(n, cfg)
			if err := cold.AddBatch(total); err != nil {
				t.Fatal(err)
			}
			want, err := cold.ExtractOpts(p)
			if err != nil {
				t.Fatalf("round %d workers %d: cold: %v", round, workers, err)
			}
			if !graphsEqual(got.Spanner, want.Spanner) {
				t.Fatalf("round %d workers %d: live additive spanner diverged", round, workers)
			}
			if got.LowDegree != want.LowDegree || got.Centers != want.Centers {
				t.Fatalf("round %d workers %d: diagnostics diverged: %d/%d vs %d/%d",
					round, workers, got.LowDegree, got.Centers, want.LowDegree, want.Centers)
			}
		}
		// Churn: a few deletions of present edges plus fresh inserts.
		var batch []stream.Update
		for j := 0; j < 3; j++ {
			e := total[rng.Intn(len(total))]
			if e.Delta > 0 {
				batch = append(batch, stream.Update{U: e.U, V: e.V, Delta: -1})
				total = append(total, stream.Update{U: e.U, V: e.V, Delta: -1})
			}
		}
		if err := live.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
		add(3)
	}
}

// TestAdditiveMarshalRestoresElow pins the purity of the wire format:
// a state that has been queried (and so carries E_low subtractions)
// marshals to the same bytes as a never-queried twin.
func TestAdditiveMarshalRestoresElow(t *testing.T) {
	const n = 60
	cfg := AdditiveConfig{D: 2, Seed: 23}
	rng := rand.New(rand.NewSource(29))
	a := NewAdditive(n, cfg)
	b := NewAdditive(n, cfg)
	for i := 0; i < 150; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		up := stream.Update{U: u, V: v, Delta: 1}
		if err := a.Update(up); err != nil {
			t.Fatal(err)
		}
		if err := b.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.ExtractOpts(parallel.Default()); err != nil {
		t.Fatal(err)
	}
	encA, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	encB, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(encA) != string(encB) {
		t.Fatal("queried state marshals differently from pure twin")
	}
}
