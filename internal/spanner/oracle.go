package spanner

import (
	"math"

	"dynstream/internal/graph"
)

// DistanceOracle answers approximate distance queries from a spanner —
// the query object the paper's introduction motivates ("an important
// type of query is a distance query between nodes in the graph") and
// the oracle interface Section 6 plugs into the KP12 reduction:
// d(u,v) <= Query(u,v) <= Stretch·d(u,v).
//
// BFS trees are computed lazily per source and memoized, so a workload
// of q queries from s distinct sources costs O(s·(n+m_H)) plus O(1)
// per repeated-source query.
type DistanceOracle struct {
	h        *graph.Graph
	stretch  float64
	weighted bool
	hop      map[int][]int
	wdist    map[int][]float64
}

// NewDistanceOracle wraps a spanner result with hop-distance queries
// (unweighted graphs). The stretch bound is 2^k for Theorem 1 spanners.
func NewDistanceOracle(res *Result, k int) *DistanceOracle {
	return &DistanceOracle{
		h:       res.Spanner,
		stretch: math.Pow(2, float64(k)),
		hop:     map[int][]int{},
	}
}

// NewWeightedDistanceOracle wraps a weighted spanner result (built by
// BuildTwoPassWeighted) with Dijkstra queries; the stretch bound is
// classBase·2^k.
func NewWeightedDistanceOracle(res *Result, k int, classBase float64) *DistanceOracle {
	return &DistanceOracle{
		h:        res.Spanner,
		stretch:  classBase * math.Pow(2, float64(k)),
		weighted: true,
		wdist:    map[int][]float64{},
	}
}

// Stretch returns the multiplicative error bound of Query.
func (o *DistanceOracle) Stretch() float64 { return o.stretch }

// Query returns the spanner distance between u and v; +Inf if they are
// disconnected. The true distance d satisfies d <= Query <= Stretch·d
// (up to the whp failure probability of the construction).
func (o *DistanceOracle) Query(u, v int) float64 {
	if u == v {
		return 0
	}
	if o.weighted {
		d, ok := o.wdist[u]
		if !ok {
			d = o.h.Dijkstra(u)
			o.wdist[u] = d
		}
		return d[v]
	}
	d, ok := o.hop[u]
	if !ok {
		d = o.h.BFS(u)
		o.hop[u] = d
	}
	if d[v] < 0 {
		return math.Inf(1)
	}
	return float64(d[v])
}

// Connected reports whether u and v are connected in the spanner —
// equal (whp) to connectivity in the original graph, since spanners
// preserve components exactly.
func (o *DistanceOracle) Connected(u, v int) bool {
	return !math.IsInf(o.Query(u, v), 1) && o.Query(u, v) < 1e307
}
