package spanner

import (
	"math"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// maxStretch returns the maximum over sampled vertex pairs of
// d_H(u,v)/d_G(u,v) for unweighted graphs, verifying d_H >= d_G too.
func maxStretch(t *testing.T, g, h *graph.Graph, sources int) float64 {
	t.Helper()
	worst := 1.0
	n := g.N()
	step := 1
	if sources > 0 && n > sources {
		step = n / sources
	}
	for src := 0; src < n; src += step {
		dg := g.BFS(src)
		dh := h.BFS(src)
		for v := 0; v < n; v++ {
			if dg[v] <= 0 {
				continue
			}
			if dh[v] == -1 {
				t.Fatalf("spanner disconnects %d from %d", src, v)
			}
			if dh[v] < dg[v] {
				t.Fatalf("spanner shortcut: d_H(%d,%d)=%d < d_G=%d", src, v, dh[v], dg[v])
			}
			s := float64(dh[v]) / float64(dg[v])
			if s > worst {
				worst = s
			}
		}
	}
	return worst
}

func buildFromGraph(t *testing.T, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	st := stream.FromGraph(g, cfg.Seed+1000)
	res, err := BuildTwoPass(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoPassSubgraph(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.15, 1)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 2})
	if !res.Spanner.IsSubgraphOf(g) {
		t.Error("spanner contains non-graph edges")
	}
}

func TestTwoPassStretchK2(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.15, 3)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 4})
	if s := maxStretch(t, g, res.Spanner, 20); s > 4 {
		t.Errorf("stretch %v exceeds 2^2 = 4", s)
	}
}

func TestTwoPassStretchK3(t *testing.T) {
	g := graph.ConnectedGNP(80, 0.12, 5)
	res := buildFromGraph(t, g, Config{K: 3, Seed: 6})
	if s := maxStretch(t, g, res.Spanner, 16); s > 8 {
		t.Errorf("stretch %v exceeds 2^3 = 8", s)
	}
}

func TestTwoPassK1IsTwoSpanner(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.2, 7)
	res := buildFromGraph(t, g, Config{K: 1, Seed: 8})
	if s := maxStretch(t, g, res.Spanner, 40); s > 2 {
		t.Errorf("stretch %v exceeds 2^1 = 2", s)
	}
}

func TestTwoPassPathPreserved(t *testing.T) {
	// On a path every edge is a bridge; the spanner must contain all of
	// them exactly (any missing edge would disconnect the graph).
	g := graph.Path(50)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 9})
	if res.Spanner.M() != g.M() {
		t.Errorf("path spanner has %d edges, want %d", res.Spanner.M(), g.M())
	}
}

func TestTwoPassGrid(t *testing.T) {
	g := graph.Grid(8, 8)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 10})
	if s := maxStretch(t, g, res.Spanner, 16); s > 4 {
		t.Errorf("grid stretch %v exceeds 4", s)
	}
}

func TestTwoPassDeletionStream(t *testing.T) {
	// The same final graph delivered with heavy churn must produce a
	// valid spanner: deleted edges must never appear.
	g := graph.ConnectedGNP(50, 0.15, 11)
	st := stream.WithChurn(g, 400, 12)
	res, err := BuildTwoPass(st, Config{K: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spanner.IsSubgraphOf(g) {
		t.Fatal("churn stream leaked deleted edges into spanner")
	}
	if s := maxStretch(t, g, res.Spanner, 10); s > 4 {
		t.Errorf("stretch %v exceeds 4 under churn", s)
	}
}

func TestTwoPassDisconnectedGraph(t *testing.T) {
	g := graph.New(40)
	for b := 0; b < 2; b++ {
		for i := 0; i < 19; i++ {
			g.AddUnitEdge(b*20+i, b*20+i+1)
		}
	}
	res := buildFromGraph(t, g, Config{K: 2, Seed: 14})
	// Components must be preserved exactly (no cross edges invented,
	// no component disconnected).
	_, cG := g.Components()
	_, cH := res.Spanner.Components()
	if cG != cH {
		t.Errorf("spanner has %d components, graph has %d", cH, cG)
	}
	if !res.Spanner.IsSubgraphOf(g) {
		t.Error("invented edges")
	}
}

func TestTwoPassEmptyGraph(t *testing.T) {
	st := stream.NewMemoryStream(10)
	res, err := BuildTwoPass(st, Config{K: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.M() != 0 {
		t.Errorf("empty graph produced %d edges", res.Spanner.M())
	}
}

func TestTwoPassSingleEdge(t *testing.T) {
	st := stream.NewMemoryStream(5)
	_ = st.Append(stream.Update{U: 1, V: 3, Delta: 1})
	res, err := BuildTwoPass(st, Config{K: 2, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spanner.HasEdge(1, 3) || res.Spanner.M() != 1 {
		t.Errorf("spanner = %v", res.Spanner.Edges())
	}
}

func TestTwoPassCompleteGraphSparsifies(t *testing.T) {
	// K_n has Θ(n²) edges; a 2^k spanner should keep far fewer.
	g := graph.Complete(64)
	res := buildFromGraph(t, g, Config{K: 3, Seed: 17})
	if res.Spanner.M() >= g.M()/2 {
		t.Errorf("spanner kept %d of %d edges — no compression", res.Spanner.M(), g.M())
	}
	if s := maxStretch(t, g, res.Spanner, 16); s > 8 {
		t.Errorf("stretch %v", s)
	}
}

func TestTwoPassSizeBound(t *testing.T) {
	// Lemma 12: |E'| = O(k n^{1+1/k} log n). Check with constant 4.
	n := 100
	g := graph.GNP(n, 0.3, 18)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 19})
	bound := 4 * 2 * math.Pow(float64(n), 1.5) * math.Log2(float64(n))
	if float64(res.Spanner.M()) > bound {
		t.Errorf("|E'| = %d exceeds size bound %v", res.Spanner.M(), bound)
	}
}

func TestTwoPassMultigraphMultiplicities(t *testing.T) {
	st := stream.NewMemoryStream(6)
	// Edge (0,1) multiplicity 3, edge (1,2) multiplicity 1 after churn.
	for i := 0; i < 3; i++ {
		_ = st.Append(stream.Update{U: 0, V: 1, Delta: 1})
	}
	_ = st.Append(stream.Update{U: 1, V: 2, Delta: 1})
	_ = st.Append(stream.Update{U: 1, V: 2, Delta: -1})
	_ = st.Append(stream.Update{U: 1, V: 2, Delta: 1})
	res, err := BuildTwoPass(st, Config{K: 2, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spanner.HasEdge(0, 1) || !res.Spanner.HasEdge(1, 2) {
		t.Errorf("spanner = %v", res.Spanner.Edges())
	}
}

func TestTwoPassAugmentedSuperset(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.15, 21)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 22, CollectAugmented: true})
	if res.Augmented == nil {
		t.Fatal("augmented graph not collected")
	}
	if !res.Spanner.IsSubgraphOf(res.Augmented) {
		t.Error("spanner not contained in augmented edge set")
	}
	if !res.Augmented.IsSubgraphOf(g) {
		t.Error("augmented set contains non-graph edges")
	}
}

func TestTwoPassPhaseErrors(t *testing.T) {
	tp := NewTwoPass(10, Config{K: 2, Seed: 23})
	if err := tp.Pass2Update(stream.Update{U: 0, V: 1, Delta: 1}); err == nil {
		t.Error("Pass2Update before EndPass1 accepted")
	}
	if _, err := tp.Finish(); err == nil {
		t.Error("Finish before pass 2 accepted")
	}
	if err := tp.EndPass1(); err != nil {
		t.Fatal(err)
	}
	if err := tp.EndPass1(); err == nil {
		t.Error("double EndPass1 accepted")
	}
	if err := tp.Pass1Update(stream.Update{U: 0, V: 1, Delta: 1}); err == nil {
		t.Error("Pass1Update after EndPass1 accepted")
	}
}

func TestTwoPassSpaceAccounting(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.1, 24)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 25})
	if res.SpaceWords <= 0 {
		t.Error("space accounting must be positive")
	}
}

func TestTwoPassReliabilityAcrossSeeds(t *testing.T) {
	// The guarantee is whp; count stretch violations across seeds.
	g := graph.ConnectedGNP(50, 0.15, 26)
	bad := 0
	for seed := uint64(0); seed < 8; seed++ {
		st := stream.FromGraph(g, seed)
		res, err := BuildTwoPass(st, Config{K: 2, Seed: seed * 7})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Spanner.IsSubgraphOf(g) {
			t.Fatalf("seed %d: non-subgraph", seed)
		}
		dg := g.BFS(0)
		dh := res.Spanner.BFS(0)
		for v := 1; v < g.N(); v++ {
			if dg[v] > 0 && (dh[v] == -1 || dh[v] > 4*dg[v]) {
				bad++
				break
			}
		}
	}
	if bad > 1 {
		t.Errorf("stretch bound violated on %d/8 seeds", bad)
	}
}

func TestTwoPassWeighted(t *testing.T) {
	base := graph.ConnectedGNP(40, 0.2, 27)
	g := graph.RandomWeighted(base, 1, 64, 28)
	st := stream.FromGraph(g, 29)
	const classBase = 2.0
	res, err := BuildTwoPassWeighted(st, Config{K: 2, Seed: 30}, classBase)
	if err != nil {
		t.Fatal(err)
	}
	// Every spanner edge exists in g (weights are rounded up to the
	// class boundary, so compare endpoints only).
	for _, e := range res.Spanner.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("weighted spanner invented edge (%d,%d)", e.U, e.V)
		}
		trueW, _ := g.Weight(e.U, e.V)
		if e.W < trueW || e.W > classBase*trueW {
			t.Fatalf("edge (%d,%d) weight %v outside [w, 2w] of true %v", e.U, e.V, e.W, trueW)
		}
	}
	// Weighted stretch: d_H <= classBase · 2^k · d_G, and d_H >= d_G.
	for src := 0; src < 10; src++ {
		dgs := g.Dijkstra(src)
		dhs := res.Spanner.Dijkstra(src)
		for v := 0; v < g.N(); v++ {
			if v == src {
				continue
			}
			if dhs[v] > classBase*4*dgs[v]+1e-9 {
				t.Fatalf("weighted stretch: d_H(%d,%d)=%v vs bound %v",
					src, v, dhs[v], classBase*4*dgs[v])
			}
			if dhs[v] < dgs[v]-1e-9 {
				t.Fatalf("weighted shortcut at (%d,%d)", src, v)
			}
		}
	}
}

func TestTwoPassWeightedBadBase(t *testing.T) {
	st := stream.NewMemoryStream(4)
	if _, err := BuildTwoPassWeighted(st, Config{K: 2}, 1.0); err == nil {
		t.Error("classBase=1 accepted")
	}
}

func TestTwoPassStats(t *testing.T) {
	g := graph.ConnectedGNP(60, 0.15, 31)
	res := buildFromGraph(t, g, Config{K: 2, Seed: 32})
	st := res.Stats
	if len(st.CopiesPerLevel) != 2 || len(st.TerminalsPerLevel) != 2 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.CopiesPerLevel[0] != g.N() {
		t.Errorf("level-0 copies = %d, want n = %d (C_0 = V)", st.CopiesPerLevel[0], g.N())
	}
	totalTerm := 0
	for i, c := range st.TerminalsPerLevel {
		if c > st.CopiesPerLevel[i] {
			t.Errorf("level %d: more terminals than copies", i)
		}
		totalTerm += c
	}
	if totalTerm != res.Terminals {
		t.Errorf("terminals mismatch: %d vs %d", totalTerm, res.Terminals)
	}
	// Level k-1 copies are all terminal by construction.
	if st.TerminalsPerLevel[1] != st.CopiesPerLevel[1] {
		t.Errorf("level k-1 not all terminal: %d of %d",
			st.TerminalsPerLevel[1], st.CopiesPerLevel[1])
	}
	if st.WitnessEdges+st.RecoveredEdges < res.Spanner.M() {
		t.Errorf("edge accounting: witness %d + recovered %d < spanner %d",
			st.WitnessEdges, st.RecoveredEdges, res.Spanner.M())
	}
	if st.MaxClusterSize < 1 || st.MaxClusterSize > g.N() {
		t.Errorf("max cluster size %d out of range", st.MaxClusterSize)
	}
}
