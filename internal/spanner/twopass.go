// Package spanner implements the paper's core contributions:
//
//   - BuildTwoPass: the two-pass 2^k-multiplicative spanner of Theorem 1
//     (Algorithms 1 and 2, Section 3) in Õ(n^{1+1/k}) space.
//   - BuildAdditive: the single-pass O(n/d)-additive spanner of
//     Theorem 3 (Algorithm 3, Section 4) in Õ(nd) space.
//
// Both consume a dynamic stream of edge insertions and deletions and
// never materialize the graph; every bit of state is a linear sketch
// plus the O(n)-word cluster bookkeeping the paper allows.
package spanner

import (
	"fmt"
	"math"
	"sort"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
	"dynstream/internal/obs"
	"dynstream/internal/parallel"
	"dynstream/internal/sketch"
	"dynstream/internal/stream"
)

// Config parameterizes the two-pass spanner. The paper's constants
// ("C log n" budgets) are exposed as knobs so experiments can trade
// failure probability against space.
type Config struct {
	// K is the stretch exponent: the output is a 2^K-spanner using
	// Õ(n^{1+1/K}) space. K >= 1.
	K int
	// Seed selects all randomness (sample sets and sketches).
	Seed uint64
	// Budget is the sparse-recovery budget B of each first-pass sketch
	// (the paper's O(log n)); default max(8, 2·ceil(log2 n)).
	Budget int
	// TableFactor scales the second-pass hash tables relative to the
	// Claim 11 bound n^{(i+1)/k}·log2(n); default 1.
	TableFactor float64
	// Levels overrides the number of edge-subsampling levels E_j
	// (default 2·ceil(log2 n), the paper's log n²). Exposed for the
	// ablation experiment A1.
	Levels int
	// CollectAugmented records every edge any decoded sketch revealed —
	// the Ω(R) sets of Claims 16/18/20 needed by the sparsifier.
	CollectAugmented bool
}

func (c Config) withDefaults(n int) Config {
	if c.K < 1 {
		c.K = 1
	}
	log2n := int(math.Ceil(math.Log2(float64(n + 1))))
	if log2n < 1 {
		log2n = 1
	}
	if c.Budget == 0 {
		c.Budget = 2 * log2n
		if c.Budget < 8 {
			c.Budget = 8
		}
	}
	if c.TableFactor == 0 {
		c.TableFactor = 1
	}
	return c
}

// Result is the output of a spanner construction.
type Result struct {
	// Spanner is the subgraph H with the stretch guarantee.
	Spanner *graph.Graph
	// Augmented additionally contains every edge of G whose adjacency-
	// matrix location the algorithm's execution path depended on
	// (Claim 20). Nil unless Config.CollectAugmented.
	Augmented *graph.Graph
	// SpaceWords is the sketch memory footprint in 64-bit words (the
	// quantity the paper's space bounds describe; cluster bookkeeping
	// is O(n) words on top).
	SpaceWords int
	// Terminals is the number of terminal cluster copies (diagnostics).
	Terminals int
	// Stats carries construction diagnostics for the experiments.
	Stats Stats
}

// Stats summarizes the cluster structure the first pass built — the
// quantities Claims 11 and Lemma 12 reason about.
type Stats struct {
	// CopiesPerLevel[i] is |C_i| (cluster copies at level i).
	CopiesPerLevel []int
	// TerminalsPerLevel[i] counts terminal copies at level i.
	TerminalsPerLevel []int
	// MaxClusterSize is the largest terminal cluster's vertex count.
	MaxClusterSize int
	// WitnessEdges counts first-pass (non-terminal) spanner edges.
	WitnessEdges int
	// RecoveredEdges counts second-pass neighborhood-recovery edges.
	RecoveredEdges int
}

// copyNode is one node of the cluster forest F. The forest lives on
// V × {0..k-1} copies (paper, footnote 2): vertex u has a copy at every
// level i with u ∈ C_i.
type copyNode struct {
	u        int
	level    int
	parent   int    // index into copies; -1 if root
	witness  [2]int // σ(edge to parent): (a, b), a in this tree, b the parent vertex
	terminal bool
	members  []int // connectivity members: {u} ∪ children's members, deduped
}

// TwoPass is the streaming state of Algorithms 1–2. Use BuildTwoPass
// for the common case; the explicit-passes API (NewTwoPass, Pass1Update,
// EndPass1, Pass2Update, Finish) exists for callers that drive streams
// themselves (e.g. the distributed example).
type TwoPass struct {
	cfg   Config
	n     int
	k     int
	jMax  int // edge subsampling levels 0..jMax
	yMax  int // vertex subsampling levels 0..yMax
	log2n int

	inC       [][]bool // inC[r][u]: u ∈ C_r (inC[0] is all-true)
	edgeLevel *hashing.Poly
	yLevel    *hashing.Poly

	// vertexSk[u][r-1][j] = SKETCH^{r,j}(({u} × C_r) ∩ E ∩ E_j),
	// r ∈ [1, k-1]. Keys are directed pairs u*n + c.
	vertexSk [][][]*sketch.SketchB

	copies      []copyNode
	terminalsOf [][]int // per vertex: sorted terminal copy indices containing it

	// tables[t][j] is H^t_j for terminal copy index t (nil for
	// non-terminal copies).
	tables map[int][]*sketch.KeyedEdgeSketch

	augmented map[[2]int]bool
	phase     int // 0 = pass 1, 1 = pass 2, 2 = finished

	// Live-handle state (see StartLive / QueryLive in live.go). A live
	// state keeps pass 1 open forever: queries re-run the offline halves
	// of Algorithms 1–2 on demand, reusing cached per-center attachments
	// and per-terminal recoveries whose state digests are unchanged.
	caching    bool                      // decode caches enabled
	liveSrc    stream.Stream             // base stream (pass-2 replays)
	liveLog    []stream.Update           // updates applied after StartLive
	liveSynced int                       // liveLog prefix folded into tables
	clusterKey string                    // digest of current cluster structure
	attach     map[attachKey]attachEntry // per-(level, center) decode cache
	recCache   map[int]recEntry          // per-terminal recovery cache

	// Cumulative decode-cache outcomes across both cache consult sites
	// (per-center attachments, per-terminal recoveries) while caching is
	// on. Read by DecodeCacheStats for operational visibility.
	cacheHits   uint64
	cacheMisses uint64
}

// DecodeCacheStats reports the cumulative decode-cache hit and miss
// counts across this state's attachment and recovery caches. Counters
// are cumulative across queries and survive cache invalidation.
func (tp *TwoPass) DecodeCacheStats() (hits, misses uint64) {
	return tp.cacheHits, tp.cacheMisses
}

// NewTwoPass creates the streaming state for a graph on n vertices.
func NewTwoPass(n int, cfg Config) *TwoPass {
	cfg = cfg.withDefaults(n)
	k := cfg.K
	log2n := int(math.Ceil(math.Log2(float64(n + 1))))
	if log2n < 1 {
		log2n = 1
	}
	jMax := 2 * log2n
	if cfg.Levels > 0 {
		jMax = cfg.Levels - 1
	}
	tp := &TwoPass{
		cfg:       cfg,
		n:         n,
		k:         k,
		jMax:      jMax,
		yMax:      log2n,
		log2n:     log2n,
		edgeLevel: hashing.NewPoly(hashing.Mix(cfg.Seed, 0xe), 8),
		yLevel:    hashing.NewPoly(hashing.Mix(cfg.Seed, 0x11), 8),
		augmented: map[[2]int]bool{},
	}
	// Sample the center hierarchy C_0 = V ⊇ ... sampled at n^{-r/k}.
	tp.inC = make([][]bool, k)
	for r := 0; r < k; r++ {
		tp.inC[r] = make([]bool, n)
		rate := math.Pow(float64(n), -float64(r)/float64(k))
		h := hashing.NewPoly(hashing.Mix(cfg.Seed, 0xc, uint64(r)), 8)
		for u := 0; u < n; u++ {
			tp.inC[r][u] = r == 0 || h.Bernoulli(uint64(u), rate)
		}
	}
	// First-pass sketches, shared hash functions per (r, j) so that
	// summing over cluster members is a sketch of the union. The seed
	// depends only on (r, j), so one SketchBFamily per pair supplies
	// all n per-vertex instances — hashes and power tables are derived
	// k·jMax times, not n·k·jMax times.
	if k > 1 {
		fams := make([][]*sketch.SketchBFamily, k-1)
		for r := 1; r < k; r++ {
			fams[r-1] = make([]*sketch.SketchBFamily, tp.jMax+1)
			for j := 0; j <= tp.jMax; j++ {
				fams[r-1][j] = sketch.NewSketchBFamily(
					hashing.Mix(cfg.Seed, 0x5e, uint64(r), uint64(j)), cfg.Budget,
					sketch.SketchConfig{})
			}
		}
		tp.vertexSk = make([][][]*sketch.SketchB, n)
		for u := 0; u < n; u++ {
			tp.vertexSk[u] = make([][]*sketch.SketchB, k-1)
			for r := 1; r < k; r++ {
				row := make([]*sketch.SketchB, tp.jMax+1)
				for j := 0; j <= tp.jMax; j++ {
					row[j] = fams[r-1][j].New()
				}
				tp.vertexSk[u][r-1] = row
			}
		}
	}
	return tp
}

// N returns the vertex count.
func (tp *TwoPass) N() int { return tp.n }

// Phase reports the build phase: 0 while pass 1 is open, 1 after
// EndPass1 (pass 2 open), 2 after Finish. Remote workers use it to
// route ingest on a state decoded from the wire.
func (tp *TwoPass) Phase() int { return tp.phase }

// pairLevel is the geometric level of the unordered pair {a, b}: the
// pair belongs to E_j iff pairLevel >= j.
func (tp *TwoPass) pairLevel(a, b int) int {
	return tp.edgeLevel.Level(stream.PairKey(a, b, tp.n))
}

// Pass1Update ingests one stream update during the first pass.
func (tp *TwoPass) Pass1Update(u stream.Update) error {
	if tp.phase != 0 {
		return fmt.Errorf("spanner: Pass1Update called in phase %d", tp.phase)
	}
	if tp.k == 1 {
		return nil // no clustering pass needed for k=1
	}
	lvl := tp.pairLevel(u.U, u.V)
	maxJ := lvl
	if maxJ > tp.jMax {
		maxJ = tp.jMax
	}
	d := int64(u.Delta)
	keyUV := uint64(u.U)*uint64(tp.n) + uint64(u.V)
	keyVU := uint64(u.V)*uint64(tp.n) + uint64(u.U)
	for r := 1; r < tp.k; r++ {
		// Edge {a, b} appears in a's sketch row r iff b ∈ C_r, under
		// the directed key a*n+b, and vice versa. The two endpoint
		// sketches of a given (r, j) share one family table, so when
		// both endpoints are live their fingerprint powers come from a
		// single shared window traversal (Fkey2).
		uLive, vLive := tp.inC[r][u.V], tp.inC[r][u.U]
		switch {
		case uLive && vLive:
			for j := 0; j <= maxJ; j++ {
				su, sv := tp.vertexSk[u.U][r-1][j], tp.vertexSk[u.V][r-1][j]
				fu, fv := su.Fkey2(keyUV, keyVU)
				su.AddFkey(keyUV, d, fu)
				sv.AddFkey(keyVU, d, fv)
			}
		case uLive:
			for j := 0; j <= maxJ; j++ {
				tp.vertexSk[u.U][r-1][j].Add(keyUV, d)
			}
		case vLive:
			for j := 0; j <= maxJ; j++ {
				tp.vertexSk[u.V][r-1][j].Add(keyVU, d)
			}
		}
	}
	return nil
}

// Pass1AddBatch ingests a batch of first-pass updates; bit-identical
// to calling Pass1Update per element.
func (tp *TwoPass) Pass1AddBatch(batch []stream.Update) error {
	for _, u := range batch {
		if err := tp.Pass1Update(u); err != nil {
			return err
		}
	}
	return nil
}

// EndPass1 runs the offline cluster construction (Algorithm 1, lines
// 8–20): for each level i and each u ∈ C_i, the summed sketch over the
// current cluster is decoded from the sparsest subsampling level down,
// yielding a parent in C_{i+1} and a witness edge, or terminal status.
func (tp *TwoPass) EndPass1() error {
	return tp.EndPass1Opts(parallel.Default())
}

// EndPass1Opts is the policy-driven cluster construction: within each
// level the per-center work — summing the cluster's sketches, decoding
// from the sparsest subsampling level down, choosing the parent — is
// independent, so it fans across the policy's decode workers with one
// reusable scratch sketch per worker. Everything a later center could
// observe (parent membership folds, the augmented edge set, terminal
// marks) is applied serially in ascending center order afterwards, so
// the cluster structure is bit-identical to the serial construction.
func (tp *TwoPass) EndPass1Opts(p *parallel.Policy) error {
	if tp.phase != 0 {
		return fmt.Errorf("spanner: EndPass1 called in phase %d", tp.phase)
	}
	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return fmt.Errorf("spanner: %w", err)
	}
	cr, err := tp.clusterize(p)
	if err != nil {
		return err
	}
	tp.copies = cr.copies
	tp.terminalsOf = cr.terminalsOf
	tp.clusterKey = cr.structKey
	for _, e := range cr.augmented {
		tp.augmented[e] = true
	}
	tables, err := tp.allocTablesOpts(p)
	if err != nil {
		return err
	}
	tp.tables = tables
	tp.phase = 1
	return nil
}

// clusterResult is one run of the offline cluster construction
// (Algorithm 1, lines 8–20). clusterize never mutates tp.copies /
// tp.terminalsOf, so live states can re-run it per query and compare
// the structure digest against the previous run.
type clusterResult struct {
	copies      []copyNode
	terminalsOf [][]int
	structKey   string   // injective digest of the parent/terminal forest
	augmented   [][2]int // every edge any cluster decode revealed
}

// clusterize runs the offline cluster construction: for each level i
// and each u ∈ C_i, the summed sketch over the current cluster is
// decoded from the sparsest subsampling level down, yielding a parent
// in C_{i+1} and a witness edge, or terminal status. Within each level
// the per-center work is independent, so it fans across the policy's
// decode workers with one reusable scratch sketch per worker; all
// structure mutations (parent assignment, member folds, terminal
// marks) are applied serially in ascending center order, so the result
// is bit-identical to the serial construction.
//
// With the decode cache enabled (EnableDecodeCache), each center's
// attachment is keyed by a state digest of its member list and the
// summed generation counter of every pass-1 sketch the decode would
// read; an unchanged digest proves the sketches are bit-identical to
// the cached decode (generations are monotonic), so only centers whose
// clusters actually absorbed updates are re-decoded.
func (tp *TwoPass) clusterize(p *parallel.Policy) (*clusterResult, error) {
	n, k := tp.n, tp.k
	cr := &clusterResult{}

	// Copy index layout: level i copies are contiguous. The layout is a
	// pure function of the center hierarchy, so copy indices — and with
	// them cached parent pointers and table seeds — are stable across
	// re-runs.
	copyIdx := make([]map[int]int, k) // level -> vertex -> copy index
	for i := 0; i < k; i++ {
		copyIdx[i] = map[int]int{}
		for u := 0; u < n; u++ {
			if tp.inC[i][u] {
				copyIdx[i][u] = len(cr.copies)
				cr.copies = append(cr.copies, copyNode{
					u: u, level: i, parent: -1, members: []int{u},
				})
			}
		}
	}

	// Materialize the lazy fingerprint tables of the shared per-(r, j)
	// sketch shapes before fanning out: every decode of a level touches
	// them, and materialization is confined to one goroutine.
	if k > 1 && n > 0 {
		for r := 1; r < k; r++ {
			for j := 0; j <= tp.jMax; j++ {
				tp.vertexSk[0][r-1][j].Warm()
			}
		}
	}

	scratch := make([]*sketch.SketchB, p.Workers())

	for i := 0; i < k-1; i++ {
		var sp obs.Span
		if tr := p.Tracer(); tr != nil {
			sp = tr.Span(fmt.Sprintf("spanner/cluster/level%02d", i))
		}
		hits0, misses0 := tp.cacheHits, tp.cacheMisses
		// Centers of level i in ascending vertex order — the serial
		// iteration order the result application below replays.
		centers := make([]int, 0, len(copyIdx[i]))
		for u := 0; u < n; u++ {
			if _, ok := copyIdx[i][u]; ok {
				centers = append(centers, u)
			}
		}
		results := make([]attachResult, len(centers))
		// Split centers into cache hits and dirty (to-decode) ones.
		// Cluster members of level i were frozen when level i-1 was
		// applied, so digests and decodes here are race-free.
		dirty := make([]int, 0, len(centers))
		var keys []string
		if tp.caching {
			keys = make([]string, len(centers))
			for idx, u := range centers {
				c := &cr.copies[copyIdx[i][u]]
				keys[idx] = tp.attachDigest(i, c.members)
				if ent, ok := tp.attach[attachKey{level: i, u: u}]; ok && ent.key == keys[idx] {
					tp.cacheHits++
					results[idx] = ent.res
					continue
				}
				tp.cacheMisses++
				dirty = append(dirty, idx)
			}
		} else {
			for idx := range centers {
				dirty = append(dirty, idx)
			}
		}
		err := parallel.ForEachWorkerSubset(p, dirty, func(w, idx int) error {
			u := centers[idx]
			c := &cr.copies[copyIdx[i][u]]
			return tp.decodeAttachment(scratch, w, i, c.members, copyIdx, &results[idx])
		})
		if err != nil {
			return nil, err
		}
		if tp.caching {
			if tp.attach == nil {
				tp.attach = map[attachKey]attachEntry{}
			}
			for _, idx := range dirty {
				tp.attach[attachKey{level: i, u: centers[idx]}] = attachEntry{
					key: keys[idx], res: results[idx],
				}
			}
		}
		// Apply in center order: parent assignment, member folds into
		// the next level's clusters, augmented recording.
		var attached int64
		for idx, u := range centers {
			c := &cr.copies[copyIdx[i][u]]
			res := &results[idx]
			cr.augmented = append(cr.augmented, res.augmented...)
			if !res.attached {
				c.terminal = true
				continue
			}
			c.parent = res.parent
			c.witness = res.witness
			par := &cr.copies[res.parent]
			par.members = mergeSortedUnique(par.members, c.members)
			attached++
		}
		sp.End(
			obs.A("centers", int64(len(centers))),
			obs.A("dirty", int64(len(dirty))),
			obs.A("attached", attached),
			obs.A("cache_hit", int64(tp.cacheHits-hits0)),
			obs.A("cache_miss", int64(tp.cacheMisses-misses0)))
	}
	// Level k-1 copies are always terminal.
	for u := range copyIdx[k-1] {
		cr.copies[copyIdx[k-1][u]].terminal = true
	}

	// terminalsOf[a]: terminal copies whose cluster contains a. Copy
	// (a, i)'s chain ends at the root of its tree, which is terminal.
	cr.terminalsOf = make([][]int, n)
	for i := 0; i < k; i++ {
		for u, ci := range copyIdx[i] {
			root := ci
			for cr.copies[root].parent != -1 {
				root = cr.copies[root].parent
			}
			if !cr.copies[root].terminal {
				return nil, fmt.Errorf("spanner: internal: non-terminal root copy %d", root)
			}
			cr.terminalsOf[u] = append(cr.terminalsOf[u], root)
		}
	}
	for u := range cr.terminalsOf {
		sort.Ints(cr.terminalsOf[u])
		cr.terminalsOf[u] = compactInts(cr.terminalsOf[u])
	}
	cr.structKey = clusterStructKey(cr.copies)
	return cr, nil
}

// decodeAttachment decodes one center's attachment at level i:
// Q^{i+1}_j = Σ_{v ∈ members} S^{i+1}_j(v), decoded from the sparsest
// subsampling level down; the smallest valid key wins (deterministic).
func (tp *TwoPass) decodeAttachment(scratch []*sketch.SketchB, w, i int, members []int, copyIdx []map[int]int, res *attachResult) error {
	n := tp.n
	r := i + 1
	for j := tp.jMax; j >= 0 && !res.attached; j-- {
		q := scratch[w]
		if q == nil {
			q = tp.vertexSk[members[0]][r-1][j].Clone()
			scratch[w] = q
		} else {
			q.SetTo(tp.vertexSk[members[0]][r-1][j])
		}
		for _, v := range members[1:] {
			if err := q.Merge(tp.vertexSk[v][r-1][j]); err != nil {
				return fmt.Errorf("spanner: pass1 merge: %w", err)
			}
		}
		items, decoded := q.Decode()
		if !decoded || len(items) == 0 {
			continue
		}
		// Deterministic choice: smallest key; validate support.
		keys := make([]uint64, 0, len(items))
		for key := range items {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, key := range keys {
			a := int(key / uint64(n))
			b := int(key % uint64(n))
			if a < 0 || a >= n || b < 0 || b >= n || a == b {
				continue // fingerprint-level corruption; skip
			}
			if !tp.inC[r][b] {
				continue
			}
			if tp.cfg.CollectAugmented {
				res.augmented = append(res.augmented, canonPair(a, b))
			}
			if !res.attached {
				res.parent = copyIdx[r][b]
				res.witness = [2]int{a, b}
				res.attached = true
			}
		}
	}
	return nil
}

func canonPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// allocTables builds the second-pass hash tables for terminal copies,
// sized per Claim 11: |N(T_u)| = O(n^{(i+1)/k} log n) for terminal
// u ∈ C_i. The table seeds are a deterministic function of the
// configuration and the copy index, so tables allocated by different
// pass-2 workers over the same cluster structure are mergeable.
func (tp *TwoPass) allocTables() map[int][]*sketch.KeyedEdgeSketch {
	tables, _ := tp.allocTablesOpts(parallel.Default()) // serial: cannot fail
	return tables
}

// allocTablesOpts is allocTables with the per-terminal row
// construction (yMax+1 keyed tables each, power tables included)
// fanned across the policy's workers; rows land indexed by terminal,
// so the result is identical to the serial construction.
func (tp *TwoPass) allocTablesOpts(p *parallel.Policy) (map[int][]*sketch.KeyedEdgeSketch, error) {
	n, k := tp.n, tp.k
	terms := make([]int, 0, len(tp.copies))
	for ci := range tp.copies {
		if tp.copies[ci].terminal {
			terms = append(terms, ci)
		}
	}
	rows, err := parallel.MapOpts(p, len(terms), func(i int) ([]*sketch.KeyedEdgeSketch, error) {
		ci := terms[i]
		c := &tp.copies[ci]
		capf := tp.cfg.TableFactor * float64(tp.log2n) *
			math.Pow(float64(n), float64(c.level+1)/float64(k))
		capacity := int(capf)
		if capacity < 8 {
			capacity = 8
		}
		if capacity > n {
			capacity = n // never more keys than vertices
		}
		row := make([]*sketch.KeyedEdgeSketch, tp.yMax+1)
		for j := 0; j <= tp.yMax; j++ {
			row[j] = sketch.NewKeyedEdgeSketch(
				hashing.Mix(tp.cfg.Seed, 0x7a, uint64(ci), uint64(j)), n, capacity)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	tables := make(map[int][]*sketch.KeyedEdgeSketch, len(terms))
	for i, ci := range terms {
		tables[ci] = rows[i]
	}
	return tables, nil
}

// mergeSortedUnique merges two ascending duplicate-free lists into one
// ascending duplicate-free list — the member-fold primitive of the
// cluster construction (lists may overlap when clusters share
// vertices).
func mergeSortedUnique(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// compactInts removes adjacent duplicates from a sorted slice, in
// place.
func compactInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func containsInt(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

// Pass2Update ingests one stream update during the second pass
// (Algorithm 2, lines 10–18): the update for edge (a, b) is routed into
// H^t_j for every terminal cluster t containing a but not b, at every
// vertex subsampling level j with a ∈ Y_j — and symmetrically for b.
func (tp *TwoPass) Pass2Update(u stream.Update) error {
	if tp.phase != 1 {
		return fmt.Errorf("spanner: Pass2Update called in phase %d", tp.phase)
	}
	tp.routePass2(u.U, u.V, int64(u.Delta))
	tp.routePass2(u.V, u.U, int64(u.Delta))
	return nil
}

func (tp *TwoPass) routePass2(a, b int, delta int64) {
	aLvl := int(tp.yLevel.Level(uint64(a)))
	maxJ := aLvl
	if maxJ > tp.yMax {
		maxJ = tp.yMax
	}
	for _, t := range tp.terminalsOf[a] {
		if containsInt(tp.terminalsOf[b], t) {
			continue // b inside the same cluster
		}
		row := tp.tables[t]
		for j := 0; j <= maxJ; j++ {
			row[j].Add(a, b, delta)
		}
	}
}

// Pass2AddBatch ingests a batch of second-pass updates; bit-identical
// to calling Pass2Update per element.
func (tp *TwoPass) Pass2AddBatch(batch []stream.Update) error {
	for _, u := range batch {
		if err := tp.Pass2Update(u); err != nil {
			return err
		}
	}
	return nil
}

// Finish completes Algorithm 2 (lines 20–33): witness edges for
// non-terminal copies, plus one recovered edge from every outside
// neighbor v into each terminal cluster.
func (tp *TwoPass) Finish() (*Result, error) {
	return tp.FinishOpts(parallel.Default())
}

// FinishOpts is the policy-driven decode half of Algorithm 2: each
// terminal copy's hash-table peeling and neighborhood recovery touches
// only that copy's tables, so the per-terminal recoveries fan across
// the policy's decode workers; recovered edges land indexed by
// terminal and are applied in the serial order, so the spanner is
// bit-identical to Finish's.
func (tp *TwoPass) FinishOpts(p *parallel.Policy) (*Result, error) {
	if tp.phase != 1 {
		return nil, fmt.Errorf("spanner: Finish called in phase %d", tp.phase)
	}
	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("spanner: %w", err)
	}
	tp.phase = 2
	return tp.extractOpts(p)
}

// extractOpts is the repeatable decode behind FinishOpts and QueryLive:
// witness edges from the cluster structure plus per-terminal
// neighborhood recovery from the pass-2 tables. It never mutates sketch
// state, so a live handle can call it after every churn round; with the
// decode cache enabled, a terminal whose table row generations are
// unchanged since its cached recovery is served from the cache instead
// of re-peeling all n outside vertices.
func (tp *TwoPass) extractOpts(p *parallel.Policy) (*Result, error) {
	sp := p.Tracer().Span("spanner/recover")
	hits0, misses0 := tp.cacheHits, tp.cacheMisses
	h := graph.New(tp.n)
	recovered := 0

	for ci := range tp.copies {
		c := &tp.copies[ci]
		if c.terminal {
			continue
		}
		h.AddUnitEdge(c.witness[0], c.witness[1])
	}

	terms := make([]int, 0, len(tp.copies))
	for ci := range tp.copies {
		if tp.copies[ci].terminal {
			terms = append(terms, ci)
		}
	}
	// Split terminals into recovery-cache hits and dirty ones; only the
	// dirty subset re-peels. Generation sums are collision-free over a
	// fixed row: each counter is monotonic, so an equal sum means every
	// table in the row is bit-identical to the cached decode.
	recs := make([][][2]int, len(terms))
	dirty := make([]int, 0, len(terms))
	gens := make([]uint64, len(terms))
	for i, ci := range terms {
		for _, t := range tp.tables[ci] {
			gens[i] += t.Gen()
		}
		if tp.caching {
			if ent, ok := tp.recCache[ci]; ok && ent.gens == gens[i] {
				tp.cacheHits++
				recs[i] = ent.edges
				continue
			}
			tp.cacheMisses++
		}
		dirty = append(dirty, i)
	}
	err := parallel.ForEachWorkerSubset(p, dirty, func(_, i int) error {
		ci := terms[i]
		row := tp.tables[ci]
		for v := 0; v < tp.n; v++ {
			if containsInt(tp.terminalsOf[v], ci) {
				continue // v inside the cluster
			}
			for j := tp.yMax; j >= 0; j-- {
				w, ok := row[j].DecodeKey(v)
				if !ok {
					continue
				}
				// The inside endpoint must actually belong to the
				// cluster; a fingerprint-level miss is discarded.
				if !containsInt(tp.terminalsOf[w], ci) {
					continue
				}
				recs[i] = append(recs[i], [2]int{w, v})
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if tp.caching {
		if tp.recCache == nil {
			tp.recCache = map[int]recEntry{}
		}
		for _, i := range dirty {
			tp.recCache[terms[i]] = recEntry{gens: gens[i], edges: recs[i]}
		}
	}
	for _, rec := range recs {
		for _, e := range rec {
			h.AddUnitEdge(e[0], e[1])
			recovered++
		}
	}
	sp.End(
		obs.A("terminals", int64(len(terms))),
		obs.A("dirty", int64(len(dirty))),
		obs.A("recovered", int64(recovered)),
		obs.A("cache_hit", int64(tp.cacheHits-hits0)),
		obs.A("cache_miss", int64(tp.cacheMisses-misses0)))

	res := &Result{Spanner: h, SpaceWords: tp.SpaceWords()}
	res.Stats.CopiesPerLevel = make([]int, tp.k)
	res.Stats.TerminalsPerLevel = make([]int, tp.k)
	for ci := range tp.copies {
		c := &tp.copies[ci]
		res.Stats.CopiesPerLevel[c.level]++
		if c.terminal {
			res.Terminals++
			res.Stats.TerminalsPerLevel[c.level]++
			if len(c.members) > res.Stats.MaxClusterSize {
				res.Stats.MaxClusterSize = len(c.members)
			}
		} else {
			res.Stats.WitnessEdges++
		}
	}
	res.Stats.RecoveredEdges = recovered
	if tp.cfg.CollectAugmented {
		// Recovered edges are already in h; the cluster-decode edges in
		// tp.augmented are the extra Ω(R) set of Claims 16/18/20.
		aug := h.Clone()
		for e := range tp.augmented {
			aug.AddUnitEdge(e[0], e[1])
		}
		res.Augmented = aug
	}
	return res, nil
}

// SpaceWords returns the sketch footprint in 64-bit words.
func (tp *TwoPass) SpaceWords() int {
	w := 0
	for _, perR := range tp.vertexSk {
		for _, row := range perR {
			for _, s := range row {
				w += s.SpaceWords()
			}
		}
	}
	for _, row := range tp.tables {
		for _, t := range row {
			w += t.SpaceWords()
		}
	}
	return w
}

// BuildTwoPass runs both passes of the 2^k-spanner construction over a
// replayable dynamic stream (Theorem 1). The stream must describe an
// unweighted (or uniformly weighted) graph; for weighted graphs use
// BuildTwoPassWeighted.
func BuildTwoPass(st stream.Stream, cfg Config) (*Result, error) {
	tp := NewTwoPass(st.N(), cfg)
	if err := stream.ReplayBatches(st, 0, tp.Pass1AddBatch); err != nil {
		return nil, fmt.Errorf("spanner: pass 1: %w", err)
	}
	if err := tp.EndPass1(); err != nil {
		return nil, err
	}
	if err := stream.ReplayBatches(st, 0, tp.Pass2AddBatch); err != nil {
		return nil, fmt.Errorf("spanner: pass 2: %w", err)
	}
	return tp.Finish()
}

// BuildTwoPassWeighted runs the weighted construction of Remark 14:
// edges are partitioned into geometric weight classes with ratio
// classBase (> 1), the unweighted construction runs per class, and the
// union is returned with each spanner edge carrying its class's upper
// weight bound — so distances in the spanner are between d_G and
// classBase·2^k·d_G.
func BuildTwoPassWeighted(st stream.Stream, cfg Config, classBase float64) (*Result, error) {
	return BuildTwoPassWeightedOpts(st, cfg, classBase, parallel.Default())
}
