package spanner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Binary serialization for the spanner streaming states, so per-shard
// sketch states can be shipped between processes mid-stream (the
// distributed protocol of the paper's introduction): a worker
// marshals its pass state, the coordinator unmarshals and merges it
// with MergePass1/MergePass2/Merge exactly as if the shard had been
// ingested locally. Finished states (after Finish) are results, not
// sketches, and do not serialize.

const (
	tagTwoPass  uint64 = 0xd15c_0006 // v1: dense u64-length sketch blocks
	tagAdditive uint64 = 0xd15c_0007 // v1: dense u64-length sketch blocks
	// The v2 encodings varint-encode sketch-block lengths and suppress
	// zero sketches (an untouched vertex sketch, table row, or degree
	// sketch encodes as a single 0 byte). v1 blobs still decode;
	// encoding always emits v2.
	tagTwoPassV2  uint64 = 0xd15c_0106
	tagAdditiveV2 uint64 = 0xd15c_0107
)

var errCorrupt = errors.New("spanner: corrupt serialized data")

type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.b = append(w.b, tmp[:]...)
}

func (w *wbuf) i64(v int64)      { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64)    { w.u64(math.Float64bits(v)) }
func (w *wbuf) boolean(v bool)   { w.u64(map[bool]uint64{false: 0, true: 1}[v]) }
func (w *wbuf) block(enc []byte) { w.u64(uint64(len(enc))); w.b = append(w.b, enc...) }

func (w *wbuf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// zeroSketch is the common zero test of the embedded sketch states.
type zeroSketch interface {
	IsZero() bool
	MarshalBinary() ([]byte, error)
}

// sketchBlock writes one varint-length sketch block with zero-run
// suppression: a zero state (never touched, or canceled back to zero)
// is a single 0 byte. Content-canonical by construction.
func (w *wbuf) sketchBlock(s zeroSketch) error {
	if s.IsZero() {
		w.uvarint(0)
		return nil
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	w.uvarint(uint64(len(enc)))
	w.b = append(w.b, enc...)
	return nil
}

type rbuf struct{ b []byte }

func (r *rbuf) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errCorrupt
	}
	v := binary.LittleEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v, nil
}

func (r *rbuf) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *rbuf) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *rbuf) boolean() (bool, error) {
	v, err := r.u64()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, errCorrupt
	}
	return v == 1, nil
}

func (r *rbuf) block() ([]byte, error) {
	ln, err := r.u64()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.b)) < ln {
		return nil, errCorrupt
	}
	b := r.b[:ln]
	r.b = r.b[ln:]
	return b, nil
}

func (r *rbuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errCorrupt
	}
	r.b = r.b[n:]
	return v, nil
}

// sketchBlock reads one sketch block in the given version and decodes
// it into dst; a suppressed (0-length, v2) block leaves dst as the
// fresh zero state it already is.
func (r *rbuf) sketchBlock(v2 bool, dst interface{ UnmarshalBinary([]byte) error }) error {
	var ln uint64
	var err error
	if v2 {
		ln, err = r.uvarint()
	} else {
		ln, err = r.u64()
	}
	if err != nil {
		return err
	}
	if ln == 0 && v2 {
		return nil
	}
	if uint64(len(r.b)) < ln {
		return errCorrupt
	}
	enc := r.b[:ln]
	r.b = r.b[ln:]
	return dst.UnmarshalBinary(enc)
}

func (r *rbuf) intSlice(max int) ([]int, error) {
	ln, err := r.u64()
	if err != nil {
		return nil, err
	}
	if ln > uint64(max) {
		return nil, errCorrupt
	}
	out := make([]int, ln)
	for i := range out {
		v, err := r.i64()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func (w *wbuf) intSlice(s []int) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.i64(int64(v))
	}
}

func (w *wbuf) config(cfg Config) {
	w.i64(int64(cfg.K))
	w.u64(cfg.Seed)
	w.i64(int64(cfg.Budget))
	w.f64(cfg.TableFactor)
	w.i64(int64(cfg.Levels))
	w.boolean(cfg.CollectAugmented)
}

func (r *rbuf) config() (Config, error) {
	var cfg Config
	var err error
	read := func(dst *int) {
		if err == nil {
			var v int64
			v, err = r.i64()
			*dst = int(v)
		}
	}
	read(&cfg.K)
	if err == nil {
		cfg.Seed, err = r.u64()
	}
	read(&cfg.Budget)
	if err == nil {
		cfg.TableFactor, err = r.f64()
	}
	read(&cfg.Levels)
	if err == nil {
		cfg.CollectAugmented, err = r.boolean()
	}
	return cfg, err
}

// MarshalBinary encodes the full streaming state of the two-pass
// spanner: the configuration, the pass-1 vertex sketches, and — after
// EndPass1 — the cluster structure and pass-2 tables. A finished state
// (after Finish) cannot be marshaled.
func (tp *TwoPass) MarshalBinary() ([]byte, error) {
	if tp.phase > 1 {
		return nil, fmt.Errorf("spanner: cannot marshal a finished two-pass state")
	}
	w := &wbuf{}
	w.u64(tagTwoPassV2)
	w.u64(uint64(tp.n))
	w.u64(uint64(tp.phase))
	w.config(tp.cfg)
	// Pass-1 vertex sketches, in the deterministic (u, r, j) order the
	// constructor allocates. A pass-2 worker from ForkPass2 owns no
	// vertex sketches (tables only); the flag records which shape this
	// state has.
	w.boolean(tp.vertexSk != nil)
	for u := range tp.vertexSk {
		for r := range tp.vertexSk[u] {
			for j := range tp.vertexSk[u][r] {
				if err := w.sketchBlock(tp.vertexSk[u][r][j]); err != nil {
					return nil, err
				}
			}
		}
	}
	if tp.phase == 1 {
		// Cluster structure from EndPass1.
		w.u64(uint64(len(tp.copies)))
		for i := range tp.copies {
			c := &tp.copies[i]
			w.i64(int64(c.u))
			w.i64(int64(c.level))
			w.i64(int64(c.parent))
			w.i64(int64(c.witness[0]))
			w.i64(int64(c.witness[1]))
			w.boolean(c.terminal)
			w.intSlice(c.members)
		}
		for u := 0; u < tp.n; u++ {
			w.intSlice(tp.terminalsOf[u])
		}
		// Pass-2 tables, sorted by terminal copy index.
		cis := make([]int, 0, len(tp.tables))
		for ci := range tp.tables {
			cis = append(cis, ci)
		}
		sort.Ints(cis)
		w.u64(uint64(len(cis)))
		for _, ci := range cis {
			w.i64(int64(ci))
			for _, t := range tp.tables[ci] {
				if err := w.sketchBlock(t); err != nil {
					return nil, err
				}
			}
		}
		// Augmented edge set, sorted for a canonical encoding.
		edges := make([][2]int, 0, len(tp.augmented))
		for e := range tp.augmented {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(a, b int) bool {
			return edges[a][0] < edges[b][0] ||
				(edges[a][0] == edges[b][0] && edges[a][1] < edges[b][1])
		})
		w.u64(uint64(len(edges)))
		for _, e := range edges {
			w.i64(int64(e[0]))
			w.i64(int64(e[1]))
		}
	}
	return w.b, nil
}

// UnmarshalBinary reconstructs a two-pass state encoded with
// MarshalBinary. The rebuilt state merges with (and forks from) states
// built locally from the same configuration.
func (tp *TwoPass) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || (tag != tagTwoPass && tag != tagTwoPassV2) {
		return fmt.Errorf("spanner: not a TwoPass encoding: %w", errCorrupt)
	}
	v2 := tag == tagTwoPassV2
	n64, err := r.u64()
	if err != nil {
		return err
	}
	phase, err := r.u64()
	if err != nil {
		return err
	}
	cfg, err := r.config()
	if err != nil {
		return err
	}
	if n64 == 0 || n64 > 1<<24 || phase > 1 {
		return errCorrupt
	}
	n := int(n64)
	rebuilt := NewTwoPass(n, cfg)
	hasVertexSk, err := r.boolean()
	if err != nil {
		return err
	}
	if !hasVertexSk {
		rebuilt.vertexSk = nil // pass-2 worker shape (ForkPass2)
	}
	for u := range rebuilt.vertexSk {
		for ri := range rebuilt.vertexSk[u] {
			for j := range rebuilt.vertexSk[u][ri] {
				if err := r.sketchBlock(v2, rebuilt.vertexSk[u][ri][j]); err != nil {
					return err
				}
			}
		}
	}
	if phase == 1 {
		nCopies, err := r.u64()
		if err != nil {
			return err
		}
		if nCopies > uint64(n)*uint64(rebuilt.k) {
			return errCorrupt
		}
		rebuilt.copies = make([]copyNode, nCopies)
		for i := range rebuilt.copies {
			c := &rebuilt.copies[i]
			fields := []*int{&c.u, &c.level, &c.parent, &c.witness[0], &c.witness[1]}
			for _, dst := range fields {
				v, err := r.i64()
				if err != nil {
					return err
				}
				*dst = int(v)
			}
			if c.terminal, err = r.boolean(); err != nil {
				return err
			}
			if c.members, err = r.intSlice(n); err != nil {
				return err
			}
		}
		rebuilt.terminalsOf = make([][]int, n)
		for u := 0; u < n; u++ {
			if rebuilt.terminalsOf[u], err = r.intSlice(int(nCopies)); err != nil {
				return err
			}
		}
		rebuilt.tables = rebuilt.allocTables()
		nTables, err := r.u64()
		if err != nil {
			return err
		}
		if nTables != uint64(len(rebuilt.tables)) {
			return errCorrupt
		}
		for i := uint64(0); i < nTables; i++ {
			ci64, err := r.i64()
			if err != nil {
				return err
			}
			row, ok := rebuilt.tables[int(ci64)]
			if !ok {
				return errCorrupt
			}
			for j := range row {
				if err := r.sketchBlock(v2, row[j]); err != nil {
					return err
				}
			}
		}
		nAug, err := r.u64()
		if err != nil {
			return err
		}
		if nAug > uint64(n)*uint64(n) {
			return errCorrupt
		}
		for i := uint64(0); i < nAug; i++ {
			a, err := r.i64()
			if err != nil {
				return err
			}
			b, err := r.i64()
			if err != nil {
				return err
			}
			rebuilt.augmented[[2]int{int(a), int(b)}] = true
		}
		rebuilt.phase = 1
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	*tp = *rebuilt
	return nil
}

func (w *wbuf) additiveConfig(cfg AdditiveConfig) {
	w.i64(int64(cfg.D))
	w.u64(cfg.Seed)
	w.f64(cfg.DegreeFactor)
	w.f64(cfg.CenterFactor)
	w.boolean(cfg.UseF0Degree)
}

func (r *rbuf) additiveConfig() (AdditiveConfig, error) {
	var cfg AdditiveConfig
	d, err := r.i64()
	if err != nil {
		return cfg, err
	}
	cfg.D = int(d)
	if cfg.Seed, err = r.u64(); err != nil {
		return cfg, err
	}
	if cfg.DegreeFactor, err = r.f64(); err != nil {
		return cfg, err
	}
	if cfg.CenterFactor, err = r.f64(); err != nil {
		return cfg, err
	}
	cfg.UseF0Degree, err = r.boolean()
	return cfg, err
}

// MarshalBinary encodes the full streaming state of the single-pass
// additive spanner: configuration, per-vertex neighborhood and center
// sketches, degree counters, the optional F0 degree sketches, and the
// AGM forest sketch. A finished state cannot be marshaled.
func (a *Additive) MarshalBinary() ([]byte, error) {
	if a.done {
		return nil, fmt.Errorf("spanner: cannot marshal a finished additive state")
	}
	// The wire format carries pure stream states: fold any
	// extraction-era E_low subtractions back in first.
	a.restoreStream()
	w := &wbuf{}
	w.u64(tagAdditiveV2)
	w.u64(uint64(a.n))
	w.additiveConfig(a.cfg)
	for u := 0; u < a.n; u++ {
		if err := w.sketchBlock(a.nbr[u]); err != nil {
			return nil, err
		}
		for _, s := range a.centerS[u] {
			if err := w.sketchBlock(s); err != nil {
				return nil, err
			}
		}
		w.i64(a.degree[u])
		if a.degF0 != nil {
			if err := w.sketchBlock(a.degF0[u]); err != nil {
				return nil, err
			}
		}
	}
	enc, err := a.forest.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.block(enc)
	return w.b, nil
}

// UnmarshalBinary reconstructs an additive state encoded with
// MarshalBinary. The rebuilt state merges with states built locally
// from the same configuration.
func (a *Additive) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || (tag != tagAdditive && tag != tagAdditiveV2) {
		return fmt.Errorf("spanner: not an Additive encoding: %w", errCorrupt)
	}
	v2 := tag == tagAdditiveV2
	n64, err := r.u64()
	if err != nil {
		return err
	}
	cfg, err := r.additiveConfig()
	if err != nil {
		return err
	}
	if n64 == 0 || n64 > 1<<24 {
		return errCorrupt
	}
	rebuilt := NewAdditive(int(n64), cfg)
	for u := 0; u < rebuilt.n; u++ {
		if err := r.sketchBlock(v2, rebuilt.nbr[u]); err != nil {
			return err
		}
		for ri := range rebuilt.centerS[u] {
			if err := r.sketchBlock(v2, rebuilt.centerS[u][ri]); err != nil {
				return err
			}
		}
		if rebuilt.degree[u], err = r.i64(); err != nil {
			return err
		}
		if rebuilt.degF0 != nil {
			if err := r.sketchBlock(v2, rebuilt.degF0[u]); err != nil {
				return err
			}
		}
	}
	enc, err := r.block()
	if err != nil {
		return err
	}
	if err := rebuilt.forest.UnmarshalBinary(enc); err != nil {
		return err
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	*a = *rebuilt
	return nil
}
