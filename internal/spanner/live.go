package spanner

import (
	"fmt"

	"dynstream/internal/parallel"
	"dynstream/internal/sketch"
	"dynstream/internal/stream"
)

// Live two-pass state: the spanner construction is two-pass, so a live
// handle cannot simply keep folding updates into finished tables — the
// second pass is defined over the cluster structure, which itself
// depends on the first-pass sketches. Instead, a live state keeps
// pass 1 permanently open and re-runs the offline halves on demand:
//
//	StartLive(src)  — replay the base stream through pass 1, remember src
//	ApplyLive(upds) — fold updates into pass 1 AND append to the live log
//	QueryLive(p)    — re-cluster (cached per center); if the structure is
//	                  unchanged, fold only the not-yet-synced log suffix
//	                  into the existing tables (linearity); otherwise
//	                  rebuild tables and replay src + log; then extract
//	                  (cached per terminal).
//
// Every cache is keyed by an injective sketch.StateDigest (member lists
// plus monotonic generation sums), never a hash, so a hit provably
// reproduces what a cold decode of the same state would compute — the
// incremental result is bit-identical to a from-scratch build over the
// same total stream.

// attachKey identifies one cluster-decode region: the center vertex u
// at hierarchy level `level`.
type attachKey struct {
	level int
	u     int
}

// attachResult is one center's decode outcome, applied serially.
type attachResult struct {
	attached  bool
	parent    int    // copy index in level i+1
	witness   [2]int // σ(edge to parent)
	augmented [][2]int
}

// attachEntry caches an attachment decode under the state digest of
// everything the decode read.
type attachEntry struct {
	key string
	res attachResult
}

// recEntry caches one terminal's neighborhood recovery under the
// summed generation counter of its table row.
type recEntry struct {
	gens  uint64
	edges [][2]int
}

// EnableDecodeCache turns the per-center attachment cache and the
// per-terminal recovery cache on or off. Off releases both caches.
// Cached and uncached extraction are bit-identical; the cache only
// skips decodes whose inputs are provably unchanged.
func (tp *TwoPass) EnableDecodeCache(on bool) {
	tp.caching = on
	if !on {
		tp.attach = nil
		tp.recCache = nil
	}
}

// InvalidateDecodeCache drops the attachment and recovery caches and
// forgets the last cluster-structure digest, so the next QueryLive
// re-clusters, reallocates the pass-2 tables, and replays the stream
// from scratch. Correctness never requires this — the digest checks
// already reject stale entries — it only bounds memory or forces a
// cold decode for measurement.
func (tp *TwoPass) InvalidateDecodeCache() {
	tp.attach = nil
	tp.recCache = nil
	tp.clusterKey = ""
}

// attachDigest fingerprints one cluster-decode region: the member list
// and the summed generation counter of every pass-1 sketch the decode
// reads (rows r = level+1, all subsampling levels j). The sum is
// collision-free over a fixed member list because each counter is
// monotonic: an equal sum means every sketch is bit-identical to the
// state the cache entry decoded.
func (tp *TwoPass) attachDigest(level int, members []int) string {
	var d sketch.StateDigest
	d.Tag('A')
	d.Int(level)
	d.Int(len(members))
	var gens uint64
	for _, v := range members {
		d.Int(v)
		for _, s := range tp.vertexSk[v][level] {
			gens += s.Gen()
		}
	}
	d.U64(gens)
	return d.Key()
}

// clusterStructKey fingerprints the cluster forest itself. Member
// lists are omitted: they are a pure function of the parent pointers
// (members = subtree vertex union), as is terminalsOf, so equal keys
// mean the whole downstream routing structure — and with it every
// pass-2 table's key population — is identical.
func clusterStructKey(copies []copyNode) string {
	var d sketch.StateDigest
	d.Tag('S')
	d.Int(len(copies))
	for i := range copies {
		c := &copies[i]
		d.Int(c.u)
		d.Int(c.level)
		d.Int(c.parent)
		t := 0
		if c.terminal {
			t = 1
		}
		d.Int(t)
		d.Int(c.witness[0])
		d.Int(c.witness[1])
	}
	return d.Key()
}

// StartLive converts a fresh state into a live one over the replayable
// base stream src: pass 1 ingests all of src, and src is retained for
// the pass-2 replays QueryLive needs. The state stays in phase 0
// forever — EndPass1/Finish are never called on a live state.
func (tp *TwoPass) StartLive(src stream.Stream) error {
	if tp.phase != 0 {
		return fmt.Errorf("spanner: StartLive called in phase %d", tp.phase)
	}
	if tp.liveSrc != nil {
		return fmt.Errorf("spanner: StartLive called twice")
	}
	if err := stream.ReplayBatches(src, 0, tp.Pass1AddBatch); err != nil {
		return fmt.Errorf("spanner: live pass 1: %w", err)
	}
	tp.liveSrc = src
	return nil
}

// ApplyLive folds a batch of updates into the live state: into the
// pass-1 sketches immediately, and onto the live log from which
// QueryLive feeds the pass-2 tables.
func (tp *TwoPass) ApplyLive(batch []stream.Update) error {
	if tp.liveSrc == nil {
		return fmt.Errorf("spanner: ApplyLive before StartLive")
	}
	if err := tp.Pass1AddBatch(batch); err != nil {
		return err
	}
	tp.liveLog = append(tp.liveLog, batch...)
	return nil
}

// foldPass2 routes a batch into the pass-2 tables without the phase
// gate of Pass2Update — live states stay in phase 0 so pass-1 ingest
// remains open.
func (tp *TwoPass) foldPass2(batch []stream.Update) {
	for _, u := range batch {
		tp.routePass2(u.U, u.V, int64(u.Delta))
		tp.routePass2(u.V, u.U, int64(u.Delta))
	}
}

// QueryLive extracts the spanner from the live state's current
// contents — bit-identical to a cold BuildTwoPass over the base stream
// plus every ApplyLive batch, at any worker count.
//
// The incremental structure: the cluster construction re-runs with the
// per-center attachment cache, so only dirty clusters re-decode. If
// the resulting structure digest matches the previous query's, the
// existing pass-2 tables are still a correct function of the structure
// and the stream prefix they have absorbed, so only the unsynced live
// log suffix is folded in (sketches are linear). A changed structure
// reallocates the tables and replays base + log.
func (tp *TwoPass) QueryLive(p *parallel.Policy) (*Result, error) {
	if tp.liveSrc == nil {
		return nil, fmt.Errorf("spanner: QueryLive before StartLive")
	}
	p = p.DecodePolicy()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("spanner: %w", err)
	}
	cr, err := tp.clusterize(p)
	if err != nil {
		return nil, err
	}
	tp.copies = cr.copies
	tp.terminalsOf = cr.terminalsOf
	if cr.structKey != tp.clusterKey || tp.tables == nil {
		tp.clusterKey = cr.structKey
		tp.recCache = nil // rows are reallocated; old recoveries are moot
		tables, err := tp.allocTablesOpts(p)
		if err != nil {
			return nil, err
		}
		tp.tables = tables
		err = stream.ReplayBatches(tp.liveSrc, 0, func(b []stream.Update) error {
			tp.foldPass2(b)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("spanner: live pass 2: %w", err)
		}
		tp.foldPass2(tp.liveLog)
	} else {
		tp.foldPass2(tp.liveLog[tp.liveSynced:])
	}
	tp.liveSynced = len(tp.liveLog)
	// The augmented set is rebuilt per query: stale pairs from clusters
	// that have since re-attached must not linger.
	tp.augmented = make(map[[2]int]bool, len(cr.augmented))
	for _, e := range cr.augmented {
		tp.augmented[e] = true
	}
	return tp.extractOpts(p)
}
