package spanner

import (
	"math"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

func TestDistanceOracleUnweighted(t *testing.T) {
	g := graph.ConnectedGNP(50, 0.15, 1)
	st := stream.FromGraph(g, 2)
	res, err := BuildTwoPass(st, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := NewDistanceOracle(res, 2)
	if o.Stretch() != 4 {
		t.Errorf("stretch = %v", o.Stretch())
	}
	for src := 0; src < g.N(); src += 7 {
		d := g.BFS(src)
		for v := 0; v < g.N(); v++ {
			if d[v] <= 0 {
				continue
			}
			est := o.Query(src, v)
			if est < float64(d[v]) {
				t.Fatalf("oracle underestimates (%d,%d): %v < %d", src, v, est, d[v])
			}
			if est > 4*float64(d[v]) {
				t.Fatalf("oracle stretch violated (%d,%d): %v > 4·%d", src, v, est, d[v])
			}
		}
	}
	if o.Query(5, 5) != 0 {
		t.Error("Query(v,v) != 0")
	}
}

func TestDistanceOracleDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddUnitEdge(0, 1)
	st := stream.FromGraph(g, 4)
	res, err := BuildTwoPass(st, Config{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	o := NewDistanceOracle(res, 2)
	if !math.IsInf(o.Query(0, 5), 1) {
		t.Errorf("disconnected query = %v", o.Query(0, 5))
	}
	if o.Connected(0, 5) {
		t.Error("Connected(0,5) on disconnected pair")
	}
	if !o.Connected(0, 1) {
		t.Error("Connected(0,1) false on an edge")
	}
}

func TestWeightedDistanceOracle(t *testing.T) {
	base := graph.ConnectedGNP(30, 0.2, 6)
	g := graph.RandomWeighted(base, 1, 32, 7)
	st := stream.FromGraph(g, 8)
	const classBase = 2.0
	res, err := BuildTwoPassWeighted(st, Config{K: 2, Seed: 9}, classBase)
	if err != nil {
		t.Fatal(err)
	}
	o := NewWeightedDistanceOracle(res, 2, classBase)
	if o.Stretch() != 8 {
		t.Errorf("weighted stretch bound = %v, want 8", o.Stretch())
	}
	for src := 0; src < g.N(); src += 6 {
		d := g.Dijkstra(src)
		for v := 0; v < g.N(); v++ {
			if v == src {
				continue
			}
			est := o.Query(src, v)
			if est < d[v]-1e-9 {
				t.Fatalf("weighted oracle underestimates (%d,%d)", src, v)
			}
			if est > o.Stretch()*d[v]+1e-9 {
				t.Fatalf("weighted oracle stretch violated (%d,%d): %v > %v·%v",
					src, v, est, o.Stretch(), d[v])
			}
		}
	}
}

// TestTwoPassExhaustiveSmallGraphs: every graph on 5 vertices (1024 of
// them) gets a valid spanner — an exhaustive correctness sweep over the
// full space of small inputs.
func TestTwoPassExhaustiveSmallGraphs(t *testing.T) {
	const n = 5
	pairs := [][2]int{}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := graph.New(n)
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				g.AddUnitEdge(p[0], p[1])
			}
		}
		st := stream.FromGraph(g, uint64(mask))
		res, err := BuildTwoPass(st, Config{K: 2, Seed: uint64(mask)*31 + 7})
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if !res.Spanner.IsSubgraphOf(g) {
			t.Fatalf("mask %d: non-subgraph", mask)
		}
		for src := 0; src < n; src++ {
			dg := g.BFS(src)
			dh := res.Spanner.BFS(src)
			for v := 0; v < n; v++ {
				if dg[v] <= 0 {
					continue
				}
				if dh[v] == -1 || dh[v] < dg[v] || dh[v] > 4*dg[v] {
					t.Fatalf("mask %d: pair (%d,%d) d_G=%d d_H=%d", mask, src, v, dg[v], dh[v])
				}
			}
		}
	}
}
