package spanner

import (
	"bytes"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/stream"
)

// Round-trip coverage for the wire-shippable pass states: a worker
// state marshaled, unmarshaled, and merged at a "coordinator" must
// behave exactly like the in-process state it encodes.

func twoPassStream(t *testing.T) (*graph.Graph, *stream.MemoryStream) {
	t.Helper()
	g := graph.ConnectedGNP(40, 0.15, 401)
	return g, stream.WithChurn(g, 120, 402)
}

func TestTwoPassMarshalPass1RoundTrip(t *testing.T) {
	_, st := twoPassStream(t)
	cfg := Config{K: 2, Seed: 403}

	// Reference: single state over the whole stream.
	want, err := BuildTwoPass(st, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: two shard states; the second is shipped as bytes.
	shards, err := stream.Split(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewTwoPass(st.N(), cfg), NewTwoPass(st.N(), cfg)
	for i, tp := range []*TwoPass{a, b} {
		if err := shards[i].Replay(func(u stream.Update) error { return tp.Pass1Update(u) }); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped TwoPass
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.MergePass1(&shipped); err != nil {
		t.Fatal(err)
	}
	if err := a.EndPass1(); err != nil {
		t.Fatal(err)
	}
	if err := st.Replay(func(u stream.Update) error { return a.Pass2Update(u) }); err != nil {
		t.Fatal(err)
	}
	got, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertSameEdges(t, "pass1 round trip", got.Spanner, want.Spanner)
}

func TestTwoPassMarshalPass2RoundTrip(t *testing.T) {
	_, st := twoPassStream(t)
	cfg := Config{K: 2, Seed: 405}

	want, err := BuildTwoPass(st, cfg)
	if err != nil {
		t.Fatal(err)
	}

	main := NewTwoPass(st.N(), cfg)
	if err := st.Replay(func(u stream.Update) error { return main.Pass1Update(u) }); err != nil {
		t.Fatal(err)
	}
	if err := main.EndPass1(); err != nil {
		t.Fatal(err)
	}
	// Pass-2 worker: fork, ingest the whole stream, ship as bytes.
	worker, err := main.ForkPass2()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Replay(func(u stream.Update) error { return worker.Pass2Update(u) }); err != nil {
		t.Fatal(err)
	}
	enc, err := worker.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped TwoPass
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := main.MergePass2(&shipped); err != nil {
		t.Fatal(err)
	}
	got, err := main.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertSameEdges(t, "pass2 round trip", got.Spanner, want.Spanner)
}

func TestTwoPassMarshalStable(t *testing.T) {
	_, st := twoPassStream(t)
	tp := NewTwoPass(st.N(), Config{K: 2, Seed: 406, CollectAugmented: true})
	if err := st.Replay(func(u stream.Update) error { return tp.Pass1Update(u) }); err != nil {
		t.Fatal(err)
	}
	if err := tp.EndPass1(); err != nil {
		t.Fatal(err)
	}
	enc1, err := tp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back TwoPass
	if err := back.UnmarshalBinary(enc1); err != nil {
		t.Fatal(err)
	}
	enc2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("marshal → unmarshal → marshal changed the encoding")
	}
}

func TestTwoPassMarshalRejectsGarbage(t *testing.T) {
	var tp TwoPass
	if err := tp.UnmarshalBinary(nil); err == nil {
		t.Error("accepted empty input")
	}
	if err := tp.UnmarshalBinary([]byte("definitely not a sketch")); err == nil {
		t.Error("accepted garbage")
	}
	done := NewTwoPass(8, Config{K: 1, Seed: 1})
	if err := done.EndPass1(); err != nil {
		t.Fatal(err)
	}
	if _, err := done.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := done.MarshalBinary(); err == nil {
		t.Error("marshaled a finished state")
	}
}

func TestAdditiveMarshalRoundTrip(t *testing.T) {
	for _, useF0 := range []bool{false, true} {
		g := graph.ConnectedGNP(36, 0.2, 407)
		st := stream.WithChurn(g, 100, 408)
		cfg := AdditiveConfig{D: 3, Seed: 409, UseF0Degree: useF0}

		want, err := BuildAdditive(st, cfg)
		if err != nil {
			t.Fatal(err)
		}

		shards, err := stream.Split(st, 2)
		if err != nil {
			t.Fatal(err)
		}
		a, b := NewAdditive(st.N(), cfg), NewAdditive(st.N(), cfg)
		for i, s := range []*Additive{a, b} {
			if err := shards[i].Replay(s.Update); err != nil {
				t.Fatal(err)
			}
		}
		enc, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var shipped Additive
		if err := shipped.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		if err := a.Merge(&shipped); err != nil {
			t.Fatal(err)
		}
		got, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		assertSameEdges(t, "additive round trip", got.Spanner, want.Spanner)
	}
}

func assertSameEdges(t *testing.T, name string, got, want *graph.Graph) {
	t.Helper()
	ge, we := got.Edges(), want.Edges()
	if len(ge) != len(we) {
		t.Fatalf("%s: %d edges vs %d", name, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, ge[i], we[i])
		}
	}
}
