package spanner

import (
	"fmt"

	"dynstream/internal/stream"
)

// Serialization of *live* two-pass states, the checkpoint substrate of
// dynstream's Handle.Checkpoint. A live state is pass 1 kept open
// forever (see live.go): its durable content is the phase-0 stream
// state — configuration plus pass-1 vertex sketches, which already
// reflect every applied update — and the live update log. Everything
// else (cluster structure, pass-2 tables, decode caches) is derived
// and rebuilt by the first QueryLive after restore, so a restored
// state answers queries bit-identically to the state it was saved
// from.

// tagTwoPassLive frames a live-state encoding: a phase-0 MarshalBinary
// blob plus the live log.
const tagTwoPassLive uint64 = 0xd15c_0206

// MarshalLive encodes a live two-pass state for checkpointing. The
// base stream is not part of the encoding — RestoreLive re-attaches
// it, exactly as StartLive attached it originally.
func (tp *TwoPass) MarshalLive() ([]byte, error) {
	if tp.liveSrc == nil {
		return nil, fmt.Errorf("spanner: MarshalLive before StartLive")
	}
	base, err := tp.MarshalBinary() // phase 0: cfg + pass-1 vertex sketches
	if err != nil {
		return nil, err
	}
	w := &wbuf{}
	w.u64(tagTwoPassLive)
	w.block(base)
	w.u64(uint64(len(tp.liveLog)))
	for _, u := range tp.liveLog {
		w.i64(int64(u.U))
		w.i64(int64(u.V))
		w.i64(int64(u.Delta))
		w.f64(u.W)
	}
	return w.b, nil
}

// RestoreLive reconstructs a live state from a MarshalLive encoding
// over the replayable base stream src. The restored state is in the
// same live phase as the saved one: pass 1 open, tables unallocated —
// the first QueryLive re-clusters and replays src plus the log, which
// by linearity reproduces the saved state's query output bit for bit.
func (tp *TwoPass) RestoreLive(src stream.Stream, data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || tag != tagTwoPassLive {
		return fmt.Errorf("spanner: not a live TwoPass encoding: %w", errCorrupt)
	}
	base, err := r.block()
	if err != nil {
		return err
	}
	rebuilt := &TwoPass{}
	if err := rebuilt.UnmarshalBinary(base); err != nil {
		return err
	}
	if rebuilt.phase != 0 {
		return fmt.Errorf("spanner: live encoding holds a phase-%d state: %w", rebuilt.phase, errCorrupt)
	}
	if rebuilt.n != src.N() {
		return fmt.Errorf("spanner: live state has n=%d, stream has n=%d: %w", rebuilt.n, src.N(), errCorrupt)
	}
	count, err := r.u64()
	if err != nil {
		return err
	}
	if count > uint64(len(r.b))/32 { // 4 fixed u64 fields per record
		return errCorrupt
	}
	log := make([]stream.Update, count)
	for i := range log {
		u, err1 := r.i64()
		v, err2 := r.i64()
		d, err3 := r.i64()
		wt, err4 := r.f64()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return errCorrupt
		}
		log[i] = stream.Update{U: int(u), V: int(v), Delta: int(d), W: wt}
	}
	if len(r.b) != 0 {
		return fmt.Errorf("spanner: %d trailing bytes in live encoding: %w", len(r.b), errCorrupt)
	}
	rebuilt.liveSrc = src
	rebuilt.liveLog = log
	*tp = *rebuilt
	return nil
}
