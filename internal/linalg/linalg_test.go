package linalg

import (
	"math"
	"testing"

	"dynstream/internal/graph"
	"dynstream/internal/hashing"
)

func TestSymSetAddAt(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 2, 5)
	if m.At(2, 0) != 5 || m.At(0, 2) != 5 {
		t.Error("Set not symmetric")
	}
	m.Add(1, 1, 2)
	if m.At(1, 1) != 2 {
		t.Error("diagonal Add wrong")
	}
	m.Add(0, 1, 3)
	if m.At(1, 0) != 3 {
		t.Error("off-diagonal Add not symmetric")
	}
}

func TestLaplacianBasics(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	l := Laplacian(g)
	want := [][]float64{{2, -2, 0}, {-2, 5, -3}, {0, -3, 3}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if l.At(i, j) != want[i][j] {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want[i][j])
			}
		}
	}
	// Row sums zero.
	ones := []float64{1, 1, 1}
	for _, v := range l.MatVec(ones) {
		if math.Abs(v) > 1e-12 {
			t.Error("L·1 != 0")
		}
	}
}

func TestQuadIsCutForBinaryVectors(t *testing.T) {
	g := graph.Complete(5)
	l := Laplacian(g)
	x := []float64{1, 1, 0, 0, 0}
	// Cut between {0,1} and rest of K5 has 6 edges.
	if q := l.Quad(x); math.Abs(q-6) > 1e-9 {
		t.Errorf("quad = %v, want 6", q)
	}
}

func TestEigenOnDiagonal(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	e := EigenDecompose(m)
	want := []float64{1, 2, 3}
	for i, v := range e.Values {
		if math.Abs(v-want[i]) > 1e-10 {
			t.Errorf("eigenvalue %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestEigenReconstruction(t *testing.T) {
	// Random symmetric matrix: Q diag(v) Q^T must reproduce M.
	rng := hashing.NewSplitMix64(7)
	const n = 8
	m := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m.Set(i, j, rng.Float64()*2-1)
		}
	}
	e := EigenDecompose(m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += e.Q[i*n+k] * e.Values[k] * e.Q[j*n+k]
			}
			if math.Abs(s-m.At(i, j)) > 1e-8 {
				t.Fatalf("reconstruction M[%d][%d]: %v vs %v", i, j, s, m.At(i, j))
			}
		}
	}
	// Orthonormality.
	for k1 := 0; k1 < n; k1++ {
		for k2 := k1; k2 < n; k2++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += e.Q[i*n+k1] * e.Q[i*n+k2]
			}
			want := 0.0
			if k1 == k2 {
				want = 1
			}
			if math.Abs(s-want) > 1e-8 {
				t.Fatalf("Q^T Q [%d][%d] = %v", k1, k2, s)
			}
		}
	}
}

func TestLaplacianPSDAndNullSpace(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.2, 3)
	e := EigenDecompose(Laplacian(g))
	if e.Values[0] < -1e-9 {
		t.Errorf("Laplacian has negative eigenvalue %v", e.Values[0])
	}
	if math.Abs(e.Values[0]) > 1e-9 {
		t.Errorf("smallest eigenvalue %v, want 0", e.Values[0])
	}
	// Connected graph: exactly one zero eigenvalue.
	if math.Abs(e.Values[1]) < 1e-9 {
		t.Error("connected graph has multiple zero eigenvalues")
	}
}

func TestEffectiveResistancePath(t *testing.T) {
	// On a unit path, R(0, j) = j (series resistors).
	g := graph.Path(6)
	e := EigenDecompose(Laplacian(g))
	for j := 1; j < 6; j++ {
		if r := e.EffectiveResistance(0, j); math.Abs(r-float64(j)) > 1e-8 {
			t.Errorf("R(0,%d) = %v, want %d", j, r, j)
		}
	}
}

func TestEffectiveResistanceParallel(t *testing.T) {
	// Two parallel unit edges: R = 1/2. Model as cycle of length 2 is
	// disallowed (simple graph), so use the 3-cycle: R across one edge
	// of a triangle = 2/3 (1 in parallel with 2).
	g := graph.Cycle(3)
	e := EigenDecompose(Laplacian(g))
	if r := e.EffectiveResistance(0, 1); math.Abs(r-2.0/3) > 1e-8 {
		t.Errorf("triangle R = %v, want 2/3", r)
	}
}

func TestEffectiveResistancesSumFosterOnTree(t *testing.T) {
	// On any tree, every edge has R_e = 1 exactly.
	g := graph.Star(10)
	rs := EffectiveResistances(g)
	for i, r := range rs {
		if math.Abs(r-1) > 1e-8 {
			t.Errorf("tree edge %d has R=%v, want 1", i, r)
		}
	}
}

func TestFosterTheorem(t *testing.T) {
	// Foster: Σ_e R_e = n − #components for unweighted graphs.
	g := graph.ConnectedGNP(16, 0.3, 4)
	rs := EffectiveResistances(g)
	sum := 0.0
	for _, r := range rs {
		sum += r
	}
	if math.Abs(sum-float64(g.N()-1)) > 1e-6 {
		t.Errorf("Foster sum = %v, want %d", sum, g.N()-1)
	}
}

func TestSpectralEpsilonIdentical(t *testing.T) {
	g := graph.ConnectedGNP(15, 0.3, 5)
	eps, err := SpectralEpsilon(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 1e-8 {
		t.Errorf("ε(G,G) = %v, want 0", eps)
	}
}

func TestSpectralEpsilonScaled(t *testing.T) {
	// H = (1.5)·G has ε exactly 0.5.
	g := graph.Complete(8)
	h := graph.New(8)
	for _, e := range g.Edges() {
		h.AddEdge(e.U, e.V, 1.5)
	}
	eps, err := SpectralEpsilon(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-0.5) > 1e-8 {
		t.Errorf("ε = %v, want 0.5", eps)
	}
}

func TestSpectralEpsilonDroppedBridge(t *testing.T) {
	// Removing a bridge sends some quadratic form to 0: ε = 1.
	g := graph.Path(5)
	h := g.Clone()
	h.RemoveEdge(2, 3)
	eps, err := SpectralEpsilon(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-1) > 1e-8 {
		t.Errorf("ε = %v, want 1", eps)
	}
}

func TestSpectralEpsilonMismatch(t *testing.T) {
	if _, err := SpectralEpsilon(graph.Path(4), graph.Path(5)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestSpectralEpsilonDisconnected(t *testing.T) {
	// Two components; H identical: ε = 0 despite rank deficiency 2.
	g := graph.New(8)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(i, i+1)
		g.AddUnitEdge(4+i, 5+i)
	}
	eps, err := SpectralEpsilon(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if eps > 1e-8 {
		t.Errorf("ε = %v, want 0", eps)
	}
}

func TestCGSolvesLaplacianSystem(t *testing.T) {
	g := graph.ConnectedGNP(20, 0.3, 6)
	l := Laplacian(g)
	// b = e_0 - e_5 (zero sum, in range).
	b := make([]float64, 20)
	b[0], b[5] = 1, -1
	x := CG(l, b, 1e-10, 2000)
	// Check residual.
	r := l.MatVec(x)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-6 {
			t.Fatalf("residual[%d] = %v", i, r[i]-b[i])
		}
	}
	// Effective resistance from CG matches eigen route.
	eig := EigenDecompose(l)
	rCG := x[0] - x[5]
	rEig := eig.EffectiveResistance(0, 5)
	if math.Abs(rCG-rEig) > 1e-6 {
		t.Errorf("CG resistance %v vs eigen %v", rCG, rEig)
	}
}

func TestCGZeroRHS(t *testing.T) {
	l := Laplacian(graph.Path(5))
	x := CG(l, make([]float64, 5), 1e-10, 100)
	for _, v := range x {
		if v != 0 {
			t.Error("CG(0) != 0")
		}
	}
}
