// Package linalg provides the dense linear algebra used to *verify* the
// paper's spectral claims and to implement the Spielman–Srivastava
// baseline (Theorem 7): symmetric matrices, Laplacians, a cyclic Jacobi
// eigensolver, pseudoinverses, conjugate gradient, effective
// resistances, and the spectral-approximation measure
// ε(G, H) = max |x^T L_H x / x^T L_G x − 1| over x ⟂ null(L_G),
// computed exactly through the eigendecomposition of the pencil.
package linalg

import (
	"fmt"
	"math"

	"dynstream/internal/graph"
)

// Sym is a dense symmetric n×n matrix stored row-major.
type Sym struct {
	N    int
	Data []float64
}

// NewSym returns a zero symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Sym) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set sets elements (i, j) and (j, i).
func (m *Sym) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// Add adds v to elements (i, j) and (j, i) (only once on the diagonal).
func (m *Sym) Add(i, j int, v float64) {
	m.Data[i*m.N+j] += v
	if i != j {
		m.Data[j*m.N+i] += v
	}
}

// Clone returns a deep copy.
func (m *Sym) Clone() *Sym {
	c := NewSym(m.N)
	copy(c.Data, m.Data)
	return c
}

// MatVec computes y = M x.
func (m *Sym) MatVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.Data[i*m.N : (i+1)*m.N]
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
	return y
}

// Quad computes the quadratic form x^T M x.
func (m *Sym) Quad(x []float64) float64 {
	s := 0.0
	for i, yi := range m.MatVec(x) {
		s += x[i] * yi
	}
	return s
}

// Laplacian returns the graph Laplacian L(i,i) = Σ_j w_ij,
// L(i,j) = −w_ij.
func Laplacian(g *graph.Graph) *Sym {
	m := NewSym(g.N())
	for _, e := range g.Edges() {
		m.Add(e.U, e.U, e.W)
		m.Add(e.V, e.V, e.W)
		m.Add(e.U, e.V, -e.W)
	}
	return m
}

// Eigen holds an eigendecomposition M = Q diag(Values) Q^T with
// orthonormal columns Q (stored row-major: Q[i*N+k] is component i of
// eigenvector k). Values are sorted ascending.
type Eigen struct {
	N      int
	Values []float64
	Q      []float64
}

// EigenDecompose runs cyclic Jacobi until off-diagonal mass is
// negligible. Intended for the verification scale (n up to a few
// hundred).
func EigenDecompose(m *Sym) *Eigen {
	n := m.N
	a := make([]float64, n*n)
	copy(a, m.Data)
	q := make([]float64, n*n)
	for i := 0; i < n; i++ {
		q[i*n+i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i*n+j] * a[i*n+j]
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for r := p + 1; r < n; r++ {
				apr := a[p*n+r]
				if math.Abs(apr) < 1e-300 {
					continue
				}
				app, arr := a[p*n+p], a[r*n+r]
				theta := (arr - app) / (2 * apr)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and r of a.
				for k := 0; k < n; k++ {
					akp, akr := a[k*n+p], a[k*n+r]
					a[k*n+p] = c*akp - s*akr
					a[k*n+r] = s*akp + c*akr
				}
				for k := 0; k < n; k++ {
					apk, ark := a[p*n+k], a[r*n+k]
					a[p*n+k] = c*apk - s*ark
					a[r*n+k] = s*apk + c*ark
				}
				for k := 0; k < n; k++ {
					qkp, qkr := q[k*n+p], q[k*n+r]
					q[k*n+p] = c*qkp - s*qkr
					q[k*n+r] = s*qkp + c*qkr
				}
			}
		}
	}
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a[i*n+i]
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[idx[j]] < values[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedQ := make([]float64, n*n)
	for k, src := range idx {
		sortedVals[k] = values[src]
		for i := 0; i < n; i++ {
			sortedQ[i*n+k] = q[i*n+src]
		}
	}
	return &Eigen{N: n, Values: sortedVals, Q: sortedQ}
}

// rankTol is the relative cutoff below which an eigenvalue is treated
// as part of the null space.
func (e *Eigen) rankTol() float64 {
	maxAbs := 0.0
	for _, v := range e.Values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1e-12
	}
	return 1e-9 * maxAbs
}

// PinvVec computes M^+ b via the eigendecomposition.
func (e *Eigen) PinvVec(b []float64) []float64 {
	n := e.N
	tol := e.rankTol()
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		if math.Abs(e.Values[k]) <= tol {
			continue
		}
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += e.Q[i*n+k] * b[i]
		}
		scale := dot / e.Values[k]
		for i := 0; i < n; i++ {
			out[i] += scale * e.Q[i*n+k]
		}
	}
	return out
}

// EffectiveResistance returns R_uv = (e_u − e_v)^T L^+ (e_u − e_v)
// given the eigendecomposition of the Laplacian.
func (e *Eigen) EffectiveResistance(u, v int) float64 {
	b := make([]float64, e.N)
	b[u], b[v] = 1, -1
	x := e.PinvVec(b)
	return x[u] - x[v]
}

// EffectiveResistances returns R_e for every edge of g, in the order of
// g.Edges().
func EffectiveResistances(g *graph.Graph) []float64 {
	eig := EigenDecompose(Laplacian(g))
	edges := g.Edges()
	out := make([]float64, len(edges))
	for i, e := range edges {
		out[i] = eig.EffectiveResistance(e.U, e.V)
	}
	return out
}

// SpectralEpsilon returns the smallest ε such that
// (1−ε) x^T L_G x ≤ x^T L_H x ≤ (1+ε) x^T L_G x for all x orthogonal to
// the null space of L_G. It requires null(L_G) ⊆ null(L_H) (H supported
// on the components of G), else the reported ε reflects the violation.
func SpectralEpsilon(g, h *graph.Graph) (float64, error) {
	if g.N() != h.N() {
		return 0, fmt.Errorf("linalg: size mismatch %d vs %d", g.N(), h.N())
	}
	lg, lh := Laplacian(g), Laplacian(h)
	eg := EigenDecompose(lg)
	tol := eg.rankTol()
	// Collect range-space columns scaled by λ^{-1/2}.
	n := eg.N
	var cols []int
	for k := 0; k < n; k++ {
		if eg.Values[k] > tol {
			cols = append(cols, k)
		}
	}
	r := len(cols)
	if r == 0 {
		return 0, nil // empty graph: everything is null space
	}
	// B = Q_r Λ_r^{-1/2} (n×r); M = B^T L_H B (r×r symmetric).
	b := make([]float64, n*r)
	for c, k := range cols {
		s := 1 / math.Sqrt(eg.Values[k])
		for i := 0; i < n; i++ {
			b[i*r+c] = eg.Q[i*n+k] * s
		}
	}
	// tmp = L_H B (n×r).
	tmp := make([]float64, n*r)
	for i := 0; i < n; i++ {
		for c := 0; c < r; c++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += lh.Data[i*n+j] * b[j*r+c]
			}
			tmp[i*r+c] = s
		}
	}
	m := NewSym(r)
	for c1 := 0; c1 < r; c1++ {
		for c2 := c1; c2 < r; c2++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += b[i*r+c1] * tmp[i*r+c2]
			}
			m.Set(c1, c2, s)
		}
	}
	em := EigenDecompose(m)
	eps := 0.0
	for _, v := range em.Values {
		if d := math.Abs(v - 1); d > eps {
			eps = d
		}
	}
	return eps, nil
}

// CG solves M x = b for a PSD matrix M by conjugate gradient, with b
// projected onto range(M) assumptions left to the caller (for
// Laplacians of connected graphs, pass b with Σb = 0). It stops at
// relative residual tol or maxIter.
func CG(m *Sym, b []float64, tol float64, maxIter int) []float64 {
	n := m.N
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, b)
	rs := dot(r, r)
	bNorm := math.Sqrt(dot(b, b))
	if bNorm == 0 {
		return x
	}
	for it := 0; it < maxIter; it++ {
		mp := m.MatVec(p)
		den := dot(p, mp)
		if den <= 0 {
			break
		}
		alpha := rs / den
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * mp[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) <= tol*bNorm {
			break
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
