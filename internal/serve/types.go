package serve

// The daemon's wire vocabulary. Every request/response body on the
// /v1/* endpoints is one of these types, and the client subcommand
// decodes into the same structs — kpod-style: the thin client shares
// the daemon's types instead of duplicating them.

// UpdateJSON is one stream update in a JSON update batch. Delta is +1
// (insert) or -1 (delete); W defaults to 1.
type UpdateJSON struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Delta int     `json:"delta"`
	W     float64 `json:"w,omitempty"`
}

// UpdateRequest is the JSON body of POST /v1/update. The endpoint also
// accepts a text/plain body of "+ u v [w]" / "- u v [w]" lines — the
// same format the feed and the repl speak.
type UpdateRequest struct {
	Updates []UpdateJSON `json:"updates"`
}

// UpdateResponse acknowledges an update batch: Count updates applied,
// Applied the daemon's total afterwards (identical across targets — a
// batch is folded into every backend before the next is admitted).
type UpdateResponse struct {
	Count   int   `json:"count"`
	Applied int64 `json:"applied"`
}

// EdgeJSON is one result edge.
type EdgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// QueryResponse is the body of GET /v1/query: the target's freshly
// extracted result as of exactly Applied updates. Result and count are
// read under one hold of the handle's mutex (Handle.QueryAt), so the
// pair is a consistent batch-boundary snapshot — an offline Build over
// the first Applied updates of the same stream reproduces Edges bit for
// bit.
type QueryResponse struct {
	Target     string     `json:"target"`
	Applied    int64      `json:"applied"`
	Summary    string     `json:"summary"`
	Edges      []EdgeJSON `json:"edges,omitempty"`
	Connected  *bool      `json:"connected,omitempty"`
	Components int        `json:"components,omitempty"`
	Bipartite  *bool      `json:"bipartite,omitempty"`
}

// TargetStatus is one backend's slice of GET /v1/status.
type TargetStatus struct {
	Target      string `json:"target"`
	N           int    `json:"n"`
	Applied     int64  `json:"applied"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	Ready          bool           `json:"ready"`
	Draining       bool           `json:"draining"`
	UptimeSeconds  float64        `json:"uptime_seconds"`
	UpdatesTotal   uint64         `json:"updates_total"`
	QueriesTotal   uint64         `json:"queries_total"`
	Checkpoints    uint64         `json:"checkpoints"`
	LastCheckpoint string         `json:"last_checkpoint,omitempty"`
	Targets        []TargetStatus `json:"targets"`
}

// CheckpointResponse is the body of POST /v1/checkpoint.
type CheckpointResponse struct {
	Paths   []string `json:"paths"`
	Applied int64    `json:"applied"`
}

// ErrorResponse is the JSON body of every non-2xx /v1/* response.
type ErrorResponse struct {
	Error string `json:"error"`
}
