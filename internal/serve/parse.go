// Package serve is the daemon layer over live build handles: the
// request/response types, update-line parser, metrics registry, env
// configuration, and HTTP server shared by cmd/dynstreamd (the
// resident daemon) and the thin `dynstream client` subcommand — one
// vocabulary, no duplicated wire types on either side.
package serve

import (
	"fmt"
	"strconv"
	"strings"

	"dynstream"
)

// ParseUpdate parses one whitespace-split update line
//
//   - <u> <v> [w]    insert
//   - <u> <v> [w]    delete
//
// into an Update. This is the one text-update parser in the tree: the
// repl (cmd/dynstream -repl), the daemon's ingest feed, and the client
// all decode through it, so a line means the same thing everywhere.
func ParseUpdate(fields []string) (dynstream.Update, error) {
	var u dynstream.Update
	if len(fields) == 0 || (fields[0] != "+" && fields[0] != "-") {
		return u, fmt.Errorf("want: + u v [w] or - u v [w], got %q", strings.Join(fields, " "))
	}
	if len(fields) < 3 || len(fields) > 4 {
		return u, fmt.Errorf("want: %s u v [w], got %q", fields[0], strings.Join(fields, " "))
	}
	a, err := strconv.Atoi(fields[1])
	if err != nil {
		return u, fmt.Errorf("bad vertex %q: %v", fields[1], err)
	}
	b, err := strconv.Atoi(fields[2])
	if err != nil {
		return u, fmt.Errorf("bad vertex %q: %v", fields[2], err)
	}
	w := 1.0
	if len(fields) == 4 {
		w, err = strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return u, fmt.Errorf("bad weight %q: %v", fields[3], err)
		}
	}
	u = dynstream.Update{U: a, V: b, W: w, Delta: 1}
	if fields[0] == "-" {
		u.Delta = -1
	}
	return u, nil
}

// ParseLine parses one raw feed line. Blank lines and #-comments are
// skipped (ok=false, err=nil); an "n N" header is tolerated when N
// matches the daemon's vertex count, so a file in the CLI stream format
// can be piped straight into the feed.
func ParseLine(line string, n int) (u dynstream.Update, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return u, false, nil
	}
	if fields[0] == "n" {
		if len(fields) != 2 {
			return u, false, fmt.Errorf("want: n <vertices>, got %q", line)
		}
		hn, err := strconv.Atoi(fields[1])
		if err != nil || hn != n {
			return u, false, fmt.Errorf("stream header %q does not match daemon vertex count %d", line, n)
		}
		return u, false, nil
	}
	u, err = ParseUpdate(fields)
	if err != nil {
		return u, false, err
	}
	return u, true, nil
}
