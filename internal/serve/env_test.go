package serve

import (
	"flag"
	"io"
	"testing"
)

// TestApplyEnvPrecedence is the twelve-factor contract, table-driven:
// flag > env > default, with env type errors surfaced.
func TestApplyEnvPrecedence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		env     map[string]string
		wantN   int
		wantStr string
		wantErr bool
	}{
		{
			name:    "defaults only",
			wantN:   10,
			wantStr: "stdin",
		},
		{
			name:    "env overrides default",
			env:     map[string]string{"DYNSTREAM_N": "42", "DYNSTREAM_FEED": "none"},
			wantN:   42,
			wantStr: "none",
		},
		{
			name:    "flag beats env",
			args:    []string{"-n", "7"},
			env:     map[string]string{"DYNSTREAM_N": "42"},
			wantN:   7,
			wantStr: "stdin",
		},
		{
			name:    "flag and env mix per flag",
			args:    []string{"-feed", "tcp:127.0.0.1:9"},
			env:     map[string]string{"DYNSTREAM_N": "42", "DYNSTREAM_FEED": "none"},
			wantN:   42,
			wantStr: "tcp:127.0.0.1:9",
		},
		{
			name:    "dashed flag maps to underscored key",
			env:     map[string]string{"DYNSTREAM_FEED_BATCH": "99"},
			wantN:   10,
			wantStr: "stdin",
		},
		{
			name:    "unparsable env value errors",
			env:     map[string]string{"DYNSTREAM_N": "not-a-number"},
			wantErr: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			n := fs.Int("n", 10, "")
			feed := fs.String("feed", "stdin", "")
			feedBatch := fs.Int("feed-batch", 256, "")
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := ApplyEnv(fs, func(k string) (string, bool) { v, ok := tc.env[k]; return v, ok })
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *n != tc.wantN {
				t.Errorf("n = %d, want %d", *n, tc.wantN)
			}
			if *feed != tc.wantStr {
				t.Errorf("feed = %q, want %q", *feed, tc.wantStr)
			}
			if tc.env["DYNSTREAM_FEED_BATCH"] != "" && *feedBatch != 99 {
				t.Errorf("feed-batch = %d, want 99 (from DYNSTREAM_FEED_BATCH)", *feedBatch)
			}
		})
	}
}

func TestEnvKey(t *testing.T) {
	for flagName, want := range map[string]string{
		"n":          "DYNSTREAM_N",
		"feed-batch": "DYNSTREAM_FEED_BATCH",
		"listen":     "DYNSTREAM_LISTEN",
	} {
		if got := EnvKey(flagName); got != want {
			t.Errorf("EnvKey(%q) = %q, want %q", flagName, got, want)
		}
	}
}
