package serve

import (
	"flag"
	"fmt"
	"strings"
)

// Twelve-factor configuration: every daemon flag can also be supplied
// through the environment, so a container runs on env vars alone while
// an operator's explicit flag always wins.

// EnvPrefix is the prefix of every recognized environment variable.
const EnvPrefix = "DYNSTREAM_"

// EnvKey maps a flag name to its environment variable: -feed-batch
// reads DYNSTREAM_FEED_BATCH.
func EnvKey(flagName string) string {
	return EnvPrefix + strings.ToUpper(strings.ReplaceAll(flagName, "-", "_"))
}

// ApplyEnv fills every flag of the (already parsed) flag set that was
// NOT set on the command line from its EnvKey environment variable.
// Precedence is flag > env > default: a flag present on the command
// line is never overridden, an env var overrides the flag's default,
// and an absent env var leaves the default. lookup is os.LookupEnv in
// the daemon; tests inject a map.
func ApplyEnv(fs *flag.FlagSet, lookup func(string) (string, bool)) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var err error
	fs.VisitAll(func(f *flag.Flag) {
		if err != nil || set[f.Name] {
			return
		}
		key := EnvKey(f.Name)
		v, ok := lookup(key)
		if !ok {
			return
		}
		if e := fs.Set(f.Name, v); e != nil {
			err = fmt.Errorf("env %s=%q: %v", key, v, e)
		}
	})
	return err
}
