package serve

import (
	"context"
	"sort"
	"testing"
	"time"
)

// BenchmarkDaemonQuery measures query latency against a live forest
// backend at n=10k while an ingest goroutine continuously applies
// batches — the daemon's steady-state workload. Reports p50/p99 query
// latency and sustained qps via ReportMetric. This lives here (not in
// the root bench_test.go) because the root package cannot import
// internal/serve without a cycle.
func BenchmarkDaemonQuery(b *testing.B) {
	const (
		n     = 10000
		m     = 200000
		batch = 512
	)
	log := testLog(n, m, 0xdecafbad)
	be, _, _, err := OpenBackend(context.Background(),
		Spec{Target: "forest", N: n, Seed: 1}, "")
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewServer([]Backend{be}, ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: apply a prefix so queries decode a nontrivial forest.
	if err := s.ApplyBatch(log[:m/2]); err != nil {
		b.Fatal(err)
	}

	// Continuous ingest in the background for the whole measurement.
	stop := make(chan struct{})
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		i := m / 2
		for {
			select {
			case <-stop:
				return
			default:
			}
			j := i + batch
			if j > m {
				i, j = m/2, m/2+batch
			}
			if err := s.ApplyBatch(log[i:j]); err != nil {
				b.Errorf("ApplyBatch: %v", err)
				return
			}
			i = j
		}
	}()

	lat := make([]time.Duration, 0, b.N)
	ctx := context.Background()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := be.Query(ctx); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	<-ingestDone

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	b.ReportMetric(float64(pct(0.50).Microseconds()), "p50-µs")
	b.ReportMetric(float64(pct(0.99).Microseconds()), "p99-µs")
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
}

// BenchmarkDaemonIngest measures raw ApplyBatch throughput through the
// server's ingest lock (single forest backend, n=10k), the ceiling for
// any feed.
func BenchmarkDaemonIngest(b *testing.B) {
	const (
		n     = 10000
		batch = 512
	)
	log := testLog(n, batch*64, 0xfeedbeef)
	be, _, _, err := OpenBackend(context.Background(),
		Spec{Target: "forest", N: n, Seed: 1}, "")
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewServer([]Backend{be}, ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	i := 0
	for j := 0; j < b.N; j++ {
		k := i + batch
		if k > len(log) {
			i, k = 0, batch
		}
		if err := s.ApplyBatch(log[i:k]); err != nil {
			b.Fatal(err)
		}
		i = k
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "updates/s")
}
