package serve

import (
	"context"
	"fmt"
	"os"
	"strings"

	"dynstream"
	"dynstream/internal/graph"
)

// Backend is one live target behind the daemon, erased to a non-generic
// interface so the server can hold a heterogeneous set (the handles are
// generic in their result type). Apply and Query inherit the handle's
// mutex discipline: a query is always a consistent batch-boundary
// snapshot, labeled with the exact applied-update count it observed.
type Backend interface {
	Target() string
	N() int
	Apply(updates []dynstream.Update) error
	Applied() int64
	Query(ctx context.Context) (*QueryResponse, error)
	CheckpointTo(path string) error
	CacheStats() dynstream.CacheStats
}

// Spec names one target to open, with its algorithm parameters and
// execution knobs — the daemon's flag set, essentially.
type Spec struct {
	Target        string // forest | kcert | bipartite | msf | spanner | additive | sparsify
	N             int
	K, D, Z       int
	Seed          uint64
	WMax          float64
	Gamma         float64
	Workers       int
	DecodeWorkers int
	Batch         int
	// Tracer, when non-nil, observes every pipeline phase of the opened
	// handle (ingest shards, decode, query, checkpoint) — the daemon
	// bridges it into the /metrics phase histograms.
	Tracer *dynstream.Tracer
}

// Targets lists the recognized Spec.Target names.
var Targets = []string{"additive", "bipartite", "forest", "kcert", "msf", "spanner", "sparsify"}

// backend adapts one Handle[R] plus a render function to the Backend
// interface.
type backend[R any] struct {
	target string
	h      *dynstream.Handle[R]
	render func(R, int64) (*QueryResponse, error)
}

func (b *backend[R]) Target() string                         { return b.target }
func (b *backend[R]) N() int                                 { return b.h.N() }
func (b *backend[R]) Apply(updates []dynstream.Update) error { return b.h.Apply(updates) }
func (b *backend[R]) Applied() int64                         { return b.h.AppliedUpdates() }
func (b *backend[R]) CacheStats() dynstream.CacheStats       { return b.h.DecodeCacheStats() }

func (b *backend[R]) Query(ctx context.Context) (*QueryResponse, error) {
	res, applied, err := b.h.QueryAt(ctx)
	if err != nil {
		return nil, err
	}
	return b.render(res, applied)
}

func (b *backend[R]) CheckpointTo(path string) error {
	return dynstream.CheckpointFile(b.h, path)
}

// openBackend opens (or restores) one target's handle over an empty
// base graph of spec.N vertices. If ckptPath names a readable, valid
// checkpoint for this target, the handle resumes from it — restored is
// then the snapshot's applied-update count; otherwise the handle starts
// fresh (restored -1) and a non-empty ckptPath that failed to restore
// is reported in note. The daemon replays nothing itself: the feed that
// produced the checkpointed updates is expected to resume past
// AppliedUpdates, or queries simply reflect the restored prefix.
func openBackend[R any](ctx context.Context, spec Spec, target dynstream.Target[R], ckptPath string,
	render func(R, int64) (*QueryResponse, error)) (Backend, int64, string, error) {
	base := dynstream.NewMemoryStream(spec.N)
	opts := []dynstream.Option{dynstream.WithBatchSize(spec.Batch)}
	if spec.Workers > 0 {
		opts = append(opts, dynstream.WithWorkers(spec.Workers))
	}
	if spec.DecodeWorkers > 0 {
		opts = append(opts, dynstream.WithDecodeWorkers(spec.DecodeWorkers))
	}
	if spec.Tracer != nil {
		opts = append(opts, dynstream.WithTracer(spec.Tracer))
	}
	note := ""
	if ckptPath != "" {
		f, err := os.Open(ckptPath)
		if err == nil {
			h, rerr := dynstream.Restore(ctx, f, base, target, opts...)
			f.Close()
			if rerr == nil {
				return &backend[R]{target: spec.Target, h: h, render: render}, h.AppliedUpdates(), "", nil
			}
			note = fmt.Sprintf("checkpoint %s not restored (%v); starting fresh", ckptPath, rerr)
		} else if !os.IsNotExist(err) {
			note = fmt.Sprintf("checkpoint %s not restored (%v); starting fresh", ckptPath, err)
		}
	}
	h, err := dynstream.Open(ctx, base, target, opts...)
	if err != nil {
		return nil, 0, note, err
	}
	return &backend[R]{target: spec.Target, h: h, render: render}, -1, note, nil
}

// edgesJSON converts a result graph to wire edges in the graph's own
// deterministic edge order.
func edgesJSON(g *graph.Graph) []EdgeJSON {
	edges := g.Edges()
	out := make([]EdgeJSON, len(edges))
	for i, e := range edges {
		out[i] = EdgeJSON{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// OpenBackend opens (or restores, when ckptPath names a valid snapshot)
// the spec's target. The note return carries a human-readable remark
// about a checkpoint that existed but could not be restored.
func OpenBackend(ctx context.Context, spec Spec, ckptPath string) (b Backend, restored int64, note string, err error) {
	switch spec.Target {
	case "forest":
		return openBackend(ctx, spec, dynstream.ForestTarget{Seed: spec.Seed}, ckptPath,
			func(sk *dynstream.ForestSketch, applied int64) (*QueryResponse, error) {
				forest, err := sk.SpanningForestParallel(nil, spec.decodeWorkers())
				if err != nil {
					return nil, err
				}
				g := graph.New(spec.N)
				for _, e := range forest {
					g.AddUnitEdge(e.U, e.V)
				}
				comps := spec.N - len(forest)
				conn := comps == 1
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Edges: edgesJSON(g),
					Connected: &conn, Components: comps,
					Summary: fmt.Sprintf("spanning forest: %d edges, %d components", len(forest), comps),
				}, nil
			})

	case "kcert":
		return openBackend(ctx, spec, dynstream.KConnectivityTarget{Seed: spec.Seed, K: spec.K}, ckptPath,
			func(kc *dynstream.KConnectivity, applied int64) (*QueryResponse, error) {
				cert, err := kc.CertificateGraphParallel(spec.decodeWorkers())
				if err != nil {
					return nil, err
				}
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Edges: edgesJSON(cert),
					Summary: fmt.Sprintf("%d-connectivity certificate: %d edges", spec.K, cert.M()),
				}, nil
			})

	case "bipartite":
		return openBackend(ctx, spec, dynstream.BipartitenessTarget{Seed: spec.Seed}, ckptPath,
			func(b *dynstream.Bipartiteness, applied int64) (*QueryResponse, error) {
				bip, err := b.IsBipartiteParallel(spec.decodeWorkers())
				if err != nil {
					return nil, err
				}
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Bipartite: &bip,
					Summary: fmt.Sprintf("bipartite: %v", bip),
				}, nil
			})

	case "msf":
		return openBackend(ctx, spec, dynstream.MSFTarget{Seed: spec.Seed, WMax: spec.WMax, Gamma: spec.gamma()}, ckptPath,
			func(m *dynstream.MSF, applied int64) (*QueryResponse, error) {
				forest, err := m.ForestParallel(spec.decodeWorkers())
				if err != nil {
					return nil, err
				}
				g := graph.New(spec.N)
				for _, e := range forest {
					g.AddEdge(e.U, e.V, e.W)
				}
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Edges: edgesJSON(g),
					Summary: fmt.Sprintf("approximate MSF: %d edges", len(forest)),
				}, nil
			})

	case "spanner":
		return openBackend(ctx, spec,
			dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: spec.K, Seed: spec.Seed}}, ckptPath,
			func(res *dynstream.SpannerResult, applied int64) (*QueryResponse, error) {
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Edges: edgesJSON(res.Spanner),
					Summary: fmt.Sprintf("2^%d-spanner: %d edges", spec.K, res.Spanner.M()),
				}, nil
			})

	case "additive":
		return openBackend(ctx, spec,
			dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: spec.D, Seed: spec.Seed}}, ckptPath,
			func(res *dynstream.AdditiveResult, applied int64) (*QueryResponse, error) {
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Edges: edgesJSON(res.Spanner),
					Summary: fmt.Sprintf("n/%d-additive spanner: %d edges", spec.D, res.Spanner.M()),
				}, nil
			})

	case "sparsify":
		return openBackend(ctx, spec,
			dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{K: spec.K, Z: spec.Z, Seed: spec.Seed}}, ckptPath,
			func(res *dynstream.SparsifierResult, applied int64) (*QueryResponse, error) {
				return &QueryResponse{
					Target: spec.Target, Applied: applied, Edges: edgesJSON(res.Sparsifier),
					Summary: fmt.Sprintf("sparsifier: %d edges from %d samples", res.Sparsifier.M(), res.Samples),
				}, nil
			})

	default:
		return nil, 0, "", fmt.Errorf("unknown target %q (want one of %s)", spec.Target, strings.Join(Targets, "|"))
	}
}

// decodeWorkers resolves the decode worker count for the render-side
// decode methods (SpanningForestParallel etc.), mirroring the CLI's
// -decodeworkers semantics: 0 follows Workers, floor 1.
func (s Spec) decodeWorkers() int {
	dw := s.DecodeWorkers
	if dw == 0 {
		dw = s.Workers
	}
	if dw < 1 {
		dw = 1
	}
	return dw
}

// gamma resolves the MSF approximation parameter (default 0.5, the
// CLI's choice).
func (s Spec) gamma() float64 {
	if s.Gamma > 0 {
		return s.Gamma
	}
	return 0.5
}
