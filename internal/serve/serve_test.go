package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dynstream"
	"dynstream/internal/graph"
)

// testLog builds a deterministic insert/delete stream on n vertices —
// xorshift-driven, the same sequence every run.
func testLog(n, m int, seed uint64) []dynstream.Update {
	x := seed | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	var log []dynstream.Update
	type edge struct{ u, v int }
	live := map[edge]bool{}
	for len(log) < m {
		u := int(next() % uint64(n))
		v := int(next() % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if live[e] && next()%4 == 0 {
			log = append(log, dynstream.Update{U: u, V: v, W: 1, Delta: -1})
			delete(live, e)
			continue
		}
		if !live[e] {
			log = append(log, dynstream.Update{U: u, V: v, W: 1, Delta: 1})
			live[e] = true
		}
	}
	return log[:m]
}

// offlineForest builds the forest target offline over log[:upto] and
// returns its edge list in the render's deterministic order.
func offlineForest(t *testing.T, n int, log []dynstream.Update, upto int64, seed uint64) []EdgeJSON {
	t.Helper()
	ms := dynstream.NewMemoryStream(n)
	for _, u := range log[:upto] {
		if err := ms.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	sk, err := dynstream.Build(context.Background(), ms, dynstream.ForestTarget{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := sk.SpanningForestParallel(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the backend's render exactly: unit edges through a Graph,
	// emitted in the graph's own deterministic edge order.
	g := graph.New(n)
	for _, e := range forest {
		g.AddUnitEdge(e.U, e.V)
	}
	return edgesJSON(g)
}

func newForestServer(t *testing.T, n int, seed uint64, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	b, _, _, err := OpenBackend(context.Background(),
		Spec{Target: "forest", N: n, Seed: seed}, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer([]Backend{b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestParseUpdate(t *testing.T) {
	for _, tc := range []struct {
		line string
		want dynstream.Update
		bad  bool
	}{
		{line: "+ 1 2", want: dynstream.Update{U: 1, V: 2, W: 1, Delta: 1}},
		{line: "- 1 2", want: dynstream.Update{U: 1, V: 2, W: 1, Delta: -1}},
		{line: "+ 3 4 2.5", want: dynstream.Update{U: 3, V: 4, W: 2.5, Delta: 1}},
		{line: "+ 1", bad: true},
		{line: "+ 1 2 3 4", bad: true},
		{line: "+ x 2", bad: true},
		{line: "+ 1 y", bad: true},
		{line: "+ 1 2 zz", bad: true},
		{line: "add 1 2", bad: true},
	} {
		u, err := ParseUpdate(strings.Fields(tc.line))
		if tc.bad {
			if err == nil {
				t.Errorf("ParseUpdate(%q): want error, got %+v", tc.line, u)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseUpdate(%q): %v", tc.line, err)
		} else if u != tc.want {
			t.Errorf("ParseUpdate(%q) = %+v, want %+v", tc.line, u, tc.want)
		}
	}
}

func TestParseLine(t *testing.T) {
	for _, tc := range []struct {
		line string
		ok   bool
		bad  bool
	}{
		{line: "+ 1 2", ok: true},
		{line: "", ok: false},
		{line: "   ", ok: false},
		{line: "# comment", ok: false},
		{line: "n 16", ok: false},      // matching header tolerated
		{line: "n 17", bad: true},      // mismatched header rejected
		{line: "n", bad: true},         // malformed header
		{line: "* 1 2", bad: true},     // unknown op
		{line: "+ one two", bad: true}, // non-numeric
	} {
		_, ok, err := ParseLine(tc.line, 16)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseLine(%q): want error", tc.line)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLine(%q): %v", tc.line, err)
		} else if ok != tc.ok {
			t.Errorf("ParseLine(%q): ok = %v, want %v", tc.line, ok, tc.ok)
		}
	}
}

// TestConcurrentIngestQuery is the protocol's consistency proof: HTTP
// queries racing a continuous ingest stream must each return a
// batch-boundary snapshot — an applied count that is a multiple of the
// batch size, with edges bit-identical to an offline Build over exactly
// that stream prefix. Run under -race this also proves the server
// needs no locking beyond the handle's own mutex.
func TestConcurrentIngestQuery(t *testing.T) {
	const (
		n     = 64
		m     = 1500
		batch = 50
		seed  = 7
	)
	log := testLog(n, m, 0x9e3779b9)
	s, ts := newForestServer(t, n, seed, ServerConfig{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < m; i += batch {
			if err := s.ApplyBatch(log[i : i+batch]); err != nil {
				t.Errorf("ApplyBatch: %v", err)
				return
			}
		}
	}()

	// Concurrent queriers: collect (applied, edges) snapshots.
	type snap struct {
		applied int64
		edges   []EdgeJSON
	}
	var mu sync.Mutex
	var snaps []snap
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/v1/query")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				var qr QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					t.Errorf("decode: %v", err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
				mu.Lock()
				snaps = append(snaps, snap{applied: qr.Applied, edges: qr.Edges})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	seen := map[int64]bool{}
	for _, sn := range snaps {
		if sn.applied%batch != 0 {
			t.Fatalf("query observed applied=%d, not a batch boundary (batch=%d)", sn.applied, batch)
		}
		if seen[sn.applied] {
			continue
		}
		seen[sn.applied] = true
		want := offlineForest(t, n, log, sn.applied, seed)
		if len(sn.edges) == 0 {
			sn.edges = []EdgeJSON{}
		}
		if len(want) == 0 {
			want = []EdgeJSON{}
		}
		if !reflect.DeepEqual(sn.edges, want) {
			t.Fatalf("query at applied=%d diverges from offline build:\n got %v\nwant %v",
				sn.applied, sn.edges, want)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no query snapshots collected")
	}
}

func TestUpdateEndpointJSONAndText(t *testing.T) {
	s, ts := newForestServer(t, 16, 1, ServerConfig{})
	// JSON body.
	body, _ := json.Marshal(UpdateRequest{Updates: []UpdateJSON{
		{U: 0, V: 1, Delta: 1}, {U: 1, V: 2, Delta: 1},
	}})
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ur UpdateResponse
	json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ur.Count != 2 || ur.Applied != 2 {
		t.Fatalf("JSON update: status %d, resp %+v", resp.StatusCode, ur)
	}
	// Text body, with header and comment tolerated.
	resp, err = http.Post(ts.URL+"/v1/update", "text/plain",
		strings.NewReader("n 16\n# fill\n+ 2 3\n+ 3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ur.Count != 2 || ur.Applied != 4 {
		t.Fatalf("text update: status %d, resp %+v", resp.StatusCode, ur)
	}
	// Malformed text line → 400, counted.
	resp, err = http.Post(ts.URL+"/v1/update", "text/plain", strings.NewReader("+ zz 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed update line: status %d, want 400", resp.StatusCode)
	}
	if got := s.Metrics().UpdatesTotal(); got != 4 {
		t.Fatalf("updates total %d, want 4", got)
	}
}

func TestDrainSemantics(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "state.ckpt")
	s, ts := newForestServer(t, 32, 3, ServerConfig{Checkpoint: ckpt})
	log := testLog(32, 200, 5)
	if err := s.ApplyBatch(log); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// readyz turns 503; healthz stays 200; updates rejected with 503;
	// queries still served.
	resp, _ := http.Get(ts.URL + "/readyz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/healthz")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %d, want 200", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/update", "text/plain", strings.NewReader("+ 1 2\n"))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update after drain: %d, want 503", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/query")
	var qr QueryResponse
	json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Applied != int64(len(log)) {
		t.Fatalf("query after drain: status %d, applied %d", resp.StatusCode, qr.Applied)
	}
	// The final checkpoint restores to the applied prefix.
	b2, restored, _, err := OpenBackend(context.Background(),
		Spec{Target: "forest", N: 32, Seed: 3}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if restored != int64(len(log)) {
		t.Fatalf("restored applied = %d, want %d", restored, len(log))
	}
	got, err := b2.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := offlineForest(t, 32, log, int64(len(log)), 3)
	if !reflect.DeepEqual(got.Edges, want) {
		t.Fatalf("restored query diverges:\n got %v\nwant %v", got.Edges, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newForestServer(t, 32, 2, ServerConfig{})
	log := testLog(32, 100, 11)
	if err := s.ApplyBatch(log); err != nil {
		t.Fatal(err)
	}
	// Two queries: the second should hit the decode cache.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"dynstream_up 1",
		"dynstream_ready 1",
		fmt.Sprintf("dynstream_updates_ingested_total %d", len(log)),
		`dynstream_queries_total{target="forest",outcome="ok"} 2`,
		"dynstream_query_latency_seconds_count 2",
		`dynstream_applied_updates{target="forest"} 100`,
		"dynstream_query_latency_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// Cache hits advance after the warm second query.
	var hits uint64
	fmt.Sscanf(findLine(text, `dynstream_decode_cache_hits_total{target="forest"}`), `dynstream_decode_cache_hits_total{target="forest"} %d`, &hits)
	if hits == 0 {
		t.Errorf("decode cache hits = 0 after a repeated query\n%s", findLine(text, "dynstream_decode_cache"))
	}
}

func findLine(text, prefix string) string {
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	return ""
}

// TestIngestFeed drives the feed loop from a reader: malformed lines
// are skipped with a counted error, valid ones batch through.
func TestIngestFeed(t *testing.T) {
	s, _ := newForestServer(t, 16, 1, ServerConfig{})
	feed := "n 16\n+ 0 1\n+ 1 2\ngarbage line\n+ 2 3\n# done\n"
	if err := s.IngestFeed(context.Background(), strings.NewReader(feed), 2); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().UpdatesTotal(); got != 3 {
		t.Fatalf("ingested %d updates, want 3", got)
	}
	if got := s.Metrics().feedErrors.Load(); got != 1 {
		t.Fatalf("feed errors %d, want 1", got)
	}
}

// TestMultiTargetServer serves two targets and checks per-target query
// routing plus the checkpoint path scheme.
func TestMultiTargetServer(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "multi.ckpt")
	ctx := context.Background()
	var backends []Backend
	for _, target := range []string{"forest", "bipartite"} {
		b, _, _, err := OpenBackend(ctx, Spec{Target: target, N: 16, Seed: 1}, "")
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, b)
	}
	s, err := NewServer(backends, ServerConfig{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Odd cycle: not bipartite.
	if err := s.ApplyBatch([]dynstream.Update{
		{U: 0, V: 1, W: 1, Delta: 1}, {U: 1, V: 2, W: 1, Delta: 1}, {U: 2, V: 0, W: 1, Delta: 1},
	}); err != nil {
		t.Fatal(err)
	}
	// Ambiguous query → 400.
	resp, _ := http.Get(ts.URL + "/v1/query")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous query: %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/query?target=bipartite")
	var qr QueryResponse
	json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	if qr.Bipartite == nil || *qr.Bipartite {
		t.Fatalf("odd cycle reported bipartite: %+v", qr)
	}
	paths, _, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	wantPaths := []string{ckpt + ".bipartite", ckpt + ".forest"}
	if !reflect.DeepEqual(paths, wantPaths) {
		t.Fatalf("checkpoint paths %v, want %v", paths, wantPaths)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("checkpoint file: %v", err)
		}
	}
}
