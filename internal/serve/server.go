package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynstream"
)

// ErrDraining is returned to updates arriving after a graceful drain
// began: the daemon stops admitting state changes but keeps serving
// queries until the HTTP listener shuts down.
var ErrDraining = errors.New("serve: draining, updates no longer admitted")

// Server owns the daemon's live backends and serves the HTTP API over
// them. One ingest mutex totally orders update batches across all
// backends, so every target observes the same update sequence and every
// query labels itself with an applied-update count that is a true
// prefix of that sequence.
type Server struct {
	backends map[string]Backend
	order    []string // sorted target names
	metrics  *Metrics
	logf     func(format string, a ...any)

	ready    atomic.Bool
	draining atomic.Bool

	// ingestMu orders update batches across backends and guards the
	// auto-checkpoint schedule. Queries do NOT take it — they serialize
	// per backend on the handle's own mutex, which is exactly the
	// consistency the protocol needs (batch-boundary snapshots).
	ingestMu  sync.Mutex
	sinceCkpt int

	ckptPath  string
	every     int
	slowQuery time.Duration
}

// ServerConfig configures NewServer.
type ServerConfig struct {
	// Checkpoint is the snapshot path ("" disables checkpointing). With
	// more than one backend each target writes Checkpoint.<target>.
	Checkpoint string
	// Every auto-snapshots after this many admitted updates (0 = only
	// explicit /v1/checkpoint and the final drain snapshot).
	Every int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, a ...any)
	// SlowQuery logs any query slower than this threshold through Logf
	// (0 disables the slow-query log).
	SlowQuery time.Duration
}

// NewServer wraps the given backends (at least one) in a server.
func NewServer(backends []Backend, cfg ServerConfig) (*Server, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("serve: no backends")
	}
	s := &Server{
		backends:  map[string]Backend{},
		metrics:   NewMetrics(),
		ckptPath:  cfg.Checkpoint,
		every:     cfg.Every,
		logf:      cfg.Logf,
		slowQuery: cfg.SlowQuery,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	n := backends[0].N()
	for _, b := range backends {
		if b.N() != n {
			return nil, fmt.Errorf("serve: backends disagree on vertex count (%d vs %d)", n, b.N())
		}
		if _, dup := s.backends[b.Target()]; dup {
			return nil, fmt.Errorf("serve: duplicate target %q", b.Target())
		}
		s.backends[b.Target()] = b
		s.order = append(s.order, b.Target())
	}
	sort.Strings(s.order)
	s.ready.Store(true)
	return s, nil
}

// N returns the vertex count shared by every backend.
func (s *Server) N() int { return s.backends[s.order[0]].N() }

// Metrics returns the server's metric registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// CheckpointPathFor returns the snapshot path of one target under the
// server's path scheme: the bare path for a single backend, path.target
// when several targets share the daemon.
func (s *Server) CheckpointPathFor(target string) string {
	if s.ckptPath == "" {
		return ""
	}
	if len(s.order) == 1 {
		return s.ckptPath
	}
	return s.ckptPath + "." + target
}

// CheckpointPathsFor computes the per-target snapshot path scheme for a
// daemon configured with path and the given targets — the same scheme a
// Server with that configuration uses, callable before backends exist
// (the daemon resolves restore paths with it at startup).
func CheckpointPathsFor(path string, targets []string) map[string]string {
	out := map[string]string{}
	if path == "" {
		return out
	}
	for _, t := range targets {
		if len(targets) == 1 {
			out[t] = path
		} else {
			out[t] = path + "." + t
		}
	}
	return out
}

// ApplyBatch admits one update batch: it folds the batch into every
// backend (in sorted target order, under the ingest mutex) and runs the
// auto-checkpoint schedule. A draining server rejects the batch with
// ErrDraining.
func (s *Server) ApplyBatch(updates []dynstream.Update) error {
	if len(updates) == 0 {
		return nil
	}
	if s.draining.Load() {
		return ErrDraining
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for _, name := range s.order {
		if err := s.backends[name].Apply(updates); err != nil {
			return err
		}
	}
	s.metrics.AddUpdates(len(updates))
	s.sinceCkpt += len(updates)
	if s.every > 0 && s.ckptPath != "" && s.sinceCkpt >= s.every {
		s.sinceCkpt = 0
		if _, err := s.checkpointLocked(); err != nil {
			return fmt.Errorf("serve: auto-checkpoint: %w", err)
		}
	}
	return nil
}

// checkpointLocked snapshots every backend; the caller holds ingestMu,
// so the snapshot set is a consistent cut across targets.
func (s *Server) checkpointLocked() ([]string, error) {
	if s.ckptPath == "" {
		return nil, fmt.Errorf("no -checkpoint path configured")
	}
	var paths []string
	for _, name := range s.order {
		p := s.CheckpointPathFor(name)
		if err := s.backends[name].CheckpointTo(p); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	s.metrics.AddCheckpoint()
	s.logf("checkpoint saved to %s (%d updates applied)", strings.Join(paths, ", "), s.backends[s.order[0]].Applied())
	return paths, nil
}

// Checkpoint forces a snapshot of every backend now.
func (s *Server) Checkpoint() ([]string, int64, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	paths, err := s.checkpointLocked()
	if err != nil {
		return nil, 0, err
	}
	s.sinceCkpt = 0
	return paths, s.backends[s.order[0]].Applied(), nil
}

// Drain begins the graceful shutdown: updates are rejected from this
// point (readyz turns 503), in-flight batches finish under the ingest
// mutex, and a final checkpoint is written if a path is configured.
// Queries keep working; the daemon shuts the HTTP listener down after
// Drain returns.
func (s *Server) Drain() error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil // second signal: drain already underway
	}
	s.ready.Store(false)
	// Taking the ingest mutex waits out any in-flight batch, so the
	// final snapshot contains every update whose Apply succeeded.
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.ckptPath != "" {
		if _, err := s.checkpointLocked(); err != nil {
			return fmt.Errorf("serve: final checkpoint: %w", err)
		}
	}
	return nil
}

// Draining reports whether a graceful drain is underway.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, a ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, a...)})
}

// handleUpdate admits one batch: a JSON UpdateRequest body, or a
// text/plain body of update lines (the feed format).
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var updates []dynstream.Update
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "text/plain") {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			u, ok, err := ParseLine(sc.Text(), s.N())
			if err != nil {
				s.metrics.AddFeedError()
				writeError(w, http.StatusBadRequest, "bad update line: %v", err)
				return
			}
			if ok {
				updates = append(updates, u)
			}
		}
		if err := sc.Err(); err != nil {
			writeError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
	} else {
		var req UpdateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		updates = make([]dynstream.Update, 0, len(req.Updates))
		for _, u := range req.Updates {
			w := u.W
			if w == 0 {
				w = 1
			}
			updates = append(updates, dynstream.Update{U: u.U, V: u.V, Delta: u.Delta, W: w})
		}
	}
	if err := s.ApplyBatch(updates); err != nil {
		if errors.Is(err, ErrDraining) {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.metrics.AddFeedError()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{
		Count:   len(updates),
		Applied: s.backends[s.order[0]].Applied(),
	})
}

// resolveTarget picks the backend for a request's ?target= parameter
// (optional when the daemon serves exactly one).
func (s *Server) resolveTarget(r *http.Request) (Backend, error) {
	name := r.URL.Query().Get("target")
	if name == "" {
		if len(s.order) == 1 {
			return s.backends[s.order[0]], nil
		}
		return nil, fmt.Errorf("this daemon serves %s; pick one with ?target=", strings.Join(s.order, ", "))
	}
	b, ok := s.backends[name]
	if !ok {
		return nil, fmt.Errorf("no %q target here (serving %s)", name, strings.Join(s.order, ", "))
	}
	return b, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	b, err := s.resolveTarget(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	res, err := b.Query(r.Context())
	elapsed := time.Since(start)
	s.metrics.ObserveQuery(b.Target(), elapsed, err)
	if s.slowQuery > 0 && elapsed >= s.slowQuery {
		s.logf("slow query: target=%s elapsed=%s applied=%d err=%v", b.Target(), elapsed.Round(time.Microsecond), b.Applied(), err)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query %s: %v", b.Target(), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := StatusResponse{
		Ready:         s.ready.Load(),
		Draining:      s.draining.Load(),
		UptimeSeconds: s.metrics.Uptime().Seconds(),
		UpdatesTotal:  s.metrics.UpdatesTotal(),
		QueriesTotal:  s.metrics.QueriesTotal(),
		Checkpoints:   s.metrics.Checkpoints(),
	}
	if last := s.metrics.LastCheckpoint(); !last.IsZero() {
		st.LastCheckpoint = last.UTC().Format(time.RFC3339Nano)
	}
	for _, name := range s.order {
		b := s.backends[name]
		cs := b.CacheStats()
		st.Targets = append(st.Targets, TargetStatus{
			Target:      name,
			N:           b.N(),
			Applied:     b.Applied(),
			CacheHits:   cs.Hits,
			CacheMisses: cs.Misses,
		})
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	paths, applied, err := s.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Paths: paths, Applied: applied})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	targets := make([]targetCacheStats, 0, len(s.order))
	for _, name := range s.order {
		b := s.backends[name]
		cs := b.CacheStats()
		targets = append(targets, targetCacheStats{
			target: name, applied: b.Applied(), hits: cs.Hits, misses: cs.Misses,
		})
	}
	s.metrics.WritePrometheus(w, s.ready.Load(), s.draining.Load(), targets)
}

// IngestFeed consumes update lines from r — the daemon's continuous
// feed — batching them into ApplyBatch calls: a batch is admitted when
// it reaches batchSize or the reader blocks long enough that the
// scanner returns (EOF for files and closed pipes). Malformed lines are
// counted and logged but do NOT kill the feed (a long-running daemon
// survives a garbled producer). The feed ends at EOF, on a canceled
// ctx, or when the server starts draining.
func (s *Server) IngestFeed(ctx context.Context, r io.Reader, batchSize int) error {
	if batchSize < 1 {
		batchSize = 256
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	batch := make([]dynstream.Update, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := s.ApplyBatch(batch)
		batch = batch[:0]
		return err
	}
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.draining.Load() {
			return nil
		}
		u, ok, err := ParseLine(sc.Text(), s.N())
		if err != nil {
			s.metrics.AddFeedError()
			s.logf("feed: %v", err)
			continue
		}
		if !ok {
			continue
		}
		batch = append(batch, u)
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				if errors.Is(err, ErrDraining) {
					return nil
				}
				return err
			}
		}
	}
	if err := flush(); err != nil && !errors.Is(err, ErrDraining) {
		return err
	}
	return sc.Err()
}
